// Ablations for the design choices called out in DESIGN.md §7:
//   1. EstMatch path-index sample count P: estimation error eps vs speed
//      (the paper reports eps <= 0.02–0.04 on average).
//   2. Weighted vs unit literal-change cost (the "Remarks" extension).
//   3. Exact post-processing (cost-minimal MBS) on/off.
//   4. Exact enumeration time budget: closeness/exhaustiveness vs latency.

#include <cmath>

#include "bench/bench_common.h"

namespace whyq::bench {
namespace {

void AblatePathIndexSamples(const Flags& flags) {
  TextTable t({"paths_P", "avg_closeness", "avg_eps", "avg_time_ms", "n"});
  Graph g = BenchGraph(DatasetProfile::kDBpedia, flags);
  Workload w = MakeWorkload(g, DefaultWorkload(flags, 8));
  for (size_t paths : {1u, 2u, 4u, 8u, 16u}) {
    AnswerConfig cfg = DefaultAnswerConfig();
    cfg.path_index_paths = paths;
    double cl = 0.0;
    double eps = 0.0;
    double ms = 0.0;
    size_t n = 0;
    for (const Workload::Item& item : w.items) {
      Timer timer;
      RewriteAnswer a =
          ApproxWhy(g, item.gq.query, item.gq.answers, item.why, cfg);
      ms += timer.ElapsedMillis();
      cl += a.eval.closeness;
      eps += std::fabs(a.estimated_closeness - a.eval.closeness);
      ++n;
    }
    if (n == 0) continue;
    t.AddRow({std::to_string(paths),
              TextTable::Num(cl / static_cast<double>(n)),
              TextTable::Num(eps / static_cast<double>(n)),
              TextTable::Num(ms / static_cast<double>(n), 1),
              std::to_string(n)});
  }
  std::printf(
      "%s\n",
      t.ToString("Ablation 1: EstMatch path samples (ApproxWhy, dbpedia)")
          .c_str());
}

void AblateWeightedCost(const Flags& flags) {
  TextTable t({"cost_model", "avg_closeness", "avg_cost", "n"});
  Graph g = BenchGraph(DatasetProfile::kDBpedia, flags);
  Workload w = MakeWorkload(g, DefaultWorkload(flags, 8));
  for (bool weighted : {true, false}) {
    AnswerConfig cfg = ExactAnswerConfig();
    cfg.weighted_cost = weighted;
    Aggregate a = Summarize(RunWhyNotBatch(g, w, WhyNotAlgo::kExact, cfg));
    t.AddRow({weighted ? "weighted (1+|c'-c|/range)" : "unit",
              TextTable::Num(a.avg_closeness), TextTable::Num(a.avg_cost, 2),
              std::to_string(a.n)});
  }
  std::printf(
      "%s\n",
      t.ToString("Ablation 2: weighted literal-change cost (ExactWhyNot)")
          .c_str());
}

void AblatePostProcessing(const Flags& flags) {
  TextTable t(
      {"post_processing", "avg_closeness", "avg_cost", "avg_time_ms", "n"});
  Graph g = BenchGraph(DatasetProfile::kDBpedia, flags);
  Workload w = MakeWorkload(g, DefaultWorkload(flags, 8));
  for (bool minimize : {true, false}) {
    AnswerConfig cfg = ExactAnswerConfig();
    cfg.minimize_cost = minimize;
    Aggregate a = Summarize(RunWhyBatch(g, w, WhyAlgo::kExact, cfg));
    t.AddRow({minimize ? "minimal-MBS" : "off",
              TextTable::Num(a.avg_closeness), TextTable::Num(a.avg_cost, 2),
              TextTable::Num(a.avg_time_ms, 1), std::to_string(a.n)});
  }
  std::printf(
      "%s\n",
      t.ToString("Ablation 3: exact cost-minimizing post-processing")
          .c_str());
}

void AblateTimeBudget(const Flags& flags) {
  TextTable t({"time_limit_ms", "avg_closeness", "exhaustive", "avg_time_ms",
               "n"});
  Graph g = BenchGraph(DatasetProfile::kDBpedia, flags);
  Workload w = MakeWorkload(g, DefaultWorkload(flags, 8));
  for (double limit : {100.0, 500.0, 3000.0, 10000.0}) {
    AnswerConfig cfg = ExactAnswerConfig();
    cfg.exact_time_limit_ms = limit;
    Aggregate a = Summarize(RunWhyBatch(g, w, WhyAlgo::kExact, cfg));
    t.AddRow({TextTable::Num(limit, 0), TextTable::Num(a.avg_closeness),
              TextTable::Num(a.exhaustive_fraction, 2),
              TextTable::Num(a.avg_time_ms, 1), std::to_string(a.n)});
  }
  std::printf(
      "%s\n",
      t.ToString("Ablation 4: exact enumeration time budget (ExactWhy)")
          .c_str());
}

}  // namespace
}  // namespace whyq::bench

int main(int argc, char** argv) {
  using namespace whyq::bench;
  Flags flags = ParseFlags(argc, argv);
  if (RunPart(flags, "a")) AblatePathIndexSamples(flags);
  if (RunPart(flags, "b")) AblateWeightedCost(flags);
  if (RunPart(flags, "c")) AblatePostProcessing(flags);
  if (RunPart(flags, "d")) AblateTimeBudget(flags);
  return 0;
}
