#ifndef WHYQ_BENCH_BENCH_COMMON_H_
#define WHYQ_BENCH_BENCH_COMMON_H_

// Shared plumbing for the figure-reproduction drivers (bench/fig*.cpp):
// flag parsing, per-dataset workload construction, and row printing.
//
// Every driver accepts:
//   --part=<letter|all>   which sub-figure to regenerate (default all)
//   --items=<n>           questions per batch (default driver-specific)
//   --scale=<f>           multiply default graph sizes by f (default bench
//                         sizes are ~1/4 of the profile defaults so a full
//                         driver run stays in CI-friendly time)
//   --seed=<n>            workload seed
//
// Absolute numbers differ from the paper (synthetic data, different
// hardware); the *shapes* are what EXPERIMENTS.md records.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "whyq.h"

namespace whyq::bench {

struct Flags {
  std::string part = "all";
  size_t items = 0;  // 0: driver default
  double scale = 1.0;
  uint64_t seed = 42;
};

inline Flags ParseFlags(int argc, char** argv) {
  Flags f;
  for (int i = 1; i < argc; ++i) {
    const char* a = argv[i];
    if (std::strncmp(a, "--part=", 7) == 0) {
      f.part = a + 7;
    } else if (std::strncmp(a, "--items=", 8) == 0) {
      f.items = static_cast<size_t>(std::strtoul(a + 8, nullptr, 10));
    } else if (std::strncmp(a, "--scale=", 8) == 0) {
      f.scale = std::strtod(a + 8, nullptr);
    } else if (std::strncmp(a, "--seed=", 7) == 0) {
      f.seed = std::strtoull(a + 7, nullptr, 10);
    } else {
      std::fprintf(stderr,
                   "usage: %s [--part=a|b|...|all] [--items=N] "
                   "[--scale=F] [--seed=N]\n",
                   argv[0]);
      std::exit(2);
    }
  }
  return f;
}

inline bool RunPart(const Flags& f, const char* part) {
  return f.part == "all" || f.part == part;
}

/// Bench-sized graph for a dataset profile (quarter of the paper-profile
/// default, scaled by --scale).
inline Graph BenchGraph(DatasetProfile p, const Flags& f) {
  size_t nodes = static_cast<size_t>(
      static_cast<double>(DefaultProfileNodes(p)) / 4.0 * f.scale);
  return GenerateProfile(p, nodes, 7);
}

/// The paper's default workload parameters (Section VI): |E_Q| = 4, two
/// literals per node, |V_N| = |V_C| = 3, tree topology.
inline WorkloadConfig DefaultWorkload(const Flags& f, size_t default_items) {
  WorkloadConfig w;
  w.items = f.items == 0 ? default_items : f.items;
  w.query.edges = 4;
  w.query.literals_per_node = 2;
  w.query.slack = 0.6;  // loose bounds -> sizable answer sets
  w.query.min_answers = 8;   // sizable answers make the guard bind
  w.query.max_answers = 100;  // evaluator sweeps are O(|answers|); the
                              // paper notes answers are small in practice
  w.why_size = 3;
  w.whynot_size = 3;
  w.seed = f.seed;
  return w;
}

/// The paper's default answering configuration: B = 4, m = 2. The exact
/// algorithms additionally cap the picky set / enumeration so a full sweep
/// stays tractable on one core (`exhaustive` is false when a cap bites).
inline AnswerConfig DefaultAnswerConfig() {
  AnswerConfig cfg;
  cfg.budget = 4.0;
  cfg.guard_m = 2;  // paper default m
  return cfg;
}

inline AnswerConfig ExactAnswerConfig() {
  AnswerConfig cfg = DefaultAnswerConfig();
  cfg.max_mbs = 100000;
  cfg.exact_time_limit_ms = 3000;  // per-question cap; exhaustive_fraction
                                   // reports how often it bites
  return cfg;
}

}  // namespace whyq::bench

#endif  // WHYQ_BENCH_BENCH_COMMON_H_
