// Reproduces Figure 5 (Exp-1, "Answering Why questions: Effectiveness"):
//   (a) closeness of ExactWhy / ApproxWhy / IsoWhy across the five datasets
//   (b) closeness vs query size (|E_Q| x literals-per-node) on Yago
//   (c) closeness vs editing budget B (dbpedia; see PartC comment)
//   (d) closeness vs |V_N| (incrementally grown questions, dbpedia)
//
// Expected shapes (paper): Exact reports the best closeness everywhere;
// Approx stays >= ~85% of it; closeness decreases with |Q| and |V_N| and
// converges in B around B = 4.

#include "bench/bench_common.h"

namespace whyq::bench {
namespace {

void PartA(const Flags& flags) {
  TextTable t({"dataset", "algorithm", "avg_closeness", "ratio_to_exact",
               "n"});
  for (DatasetProfile p : kAllProfiles) {
    Graph g = BenchGraph(p, flags);
    Workload w = MakeWorkload(g, DefaultWorkload(flags, 6));
    AnswerConfig exact_cfg = ExactAnswerConfig();
    AnswerConfig greedy_cfg = DefaultAnswerConfig();
    std::vector<RunResult> exact = RunWhyBatch(g, w, WhyAlgo::kExact,
                                               exact_cfg);
    for (auto [algo, cfg] : {std::pair{WhyAlgo::kExact, exact_cfg},
                             std::pair{WhyAlgo::kApprox, greedy_cfg},
                             std::pair{WhyAlgo::kIso, greedy_cfg}}) {
      std::vector<RunResult> r =
          algo == WhyAlgo::kExact ? exact : RunWhyBatch(g, w, algo, cfg);
      Aggregate a = Summarize(r, &exact);
      t.AddRow({DatasetProfileName(p), WhyAlgoName(algo),
                TextTable::Num(a.avg_closeness),
                TextTable::Num(a.ratio_to_ref), std::to_string(a.n)});
    }
  }
  std::printf("%s\n", t.ToString("Fig 5(a): Why closeness by dataset")
                          .c_str());
}

void PartB(const Flags& flags) {
  TextTable t({"|E_Q|", "L", "algorithm", "avg_closeness", "n"});
  Graph g = BenchGraph(DatasetProfile::kYago, flags);
  for (size_t edges : {1u, 2u, 4u, 6u, 8u}) {
    for (size_t lits : {2u, 3u}) {
      WorkloadConfig wc = DefaultWorkload(flags, 5);
      wc.query.edges = edges;
      wc.query.literals_per_node = lits;
      Workload w = MakeWorkload(g, wc);
      for (WhyAlgo algo :
           {WhyAlgo::kExact, WhyAlgo::kApprox, WhyAlgo::kIso}) {
        AnswerConfig cfg = algo == WhyAlgo::kExact ? ExactAnswerConfig()
                                                   : DefaultAnswerConfig();
        Aggregate a = Summarize(RunWhyBatch(g, w, algo, cfg));
        t.AddRow({std::to_string(edges), std::to_string(lits),
                  WhyAlgoName(algo), TextTable::Num(a.avg_closeness),
                  std::to_string(a.n)});
      }
    }
  }
  std::printf("%s\n",
              t.ToString("Fig 5(b): Why closeness vs query size (yago)")
                  .c_str());
}

void PartC(const Flags& flags) {
  // The paper sweeps Yago; our quarter-scale yago stand-in is easy enough
  // to solve at B=1, so the budget effect is shown on the harder dbpedia
  // profile instead (see EXPERIMENTS.md).
  TextTable t({"B", "algorithm", "avg_closeness", "n"});
  Graph g = BenchGraph(DatasetProfile::kDBpedia, flags);
  Workload w = MakeWorkload(g, DefaultWorkload(flags, 8));
  for (double budget : {1.0, 2.0, 3.0, 4.0, 5.0}) {
    for (WhyAlgo algo : {WhyAlgo::kExact, WhyAlgo::kApprox, WhyAlgo::kIso}) {
      AnswerConfig cfg = algo == WhyAlgo::kExact ? ExactAnswerConfig()
                                                 : DefaultAnswerConfig();
      cfg.budget = budget;
      Aggregate a = Summarize(RunWhyBatch(g, w, algo, cfg));
      t.AddRow({TextTable::Num(budget, 0), WhyAlgoName(algo),
                TextTable::Num(a.avg_closeness), std::to_string(a.n)});
    }
  }
  std::printf("%s\n",
              t.ToString("Fig 5(c): Why closeness vs budget B (dbpedia)")
                  .c_str());
}

void PartD(const Flags& flags) {
  // Interactive sessions: the same workload's questions grow from
  // |V_N| = 1 upward by adding entities only.
  TextTable t({"|V_N|", "algorithm", "avg_closeness", "n"});
  Graph g = BenchGraph(DatasetProfile::kDBpedia, flags);
  WorkloadConfig wc = DefaultWorkload(flags, 8);
  wc.why_size = 1;
  wc.query.min_answers = 8;  // room to grow V_N to 5
  Workload w = MakeWorkload(g, wc);
  Rng rng(flags.seed + 1);
  for (size_t size = 1; size <= 5; ++size) {
    for (WhyAlgo algo : {WhyAlgo::kExact, WhyAlgo::kApprox, WhyAlgo::kIso}) {
      AnswerConfig cfg = algo == WhyAlgo::kExact ? ExactAnswerConfig()
                                                 : DefaultAnswerConfig();
      Aggregate a = Summarize(RunWhyBatch(g, w, algo, cfg));
      t.AddRow({std::to_string(size), WhyAlgoName(algo),
                TextTable::Num(a.avg_closeness), std::to_string(a.n)});
    }
    // Grow every item's question by one entity for the next round.
    for (Workload::Item& item : w.items) {
      GrowWhyQuestion(item.gq, &item.why, rng);
    }
  }
  std::printf("%s\n",
              t.ToString("Fig 5(d): Why closeness vs |V_N| (dbpedia)").c_str());
}

}  // namespace
}  // namespace whyq::bench

int main(int argc, char** argv) {
  using namespace whyq::bench;
  Flags flags = ParseFlags(argc, argv);
  if (RunPart(flags, "a")) PartA(flags);
  if (RunPart(flags, "b")) PartB(flags);
  if (RunPart(flags, "c")) PartC(flags);
  if (RunPart(flags, "d")) PartD(flags);
  return 0;
}
