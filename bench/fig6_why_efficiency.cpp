// Reproduces Figure 6 (Exp-2, "Answering Why questions: Efficiency"):
//   (a) runtime of ExactWhy / ApproxWhy / IsoWhy across the five datasets
//   (b) scalability vs |G| on BSBM synthetic graphs
//   (c) runtime vs query size (|E_Q| x literals per node)
//   (d) runtime vs query topology (tree / acyclic / cyclic)
//   (e) runtime vs editing budget B
//   (f) runtime vs |V_N|
//
// Expected shapes (paper): ApproxWhy is fastest (the paper reports ~9.7x
// over ExactWhy and ~7.7x over IsoWhy on average) and the least sensitive
// to |G|, |Q|, and B; tree queries are cheapest; runtime grows with |G|,
// |Q|, B and |V_N|.

#include "bench/bench_common.h"

namespace whyq::bench {
namespace {

constexpr WhyAlgo kAlgos[] = {WhyAlgo::kExact, WhyAlgo::kApprox,
                              WhyAlgo::kIso};

AnswerConfig ConfigFor(WhyAlgo algo) {
  return algo == WhyAlgo::kExact ? ExactAnswerConfig()
                                 : DefaultAnswerConfig();
}

void PartA(const Flags& flags) {
  TextTable t({"dataset", "algorithm", "avg_time_ms", "speedup_vs_exact",
               "exhaustive", "n"});
  for (DatasetProfile p : kAllProfiles) {
    Graph g = BenchGraph(p, flags);
    Workload w = MakeWorkload(g, DefaultWorkload(flags, 6));
    double exact_ms = 0.0;
    for (WhyAlgo algo : kAlgos) {
      Aggregate a = Summarize(RunWhyBatch(g, w, algo, ConfigFor(algo)));
      if (algo == WhyAlgo::kExact) exact_ms = a.avg_time_ms;
      double speedup = a.avg_time_ms > 0 ? exact_ms / a.avg_time_ms : 0.0;
      t.AddRow({DatasetProfileName(p), WhyAlgoName(algo),
                TextTable::Num(a.avg_time_ms, 1), TextTable::Num(speedup, 1),
                TextTable::Num(a.exhaustive_fraction, 2),
                std::to_string(a.n)});
    }
  }
  std::printf("%s\n",
              t.ToString("Fig 6(a): Why runtime by dataset").c_str());
}

void PartB(const Flags& flags) {
  TextTable t({"|V|", "|E|", "algorithm", "avg_time_ms", "n"});
  for (size_t products : {1000u, 2500u, 5000u, 10000u}) {
    BsbmConfig bc;
    bc.products = static_cast<size_t>(products * flags.scale);
    Graph g = GenerateBsbm(bc);
    Workload w = MakeWorkload(g, DefaultWorkload(flags, 3));
    for (WhyAlgo algo : kAlgos) {
      // The scalability sweep halves the picky cap: greedy selection is
      // quadratic in it, and the |G| trend is what this part shows.
      AnswerConfig cfg = ConfigFor(algo);
      cfg.max_picky_ops = 96;
      Aggregate a = Summarize(RunWhyBatch(g, w, algo, cfg));
      t.AddRow({std::to_string(g.node_count()),
                std::to_string(g.edge_count()), WhyAlgoName(algo),
                TextTable::Num(a.avg_time_ms, 1), std::to_string(a.n)});
    }
  }
  std::printf("%s\n",
              t.ToString("Fig 6(b): Why runtime vs |G| (BSBM)").c_str());
}

void PartC(const Flags& flags) {
  TextTable t({"|E_Q|", "L", "algorithm", "avg_time_ms", "n"});
  Graph g = BenchGraph(DatasetProfile::kYago, flags);
  for (size_t edges : {2u, 4u, 6u}) {
    for (size_t lits : {2u, 3u}) {
      WorkloadConfig wc = DefaultWorkload(flags, 5);
      wc.query.edges = edges;
      wc.query.literals_per_node = lits;
      Workload w = MakeWorkload(g, wc);
      for (WhyAlgo algo : kAlgos) {
        Aggregate a = Summarize(RunWhyBatch(g, w, algo, ConfigFor(algo)));
        t.AddRow({std::to_string(edges), std::to_string(lits),
                  WhyAlgoName(algo), TextTable::Num(a.avg_time_ms, 1),
                  std::to_string(a.n)});
      }
    }
  }
  std::printf("%s\n",
              t.ToString("Fig 6(c): Why runtime vs query size (yago)")
                  .c_str());
}

void PartD(const Flags& flags) {
  TextTable t({"topology", "algorithm", "avg_time_ms", "n"});
  Graph g = BenchGraph(DatasetProfile::kDBpedia, flags);
  for (QueryTopology topo : {QueryTopology::kTree, QueryTopology::kAcyclic,
                             QueryTopology::kCyclic}) {
    WorkloadConfig wc = DefaultWorkload(flags, 5);
    wc.query.topology = topo;
    Workload w = MakeWorkload(g, wc);
    for (WhyAlgo algo : kAlgos) {
      Aggregate a = Summarize(RunWhyBatch(g, w, algo, ConfigFor(algo)));
      t.AddRow({QueryTopologyName(topo), WhyAlgoName(algo),
                TextTable::Num(a.avg_time_ms, 1), std::to_string(a.n)});
    }
  }
  std::printf("%s\n",
              t.ToString("Fig 6(d): Why runtime vs topology (dbpedia)")
                  .c_str());
}

void PartE(const Flags& flags) {
  TextTable t({"B", "algorithm", "avg_time_ms", "n"});
  Graph g = BenchGraph(DatasetProfile::kYago, flags);
  Workload w = MakeWorkload(g, DefaultWorkload(flags, 6));
  for (double budget : {1.0, 2.0, 3.0, 4.0, 5.0}) {
    for (WhyAlgo algo : kAlgos) {
      AnswerConfig cfg = ConfigFor(algo);
      cfg.budget = budget;
      Aggregate a = Summarize(RunWhyBatch(g, w, algo, cfg));
      t.AddRow({TextTable::Num(budget, 0), WhyAlgoName(algo),
                TextTable::Num(a.avg_time_ms, 1), std::to_string(a.n)});
    }
  }
  std::printf("%s\n",
              t.ToString("Fig 6(e): Why runtime vs budget B (yago)")
                  .c_str());
}

void PartF(const Flags& flags) {
  TextTable t({"|V_N|", "algorithm", "avg_time_ms", "n"});
  Graph g = BenchGraph(DatasetProfile::kYago, flags);
  WorkloadConfig wc = DefaultWorkload(flags, 6);
  wc.why_size = 1;
  wc.query.min_answers = 8;
  Workload w = MakeWorkload(g, wc);
  Rng rng(flags.seed + 1);
  for (size_t size = 1; size <= 5; ++size) {
    for (WhyAlgo algo : kAlgos) {
      Aggregate a = Summarize(RunWhyBatch(g, w, algo, ConfigFor(algo)));
      t.AddRow({std::to_string(size), WhyAlgoName(algo),
                TextTable::Num(a.avg_time_ms, 1), std::to_string(a.n)});
    }
    for (Workload::Item& item : w.items) {
      GrowWhyQuestion(item.gq, &item.why, rng);
    }
  }
  std::printf("%s\n",
              t.ToString("Fig 6(f): Why runtime vs |V_N| (yago)").c_str());
}

}  // namespace
}  // namespace whyq::bench

int main(int argc, char** argv) {
  using namespace whyq::bench;
  Flags flags = ParseFlags(argc, argv);
  if (RunPart(flags, "a")) PartA(flags);
  if (RunPart(flags, "b")) PartB(flags);
  if (RunPart(flags, "c")) PartC(flags);
  if (RunPart(flags, "d")) PartD(flags);
  if (RunPart(flags, "e")) PartE(flags);
  if (RunPart(flags, "f")) PartF(flags);
  return 0;
}
