// Reproduces Figure 7 (Exp-3, "Answering Why-not questions: Effectiveness")
// plus the two sweeps the paper describes in text only:
//   (a) closeness of ExactWhyNot / FastWhyNot / IsoWhyNot across datasets
//   (b) closeness vs query size (|E_Q| x literals per node)
//   (c) closeness vs budget B        (text: "consistent with Why")
//   (d) closeness vs |V_C|           (text: "consistent with Why")
//
// Expected shapes (paper): ExactWhyNot covers almost all of V_C at B = 4
// (average closeness > 0.95 there); FastWhyNot stays >= ~84% of exact;
// closeness decreases with |Q| and |V_C| and grows with B.

#include "bench/bench_common.h"

namespace whyq::bench {
namespace {

constexpr WhyNotAlgo kAlgos[] = {WhyNotAlgo::kExact, WhyNotAlgo::kFast,
                                 WhyNotAlgo::kIso};

AnswerConfig ConfigFor(WhyNotAlgo algo) {
  return algo == WhyNotAlgo::kExact ? ExactAnswerConfig()
                                    : DefaultAnswerConfig();
}

void PartA(const Flags& flags) {
  TextTable t({"dataset", "algorithm", "avg_closeness", "ratio_to_exact",
               "n"});
  for (DatasetProfile p : kAllProfiles) {
    Graph g = BenchGraph(p, flags);
    WorkloadConfig wc = DefaultWorkload(flags, 6);
    wc.constraint_literals = 2;  // paper: C has up to two literals
    Workload w = MakeWorkload(g, wc);
    std::vector<RunResult> exact =
        RunWhyNotBatch(g, w, WhyNotAlgo::kExact, ConfigFor(WhyNotAlgo::kExact));
    for (WhyNotAlgo algo : kAlgos) {
      std::vector<RunResult> r =
          algo == WhyNotAlgo::kExact
              ? exact
              : RunWhyNotBatch(g, w, algo, ConfigFor(algo));
      Aggregate a = Summarize(r, &exact);
      t.AddRow({DatasetProfileName(p), WhyNotAlgoName(algo),
                TextTable::Num(a.avg_closeness),
                TextTable::Num(a.ratio_to_ref), std::to_string(a.n)});
    }
  }
  std::printf("%s\n",
              t.ToString("Fig 7(a): Why-not closeness by dataset").c_str());
}

void PartB(const Flags& flags) {
  TextTable t({"|E_Q|", "L", "algorithm", "avg_closeness", "n"});
  Graph g = BenchGraph(DatasetProfile::kYago, flags);
  for (size_t edges : {1u, 2u, 4u, 6u, 8u}) {
    for (size_t lits : {2u, 3u}) {
      WorkloadConfig wc = DefaultWorkload(flags, 5);
      wc.query.edges = edges;
      wc.query.literals_per_node = lits;
      Workload w = MakeWorkload(g, wc);
      for (WhyNotAlgo algo : kAlgos) {
        Aggregate a = Summarize(RunWhyNotBatch(g, w, algo, ConfigFor(algo)));
        t.AddRow({std::to_string(edges), std::to_string(lits),
                  WhyNotAlgoName(algo), TextTable::Num(a.avg_closeness),
                  std::to_string(a.n)});
      }
    }
  }
  std::printf(
      "%s\n",
      t.ToString("Fig 7(b): Why-not closeness vs query size (yago)")
          .c_str());
}

void PartC(const Flags& flags) {
  TextTable t({"B", "algorithm", "avg_closeness", "n"});
  Graph g = BenchGraph(DatasetProfile::kYago, flags);
  Workload w = MakeWorkload(g, DefaultWorkload(flags, 6));
  for (double budget : {1.0, 2.0, 3.0, 4.0, 5.0}) {
    for (WhyNotAlgo algo : kAlgos) {
      AnswerConfig cfg = ConfigFor(algo);
      cfg.budget = budget;
      Aggregate a = Summarize(RunWhyNotBatch(g, w, algo, cfg));
      t.AddRow({TextTable::Num(budget, 0), WhyNotAlgoName(algo),
                TextTable::Num(a.avg_closeness), std::to_string(a.n)});
    }
  }
  std::printf("%s\n",
              t.ToString("Fig 7(c): Why-not closeness vs budget B (yago)")
                  .c_str());
}

void PartD(const Flags& flags) {
  TextTable t({"|V_C|", "algorithm", "avg_closeness", "n"});
  Graph g = BenchGraph(DatasetProfile::kYago, flags);
  for (size_t size = 1; size <= 5; ++size) {
    WorkloadConfig wc = DefaultWorkload(flags, 6);
    wc.whynot_size = size;
    Workload w = MakeWorkload(g, wc);
    for (WhyNotAlgo algo : kAlgos) {
      Aggregate a = Summarize(RunWhyNotBatch(g, w, algo, ConfigFor(algo)));
      t.AddRow({std::to_string(size), WhyNotAlgoName(algo),
                TextTable::Num(a.avg_closeness), std::to_string(a.n)});
    }
  }
  std::printf("%s\n",
              t.ToString("Fig 7(d): Why-not closeness vs |V_C| (yago)")
                  .c_str());
}

}  // namespace
}  // namespace whyq::bench

int main(int argc, char** argv) {
  using namespace whyq::bench;
  Flags flags = ParseFlags(argc, argv);
  if (RunPart(flags, "a")) PartA(flags);
  if (RunPart(flags, "b")) PartB(flags);
  if (RunPart(flags, "c")) PartC(flags);
  if (RunPart(flags, "d")) PartD(flags);
  return 0;
}
