// Reproduces Figure 8 (Exp-4, "Answering Why-not questions: Efficiency"):
//   (a) runtime of ExactWhyNot / IsoWhyNot / FastWhyNot across datasets
//   (b) scalability vs |G| (BSBM) and vs |E_Q|
//
// Expected shapes (paper): FastWhyNot is the fastest (~15.7x over
// ExactWhyNot, ~11x over IsoWhyNot on the paper's setup) and scales best
// with |G| and |E_Q|.

#include "bench/bench_common.h"

namespace whyq::bench {
namespace {

constexpr WhyNotAlgo kAlgos[] = {WhyNotAlgo::kExact, WhyNotAlgo::kIso,
                                 WhyNotAlgo::kFast};

AnswerConfig ConfigFor(WhyNotAlgo algo) {
  return algo == WhyNotAlgo::kExact ? ExactAnswerConfig()
                                    : DefaultAnswerConfig();
}

void PartA(const Flags& flags) {
  TextTable t({"dataset", "algorithm", "avg_time_ms", "speedup_vs_exact",
               "exhaustive", "n"});
  for (DatasetProfile p : kAllProfiles) {
    Graph g = BenchGraph(p, flags);
    Workload w = MakeWorkload(g, DefaultWorkload(flags, 6));
    double exact_ms = 0.0;
    for (WhyNotAlgo algo : kAlgos) {
      Aggregate a = Summarize(RunWhyNotBatch(g, w, algo, ConfigFor(algo)));
      if (algo == WhyNotAlgo::kExact) exact_ms = a.avg_time_ms;
      double speedup = a.avg_time_ms > 0 ? exact_ms / a.avg_time_ms : 0.0;
      t.AddRow({DatasetProfileName(p), WhyNotAlgoName(algo),
                TextTable::Num(a.avg_time_ms, 1), TextTable::Num(speedup, 1),
                TextTable::Num(a.exhaustive_fraction, 2),
                std::to_string(a.n)});
    }
  }
  std::printf("%s\n",
              t.ToString("Fig 8(a): Why-not runtime by dataset").c_str());
}

void PartB(const Flags& flags) {
  TextTable t({"sweep", "x", "algorithm", "avg_time_ms", "n"});
  // Scalability vs |G| on BSBM.
  for (size_t products : {1000u, 2500u, 5000u, 10000u}) {
    BsbmConfig bc;
    bc.products = static_cast<size_t>(products * flags.scale);
    Graph g = GenerateBsbm(bc);
    Workload w = MakeWorkload(g, DefaultWorkload(flags, 3));
    for (WhyNotAlgo algo : kAlgos) {
      AnswerConfig cfg = ConfigFor(algo);
      cfg.max_picky_ops = 96;
      Aggregate a = Summarize(RunWhyNotBatch(g, w, algo, cfg));
      t.AddRow({"|V|", std::to_string(g.node_count()), WhyNotAlgoName(algo),
                TextTable::Num(a.avg_time_ms, 1), std::to_string(a.n)});
    }
  }
  // Scalability vs |E_Q| on Yago.
  Graph g = BenchGraph(DatasetProfile::kYago, flags);
  for (size_t edges : {2u, 4u, 6u, 8u}) {
    WorkloadConfig wc = DefaultWorkload(flags, 5);
    wc.query.edges = edges;
    Workload w = MakeWorkload(g, wc);
    for (WhyNotAlgo algo : kAlgos) {
      Aggregate a = Summarize(RunWhyNotBatch(g, w, algo, ConfigFor(algo)));
      t.AddRow({"|E_Q|", std::to_string(edges), WhyNotAlgoName(algo),
                TextTable::Num(a.avg_time_ms, 1), std::to_string(a.n)});
    }
  }
  std::printf(
      "%s\n",
      t.ToString("Fig 8(b): Why-not runtime vs |G| (BSBM) and |E_Q| (yago)")
          .c_str());
}

}  // namespace
}  // namespace whyq::bench

int main(int argc, char** argv) {
  using namespace whyq::bench;
  Flags flags = ParseFlags(argc, argv);
  if (RunPart(flags, "a")) PartA(flags);
  if (RunPart(flags, "b")) PartB(flags);
  return 0;
}
