// Microbenchmarks for the core answering pipeline: picky-set generation,
// MBS enumeration, and the six end-to-end algorithms on a fixed question.

#include <benchmark/benchmark.h>

#include "whyq.h"

namespace whyq {
namespace {

struct Fixture {
  Graph g;
  GeneratedQuery gq;
  WhyQuestion why;
  WhyNotQuestion whynot;
  bool ok = false;
};

const Fixture& SharedFixture() {
  static Fixture* f = [] {
    auto* out = new Fixture();
    out->g = GenerateProfile(DatasetProfile::kDBpedia, 15000, 7);
    // Reuse the harness workload builder (it loosens generation knobs
    // progressively when the graph is too selective).
    WorkloadConfig wc;
    wc.items = 1;
    wc.query.edges = 4;
    wc.query.literals_per_node = 2;
    wc.query.slack = 0.6;
    wc.query.min_answers = 6;
    wc.seed = 11;
    Workload w = MakeWorkload(out->g, wc);
    if (!w.items.empty()) {
      out->gq = std::move(w.items[0].gq);
      out->why = std::move(w.items[0].why);
      out->whynot = std::move(w.items[0].whynot);
      out->ok = true;
    }
    return out;
  }();
  return *f;
}

AnswerConfig Config() {
  AnswerConfig cfg;
  cfg.budget = 4.0;
  cfg.guard_m = 2;
  cfg.exact_time_limit_ms = 3000;
  return cfg;
}

void BM_GenPickyWhy(benchmark::State& state) {
  const Fixture& f = SharedFixture();
  if (!f.ok) {
    state.SkipWithError("no fixture");
    return;
  }
  AnswerConfig cfg = Config();
  for (auto _ : state) {
    benchmark::DoNotOptimize(GenPickyWhy(f.g, f.gq.query, f.gq.answers,
                                         f.why.unexpected, cfg));
  }
}
BENCHMARK(BM_GenPickyWhy);

void BM_GenPickyWhyNot(benchmark::State& state) {
  const Fixture& f = SharedFixture();
  if (!f.ok) {
    state.SkipWithError("no fixture");
    return;
  }
  AnswerConfig cfg = Config();
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        GenPickyWhyNot(f.g, f.gq.query, f.whynot.missing, cfg));
  }
}
BENCHMARK(BM_GenPickyWhyNot);

void BM_MbsEnumeration(benchmark::State& state) {
  // Pure enumeration over synthetic costs (no verification), showing the
  // cost of the partial-enumeration scheme itself.
  size_t n = static_cast<size_t>(state.range(0));
  std::vector<double> costs(n);
  for (size_t i = 0; i < n; ++i) {
    costs[i] = 0.5 + static_cast<double>(i % 7) * 0.35;
  }
  std::vector<std::vector<size_t>> conflicts(n);
  for (auto _ : state) {
    size_t emitted = 0;
    EnumerateMaximalBoundedSets(costs, conflicts, 4.0, 5000,
                                [&](const std::vector<size_t>&) {
                                  ++emitted;
                                  return true;
                                });
    benchmark::DoNotOptimize(emitted);
  }
}
BENCHMARK(BM_MbsEnumeration)->Arg(16)->Arg(32)->Arg(64);

template <RewriteAnswer (*Algo)(const Graph&, const Query&,
                                const std::vector<NodeId>&,
                                const WhyQuestion&, const AnswerConfig&)>
void BM_WhyAlgorithm(benchmark::State& state) {
  const Fixture& f = SharedFixture();
  if (!f.ok) {
    state.SkipWithError("no fixture");
    return;
  }
  AnswerConfig cfg = Config();
  double closeness = 0.0;
  for (auto _ : state) {
    RewriteAnswer a = Algo(f.g, f.gq.query, f.gq.answers, f.why, cfg);
    closeness = a.eval.closeness;
    benchmark::DoNotOptimize(a);
  }
  state.counters["closeness"] = closeness;
}
BENCHMARK(BM_WhyAlgorithm<ExactWhy>)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_WhyAlgorithm<ApproxWhy>)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_WhyAlgorithm<IsoWhy>)->Unit(benchmark::kMillisecond);

template <RewriteAnswer (*Algo)(const Graph&, const Query&,
                                const std::vector<NodeId>&,
                                const WhyNotQuestion&, const AnswerConfig&)>
void BM_WhyNotAlgorithm(benchmark::State& state) {
  const Fixture& f = SharedFixture();
  if (!f.ok) {
    state.SkipWithError("no fixture");
    return;
  }
  AnswerConfig cfg = Config();
  double closeness = 0.0;
  for (auto _ : state) {
    RewriteAnswer a = Algo(f.g, f.gq.query, f.gq.answers, f.whynot, cfg);
    closeness = a.eval.closeness;
    benchmark::DoNotOptimize(a);
  }
  state.counters["closeness"] = closeness;
}
BENCHMARK(BM_WhyNotAlgorithm<ExactWhyNot>)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_WhyNotAlgorithm<FastWhyNot>)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_WhyNotAlgorithm<IsoWhyNot>)->Unit(benchmark::kMillisecond);

// ---------------------------------------------------------------------------
// Intra-question thread scaling (AnswerConfig::threads): the same question
// at 1/2/4/8 executor slots. Answers are bit-identical across widths (see
// why/exact_search.h), so the only thing these curves measure is wall
// clock. Run on a BSBM e-commerce graph — the acceptance fixture for the
// parallel MBS verification — sized so ExactWhy has a real enumeration to
// chew on. NOTE: on a single-core container the curve is flat or slightly
// regressive (oversubscription); see EXPERIMENTS.md for the recorded
// numbers and the multi-core expectation.

const Fixture& BsbmFixture() {
  static Fixture* f = [] {
    auto* out = new Fixture();
    BsbmConfig bc;
    bc.products = 2000;
    bc.seed = 7;
    out->g = GenerateBsbm(bc);
    WorkloadConfig wc;
    wc.items = 1;
    wc.query.edges = 4;
    wc.query.literals_per_node = 2;
    wc.query.slack = 0.6;
    wc.query.min_answers = 6;
    wc.seed = 11;
    Workload w = MakeWorkload(out->g, wc);
    if (!w.items.empty()) {
      out->gq = std::move(w.items[0].gq);
      out->why = std::move(w.items[0].why);
      out->whynot = std::move(w.items[0].whynot);
      out->ok = true;
    }
    return out;
  }();
  return *f;
}

// Deterministic caps: no wall-clock limit (it would flatten every curve at
// the limit) — the emission cap alone bounds the exact search, so each
// width verifies the same candidate sets and time tracks the parallel
// verification work.
AnswerConfig ScalingConfig(int64_t threads) {
  AnswerConfig cfg = Config();
  cfg.exact_time_limit_ms = 0;
  cfg.max_mbs = 2000;
  cfg.threads = static_cast<size_t>(threads);
  return cfg;
}

template <RewriteAnswer (*Algo)(const Graph&, const Query&,
                                const std::vector<NodeId>&,
                                const WhyQuestion&, const AnswerConfig&)>
void BM_WhyThreadScaling(benchmark::State& state) {
  const Fixture& f = BsbmFixture();
  if (!f.ok) {
    state.SkipWithError("no fixture");
    return;
  }
  AnswerConfig cfg = ScalingConfig(state.range(0));
  double closeness = 0.0;
  for (auto _ : state) {
    RewriteAnswer a = Algo(f.g, f.gq.query, f.gq.answers, f.why, cfg);
    closeness = a.eval.closeness;
    benchmark::DoNotOptimize(a);
  }
  state.counters["closeness"] = closeness;
}
BENCHMARK(BM_WhyThreadScaling<ExactWhy>)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_WhyThreadScaling<ApproxWhy>)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->Unit(benchmark::kMillisecond);

template <RewriteAnswer (*Algo)(const Graph&, const Query&,
                                const std::vector<NodeId>&,
                                const WhyNotQuestion&, const AnswerConfig&)>
void BM_WhyNotThreadScaling(benchmark::State& state) {
  const Fixture& f = BsbmFixture();
  if (!f.ok) {
    state.SkipWithError("no fixture");
    return;
  }
  AnswerConfig cfg = ScalingConfig(state.range(0));
  double closeness = 0.0;
  for (auto _ : state) {
    RewriteAnswer a = Algo(f.g, f.gq.query, f.gq.answers, f.whynot, cfg);
    closeness = a.eval.closeness;
    benchmark::DoNotOptimize(a);
  }
  state.counters["closeness"] = closeness;
}
BENCHMARK(BM_WhyNotThreadScaling<ExactWhyNot>)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_WhyNotThreadScaling<FastWhyNot>)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace whyq

BENCHMARK_MAIN();
