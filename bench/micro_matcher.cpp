// Microbenchmarks for the matching substrate: candidate filtering, full
// answer computation, incremental single-node verification, capped guard
// counting, and neighborhood expansion. These are the primitives whose
// costs the paper's complexity analysis is stated in (|N_d(...)|, |Q|,
// number of iso tests).

#include <benchmark/benchmark.h>

#include "whyq.h"

namespace whyq {
namespace {

struct Fixture {
  Graph g;
  GeneratedQuery gq;
  bool ok = false;
};

const Fixture& SharedFixture(DatasetProfile p, size_t edges) {
  static std::map<std::pair<int, size_t>, Fixture>* cache =
      new std::map<std::pair<int, size_t>, Fixture>();
  auto key = std::make_pair(static_cast<int>(p), edges);
  auto it = cache->find(key);
  if (it != cache->end()) return it->second;
  Fixture f;
  f.g = GenerateProfile(p, DefaultProfileNodes(p) / 4, 7);
  Rng rng(11);
  QueryGenConfig cfg;
  cfg.edges = edges;
  cfg.literals_per_node = 2;
  cfg.slack = 0.6;
  cfg.min_answers = 4;
  for (int attempt = 0; attempt < 12 && !f.ok; ++attempt) {
    std::optional<GeneratedQuery> gq = GenerateQuery(f.g, cfg, rng);
    if (gq.has_value()) {
      f.gq = std::move(*gq);
      f.ok = true;
    }
  }
  return cache->emplace(key, std::move(f)).first->second;
}

void BM_CandidateFilter(benchmark::State& state) {
  const Fixture& f =
      SharedFixture(DatasetProfile::kDBpedia, static_cast<size_t>(4));
  if (!f.ok) {
    state.SkipWithError("no query generated");
    return;
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        Candidates(f.g, f.gq.query, f.gq.query.output()));
  }
}
BENCHMARK(BM_CandidateFilter);

void BM_MatchOutput(benchmark::State& state) {
  const Fixture& f = SharedFixture(DatasetProfile::kDBpedia,
                                   static_cast<size_t>(state.range(0)));
  if (!f.ok) {
    state.SkipWithError("no query generated");
    return;
  }
  Matcher m(f.g);
  for (auto _ : state) {
    benchmark::DoNotOptimize(m.MatchOutput(f.gq.query));
  }
  state.counters["answers"] = static_cast<double>(f.gq.answers.size());
}
BENCHMARK(BM_MatchOutput)->Arg(2)->Arg(4)->Arg(6);

void BM_IsAnswerIncremental(benchmark::State& state) {
  const Fixture& f =
      SharedFixture(DatasetProfile::kDBpedia, static_cast<size_t>(4));
  if (!f.ok) {
    state.SkipWithError("no query generated");
    return;
  }
  Matcher m(f.g);
  size_t i = 0;
  for (auto _ : state) {
    NodeId v = f.gq.answers[i++ % f.gq.answers.size()];
    benchmark::DoNotOptimize(m.IsAnswer(f.gq.query, v));
  }
}
BENCHMARK(BM_IsAnswerIncremental);

void BM_CountAnswersCapped(benchmark::State& state) {
  const Fixture& f =
      SharedFixture(DatasetProfile::kDBpedia, static_cast<size_t>(4));
  if (!f.ok) {
    state.SkipWithError("no query generated");
    return;
  }
  Matcher m(f.g);
  NodeSet exclude(f.gq.answers, f.g.node_count());
  for (auto _ : state) {
    benchmark::DoNotOptimize(m.CountAnswersNotIn(
        f.gq.query, exclude, static_cast<size_t>(state.range(0))));
  }
}
BENCHMARK(BM_CountAnswersCapped)->Arg(0)->Arg(2)->Arg(16);

void BM_NeighborhoodExpansion(benchmark::State& state) {
  const Fixture& f =
      SharedFixture(DatasetProfile::kDBpedia, static_cast<size_t>(4));
  if (!f.ok) {
    state.SkipWithError("no query generated");
    return;
  }
  size_t depth = static_cast<size_t>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(WithinDistance(f.g, f.gq.answers, depth));
  }
}
BENCHMARK(BM_NeighborhoodExpansion)->Arg(1)->Arg(2)->Arg(3);

void BM_PathIndexBuild(benchmark::State& state) {
  const Fixture& f =
      SharedFixture(DatasetProfile::kDBpedia, static_cast<size_t>(4));
  if (!f.ok) {
    state.SkipWithError("no query generated");
    return;
  }
  for (auto _ : state) {
    PathIndex idx(f.gq.query, static_cast<size_t>(state.range(0)));
    benchmark::DoNotOptimize(idx.path_count());
  }
}
BENCHMARK(BM_PathIndexBuild)->Arg(4)->Arg(8)->Arg(16);

void BM_SimulationAnswers(benchmark::State& state) {
  const Fixture& f = SharedFixture(DatasetProfile::kDBpedia,
                                   static_cast<size_t>(state.range(0)));
  if (!f.ok) {
    state.SkipWithError("no query generated");
    return;
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(SimulationAnswers(f.g, f.gq.query));
  }
}
BENCHMARK(BM_SimulationAnswers)->Arg(2)->Arg(4)->Arg(6);

void BM_PathIndexTest(benchmark::State& state) {
  const Fixture& f =
      SharedFixture(DatasetProfile::kDBpedia, static_cast<size_t>(4));
  if (!f.ok) {
    state.SkipWithError("no query generated");
    return;
  }
  PathIndex idx(f.gq.query, 8);
  size_t i = 0;
  for (auto _ : state) {
    NodeId v = f.gq.answers[i++ % f.gq.answers.size()];
    benchmark::DoNotOptimize(idx.Passes(f.g, f.gq.query, v));
  }
}
BENCHMARK(BM_PathIndexTest);

// --- MBS-verification-shaped workload: the tentpole case for the -------
// request-scoped MatchContext. One "request" verifies a sweep of rewrites
// Q ⊕ O of a single Why question's query — exactly what ExactWhy's
// evaluator does per maximal bounded set: a capped guard count plus a
// batched answer test per rewrite. Refinement operators (AddE/AddL/RfL)
// exercise the delta path: each rewrite's literal set only tightens the
// base query's, so the context filters the memoized parent bitmap instead
// of rescanning the label bucket. The ContextFree/Context pair isolates
// what that plus O(1) bitmap probes buy.

struct MbsFixture {
  Graph g;
  Query query;
  std::vector<NodeId> answers;
  std::vector<Query> rewrites;  // the verification sweep
  std::vector<NodeId> probes;   // the "missing entities" answer test
  bool ok = false;
};

const MbsFixture& SharedMbsFixture() {
  static MbsFixture* f = [] {
    auto* fx = new MbsFixture();
    BsbmConfig bc;
    bc.products = 2000;  // ~11k nodes, deterministic
    bc.seed = 9;
    fx->g = GenerateBsbm(bc);
    Rng rng(41);
    QueryGenConfig cfg;
    cfg.edges = 4;
    cfg.literals_per_node = 2;
    cfg.min_answers = 2;
    for (int attempt = 0; attempt < 12 && !fx->ok; ++attempt) {
      std::optional<GeneratedQuery> gq = GenerateQuery(fx->g, cfg, rng);
      if (!gq.has_value()) continue;
      fx->query = gq->query;
      fx->answers = gq->answers;
      fx->ok = true;
    }
    if (!fx->ok) return fx;
    // Rewrite sweep: refinement picky operators for a Why question that
    // asks to drop one unexpected answer, applied singly and in
    // non-conflicting adjacent pairs — the set shapes an MBS enumeration
    // actually verifies.
    AnswerConfig acfg;
    std::vector<NodeId> unexpected(fx->answers.begin(),
                                   fx->answers.begin() + 1);
    std::vector<EditOp> ops =
        GenPickyWhy(fx->g, fx->query, fx->answers, unexpected, acfg);
    if (ops.size() > 48) ops.resize(48);
    for (const EditOp& op : ops) {
      fx->rewrites.push_back(ApplyOperators(fx->query, {op}));
    }
    for (size_t i = 0; i + 1 < ops.size(); i += 2) {
      if (OpsConflict(ops[i], ops[i + 1])) continue;
      fx->rewrites.push_back(
          ApplyOperators(fx->query, {ops[i], ops[i + 1]}));
    }
    // Probes: the original answers (the batched "which answers survive this
    // refinement" test the Why evaluator issues) plus same-label decoys.
    fx->probes = fx->answers;
    whyq::NodeSpan bucket =
        fx->g.NodesWithLabel(fx->query.node(fx->query.output()).label);
    for (size_t i = 0; i < bucket.size() && i < 16; ++i) {
      fx->probes.push_back(bucket[i]);
    }
    fx->ok = !fx->rewrites.empty();
    return fx;
  }();
  return *f;
}

// One full verification sweep; returns the matcher counters.
MatcherStats VerifySweep(const MbsFixture& f, MatchContext* ctx) {
  Matcher m(f.g);
  m.set_context(ctx);
  NodeSet exclude(f.answers, f.g.node_count());
  for (const Query& rw : f.rewrites) {
    benchmark::DoNotOptimize(m.CountAnswersNotIn(rw, exclude, 2));
    benchmark::DoNotOptimize(m.TestAnswers(rw, f.probes));
  }
  return m.stats();
}

void BM_MbsVerificationContextFree(benchmark::State& state) {
  const MbsFixture& f = SharedMbsFixture();
  if (!f.ok) {
    state.SkipWithError("no fixture");
    return;
  }
  MatcherStats s;
  for (auto _ : state) {
    s = VerifySweep(f, nullptr);
  }
  state.counters["rewrites"] = static_cast<double>(f.rewrites.size());
  state.counters["embeddings_tried"] = static_cast<double>(s.embeddings_tried);
  state.counters["iso_tests"] = static_cast<double>(s.iso_tests);
}
BENCHMARK(BM_MbsVerificationContextFree);

void BM_MbsVerificationContext(benchmark::State& state) {
  const MbsFixture& f = SharedMbsFixture();
  if (!f.ok) {
    state.SkipWithError("no fixture");
    return;
  }
  MatcherStats s;
  for (auto _ : state) {
    // Request-scoped: one fresh context per sweep, shared by every rewrite
    // in it — the lifetime the service/evaluators give it.
    MatchContext ctx(f.g);
    s = VerifySweep(f, &ctx);
  }
  state.counters["rewrites"] = static_cast<double>(f.rewrites.size());
  state.counters["embeddings_tried"] = static_cast<double>(s.embeddings_tried);
  state.counters["iso_tests"] = static_cast<double>(s.iso_tests);
  uint64_t lookups = s.ctx_hits + s.ctx_misses + s.ctx_delta_builds;
  state.counters["ctx_hit_rate"] =
      lookups == 0 ? 0.0
                   : static_cast<double>(s.ctx_hits) /
                         static_cast<double>(lookups);
  state.counters["ctx_delta_builds"] = static_cast<double>(s.ctx_delta_builds);
  state.counters["ctx_pruned"] = static_cast<double>(s.ctx_pruned);
}
BENCHMARK(BM_MbsVerificationContext);

// --- Cold start: frozen snapshot mmap vs GraphBuilder rebuild -----------
// The snapshot promise (docs/SNAPSHOT_FORMAT.md) is that re-opening a
// built graph costs a header validation plus one checksum pass over the
// image — no sorting, no index construction. The rebuild baseline times
// exactly the work the snapshot skips: repopulating a GraphBuilder from
// pre-extracted rows and running Build() (adjacency sort, dedup, label
// index, attribute ranges). Extraction/IO is hoisted out of both loops.

struct ColdStartFixture {
  std::string path;  // snapshot image of SharedMbsFixture().g
  // Pre-extracted rows of the same graph, ready to feed a GraphBuilder.
  std::vector<std::string> labels;
  std::vector<std::vector<std::pair<std::string, Value>>> attrs;
  std::vector<std::tuple<NodeId, NodeId, std::string>> edges;
  uint64_t image_bytes = 0;
  bool ok = false;
};

const ColdStartFixture& SharedColdStartFixture() {
  static ColdStartFixture* f = [] {
    auto* fx = new ColdStartFixture();
    const MbsFixture& mbs = SharedMbsFixture();
    if (!mbs.ok) return fx;
    const Graph& g = mbs.g;
    fx->path = "/tmp/whyq_micro_matcher_coldstart.whyqsnap";
    std::string err;
    if (!GraphSnapshot::Write(g, fx->path, &err)) return fx;
    GraphSnapshot::Info info;
    if (GraphSnapshot::ReadInfo(fx->path, &info, &err)) {
      fx->image_bytes = info.file_bytes;
    }
    for (NodeId v = 0; v < g.node_count(); ++v) {
      fx->labels.push_back(g.NodeLabelName(g.label(v)));
      auto& row = fx->attrs.emplace_back();
      for (const AttrEntry& e : g.attrs(v)) {
        row.emplace_back(g.AttrName(e.attr), e.value);
      }
      for (const HalfEdge& e : g.out_edges(v)) {
        fx->edges.emplace_back(v, e.other, g.EdgeLabelName(e.label));
      }
    }
    fx->ok = true;
    return fx;
  }();
  return *f;
}

void BM_ColdStartGraphRebuild(benchmark::State& state) {
  const ColdStartFixture& f = SharedColdStartFixture();
  if (!f.ok) {
    state.SkipWithError("no fixture");
    return;
  }
  size_t nodes = 0;
  for (auto _ : state) {
    GraphBuilder b;
    for (size_t v = 0; v < f.labels.size(); ++v) {
      b.AddNode(f.labels[v]);
      for (const auto& [name, value] : f.attrs[v]) {
        b.SetAttr(static_cast<NodeId>(v), name, value);
      }
    }
    for (const auto& [u, v, label] : f.edges) {
      b.AddEdge(u, v, label);
    }
    Graph rebuilt = b.Build();
    nodes = rebuilt.node_count();
    benchmark::DoNotOptimize(rebuilt);
  }
  state.counters["nodes"] = static_cast<double>(nodes);
  state.counters["edges"] = static_cast<double>(f.edges.size());
}
BENCHMARK(BM_ColdStartGraphRebuild);

void BM_ColdStartSnapshotLoad(benchmark::State& state) {
  const ColdStartFixture& f = SharedColdStartFixture();
  if (!f.ok) {
    state.SkipWithError("no fixture");
    return;
  }
  size_t nodes = 0;
  for (auto _ : state) {
    std::string err;
    std::unique_ptr<GraphSnapshot> snap = GraphSnapshot::Load(f.path, &err);
    if (snap == nullptr) {
      state.SkipWithError(("load failed: " + err).c_str());
      return;
    }
    nodes = snap->graph().node_count();
    benchmark::DoNotOptimize(snap);
  }
  state.counters["nodes"] = static_cast<double>(nodes);
  state.counters["image_bytes"] = static_cast<double>(f.image_bytes);
}
BENCHMARK(BM_ColdStartSnapshotLoad);

}  // namespace
}  // namespace whyq

BENCHMARK_MAIN();
