// Microbenchmarks for the matching substrate: candidate filtering, full
// answer computation, incremental single-node verification, capped guard
// counting, and neighborhood expansion. These are the primitives whose
// costs the paper's complexity analysis is stated in (|N_d(...)|, |Q|,
// number of iso tests).

#include <benchmark/benchmark.h>

#include "whyq.h"

namespace whyq {
namespace {

struct Fixture {
  Graph g;
  GeneratedQuery gq;
  bool ok = false;
};

const Fixture& SharedFixture(DatasetProfile p, size_t edges) {
  static std::map<std::pair<int, size_t>, Fixture>* cache =
      new std::map<std::pair<int, size_t>, Fixture>();
  auto key = std::make_pair(static_cast<int>(p), edges);
  auto it = cache->find(key);
  if (it != cache->end()) return it->second;
  Fixture f;
  f.g = GenerateProfile(p, DefaultProfileNodes(p) / 4, 7);
  Rng rng(11);
  QueryGenConfig cfg;
  cfg.edges = edges;
  cfg.literals_per_node = 2;
  cfg.slack = 0.6;
  cfg.min_answers = 4;
  for (int attempt = 0; attempt < 12 && !f.ok; ++attempt) {
    std::optional<GeneratedQuery> gq = GenerateQuery(f.g, cfg, rng);
    if (gq.has_value()) {
      f.gq = std::move(*gq);
      f.ok = true;
    }
  }
  return cache->emplace(key, std::move(f)).first->second;
}

void BM_CandidateFilter(benchmark::State& state) {
  const Fixture& f =
      SharedFixture(DatasetProfile::kDBpedia, static_cast<size_t>(4));
  if (!f.ok) {
    state.SkipWithError("no query generated");
    return;
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        Candidates(f.g, f.gq.query, f.gq.query.output()));
  }
}
BENCHMARK(BM_CandidateFilter);

void BM_MatchOutput(benchmark::State& state) {
  const Fixture& f = SharedFixture(DatasetProfile::kDBpedia,
                                   static_cast<size_t>(state.range(0)));
  if (!f.ok) {
    state.SkipWithError("no query generated");
    return;
  }
  Matcher m(f.g);
  for (auto _ : state) {
    benchmark::DoNotOptimize(m.MatchOutput(f.gq.query));
  }
  state.counters["answers"] = static_cast<double>(f.gq.answers.size());
}
BENCHMARK(BM_MatchOutput)->Arg(2)->Arg(4)->Arg(6);

void BM_IsAnswerIncremental(benchmark::State& state) {
  const Fixture& f =
      SharedFixture(DatasetProfile::kDBpedia, static_cast<size_t>(4));
  if (!f.ok) {
    state.SkipWithError("no query generated");
    return;
  }
  Matcher m(f.g);
  size_t i = 0;
  for (auto _ : state) {
    NodeId v = f.gq.answers[i++ % f.gq.answers.size()];
    benchmark::DoNotOptimize(m.IsAnswer(f.gq.query, v));
  }
}
BENCHMARK(BM_IsAnswerIncremental);

void BM_CountAnswersCapped(benchmark::State& state) {
  const Fixture& f =
      SharedFixture(DatasetProfile::kDBpedia, static_cast<size_t>(4));
  if (!f.ok) {
    state.SkipWithError("no query generated");
    return;
  }
  Matcher m(f.g);
  NodeSet exclude(f.gq.answers, f.g.node_count());
  for (auto _ : state) {
    benchmark::DoNotOptimize(m.CountAnswersNotIn(
        f.gq.query, exclude, static_cast<size_t>(state.range(0))));
  }
}
BENCHMARK(BM_CountAnswersCapped)->Arg(0)->Arg(2)->Arg(16);

void BM_NeighborhoodExpansion(benchmark::State& state) {
  const Fixture& f =
      SharedFixture(DatasetProfile::kDBpedia, static_cast<size_t>(4));
  if (!f.ok) {
    state.SkipWithError("no query generated");
    return;
  }
  size_t depth = static_cast<size_t>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(WithinDistance(f.g, f.gq.answers, depth));
  }
}
BENCHMARK(BM_NeighborhoodExpansion)->Arg(1)->Arg(2)->Arg(3);

void BM_PathIndexBuild(benchmark::State& state) {
  const Fixture& f =
      SharedFixture(DatasetProfile::kDBpedia, static_cast<size_t>(4));
  if (!f.ok) {
    state.SkipWithError("no query generated");
    return;
  }
  for (auto _ : state) {
    PathIndex idx(f.gq.query, static_cast<size_t>(state.range(0)));
    benchmark::DoNotOptimize(idx.path_count());
  }
}
BENCHMARK(BM_PathIndexBuild)->Arg(4)->Arg(8)->Arg(16);

void BM_SimulationAnswers(benchmark::State& state) {
  const Fixture& f = SharedFixture(DatasetProfile::kDBpedia,
                                   static_cast<size_t>(state.range(0)));
  if (!f.ok) {
    state.SkipWithError("no query generated");
    return;
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(SimulationAnswers(f.g, f.gq.query));
  }
}
BENCHMARK(BM_SimulationAnswers)->Arg(2)->Arg(4)->Arg(6);

void BM_PathIndexTest(benchmark::State& state) {
  const Fixture& f =
      SharedFixture(DatasetProfile::kDBpedia, static_cast<size_t>(4));
  if (!f.ok) {
    state.SkipWithError("no query generated");
    return;
  }
  PathIndex idx(f.gq.query, 8);
  size_t i = 0;
  for (auto _ : state) {
    NodeId v = f.gq.answers[i++ % f.gq.answers.size()];
    benchmark::DoNotOptimize(idx.Passes(f.g, f.gq.query, v));
  }
}
BENCHMARK(BM_PathIndexTest);

}  // namespace
}  // namespace whyq

BENCHMARK_MAIN();
