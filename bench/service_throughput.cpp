// Throughput/scaling driver for the explanation service (DESIGN.md
// "Serving architecture"):
//   part a: requests/sec of one shared WhyqService at 1/2/4/8 workers over
//           a mixed why/whynot workload (same batch each row).
//   part b: prepared-question cache on vs off — repeated questions over a
//           small query pool amortize the MatchOutput + PathIndex build.
//   part c: fixed core budget of 8 split between inter-question workers and
//           intra-question threads (ServiceConfig::intra_threads) — where
//           should a deployment spend its cores?
//   part d: the same service behind the whyq_server socket daemon —
//           closed-loop clients over loopback TCP, req/s at saturation
//           (clients == workers) and at 2x overload against a small
//           admission queue, where rejected-with-retry_after_ms responses
//           shed the excess instead of queueing it.
//   part e: incremental updates — Graph::ApplyUpdate vs the full-rebuild
//           reference across batch sizes, then update/read interference:
//           closed-loop readers with and without a concurrent writer
//           publishing epochs through WhyqService::ApplyUpdate.
//   part f: persistent plan store across restarts — per-query store-load
//           vs PrepareQuery cost, then a simulated cold restart (fresh
//           service, warm vs absent store): time-to-first-hit and p95
//           over the first request round.
//
// EXPERIMENTS.md records the shapes: >1x scaling 1 -> 4 workers, a
// visible cache-hit speedup, overload shedding via admission control,
// incremental beating rebuild on small batches, and a store-warmed
// restart reaching steady-state cache-hit latency on its first request.

#include <sys/socket.h>

#include <algorithm>
#include <atomic>
#include <filesystem>
#include <future>
#include <memory>
#include <optional>
#include <thread>
#include <utility>
#include <vector>

#include "bench/bench_common.h"
#include "common/net.h"
#include "graph/update.h"
#include "server/json.h"
#include "server/limits.h"
#include "server/server.h"
#include "service/plan.h"

namespace whyq::bench {
namespace {

std::vector<ServiceRequest> BuildRequests(const Graph& g, const Workload& w,
                                          size_t rounds) {
  std::vector<ServiceRequest> reqs;
  for (size_t r = 0; r < rounds; ++r) {
    for (const Workload::Item& item : w.items) {
      ServiceRequest why;
      why.kind = RequestKind::kWhy;
      why.query_text = WriteQuery(item.gq.query, g);
      why.entities = item.why.unexpected;
      why.config = DefaultAnswerConfig();
      reqs.push_back(why);

      ServiceRequest whynot = why;
      whynot.kind = RequestKind::kWhyNot;
      whynot.entities = item.whynot.missing;
      whynot.condition = item.whynot.condition;
      reqs.push_back(whynot);
    }
  }
  return reqs;
}

// Submits every request (spinning on backpressure), waits for all
// responses, and returns the wall-clock milliseconds for the whole batch.
double RunBatch(WhyqService* service,
                const std::vector<ServiceRequest>& reqs) {
  Timer timer;
  std::vector<std::future<ServiceResponse>> futures;
  futures.reserve(reqs.size());
  for (const ServiceRequest& req : reqs) {
    for (;;) {
      std::optional<std::future<ServiceResponse>> f = service->Submit(req);
      if (f.has_value()) {
        futures.push_back(std::move(*f));
        break;
      }
      std::this_thread::yield();
    }
  }
  for (auto& f : futures) f.get();
  return timer.ElapsedMillis();
}

void PartScaling(const Flags& flags,
                 const std::shared_ptr<const Graph>& graph,
                 const std::vector<ServiceRequest>& reqs) {
  TextTable t({"workers", "batch_ms", "req_per_s", "speedup_vs_1", "hits",
               "why_p95_ms", "whynot_p95_ms"});
  // Per-class streaming-histogram p95 (whole batch, not a sample): shows
  // tail latency growing with queueing as the worker count shrinks.
  auto p95 = [](const StatsSnapshot& s, const char* klass) {
    auto it = s.latency.find(klass);
    if (it == s.latency.end() || it->second.count == 0) return std::string("-");
    return TextTable::Num(it->second.p95_ms, 2);
  };
  double base_ms = 0.0;
  for (size_t workers : {1u, 2u, 4u, 8u}) {
    ServiceConfig sc;
    sc.workers = workers;
    sc.queue_capacity = 64;
    sc.cache_capacity = 64;
    WhyqService service(graph, sc);
    double ms = RunBatch(&service, reqs);
    if (workers == 1) base_ms = ms;
    StatsSnapshot s = service.Stats();
    t.AddRow({std::to_string(workers), TextTable::Num(ms, 1),
              TextTable::Num(1000.0 * static_cast<double>(reqs.size()) / ms,
                             1),
              TextTable::Num(base_ms / ms), std::to_string(s.cache_hits),
              p95(s, "why/auto"), p95(s, "whynot/auto")});
  }
  std::printf(
      "%s\n",
      t.ToString("Part a: worker scaling (shared graph, mixed why/whynot)")
          .c_str());
}

// Per-request latency of a repeated question, cache off vs on. The cache
// amortizes the per-request *fixed* cost — the MatchOutput answer scan and
// the PathIndex build — so the probe is a question whose search phase is
// trivial (why-so-many already at its target): cold requests pay the full
// answer match, warm requests reuse the prepared artifacts.
void PartCache(const Flags& flags,
               const std::shared_ptr<const Graph>& graph,
               const Workload& w) {
  ServiceRequest req;
  req.kind = RequestKind::kWhySoMany;
  req.query_text = WriteQuery(w.items[0].gq.query, *graph);
  req.target_k = graph->node_count();  // already satisfied
  req.config = DefaultAnswerConfig();

  constexpr int kReps = 10;
  TextTable t({"cache", "mean_ms", "hits", "misses"});
  double mean[2] = {0.0, 0.0};
  int row = 0;
  for (size_t capacity : {0u, 64u}) {
    ServiceConfig sc;
    sc.workers = 1;
    sc.cache_capacity = capacity;
    WhyqService service(graph, sc);
    service.Execute(req);  // warmup (cold miss; populates the cache if on)
    Timer timer;
    for (int i = 0; i < kReps; ++i) service.Execute(req);
    mean[row] = timer.ElapsedMillis() / kReps;
    StatsSnapshot s = service.Stats();
    t.AddRow({capacity == 0 ? "off" : "on", TextTable::Num(mean[row], 2),
              std::to_string(s.cache_hits),
              std::to_string(s.cache_misses)});
    ++row;
  }
  std::printf(
      "%s",
      t.ToString("Part b: prepared-question cache (repeated question)")
          .c_str());
  std::printf("cache-hit speedup: %.2fx\n\n",
              mean[1] > 0 ? mean[0] / mean[1] : 0.0);
}

// Same batch, same 8-core budget, different split. Requests leave
// AnswerConfig::threads at 0 so each service substitutes its own
// intra_threads; throughput favors many workers (no fork/join overhead,
// per-question work is embarrassingly independent) while wide intra
// helps tail latency of single heavy questions — the table makes the
// throughput side of that trade-off concrete.
void PartCoreBudget(const Flags& flags,
                    const std::shared_ptr<const Graph>& graph,
                    const std::vector<ServiceRequest>& reqs) {
  TextTable t({"workers", "intra_threads", "batch_ms", "req_per_s",
               "speedup_vs_8x1"});
  double base_ms = 0.0;
  for (auto [workers, intra] :
       {std::pair<size_t, size_t>{8, 1}, {4, 2}, {2, 4}, {1, 8}}) {
    ServiceConfig sc;
    sc.workers = workers;
    sc.intra_threads = intra;
    sc.queue_capacity = 64;
    sc.cache_capacity = 64;
    WhyqService service(graph, sc);
    double ms = RunBatch(&service, reqs);
    if (workers == 8) base_ms = ms;
    t.AddRow({std::to_string(workers), std::to_string(intra),
              TextTable::Num(ms, 1),
              TextTable::Num(1000.0 * static_cast<double>(reqs.size()) / ms,
                             1),
              TextTable::Num(base_ms / ms)});
  }
  std::printf(
      "%s\n",
      t.ToString("Part c: fixed 8-core budget, workers x intra_threads")
          .c_str());
}

// Encodes a request as one wire line. The why-not condition cannot travel
// over the wire (the protocol has no condition field); part d's load uses
// the entity lists alone, which is what a network client could offer.
std::string WireLine(const ServiceRequest& r) {
  std::string line = "{\"question\":\"";
  line += r.kind == RequestKind::kWhy ? "why" : "whynot";
  line += "\",\"query\":\"" + server::JsonEscape(r.query_text) + "\"";
  line += ",\"entities\":[";
  for (size_t i = 0; i < r.entities.size(); ++i) {
    if (i > 0) line += ",";
    line += server::JsonNumber(static_cast<double>(r.entities[i]));
  }
  line += "],\"budget\":" + server::JsonNumber(r.config.budget);
  line += ",\"guard\":" + server::JsonNumber(double(r.config.guard_m));
  line += "}\n";
  return line;
}

/// One closed-loop client: sends a request, blocks for the response, sends
/// the next. A "rejected" response is retried after its retry_after_ms
/// hint; everything else counts toward throughput.
struct ClientTotals {
  uint64_t ok = 0;
  uint64_t rejected = 0;
  std::vector<double> latencies_ms;
};

ClientTotals RunClient(uint16_t port, const std::vector<std::string>& lines,
                       size_t begin, size_t count) {
  ClientTotals totals;
  std::string error;
  UniqueFd fd = ConnectTcp(port, &error);
  if (!fd.valid()) return totals;
  std::string buf;
  auto read_line = [&](std::string* out) {
    for (;;) {
      size_t nl = buf.find('\n');
      if (nl != std::string::npos) {
        *out = buf.substr(0, nl);
        buf.erase(0, nl + 1);
        return true;
      }
      char chunk[4096];
      ssize_t n = recv(fd.get(), chunk, sizeof(chunk), 0);
      if (n <= 0) return false;
      buf.append(chunk, static_cast<size_t>(n));
    }
  };
  for (size_t i = 0; i < count; ++i) {
    const std::string& line = lines[(begin + i) % lines.size()];
    Timer timer;
    for (;;) {
      if (send(fd.get(), line.data(), line.size(), MSG_NOSIGNAL) < 0) {
        return totals;
      }
      std::string resp;
      if (!read_line(&resp)) return totals;
      if (resp.find("\"status\":\"rejected\"") == std::string::npos) break;
      ++totals.rejected;
      server::JsonValue v;
      std::string perr;
      double wait_ms = server::kRetryAfterMs;
      if (server::ParseJson(resp, server::kMaxJsonDepth, &v, &perr)) {
        if (const server::JsonValue* retry = v.Find("retry_after_ms")) {
          wait_ms = retry->as_number();
        }
      }
      std::this_thread::sleep_for(
          std::chrono::microseconds(static_cast<long>(wait_ms * 1000)));
    }
    totals.latencies_ms.push_back(timer.ElapsedMillis());
    ++totals.ok;
  }
  return totals;
}

void PartSocket(const Flags& flags,
                const std::shared_ptr<const Graph>& graph,
                const std::vector<ServiceRequest>& reqs) {
  std::vector<std::string> lines;
  lines.reserve(reqs.size());
  for (const ServiceRequest& r : reqs) lines.push_back(WireLine(r));

  constexpr size_t kWorkers = 4;
  TextTable t({"mode", "clients", "queue", "req_per_s", "accepted_p95_ms",
               "ok", "rejected"});
  struct Row {
    const char* mode;
    size_t clients;
    size_t queue;
  };
  // Closed-loop saturation: one in-flight request per worker. Overload:
  // twice the clients against a queue too small to hide them — the excess
  // must come back as immediate rejections, not latency.
  for (const Row& row : {Row{"saturation", kWorkers, 64},
                         Row{"overload_2x", 2 * kWorkers, 2}}) {
    server::ServerConfig cfg;
    cfg.service.workers = kWorkers;
    cfg.service.queue_capacity = row.queue;
    cfg.service.cache_capacity = 64;
    server::WhyqServer server({{"bench", graph}}, cfg);
    std::string error;
    if (!server.Start(&error)) {
      std::fprintf(stderr, "server start failed: %s\n", error.c_str());
      return;
    }
    std::thread loop([&server] { server.Run(nullptr); });

    size_t per_client =
        std::max<size_t>(1, lines.size() / row.clients);
    std::vector<std::future<ClientTotals>> futures;
    Timer timer;
    for (size_t c = 0; c < row.clients; ++c) {
      futures.push_back(std::async(std::launch::async, RunClient,
                                   server.port(), std::cref(lines),
                                   c * per_client, per_client));
    }
    uint64_t ok = 0;
    uint64_t rejected = 0;
    std::vector<double> latencies;
    for (auto& f : futures) {
      ClientTotals totals = f.get();
      ok += totals.ok;
      rejected += totals.rejected;
      latencies.insert(latencies.end(), totals.latencies_ms.begin(),
                       totals.latencies_ms.end());
    }
    double elapsed_ms = timer.ElapsedMillis();
    server.RequestStop();
    loop.join();

    std::sort(latencies.begin(), latencies.end());
    double p95 = latencies.empty()
                     ? 0.0
                     : latencies[latencies.size() * 95 / 100];
    t.AddRow({row.mode, std::to_string(row.clients),
              std::to_string(row.queue),
              TextTable::Num(1000.0 * static_cast<double>(ok) / elapsed_ms,
                             1),
              TextTable::Num(p95, 2), std::to_string(ok),
              std::to_string(rejected)});
  }
  std::printf(
      "%s\n",
      t.ToString("Part d: whyq_server socket daemon (closed-loop clients)")
          .c_str());
}

// A batch of `ops` mutations valid against any epoch of `g`: new nodes
// under a bench-only label, an attribute on each, and a chain edge back to
// the previously added node. Everything lives on symbols no workload query
// mentions, so against the prepared cache the batch is pure rekey traffic —
// the interference measured below is the epoch publish itself, not cache
// rebuild work.
UpdateBatch MakeUpdateBatch(const Graph& g, size_t ops) {
  UpdateBatch b;
  NodeId next = static_cast<NodeId>(g.node_count());
  NodeId prev = kInvalidNode;
  for (size_t i = 0; i < ops; ++i) {
    switch (i % 3) {
      case 0:
        b.ops.push_back(UpdateOp::AddNode("BenchNode"));
        prev = next++;
        break;
      case 1:
        b.ops.push_back(UpdateOp::SetAttr(
            prev, "bench_heat", Value(static_cast<int64_t>(i))));
        break;
      default:
        if (next >= g.node_count() + 2) {
          b.ops.push_back(UpdateOp::AddEdge(prev, prev - 1, "bench_link"));
        } else {
          b.ops.push_back(UpdateOp::SetAttr(
              prev, "bench_cold", Value(static_cast<int64_t>(i))));
        }
        break;
    }
  }
  return b;
}

void PartUpdates(const Flags& flags,
                 const std::shared_ptr<const Graph>& graph,
                 const Workload& w) {
  // --- e1: incremental ApplyUpdate vs. the full-rebuild reference --------
  // Same batch, same base epoch, mean over kReps applications. The
  // incremental path splices only the touched label runs; the rebuild pays
  // the whole graph every time, so its cost is flat in the batch size.
  constexpr int kReps = 5;
  TextTable t({"batch_ops", "incremental_ms", "rebuild_ms", "speedup"});
  for (size_t ops : {1u, 8u, 64u, 512u}) {
    UpdateBatch batch = MakeUpdateBatch(*graph, ops);
    double inc_ms = 0.0;
    double reb_ms = 0.0;
    for (int rep = 0; rep < kReps; ++rep) {
      Graph next;
      UpdateResult r;
      Timer timer;
      if (!graph->ApplyUpdate(batch, &next, &r)) {
        std::fprintf(stderr, "incremental apply failed: %s\n",
                     r.error.c_str());
        return;
      }
      inc_ms += timer.ElapsedMillis();
      Graph rebuilt;
      Timer timer2;
      if (!ApplyUpdateByRebuild(*graph, batch, &rebuilt, &r)) {
        std::fprintf(stderr, "rebuild apply failed: %s\n", r.error.c_str());
        return;
      }
      reb_ms += timer2.ElapsedMillis();
    }
    inc_ms /= kReps;
    reb_ms /= kReps;
    t.AddRow({std::to_string(ops), TextTable::Num(inc_ms, 3),
              TextTable::Num(reb_ms, 3),
              TextTable::Num(inc_ms > 0 ? reb_ms / inc_ms : 0.0)});
  }
  std::printf(
      "%s\n",
      t.ToString("Part e1: ApplyUpdate incremental vs. full rebuild")
          .c_str());

  // --- e2: update/read interference --------------------------------------
  // Closed-loop readers against one service, first with the writer idle,
  // then with a writer publishing 8-op epochs as fast as it can. The
  // batches are footprint-disjoint from the probe, so surviving cache
  // entries are rekeyed and reads keep hitting — the p95 delta isolates
  // the cost of concurrent epoch publishes on the read path.
  ServiceRequest probe;
  probe.kind = RequestKind::kWhySoMany;
  probe.query_text = WriteQuery(w.items[0].gq.query, *graph);
  probe.target_k = graph->node_count();  // already satisfied: trivial search
  probe.config = DefaultAnswerConfig();

  constexpr size_t kReaders = 2;
  constexpr size_t kReadsPerReader = 2000;
  TextTable t2({"writer", "reads_per_s", "read_p95_ms", "cache_hits",
                "updates", "updates_per_s"});
  for (bool with_writer : {false, true}) {
    ServiceConfig sc;
    sc.workers = kReaders;
    sc.cache_capacity = 64;
    WhyqService service(graph, sc);
    service.Execute(probe);  // warm the prepared cache

    std::atomic<bool> readers_done{false};
    std::vector<std::vector<double>> lat(kReaders);
    std::vector<std::thread> readers;
    Timer timer;
    for (size_t i = 0; i < kReaders; ++i) {
      readers.emplace_back([&, i] {
        lat[i].reserve(kReadsPerReader);
        for (size_t r = 0; r < kReadsPerReader; ++r) {
          Timer one;
          service.Execute(probe);
          lat[i].push_back(one.ElapsedMillis());
        }
      });
    }
    uint64_t updates = 0;
    if (with_writer) {
      // Publish epochs until the readers finish; each batch is built
      // against the epoch it will apply to (node ids shift per publish).
      std::thread monitor([&] {
        for (std::thread& th : readers) th.join();
        readers_done.store(true);
      });
      while (!readers_done.load()) {
        UpdateResult ur;
        UpdateBatch batch = MakeUpdateBatch(*service.graph(), 8);
        if (!service.ApplyUpdate(batch, &ur)) {
          std::fprintf(stderr, "writer apply failed: %s\n", ur.error.c_str());
          break;
        }
        ++updates;
      }
      monitor.join();
    } else {
      for (std::thread& th : readers) th.join();
    }
    double elapsed_ms = timer.ElapsedMillis();

    std::vector<double> all;
    for (const auto& v : lat) all.insert(all.end(), v.begin(), v.end());
    std::sort(all.begin(), all.end());
    double p95 = all.empty() ? 0.0 : all[all.size() * 95 / 100];
    StatsSnapshot s = service.Stats();
    t2.AddRow({with_writer ? "on" : "off",
               TextTable::Num(1000.0 * static_cast<double>(all.size()) /
                                  elapsed_ms,
                              1),
               TextTable::Num(p95, 3), std::to_string(s.cache_hits),
               std::to_string(updates),
               TextTable::Num(1000.0 * static_cast<double>(updates) /
                                  elapsed_ms,
                              1)});
  }
  std::printf(
      "%s\n",
      t2.ToString("Part e2: read latency with a concurrent epoch writer")
          .c_str());
}

// Persistent plan store across restarts (docs/PLAN_FORMAT.md). f1 prices
// the two ways a process can obtain a prepared question — build it
// (PrepareQuery: answer match + candidates + PathIndex sample) or load it
// from the store (read + validate + re-parse) — per workload query.
// f2 simulates the deploy/crash cycle the store exists for: a fresh
// service (empty in-memory cache, the "restarted process") answers the
// first request round with no store and with the store a previous
// "process" left behind; with warm-load the very first request is already
// a prepared-cache hit, so time-to-first-hit collapses from a cold build
// to steady-state latency.
void PartPlanStore(const Flags& flags,
                   const std::shared_ptr<const Graph>& graph,
                   const Workload& w) {
  const uint64_t fp = GraphFingerprint(*graph);
  const AnswerConfig base_cfg = DefaultAnswerConfig();
  const MatchSemantics sem = base_cfg.semantics;
  const size_t max_paths = base_cfg.path_index_paths;
  const PlanStamp stamp{fp, graph->identity(), graph->generation()};

  // --- f1: store load vs PrepareQuery, per query --------------------------
  const std::string cost_dir = "bench_plans_cost";
  std::filesystem::remove_all(cost_dir);
  {
    PlanStore store(cost_dir);
    constexpr int kLoadReps = 20;
    TextTable t({"query", "prepare_ms", "store_load_ms", "load_speedup"});
    double prep_total = 0.0;
    double load_total = 0.0;
    for (size_t i = 0; i < w.items.size(); ++i) {
      const Query& q = w.items[i].gq.query;
      std::string canonical = WriteQuery(q, *graph);
      bool complete = false;
      Timer prep_timer;
      std::shared_ptr<const PreparedQuery> built =
          PrepareQuery(*graph, Query(q), sem, max_paths,
                       /*cancel=*/nullptr, &complete);
      double prep_ms = prep_timer.ElapsedMillis();
      if (!complete) {
        std::fprintf(stderr, "part f: PrepareQuery did not complete\n");
        return;
      }
      store.SaveAsync(built, canonical, max_paths, stamp);
      store.Flush();
      Timer load_timer;
      for (int rep = 0; rep < kLoadReps; ++rep) {
        if (store.TryLoad(*graph, fp, sem, max_paths, canonical) == nullptr) {
          std::fprintf(stderr, "part f: store probe missed a saved plan\n");
          return;
        }
      }
      double load_ms = load_timer.ElapsedMillis() / kLoadReps;
      prep_total += prep_ms;
      load_total += load_ms;
      t.AddRow({"q" + std::to_string(i), TextTable::Num(prep_ms, 3),
                TextTable::Num(load_ms, 3),
                TextTable::Num(load_ms > 0 ? prep_ms / load_ms : 0.0, 1)});
    }
    t.AddRow({"total", TextTable::Num(prep_total, 3),
              TextTable::Num(load_total, 3),
              TextTable::Num(load_total > 0 ? prep_total / load_total : 0.0,
                             1)});
    std::printf(
        "%s\n",
        t.ToString("Part f1: PrepareQuery vs. plan-store load, per query")
            .c_str());
  }
  std::filesystem::remove_all(cost_dir);

  // --- f2: cold restart, with vs. without a warm store --------------------
  // One probe per distinct workload query, each with a trivial search
  // (why-so-many already at its target, the part-b pattern): the measured
  // latency is the per-request *fixed* cost — answer match + candidates +
  // PathIndex — which is exactly what the store persists. A heavy
  // why-question would hide the restart cost behind its search phase.
  std::vector<ServiceRequest> probes;
  probes.reserve(w.items.size());
  for (const Workload::Item& item : w.items) {
    ServiceRequest probe;
    probe.kind = RequestKind::kWhySoMany;
    probe.query_text = WriteQuery(item.gq.query, *graph);
    probe.target_k = graph->node_count();  // already satisfied
    probe.config = base_cfg;
    probes.push_back(probe);
  }
  const size_t first_round = probes.size();
  const std::string store_dir = "bench_plans_restart";
  std::filesystem::remove_all(store_dir);
  {
    // The "previous process": populate the store, then shut down.
    ServiceConfig sc;
    sc.workers = 1;
    sc.cache_capacity = 64;
    sc.plan_store = std::make_shared<PlanStore>(store_dir);
    WhyqService service(graph, sc);
    for (size_t i = 0; i < first_round; ++i) service.Execute(probes[i]);
    sc.plan_store->Flush();
  }

  TextTable t({"store", "first_req_ms", "p95_first_round_ms", "cache_hits",
               "cache_misses"});
  for (bool with_store : {false, true}) {
    ServiceConfig sc;
    sc.workers = 1;
    sc.cache_capacity = 64;
    if (with_store) sc.plan_store = std::make_shared<PlanStore>(store_dir);
    WhyqService service(graph, sc);  // the restarted process
    std::vector<double> lat;
    lat.reserve(first_round);
    for (size_t i = 0; i < first_round; ++i) {
      Timer one;
      service.Execute(probes[i]);
      lat.push_back(one.ElapsedMillis());
    }
    double first_ms = lat[0];
    std::sort(lat.begin(), lat.end());
    double p95 = lat[lat.size() * 95 / 100];
    // Boot warm-load fills the in-memory cache, so a store-warmed restart
    // shows up as cache_hits == the whole round (store counters untouched:
    // warm loads are neither probes nor misses).
    StatsSnapshot s = service.Stats();
    t.AddRow({with_store ? "warm" : "none", TextTable::Num(first_ms, 3),
              TextTable::Num(p95, 3), std::to_string(s.cache_hits),
              std::to_string(s.cache_misses)});
  }
  std::filesystem::remove_all(store_dir);
  std::printf(
      "%s\n",
      t.ToString("Part f2: cold restart, first round with/without the store")
          .c_str());
}

int Main(int argc, char** argv) {
  Flags flags = ParseFlags(argc, argv);
  BsbmConfig bc;
  bc.products = static_cast<size_t>(2000.0 * flags.scale);
  bc.seed = 7;
  auto graph = std::make_shared<const Graph>(GenerateBsbm(bc));
  std::printf("graph: %s\n\n", ComputeStats(*graph).ToString().c_str());

  WorkloadConfig wc = DefaultWorkload(flags, 8);
  Workload w = MakeWorkload(*graph, wc);
  if (w.items.empty()) {
    std::fprintf(stderr, "no workload items generated\n");
    return 1;
  }
  // 4 rounds over the item pool: plenty of repeated questions, so both
  // parts exercise the cache the way a serving deployment would.
  std::vector<ServiceRequest> reqs = BuildRequests(*graph, w, 4);
  std::printf("workload: %zu items x 2 kinds x 4 rounds = %zu requests\n\n",
              w.items.size(), reqs.size());

  if (RunPart(flags, "a")) PartScaling(flags, graph, reqs);
  if (RunPart(flags, "b")) PartCache(flags, graph, w);
  if (RunPart(flags, "c")) PartCoreBudget(flags, graph, reqs);
  if (RunPart(flags, "d")) PartSocket(flags, graph, reqs);
  if (RunPart(flags, "e")) PartUpdates(flags, graph, w);
  if (RunPart(flags, "f")) PartPlanStore(flags, graph, w);
  return 0;
}

}  // namespace
}  // namespace whyq::bench

int main(int argc, char** argv) { return whyq::bench::Main(argc, argv); }
