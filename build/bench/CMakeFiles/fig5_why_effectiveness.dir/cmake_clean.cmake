file(REMOVE_RECURSE
  "CMakeFiles/fig5_why_effectiveness.dir/fig5_why_effectiveness.cpp.o"
  "CMakeFiles/fig5_why_effectiveness.dir/fig5_why_effectiveness.cpp.o.d"
  "fig5_why_effectiveness"
  "fig5_why_effectiveness.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5_why_effectiveness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
