# Empty compiler generated dependencies file for fig5_why_effectiveness.
# This may be replaced when dependencies are built.
