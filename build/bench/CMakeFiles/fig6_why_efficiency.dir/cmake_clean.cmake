file(REMOVE_RECURSE
  "CMakeFiles/fig6_why_efficiency.dir/fig6_why_efficiency.cpp.o"
  "CMakeFiles/fig6_why_efficiency.dir/fig6_why_efficiency.cpp.o.d"
  "fig6_why_efficiency"
  "fig6_why_efficiency.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6_why_efficiency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
