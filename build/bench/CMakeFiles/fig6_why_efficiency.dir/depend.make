# Empty dependencies file for fig6_why_efficiency.
# This may be replaced when dependencies are built.
