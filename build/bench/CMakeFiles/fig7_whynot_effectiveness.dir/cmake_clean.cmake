file(REMOVE_RECURSE
  "CMakeFiles/fig7_whynot_effectiveness.dir/fig7_whynot_effectiveness.cpp.o"
  "CMakeFiles/fig7_whynot_effectiveness.dir/fig7_whynot_effectiveness.cpp.o.d"
  "fig7_whynot_effectiveness"
  "fig7_whynot_effectiveness.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7_whynot_effectiveness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
