# Empty dependencies file for fig7_whynot_effectiveness.
# This may be replaced when dependencies are built.
