file(REMOVE_RECURSE
  "CMakeFiles/fig8_whynot_efficiency.dir/fig8_whynot_efficiency.cpp.o"
  "CMakeFiles/fig8_whynot_efficiency.dir/fig8_whynot_efficiency.cpp.o.d"
  "fig8_whynot_efficiency"
  "fig8_whynot_efficiency.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig8_whynot_efficiency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
