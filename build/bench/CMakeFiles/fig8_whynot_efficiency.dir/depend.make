# Empty dependencies file for fig8_whynot_efficiency.
# This may be replaced when dependencies are built.
