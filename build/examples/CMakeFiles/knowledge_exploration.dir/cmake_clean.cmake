file(REMOVE_RECURSE
  "CMakeFiles/knowledge_exploration.dir/knowledge_exploration.cpp.o"
  "CMakeFiles/knowledge_exploration.dir/knowledge_exploration.cpp.o.d"
  "knowledge_exploration"
  "knowledge_exploration.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/knowledge_exploration.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
