# Empty compiler generated dependencies file for knowledge_exploration.
# This may be replaced when dependencies are built.
