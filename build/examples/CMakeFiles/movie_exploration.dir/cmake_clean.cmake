file(REMOVE_RECURSE
  "CMakeFiles/movie_exploration.dir/movie_exploration.cpp.o"
  "CMakeFiles/movie_exploration.dir/movie_exploration.cpp.o.d"
  "movie_exploration"
  "movie_exploration.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/movie_exploration.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
