# Empty compiler generated dependencies file for product_search.
# This may be replaced when dependencies are built.
