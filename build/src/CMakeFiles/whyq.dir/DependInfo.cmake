
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/common/dictionary.cc" "src/CMakeFiles/whyq.dir/common/dictionary.cc.o" "gcc" "src/CMakeFiles/whyq.dir/common/dictionary.cc.o.d"
  "/root/repo/src/common/rng.cc" "src/CMakeFiles/whyq.dir/common/rng.cc.o" "gcc" "src/CMakeFiles/whyq.dir/common/rng.cc.o.d"
  "/root/repo/src/common/table.cc" "src/CMakeFiles/whyq.dir/common/table.cc.o" "gcc" "src/CMakeFiles/whyq.dir/common/table.cc.o.d"
  "/root/repo/src/common/value.cc" "src/CMakeFiles/whyq.dir/common/value.cc.o" "gcc" "src/CMakeFiles/whyq.dir/common/value.cc.o.d"
  "/root/repo/src/gen/bsbm.cc" "src/CMakeFiles/whyq.dir/gen/bsbm.cc.o" "gcc" "src/CMakeFiles/whyq.dir/gen/bsbm.cc.o.d"
  "/root/repo/src/gen/figure1.cc" "src/CMakeFiles/whyq.dir/gen/figure1.cc.o" "gcc" "src/CMakeFiles/whyq.dir/gen/figure1.cc.o.d"
  "/root/repo/src/gen/profiles.cc" "src/CMakeFiles/whyq.dir/gen/profiles.cc.o" "gcc" "src/CMakeFiles/whyq.dir/gen/profiles.cc.o.d"
  "/root/repo/src/gen/query_gen.cc" "src/CMakeFiles/whyq.dir/gen/query_gen.cc.o" "gcc" "src/CMakeFiles/whyq.dir/gen/query_gen.cc.o.d"
  "/root/repo/src/gen/question_gen.cc" "src/CMakeFiles/whyq.dir/gen/question_gen.cc.o" "gcc" "src/CMakeFiles/whyq.dir/gen/question_gen.cc.o.d"
  "/root/repo/src/graph/edge_list.cc" "src/CMakeFiles/whyq.dir/graph/edge_list.cc.o" "gcc" "src/CMakeFiles/whyq.dir/graph/edge_list.cc.o.d"
  "/root/repo/src/graph/graph.cc" "src/CMakeFiles/whyq.dir/graph/graph.cc.o" "gcc" "src/CMakeFiles/whyq.dir/graph/graph.cc.o.d"
  "/root/repo/src/graph/graph_io.cc" "src/CMakeFiles/whyq.dir/graph/graph_io.cc.o" "gcc" "src/CMakeFiles/whyq.dir/graph/graph_io.cc.o.d"
  "/root/repo/src/graph/graph_stats.cc" "src/CMakeFiles/whyq.dir/graph/graph_stats.cc.o" "gcc" "src/CMakeFiles/whyq.dir/graph/graph_stats.cc.o.d"
  "/root/repo/src/graph/neighborhood.cc" "src/CMakeFiles/whyq.dir/graph/neighborhood.cc.o" "gcc" "src/CMakeFiles/whyq.dir/graph/neighborhood.cc.o.d"
  "/root/repo/src/harness/experiment.cc" "src/CMakeFiles/whyq.dir/harness/experiment.cc.o" "gcc" "src/CMakeFiles/whyq.dir/harness/experiment.cc.o.d"
  "/root/repo/src/matcher/candidates.cc" "src/CMakeFiles/whyq.dir/matcher/candidates.cc.o" "gcc" "src/CMakeFiles/whyq.dir/matcher/candidates.cc.o.d"
  "/root/repo/src/matcher/match_engine.cc" "src/CMakeFiles/whyq.dir/matcher/match_engine.cc.o" "gcc" "src/CMakeFiles/whyq.dir/matcher/match_engine.cc.o.d"
  "/root/repo/src/matcher/matcher.cc" "src/CMakeFiles/whyq.dir/matcher/matcher.cc.o" "gcc" "src/CMakeFiles/whyq.dir/matcher/matcher.cc.o.d"
  "/root/repo/src/matcher/path_index.cc" "src/CMakeFiles/whyq.dir/matcher/path_index.cc.o" "gcc" "src/CMakeFiles/whyq.dir/matcher/path_index.cc.o.d"
  "/root/repo/src/matcher/simulation.cc" "src/CMakeFiles/whyq.dir/matcher/simulation.cc.o" "gcc" "src/CMakeFiles/whyq.dir/matcher/simulation.cc.o.d"
  "/root/repo/src/query/query.cc" "src/CMakeFiles/whyq.dir/query/query.cc.o" "gcc" "src/CMakeFiles/whyq.dir/query/query.cc.o.d"
  "/root/repo/src/query/query_dot.cc" "src/CMakeFiles/whyq.dir/query/query_dot.cc.o" "gcc" "src/CMakeFiles/whyq.dir/query/query_dot.cc.o.d"
  "/root/repo/src/query/query_parser.cc" "src/CMakeFiles/whyq.dir/query/query_parser.cc.o" "gcc" "src/CMakeFiles/whyq.dir/query/query_parser.cc.o.d"
  "/root/repo/src/rewrite/cost_model.cc" "src/CMakeFiles/whyq.dir/rewrite/cost_model.cc.o" "gcc" "src/CMakeFiles/whyq.dir/rewrite/cost_model.cc.o.d"
  "/root/repo/src/rewrite/evaluation.cc" "src/CMakeFiles/whyq.dir/rewrite/evaluation.cc.o" "gcc" "src/CMakeFiles/whyq.dir/rewrite/evaluation.cc.o.d"
  "/root/repo/src/rewrite/explanation.cc" "src/CMakeFiles/whyq.dir/rewrite/explanation.cc.o" "gcc" "src/CMakeFiles/whyq.dir/rewrite/explanation.cc.o.d"
  "/root/repo/src/rewrite/operators.cc" "src/CMakeFiles/whyq.dir/rewrite/operators.cc.o" "gcc" "src/CMakeFiles/whyq.dir/rewrite/operators.cc.o.d"
  "/root/repo/src/why/est_match.cc" "src/CMakeFiles/whyq.dir/why/est_match.cc.o" "gcc" "src/CMakeFiles/whyq.dir/why/est_match.cc.o.d"
  "/root/repo/src/why/extensions.cc" "src/CMakeFiles/whyq.dir/why/extensions.cc.o" "gcc" "src/CMakeFiles/whyq.dir/why/extensions.cc.o.d"
  "/root/repo/src/why/mbs.cc" "src/CMakeFiles/whyq.dir/why/mbs.cc.o" "gcc" "src/CMakeFiles/whyq.dir/why/mbs.cc.o.d"
  "/root/repo/src/why/picky.cc" "src/CMakeFiles/whyq.dir/why/picky.cc.o" "gcc" "src/CMakeFiles/whyq.dir/why/picky.cc.o.d"
  "/root/repo/src/why/question.cc" "src/CMakeFiles/whyq.dir/why/question.cc.o" "gcc" "src/CMakeFiles/whyq.dir/why/question.cc.o.d"
  "/root/repo/src/why/why_algorithms.cc" "src/CMakeFiles/whyq.dir/why/why_algorithms.cc.o" "gcc" "src/CMakeFiles/whyq.dir/why/why_algorithms.cc.o.d"
  "/root/repo/src/why/whynot_algorithms.cc" "src/CMakeFiles/whyq.dir/why/whynot_algorithms.cc.o" "gcc" "src/CMakeFiles/whyq.dir/why/whynot_algorithms.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
