file(REMOVE_RECURSE
  "libwhyq.a"
)
