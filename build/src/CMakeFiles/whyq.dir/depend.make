# Empty dependencies file for whyq.
# This may be replaced when dependencies are built.
