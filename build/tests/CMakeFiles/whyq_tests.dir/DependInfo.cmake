
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/algorithms_sweep_test.cc" "tests/CMakeFiles/whyq_tests.dir/algorithms_sweep_test.cc.o" "gcc" "tests/CMakeFiles/whyq_tests.dir/algorithms_sweep_test.cc.o.d"
  "/root/repo/tests/algorithms_test.cc" "tests/CMakeFiles/whyq_tests.dir/algorithms_test.cc.o" "gcc" "tests/CMakeFiles/whyq_tests.dir/algorithms_test.cc.o.d"
  "/root/repo/tests/common_test.cc" "tests/CMakeFiles/whyq_tests.dir/common_test.cc.o" "gcc" "tests/CMakeFiles/whyq_tests.dir/common_test.cc.o.d"
  "/root/repo/tests/cost_model_test.cc" "tests/CMakeFiles/whyq_tests.dir/cost_model_test.cc.o" "gcc" "tests/CMakeFiles/whyq_tests.dir/cost_model_test.cc.o.d"
  "/root/repo/tests/est_match_test.cc" "tests/CMakeFiles/whyq_tests.dir/est_match_test.cc.o" "gcc" "tests/CMakeFiles/whyq_tests.dir/est_match_test.cc.o.d"
  "/root/repo/tests/evaluation_test.cc" "tests/CMakeFiles/whyq_tests.dir/evaluation_test.cc.o" "gcc" "tests/CMakeFiles/whyq_tests.dir/evaluation_test.cc.o.d"
  "/root/repo/tests/explanation_test.cc" "tests/CMakeFiles/whyq_tests.dir/explanation_test.cc.o" "gcc" "tests/CMakeFiles/whyq_tests.dir/explanation_test.cc.o.d"
  "/root/repo/tests/extensions_test.cc" "tests/CMakeFiles/whyq_tests.dir/extensions_test.cc.o" "gcc" "tests/CMakeFiles/whyq_tests.dir/extensions_test.cc.o.d"
  "/root/repo/tests/gen_test.cc" "tests/CMakeFiles/whyq_tests.dir/gen_test.cc.o" "gcc" "tests/CMakeFiles/whyq_tests.dir/gen_test.cc.o.d"
  "/root/repo/tests/graph_io_test.cc" "tests/CMakeFiles/whyq_tests.dir/graph_io_test.cc.o" "gcc" "tests/CMakeFiles/whyq_tests.dir/graph_io_test.cc.o.d"
  "/root/repo/tests/graph_test.cc" "tests/CMakeFiles/whyq_tests.dir/graph_test.cc.o" "gcc" "tests/CMakeFiles/whyq_tests.dir/graph_test.cc.o.d"
  "/root/repo/tests/harness_test.cc" "tests/CMakeFiles/whyq_tests.dir/harness_test.cc.o" "gcc" "tests/CMakeFiles/whyq_tests.dir/harness_test.cc.o.d"
  "/root/repo/tests/io_extras_test.cc" "tests/CMakeFiles/whyq_tests.dir/io_extras_test.cc.o" "gcc" "tests/CMakeFiles/whyq_tests.dir/io_extras_test.cc.o.d"
  "/root/repo/tests/matcher_test.cc" "tests/CMakeFiles/whyq_tests.dir/matcher_test.cc.o" "gcc" "tests/CMakeFiles/whyq_tests.dir/matcher_test.cc.o.d"
  "/root/repo/tests/mbs_test.cc" "tests/CMakeFiles/whyq_tests.dir/mbs_test.cc.o" "gcc" "tests/CMakeFiles/whyq_tests.dir/mbs_test.cc.o.d"
  "/root/repo/tests/operators_test.cc" "tests/CMakeFiles/whyq_tests.dir/operators_test.cc.o" "gcc" "tests/CMakeFiles/whyq_tests.dir/operators_test.cc.o.d"
  "/root/repo/tests/oracle_test.cc" "tests/CMakeFiles/whyq_tests.dir/oracle_test.cc.o" "gcc" "tests/CMakeFiles/whyq_tests.dir/oracle_test.cc.o.d"
  "/root/repo/tests/path_index_test.cc" "tests/CMakeFiles/whyq_tests.dir/path_index_test.cc.o" "gcc" "tests/CMakeFiles/whyq_tests.dir/path_index_test.cc.o.d"
  "/root/repo/tests/picky_test.cc" "tests/CMakeFiles/whyq_tests.dir/picky_test.cc.o" "gcc" "tests/CMakeFiles/whyq_tests.dir/picky_test.cc.o.d"
  "/root/repo/tests/property_test.cc" "tests/CMakeFiles/whyq_tests.dir/property_test.cc.o" "gcc" "tests/CMakeFiles/whyq_tests.dir/property_test.cc.o.d"
  "/root/repo/tests/query_test.cc" "tests/CMakeFiles/whyq_tests.dir/query_test.cc.o" "gcc" "tests/CMakeFiles/whyq_tests.dir/query_test.cc.o.d"
  "/root/repo/tests/session_test.cc" "tests/CMakeFiles/whyq_tests.dir/session_test.cc.o" "gcc" "tests/CMakeFiles/whyq_tests.dir/session_test.cc.o.d"
  "/root/repo/tests/simulation_test.cc" "tests/CMakeFiles/whyq_tests.dir/simulation_test.cc.o" "gcc" "tests/CMakeFiles/whyq_tests.dir/simulation_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/whyq.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
