# Empty compiler generated dependencies file for whyq_tests.
# This may be replaced when dependencies are built.
