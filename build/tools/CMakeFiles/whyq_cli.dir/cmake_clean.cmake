file(REMOVE_RECURSE
  "CMakeFiles/whyq_cli.dir/whyq_cli.cc.o"
  "CMakeFiles/whyq_cli.dir/whyq_cli.cc.o.d"
  "whyq_cli"
  "whyq_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/whyq_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
