# Empty compiler generated dependencies file for whyq_cli.
# This may be replaced when dependencies are built.
