# CMake generated Testfile for 
# Source directory: /root/repo/tools
# Build directory: /root/repo/build/tools
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(cli_demo "/root/repo/build/tools/whyq_cli" "demo")
set_tests_properties(cli_demo PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;6;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_generate_stats "sh" "-c" "/root/repo/build/tools/whyq_cli generate --bsbm=200 --out=cli_t1.graph && /root/repo/build/tools/whyq_cli stats cli_t1.graph")
set_tests_properties(cli_generate_stats PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;7;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_import_decorate_dot "sh" "-c" "printf '# toy\\n0 1\\n1 2\\n2 0\\n' > cli_t2.edges && /root/repo/build/tools/whyq_cli import cli_t2.edges --out=cli_t2.graph --attrs=4 && printf 'node a Node\\nnode b Node\\nedge a b edge\\noutput a\\n' > cli_t2.query && /root/repo/build/tools/whyq_cli dot cli_t2.graph cli_t2.query | grep -q 'digraph Q'")
set_tests_properties(cli_import_decorate_dot PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;9;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_query_and_why "sh" "-c" "/root/repo/build/tools/whyq_cli generate --bsbm=300 --out=cli_t3.graph && printf 'node r Review rating >= i:5\\nnode p Product\\nedge r p reviewOf\\noutput r\\n' > cli_t3.query && /root/repo/build/tools/whyq_cli query cli_t3.graph cli_t3.query --limit=2 | grep -q 'answers' && id=\$(/root/repo/build/tools/whyq_cli query cli_t3.graph cli_t3.query --limit=1 | sed -n 's/^  node \\([0-9]*\\).*/\\1/p') && /root/repo/build/tools/whyq_cli why cli_t3.graph cli_t3.query --entities=\$id --algo=approx --guard=5 --budget=6 > /dev/null; test \$? -le 2")
set_tests_properties(cli_query_and_why PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;11;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_simulation_semantics "sh" "-c" "/root/repo/build/tools/whyq_cli generate --bsbm=200 --out=cli_t4.graph && printf 'node r Review rating >= i:5\\nnode p Product\\nedge r p reviewOf\\noutput r\\n' > cli_t4.query && /root/repo/build/tools/whyq_cli query cli_t4.graph cli_t4.query --semantics=sim | grep -q 'simulation'")
set_tests_properties(cli_simulation_semantics PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;13;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_errors "sh" "-c" "! /root/repo/build/tools/whyq_cli stats /nonexistent 2>/dev/null && ! /root/repo/build/tools/whyq_cli bogus 2>/dev/null && ! /root/repo/build/tools/whyq_cli why 2>/dev/null")
set_tests_properties(cli_errors PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;15;add_test;/root/repo/tools/CMakeLists.txt;0;")
