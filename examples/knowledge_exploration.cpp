// Reproduces the paper's Exp-5 "Knowledge exploration" case study
// (Fig. 9(a)): a query Q3 over a DBpedia-style fragment searching for U.S.
// companies acquired by Google since 2013 for more than $500M and
// integrated with Google Maps.
//
// Only Skybox Imaging matches. The user then asks:
//   "Why-not Urban Engines?"  -> the rewrite drops the price constraint;
//                                DBpedia records no price for that deal (a
//                                data-quality finding: missing facts).
//   "Why-not Waze?"           -> the rewrite additionally drops the country
//                                constraint; Waze was founded in Israel (a
//                                new fact surfaced to the user).

#include <cstdio>

#include "whyq.h"

namespace {

using namespace whyq;

struct Kg {
  Graph graph;
  NodeId skybox = kInvalidNode;
  NodeId urban_engines = kInvalidNode;
  NodeId waze = kInvalidNode;
};

Kg BuildFragment() {
  Kg kg;
  GraphBuilder b;

  NodeId google = b.AddNode("Company");
  b.SetAttr(google, "name", Value("Google"));
  b.SetAttr(google, "country", Value("USA"));

  NodeId maps = b.AddNode("Product");
  b.SetAttr(maps, "name", Value("GoogleMaps"));

  auto company = [&](const char* name, const char* country,
                     int64_t acquired_year, int64_t price_musd) {
    NodeId v = b.AddNode("Company");
    b.SetAttr(v, "name", Value(name));
    b.SetAttr(v, "country", Value(country));
    b.SetAttr(v, "acquiredYear", Value(acquired_year));
    if (price_musd > 0) b.SetAttr(v, "priceMUSD", Value(price_musd));
    b.AddEdge(google, v, "acquired");
    return v;
  };

  // The three entities of the case study. Urban Engines has NO recorded
  // price (the paper's data-quality finding); Waze was founded in Israel.
  kg.skybox = company("SkyboxImaging", "USA", 2014, 500);
  kg.urban_engines = company("UrbanEngines", "USA", 2016, 0);
  kg.waze = company("Waze", "Israel", 2013, 1150);
  b.AddEdge(kg.skybox, maps, "integratedWith");
  b.AddEdge(kg.urban_engines, maps, "integratedWith");
  b.AddEdge(kg.waze, maps, "integratedWith");

  // Background entities so the constraints are not vacuous.
  NodeId nest = company("Nest", "USA", 2014, 3200);
  (void)nest;  // acquired, expensive, but no Maps integration
  NodeId deepmind = company("DeepMind", "UK", 2014, 500);
  b.AddEdge(deepmind, maps, "integratedWith");  // wrong country

  kg.graph = b.Build();
  return kg;
}

}  // namespace

int main() {
  using namespace whyq;
  Kg kg = BuildFragment();
  const Graph& g = kg.graph;

  // Q3 via the textual query DSL.
  std::string text =
      "node c Company country = s:USA acquiredYear >= i:2013 priceMUSD >= "
      "i:500\n"
      "node google Company name = s:Google\n"
      "node maps Product name = s:GoogleMaps\n"
      "edge google c acquired\n"
      "edge c maps integratedWith\n"
      "output c\n";
  std::string err;
  std::optional<Query> q3 = ParseQuery(text, g, &err);
  if (!q3.has_value()) {
    std::fprintf(stderr, "query parse error: %s\n", err.c_str());
    return 1;
  }
  std::printf("Q3:\n%s\n", q3->ToString(g).c_str());

  Matcher matcher(g);
  std::vector<NodeId> answers = matcher.MatchOutput(*q3);
  SymbolId name = *g.attr_names().Find("name");
  std::printf("Q3(u_o, G) = { ");
  for (NodeId v : answers) {
    std::printf("%s ", g.GetAttr(v, name)->as_string().c_str());
  }
  std::printf("}\n\n");

  AnswerConfig cfg;
  cfg.budget = 4.0;
  cfg.guard_m = 2;

  // "Why-not Urban Engines?" — FastWhyNot, as in the paper.
  WhyNotQuestion why_not_ue;
  why_not_ue.missing = {kg.urban_engines};
  RewriteAnswer ue = FastWhyNot(g, *q3, answers, why_not_ue, cfg);
  std::printf("Why-not UrbanEngines?\n  %s\n%s", ue.Explain(g).c_str(),
              ExplainRewrite(g, *q3, ue.ops).ToString().c_str());
  std::printf(
      "  finding: DBpedia records no acquisition price for Urban Engines —\n"
      "  the rewrite removes the price literal (missing fact, data-quality"
      " issue).\n\n");

  // "Why-not Waze?"
  WhyNotQuestion why_not_waze;
  why_not_waze.missing = {kg.waze};
  RewriteAnswer wz = FastWhyNot(g, *q3, answers, why_not_waze, cfg);
  std::printf("Why-not Waze?\n  %s\n%s", wz.Explain(g).c_str(),
              ExplainRewrite(g, *q3, wz.ops).ToString().c_str());
  std::printf(
      "  finding: Waze was founded in Israel — the rewrite drops the\n"
      "  country constraint, surfacing a new fact for investigation.\n");

  bool ok = ue.found && wz.found &&
            matcher.IsAnswer(ue.rewritten, kg.urban_engines) &&
            matcher.IsAnswer(wz.rewritten, kg.waze);
  std::printf("\ncase study %s\n", ok ? "REPRODUCED" : "FAILED");
  return ok ? 0 : 1;
}
