// Reproduces the paper's Exp-5 "Why-so-many?" case study (Fig. 9(b)): a
// query Q4 over an IMDb-style graph for actors who co-played with a star
// in at least two recent, reasonably-rated movies. The answer is
// surprisingly large because talk-show co-attendees are (inaccurately)
// labeled as movie co-stars when no genre is recorded. A Why-so-many
// question asks to shrink the answer; the refinement narrows ratings /
// dates and introduces a genre constraint, exposing the mislabeled
// talk-shows.

#include <cstdio>

#include "whyq.h"

namespace {

using namespace whyq;

struct MovieDb {
  Graph graph;
  NodeId star = kInvalidNode;
};

MovieDb Build(uint64_t seed) {
  MovieDb db;
  Rng rng(seed);
  GraphBuilder b;

  db.star = b.AddNode("Actor");
  b.SetAttr(db.star, "name", Value("W.Shatner"));

  // Genre entities.
  const char* kGenres[] = {"Comedy", "Drama", "SciFi"};
  std::vector<NodeId> genres;
  for (const char* gname : kGenres) {
    NodeId v = b.AddNode("Genre");
    b.SetAttr(v, "name", Value(gname));
    genres.push_back(v);
  }

  // A modest troupe of movie co-stars and a crowd of talk-show guests.
  std::vector<NodeId> co_stars;
  for (int i = 0; i < 12; ++i) {
    NodeId v = b.AddNode("Actor");
    b.SetAttr(v, "name", Value("CoStar" + std::to_string(i)));
    co_stars.push_back(v);
  }
  std::vector<NodeId> guests;
  for (int i = 0; i < 120; ++i) {
    NodeId v = b.AddNode("Actor");
    b.SetAttr(v, "name", Value("Guest" + std::to_string(i)));
    guests.push_back(v);
  }

  // Proper movies: genre recorded, decent ratings; each casts the star and
  // a few co-stars (each co-star appears in >= 2 movies with the star).
  std::vector<NodeId> movies;
  for (int i = 0; i < 10; ++i) {
    NodeId m = b.AddNode("Movie");
    b.SetAttr(m, "rating", Value(6.0 + rng.Double() * 3.0));
    b.SetAttr(m, "year", Value(rng.Uniform(2001, 2015)));
    b.AddEdge(db.star, m, "actsIn");
    b.AddEdge(m, genres[rng.Index(genres.size())], "genre");
    movies.push_back(m);
  }
  for (NodeId a : co_stars) {
    // Each co-star shares >= 2 movies with the star.
    for (size_t k : rng.SampleDistinct(movies.size(), 2 + rng.Index(3))) {
      b.AddEdge(a, movies[k], "actsIn");
    }
  }

  // Talk-shows: labeled "Movie" but with NO genre edge; mid ratings. The
  // star attended many, alongside crowds of guests — each guest attends
  // two shows, inflating the co-player answer.
  std::vector<NodeId> shows;
  for (int i = 0; i < 16; ++i) {
    NodeId m = b.AddNode("Movie");
    b.SetAttr(m, "rating", Value(5.5 + rng.Double() * 3.5));
    b.SetAttr(m, "year", Value(rng.Uniform(2002, 2018)));
    b.AddEdge(db.star, m, "actsIn");
    shows.push_back(m);
  }
  for (NodeId a : guests) {
    for (size_t k : rng.SampleDistinct(shows.size(), 2)) {
      b.AddEdge(a, shows[k], "actsIn");
    }
  }

  db.graph = b.Build();
  return db;
}

}  // namespace

int main() {
  using namespace whyq;
  MovieDb db = Build(17);
  const Graph& g = db.graph;

  // Q4: actors co-playing with the star in two movies rated >= 5.5 and no
  // earlier than 2001.
  std::string text =
      "node a Actor\n"
      "node m1 Movie rating >= d:5.5 year >= i:2001\n"
      "node m2 Movie rating >= d:5.5 year >= i:2001\n"
      "node star Actor name = s:W.Shatner\n"
      "edge a m1 actsIn\n"
      "edge a m2 actsIn\n"
      "edge star m1 actsIn\n"
      "edge star m2 actsIn\n"
      "output a\n";
  std::string err;
  std::optional<Query> q4 = ParseQuery(text, g, &err);
  if (!q4.has_value()) {
    std::fprintf(stderr, "query parse error: %s\n", err.c_str());
    return 1;
  }

  Matcher matcher(g);
  std::vector<NodeId> answers = matcher.MatchOutput(*q4);
  std::printf("Q4 returns %zu co-players — surprisingly many!\n",
              answers.size());

  // "Why so many? I expected at most ~15."
  AnswerConfig cfg;
  cfg.budget = 6.0;
  WhySoManyResult r = AnswerWhySoMany(g, *q4, answers, 15, cfg);
  std::printf("Why-so-many (target <= 15): %zu -> %zu via { %s }\n",
              r.before, r.after, DescribeOperators(r.ops, g).c_str());
  std::printf("Refined query:\n%s\n", r.rewritten.ToString(g).c_str());
  bool structural = false;
  for (const EditOp& op : r.ops) structural |= op.kind == OpKind::kAddE;
  std::printf(
      "finding: many \"co-players\" only co-attended talk shows, which are\n"
      "labeled as movies but carry no genre%s — as in the paper's IMDb"
      " case.\n",
      structural ? " — the added genre edge filters them out"
                 : "; the refinement narrows ratings/dates to exclude them");

  std::printf("\ncase study %s\n",
              r.found && r.after <= 15 && r.after > 0 ? "REPRODUCED"
                                                      : "FAILED");
  return r.found ? 0 : 1;
}
