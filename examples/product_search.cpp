// End-to-end product-search walkthrough on a generated BSBM e-commerce
// graph: build the graph, save/reload it through the text format, pose a
// query via the DSL, and exercise the full Why-question toolbox — Why,
// Why-not (with a selection condition C), Why-empty, and the exact /
// approximate algorithm pair side by side.

#include <cstdio>
#include <algorithm>
#include <sstream>

#include "whyq.h"

int main() {
  using namespace whyq;

  // 1. A mid-sized product graph (deterministic).
  BsbmConfig bc;
  bc.products = 4000;
  Graph generated = GenerateBsbm(bc);
  GraphStats stats = ComputeStats(generated);
  std::printf("generated BSBM graph: %s\n", stats.ToString().c_str());

  // 2. Round-trip through the text serialization (the on-disk format).
  std::stringstream buffer;
  WriteGraph(generated, buffer);
  std::string err;
  std::optional<Graph> loaded = ReadGraph(buffer, &err);
  if (!loaded.has_value()) {
    std::fprintf(stderr, "reload failed: %s\n", err.c_str());
    return 1;
  }
  const Graph& g = *loaded;
  std::printf("round-tripped through the text format: |V|=%zu |E|=%zu\n\n",
              g.node_count(), g.edge_count());

  // 3. Query: cheap, quickly-delivered offers of well-reviewed products.
  std::string text =
      "node o Offer price <= i:3000 deliveryDays <= i:7\n"
      "node p Product price <= i:2500\n"
      "node r Review rating >= i:7\n"
      "node v Vendor country = s:US\n"
      "edge o p offerOf\n"
      "edge o v vendor\n"
      "edge r p reviewOf\n"
      "output o\n";
  std::optional<Query> q = ParseQuery(text, g, &err);
  if (!q.has_value()) {
    std::fprintf(stderr, "parse error: %s\n", err.c_str());
    return 1;
  }
  Matcher matcher(g);
  std::vector<NodeId> answers = matcher.MatchOutput(*q);
  std::printf("query answers: %zu offers\n\n", answers.size());
  if (answers.size() < 4) {
    std::printf("graph too sparse for the demo; try a bigger scale\n");
    return 0;
  }

  AnswerConfig cfg;
  cfg.budget = 6.0;
  cfg.guard_m = 3;

  // 4. Why: the user is surprised the two *most expensive* offers qualify.
  SymbolId offer_price = *g.attr_names().Find("price");
  std::vector<NodeId> by_price = answers;
  std::sort(by_price.begin(), by_price.end(), [&](NodeId a, NodeId b) {
    return g.GetAttr(a, offer_price)->as_int() >
           g.GetAttr(b, offer_price)->as_int();
  });
  WhyQuestion why{{by_price[0], by_price[1]}};
  RewriteAnswer exact = ExactWhy(g, *q, answers, why, cfg);
  RewriteAnswer approx = ApproxWhy(g, *q, answers, why, cfg);
  std::printf("Why {offer#%u, offer#%u}?\n", by_price[0], by_price[1]);
  std::printf("  ExactWhy : %s\n", exact.Explain(g).c_str());
  std::printf("  ApproxWhy: %s\n\n", approx.Explain(g).c_str());

  // 5. Why-not: the question generator picks near-miss offers (one
  // relaxation away from matching), the way a user notices close calls.
  GeneratedQuery gq;
  gq.query = *q;
  gq.answers = answers;
  Rng rng(3);
  std::optional<WhyNotQuestion> whynot =
      GenerateWhyNotQuestion(g, gq, 2, 0, rng);
  if (whynot.has_value()) {
    // Relaxations on a dense offer graph necessarily admit other offers;
    // the user tolerates a broader result here (guard m = 25).
    AnswerConfig relax_cfg = cfg;
    relax_cfg.guard_m = 25;
    relax_cfg.exact_time_limit_ms = 5000;
    RewriteAnswer wn_exact = ExactWhyNot(g, *q, answers, *whynot, relax_cfg);
    RewriteAnswer wn_fast = FastWhyNot(g, *q, answers, *whynot, relax_cfg);
    std::printf("Why-not offers {");
    for (NodeId v : whynot->missing) std::printf(" #%u", v);
    std::printf(" }?\n  ExactWhyNot: %s\n  FastWhyNot : %s\n\n",
                wn_exact.Explain(g).c_str(), wn_fast.Explain(g).c_str());
  }

  // 6. Why-empty: an over-constrained variant returns nothing; the library
  // proposes the minimal relaxation that revives it.
  Query impossible = *q;
  impossible.AddLiteral(
      impossible.output(),
      Literal{*g.attr_names().Find("price"), CompareOp::kLt,
              Value(int64_t{0})});
  WhyEmptyResult empty = AnswerWhyEmpty(g, impossible, cfg);
  std::printf("Why-empty (price < 0 added)? %s",
              empty.found ? "fixed via { " : "not fixable within budget");
  if (empty.found) {
    std::printf("%s }, %zu sample answers\n",
                DescribeOperators(empty.ops, g).c_str(),
                empty.sample_answers.size());
  }
  std::printf("\n");
  return 0;
}
