// Quickstart for the whyq library: build a small attributed graph, run a
// subgraph query, then ask a Why and a Why-not question about its answer.
//
// The scenario is the paper's Fig. 1 product-store example: a user searches
// for pink AT&T Samsung cellphones under $650, is surprised the old A5/S5
// models qualify (Why), and wonders where the recent S8/S9 are (Why-not).

#include <cstdio>

#include "whyq.h"
#include "gen/figure1.h"

int main() {
  using namespace whyq;

  // 1. The data graph and query of Fig. 1 (see src/gen/figure1.cc for how
  // graphs and queries are assembled with GraphBuilder / Query).
  Figure1 fig = MakeFigure1();
  const Graph& g = fig.graph;
  const Query& q = fig.query;

  std::printf("Query Q:\n%s\n", q.ToString(g).c_str());

  // 2. Evaluate the query: Q(u_o, G) = the entities matching "Cellphone".
  Matcher matcher(g);
  std::vector<NodeId> answers = matcher.MatchOutput(q);
  std::printf("Answer Q(u_o, G): ");
  for (NodeId v : answers) {
    std::printf("%s ", g.GetAttr(v, *g.attr_names().Find("model"))
                           ->as_string()
                           .c_str());
  }
  std::printf("\n\n");

  AnswerConfig cfg;
  cfg.budget = 4.0;
  cfg.guard_m = 0;  // keep every desired answer (the S6)

  // 3. Why are A5 and S5 in the result? ExactWhy proposes a refinement
  // rewrite that excludes them while keeping the S6.
  WhyQuestion why{{fig.a5, fig.s5}};
  RewriteAnswer w = ExactWhy(g, q, answers, why, cfg);
  std::printf("Why {A5, S5}?  %s\n", w.Explain(g).c_str());
  std::printf("Explanation:\n%s", ExplainRewrite(g, q, w.ops).ToString().c_str());
  std::printf("Rewritten query Q1:\n%s\n", w.rewritten.ToString(g).c_str());

  // 4. Why are S8 and S9 missing? A Why-not question with the condition
  // "OS >= 5" (Example 3); FastWhyNot relaxes Q to admit them.
  WhyNotQuestion whynot;
  whynot.missing = {fig.s8, fig.s9};
  ConstraintLiteral os_new;
  os_new.attr = *g.attr_names().Find("OS");
  os_new.op = CompareOp::kGe;
  os_new.constant = Value(5.0);
  whynot.condition.literals.push_back(os_new);

  AnswerConfig relax_cfg = cfg;
  relax_cfg.budget = 5.0;
  relax_cfg.guard_m = 2;
  RewriteAnswer wn = FastWhyNot(g, q, answers, whynot, relax_cfg);
  std::printf("Why-not {S8, S9}?  %s\n", wn.Explain(g).c_str());
  std::printf("Explanation:\n%s", ExplainRewrite(g, q, wn.ops).ToString().c_str());
  std::printf("Rewritten query Q2:\n%s\n", wn.rewritten.ToString(g).c_str());
  return 0;
}
