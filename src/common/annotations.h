#ifndef WHYQ_COMMON_ANNOTATIONS_H_
#define WHYQ_COMMON_ANNOTATIONS_H_

// Clang thread-safety analysis attributes behind WHYQ_ macros, expanding
// to nothing on compilers without the attribute (GCC accepts but ignores
// most of them; MSVC rejects the syntax outright). The CI `thread-safety`
// job compiles src/ with Clang and -Werror=thread-safety, turning the
// lock-discipline comments of service/, server/ and common/thread_pool
// into build failures: a member annotated WHYQ_GUARDED_BY(mu_) read
// without mu_ held, or a WHYQ_REQUIRES(mu_) helper called without it, is
// a compile error there (docs/ARCHITECTURE.md "Static analysis").
//
// The analysis only understands types annotated as capabilities, and
// libstdc++'s std::mutex is not one — use whyq::Mutex / whyq::MutexLock /
// whyq::CondVar (common/mutex.h), the annotated wrappers these macros
// exist for. This header is the single place the raw attributes appear;
// everything else speaks WHYQ_*.

#if defined(__clang__) && (!defined(SWIG))
#define WHYQ_THREAD_ANNOTATION(x) __attribute__((x))
#else
#define WHYQ_THREAD_ANNOTATION(x)  // no-op outside Clang
#endif

// On a type: instances are capabilities (lockable things). The string
// names the capability kind in diagnostics ("mutex").
#define WHYQ_CAPABILITY(x) WHYQ_THREAD_ANNOTATION(capability(x))

// On a type: RAII object that acquires a capability in its constructor
// and releases it in its destructor (std::lock_guard shape).
#define WHYQ_SCOPED_CAPABILITY WHYQ_THREAD_ANNOTATION(scoped_lockable)

// On a data member: reads and writes require holding the named capability.
#define WHYQ_GUARDED_BY(x) WHYQ_THREAD_ANNOTATION(guarded_by(x))

// On a pointer/reference member: the pointed-to data (not the pointer
// itself) requires the capability.
#define WHYQ_PT_GUARDED_BY(x) WHYQ_THREAD_ANNOTATION(pt_guarded_by(x))

// On a function: the caller must hold the capability on entry (and still
// holds it on exit) — the contract of the private *Locked() helpers.
#define WHYQ_REQUIRES(...) \
  WHYQ_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))

// On a function: acquires / releases the capability.
#define WHYQ_ACQUIRE(...) \
  WHYQ_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))
#define WHYQ_RELEASE(...) \
  WHYQ_THREAD_ANNOTATION(release_capability(__VA_ARGS__))

// On a function returning bool: acquires the capability when the return
// value equals the first argument (try_lock shape).
#define WHYQ_TRY_ACQUIRE(...) \
  WHYQ_THREAD_ANNOTATION(try_acquire_capability(__VA_ARGS__))

// On a function: the caller must NOT hold the capability (deadlock guard
// for public entry points that take the lock themselves).
#define WHYQ_EXCLUDES(...) WHYQ_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))

// On a function: returns a reference to the named capability (lets the
// analysis see through accessors).
#define WHYQ_RETURN_CAPABILITY(x) WHYQ_THREAD_ANNOTATION(lock_returned(x))

// On a function: suppress the analysis. Deliberately unused in the tree —
// the CI job's contract is zero suppressions outside this header — but
// defined so an unavoidable future escape hatch is greppable.
#define WHYQ_NO_THREAD_SAFETY_ANALYSIS \
  WHYQ_THREAD_ANNOTATION(no_thread_safety_analysis)

#endif  // WHYQ_COMMON_ANNOTATIONS_H_
