#include "common/arena.h"

#include <algorithm>

#include "common/check.h"

namespace whyq {

Arena::Arena(size_t first_block_bytes)
    : next_block_bytes_(std::max(first_block_bytes, size_t{64})) {}

void* Arena::Allocate(size_t bytes, size_t align) {
  WHYQ_CHECK(align != 0 && (align & (align - 1)) == 0);
  if (bytes == 0) bytes = 1;
  bytes_allocated_ += bytes;

  // Oversized requests get their own exact block: they would permanently
  // inflate the doubling schedule and are rare (e.g. a bitmap over a huge
  // V) — keeping them out of blocks_ lets Reset() return the memory.
  if (bytes + align > kMaxBlockBytes) {
    Block b;
    b.data = std::make_unique<unsigned char[]>(bytes + align);
    b.capacity = bytes + align;
    void* p = b.data.get();
    auto addr = reinterpret_cast<uintptr_t>(p);
    addr = (addr + align - 1) & ~(uintptr_t{align} - 1);
    oversized_.push_back(std::move(b));
    return reinterpret_cast<void*>(addr);
  }

  if (blocks_.empty()) NextBlock(bytes + align);
  for (;;) {
    Block& blk = blocks_[current_];
    auto base = reinterpret_cast<uintptr_t>(blk.data.get());
    uintptr_t cursor = base + offset_;
    uintptr_t aligned = (cursor + align - 1) & ~(uintptr_t{align} - 1);
    size_t end = static_cast<size_t>(aligned - base) + bytes;
    if (end <= blk.capacity) {
      offset_ = end;
      return reinterpret_cast<void*>(aligned);
    }
    NextBlock(bytes + align);
  }
}

void Arena::NextBlock(size_t bytes) {
  // Reuse a block left over from before the last Reset() when it fits.
  while (!blocks_.empty() && current_ + 1 < blocks_.size()) {
    ++current_;
    offset_ = 0;
    if (blocks_[current_].capacity >= bytes) return;
  }
  size_t cap = std::max(next_block_bytes_, bytes);
  next_block_bytes_ = std::min(next_block_bytes_ * 2, kMaxBlockBytes);
  Block b;
  b.data = std::make_unique<unsigned char[]>(cap);
  b.capacity = cap;
  bytes_reserved_ += cap;
  blocks_.push_back(std::move(b));
  current_ = blocks_.size() - 1;
  offset_ = 0;
}

void Arena::Reset() {
  oversized_.clear();
  current_ = 0;
  offset_ = 0;
}

}  // namespace whyq
