#ifndef WHYQ_COMMON_ARENA_H_
#define WHYQ_COMMON_ARENA_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <type_traits>
#include <vector>

namespace whyq {

/// A request-scoped bump allocator. Allocations are O(1) pointer bumps out
/// of geometrically growing blocks; nothing is freed individually — Reset()
/// rewinds the arena to empty while keeping every block for reuse, so a
/// long-lived request slot (e.g. a MatchContext serving thousands of
/// rewrite verifications) stops touching the global heap after warm-up.
///
/// Thread-safety: none. An Arena is single-thread scratch state, confined
/// to one request exactly like the MatchContext/Matcher that use it.
class Arena {
 public:
  /// `first_block_bytes` sizes the initial block; later blocks double until
  /// kMaxBlockBytes. Oversized requests get a dedicated exact-size block.
  explicit Arena(size_t first_block_bytes = kFirstBlockBytes);

  Arena(const Arena&) = delete;
  Arena& operator=(const Arena&) = delete;

  /// Returns `bytes` of storage aligned to `align` (a power of two).
  /// Allocating zero bytes returns a unique non-null pointer.
  void* Allocate(size_t bytes, size_t align);

  /// Typed array allocation (uninitialized storage; T must be trivially
  /// destructible — the arena never runs destructors).
  template <typename T>
  T* AllocateArray(size_t count) {
    static_assert(std::is_trivially_destructible_v<T>,
                  "arena storage is released without running destructors");
    return static_cast<T*>(Allocate(count * sizeof(T), alignof(T)));
  }

  /// Rewinds to empty, keeping every regular block for reuse. Previously
  /// returned pointers become invalid. Oversized one-off blocks are
  /// released (they were sized for a single unusual request).
  void Reset();

  /// Total bytes handed out since construction (not reset by Reset —
  /// this is the lifetime-work counter surfaced as ctx_arena_bytes).
  size_t bytes_allocated() const { return bytes_allocated_; }

  /// Bytes currently reserved in regular blocks (capacity kept by Reset).
  size_t bytes_reserved() const { return bytes_reserved_; }

  static constexpr size_t kFirstBlockBytes = size_t{1} << 12;
  static constexpr size_t kMaxBlockBytes = size_t{1} << 20;

 private:
  struct Block {
    std::unique_ptr<unsigned char[]> data;
    size_t capacity = 0;
  };

  // Opens (or reuses) the next regular block with room for `bytes`.
  void NextBlock(size_t bytes);

  std::vector<Block> blocks_;     // regular blocks, reused across Reset()
  std::vector<Block> oversized_;  // exact-size one-offs, dropped on Reset()
  size_t current_ = 0;            // index into blocks_ (valid when nonempty)
  size_t offset_ = 0;             // bump cursor within blocks_[current_]
  size_t next_block_bytes_;
  size_t bytes_allocated_ = 0;
  size_t bytes_reserved_ = 0;
};

}  // namespace whyq

#endif  // WHYQ_COMMON_ARENA_H_
