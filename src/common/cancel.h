#ifndef WHYQ_COMMON_CANCEL_H_
#define WHYQ_COMMON_CANCEL_H_

#include <atomic>
#include <chrono>

namespace whyq {

/// Cooperative cancellation + deadline token shared between a request owner
/// (the service, a CLI driver) and the algorithm hot loops (matcher search,
/// MBS enumeration, greedy selection). The owner arms a deadline and/or
/// calls Cancel(); workers poll Expired() at loop granularity and unwind
/// with their best-so-far result, flagging it truncated.
///
/// Thread-safety: Cancel()/Expired() may race freely (atomic flag, relaxed
/// order — cancellation is advisory, not a synchronization edge). The
/// deadline must be armed before the token is shared with workers.
/// Expiry is sticky: once the deadline passes or Cancel() is called, every
/// later Expired() returns true.
class CancelToken {
 public:
  using Clock = std::chrono::steady_clock;

  CancelToken() = default;

  /// Tokens are identified by address (shared by pointer); no copies.
  CancelToken(const CancelToken&) = delete;
  CancelToken& operator=(const CancelToken&) = delete;

  /// Arms a wall-clock deadline `ms` milliseconds from now. ms <= 0 leaves
  /// the token deadline-free (expires only via Cancel()).
  void SetDeadlineAfterMillis(double ms) {
    if (ms > 0) {
      deadline_ = Clock::now() + std::chrono::duration_cast<Clock::duration>(
                                     std::chrono::duration<double, std::milli>(ms));
      has_deadline_ = true;
    }
  }

  void SetDeadline(Clock::time_point tp) {
    deadline_ = tp;
    has_deadline_ = true;
  }

  void Cancel() { cancelled_.store(true, std::memory_order_relaxed); }

  bool Cancelled() const {
    return cancelled_.load(std::memory_order_relaxed);
  }

  /// The poll: cancelled, or past the armed deadline.
  bool Expired() const {
    if (cancelled_.load(std::memory_order_relaxed)) return true;
    return has_deadline_ && Clock::now() >= deadline_;
  }

  /// Milliseconds until the deadline (negative when past it); a large
  /// positive value when no deadline is armed.
  double RemainingMillis() const {
    if (!has_deadline_) return 1e18;
    return std::chrono::duration<double, std::milli>(deadline_ - Clock::now())
        .count();
  }

 private:
  std::atomic<bool> cancelled_{false};
  bool has_deadline_ = false;  // set before sharing; read-only afterwards
  Clock::time_point deadline_{};
};

/// Null-safe poll helper for `const CancelToken*` config fields.
inline bool CancelRequested(const CancelToken* t) {
  return t != nullptr && t->Expired();
}

}  // namespace whyq

#endif  // WHYQ_COMMON_CANCEL_H_
