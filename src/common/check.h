#ifndef WHYQ_COMMON_CHECK_H_
#define WHYQ_COMMON_CHECK_H_

#include <cstdio>
#include <cstdlib>

// Internal invariant checks. These guard programmer errors (out-of-range ids,
// malformed operator sets), not user input; user-facing APIs report errors via
// return values instead. A failed check aborts with a source location.
#define WHYQ_CHECK(cond)                                                      \
  do {                                                                        \
    if (!(cond)) {                                                            \
      std::fprintf(stderr, "WHYQ_CHECK failed at %s:%d: %s\n", __FILE__,      \
                   __LINE__, #cond);                                          \
      std::abort();                                                           \
    }                                                                         \
  } while (0)

#define WHYQ_CHECK_MSG(cond, msg)                                             \
  do {                                                                        \
    if (!(cond)) {                                                            \
      std::fprintf(stderr, "WHYQ_CHECK failed at %s:%d: %s (%s)\n", __FILE__, \
                   __LINE__, #cond, msg);                                     \
      std::abort();                                                           \
    }                                                                         \
  } while (0)

#endif  // WHYQ_COMMON_CHECK_H_
