#include "common/dictionary.h"

#include "common/check.h"

namespace whyq {

SymbolId Dictionary::Intern(std::string_view name) {
  auto it = ids_.find(std::string(name));
  if (it != ids_.end()) return it->second;
  SymbolId id = static_cast<SymbolId>(names_.size());
  names_.emplace_back(name);
  ids_.emplace(names_.back(), id);
  return id;
}

std::optional<SymbolId> Dictionary::Find(std::string_view name) const {
  auto it = ids_.find(std::string(name));
  if (it == ids_.end()) return std::nullopt;
  return it->second;
}

const std::string& Dictionary::NameOf(SymbolId id) const {
  WHYQ_CHECK(id < names_.size());
  return names_[id];
}

}  // namespace whyq
