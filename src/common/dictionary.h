#ifndef WHYQ_COMMON_DICTIONARY_H_
#define WHYQ_COMMON_DICTIONARY_H_

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

namespace whyq {

/// Interned symbol id. Labels, relation names, and attribute names are stored
/// once and referenced by id everywhere else (graph, queries, operators).
using SymbolId = uint32_t;

inline constexpr SymbolId kInvalidSymbol = UINT32_MAX;

/// A string interning table mapping names (node labels, edge labels,
/// attribute names) to dense SymbolIds. Append-only; ids are stable.
///
/// Thread-safety: immutable after construction, shared across workers —
/// Find()/NameOf()/size() are const with no lazy state and may run
/// concurrently. Intern() mutates and is reserved for the single-threaded
/// build phase (GraphBuilder, generators); never call it on a dictionary
/// already shared with workers.
class Dictionary {
 public:
  Dictionary() = default;

  Dictionary(const Dictionary&) = default;
  Dictionary& operator=(const Dictionary&) = default;
  Dictionary(Dictionary&&) = default;
  Dictionary& operator=(Dictionary&&) = default;

  /// Returns the id of `name`, interning it on first use.
  SymbolId Intern(std::string_view name);

  /// Returns the id of `name` if already interned.
  std::optional<SymbolId> Find(std::string_view name) const;

  /// Returns the name of `id`; `id` must be a valid interned id.
  const std::string& NameOf(SymbolId id) const;

  size_t size() const { return names_.size(); }

 private:
  std::unordered_map<std::string, SymbolId> ids_;
  std::vector<std::string> names_;
};

}  // namespace whyq

#endif  // WHYQ_COMMON_DICTIONARY_H_
