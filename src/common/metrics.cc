#include "common/metrics.h"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "common/table.h"

namespace whyq {

namespace {

constexpr double kMinValue = 0.0009765625;  // 2^-10
constexpr double kMaxValue = 4194304.0;     // 2^22

}  // namespace

size_t StreamingHistogram::BucketIndex(double value) {
  if (!(value > kMinValue)) return 0;  // also catches NaN and negatives
  if (value >= kMaxValue) return kBucketCount - 1;
  int exp = 0;
  double mantissa = std::frexp(value, &exp);  // value = m * 2^exp, m in [0.5,1)
  // value in [2^(exp-1), 2^exp): octave exp-1, sub-bucket by mantissa.
  size_t octave = static_cast<size_t>((exp - 1) - kMinExp);
  size_t sub = static_cast<size_t>((mantissa - 0.5) * 2.0 *
                                   static_cast<double>(kSubBuckets));
  if (sub >= kSubBuckets) sub = kSubBuckets - 1;  // rounding guard
  return std::min(octave * kSubBuckets + sub, kBucketCount - 1);
}

double StreamingHistogram::BucketLowerBound(size_t i) {
  size_t octave = i / kSubBuckets;
  size_t sub = i % kSubBuckets;
  double base = std::ldexp(1.0, kMinExp + static_cast<int>(octave));
  return base * (1.0 + static_cast<double>(sub) /
                           static_cast<double>(kSubBuckets));
}

void StreamingHistogram::Record(double value) {
  ++buckets_[BucketIndex(value)];
  if (count_ == 0) {
    min_ = value;
    max_ = value;
  } else {
    min_ = std::min(min_, value);
    max_ = std::max(max_, value);
  }
  ++count_;
  sum_ += value;
}

double StreamingHistogram::Quantile(double q) const {
  if (count_ == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  // Nearest rank: 1-based rank ceil(q * n), at least 1.
  uint64_t rank = static_cast<uint64_t>(
      std::ceil(q * static_cast<double>(count_)));
  rank = std::clamp<uint64_t>(rank, 1, count_);
  uint64_t cumulative = 0;
  for (size_t i = 0; i < kBucketCount; ++i) {
    cumulative += buckets_[i];
    if (cumulative >= rank) {
      double mid = std::sqrt(BucketLowerBound(i) * BucketUpperBound(i));
      return std::clamp(mid, min_, max_);
    }
  }
  return max_;
}

std::string RequestTrace::ToString() const {
  std::ostringstream os;
  os << "stages: queue=" << TextTable::Num(queue_ms, 2)
     << "ms parse=" << TextTable::Num(parse_ms, 2)
     << "ms prepare=" << TextTable::Num(prepare_ms, 2) << "ms";
  if (candidates_ms > 0 || answer_match_ms > 0 || path_index_ms > 0) {
    os << " (candidates=" << TextTable::Num(candidates_ms, 2)
       << "ms match=" << TextTable::Num(answer_match_ms, 2)
       << "ms path-index=" << TextTable::Num(path_index_ms, 2) << "ms)";
  }
  os << " search=" << TextTable::Num(search_ms, 2) << "ms\n";
  os << "work: candidates=" << matcher_candidates
     << " mbs-enumerated=" << mbs_enumerated
     << " mbs-verified=" << mbs_verified
     << " greedy-rounds=" << greedy_rounds << "\n";
  os << "ctx: hits=" << ctx_hits << " misses=" << ctx_misses
     << " delta-builds=" << ctx_delta_builds << " pruned=" << ctx_pruned
     << "\n";
  return os.str();
}

}  // namespace whyq
