#ifndef WHYQ_COMMON_METRICS_H_
#define WHYQ_COMMON_METRICS_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <string>

namespace whyq {

/// Monotonic event counter. `Add` is lock-free and safe from any thread;
/// `Value` is a relaxed read (exact for quiescent readers, never stale by
/// more than the in-flight increments). Copying is intentionally disabled:
/// a counter identifies one time series, snapshot readers take `Value()`.
class Counter {
 public:
  Counter() = default;
  Counter(const Counter&) = delete;
  Counter& operator=(const Counter&) = delete;

  void Add(uint64_t n = 1) { v_.fetch_add(n, std::memory_order_relaxed); }
  uint64_t Value() const { return v_.load(std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> v_{0};
};

/// Fixed-size log-bucketed streaming histogram over positive magnitudes
/// (latencies in milliseconds, sizes, ...): O(1) Record, O(1) memory
/// (kBucketCount * 8 bytes), and quantiles over the *whole* stream — no
/// sample buffer to fill up, so percentiles never freeze on old traffic.
///
/// Buckets subdivide each power of two into kSubBuckets equal-width slices
/// (an HdrHistogram-style layout), covering [2^kMinExp, 2^kMaxExp) ms —
/// about 1 microsecond to 70 minutes — with <= 1/kSubBuckets relative
/// bucket width. Values outside the range clamp into the edge buckets.
/// count/sum/min/max are tracked exactly; only quantiles are bucketed
/// (returned as the geometric midpoint of the selected bucket, clamped to
/// the exact [min, max] envelope).
///
/// Thread-safety: not internally synchronized — the owner serializes
/// writers and snapshots (ServiceStats records under its mutex).
class StreamingHistogram {
 public:
  static constexpr int kMinExp = -10;      // 2^-10 ms ~ 1 us
  static constexpr int kMaxExp = 22;       // 2^22 ms ~ 70 min
  static constexpr size_t kSubBuckets = 8; // per power of two
  static constexpr size_t kBucketCount =
      static_cast<size_t>(kMaxExp - kMinExp) * kSubBuckets;

  void Record(double value);

  uint64_t count() const { return count_; }
  double sum() const { return sum_; }
  double min() const { return count_ == 0 ? 0.0 : min_; }
  double max() const { return count_ == 0 ? 0.0 : max_; }
  double mean() const {
    return count_ == 0 ? 0.0 : sum_ / static_cast<double>(count_);
  }

  /// Nearest-rank quantile, q in [0, 1] (0.95 -> p95). Exact rank over the
  /// bucket counts; value resolution is the bucket width (<= 12.5%
  /// relative). Returns 0 when empty.
  double Quantile(double q) const;

  /// Bucket geometry (for exporters): [lower, upper) bounds in value units
  /// and the per-bucket count. Indices in [0, kBucketCount).
  static double BucketLowerBound(size_t i);
  static double BucketUpperBound(size_t i) { return BucketLowerBound(i + 1); }
  uint64_t BucketCount(size_t i) const { return buckets_[i]; }

  /// Bucket index a value lands in (clamped to the covered range).
  static size_t BucketIndex(double value);

 private:
  uint64_t buckets_[kBucketCount] = {};
  uint64_t count_ = 0;
  double sum_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Per-request breakdown threaded through the serving pipeline: where one
/// response's wall clock went (stage timings, ms) and how much hot-loop
/// work it did (counters). Filled by WhyqService::Run / PrepareQuery and
/// returned on every ServiceResponse; aggregated by ServiceStats; rendered
/// by `whyq_cli --trace` and the slow-query log.
///
/// The four top-level stages partition a request's latency:
///   queue_ms + parse_ms + prepare_ms + search_ms ~= latency_ms
/// (the residue is bookkeeping between timers, well under 5%). The three
/// prepare sub-stages are only nonzero on a prepared-cache miss; on a hit
/// prepare_ms is just the lookup.
struct RequestTrace {
  double queue_ms = 0.0;         // submission -> worker pickup
  double parse_ms = 0.0;         // request validation + query-DSL parse
  double prepare_ms = 0.0;       // cache lookup (+ build on a miss)
  double candidates_ms = 0.0;    //   output-candidate filter (miss only)
  double answer_match_ms = 0.0;  //   answer-set match (miss only)
  double path_index_ms = 0.0;    //   PathIndex sampling (miss only)
  double search_ms = 0.0;        // the question algorithm itself

  uint64_t matcher_candidates = 0;  // |output-candidate set| used
  uint64_t mbs_enumerated = 0;      // maximal bounded sets emitted (exact)
  uint64_t mbs_verified = 0;        // ... of which verified (exact)
  uint64_t greedy_rounds = 0;       // selection rounds (greedy algorithms)

  // Candidate-memo (MatchContext) counters summed over every context the
  // request used (prepare-stage context + all evaluator/slot contexts).
  // Zero under simulation semantics. See docs/ARCHITECTURE.md
  // "Stats glossary".
  uint64_t ctx_hits = 0;          // memoized candidate-set lookups served
  uint64_t ctx_misses = 0;        // sets built by scanning a label bucket
  uint64_t ctx_delta_builds = 0;  // sets built by filtering a cached parent
  uint64_t ctx_pruned = 0;        // match attempts skipped via bitmaps

  /// Sum of the four top-level stages (the accounted share of latency).
  double StagesTotalMs() const {
    return queue_ms + parse_ms + prepare_ms + search_ms;
  }

  /// Two-line human-readable rendering (stages, then work counters).
  std::string ToString() const;
};

}  // namespace whyq

#endif  // WHYQ_COMMON_METRICS_H_
