#ifndef WHYQ_COMMON_MUTEX_H_
#define WHYQ_COMMON_MUTEX_H_

#include <chrono>
#include <condition_variable>
#include <mutex>

#include "common/annotations.h"

namespace whyq {

/// std::mutex annotated as a Clang thread-safety capability. libstdc++
/// ships std::mutex without the capability attribute, so the analysis
/// cannot see through it; this wrapper is what lets WHYQ_GUARDED_BY /
/// WHYQ_REQUIRES declarations across service/, server/ and
/// common/thread_pool actually be checked (see common/annotations.h).
/// Same cost as the std types: the wrappers are empty shells around one
/// std::mutex / std::condition_variable.
class WHYQ_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void Lock() WHYQ_ACQUIRE() { mu_.lock(); }
  void Unlock() WHYQ_RELEASE() { mu_.unlock(); }
  bool TryLock() WHYQ_TRY_ACQUIRE(true) { return mu_.try_lock(); }

 private:
  friend class CondVar;
  std::mutex mu_;
};

/// RAII lock over a Mutex (std::lock_guard shape), annotated as a scoped
/// capability. Unlock()/Lock() allow a mid-scope release — the plan-store
/// writer runs each task outside its queue lock — and the analysis tracks
/// the held/released state across them.
class WHYQ_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) WHYQ_ACQUIRE(mu) : mu_(mu), held_(true) {
    mu_.Lock();
  }
  ~MutexLock() WHYQ_RELEASE() {
    if (held_) mu_.Unlock();
  }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

  /// Mid-scope release; the destructor then does nothing unless Lock()
  /// re-acquires first. Calling Unlock() twice is a compile error under
  /// the analysis (and UB at runtime — the analysis is the guard).
  void Unlock() WHYQ_RELEASE() {
    mu_.Unlock();
    held_ = false;
  }
  void Lock() WHYQ_ACQUIRE() {
    mu_.Lock();
    held_ = true;
  }

 private:
  Mutex& mu_;
  bool held_;
};

/// Condition variable paired with whyq::Mutex. Wait/WaitUntil take the
/// Mutex the caller already holds (WHYQ_REQUIRES enforces it) and return
/// with it re-held, so guarded members stay accessible around the call.
/// There is deliberately no predicate-lambda overload: capability state
/// does not flow into lambdas under the analysis, so waiters spell the
/// loop out — `while (!cond) cv_.Wait(mu_);` — which is also where the
/// analysis proves `cond` reads its guarded members correctly.
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  /// Atomically releases `mu`, blocks, and re-acquires before returning.
  void Wait(Mutex& mu) WHYQ_REQUIRES(mu) {
    std::unique_lock<std::mutex> lock(mu.mu_, std::adopt_lock);
    cv_.wait(lock);
    lock.release();  // the caller's MutexLock keeps ownership
  }

  /// Wait() with a deadline; false when it returned because the deadline
  /// passed (the caller re-checks its predicate either way).
  template <class Clock, class Duration>
  bool WaitUntil(Mutex& mu,
                 const std::chrono::time_point<Clock, Duration>& deadline)
      WHYQ_REQUIRES(mu) {
    std::unique_lock<std::mutex> lock(mu.mu_, std::adopt_lock);
    std::cv_status status = cv_.wait_until(lock, deadline);
    lock.release();
    return status == std::cv_status::no_timeout;
  }

  void NotifyOne() { cv_.notify_one(); }
  void NotifyAll() { cv_.notify_all(); }

 private:
  std::condition_variable cv_;
};

}  // namespace whyq

#endif  // WHYQ_COMMON_MUTEX_H_
