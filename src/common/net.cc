#include "common/net.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/epoll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <iterator>

namespace whyq {

namespace {

std::string Errno(const char* what) {
  return std::string(what) + ": " + std::strerror(errno);
}

}  // namespace

void UniqueFd::Reset(int fd) {
  if (fd_ >= 0) ::close(fd_);
  fd_ = fd;
}

bool SetNonBlocking(int fd) {
  int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags < 0) return false;
  return ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) == 0;
}

UniqueFd ListenTcp(uint16_t port, int backlog, std::string* error) {
  UniqueFd fd(::socket(AF_INET, SOCK_STREAM, 0));
  if (!fd.valid()) {
    if (error != nullptr) *error = Errno("socket");
    return {};
  }
  int one = 1;
  ::setsockopt(fd.get(), SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::bind(fd.get(), reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    if (error != nullptr) *error = Errno("bind");
    return {};
  }
  if (::listen(fd.get(), backlog) != 0) {
    if (error != nullptr) *error = Errno("listen");
    return {};
  }
  if (!SetNonBlocking(fd.get())) {
    if (error != nullptr) *error = Errno("fcntl(O_NONBLOCK)");
    return {};
  }
  return fd;
}

uint16_t LocalPort(int fd) {
  sockaddr_in addr{};
  socklen_t len = sizeof(addr);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len) != 0) {
    return 0;
  }
  return ntohs(addr.sin_port);
}

UniqueFd ConnectTcp(uint16_t port, std::string* error) {
  UniqueFd fd(::socket(AF_INET, SOCK_STREAM, 0));
  if (!fd.valid()) {
    if (error != nullptr) *error = Errno("socket");
    return {};
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::connect(fd.get(), reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    if (error != nullptr) *error = Errno("connect");
    return {};
  }
  return fd;
}

WakePipe::WakePipe() {
  int fds[2] = {-1, -1};
  if (::pipe(fds) != 0) return;
  read_end_.Reset(fds[0]);
  write_end_.Reset(fds[1]);
  SetNonBlocking(read_end_.get());
  SetNonBlocking(write_end_.get());
}

void WakePipe::Notify() {
  char b = 0;
  // EAGAIN means the pipe already holds an unread wakeup — good enough.
  [[maybe_unused]] ssize_t n = ::write(write_end_.get(), &b, 1);
}

void WakePipe::Drain() {
  char buf[64];
  while (::read(read_end_.get(), buf, sizeof(buf)) > 0) {
  }
}

Poller::Poller() : epoll_(::epoll_create1(0)) {}

namespace {

uint32_t EpollEvents(bool want_read, bool want_write) {
  uint32_t ev = 0;
  if (want_read) ev |= EPOLLIN;
  if (want_write) ev |= EPOLLOUT;
  return ev;
}

}  // namespace

bool Poller::Add(int fd, bool want_read, bool want_write, uint64_t tag) {
  epoll_event ev{};
  ev.events = EpollEvents(want_read, want_write);
  ev.data.u64 = tag;
  return ::epoll_ctl(epoll_.get(), EPOLL_CTL_ADD, fd, &ev) == 0;
}

bool Poller::Mod(int fd, bool want_read, bool want_write, uint64_t tag) {
  epoll_event ev{};
  ev.events = EpollEvents(want_read, want_write);
  ev.data.u64 = tag;
  return ::epoll_ctl(epoll_.get(), EPOLL_CTL_MOD, fd, &ev) == 0;
}

void Poller::Del(int fd) {
  ::epoll_ctl(epoll_.get(), EPOLL_CTL_DEL, fd, nullptr);
}

int Poller::Wait(int timeout_ms, std::vector<Event>* out) {
  epoll_event events[64];
  int n = ::epoll_wait(epoll_.get(), events,
                       static_cast<int>(std::size(events)), timeout_ms);
  if (n < 0) return errno == EINTR ? 0 : -1;
  for (int i = 0; i < n; ++i) {
    Event e;
    e.tag = events[i].data.u64;
    e.readable = (events[i].events & EPOLLIN) != 0;
    e.writable = (events[i].events & EPOLLOUT) != 0;
    e.error = (events[i].events & (EPOLLERR | EPOLLHUP)) != 0;
    out->push_back(e);
  }
  return n;
}

}  // namespace whyq
