#ifndef WHYQ_COMMON_NET_H_
#define WHYQ_COMMON_NET_H_

#include <cstdint>
#include <string>
#include <vector>

namespace whyq {

/// RAII file descriptor: closes on destruction, move-only. The building
/// block for sockets, pipes and pollers — a descriptor leak in a
/// long-lived daemon is a slow death by EMFILE.
class UniqueFd {
 public:
  UniqueFd() = default;
  explicit UniqueFd(int fd) : fd_(fd) {}
  ~UniqueFd() { Reset(); }

  UniqueFd(const UniqueFd&) = delete;
  UniqueFd& operator=(const UniqueFd&) = delete;
  UniqueFd(UniqueFd&& other) noexcept : fd_(other.Release()) {}
  UniqueFd& operator=(UniqueFd&& other) noexcept {
    if (this != &other) {
      Reset();
      fd_ = other.Release();
    }
    return *this;
  }

  int get() const { return fd_; }
  bool valid() const { return fd_ >= 0; }
  int Release() {
    int fd = fd_;
    fd_ = -1;
    return fd;
  }
  void Reset(int fd = -1);

 private:
  int fd_ = -1;
};

/// Puts `fd` into non-blocking mode (O_NONBLOCK). Returns false on error.
bool SetNonBlocking(int fd);

/// Creates a non-blocking TCP listener bound to 127.0.0.1:`port`
/// (loopback only — the daemon has no authentication; exposure beyond the
/// host is a proxy's job). `port` 0 binds an ephemeral port; read it back
/// with LocalPort(). Returns an invalid fd and sets `error` on failure.
UniqueFd ListenTcp(uint16_t port, int backlog, std::string* error);

/// The locally bound port of a socket (0 on error).
uint16_t LocalPort(int fd);

/// Blocking TCP connect to 127.0.0.1:`port` (test/bench client side).
UniqueFd ConnectTcp(uint16_t port, std::string* error);

/// Self-pipe wakeup channel: worker threads Notify() to make the event
/// loop's poller return; the loop Drain()s pending notifications. Both
/// ends are non-blocking, so Notify never blocks a worker (a full pipe
/// already guarantees a pending wakeup).
class WakePipe {
 public:
  /// Creates the pipe; `ok()` is false (and the fds invalid) on failure.
  WakePipe();

  bool ok() const { return read_end_.valid() && write_end_.valid(); }
  int read_fd() const { return read_end_.get(); }

  /// Thread-safe; async-signal-safe (a single write(2)).
  void Notify();

  /// Consumes every pending notification byte.
  void Drain();

 private:
  UniqueFd read_end_;
  UniqueFd write_end_;
};

/// Thin epoll wrapper (level-triggered). Registrations carry a caller
/// tag returned with each event, so the loop never maps fd -> state
/// itself. Linux-only, like the daemon it serves.
class Poller {
 public:
  struct Event {
    uint64_t tag = 0;
    bool readable = false;
    bool writable = false;
    bool error = false;  // EPOLLERR / EPOLLHUP
  };

  Poller();

  bool ok() const { return epoll_.valid(); }

  bool Add(int fd, bool want_read, bool want_write, uint64_t tag);
  bool Mod(int fd, bool want_read, bool want_write, uint64_t tag);
  void Del(int fd);

  /// Waits up to `timeout_ms` (-1 = forever) and appends ready events to
  /// `out`. Returns the number of events, 0 on timeout, -1 on error
  /// (EINTR is reported as 0 — the caller rechecks its stop flag).
  int Wait(int timeout_ms, std::vector<Event>* out);

 private:
  UniqueFd epoll_;
};

}  // namespace whyq

#endif  // WHYQ_COMMON_NET_H_
