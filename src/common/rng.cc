#include "common/rng.h"

#include <algorithm>
#include <cmath>
#include <unordered_set>

namespace whyq {

namespace {
// Beyond this table size, building the CDF is not worth it; fall back to a
// simple rejection scheme over continuous Zipf.
constexpr size_t kMaxZipfTable = 1 << 20;
}  // namespace

size_t Rng::Zipf(size_t n, double s) {
  WHYQ_CHECK(n > 0);
  if (n == 1) return 0;
  if (n <= kMaxZipfTable) {
    if (zipf_n_ != n || zipf_s_ != s) {
      zipf_cdf_.resize(n);
      double sum = 0.0;
      for (size_t i = 0; i < n; ++i) {
        sum += 1.0 / std::pow(static_cast<double>(i + 1), s);
        zipf_cdf_[i] = sum;
      }
      for (size_t i = 0; i < n; ++i) zipf_cdf_[i] /= sum;
      zipf_n_ = n;
      zipf_s_ = s;
    }
    double u = Double();
    auto it = std::lower_bound(zipf_cdf_.begin(), zipf_cdf_.end(), u);
    return static_cast<size_t>(it - zipf_cdf_.begin());
  }
  // Rejection sampling (Devroye) for very large n.
  double b = std::pow(2.0, s - 1.0);
  while (true) {
    double u = Double();
    double v = Double();
    double x = std::floor(std::pow(u, -1.0 / (s - 1.0)));
    double t = std::pow(1.0 + 1.0 / x, s - 1.0);
    if (v * x * (t - 1.0) / (b - 1.0) <= t / b &&
        x <= static_cast<double>(n)) {
      return static_cast<size_t>(x) - 1;
    }
  }
}

std::vector<size_t> Rng::SampleDistinct(size_t n, size_t k) {
  std::vector<size_t> out;
  if (k >= n) {
    out.resize(n);
    for (size_t i = 0; i < n; ++i) out[i] = i;
    return out;
  }
  if (k * 3 >= n) {
    // Dense case: partial Fisher-Yates.
    std::vector<size_t> pool(n);
    for (size_t i = 0; i < n; ++i) pool[i] = i;
    for (size_t i = 0; i < k; ++i) {
      size_t j = i + Index(n - i);
      std::swap(pool[i], pool[j]);
    }
    pool.resize(k);
    return pool;
  }
  std::unordered_set<size_t> seen;
  out.reserve(k);
  while (out.size() < k) {
    size_t x = Index(n);
    if (seen.insert(x).second) out.push_back(x);
  }
  return out;
}

}  // namespace whyq
