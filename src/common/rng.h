#ifndef WHYQ_COMMON_RNG_H_
#define WHYQ_COMMON_RNG_H_

#include <cstdint>
#include <random>
#include <vector>

#include "common/check.h"

namespace whyq {

/// Deterministic random source used by all generators and samplers so that
/// experiments are reproducible given a seed.
class Rng {
 public:
  explicit Rng(uint64_t seed) : engine_(seed) {}

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  int64_t Uniform(int64_t lo, int64_t hi) {
    WHYQ_CHECK(lo <= hi);
    return std::uniform_int_distribution<int64_t>(lo, hi)(engine_);
  }

  /// Uniform index in [0, n). Requires n > 0.
  size_t Index(size_t n) {
    WHYQ_CHECK(n > 0);
    return static_cast<size_t>(Uniform(0, static_cast<int64_t>(n) - 1));
  }

  /// Uniform double in [0, 1).
  double Double() {
    return std::uniform_real_distribution<double>(0.0, 1.0)(engine_);
  }

  /// Bernoulli draw with probability p of true.
  bool Chance(double p) { return Double() < p; }

  /// Zipfian-ish rank in [0, n): probability proportional to 1/(rank+1)^s.
  /// Uses inverse-CDF over a cached harmonic table for small n, rejection
  /// sampling otherwise. Used for skewed label/degree assignment.
  size_t Zipf(size_t n, double s);

  /// Samples k distinct indices from [0, n) (k may exceed n, then all).
  std::vector<size_t> SampleDistinct(size_t n, size_t k);

  std::mt19937_64& engine() { return engine_; }

 private:
  std::mt19937_64 engine_;
  // Cache for Zipf inverse-CDF: (n, s) of the cached table plus cumulative
  // weights. Regenerated when parameters change.
  size_t zipf_n_ = 0;
  double zipf_s_ = -1.0;
  std::vector<double> zipf_cdf_;
};

}  // namespace whyq

#endif  // WHYQ_COMMON_RNG_H_
