#include "common/table.h"

#include <algorithm>
#include <cstdio>
#include <sstream>

#include "common/check.h"

namespace whyq {

void TextTable::AddRow(std::vector<std::string> row) {
  WHYQ_CHECK(row.size() == header_.size());
  rows_.push_back(std::move(row));
}

std::string TextTable::Num(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
  return buf;
}

std::string TextTable::ToString(const std::string& title) const {
  std::vector<size_t> widths(header_.size());
  for (size_t c = 0; c < header_.size(); ++c) widths[c] = header_[c].size();
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  std::ostringstream os;
  if (!title.empty()) os << "== " << title << " ==\n";
  auto emit_row = [&](const std::vector<std::string>& row) {
    for (size_t c = 0; c < row.size(); ++c) {
      os << (c == 0 ? "" : "  ");
      os << row[c];
      for (size_t pad = row[c].size(); pad < widths[c]; ++pad) os << ' ';
    }
    os << '\n';
  };
  emit_row(header_);
  size_t total = 0;
  for (size_t c = 0; c < widths.size(); ++c) total += widths[c] + 2;
  os << std::string(total > 2 ? total - 2 : total, '-') << '\n';
  for (const auto& row : rows_) emit_row(row);
  return os.str();
}

}  // namespace whyq
