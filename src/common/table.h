#ifndef WHYQ_COMMON_TABLE_H_
#define WHYQ_COMMON_TABLE_H_

#include <string>
#include <vector>

namespace whyq {

/// Plain-text table builder used by the reproduction benches to print
/// figure-shaped result rows (dataset / parameter, algorithm, metric).
class TextTable {
 public:
  explicit TextTable(std::vector<std::string> header)
      : header_(std::move(header)) {}

  /// Appends one row; its arity must match the header's.
  void AddRow(std::vector<std::string> row);

  /// Convenience: formats doubles with `precision` digits after the point.
  static std::string Num(double v, int precision = 3);

  /// Renders the table with a title, aligned columns and a separator line.
  std::string ToString(const std::string& title) const;

  size_t row_count() const { return rows_.size(); }

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace whyq

#endif  // WHYQ_COMMON_TABLE_H_
