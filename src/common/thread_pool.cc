#include "common/thread_pool.h"

#include <algorithm>
#include <atomic>
#include <exception>
#include <memory>
#include <utility>

namespace whyq {

namespace {

// Set for the lifetime of a pool worker thread: ParallelFor called from a
// body that is already running on a pool worker degrades to inline serial
// execution instead of enqueueing (and possibly waiting on) more tasks.
thread_local bool tl_pool_worker = false;

}  // namespace

/// Shared bookkeeping of one ParallelFor call. Helpers that are dequeued
/// only after the call completed find `next` exhausted and return without
/// touching `body` — the state outlives the call via shared_ptr, the
/// caller's stack does not need to.
struct ThreadPool::ForState {
  size_t n = 0;
  std::function<void(size_t, size_t)> body;

  std::atomic<size_t> next{0};     // next unclaimed index
  std::atomic<bool> abort{false};  // first exception stops further claims

  Mutex mu;
  CondVar cv;
  size_t executing WHYQ_GUARDED_BY(mu) = 0;  // helpers inside RunSlot
  std::exception_ptr error WHYQ_GUARDED_BY(mu);
};

ThreadPool::ThreadPool(size_t workers) {
  workers_.reserve(workers);
  for (size_t i = 0; i < workers; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    MutexLock lock(mu_);
    stopping_ = true;
  }
  cv_.NotifyAll();
  for (std::thread& t : workers_) {
    if (t.joinable()) t.join();
  }
}

void ThreadPool::WorkerLoop() {
  tl_pool_worker = true;
  for (;;) {
    std::function<void()> task;
    {
      MutexLock lock(mu_);
      while (!stopping_ && tasks_.empty()) cv_.Wait(mu_);
      if (tasks_.empty()) return;  // stopping_ && drained
      task = std::move(tasks_.front());
      tasks_.pop_front();
    }
    task();
  }
}

size_t ThreadPool::queued_tasks() const {
  MutexLock lock(mu_);
  return tasks_.size();
}

void ThreadPool::RunSlot(ForState& state, size_t slot) {
  for (;;) {
    if (state.abort.load()) return;
    size_t i = state.next.fetch_add(1);
    if (i >= state.n) return;
    try {
      state.body(i, slot);
    } catch (...) {
      MutexLock lock(state.mu);
      if (!state.error) state.error = std::current_exception();
      state.abort.store(true);
    }
  }
}

void ThreadPool::ParallelFor(
    size_t n, size_t width,
    const std::function<void(size_t, size_t)>& body) {
  if (n == 0) return;
  size_t helpers = width > 1 ? width - 1 : 0;
  helpers = std::min(helpers, workers_.size());
  helpers = std::min(helpers, n - 1);
  if (helpers == 0 || tl_pool_worker) {
    // Serial reference path (also taken for nested calls from pool
    // workers): a plain ascending loop, exceptions propagate naturally.
    for (size_t i = 0; i < n; ++i) body(i, 0);
    return;
  }

  auto state = std::make_shared<ForState>();
  state->n = n;
  state->body = body;
  {
    MutexLock lock(mu_);
    if (!stopping_) {
      for (size_t s = 1; s <= helpers; ++s) {
        tasks_.emplace_back([state, s] {
          {
            MutexLock slock(state->mu);
            ++state->executing;
          }
          RunSlot(*state, s);
          {
            MutexLock slock(state->mu);
            --state->executing;
          }
          state->cv.NotifyAll();
        });
      }
    }
  }
  cv_.NotifyAll();

  RunSlot(*state, 0);  // the caller is executor slot 0

  // The caller's loop only returns once every index was claimed; wait for
  // helpers that are still running a claimed body. Helpers dequeued later
  // find the counter exhausted and never touch `body` again.
  {
    MutexLock lock(state->mu);
    while (state->executing != 0) state->cv.Wait(state->mu);
    if (state->error) std::rethrow_exception(state->error);
  }
}

ThreadPool& ThreadPool::Shared() {
  static ThreadPool pool([] {
    size_t hw = std::thread::hardware_concurrency();
    return std::max<size_t>(hw, 4) - 1;
  }());
  return pool;
}

size_t ResolveParallelWidth(size_t threads) {
  if (threads <= 1) return 1;
  return std::min(threads, ThreadPool::Shared().worker_count() + 1);
}

}  // namespace whyq
