#include "common/thread_pool.h"

#include <algorithm>
#include <atomic>
#include <exception>
#include <memory>
#include <utility>

namespace whyq {

namespace {

// Set for the lifetime of a pool worker thread: ParallelFor called from a
// body that is already running on a pool worker degrades to inline serial
// execution instead of enqueueing (and possibly waiting on) more tasks.
thread_local bool tl_pool_worker = false;

}  // namespace

/// Shared bookkeeping of one ParallelFor call. Helpers that are dequeued
/// only after the call completed find `next` exhausted and return without
/// touching `body` — the state outlives the call via shared_ptr, the
/// caller's stack does not need to.
struct ThreadPool::ForState {
  size_t n = 0;
  std::function<void(size_t, size_t)> body;

  std::atomic<size_t> next{0};     // next unclaimed index
  std::atomic<bool> abort{false};  // first exception stops further claims

  std::mutex mu;
  std::condition_variable cv;
  size_t executing = 0;  // helpers currently inside RunSlot
  std::exception_ptr error;
};

ThreadPool::ThreadPool(size_t workers) {
  workers_.reserve(workers);
  for (size_t i = 0; i < workers; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stopping_ = true;
  }
  cv_.notify_all();
  for (std::thread& t : workers_) {
    if (t.joinable()) t.join();
  }
}

void ThreadPool::WorkerLoop() {
  tl_pool_worker = true;
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] { return stopping_ || !tasks_.empty(); });
      if (tasks_.empty()) return;  // stopping_ && drained
      task = std::move(tasks_.front());
      tasks_.pop_front();
    }
    task();
  }
}

size_t ThreadPool::queued_tasks() const {
  std::lock_guard<std::mutex> lock(mu_);
  return tasks_.size();
}

void ThreadPool::RunSlot(ForState& state, size_t slot) {
  for (;;) {
    if (state.abort.load()) return;
    size_t i = state.next.fetch_add(1);
    if (i >= state.n) return;
    try {
      state.body(i, slot);
    } catch (...) {
      std::lock_guard<std::mutex> lock(state.mu);
      if (!state.error) state.error = std::current_exception();
      state.abort.store(true);
    }
  }
}

void ThreadPool::ParallelFor(
    size_t n, size_t width,
    const std::function<void(size_t, size_t)>& body) {
  if (n == 0) return;
  size_t helpers = width > 1 ? width - 1 : 0;
  helpers = std::min(helpers, workers_.size());
  helpers = std::min(helpers, n - 1);
  if (helpers == 0 || tl_pool_worker) {
    // Serial reference path (also taken for nested calls from pool
    // workers): a plain ascending loop, exceptions propagate naturally.
    for (size_t i = 0; i < n; ++i) body(i, 0);
    return;
  }

  auto state = std::make_shared<ForState>();
  state->n = n;
  state->body = body;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (!stopping_) {
      for (size_t s = 1; s <= helpers; ++s) {
        tasks_.emplace_back([state, s] {
          {
            std::lock_guard<std::mutex> slock(state->mu);
            ++state->executing;
          }
          RunSlot(*state, s);
          {
            std::lock_guard<std::mutex> slock(state->mu);
            --state->executing;
          }
          state->cv.notify_all();
        });
      }
    }
  }
  cv_.notify_all();

  RunSlot(*state, 0);  // the caller is executor slot 0

  // The caller's loop only returns once every index was claimed; wait for
  // helpers that are still running a claimed body. Helpers dequeued later
  // find the counter exhausted and never touch `body` again.
  {
    std::unique_lock<std::mutex> lock(state->mu);
    state->cv.wait(lock, [&] { return state->executing == 0; });
    if (state->error) std::rethrow_exception(state->error);
  }
}

ThreadPool& ThreadPool::Shared() {
  static ThreadPool pool([] {
    size_t hw = std::thread::hardware_concurrency();
    return std::max<size_t>(hw, 4) - 1;
  }());
  return pool;
}

size_t ResolveParallelWidth(size_t threads) {
  if (threads <= 1) return 1;
  return std::min(threads, ThreadPool::Shared().worker_count() + 1);
}

}  // namespace whyq
