#ifndef WHYQ_COMMON_THREAD_POOL_H_
#define WHYQ_COMMON_THREAD_POOL_H_

#include <cstddef>
#include <deque>
#include <functional>
#include <thread>
#include <vector>

#include "common/mutex.h"

namespace whyq {

/// A fixed-size task-queue thread pool, the substrate for *intra-question*
/// parallelism (the inter-request worker pool lives in service/service.h).
/// The three algorithm hot loops — MBS-set verification in
/// ExactWhy/ExactWhyNot, per-round marginal-gain scoring in the greedy
/// algorithms, and candidate filtering over large label buckets — are all
/// embarrassingly parallel per item, and all schedule through ParallelFor().
///
/// Design rules the algorithms rely on:
///  * ParallelFor is *synchronous*: when it returns, every index has been
///    executed (or the first exception has been rethrown) and no task of
///    this call is still running or can run later. Nothing leaks into the
///    pool past the call — a deadline that unwinds an algorithm mid-search
///    leaves no orphaned work behind.
///  * The caller participates as executor slot 0, so a ParallelFor can
///    never deadlock waiting for pool capacity: with a saturated (or empty)
///    pool the caller simply runs every index itself, serially, in order.
///  * `slot` identifiers are dense in [0, width): each concurrent executor
///    owns one slot for the whole call, which is how callers hand each
///    executor its own non-thread-safe scratch (per-slot MatchEngine-backed
///    evaluators — see why/why_algorithms.cc).
///  * Bodies scheduled from inside a pool worker run inline on that worker
///    (detected via a thread-local flag): nested ParallelFor degrades to
///    serial instead of blocking a worker on queue capacity it may itself
///    be responsible for freeing.
///
/// Thread-safety: ParallelFor and queued_tasks may be called from any
/// number of threads concurrently. Construction/destruction must not race
/// other calls (destruction joins the workers after draining).
class ThreadPool {
 public:
  /// Spawns `workers` pool threads (0 is valid: every ParallelFor then runs
  /// inline on the caller).
  explicit ThreadPool(size_t workers);

  /// Drains queued tasks (they run to completion) and joins the workers.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  size_t worker_count() const { return workers_.size(); }

  /// Runs body(index, slot) for every index in [0, n), using at most
  /// `width` concurrent executors: the caller (slot 0) plus up to
  /// min(width - 1, worker_count(), n - 1) pool workers (slots 1, 2, ...).
  /// Indices are claimed from a shared counter in ascending order; with
  /// width <= 1 the call is exactly a serial ascending for-loop.
  ///
  /// Blocks until every index has run. If any body throws, remaining
  /// indices are abandoned and the first exception is rethrown here.
  void ParallelFor(size_t n, size_t width,
                   const std::function<void(size_t index, size_t slot)>& body)
      WHYQ_EXCLUDES(mu_);

  /// Tasks currently enqueued but not yet started (test/debug
  /// introspection; completed ParallelFor calls may briefly leave already-
  /// satisfied helper stubs behind, which become no-ops when dequeued).
  size_t queued_tasks() const WHYQ_EXCLUDES(mu_);

  /// The process-wide shared pool, created on first use with
  /// max(hardware_concurrency, 4) - 1 workers. The floor of 3 workers keeps
  /// an explicit `--threads=4` request meaningful on small containers —
  /// oversubscribing cores is then the caller's informed choice.
  static ThreadPool& Shared();

 private:
  struct ForState;

  void WorkerLoop();
  static void RunSlot(ForState& state, size_t slot);

  mutable Mutex mu_;
  CondVar cv_;
  std::deque<std::function<void()>> tasks_ WHYQ_GUARDED_BY(mu_);
  bool stopping_ WHYQ_GUARDED_BY(mu_) = false;
  std::vector<std::thread> workers_;  // written only by the constructor
};

/// Resolves an AnswerConfig::threads knob to an executor width for
/// ThreadPool::Shared(): 0 ("unset — host decides, default serial") and 1
/// both mean serial; larger values are capped at worker_count() + 1. The
/// algorithms treat width 1 as the serial reference path.
size_t ResolveParallelWidth(size_t threads);

}  // namespace whyq

#endif  // WHYQ_COMMON_THREAD_POOL_H_
