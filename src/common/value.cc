#include "common/value.h"

#include <cmath>
#include <cstdio>

namespace whyq {

const char* CompareOpName(CompareOp op) {
  switch (op) {
    case CompareOp::kLt:
      return "<";
    case CompareOp::kLe:
      return "<=";
    case CompareOp::kEq:
      return "=";
    case CompareOp::kGe:
      return ">=";
    case CompareOp::kGt:
      return ">";
  }
  return "?";
}

bool IsUpperBound(CompareOp op) {
  return op == CompareOp::kLt || op == CompareOp::kLe;
}

bool IsLowerBound(CompareOp op) {
  return op == CompareOp::kGt || op == CompareOp::kGe;
}

std::optional<int> Value::Compare(const Value& other) const {
  if (is_string() != other.is_string()) return std::nullopt;
  if (is_string()) {
    int c = as_string().compare(other.as_string());
    return c < 0 ? -1 : (c > 0 ? 1 : 0);
  }
  // Integer-integer compares exactly; anything involving a double compares
  // on the double axis.
  if (is_int() && other.is_int()) {
    int64_t a = as_int();
    int64_t b = other.as_int();
    return a < b ? -1 : (a > b ? 1 : 0);
  }
  double a = numeric();
  double b = other.numeric();
  return a < b ? -1 : (a > b ? 1 : 0);
}

bool Value::Satisfies(CompareOp op, const Value& constant) const {
  std::optional<int> cmp = Compare(constant);
  if (!cmp.has_value()) return false;
  switch (op) {
    case CompareOp::kLt:
      return *cmp < 0;
    case CompareOp::kLe:
      return *cmp <= 0;
    case CompareOp::kEq:
      return *cmp == 0;
    case CompareOp::kGe:
      return *cmp >= 0;
    case CompareOp::kGt:
      return *cmp > 0;
  }
  return false;
}

bool Value::operator<(const Value& other) const {
  if (data_.index() != other.data_.index()) {
    return data_.index() < other.data_.index();
  }
  return data_ < other.data_;
}

std::string Value::ToString() const {
  if (is_int()) return std::to_string(as_int());
  if (is_string()) return as_string();
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%g", as_double());
  return buf;
}

std::optional<double> AbsoluteDifference(const Value& a, const Value& b) {
  if (!a.is_numeric() || !b.is_numeric()) return std::nullopt;
  return std::fabs(a.numeric() - b.numeric());
}

}  // namespace whyq
