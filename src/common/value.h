#ifndef WHYQ_COMMON_VALUE_H_
#define WHYQ_COMMON_VALUE_H_

#include <cstdint>
#include <optional>
#include <string>
#include <variant>

namespace whyq {

/// Comparison operator of a literal `u.A op c` (Section II of the paper).
enum class CompareOp : uint8_t {
  kLt,  // <
  kLe,  // <=
  kEq,  // =
  kGe,  // >=
  kGt,  // >
};

/// Returns the printable form of `op` ("<", "<=", "=", ">=", ">").
const char* CompareOpName(CompareOp op);

/// True for `<` and `<=`: the literal imposes an upper bar on the attribute.
bool IsUpperBound(CompareOp op);
/// True for `>` and `>=`: the literal imposes a lower bar on the attribute.
bool IsLowerBound(CompareOp op);

/// A typed attribute value. Multi-attributed graphs carry heterogeneous
/// attribute tuples per node; a value is an integer, a double, or a string.
/// Numeric kinds compare with each other; strings compare lexicographically
/// with strings only. Cross-kind (numeric vs. string) comparisons are
/// undefined and reported as std::nullopt.
class Value {
 public:
  Value() : data_(int64_t{0}) {}
  explicit Value(int64_t v) : data_(v) {}
  explicit Value(int v) : data_(static_cast<int64_t>(v)) {}
  explicit Value(double v) : data_(v) {}
  explicit Value(std::string v) : data_(std::move(v)) {}
  explicit Value(const char* v) : data_(std::string(v)) {}

  bool is_int() const { return std::holds_alternative<int64_t>(data_); }
  bool is_double() const { return std::holds_alternative<double>(data_); }
  bool is_string() const { return std::holds_alternative<std::string>(data_); }
  bool is_numeric() const { return is_int() || is_double(); }

  int64_t as_int() const { return std::get<int64_t>(data_); }
  double as_double() const { return std::get<double>(data_); }
  const std::string& as_string() const { return std::get<std::string>(data_); }

  /// Numeric view (int promoted to double). Only valid if is_numeric().
  double numeric() const {
    return is_int() ? static_cast<double>(as_int()) : as_double();
  }

  /// Three-way comparison: negative / zero / positive, or std::nullopt when
  /// the kinds are incomparable (numeric vs. string).
  std::optional<int> Compare(const Value& other) const;

  /// Evaluates `*this op constant`; incomparable kinds never satisfy.
  bool Satisfies(CompareOp op, const Value& constant) const;

  /// Exact same kind and content (string "5" != int 5, but int 5 == double 5.0
  /// is still false here; use Compare for numeric equality).
  bool operator==(const Value& other) const { return data_ == other.data_; }
  bool operator!=(const Value& other) const { return !(*this == other); }

  /// Arbitrary-but-total order usable as a container key (kind first, then
  /// value). Distinct from Compare, which is the semantic order.
  bool operator<(const Value& other) const;

  std::string ToString() const;

 private:
  std::variant<int64_t, double, std::string> data_;
};

/// |a - b| on the semantic (numeric) axis; nullopt for non-numeric operands.
/// Used by the weighted edit-cost model w(o) = 1 + |c'-c|/range(D(A)).
std::optional<double> AbsoluteDifference(const Value& a, const Value& b);

}  // namespace whyq

#endif  // WHYQ_COMMON_VALUE_H_
