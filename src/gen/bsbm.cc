#include "gen/bsbm.h"

#include <algorithm>
#include <string>
#include <vector>

#include "common/rng.h"

namespace whyq {

namespace {

const char* const kCountries[] = {"US", "DE", "JP", "GB", "FR",
                                  "CN", "KR", "RU", "AT", "ES"};
const char* const kBrands[] = {"Acme",    "Globex", "Initech", "Umbrella",
                               "Hooli",   "Vandelay", "Wonka",  "Stark",
                               "Wayne",   "Tyrell"};

}  // namespace

Graph GenerateBsbm(const BsbmConfig& config) {
  Rng rng(config.seed);
  GraphBuilder b;

  size_t n_products = std::max<size_t>(1, config.products);
  size_t n_producers =
      std::max<size_t>(1, n_products / config.products_per_producer);
  size_t n_types = std::max<size_t>(1, n_products / config.products_per_type);
  size_t n_features =
      std::max<size_t>(1, n_products / config.products_per_feature);
  size_t n_vendors =
      std::max<size_t>(1, n_products / config.products_per_vendor);
  size_t n_offers =
      static_cast<size_t>(config.offers_per_product * n_products);
  size_t n_reviews =
      static_cast<size_t>(config.reviews_per_product * n_products);
  size_t n_persons =
      std::max<size_t>(1, n_reviews / config.reviews_per_person);

  auto country = [&]() {
    return Value(kCountries[rng.Index(std::size(kCountries))]);
  };

  std::vector<NodeId> producers(n_producers);
  for (auto& v : producers) {
    v = b.AddNode("Producer");
    b.SetAttr(v, "country", country());
  }
  std::vector<NodeId> types(n_types);
  for (auto& v : types) {
    v = b.AddNode("ProductType");
    b.SetAttr(v, "popularity", Value(rng.Uniform(0, 100)));
  }
  std::vector<NodeId> features(n_features);
  for (auto& v : features) {
    v = b.AddNode("ProductFeature");
    b.SetAttr(v, "popularity", Value(rng.Uniform(0, 100)));
  }
  std::vector<NodeId> vendors(n_vendors);
  for (auto& v : vendors) {
    v = b.AddNode("Vendor");
    b.SetAttr(v, "country", country());
  }
  std::vector<NodeId> persons(n_persons);
  for (auto& v : persons) {
    v = b.AddNode("Person");
    b.SetAttr(v, "country", country());
  }

  std::vector<NodeId> products(n_products);
  for (auto& v : products) {
    v = b.AddNode("Product");
    b.SetAttr(v, "price", Value(rng.Uniform(10, 5000)));
    b.SetAttr(v, "propertyNum1", Value(rng.Uniform(0, 500)));
    b.SetAttr(v, "propertyNum2", Value(rng.Uniform(0, 500)));
    b.SetAttr(v, "propertyNum3", Value(rng.Uniform(0, 2000)));
    b.SetAttr(v, "brand", Value(kBrands[rng.Zipf(std::size(kBrands), 1.1)]));
    b.AddEdge(v, producers[rng.Zipf(n_producers, 1.05)], "producer");
    b.AddEdge(v, types[rng.Zipf(n_types, 1.05)], "type");
    size_t nf = 1 + rng.Index(config.features_per_product);
    for (size_t f = 0; f < nf; ++f) {
      b.AddEdge(v, features[rng.Zipf(n_features, 1.05)], "feature");
    }
  }

  for (size_t i = 0; i < n_offers; ++i) {
    NodeId v = b.AddNode("Offer");
    NodeId p = products[rng.Index(n_products)];
    b.SetAttr(v, "price", Value(rng.Uniform(10, 6000)));
    b.SetAttr(v, "deliveryDays", Value(rng.Uniform(1, 21)));
    b.SetAttr(v, "validTo", Value(rng.Uniform(2015, 2026)));
    b.AddEdge(v, p, "offerOf");
    b.AddEdge(v, vendors[rng.Zipf(n_vendors, 1.05)], "vendor");
  }

  for (size_t i = 0; i < n_reviews; ++i) {
    NodeId v = b.AddNode("Review");
    b.SetAttr(v, "rating", Value(rng.Uniform(1, 10)));
    b.SetAttr(v, "date", Value(rng.Uniform(2000, 2026)));
    b.AddEdge(v, products[rng.Index(n_products)], "reviewOf");
    b.AddEdge(v, persons[rng.Zipf(n_persons, 1.05)], "reviewer");
  }

  return b.Build();
}

}  // namespace whyq
