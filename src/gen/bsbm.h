#ifndef WHYQ_GEN_BSBM_H_
#define WHYQ_GEN_BSBM_H_

#include <cstdint>

#include "graph/graph.h"

namespace whyq {

/// BSBM-style synthetic e-commerce knowledge-graph generator (the paper
/// uses the Berlin SPARQL Benchmark to drive its scalability experiments).
///
/// Schema (node labels / edge labels / attributes):
///   Product       —producer→ Producer, —type→ ProductType,
///                 —feature→ ProductFeature
///   Offer         —offerOf→ Product, —vendor→ Vendor
///   Review        —reviewOf→ Product, —reviewer→ Person
///   Product:  price (int), propertyNum1..3 (int), brand (string)
///   Offer:    price (int), deliveryDays (int), validTo (int)
///   Review:   rating (int, 1..10), date (int)
///   Producer / Vendor / Person: country (string)
///   ProductType / ProductFeature: popularity (int)
///
/// Deterministic for a given (scale, seed). The node/edge counts grow
/// linearly in `scale` (the number of products); scale 10'000 yields about
/// 57k nodes and 140k edges — the same role BSBM's scale factor plays.
struct BsbmConfig {
  size_t products = 10000;
  uint64_t seed = 7;
  // Derived population ratios (per product).
  double offers_per_product = 2.0;
  double reviews_per_product = 2.5;
  size_t products_per_producer = 30;
  size_t products_per_type = 25;
  size_t products_per_feature = 20;
  size_t reviews_per_person = 20;
  size_t products_per_vendor = 50;
  size_t features_per_product = 3;
};

Graph GenerateBsbm(const BsbmConfig& config);

}  // namespace whyq

#endif  // WHYQ_GEN_BSBM_H_
