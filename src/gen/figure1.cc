#include "gen/figure1.h"

namespace whyq {

Figure1 MakeFigure1() {
  Figure1 f;
  GraphBuilder b;

  // Shared entities.
  NodeId brand_samsung = b.AddNode("Brand");
  b.SetAttr(brand_samsung, "name", Value("Samsung"));
  NodeId series_s = b.AddNode("Series");
  b.SetAttr(series_s, "val", Value("S"));
  NodeId series_a = b.AddNode("Series");
  b.SetAttr(series_a, "val", Value("A"));
  NodeId color_pink = b.AddNode("Color");
  b.SetAttr(color_pink, "val", Value("pink"));
  NodeId color_black = b.AddNode("Color");
  b.SetAttr(color_black, "val", Value("black"));
  NodeId deal_att = b.AddNode("Deal");
  b.SetAttr(deal_att, "carrier", Value("AT&T"));
  b.SetAttr(deal_att, "months", Value(int64_t{24}));
  NodeId deal_tmobile = b.AddNode("Deal");
  b.SetAttr(deal_tmobile, "carrier", Value("T-Mobile"));
  b.SetAttr(deal_tmobile, "months", Value(int64_t{12}));

  auto phone = [&](const char* model, int64_t price, double os) {
    NodeId v = b.AddNode("Cellphone");
    b.SetAttr(v, "model", Value(model));
    b.SetAttr(v, "Price", Value(price));
    b.SetAttr(v, "OS", Value(os));
    b.AddEdge(v, brand_samsung, "brand");
    return v;
  };

  // The five phones of Fig. 1. Prices follow Examples 5 and 8:
  // dom(Price, picky side) = {250, 120}; dom(Price, V_C) = {654, 799}.
  f.a5 = phone("A5", 250, 4.4);
  f.s5 = phone("S5", 120, 4.4);
  f.s6 = phone("S6", 600, 5.0);
  f.s8 = phone("S8", 654, 7.0);
  f.s9 = phone("S9", 799, 8.0);

  b.AddEdge(f.a5, series_a, "series");
  b.AddEdge(f.s5, series_s, "series");
  b.AddEdge(f.s6, series_s, "series");
  b.AddEdge(f.s8, series_s, "series");
  b.AddEdge(f.s9, series_s, "series");

  // Colors: every phone but the S9 ships in pink ("there is no pink S9").
  b.AddEdge(f.a5, color_pink, "color");
  b.AddEdge(f.s5, color_pink, "color");
  b.AddEdge(f.s6, color_pink, "color");
  b.AddEdge(f.s8, color_pink, "color");
  b.AddEdge(f.s9, color_black, "color");

  // Deals: the older phones are on AT&T; S8/S9 are not ("no evidence shows
  // that they are supported by AT&T").
  b.AddEdge(f.a5, deal_att, "deal");
  b.AddEdge(f.s5, deal_att, "deal");
  b.AddEdge(f.s6, deal_att, "deal");
  b.AddEdge(f.s8, deal_tmobile, "deal");
  b.AddEdge(f.s9, deal_tmobile, "deal");

  f.graph = b.Build();

  // Q: Cellphone* [Price <= 650] —color→ Color[val=pink],
  //                              —deal→  Deal[carrier=AT&T],
  //                              —brand→ Brand[name=Samsung].
  Query& q = f.query;
  QNodeId u_phone = q.AddNode(*f.graph.node_labels().Find("Cellphone"));
  QNodeId u_color = q.AddNode(*f.graph.node_labels().Find("Color"));
  QNodeId u_deal = q.AddNode(*f.graph.node_labels().Find("Deal"));
  QNodeId u_brand = q.AddNode(*f.graph.node_labels().Find("Brand"));
  SymbolId price = *f.graph.attr_names().Find("Price");
  SymbolId val = *f.graph.attr_names().Find("val");
  SymbolId carrier = *f.graph.attr_names().Find("carrier");
  SymbolId name = *f.graph.attr_names().Find("name");
  q.AddLiteral(u_phone, Literal{price, CompareOp::kLe, Value(int64_t{650})});
  q.AddLiteral(u_color, Literal{val, CompareOp::kEq, Value("pink")});
  q.AddLiteral(u_deal, Literal{carrier, CompareOp::kEq, Value("AT&T")});
  q.AddLiteral(u_brand, Literal{name, CompareOp::kEq, Value("Samsung")});
  q.AddEdge(u_phone, u_color, *f.graph.edge_labels().Find("color"));
  q.AddEdge(u_phone, u_deal, *f.graph.edge_labels().Find("deal"));
  q.AddEdge(u_phone, u_brand, *f.graph.edge_labels().Find("brand"));
  q.SetOutput(u_phone);

  return f;
}

}  // namespace whyq
