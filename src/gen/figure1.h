#ifndef WHYQ_GEN_FIGURE1_H_
#define WHYQ_GEN_FIGURE1_H_

#include "graph/graph.h"
#include "query/query.h"

namespace whyq {

/// The paper's running example (Fig. 1): a fragment of a product knowledge
/// graph about Samsung cellphones, plus the query Q searching for pink
/// AT&T cellphones under $650.
///
/// Node ids of the interesting entities are exposed so tests and examples
/// can pose the exact Why/Why-not questions from Examples 1–8:
///   answers of Q:        {A5, S5, S6}
///   Why question:        V_N = {A5, S5}
///   Why-not question:    V_C = {S8, S9} (with OS >= 5 as condition C)
struct Figure1 {
  Graph graph;
  Query query;  // Q of Fig. 1, output node "Cellphone"
  NodeId a5 = kInvalidNode;
  NodeId s5 = kInvalidNode;
  NodeId s6 = kInvalidNode;
  NodeId s8 = kInvalidNode;
  NodeId s9 = kInvalidNode;
};

Figure1 MakeFigure1();

}  // namespace whyq

#endif  // WHYQ_GEN_FIGURE1_H_
