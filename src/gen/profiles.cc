#include "gen/profiles.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include "common/check.h"
#include "common/rng.h"

namespace whyq {

namespace {

// Shape parameters of one synthetic profile (see DESIGN.md §4: these track
// the label-alphabet size, attribute richness and density ratios the paper
// reports for the corresponding real dataset, at scaled-down node counts).
struct ProfileParams {
  const char* name;
  size_t default_nodes;
  double edge_ratio;     // |E| / |V|
  size_t node_labels;    // alphabet size (scaled where the original is huge)
  size_t edge_labels;
  size_t attr_pool;      // distinct attribute names
  double avg_attrs;      // attributes per node
  double label_zipf;     // label-frequency skew
  double numeric_frac;   // fraction of numeric attributes
};

const ProfileParams& ParamsOf(DatasetProfile p) {
  static const ProfileParams kDBpedia{"dbpedia", 60000, 3.09, 676, 120,
                                      200,       9.0,   1.10, 0.7};
  static const ProfileParams kYago{"yago", 40000, 1.54, 4000, 60,
                                   120,    5.0,   1.05, 0.6};
  static const ProfileParams kFreebase{"freebase", 80000, 1.57, 2000, 150,
                                       150,        8.0,   1.10, 0.7};
  static const ProfileParams kPokec{"pokec", 15000, 19.1, 1, 3,
                                    60,      24.0,  1.0,  0.8};
  static const ProfileParams kIMDb{"imdb", 40000, 3.06, 12, 8,
                                   30,     6.0,   1.05, 0.65};
  switch (p) {
    case DatasetProfile::kDBpedia:
      return kDBpedia;
    case DatasetProfile::kYago:
      return kYago;
    case DatasetProfile::kFreebase:
      return kFreebase;
    case DatasetProfile::kPokec:
      return kPokec;
    case DatasetProfile::kIMDb:
      return kIMDb;
  }
  WHYQ_CHECK(false);
  return kDBpedia;
}

}  // namespace

const char* DatasetProfileName(DatasetProfile p) { return ParamsOf(p).name; }

size_t DefaultProfileNodes(DatasetProfile p) {
  return ParamsOf(p).default_nodes;
}

Graph GenerateProfile(DatasetProfile p, size_t nodes, uint64_t seed) {
  const ProfileParams& pp = ParamsOf(p);
  size_t n = nodes == 0 ? pp.default_nodes : nodes;
  Rng rng(seed);
  GraphBuilder b;

  // The label alphabet scales with the node count so per-label
  // selectivity (nodes per label) is size-invariant — downscaled graphs
  // keep the original's matching characteristics.
  size_t n_labels = pp.node_labels;
  if (n < pp.default_nodes) {
    n_labels = std::min(
        pp.node_labels,
        std::max<size_t>(
            4, pp.node_labels * n / std::max<size_t>(pp.default_nodes, 1)));
  }

  // Pre-intern label / attribute alphabets so ids are dense and stable.
  std::vector<SymbolId> labels(n_labels);
  for (size_t i = 0; i < n_labels; ++i) {
    labels[i] = b.node_labels().Intern("L" + std::to_string(i));
  }
  std::vector<SymbolId> elabels(pp.edge_labels);
  for (size_t i = 0; i < pp.edge_labels; ++i) {
    elabels[i] = b.edge_labels().Intern("r" + std::to_string(i));
  }
  std::vector<SymbolId> attrs(pp.attr_pool);
  for (size_t i = 0; i < pp.attr_pool; ++i) {
    attrs[i] = b.attr_names().Intern("a" + std::to_string(i));
  }

  // Nodes: Zipf-skewed labels; per-label attribute pools (deterministic
  // label -> attribute association creates the common/differential
  // attribute structure the Why algorithms exploit).
  std::vector<size_t> label_of(n);
  std::vector<std::vector<NodeId>> by_label(n_labels);
  for (size_t i = 0; i < n; ++i) {
    size_t l = rng.Zipf(n_labels, pp.label_zipf);
    label_of[i] = l;
    NodeId v = b.AddNodeById(labels[l]);
    by_label[l].push_back(v);
    size_t pool = std::max<size_t>(
        2, static_cast<size_t>(std::lround(pp.avg_attrs * 1.5)));
    pool = std::min(pool, pp.attr_pool);
    size_t n_attrs = std::max<size_t>(
        1, static_cast<size_t>(
               std::lround(pp.avg_attrs * (0.6 + 0.8 * rng.Double()))));
    n_attrs = std::min(n_attrs, pool);
    for (size_t k = 0; k < n_attrs; ++k) {
      size_t slot = (l * 7 + rng.Index(pool)) % pp.attr_pool;
      SymbolId a = attrs[slot];
      if (rng.Double() < pp.numeric_frac) {
        // Coarse leveled domains (4..16 distinct values per attribute):
        // real attributes share values across entities (price tiers,
        // ratings, years), which is what makes cleanly separating V_N from
        // the desired answers genuinely hard.
        int64_t levels = 4 + static_cast<int64_t>(slot % 13);
        int64_t step = 1 + static_cast<int64_t>(slot % 7) * 10;
        b.SetAttrById(v, a, Value(rng.Uniform(0, levels) * step));
      } else {
        b.SetAttrById(
            v, a, Value("v" + std::to_string(slot) + "_" +
                        std::to_string(rng.Zipf(20, 1.2))));
      }
    }
  }

  // Edges: mostly label-affine (deterministic compatible-label pools, which
  // yields recurring typed motifs queries can latch onto, and keeps nodes of
  // one label structurally similar — the regime where Why-questions are
  // genuinely hard); a small uniform remainder adds noise.
  size_t m = static_cast<size_t>(pp.edge_ratio * static_cast<double>(n));
  for (size_t i = 0; i < m; ++i) {
    NodeId src = static_cast<NodeId>(rng.Index(n));
    size_t ls = label_of[src];
    NodeId dst;
    if (rng.Chance(0.93) && n_labels > 1) {
      size_t lt = (ls * 13 + 1 + rng.Index(3)) % n_labels;
      if (by_label[lt].empty()) {
        dst = static_cast<NodeId>(rng.Index(n));
      } else {
        dst = by_label[lt][rng.Index(by_label[lt].size())];
      }
    } else {
      dst = static_cast<NodeId>(rng.Index(n));
    }
    if (dst == src) dst = static_cast<NodeId>((src + 1) % n);
    size_t lt = label_of[dst];
    size_t el = (ls * 5 + lt * 3 + rng.Index(2)) % pp.edge_labels;
    b.AddEdgeById(src, dst, elabels[el]);
    // A sprinkle of reciprocal edges (real relations are often mutual):
    // these give the graphs directed cycles, without which cyclic query
    // templates (Fig. 6(d)) could never be carved out.
    if (rng.Chance(0.06)) b.AddEdgeById(dst, src, elabels[el]);
  }

  return b.Build();
}

}  // namespace whyq
