#ifndef WHYQ_GEN_PROFILES_H_
#define WHYQ_GEN_PROFILES_H_

#include <cstdint>
#include <string>

#include "graph/graph.h"

namespace whyq {

/// Synthetic stand-ins for the paper's five real-world datasets (Section
/// VI). The originals (DBpedia, Yago, Freebase, Pokec, IMDb) are multi-GB
/// downloads; the algorithms' costs depend on the *local* shape of the
/// graph — label selectivity, attribute richness, density — which these
/// profiles reproduce at laptop scale (see DESIGN.md §4 for the
/// substitution rationale). Node counts default to scaled-down sizes but
/// can be overridden to stress scalability.
enum class DatasetProfile {
  kDBpedia,   // mid-density, 676-label alphabet, ~9 attrs/node
  kYago,      // sparse, huge label alphabet, ~5 attrs/node
  kFreebase,  // mid-density, large alphabet, ~8 attrs/node
  kPokec,     // dense social graph, 1 node label, many attrs
  kIMDb,      // movie/person schema, ~6 attrs/node
};

const char* DatasetProfileName(DatasetProfile p);

/// Default scaled node count for each profile.
size_t DefaultProfileNodes(DatasetProfile p);

/// Generates the profile graph. `nodes` == 0 uses the profile default.
Graph GenerateProfile(DatasetProfile p, size_t nodes = 0, uint64_t seed = 7);

/// All five profiles, in the paper's presentation order.
inline constexpr DatasetProfile kAllProfiles[] = {
    DatasetProfile::kDBpedia, DatasetProfile::kYago,
    DatasetProfile::kFreebase, DatasetProfile::kPokec,
    DatasetProfile::kIMDb};

}  // namespace whyq

#endif  // WHYQ_GEN_PROFILES_H_
