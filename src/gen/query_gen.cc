#include "gen/query_gen.h"

#include <algorithm>
#include <unordered_map>

#include "matcher/matcher.h"

namespace whyq {

namespace {

// One selected template edge over data nodes.
struct TemplateEdge {
  size_t src;  // indices into the witness list
  size_t dst;
  SymbolId label;
};

// Can `to` be reached from `from` in the directed template (for the
// cyclic/acyclic extra-edge decision)?
bool Reaches(const std::vector<TemplateEdge>& edges, size_t n, size_t from,
             size_t to) {
  std::vector<uint8_t> seen(n, 0);
  std::vector<size_t> stack{from};
  seen[from] = 1;
  while (!stack.empty()) {
    size_t at = stack.back();
    stack.pop_back();
    if (at == to) return true;
    for (const TemplateEdge& e : edges) {
      if (e.src == at && !seen[e.dst]) {
        seen[e.dst] = 1;
        stack.push_back(e.dst);
      }
    }
  }
  return false;
}

}  // namespace

const char* QueryTopologyName(QueryTopology t) {
  switch (t) {
    case QueryTopology::kTree:
      return "tree";
    case QueryTopology::kAcyclic:
      return "acyclic";
    case QueryTopology::kCyclic:
      return "cyclic";
  }
  return "?";
}

std::optional<GeneratedQuery> GenerateQuery(const Graph& g,
                                            const QueryGenConfig& cfg,
                                            Rng& rng) {
  if (g.node_count() == 0) return std::nullopt;
  Matcher matcher(g);

  for (size_t attempt = 0; attempt < cfg.max_attempts; ++attempt) {
    // 1. Carve a connected template out of G by random expansion.
    size_t tree_edges = cfg.topology == QueryTopology::kTree
                            ? cfg.edges
                            : (cfg.edges > 1 ? cfg.edges - 1 : cfg.edges);
    std::vector<NodeId> witness;
    std::unordered_map<NodeId, size_t> index_of;
    std::vector<TemplateEdge> edges;

    NodeId seed = static_cast<NodeId>(rng.Index(g.node_count()));
    if (g.out_edges(seed).empty() && g.in_edges(seed).empty()) continue;
    witness.push_back(seed);
    index_of[seed] = 0;

    bool stuck = false;
    while (edges.size() < tree_edges) {
      bool expanded = false;
      for (size_t tries = 0; tries < 16 && !expanded; ++tries) {
        size_t at = rng.Index(witness.size());
        NodeId v = witness[at];
        const auto& out = g.out_edges(v);
        const auto& in = g.in_edges(v);
        size_t total = out.size() + in.size();
        if (total == 0) continue;
        size_t pick = rng.Index(total);
        bool forward = pick < out.size();
        const HalfEdge& he = forward ? out[pick] : in[pick - out.size()];
        if (index_of.count(he.other)) continue;  // need a fresh node
        size_t idx = witness.size();
        witness.push_back(he.other);
        index_of[he.other] = idx;
        if (forward) {
          edges.push_back(TemplateEdge{at, idx, he.label});
        } else {
          edges.push_back(TemplateEdge{idx, at, he.label});
        }
        expanded = true;
      }
      if (!expanded) {
        stuck = true;
        break;
      }
    }
    if (stuck) continue;

    // 2. Topology: add one extra witnessed edge for acyclic/cyclic shapes.
    if (cfg.topology != QueryTopology::kTree && cfg.edges > 1) {
      std::vector<TemplateEdge> options;
      for (size_t i = 0; i < witness.size(); ++i) {
        for (const HalfEdge& he : g.out_edges(witness[i])) {
          auto it = index_of.find(he.other);
          if (it == index_of.end()) continue;
          size_t j = it->second;
          if (i == j) continue;
          bool used = false;
          for (const TemplateEdge& e : edges) {
            if (e.src == i && e.dst == j && e.label == he.label) {
              used = true;
              break;
            }
          }
          if (used) continue;
          bool closes_cycle = Reaches(edges, witness.size(), j, i);
          if (cfg.topology == QueryTopology::kCyclic && closes_cycle) {
            options.push_back(TemplateEdge{i, j, he.label});
          }
          if (cfg.topology == QueryTopology::kAcyclic && !closes_cycle) {
            options.push_back(TemplateEdge{i, j, he.label});
          }
        }
      }
      if (options.empty()) continue;  // retry with a new template
      edges.push_back(options[rng.Index(options.size())]);
    }

    // 3. Build the query: labels from witnesses, literals satisfied by the
    // witness values (numeric bounds with slack; string equalities).
    Query q;
    for (NodeId v : witness) q.AddNode(g.label(v));
    for (const TemplateEdge& e : edges) {
      q.AddEdge(static_cast<QNodeId>(e.src), static_cast<QNodeId>(e.dst),
                e.label);
    }
    for (size_t i = 0; i < witness.size(); ++i) {
      const auto& attrs = g.attrs(witness[i]);
      if (attrs.empty()) continue;
      size_t want = std::min(cfg.literals_per_node, attrs.size());
      std::vector<size_t> picks = rng.SampleDistinct(attrs.size(), want);
      for (size_t k : picks) {
        const AttrEntry& a = attrs[k];
        Literal l;
        l.attr = a.attr;
        if (a.value.is_numeric()) {
          const AttrRange* r = g.RangeOf(a.attr);
          double span = (r != nullptr && r->numeric) ? (r->max - r->min)
                                                     : 100.0;
          double delta = cfg.slack * span * rng.Double();
          if (rng.Chance(0.5)) {
            l.op = CompareOp::kLe;
            l.constant = a.value.is_int()
                             ? Value(static_cast<int64_t>(
                                   a.value.numeric() + delta))
                             : Value(a.value.numeric() + delta);
          } else {
            l.op = CompareOp::kGe;
            l.constant = a.value.is_int()
                             ? Value(static_cast<int64_t>(
                                   a.value.numeric() - delta))
                             : Value(a.value.numeric() - delta);
          }
        } else {
          l.op = CompareOp::kEq;
          l.constant = a.value;
        }
        q.AddLiteral(static_cast<QNodeId>(i), std::move(l));
      }
    }

    // 4. Output node: prefer nodes whose label is shared widely enough to
    // make Why-not questions posable.
    std::vector<QNodeId> order(q.node_count());
    for (QNodeId u = 0; u < q.node_count(); ++u) order[u] = u;
    std::shuffle(order.begin(), order.end(), rng.engine());
    std::sort(order.begin(), order.end(), [&](QNodeId a, QNodeId b) {
      return g.NodesWithLabel(q.node(a).label).size() >
             g.NodesWithLabel(q.node(b).label).size();
    });
    q.SetOutput(order[0]);

    // 5. Accept only when the answer cardinality is in range.
    std::vector<NodeId> answers = matcher.MatchOutput(q);
    if (answers.size() < cfg.min_answers ||
        answers.size() > cfg.max_answers) {
      continue;
    }
    GeneratedQuery out;
    out.query = std::move(q);
    out.witness = std::move(witness);
    out.answers = std::move(answers);
    return out;
  }
  return std::nullopt;
}

}  // namespace whyq
