#ifndef WHYQ_GEN_QUERY_GEN_H_
#define WHYQ_GEN_QUERY_GEN_H_

#include <optional>

#include "common/rng.h"
#include "graph/graph.h"
#include "query/query.h"

namespace whyq {

/// Query topology classes evaluated in the paper (Fig. 6(d)).
enum class QueryTopology {
  kTree,     // spanning tree only
  kAcyclic,  // one extra edge, no directed cycle (undirected cycle allowed)
  kCyclic,   // one extra edge closing a directed cycle when available
};

const char* QueryTopologyName(QueryTopology t);

/// Paper-faithful query generator (Section VI): extracts a connected
/// template from an actual subgraph of G via random expansion, designates
/// an output node, and assigns per-node literals *satisfied by the witness
/// embedding* — guaranteeing Q(u_o, G) is non-empty by construction.
struct QueryGenConfig {
  size_t edges = 4;              // |E_Q|
  size_t literals_per_node = 2;  // L
  QueryTopology topology = QueryTopology::kTree;
  size_t max_attempts = 200;
  double slack = 0.35;        // looseness of numeric bound literals
  size_t min_answers = 2;     // resample until |Q(u_o,G)| >= this
  size_t max_answers = 5000;  // ... and <= this (avoid catch-alls)
};

struct GeneratedQuery {
  Query query;
  std::vector<NodeId> witness;  // data node backing each query node
  std::vector<NodeId> answers;  // Q(u_o, G), precomputed
};

/// Returns std::nullopt when no query meeting the config could be carved
/// out of g within max_attempts.
std::optional<GeneratedQuery> GenerateQuery(const Graph& g,
                                            const QueryGenConfig& cfg,
                                            Rng& rng);

}  // namespace whyq

#endif  // WHYQ_GEN_QUERY_GEN_H_
