#include "gen/question_gen.h"

#include <algorithm>

#include "graph/neighborhood.h"
#include "matcher/matcher.h"
#include "matcher/path_index.h"

namespace whyq {

WhyQuestion GenerateWhyQuestion(const GeneratedQuery& gq, size_t k,
                                Rng& rng) {
  WhyQuestion w;
  const std::vector<NodeId>& answers = gq.answers;
  if (answers.empty()) return w;
  size_t take = std::min(k, answers.size() > 1 ? answers.size() - 1
                                               : answers.size());
  for (size_t i : rng.SampleDistinct(answers.size(), take)) {
    w.unexpected.push_back(answers[i]);
  }
  return w;
}

bool GrowWhyQuestion(const GeneratedQuery& gq, WhyQuestion* w, Rng& rng) {
  NodeSet chosen(w->unexpected, 0);
  std::vector<NodeId> remaining;
  for (NodeId v : gq.answers) {
    if (!chosen.Contains(v)) remaining.push_back(v);
  }
  if (remaining.empty()) return false;
  w->unexpected.push_back(remaining[rng.Index(remaining.size())]);
  return true;
}

namespace {

// Condition C: numeric lower bounds anchored at one chosen entity's own
// values, so that entity satisfies the whole conjunction and C never
// empties V_C.
void AttachCondition(const Graph& g, size_t constraint_literals, Rng& rng,
                     WhyNotQuestion* w) {
  if (constraint_literals == 0 || w->missing.empty()) return;
  size_t start_node = rng.Index(w->missing.size());
  for (size_t n = 0; n < w->missing.size(); ++n) {
    NodeId anchor = w->missing[(start_node + n) % w->missing.size()];
    const auto& attrs = g.attrs(anchor);
    size_t added = 0;
    size_t start = attrs.empty() ? 0 : rng.Index(attrs.size());
    for (size_t off = 0; off < attrs.size() && added < constraint_literals;
         ++off) {
      const AttrEntry& a = attrs[(start + off) % attrs.size()];
      if (!a.value.is_numeric()) continue;
      bool dup = false;
      for (const ConstraintLiteral& l : w->condition.literals) {
        dup |= l.attr == a.attr;
      }
      if (dup) continue;
      ConstraintLiteral cl;
      cl.binary = false;
      cl.attr = a.attr;
      cl.op = CompareOp::kGe;
      cl.constant = a.value;
      w->condition.literals.push_back(std::move(cl));
      ++added;
    }
    if (added > 0) break;  // all literals anchored at this entity
  }
}

}  // namespace

std::optional<WhyNotQuestion> GenerateWhyNotQuestion(
    const Graph& g, const GeneratedQuery& gq, size_t k,
    size_t constraint_literals, Rng& rng) {
  const Query& q = gq.query;
  NodeSet answer_set(gq.answers, g.node_count());

  // Preferred construction: entities that are one-or-two constraints away —
  // answers of Q with a random literal (or literal pair) dropped. This is
  // the situation Why-not questions model (the paper's S8/S9 miss Q only on
  // price / color), and it guarantees the question is answerable by a
  // bounded relaxation. Among candidate literals, prefer the one whose
  // removal floods in the fewest new entities, so guard conditions remain
  // satisfiable.
  {
    std::vector<std::pair<QNodeId, Literal>> literals;
    for (QNodeId u : q.OutputComponent()) {
      for (const Literal& l : q.node(u).literals) literals.emplace_back(u, l);
    }
    Matcher matcher(g);
    std::vector<NodeId> best_pool;
    if (!literals.empty()) {
      // Scan every literal (queries are tiny) and keep the one whose
      // removal floods in the fewest entities — minimal floods keep the
      // guard condition satisfiable for the answering algorithms.
      size_t tries = std::min<size_t>(literals.size(), 8);
      std::vector<size_t> picks =
          rng.SampleDistinct(literals.size(), tries);
      for (size_t pi : picks) {
        Query relaxed = q;
        relaxed.RemoveLiteral(literals[pi].first, literals[pi].second);
        std::vector<NodeId> fresh;
        for (NodeId v : matcher.MatchOutput(relaxed)) {
          if (!answer_set.Contains(v)) fresh.push_back(v);
        }
        if (fresh.empty()) continue;
        if (best_pool.empty() || fresh.size() < best_pool.size()) {
          best_pool = std::move(fresh);
        }
        if (best_pool.size() <= k) break;  // minimal flood, good enough
      }
    }
    if (!best_pool.empty()) {
      WhyNotQuestion w;
      for (size_t i :
           rng.SampleDistinct(best_pool.size(),
                              std::min(k, best_pool.size()))) {
        w.missing.push_back(best_pool[i]);
      }
      AttachCondition(g, constraint_literals, rng, &w);
      return w;
    }
  }

  // Structural near-misses: strip all literals, keep the topology.
  Query structural = q;
  for (QNodeId u = 0; u < structural.node_count(); ++u) {
    structural.mutable_node(u).literals.clear();
  }
  PathIndex pidx(structural, 8);

  constexpr size_t kPoolCap = 200;
  std::vector<NodeId> pool;
  NodeSpan same_label = g.NodesWithLabel(q.node(q.output()).label);
  for (NodeId v : same_label) {
    if (answer_set.Contains(v)) continue;
    if (pidx.Passes(g, structural, v)) {
      pool.push_back(v);
      if (pool.size() >= kPoolCap) break;
    }
  }
  if (pool.empty()) {
    // Fallback: arbitrary same-label non-answers.
    for (NodeId v : same_label) {
      if (answer_set.Contains(v)) continue;
      pool.push_back(v);
      if (pool.size() >= kPoolCap) break;
    }
  }
  if (pool.empty()) return std::nullopt;

  // Rank the pool by how close each entity already is to matching Q (pass
  // fraction under the full query): a Why-not question about entities that
  // miss by one or two constraints is the realistic case — a user notices
  // *near* hits are absent — and keeps the needed relaxations affordable.
  PathIndex full(q, 8);
  std::vector<std::pair<double, NodeId>> ranked;
  ranked.reserve(pool.size());
  for (NodeId v : pool) {
    ranked.emplace_back(-full.PassFraction(g, q, v), v);
  }
  std::stable_sort(ranked.begin(), ranked.end(),
                   [](const auto& a, const auto& b) { return a < b; });
  size_t head = std::min(ranked.size(), std::max<size_t>(k * 3, k));
  WhyNotQuestion w;
  for (size_t i : rng.SampleDistinct(head, std::min(k, head))) {
    w.missing.push_back(ranked[i].second);
  }

  AttachCondition(g, constraint_literals, rng, &w);
  return w;
}

}  // namespace whyq
