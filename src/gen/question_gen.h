#ifndef WHYQ_GEN_QUESTION_GEN_H_
#define WHYQ_GEN_QUESTION_GEN_H_

#include <optional>

#include "common/rng.h"
#include "gen/query_gen.h"
#include "graph/graph.h"
#include "why/question.h"

namespace whyq {

/// Why-question generation (Section VI): V_N is a random subset of the
/// answer set. When the answer has more than one entity, at least one is
/// left desired so the guard condition stays meaningful.
WhyQuestion GenerateWhyQuestion(const GeneratedQuery& gq, size_t k, Rng& rng);

/// Grows an existing Why question by adding one more unexpected answer (the
/// paper's "interactive session" protocol in Fig. 5(d)); returns false when
/// no further answer can be added.
bool GrowWhyQuestion(const GeneratedQuery& gq, WhyQuestion* w, Rng& rng);

/// Why-not question generation: V_C is sampled from *near-miss* entities —
/// nodes carrying the output label, outside the answer, that still pass the
/// structural (literal-free) path tests of Q — mirroring the paper's
/// same-type selection while keeping questions answerable. Falls back to
/// arbitrary same-label nodes, and returns nullopt when none exist.
/// `constraint_literals` (0..2 in the paper) adds a condition C satisfied
/// by at least one chosen entity.
std::optional<WhyNotQuestion> GenerateWhyNotQuestion(
    const Graph& g, const GeneratedQuery& gq, size_t k,
    size_t constraint_literals, Rng& rng);

}  // namespace whyq

#endif  // WHYQ_GEN_QUESTION_GEN_H_
