#include "graph/edge_list.h"

#include <algorithm>
#include <cmath>
#include <fstream>
#include <sstream>
#include <unordered_map>

#include "common/rng.h"

namespace whyq {

std::optional<Graph> ReadEdgeList(std::istream& is,
                                  const EdgeListOptions& options,
                                  std::string* error) {
  GraphBuilder b;
  SymbolId node_label = b.node_labels().Intern(options.node_label);
  SymbolId edge_label = b.edge_labels().Intern(options.edge_label);
  std::unordered_map<uint64_t, NodeId> id_map;
  auto intern_node = [&](uint64_t raw) {
    auto it = id_map.find(raw);
    if (it != id_map.end()) return it->second;
    NodeId v = b.AddNodeById(node_label);
    id_map.emplace(raw, v);
    return v;
  };

  std::string line;
  size_t line_no = 0;
  while (std::getline(is, line)) {
    ++line_no;
    if (line.empty() || line[0] == '#') continue;
    std::istringstream ls(line);
    uint64_t src = 0;
    uint64_t dst = 0;
    if (!(ls >> src >> dst)) {
      if (error) {
        *error = "line " + std::to_string(line_no) + ": expected 'src dst'";
      }
      return std::nullopt;
    }
    // Intern into locals first: both calls mutate the builder, and C++
    // argument evaluation order is unspecified.
    NodeId from = intern_node(src);
    NodeId to = intern_node(dst);
    if (options.drop_self_loops && src == dst) continue;  // node still added
    b.AddEdgeById(from, to, edge_label);
  }
  return b.Build();
}

std::optional<Graph> ReadEdgeListFromFile(const std::string& path,
                                          const EdgeListOptions& options,
                                          std::string* error) {
  std::ifstream is(path);
  if (!is) {
    if (error) *error = "cannot open " + path;
    return std::nullopt;
  }
  return ReadEdgeList(is, options, error);
}

Graph DecorateGraph(const Graph& g, const DecorationConfig& config) {
  Rng rng(config.seed);
  GraphBuilder b;
  // Preserve labels (same names, same order of first use).
  for (NodeId v = 0; v < g.node_count(); ++v) {
    NodeId nv = b.AddNode(g.NodeLabelName(g.label(v)));
    (void)nv;
    // Keep any existing attributes.
    for (const AttrEntry& e : g.attrs(v)) {
      b.SetAttr(v, g.AttrName(e.attr), e.value);
    }
    // Synthesize new ones (coarse leveled domains; see dataset profiles).
    size_t n_attrs = std::max<size_t>(
        1, static_cast<size_t>(
               std::lround(config.avg_attrs * (0.6 + 0.8 * rng.Double()))));
    n_attrs = std::min(n_attrs, config.attr_pool);
    for (size_t k = 0; k < n_attrs; ++k) {
      size_t slot = rng.Index(config.attr_pool);
      std::string name = "a" + std::to_string(slot);
      if (rng.Double() < config.numeric_frac) {
        int64_t levels = 4 + static_cast<int64_t>(slot % 13);
        int64_t step = 1 + static_cast<int64_t>(slot % 7) * 10;
        b.SetAttr(v, name, Value(rng.Uniform(0, levels) * step));
      } else {
        b.SetAttr(v, name,
                  Value("v" + std::to_string(slot) + "_" +
                        std::to_string(rng.Zipf(20, 1.2))));
      }
    }
  }
  for (NodeId v = 0; v < g.node_count(); ++v) {
    for (const HalfEdge& e : g.out_edges(v)) {
      b.AddEdge(v, e.other, g.EdgeLabelName(e.label));
    }
  }
  return b.Build();
}

}  // namespace whyq
