#ifndef WHYQ_GRAPH_EDGE_LIST_H_
#define WHYQ_GRAPH_EDGE_LIST_H_

#include <cstdint>
#include <iosfwd>
#include <optional>
#include <string>

#include "graph/graph.h"

namespace whyq {

/// Importing real-world graph topologies.
///
/// SNAP-style edge lists ("src dst" per line, '#' comments) cover most
/// public network datasets, including the actual Pokec graph the paper
/// evaluates on. Imported nodes carry one label and no attributes;
/// DecorateGraph then attaches synthetic attribute tuples so the imported
/// topology becomes a *multi-attributed* graph the Why-machinery can work
/// on (real topology + synthetic attributes — the closest executable
/// equivalent when the original attribute tables are unavailable).

struct EdgeListOptions {
  std::string node_label = "Node";
  std::string edge_label = "edge";
  // Ignore self loops (common in crawl data).
  bool drop_self_loops = true;
};

/// Parses an edge list; arbitrary non-negative integer ids are remapped to
/// dense NodeIds in first-appearance order. Returns std::nullopt with a
/// line-numbered message on malformed input.
std::optional<Graph> ReadEdgeList(std::istream& is,
                                  const EdgeListOptions& options,
                                  std::string* error);
std::optional<Graph> ReadEdgeListFromFile(const std::string& path,
                                          const EdgeListOptions& options,
                                          std::string* error);

/// Attribute-synthesis configuration (mirrors the dataset profiles: small
/// per-attribute level counts keep values shared across entities).
struct DecorationConfig {
  size_t attr_pool = 30;     // distinct attribute names ("a0".."aN")
  double avg_attrs = 6.0;    // attributes per node
  double numeric_frac = 0.7; // remainder are categorical strings
  uint64_t seed = 7;
};

/// Rebuilds `g` with synthesized attribute tuples attached to every node
/// (labels, edges and node order are preserved verbatim).
Graph DecorateGraph(const Graph& g, const DecorationConfig& config);

}  // namespace whyq

#endif  // WHYQ_GRAPH_EDGE_LIST_H_
