#include "graph/graph.h"

#include <algorithm>
#include <atomic>

#include "common/check.h"

namespace whyq {

namespace graph_internal {

bool HalfEdgeLess(const HalfEdge& a, const HalfEdge& b) {
  return a.other != b.other ? a.other < b.other : a.label < b.label;
}

void FoldAttrRange(std::vector<AttrRange>& ranges, SymbolId attr,
                   const Value& value) {
  if (static_cast<size_t>(attr) >= ranges.size()) {
    ranges.resize(attr + 1);
  }
  AttrRange& r = ranges[attr];
  if (value.is_numeric()) {
    double x = value.numeric();
    if (r.count == 0 || !r.numeric) {
      if (r.count == 0) {
        r.min = r.max = x;
        r.numeric = 1;
      }
      // A previously-string attribute stays non-numeric.
    } else {
      r.min = std::min(r.min, x);
      r.max = std::max(r.max, x);
    }
  } else {
    r.numeric = 0;
  }
  ++r.count;
}

void PartitionAdjacency(const HalfEdge* adj, size_t count,
                        std::vector<HalfEdge>& scratch,
                        std::vector<NodeId>& nbrs,
                        std::vector<Graph::LabelSlice>& slices) {
  scratch.assign(adj, adj + count);
  std::stable_sort(scratch.begin(), scratch.end(),
                   [](const HalfEdge& a, const HalfEdge& b) {
                     return a.label < b.label;
                   });
  for (size_t i = 0; i < scratch.size();) {
    Graph::LabelSlice s;
    s.label = scratch[i].label;
    s.begin = nbrs.size();
    for (; i < scratch.size() && scratch[i].label == s.label; ++i) {
      nbrs.push_back(scratch[i].other);
    }
    s.end = nbrs.size();
    slices.push_back(s);
  }
}

uint64_t NextGraphIdentity() {
  static std::atomic<uint64_t> counter{0};
  return ++counter;
}

}  // namespace graph_internal

namespace {

using graph_internal::HalfEdgeLess;

}  // namespace

const Value* Graph::GetAttr(NodeId v, SymbolId attr) const {
  AttrSpan tuple = attrs(v);
  auto it = std::lower_bound(
      tuple.begin(), tuple.end(), attr,
      [](const AttrEntry& e, SymbolId a) { return e.attr < a; });
  if (it == tuple.end() || it->attr != attr) return nullptr;
  return &it->value;
}

bool Graph::HasEdge(NodeId u, NodeId v, SymbolId label) const {
  EdgeSpan adj = out_edges(u);
  HalfEdge probe{v, label};
  return std::binary_search(adj.begin(), adj.end(), probe, HalfEdgeLess);
}

NodeSpan Graph::NodesWithLabel(SymbolId label) const {
  if (static_cast<size_t>(label) + 1 >= bucket_range_.size()) {
    return NodeSpan{};
  }
  uint64_t b = bucket_range_[label];
  return NodeSpan{bucket_nodes_.data() + b, bucket_range_[label + 1] - b};
}

const AttrRange* Graph::RangeOf(SymbolId attr) const {
  if (static_cast<size_t>(attr) >= attr_ranges_.size()) return nullptr;
  const AttrRange& r = attr_ranges_[attr];
  return r.count == 0 ? nullptr : &r;
}

std::string Graph::NodeLabelName(SymbolId id) const {
  if (id < node_labels_.size()) return node_labels_.NameOf(id);
  return "#" + std::to_string(id);
}

std::string Graph::EdgeLabelName(SymbolId id) const {
  if (id < edge_labels_.size()) return edge_labels_.NameOf(id);
  return "#" + std::to_string(id);
}

std::string Graph::AttrName(SymbolId id) const {
  if (id < attr_names_.size()) return attr_names_.NameOf(id);
  return "#" + std::to_string(id);
}

NodeId GraphBuilder::AddNode(std::string_view label) {
  return AddNodeById(node_labels_.Intern(label));
}

NodeId GraphBuilder::AddNodeById(SymbolId label) {
  NodeId id = static_cast<NodeId>(labels_.size());
  labels_.push_back(label);
  attrs_.emplace_back();
  out_.emplace_back();
  in_.emplace_back();
  return id;
}

void GraphBuilder::SetAttr(NodeId v, std::string_view name, Value value) {
  SetAttrById(v, attr_names_.Intern(name), std::move(value));
}

void GraphBuilder::SetAttrById(NodeId v, SymbolId attr, Value value) {
  WHYQ_CHECK(v < attrs_.size());
  for (AttrEntry& e : attrs_[v]) {
    if (e.attr == attr) {
      e.value = std::move(value);
      return;
    }
  }
  attrs_[v].push_back(AttrEntry{attr, std::move(value)});
}

void GraphBuilder::AddEdge(NodeId u, NodeId v, std::string_view label) {
  AddEdgeById(u, v, edge_labels_.Intern(label));
}

void GraphBuilder::AddEdgeById(NodeId u, NodeId v, SymbolId label) {
  WHYQ_CHECK(u < out_.size() && v < out_.size());
  out_[u].push_back(HalfEdge{v, label});
  in_[v].push_back(HalfEdge{u, label});
}

Graph GraphBuilder::Build() {
  size_t n = labels_.size();
  Graph g;
  size_t edges = 0;

  // Flattened columns, assembled node by node then frozen into the Graph.
  std::vector<AttrEntry> attr_pool;
  std::vector<uint64_t> attr_range(1, 0);
  std::vector<HalfEdge> out_pool;
  std::vector<HalfEdge> in_pool;
  std::vector<uint64_t> out_range(1, 0);
  std::vector<uint64_t> in_range(1, 0);
  std::vector<NodeId> out_nbrs;
  std::vector<NodeId> in_nbrs;
  std::vector<Graph::LabelSlice> out_slices;
  std::vector<Graph::LabelSlice> in_slices;
  std::vector<uint64_t> out_slice_range(1, 0);
  std::vector<uint64_t> in_slice_range(1, 0);

  size_t label_space = node_labels_.size();
  for (SymbolId l : labels_) {
    label_space = std::max(label_space, static_cast<size_t>(l) + 1);
  }
  std::vector<uint64_t> bucket_count(label_space, 0);
  std::vector<AttrRange> attr_ranges;

  // Label-partitioned mirrors of the adjacency, appended node by node. A
  // stable sort by label over the (other, label)-sorted lists keeps each
  // label's run in ascending-NodeId order, so a label slice enumerates the
  // same neighbors in the same order as a filtered full-adjacency scan.
  // The partition step is shared with the incremental updater, which must
  // reproduce this exact layout (src/graph/update.cc).
  std::vector<HalfEdge> by_label;
  auto partition = [&by_label](const std::vector<HalfEdge>& adj,
                               std::vector<NodeId>& nbrs,
                               std::vector<Graph::LabelSlice>& slices,
                               std::vector<uint64_t>& range) {
    graph_internal::PartitionAdjacency(adj.data(), adj.size(), by_label, nbrs,
                                       slices);
    range.push_back(slices.size());
  };

  for (size_t v = 0; v < n; ++v) {
    auto dedupe = [](std::vector<HalfEdge>& adj) {
      std::sort(adj.begin(), adj.end(), HalfEdgeLess);
      adj.erase(std::unique(adj.begin(), adj.end()), adj.end());
    };
    dedupe(out_[v]);
    dedupe(in_[v]);
    edges += out_[v].size();
    out_pool.insert(out_pool.end(), out_[v].begin(), out_[v].end());
    in_pool.insert(in_pool.end(), in_[v].begin(), in_[v].end());
    out_range.push_back(out_pool.size());
    in_range.push_back(in_pool.size());
    partition(out_[v], out_nbrs, out_slices, out_slice_range);
    partition(in_[v], in_nbrs, in_slices, in_slice_range);

    std::vector<AttrEntry>& tuple = attrs_[v];
    std::sort(tuple.begin(), tuple.end(),
              [](const AttrEntry& a, const AttrEntry& b) {
                return a.attr < b.attr;
              });

    ++bucket_count[labels_[v]];

    for (const AttrEntry& e : tuple) {
      graph_internal::FoldAttrRange(attr_ranges, e.attr, e.value);
    }

    for (AttrEntry& e : tuple) attr_pool.push_back(std::move(e));
    attr_range.push_back(attr_pool.size());
  }

  // Dense label buckets via counting sort: node ids are appended in
  // ascending order, so every bucket stays ascending.
  std::vector<uint64_t> bucket_range(label_space + 1, 0);
  for (size_t l = 0; l < label_space; ++l) {
    bucket_range[l + 1] = bucket_range[l] + bucket_count[l];
  }
  std::vector<NodeId> bucket_nodes(n);
  std::vector<uint64_t> cursor(bucket_range.begin(), bucket_range.end() - 1);
  for (size_t v = 0; v < n; ++v) {
    bucket_nodes[cursor[labels_[v]]++] = static_cast<NodeId>(v);
  }

  g.node_label_.Own(std::move(labels_));
  attr_pool.shrink_to_fit();
  g.attr_pool_ =
      std::make_shared<const std::vector<AttrEntry>>(std::move(attr_pool));
  g.attr_range_.Own(std::move(attr_range));
  g.out_pool_.Own(std::move(out_pool));
  g.in_pool_.Own(std::move(in_pool));
  g.out_range_.Own(std::move(out_range));
  g.in_range_.Own(std::move(in_range));
  g.out_nbrs_.Own(std::move(out_nbrs));
  g.in_nbrs_.Own(std::move(in_nbrs));
  g.out_slices_.Own(std::move(out_slices));
  g.in_slices_.Own(std::move(in_slices));
  g.out_slice_range_.Own(std::move(out_slice_range));
  g.in_slice_range_.Own(std::move(in_slice_range));
  g.bucket_nodes_.Own(std::move(bucket_nodes));
  g.bucket_range_.Own(std::move(bucket_range));
  g.attr_ranges_.Own(std::move(attr_ranges));
  g.edge_count_ = edges;
  g.node_labels_ = std::move(node_labels_);
  g.edge_labels_ = std::move(edge_labels_);
  g.attr_names_ = std::move(attr_names_);
  g.identity_ = graph_internal::NextGraphIdentity();

  labels_ = std::vector<SymbolId>();
  attrs_.clear();
  out_.clear();
  in_.clear();
  node_labels_ = Dictionary();
  edge_labels_ = Dictionary();
  attr_names_ = Dictionary();
  return g;
}

}  // namespace whyq
