#include "graph/graph.h"

#include <algorithm>

#include "common/check.h"

namespace whyq {

namespace {

bool HalfEdgeLess(const HalfEdge& a, const HalfEdge& b) {
  return a.other != b.other ? a.other < b.other : a.label < b.label;
}

const std::vector<NodeId> kEmptyNodeList;

}  // namespace

const Value* Graph::GetAttr(NodeId v, SymbolId attr) const {
  const std::vector<AttrEntry>& tuple = attrs_[v];
  auto it = std::lower_bound(
      tuple.begin(), tuple.end(), attr,
      [](const AttrEntry& e, SymbolId a) { return e.attr < a; });
  if (it == tuple.end() || it->attr != attr) return nullptr;
  return &it->value;
}

bool Graph::HasEdge(NodeId u, NodeId v, SymbolId label) const {
  const std::vector<HalfEdge>& adj = out_[u];
  HalfEdge probe{v, label};
  return std::binary_search(adj.begin(), adj.end(), probe, HalfEdgeLess);
}

NodeSpan Graph::LabeledSlice(const std::vector<NodeId>& nbrs,
                             const std::vector<LabelSlice>& slices,
                             const std::vector<size_t>& range, NodeId v,
                             SymbolId label) {
  auto begin = slices.begin() + static_cast<long>(range[v]);
  auto end = slices.begin() + static_cast<long>(range[v + 1]);
  auto it = std::lower_bound(
      begin, end, label,
      [](const LabelSlice& s, SymbolId l) { return s.label < l; });
  if (it == end || it->label != label) return NodeSpan{};
  return NodeSpan{nbrs.data() + it->begin, it->end - it->begin};
}

NodeSpan Graph::LabeledOutNeighbors(NodeId v, SymbolId label) const {
  return LabeledSlice(out_nbrs_, out_slices_, out_slice_range_, v, label);
}

NodeSpan Graph::LabeledInNeighbors(NodeId v, SymbolId label) const {
  return LabeledSlice(in_nbrs_, in_slices_, in_slice_range_, v, label);
}

const std::vector<NodeId>& Graph::NodesWithLabel(SymbolId label) const {
  auto it = nodes_by_label_.find(label);
  if (it == nodes_by_label_.end()) return kEmptyNodeList;
  return it->second;
}

const AttrRange* Graph::RangeOf(SymbolId attr) const {
  auto it = attr_ranges_.find(attr);
  if (it == attr_ranges_.end()) return nullptr;
  return &it->second;
}

std::string Graph::NodeLabelName(SymbolId id) const {
  if (id < node_labels_.size()) return node_labels_.NameOf(id);
  return "#" + std::to_string(id);
}

std::string Graph::EdgeLabelName(SymbolId id) const {
  if (id < edge_labels_.size()) return edge_labels_.NameOf(id);
  return "#" + std::to_string(id);
}

std::string Graph::AttrName(SymbolId id) const {
  if (id < attr_names_.size()) return attr_names_.NameOf(id);
  return "#" + std::to_string(id);
}

NodeId GraphBuilder::AddNode(std::string_view label) {
  return AddNodeById(g_.node_labels_.Intern(label));
}

NodeId GraphBuilder::AddNodeById(SymbolId label) {
  NodeId id = static_cast<NodeId>(g_.node_label_.size());
  g_.node_label_.push_back(label);
  g_.attrs_.emplace_back();
  g_.out_.emplace_back();
  g_.in_.emplace_back();
  return id;
}

void GraphBuilder::SetAttr(NodeId v, std::string_view name, Value value) {
  SetAttrById(v, g_.attr_names_.Intern(name), std::move(value));
}

void GraphBuilder::SetAttrById(NodeId v, SymbolId attr, Value value) {
  WHYQ_CHECK(v < g_.attrs_.size());
  for (AttrEntry& e : g_.attrs_[v]) {
    if (e.attr == attr) {
      e.value = std::move(value);
      return;
    }
  }
  g_.attrs_[v].push_back(AttrEntry{attr, std::move(value)});
}

void GraphBuilder::AddEdge(NodeId u, NodeId v, std::string_view label) {
  AddEdgeById(u, v, g_.edge_labels_.Intern(label));
}

void GraphBuilder::AddEdgeById(NodeId u, NodeId v, SymbolId label) {
  WHYQ_CHECK(u < g_.out_.size() && v < g_.out_.size());
  g_.out_[u].push_back(HalfEdge{v, label});
  g_.in_[v].push_back(HalfEdge{u, label});
}

Graph GraphBuilder::Build() {
  size_t n = g_.node_label_.size();
  size_t edges = 0;
  // Label-partitioned mirrors of the adjacency, appended node by node. A
  // stable sort by label over the (other, label)-sorted lists keeps each
  // label's run in ascending-NodeId order, so a label slice enumerates the
  // same neighbors in the same order as a filtered full-adjacency scan.
  std::vector<HalfEdge> by_label;
  auto partition = [&by_label](const std::vector<HalfEdge>& adj,
                               std::vector<NodeId>& nbrs,
                               std::vector<Graph::LabelSlice>& slices,
                               std::vector<size_t>& range) {
    by_label.assign(adj.begin(), adj.end());
    std::stable_sort(by_label.begin(), by_label.end(),
                     [](const HalfEdge& a, const HalfEdge& b) {
                       return a.label < b.label;
                     });
    for (size_t i = 0; i < by_label.size();) {
      Graph::LabelSlice s;
      s.label = by_label[i].label;
      s.begin = nbrs.size();
      for (; i < by_label.size() && by_label[i].label == s.label; ++i) {
        nbrs.push_back(by_label[i].other);
      }
      s.end = nbrs.size();
      slices.push_back(s);
    }
    range.push_back(slices.size());
  };
  g_.out_slice_range_.assign(1, 0);
  g_.in_slice_range_.assign(1, 0);
  for (size_t v = 0; v < n; ++v) {
    auto dedupe = [](std::vector<HalfEdge>& adj) {
      std::sort(adj.begin(), adj.end(), HalfEdgeLess);
      adj.erase(std::unique(adj.begin(), adj.end()), adj.end());
      adj.shrink_to_fit();
    };
    dedupe(g_.out_[v]);
    dedupe(g_.in_[v]);
    edges += g_.out_[v].size();
    partition(g_.out_[v], g_.out_nbrs_, g_.out_slices_, g_.out_slice_range_);
    partition(g_.in_[v], g_.in_nbrs_, g_.in_slices_, g_.in_slice_range_);

    std::vector<AttrEntry>& tuple = g_.attrs_[v];
    std::sort(tuple.begin(), tuple.end(),
              [](const AttrEntry& a, const AttrEntry& b) {
                return a.attr < b.attr;
              });
    tuple.shrink_to_fit();

    g_.nodes_by_label_[g_.node_label_[v]].push_back(static_cast<NodeId>(v));

    for (const AttrEntry& e : tuple) {
      AttrRange& r = g_.attr_ranges_[e.attr];
      if (e.value.is_numeric()) {
        double x = e.value.numeric();
        if (r.count == 0 || !r.numeric) {
          if (r.count == 0) {
            r.min = r.max = x;
            r.numeric = true;
          }
          // A previously-string attribute stays non-numeric.
        } else {
          r.min = std::min(r.min, x);
          r.max = std::max(r.max, x);
        }
      } else {
        r.numeric = false;
      }
      ++r.count;
    }
  }
  g_.edge_count_ = edges;
  Graph out = std::move(g_);
  g_ = Graph();
  return out;
}

}  // namespace whyq
