#ifndef WHYQ_GRAPH_GRAPH_H_
#define WHYQ_GRAPH_GRAPH_H_

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "common/dictionary.h"
#include "common/value.h"

namespace whyq {

/// Dense node identifier within one Graph.
using NodeId = uint32_t;

inline constexpr NodeId kInvalidNode = UINT32_MAX;

/// One (attribute, value) entry of a node's attribute tuple F_A(v).
struct AttrEntry {
  SymbolId attr = kInvalidSymbol;
  Value value;
};

/// One directed adjacency entry: the far endpoint plus the edge label.
struct HalfEdge {
  NodeId other = kInvalidNode;
  SymbolId label = kInvalidSymbol;

  bool operator==(const HalfEdge& rhs) const {
    return other == rhs.other && label == rhs.label;
  }
};

/// A borrowed contiguous run of node ids (e.g. one label's slice of a
/// node's adjacency). Valid as long as the owning Graph lives.
struct NodeSpan {
  const NodeId* data = nullptr;
  size_t size = 0;

  const NodeId* begin() const { return data; }
  const NodeId* end() const { return data + size; }
  bool empty() const { return size == 0; }
};

/// Numeric span of an attribute's active domain D(A) over the whole graph;
/// range(D(A)) = max - min feeds the weighted edit-cost model.
struct AttrRange {
  double min = 0.0;
  double max = 0.0;
  bool numeric = false;  // false when A carries string values (range unused)
  size_t count = 0;      // number of nodes carrying A
};

/// A directed multi-attributed graph G = (V, E, L, F_A): labeled nodes and
/// edges, each node carrying a tuple of typed attribute values (Section II).
///
/// Construction goes through GraphBuilder; a built Graph is immutable, with
/// sorted adjacency (O(log d) labeled-edge probes), a label->nodes index and
/// per-attribute numeric ranges.
///
/// Thread-safety: immutable after construction, shared across workers. All
/// read accessors are const with no hidden mutable or lazily-built state
/// (the label index and attribute ranges are finalized in Build()), so any
/// number of threads may query one Graph concurrently with no locking —
/// the invariant the service's shared-graph architecture rests on.
class Graph {
 public:
  Graph() = default;

  Graph(const Graph&) = delete;
  Graph& operator=(const Graph&) = delete;
  Graph(Graph&&) = default;
  Graph& operator=(Graph&&) = default;

  size_t node_count() const { return node_label_.size(); }
  size_t edge_count() const { return edge_count_; }

  SymbolId label(NodeId v) const { return node_label_[v]; }

  /// The attribute tuple F_A(v), sorted by attribute id.
  const std::vector<AttrEntry>& attrs(NodeId v) const { return attrs_[v]; }

  /// Value of v.A, or nullptr when v does not carry attribute A.
  const Value* GetAttr(NodeId v, SymbolId attr) const;

  const std::vector<HalfEdge>& out_edges(NodeId v) const { return out_[v]; }
  const std::vector<HalfEdge>& in_edges(NodeId v) const { return in_[v]; }

  /// True iff edge (u -> v) with label `label` exists.
  bool HasEdge(NodeId u, NodeId v, SymbolId label) const;

  /// Label-partitioned adjacency (CSR-style, finalized in Build()): the out-
  /// (resp. in-) neighbors of v reachable through edges labeled `label`, in
  /// ascending NodeId order — the same neighbors, in the same order, that a
  /// full out_edges(v)/in_edges(v) scan filtered on `label` would yield.
  /// O(log k) in the number of distinct labels on v's adjacency; empty span
  /// for labels absent there. Lets the matcher's Extend() touch exactly the
  /// anchor-label slice instead of skipping over every other label.
  NodeSpan LabeledOutNeighbors(NodeId v, SymbolId label) const;
  NodeSpan LabeledInNeighbors(NodeId v, SymbolId label) const;

  /// All nodes with label `label` (empty vector for unused labels).
  const std::vector<NodeId>& NodesWithLabel(SymbolId label) const;

  /// Graph-wide numeric range of attribute A; nullptr if A never appears.
  const AttrRange* RangeOf(SymbolId attr) const;

  /// Symbol tables. Node labels, edge labels and attribute names live in
  /// separate id spaces.
  const Dictionary& node_labels() const { return node_labels_; }
  const Dictionary& edge_labels() const { return edge_labels_; }
  const Dictionary& attr_names() const { return attr_names_; }

  /// Display helpers (fall back to the raw id when a symbol is stale).
  std::string NodeLabelName(SymbolId id) const;
  std::string EdgeLabelName(SymbolId id) const;
  std::string AttrName(SymbolId id) const;

 private:
  friend class GraphBuilder;

  // One label's run inside a node's slice of the partitioned neighbor
  // array; per-node runs are sorted by label (binary-searched on lookup).
  struct LabelSlice {
    SymbolId label = kInvalidSymbol;
    size_t begin = 0;
    size_t end = 0;
  };

  // Shared lookup for LabeledOutNeighbors / LabeledInNeighbors.
  static NodeSpan LabeledSlice(const std::vector<NodeId>& nbrs,
                               const std::vector<LabelSlice>& slices,
                               const std::vector<size_t>& range, NodeId v,
                               SymbolId label);

  std::vector<SymbolId> node_label_;
  std::vector<std::vector<AttrEntry>> attrs_;
  std::vector<std::vector<HalfEdge>> out_;
  std::vector<std::vector<HalfEdge>> in_;
  size_t edge_count_ = 0;

  // Label-partitioned adjacency: per direction, all neighbors concatenated
  // grouped by (node, label) with ascending ids within a group; `*_slices_`
  // holds each node's label runs and `*_slice_range_` (n + 1 entries) each
  // node's run window. Built in Build(); adds ~4 bytes per half-edge.
  std::vector<NodeId> out_nbrs_;
  std::vector<NodeId> in_nbrs_;
  std::vector<LabelSlice> out_slices_;
  std::vector<LabelSlice> in_slices_;
  std::vector<size_t> out_slice_range_;
  std::vector<size_t> in_slice_range_;

  std::unordered_map<SymbolId, std::vector<NodeId>> nodes_by_label_;
  std::unordered_map<SymbolId, AttrRange> attr_ranges_;

  Dictionary node_labels_;
  Dictionary edge_labels_;
  Dictionary attr_names_;
};

/// Incrementally assembles a Graph. Duplicate edges (same endpoints + label)
/// are collapsed; attribute tuples are sorted and de-duplicated by attribute
/// (last write wins).
class GraphBuilder {
 public:
  GraphBuilder() = default;

  /// Adds a node with the given label name; returns its id.
  NodeId AddNode(std::string_view label);

  /// Sets (or overwrites) attribute `name` of node v.
  void SetAttr(NodeId v, std::string_view name, Value value);

  /// Adds directed edge u -> v with the given label name.
  void AddEdge(NodeId u, NodeId v, std::string_view label);

  /// Id-based variants for callers that pre-intern symbols.
  NodeId AddNodeById(SymbolId label);
  void SetAttrById(NodeId v, SymbolId attr, Value value);
  void AddEdgeById(NodeId u, NodeId v, SymbolId label);

  Dictionary& node_labels() { return g_.node_labels_; }
  Dictionary& edge_labels() { return g_.edge_labels_; }
  Dictionary& attr_names() { return g_.attr_names_; }

  size_t node_count() const { return g_.node_label_.size(); }

  /// Finalizes: sorts adjacency, drops duplicate edges, builds the label
  /// index and attribute ranges. The builder is left empty.
  Graph Build();

 private:
  Graph g_;
};

}  // namespace whyq

#endif  // WHYQ_GRAPH_GRAPH_H_
