#ifndef WHYQ_GRAPH_GRAPH_H_
#define WHYQ_GRAPH_GRAPH_H_

#include <algorithm>
#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "common/dictionary.h"
#include "common/value.h"

namespace whyq {

/// Dense node identifier within one Graph.
using NodeId = uint32_t;

inline constexpr NodeId kInvalidNode = UINT32_MAX;

/// One (attribute, value) entry of a node's attribute tuple F_A(v).
struct AttrEntry {
  SymbolId attr = kInvalidSymbol;
  Value value;
};

/// One directed adjacency entry: the far endpoint plus the edge label.
/// Fixed 8-byte layout with no padding — rows are stored verbatim in the
/// frozen snapshot image (docs/SNAPSHOT_FORMAT.md).
struct HalfEdge {
  NodeId other = kInvalidNode;
  SymbolId label = kInvalidSymbol;

  bool operator==(const HalfEdge& rhs) const {
    return other == rhs.other && label == rhs.label;
  }
};

/// A borrowed contiguous view over Graph-owned storage. Cheap to copy;
/// valid as long as the owning Graph (and, for snapshot-backed graphs, its
/// mapped image) lives — never store one as a long-lived member outside
/// src/graph/ (whyq-lint rule nodespan-member).
template <typename T>
struct ConstSpan {
  const T* ptr = nullptr;
  size_t count = 0;

  ConstSpan() = default;
  ConstSpan(const T* p, size_t n) : ptr(p), count(n) {}

  const T* data() const { return ptr; }
  const T* begin() const { return ptr; }
  const T* end() const { return ptr + count; }
  size_t size() const { return count; }
  bool empty() const { return count == 0; }
  const T& operator[](size_t i) const { return ptr[i]; }
};

/// A borrowed contiguous run of node ids (e.g. one label's slice of a
/// node's adjacency, or a whole label bucket).
using NodeSpan = ConstSpan<NodeId>;
/// A borrowed run of adjacency entries (one node's full out/in list).
using EdgeSpan = ConstSpan<HalfEdge>;
/// A borrowed run of attribute entries (one node's tuple F_A(v)).
using AttrSpan = ConstSpan<AttrEntry>;

/// Numeric span of an attribute's active domain D(A) over the whole graph;
/// range(D(A)) = max - min feeds the weighted edit-cost model. Fixed
/// 32-byte padding-free layout (rows are snapshot sections).
struct AttrRange {
  double min = 0.0;
  double max = 0.0;
  uint64_t numeric = 0;  // nonzero unless A carries string values
  uint64_t count = 0;    // number of nodes carrying A
};

/// One frozen column of trivially-copyable rows. Either owns heap storage
/// (graphs assembled by GraphBuilder), shares another column's heap storage
/// (copy-on-write update epochs, src/graph/update.cc), or borrows a
/// read-only region that must outlive the Graph (snapshot-backed graphs,
/// where the rows live in the mmap'ed image — see docs/SNAPSHOT_FORMAT.md).
template <typename T>
class Column {
 public:
  Column() = default;

  void Own(std::vector<T>&& rows) {
    rows.shrink_to_fit();
    owned_ = std::make_shared<const std::vector<T>>(std::move(rows));
    ptr_ = owned_->data();
    count_ = owned_->size();
  }
  void Borrow(const T* rows, size_t count) {
    owned_.reset();
    ptr_ = rows;
    count_ = count;
  }
  /// Aliases `other`'s rows, sharing ownership of its heap storage: the
  /// backbone of copy-on-write update epochs — every column an update batch
  /// does not touch is shared, not copied, and the storage lives until the
  /// last sharing epoch dies. Sharing from a Borrow()ed column propagates
  /// the borrow (same external region, same lifetime requirement).
  void ShareFrom(const Column& other) {
    owned_ = other.owned_;
    ptr_ = other.ptr_;
    count_ = other.count_;
  }

  const T* data() const { return ptr_; }
  const T* begin() const { return ptr_; }
  const T* end() const { return ptr_ + count_; }
  size_t size() const { return count_; }
  bool empty() const { return count_ == 0; }
  const T& operator[](size_t i) const { return ptr_[i]; }
  ConstSpan<T> span() const { return ConstSpan<T>(ptr_, count_); }
  bool borrowed() const { return ptr_ != nullptr && owned_ == nullptr; }

 private:
  std::shared_ptr<const std::vector<T>> owned_;
  const T* ptr_ = nullptr;
  size_t count_ = 0;
};

struct UpdateBatch;
struct UpdateResult;

/// A directed multi-attributed graph G = (V, E, L, F_A): labeled nodes and
/// edges, each node carrying a tuple of typed attribute values (Section II).
///
/// Construction goes through GraphBuilder; a built Graph is immutable, with
/// sorted adjacency (O(log d) labeled-edge probes), a label->nodes index and
/// per-attribute numeric ranges. All index structures are flat CSR-style
/// columns (payload array + offset array), so a built graph can be frozen
/// verbatim into the snapshot image and later re-opened by borrowing the
/// mapped bytes instead of rebuilding (src/graph/snapshot.h).
///
/// Thread-safety: immutable after construction, shared across workers. All
/// read accessors are const with no hidden mutable or lazily-built state
/// (the label index and attribute ranges are finalized in Build()), so any
/// number of threads may query one Graph concurrently with no locking —
/// the invariant the service's shared-graph architecture rests on. Updates
/// never mutate in place: ApplyUpdate() produces a NEW Graph value (the next
/// epoch) that shares untouched columns copy-on-write, so readers pinned on
/// the old epoch keep a fully consistent view (docs/ARCHITECTURE.md
/// "Mutable graphs & epochs").
class Graph {
 public:
  Graph() = default;

  Graph(const Graph&) = delete;
  Graph& operator=(const Graph&) = delete;
  Graph(Graph&&) = default;
  Graph& operator=(Graph&&) = default;

  size_t node_count() const { return node_label_.size(); }
  size_t edge_count() const { return edge_count_; }

  SymbolId label(NodeId v) const { return node_label_[v]; }

  /// The attribute tuple F_A(v), sorted by attribute id.
  AttrSpan attrs(NodeId v) const {
    uint64_t b = attr_range_[v];
    return AttrSpan(attr_pool_->data() + b, attr_range_[v + 1] - b);
  }

  /// Value of v.A, or nullptr when v does not carry attribute A.
  const Value* GetAttr(NodeId v, SymbolId attr) const;

  EdgeSpan out_edges(NodeId v) const {
    uint64_t b = out_range_[v];
    return EdgeSpan(out_pool_.data() + b, out_range_[v + 1] - b);
  }
  EdgeSpan in_edges(NodeId v) const {
    uint64_t b = in_range_[v];
    return EdgeSpan(in_pool_.data() + b, in_range_[v + 1] - b);
  }

  /// True iff edge (u -> v) with label `label` exists.
  bool HasEdge(NodeId u, NodeId v, SymbolId label) const;

  /// Label-partitioned adjacency (CSR-style, finalized in Build()): the out-
  /// (resp. in-) neighbors of v reachable through edges labeled `label`, in
  /// ascending NodeId order — the same neighbors, in the same order, that a
  /// full out_edges(v)/in_edges(v) scan filtered on `label` would yield.
  /// O(log k) in the number of distinct labels on v's adjacency; empty span
  /// for labels absent there. Lets the matcher's Extend() touch exactly the
  /// anchor-label slice instead of skipping over every other label.
  NodeSpan LabeledOutNeighbors(NodeId v, SymbolId label) const {
    return LabeledSlice(out_nbrs_, out_slices_, out_slice_range_, v, label);
  }
  NodeSpan LabeledInNeighbors(NodeId v, SymbolId label) const {
    return LabeledSlice(in_nbrs_, in_slices_, in_slice_range_, v, label);
  }

  /// All nodes with label `label`, ascending (empty for unused labels).
  NodeSpan NodesWithLabel(SymbolId label) const;

  /// Graph-wide numeric range of attribute A; nullptr if A never appears.
  const AttrRange* RangeOf(SymbolId attr) const;

  /// Symbol tables. Node labels, edge labels and attribute names live in
  /// separate id spaces.
  const Dictionary& node_labels() const { return node_labels_; }
  const Dictionary& edge_labels() const { return edge_labels_; }
  const Dictionary& attr_names() const { return attr_names_; }

  /// Display helpers (fall back to the raw id when a symbol is stale).
  std::string NodeLabelName(SymbolId id) const;
  std::string EdgeLabelName(SymbolId id) const;
  std::string AttrName(SymbolId id) const;

  /// Stable identity of the logical graph this epoch chain descends from:
  /// process-unique for built graphs, the content fingerprint for
  /// snapshot-backed graphs. Folded (with generation()) into prepared-query
  /// cache keys so one graph's entries can never serve another.
  uint64_t identity() const { return identity_; }

  /// Update epoch: 0 for a freshly built or loaded graph, bumped once per
  /// ApplyUpdate(). The pair (identity, generation) names one immutable
  /// graph value.
  uint64_t generation() const { return generation_; }

  /// True for snapshot-backed graphs whose columns borrow the read-only
  /// mapped image: they cannot be updated (ApplyUpdate reports kFrozen
  /// instead of faulting on the PROT_READ pages).
  bool frozen() const { return frozen_; }

  /// Applies `batch` incrementally (src/graph/update.cc): on success fills
  /// `*out` with the next-epoch graph — only touched column groups rebuilt,
  /// untouched ones shared copy-on-write, generation bumped — and returns
  /// true. On failure returns false with result->status/error set and *out
  /// untouched. This graph itself is never modified either way.
  bool ApplyUpdate(const UpdateBatch& batch, Graph* out,
                   UpdateResult* result) const;

  // One label's run inside a node's slice of the partitioned neighbor
  // array; per-node runs are sorted by label (binary-searched on lookup).
  // Fixed 24-byte padding-free layout: rows are stored verbatim in the
  // snapshot image (docs/SNAPSHOT_FORMAT.md).
  struct LabelSlice {
    SymbolId label = kInvalidSymbol;
    uint32_t reserved = 0;  // explicit padding, written as zero
    uint64_t begin = 0;
    uint64_t end = 0;
  };

 private:
  friend class GraphBuilder;
  friend class GraphSnapshot;
  friend class GraphUpdater;

  // Shared lookup for LabeledOutNeighbors / LabeledInNeighbors. Inline:
  // the matcher's Extend() fetches a slice per backtracking step, and the
  // call frames showed up in profiles. Nodes carry a handful of distinct
  // labels, so a forward scan of the sorted runs beats std::lower_bound's
  // branchy bisection there; genuinely label-diverse nodes still bisect.
  static NodeSpan LabeledSlice(const Column<NodeId>& nbrs,
                               const Column<LabelSlice>& slices,
                               const Column<uint64_t>& range, NodeId v,
                               SymbolId label) {
    const LabelSlice* begin = slices.data() + range[v];
    const LabelSlice* end = slices.data() + range[v + 1];
    if (end - begin > 16) {
      auto it = std::lower_bound(
          begin, end, label,
          [](const LabelSlice& s, SymbolId l) { return s.label < l; });
      if (it == end || it->label != label) return NodeSpan{};
      return NodeSpan{nbrs.data() + it->begin, it->end - it->begin};
    }
    for (const LabelSlice* it = begin; it != end; ++it) {
      if (it->label >= label) {
        if (it->label != label) break;
        return NodeSpan{nbrs.data() + it->begin, it->end - it->begin};
      }
    }
    return NodeSpan{};
  }

  // Node labels, one SymbolId per node.
  Column<SymbolId> node_label_;

  // Attribute tuples: per-node runs of attr_pool_ delimited by attr_range_
  // (node_count + 1 offsets). The pool is always heap-owned — AttrEntry
  // holds a Value (possibly a string), so snapshot loads materialize it
  // from the interned on-disk attribute column — but the offsets column is
  // borrowable. Held by shared_ptr so update epochs that leave every
  // attribute untouched alias the pool instead of deep-copying its strings.
  std::shared_ptr<const std::vector<AttrEntry>> attr_pool_ =
      std::make_shared<const std::vector<AttrEntry>>();
  Column<uint64_t> attr_range_;

  // Full adjacency: per-node runs of (other, label) rows sorted by
  // HalfEdgeLess, delimited by node_count + 1 offsets.
  Column<HalfEdge> out_pool_;
  Column<HalfEdge> in_pool_;
  Column<uint64_t> out_range_;
  Column<uint64_t> in_range_;
  size_t edge_count_ = 0;

  // Label-partitioned adjacency: per direction, all neighbors concatenated
  // grouped by (node, label) with ascending ids within a group; `*_slices_`
  // holds each node's label runs and `*_slice_range_` (n + 1 entries) each
  // node's run window. Built in Build(); adds ~4 bytes per half-edge.
  Column<NodeId> out_nbrs_;
  Column<NodeId> in_nbrs_;
  Column<LabelSlice> out_slices_;
  Column<LabelSlice> in_slices_;
  Column<uint64_t> out_slice_range_;
  Column<uint64_t> in_slice_range_;

  // Label buckets: dense CSR indexed by node-label SymbolId — bucket l is
  // bucket_nodes_[bucket_range_[l] .. bucket_range_[l + 1]), ascending.
  Column<NodeId> bucket_nodes_;
  Column<uint64_t> bucket_range_;

  // Attribute domain ranges, dense by attribute SymbolId (count == 0 rows
  // mean "attribute never appears").
  Column<AttrRange> attr_ranges_;

  Dictionary node_labels_;
  Dictionary edge_labels_;
  Dictionary attr_names_;

  // Epoch bookkeeping (see identity()/generation()/frozen()). Stamped by
  // GraphBuilder::Build(), GraphSnapshot::Load() and ApplyUpdate().
  uint64_t identity_ = 0;
  uint64_t generation_ = 0;
  bool frozen_ = false;
};

/// Incrementally assembles a Graph. Duplicate edges (same endpoints + label)
/// are collapsed; attribute tuples are sorted and de-duplicated by attribute
/// (last write wins). Per-node growable state lives in the builder; Build()
/// flattens it into the Graph's frozen columns.
class GraphBuilder {
 public:
  GraphBuilder() = default;

  /// Adds a node with the given label name; returns its id.
  NodeId AddNode(std::string_view label);

  /// Sets (or overwrites) attribute `name` of node v.
  void SetAttr(NodeId v, std::string_view name, Value value);

  /// Adds directed edge u -> v with the given label name.
  void AddEdge(NodeId u, NodeId v, std::string_view label);

  /// Id-based variants for callers that pre-intern symbols.
  NodeId AddNodeById(SymbolId label);
  void SetAttrById(NodeId v, SymbolId attr, Value value);
  void AddEdgeById(NodeId u, NodeId v, SymbolId label);

  Dictionary& node_labels() { return node_labels_; }
  Dictionary& edge_labels() { return edge_labels_; }
  Dictionary& attr_names() { return attr_names_; }

  size_t node_count() const { return labels_.size(); }

  /// Finalizes: sorts adjacency, drops duplicate edges, builds the label
  /// index and attribute ranges. The builder is left empty.
  Graph Build();

 private:
  Dictionary node_labels_;
  Dictionary edge_labels_;
  Dictionary attr_names_;
  std::vector<SymbolId> labels_;
  std::vector<std::vector<AttrEntry>> attrs_;
  std::vector<std::vector<HalfEdge>> out_;
  std::vector<std::vector<HalfEdge>> in_;
};

namespace graph_internal {

/// Canonical adjacency order: by far endpoint, then edge label. Every
/// per-node adjacency run (builder output and incremental-update overlays
/// alike) is sorted by this predicate.
bool HalfEdgeLess(const HalfEdge& a, const HalfEdge& b);

/// Folds one attribute value into the per-attribute domain ranges, growing
/// `ranges` on demand. GraphBuilder::Build() and the incremental updater
/// (src/graph/update.cc) share this fold so a rescanned range is bit-equal
/// to a rebuilt one — the fold is order-dependent for attributes mixing
/// string and numeric values, so rescans must visit nodes in id order.
void FoldAttrRange(std::vector<AttrRange>& ranges, SymbolId attr,
                   const Value& value);

/// Appends the label-partitioned mirror of one node's (other, label)-sorted
/// adjacency run: neighbors grouped by label (stable, so each label's run
/// stays ascending by NodeId) into `nbrs`, one LabelSlice per distinct
/// label into `slices`. `scratch` is caller-provided to amortize the
/// per-node sort buffer. Shared by Build() and the incremental updater.
void PartitionAdjacency(const HalfEdge* adj, size_t count,
                        std::vector<HalfEdge>& scratch,
                        std::vector<NodeId>& nbrs,
                        std::vector<Graph::LabelSlice>& slices);

/// Next process-unique graph identity (used by GraphBuilder::Build()).
uint64_t NextGraphIdentity();

}  // namespace graph_internal

}  // namespace whyq

#endif  // WHYQ_GRAPH_GRAPH_H_
