#include "graph/graph_io.h"

#include <charconv>
#include <fstream>
#include <ostream>
#include <sstream>
#include <vector>

namespace whyq {

namespace {

std::string LineError(size_t line_no, const std::string& what) {
  return "line " + std::to_string(line_no) + ": " + what;
}

std::vector<std::string> Tokenize(const std::string& line) {
  std::vector<std::string> out;
  std::istringstream is(line);
  std::string tok;
  while (is >> tok) out.push_back(tok);
  return out;
}

}  // namespace

std::optional<Value> ParseTypedValue(const std::string& token) {
  if (token.size() < 2 || token[1] != ':') return std::nullopt;
  std::string body = token.substr(2);
  switch (token[0]) {
    case 'i': {
      int64_t v = 0;
      auto [ptr, ec] =
          std::from_chars(body.data(), body.data() + body.size(), v);
      if (ec != std::errc() || ptr != body.data() + body.size()) {
        return std::nullopt;
      }
      return Value(v);
    }
    case 'd': {
      char* end = nullptr;
      double v = std::strtod(body.c_str(), &end);
      if (end != body.c_str() + body.size() || body.empty()) {
        return std::nullopt;
      }
      return Value(v);
    }
    case 's':
      return Value(std::move(body));
    default:
      return std::nullopt;
  }
}

std::string FormatTypedValue(const Value& v) {
  if (v.is_int()) return "i:" + v.ToString();
  if (v.is_double()) return "d:" + v.ToString();
  return "s:" + v.as_string();
}

void WriteGraph(const Graph& g, std::ostream& os) {
  os << "# whyq graph v1\n";
  for (NodeId v = 0; v < g.node_count(); ++v) {
    os << "N " << g.NodeLabelName(g.label(v));
    for (const AttrEntry& e : g.attrs(v)) {
      os << ' ' << g.AttrName(e.attr) << '=' << FormatTypedValue(e.value);
    }
    os << '\n';
  }
  for (NodeId v = 0; v < g.node_count(); ++v) {
    for (const HalfEdge& e : g.out_edges(v)) {
      os << "E " << v << ' ' << e.other << ' ' << g.EdgeLabelName(e.label)
         << '\n';
    }
  }
}

bool WriteGraphToFile(const Graph& g, const std::string& path) {
  std::ofstream os(path);
  if (!os) return false;
  WriteGraph(g, os);
  return static_cast<bool>(os);
}

std::optional<Graph> ReadGraph(std::istream& is, std::string* error) {
  GraphBuilder builder;
  std::string line;
  size_t line_no = 0;
  // Edge lines may appear before all nodes exist only if they reference
  // already-declared ids; we buffer edges and apply them after all nodes.
  struct PendingEdge {
    NodeId src;
    NodeId dst;
    std::string label;
    size_t line_no;
  };
  std::vector<PendingEdge> edges;
  while (std::getline(is, line)) {
    ++line_no;
    if (line.empty() || line[0] == '#') continue;
    std::vector<std::string> toks = Tokenize(line);
    if (toks.empty()) continue;
    if (toks[0] == "N") {
      if (toks.size() < 2) {
        if (error) *error = LineError(line_no, "node line needs a label");
        return std::nullopt;
      }
      NodeId v = builder.AddNode(toks[1]);
      for (size_t i = 2; i < toks.size(); ++i) {
        size_t eq = toks[i].find('=');
        if (eq == std::string::npos || eq == 0) {
          if (error) *error = LineError(line_no, "bad attr " + toks[i]);
          return std::nullopt;
        }
        std::optional<Value> val = ParseTypedValue(toks[i].substr(eq + 1));
        if (!val.has_value()) {
          if (error) *error = LineError(line_no, "bad value " + toks[i]);
          return std::nullopt;
        }
        builder.SetAttr(v, toks[i].substr(0, eq), std::move(*val));
      }
    } else if (toks[0] == "E") {
      if (toks.size() != 4) {
        if (error) {
          *error = LineError(line_no, "edge line needs src dst label");
        }
        return std::nullopt;
      }
      PendingEdge e;
      e.src = static_cast<NodeId>(std::strtoul(toks[1].c_str(), nullptr, 10));
      e.dst = static_cast<NodeId>(std::strtoul(toks[2].c_str(), nullptr, 10));
      e.label = toks[3];
      e.line_no = line_no;
      edges.push_back(std::move(e));
    } else {
      if (error) *error = LineError(line_no, "unknown record " + toks[0]);
      return std::nullopt;
    }
  }
  for (const auto& e : edges) {
    if (e.src >= builder.node_count() || e.dst >= builder.node_count()) {
      if (error) *error = LineError(e.line_no, "edge endpoint out of range");
      return std::nullopt;
    }
    builder.AddEdge(e.src, e.dst, e.label);
  }
  return builder.Build();
}

std::optional<Graph> ReadGraphFromFile(const std::string& path,
                                       std::string* error) {
  std::ifstream is(path);
  if (!is) {
    if (error) *error = "cannot open " + path;
    return std::nullopt;
  }
  return ReadGraph(is, error);
}

namespace {

std::optional<NodeId> ParseNodeId(const std::string& tok) {
  uint32_t v = 0;
  auto [ptr, ec] = std::from_chars(tok.data(), tok.data() + tok.size(), v);
  if (ec != std::errc() || ptr != tok.data() + tok.size()) return std::nullopt;
  return static_cast<NodeId>(v);
}

}  // namespace

void WriteUpdateBatch(const UpdateBatch& batch, std::ostream& os) {
  os << "# whyq update-batch v1\n";
  for (const UpdateOp& op : batch.ops) {
    switch (op.kind) {
      case UpdateOp::kAddNode:
        os << "AN " << op.name << '\n';
        break;
      case UpdateOp::kDeleteNode:
        os << "DN " << op.node << '\n';
        break;
      case UpdateOp::kAddEdge:
        os << "AE " << op.node << ' ' << op.other << ' ' << op.name << '\n';
        break;
      case UpdateOp::kDeleteEdge:
        os << "DE " << op.node << ' ' << op.other << ' ' << op.name << '\n';
        break;
      case UpdateOp::kSetAttr:
        os << "SA " << op.node << ' ' << op.name << '='
           << FormatTypedValue(op.value) << '\n';
        break;
      case UpdateOp::kDelAttr:
        os << "DA " << op.node << ' ' << op.name << '\n';
        break;
    }
  }
}

bool WriteUpdateBatchToFile(const UpdateBatch& batch,
                            const std::string& path) {
  std::ofstream os(path);
  if (!os) return false;
  WriteUpdateBatch(batch, os);
  return static_cast<bool>(os);
}

std::optional<UpdateBatch> ReadUpdateBatch(std::istream& is,
                                           std::string* error) {
  UpdateBatch batch;
  std::string line;
  size_t line_no = 0;
  while (std::getline(is, line)) {
    ++line_no;
    if (line.empty() || line[0] == '#') continue;
    std::vector<std::string> toks = Tokenize(line);
    if (toks.empty()) continue;
    const std::string& kind = toks[0];
    if (kind == "AN") {
      if (toks.size() != 2) {
        if (error) *error = LineError(line_no, "AN needs a label");
        return std::nullopt;
      }
      batch.ops.push_back(UpdateOp::AddNode(toks[1]));
    } else if (kind == "DN") {
      std::optional<NodeId> v = toks.size() == 2 ? ParseNodeId(toks[1])
                                                 : std::nullopt;
      if (!v) {
        if (error) *error = LineError(line_no, "DN needs a node id");
        return std::nullopt;
      }
      batch.ops.push_back(UpdateOp::DeleteNode(*v));
    } else if (kind == "AE" || kind == "DE") {
      std::optional<NodeId> u =
          toks.size() == 4 ? ParseNodeId(toks[1]) : std::nullopt;
      std::optional<NodeId> v =
          toks.size() == 4 ? ParseNodeId(toks[2]) : std::nullopt;
      if (!u || !v) {
        if (error) {
          *error = LineError(line_no, kind + " needs src dst label");
        }
        return std::nullopt;
      }
      batch.ops.push_back(kind == "AE"
                              ? UpdateOp::AddEdge(*u, *v, toks[3])
                              : UpdateOp::DeleteEdge(*u, *v, toks[3]));
    } else if (kind == "SA") {
      std::optional<NodeId> v =
          toks.size() == 3 ? ParseNodeId(toks[1]) : std::nullopt;
      size_t eq = toks.size() == 3 ? toks[2].find('=') : std::string::npos;
      if (!v || eq == std::string::npos || eq == 0) {
        if (error) {
          *error = LineError(line_no, "SA needs node attr=typed-value");
        }
        return std::nullopt;
      }
      std::optional<Value> val = ParseTypedValue(toks[2].substr(eq + 1));
      if (!val) {
        if (error) *error = LineError(line_no, "bad value " + toks[2]);
        return std::nullopt;
      }
      batch.ops.push_back(
          UpdateOp::SetAttr(*v, toks[2].substr(0, eq), std::move(*val)));
    } else if (kind == "DA") {
      std::optional<NodeId> v =
          toks.size() == 3 ? ParseNodeId(toks[1]) : std::nullopt;
      if (!v) {
        if (error) *error = LineError(line_no, "DA needs node attr");
        return std::nullopt;
      }
      batch.ops.push_back(UpdateOp::DelAttr(*v, toks[2]));
    } else {
      if (error) *error = LineError(line_no, "unknown update op " + kind);
      return std::nullopt;
    }
  }
  return batch;
}

std::optional<UpdateBatch> ReadUpdateBatchFromFile(const std::string& path,
                                                   std::string* error) {
  std::ifstream is(path);
  if (!is) {
    if (error) *error = "cannot open " + path;
    return std::nullopt;
  }
  return ReadUpdateBatch(is, error);
}

}  // namespace whyq
