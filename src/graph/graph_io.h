#ifndef WHYQ_GRAPH_GRAPH_IO_H_
#define WHYQ_GRAPH_GRAPH_IO_H_

#include <iosfwd>
#include <optional>
#include <string>

#include "graph/graph.h"
#include "graph/update.h"

namespace whyq {

/// Text serialization of attributed graphs.
///
/// Line-oriented, whitespace-separated format:
///   # comment
///   N <label> [<attr>=<typed-value> ...]     node; ids are implicit 0..n-1
///   E <src-id> <dst-id> <edge-label>
/// Typed values: `i:42` (int), `d:3.5` (double), `s:text` (string; no
/// whitespace — intended for generated/identifier-like values).
///
/// Write and read round-trip exactly (modulo comment lines).
void WriteGraph(const Graph& g, std::ostream& os);
bool WriteGraphToFile(const Graph& g, const std::string& path);

/// Parses a graph; on malformed input returns std::nullopt and, when
/// `error` is non-null, a line-numbered message.
std::optional<Graph> ReadGraph(std::istream& is, std::string* error);
std::optional<Graph> ReadGraphFromFile(const std::string& path,
                                       std::string* error);

/// Parses a single typed value token (`i:`, `d:`, `s:` forms).
std::optional<Value> ParseTypedValue(const std::string& token);
/// Formats a value as a typed token.
std::string FormatTypedValue(const Value& v);

/// Text serialization of update batches (docs/ARCHITECTURE.md "Mutable
/// graphs & epochs"). Line-oriented op mnemonics, applied in file order;
/// `#` lines are comments. Typed values use the same `i:`/`d:`/`s:` forms
/// as the graph format.
///   AN <label>                          add node (id = node count at apply)
///   DN <node-id>                        delete (tombstone) node
///   AE <src-id> <dst-id> <edge-label>   add edge src -> dst
///   DE <src-id> <dst-id> <edge-label>   delete edge src -> dst
///   SA <node-id> <attr>=<typed-value>   set (or overwrite) attribute
///   DA <node-id> <attr>                 delete attribute
///
/// Write and read round-trip exactly (modulo comment lines).
void WriteUpdateBatch(const UpdateBatch& batch, std::ostream& os);
bool WriteUpdateBatchToFile(const UpdateBatch& batch, const std::string& path);

/// Parses an update batch; on malformed input returns std::nullopt and,
/// when `error` is non-null, a line-numbered message. Ops are validated
/// against a concrete graph only at ApplyUpdate time, not here.
std::optional<UpdateBatch> ReadUpdateBatch(std::istream& is,
                                           std::string* error);
std::optional<UpdateBatch> ReadUpdateBatchFromFile(const std::string& path,
                                                   std::string* error);

}  // namespace whyq

#endif  // WHYQ_GRAPH_GRAPH_IO_H_
