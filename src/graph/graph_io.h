#ifndef WHYQ_GRAPH_GRAPH_IO_H_
#define WHYQ_GRAPH_GRAPH_IO_H_

#include <iosfwd>
#include <optional>
#include <string>

#include "graph/graph.h"

namespace whyq {

/// Text serialization of attributed graphs.
///
/// Line-oriented, whitespace-separated format:
///   # comment
///   N <label> [<attr>=<typed-value> ...]     node; ids are implicit 0..n-1
///   E <src-id> <dst-id> <edge-label>
/// Typed values: `i:42` (int), `d:3.5` (double), `s:text` (string; no
/// whitespace — intended for generated/identifier-like values).
///
/// Write and read round-trip exactly (modulo comment lines).
void WriteGraph(const Graph& g, std::ostream& os);
bool WriteGraphToFile(const Graph& g, const std::string& path);

/// Parses a graph; on malformed input returns std::nullopt and, when
/// `error` is non-null, a line-numbered message.
std::optional<Graph> ReadGraph(std::istream& is, std::string* error);
std::optional<Graph> ReadGraphFromFile(const std::string& path,
                                       std::string* error);

/// Parses a single typed value token (`i:`, `d:`, `s:` forms).
std::optional<Value> ParseTypedValue(const std::string& token);
/// Formats a value as a typed token.
std::string FormatTypedValue(const Value& v);

}  // namespace whyq

#endif  // WHYQ_GRAPH_GRAPH_IO_H_
