#include "graph/graph_stats.h"

#include <algorithm>
#include <sstream>
#include <unordered_set>

namespace whyq {

std::string GraphStats::ToString() const {
  std::ostringstream os;
  os << "|V|=" << nodes << " |E|=" << edges << " labels=" << node_labels
     << "/" << edge_labels << " attrs=" << attributes
     << " avg_attrs/node=" << avg_attrs_per_node
     << " avg_deg=" << avg_out_degree << " max_deg=" << max_out_degree;
  return os.str();
}

GraphStats ComputeStats(const Graph& g) {
  GraphStats s;
  s.nodes = g.node_count();
  s.edges = g.edge_count();
  std::unordered_set<SymbolId> nlabels;
  std::unordered_set<SymbolId> elabels;
  std::unordered_set<SymbolId> anames;
  size_t attr_entries = 0;
  for (NodeId v = 0; v < g.node_count(); ++v) {
    nlabels.insert(g.label(v));
    attr_entries += g.attrs(v).size();
    for (const AttrEntry& e : g.attrs(v)) anames.insert(e.attr);
    for (const HalfEdge& e : g.out_edges(v)) elabels.insert(e.label);
    s.max_out_degree = std::max(s.max_out_degree, g.out_edges(v).size());
  }
  s.node_labels = nlabels.size();
  s.edge_labels = elabels.size();
  s.attributes = anames.size();
  if (s.nodes > 0) {
    s.avg_attrs_per_node =
        static_cast<double>(attr_entries) / static_cast<double>(s.nodes);
    s.avg_out_degree =
        static_cast<double>(s.edges) / static_cast<double>(s.nodes);
  }
  return s;
}

std::vector<Value> ActiveDomain(const Graph& g, SymbolId attr,
                                const std::vector<NodeId>& nodes) {
  std::vector<Value> out;
  for (NodeId v : nodes) {
    const Value* val = g.GetAttr(v, attr);
    if (val != nullptr) out.push_back(*val);
  }
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

}  // namespace whyq
