#ifndef WHYQ_GRAPH_GRAPH_STATS_H_
#define WHYQ_GRAPH_GRAPH_STATS_H_

#include <map>
#include <set>
#include <string>
#include <vector>

#include "graph/graph.h"

namespace whyq {

/// Summary statistics of a graph, mirroring how the paper characterizes its
/// datasets (nodes, edges, label alphabet, average attributes per node).
struct GraphStats {
  size_t nodes = 0;
  size_t edges = 0;
  size_t node_labels = 0;
  size_t edge_labels = 0;
  size_t attributes = 0;
  double avg_attrs_per_node = 0.0;
  double avg_out_degree = 0.0;
  size_t max_out_degree = 0;

  std::string ToString() const;
};

GraphStats ComputeStats(const Graph& g);

/// The active domain dom(A, V): distinct values of v.A over v in `nodes`
/// (nodes lacking A contribute nothing). Sorted by Value's container order.
std::vector<Value> ActiveDomain(const Graph& g, SymbolId attr,
                                const std::vector<NodeId>& nodes);

}  // namespace whyq

#endif  // WHYQ_GRAPH_GRAPH_STATS_H_
