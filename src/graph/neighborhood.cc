#include "graph/neighborhood.h"

#include "common/check.h"

namespace whyq {

NodeSet::NodeSet(const std::vector<NodeId>& nodes, size_t universe) {
  member_.assign(universe, 0);
  nodes_.reserve(nodes.size());
  for (NodeId v : nodes) Insert(v);
}

void NodeSet::Insert(NodeId v) {
  if (v >= member_.size()) member_.resize(v + 1, 0);
  if (member_[v]) return;
  member_[v] = 1;
  nodes_.push_back(v);
}

NodeSet WithinDistanceWithDepth(const Graph& g,
                                const std::vector<NodeId>& seeds, size_t d,
                                std::vector<size_t>* dist_out) {
  NodeSet set(std::vector<NodeId>{}, g.node_count());
  std::vector<size_t> dist;
  for (NodeId s : seeds) {
    WHYQ_CHECK(s < g.node_count());
    if (!set.Contains(s)) {
      set.Insert(s);
      dist.push_back(0);
    }
  }
  // BFS over the frontier; `dist` is aligned with set.nodes().
  for (size_t head = 0; head < set.nodes().size(); ++head) {
    NodeId v = set.nodes()[head];
    size_t dv = dist[head];
    if (dv == d) continue;
    auto visit = [&](NodeId w) {
      if (!set.Contains(w)) {
        set.Insert(w);
        dist.push_back(dv + 1);
      }
    };
    for (const HalfEdge& e : g.out_edges(v)) visit(e.other);
    for (const HalfEdge& e : g.in_edges(v)) visit(e.other);
  }
  if (dist_out != nullptr) *dist_out = std::move(dist);
  return set;
}

NodeSet WithinDistance(const Graph& g, const std::vector<NodeId>& seeds,
                       size_t d) {
  return WithinDistanceWithDepth(g, seeds, d, nullptr);
}

}  // namespace whyq
