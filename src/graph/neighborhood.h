#ifndef WHYQ_GRAPH_NEIGHBORHOOD_H_
#define WHYQ_GRAPH_NEIGHBORHOOD_H_

#include <vector>

#include "graph/graph.h"

namespace whyq {

/// A set of graph nodes with O(1) membership, as produced by neighborhood
/// expansion. Iteration order is BFS discovery order.
class NodeSet {
 public:
  NodeSet() = default;

  /// Builds from an explicit list (duplicates ignored).
  NodeSet(const std::vector<NodeId>& nodes, size_t universe);

  bool Contains(NodeId v) const {
    return v < member_.size() && member_[v] != 0;
  }

  void Insert(NodeId v);

  const std::vector<NodeId>& nodes() const { return nodes_; }
  size_t size() const { return nodes_.size(); }
  bool empty() const { return nodes_.empty(); }

 private:
  std::vector<uint8_t> member_;
  std::vector<NodeId> nodes_;
};

/// Computes N_d(seeds): all nodes within undirected distance `d` of any seed
/// (the seeds themselves are included at distance 0). This is the paper's
/// d-hop neighborhood used to localize picky-operator generation.
NodeSet WithinDistance(const Graph& g, const std::vector<NodeId>& seeds,
                       size_t d);

/// As WithinDistance, but also reports each reached node's BFS distance
/// (distance from its nearest seed) in `dist_out`, aligned with the returned
/// set's iteration order.
NodeSet WithinDistanceWithDepth(const Graph& g,
                                const std::vector<NodeId>& seeds, size_t d,
                                std::vector<size_t>* dist_out);

}  // namespace whyq

#endif  // WHYQ_GRAPH_NEIGHBORHOOD_H_
