#include "graph/snapshot.h"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <bit>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <unordered_map>
#include <utility>

namespace whyq {

namespace {

// Streaming FNV-1a (parameters in snapshot.h).
struct Fnv {
  uint64_t h = kFnvOffsetBasis;

  void Bytes(const void* data, size_t n) {
    const auto* p = static_cast<const unsigned char*>(data);
    for (size_t i = 0; i < n; ++i) {
      h ^= p[i];
      h *= kFnvPrime;
    }
  }
  void U64(uint64_t v) { Bytes(&v, sizeof(v)); }
  void Str(std::string_view s) {
    U64(s.size());
    Bytes(s.data(), s.size());
  }
};

// The payload checksum: 64-bit little-endian words striped round-robin
// across kSnapshotChecksumLanes independent FNV-1a accumulators (see
// snapshot.h for the contract). Each Region() call folds its buffer
// independently, zero-padding the final partial word, so Write and Load
// agree as long as they cover the same regions in the same order.
struct StripedFnv {
  uint64_t lane[kSnapshotChecksumLanes] = {};
  size_t next = 0;

  StripedFnv() {
    for (auto& l : lane) l = kFnvOffsetBasis;
  }

  void Region(const void* data, size_t n) {
    const auto* p = static_cast<const unsigned char*>(data);
    size_t whole = n & ~(sizeof(uint64_t) - 1);
    for (size_t i = 0; i < whole; i += sizeof(uint64_t)) {
      uint64_t w;
      std::memcpy(&w, p + i, sizeof(w));
      lane[next] = (lane[next] ^ w) * kFnvPrime;
      next = (next + 1) % kSnapshotChecksumLanes;
    }
    if (whole != n) {
      uint64_t w = 0;
      std::memcpy(&w, p + whole, n - whole);
      lane[next] = (lane[next] ^ w) * kFnvPrime;
      next = (next + 1) % kSnapshotChecksumLanes;
    }
  }

  uint64_t Digest() const {
    uint64_t h = kFnvOffsetBasis;
    for (uint64_t l : lane) {
      const auto* p = reinterpret_cast<const unsigned char*>(&l);
      for (size_t i = 0; i < sizeof(l); ++i) h = (h ^ p[i]) * kFnvPrime;
    }
    return h;
  }
};

size_t AlignUp(size_t n) {
  return (n + kSnapshotSectionAlign - 1) & ~size_t{kSnapshotSectionAlign - 1};
}

// One section staged for writing: id plus a borrowed byte range.
struct Staged {
  uint32_t id = 0;
  const void* data = nullptr;
  size_t bytes = 0;
};

bool Fail(std::string* error, std::string msg) {
  if (error != nullptr) *error = std::move(msg);
  return false;
}

void HashValue(Fnv& f, const Value& v) {
  if (v.is_int()) {
    f.U64(kSnapValueInt);
    f.U64(static_cast<uint64_t>(v.as_int()));
  } else if (v.is_double()) {
    f.U64(kSnapValueDouble);
    f.U64(std::bit_cast<uint64_t>(v.as_double()));
  } else {
    f.U64(kSnapValueString);
    f.Str(v.as_string());
  }
}

void HashDictionary(Fnv& f, const Dictionary& d) {
  f.U64(d.size());
  for (SymbolId i = 0; i < d.size(); ++i) f.Str(d.NameOf(i));
}

// Interns strings into the snapshot's string pool, deduplicated.
class StringPool {
 public:
  // Returns false when the pool outgrows the 32-bit offsets of the format.
  bool Add(std::string_view s, uint32_t* offset, uint32_t* bytes) {
    if (s.size() > UINT32_MAX) return false;
    auto it = index_.find(std::string(s));
    if (it == index_.end()) {
      if (pool_.size() + s.size() > UINT32_MAX) return false;
      it = index_.emplace(std::string(s),
                          static_cast<uint32_t>(pool_.size())).first;
      pool_.append(s);
    }
    *offset = it->second;
    *bytes = static_cast<uint32_t>(s.size());
    return true;
  }

  const std::string& bytes() const { return pool_; }

 private:
  std::string pool_;
  std::unordered_map<std::string, uint32_t> index_;
};

// The loader's view of one validated section.
struct Region {
  const unsigned char* data = nullptr;
  size_t bytes = 0;

  template <typename T>
  const T* Rows() const {
    return reinterpret_cast<const T*>(data);
  }
  template <typename T>
  size_t RowCount() const {
    return bytes / sizeof(T);
  }
  template <typename T>
  bool RowAligned() const {
    return bytes % sizeof(T) == 0;
  }
};

bool MonotonicRange(const Region& r, size_t expect_count, uint64_t last) {
  if (!r.RowAligned<uint64_t>()) return false;
  if (r.RowCount<uint64_t>() != expect_count) return false;
  const uint64_t* rows = r.Rows<uint64_t>();
  if (expect_count == 0 || rows[0] != 0) return false;
  for (size_t i = 1; i < expect_count; ++i) {
    if (rows[i] < rows[i - 1]) return false;
  }
  return rows[expect_count - 1] == last;
}

bool LoadDictionary(const Region& dict, const Region& pool, Dictionary* out,
                    std::string* error, const char* what) {
  if (!dict.RowAligned<SnapStringRef>()) {
    return Fail(error, std::string("snapshot: ragged dictionary section: ") +
                           what);
  }
  size_t count = dict.RowCount<SnapStringRef>();
  const SnapStringRef* refs = dict.Rows<SnapStringRef>();
  for (size_t i = 0; i < count; ++i) {
    uint64_t end = uint64_t{refs[i].offset} + refs[i].bytes;
    if (end > pool.bytes) {
      return Fail(error,
                  std::string("snapshot: dictionary name out of pool: ") +
                      what);
    }
    std::string_view name(
        reinterpret_cast<const char*>(pool.data) + refs[i].offset,
        refs[i].bytes);
    if (out->Intern(name) != i) {
      return Fail(error, std::string("snapshot: duplicate dictionary name: ") +
                             what);
    }
  }
  return true;
}

}  // namespace

uint64_t GraphFingerprint(const Graph& g) {
  Fnv f;
  f.Str("whyq.graph.fp.v1");
  f.U64(g.node_count());
  f.U64(g.edge_count());
  HashDictionary(f, g.node_labels());
  HashDictionary(f, g.edge_labels());
  HashDictionary(f, g.attr_names());
  for (NodeId v = 0; v < g.node_count(); ++v) {
    f.U64(g.label(v));
    AttrSpan tuple = g.attrs(v);
    f.U64(tuple.size());
    for (const AttrEntry& e : tuple) {
      f.U64(e.attr);
      HashValue(f, e.value);
    }
    EdgeSpan out = g.out_edges(v);
    f.U64(out.size());
    for (const HalfEdge& e : out) {
      f.U64(e.other);
      f.U64(e.label);
    }
  }
  return f.h;
}

GraphSnapshot::~GraphSnapshot() {
  if (map_ != nullptr) ::munmap(map_, map_bytes_);
}

bool GraphSnapshot::Write(const Graph& g, const std::string& path,
                          std::string* error) {
  // Stage the interned attribute column and the string pool.
  StringPool pool;
  std::vector<SnapAttrEntry> attr_entries;
  attr_entries.reserve(g.attr_pool_->size());
  for (const AttrEntry& e : *g.attr_pool_) {
    SnapAttrEntry row{};
    row.attr = e.attr;
    if (e.value.is_int()) {
      row.kind = kSnapValueInt;
      row.payload = static_cast<uint64_t>(e.value.as_int());
    } else if (e.value.is_double()) {
      row.kind = kSnapValueDouble;
      row.payload = std::bit_cast<uint64_t>(e.value.as_double());
    } else {
      row.kind = kSnapValueString;
      uint32_t off = 0;
      uint32_t len = 0;
      if (!pool.Add(e.value.as_string(), &off, &len)) {
        return Fail(error, "snapshot: string pool exceeds 32-bit offsets");
      }
      row.payload = (uint64_t{off} << 32) | len;
    }
    attr_entries.push_back(row);
  }
  auto stage_dict = [&pool](const Dictionary& d,
                            std::vector<SnapStringRef>& refs) {
    refs.reserve(d.size());
    for (SymbolId i = 0; i < d.size(); ++i) {
      SnapStringRef r{};
      if (!pool.Add(d.NameOf(i), &r.offset, &r.bytes)) return false;
      refs.push_back(r);
    }
    return true;
  };
  std::vector<SnapStringRef> node_dict;
  std::vector<SnapStringRef> edge_dict;
  std::vector<SnapStringRef> attr_dict;
  if (!stage_dict(g.node_labels(), node_dict) ||
      !stage_dict(g.edge_labels(), edge_dict) ||
      !stage_dict(g.attr_names(), attr_dict)) {
    return Fail(error, "snapshot: string pool exceeds 32-bit offsets");
  }

  auto col = [](uint32_t id, const auto& c) {
    using Row = std::remove_reference_t<decltype(c[0])>;
    return Staged{id, c.data(), c.size() * sizeof(Row)};
  };
  // A default-constructed (never Built) empty graph has zero-length range
  // columns, while Build() leaves the canonical single zero row. Stage the
  // latter in both cases so the two serialize to the same loadable image.
  static constexpr uint64_t kZeroRow[1] = {0};
  auto range_col = [&col](uint32_t id, const Column<uint64_t>& c) {
    return c.empty() ? Staged{id, kZeroRow, sizeof(uint64_t)} : col(id, c);
  };
  const Staged sections[kSnapshotSectionCount] = {
      col(kSecNodeLabels, g.node_label_),
      col(kSecOutEdges, g.out_pool_),
      col(kSecInEdges, g.in_pool_),
      range_col(kSecOutEdgeRange, g.out_range_),
      range_col(kSecInEdgeRange, g.in_range_),
      col(kSecOutNbrs, g.out_nbrs_),
      col(kSecInNbrs, g.in_nbrs_),
      col(kSecOutSlices, g.out_slices_),
      col(kSecInSlices, g.in_slices_),
      range_col(kSecOutSliceRange, g.out_slice_range_),
      range_col(kSecInSliceRange, g.in_slice_range_),
      col(kSecBucketNodes, g.bucket_nodes_),
      range_col(kSecBucketRange, g.bucket_range_),
      col(kSecAttrRanges, g.attr_ranges_),
      col(kSecAttrEntries, attr_entries),
      range_col(kSecAttrEntryRange, g.attr_range_),
      Staged{kSecStringPool, pool.bytes().data(), pool.bytes().size()},
      col(kSecNodeLabelDict, node_dict),
      col(kSecEdgeLabelDict, edge_dict),
      col(kSecAttrNameDict, attr_dict),
  };

  // Lay out the image: header, section table, aligned payloads.
  SnapHeader hdr{};
  std::memcpy(hdr.magic, kSnapshotMagic, sizeof(hdr.magic));
  hdr.version = kSnapshotVersion;
  hdr.endian_check = kSnapshotEndianCheck;
  hdr.header_bytes = sizeof(SnapHeader);
  hdr.section_count = kSnapshotSectionCount;
  hdr.node_count = g.node_count();
  hdr.edge_count = g.edge_count();
  hdr.fingerprint = GraphFingerprint(g);

  SnapSection table[kSnapshotSectionCount] = {};
  size_t off = AlignUp(sizeof(SnapHeader) + sizeof(table));
  for (size_t i = 0; i < kSnapshotSectionCount; ++i) {
    table[i].id = sections[i].id;
    table[i].offset = off;
    table[i].bytes = sections[i].bytes;
    off = AlignUp(off + sections[i].bytes);
  }
  hdr.file_bytes = off;
  // The checksum covers the header prefix (everything before payload_hash
  // itself), the section table, and every payload in id order — tampering
  // with any header field, the fingerprint included, is rejected the same
  // way as payload corruption.
  StripedFnv payload;
  payload.Region(&hdr, sizeof(SnapHeader) - sizeof(hdr.payload_hash));
  payload.Region(table, sizeof(table));
  for (size_t i = 0; i < kSnapshotSectionCount; ++i) {
    payload.Region(sections[i].data, sections[i].bytes);
  }
  hdr.payload_hash = payload.Digest();

  const std::string tmp = path + ".tmp";
  std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
  if (!out) return Fail(error, "snapshot: cannot open " + tmp);
  const char zeros[kSnapshotSectionAlign] = {};
  size_t written = 0;
  auto put = [&out, &written](const void* data, size_t n) {
    out.write(static_cast<const char*>(data), static_cast<long>(n));
    written += n;
  };
  auto pad_to = [&](size_t target) {
    while (written < target) {
      size_t n = std::min(target - written, sizeof(zeros));
      put(zeros, n);
    }
  };
  put(&hdr, sizeof(hdr));
  put(table, sizeof(table));
  for (size_t i = 0; i < kSnapshotSectionCount; ++i) {
    pad_to(table[i].offset);
    put(sections[i].data, sections[i].bytes);
  }
  pad_to(hdr.file_bytes);
  out.flush();
  if (!out) return Fail(error, "snapshot: short write to " + tmp);
  out.close();
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    return Fail(error, "snapshot: cannot rename into " + path);
  }
  return true;
}

bool GraphSnapshot::ReadInfo(const std::string& path, Info* out,
                             std::string* error) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Fail(error, "snapshot: cannot open " + path);
  SnapHeader hdr{};
  in.read(reinterpret_cast<char*>(&hdr), sizeof(hdr));
  if (!in) return Fail(error, "snapshot: truncated header in " + path);
  if (std::memcmp(hdr.magic, kSnapshotMagic, sizeof(hdr.magic)) != 0) {
    return Fail(error, "snapshot: bad magic in " + path);
  }
  if (hdr.endian_check != kSnapshotEndianCheck) {
    return Fail(error, "snapshot: foreign byte order in " + path);
  }
  if (hdr.version != kSnapshotVersion ||
      hdr.header_bytes != sizeof(SnapHeader) ||
      hdr.section_count != kSnapshotSectionCount) {
    return Fail(error, "snapshot: unsupported version " +
                           std::to_string(hdr.version) + " in " + path);
  }
  out->version = hdr.version;
  out->file_bytes = hdr.file_bytes;
  out->node_count = hdr.node_count;
  out->edge_count = hdr.edge_count;
  out->fingerprint = hdr.fingerprint;
  out->payload_hash = hdr.payload_hash;
  out->sections.assign(hdr.section_count, SnapSection{});
  in.read(reinterpret_cast<char*>(out->sections.data()),
          static_cast<long>(hdr.section_count * sizeof(SnapSection)));
  if (!in) return Fail(error, "snapshot: truncated section table in " + path);
  return true;
}

std::unique_ptr<GraphSnapshot> GraphSnapshot::Load(const std::string& path,
                                                   std::string* error) {
  auto fail = [error](std::string msg) {
    if (error != nullptr) *error = std::move(msg);
    return std::unique_ptr<GraphSnapshot>();
  };

  int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) return fail("snapshot: cannot open " + path);
  struct stat st{};
  if (::fstat(fd, &st) != 0) {
    ::close(fd);
    return fail("snapshot: cannot stat " + path);
  }
  size_t size = static_cast<size_t>(st.st_size);
  if (size < sizeof(SnapHeader)) {
    ::close(fd);
    return fail("snapshot: file too small: " + path);
  }
  void* map = ::mmap(nullptr, size, PROT_READ, MAP_PRIVATE, fd, 0);
  ::close(fd);
  if (map == MAP_FAILED) return fail("snapshot: mmap failed for " + path);

  std::unique_ptr<GraphSnapshot> snap(new GraphSnapshot());
  snap->map_ = map;
  snap->map_bytes_ = size;
  const auto* base = static_cast<const unsigned char*>(map);

  const auto* hdr = reinterpret_cast<const SnapHeader*>(base);
  if (std::memcmp(hdr->magic, kSnapshotMagic, sizeof(hdr->magic)) != 0) {
    return fail("snapshot: bad magic in " + path);
  }
  if (hdr->endian_check != kSnapshotEndianCheck) {
    return fail("snapshot: foreign byte order in " + path);
  }
  if (hdr->version != kSnapshotVersion ||
      hdr->header_bytes != sizeof(SnapHeader) ||
      hdr->section_count != kSnapshotSectionCount) {
    return fail("snapshot: unsupported version " +
                std::to_string(hdr->version) + " in " + path);
  }
  if (hdr->file_bytes != size) {
    return fail("snapshot: truncated image (header says " +
                std::to_string(hdr->file_bytes) + " bytes, file has " +
                std::to_string(size) + "): " + path);
  }

  // Section table: one entry per id, ascending, aligned, in bounds.
  const auto* table =
      reinterpret_cast<const SnapSection*>(base + sizeof(SnapHeader));
  if (sizeof(SnapHeader) + kSnapshotSectionCount * sizeof(SnapSection) >
      size) {
    return fail("snapshot: truncated section table: " + path);
  }
  Region sec[kSnapshotSectionCount];
  StripedFnv payload;
  payload.Region(hdr, sizeof(SnapHeader) - sizeof(hdr->payload_hash));
  payload.Region(table, kSnapshotSectionCount * sizeof(SnapSection));
  for (uint32_t i = 0; i < kSnapshotSectionCount; ++i) {
    const SnapSection& s = table[i];
    if (s.id != i) return fail("snapshot: section table out of order");
    if (s.offset % kSnapshotSectionAlign != 0) {
      return fail("snapshot: misaligned section " + std::to_string(i));
    }
    if (s.offset > size || s.bytes > size - s.offset) {
      return fail("snapshot: section " + std::to_string(i) +
                  " out of bounds");
    }
    sec[i] = Region{base + s.offset, s.bytes};
    payload.Region(sec[i].data, sec[i].bytes);
  }
  if (payload.Digest() != hdr->payload_hash) {
    return fail("snapshot: payload checksum mismatch (corrupt image): " +
                path);
  }

  // Structural validation, then borrow the columns.
  const size_t n = hdr->node_count;
  const size_t e = hdr->edge_count;
  Graph& g = snap->graph_;

  if (!sec[kSecNodeLabels].RowAligned<SymbolId>() ||
      sec[kSecNodeLabels].RowCount<SymbolId>() != n) {
    return fail("snapshot: node label column size mismatch");
  }
  if (!sec[kSecOutEdges].RowAligned<HalfEdge>() ||
      sec[kSecOutEdges].RowCount<HalfEdge>() != e ||
      !sec[kSecInEdges].RowAligned<HalfEdge>() ||
      sec[kSecInEdges].RowCount<HalfEdge>() != e) {
    return fail("snapshot: adjacency column size mismatch");
  }
  if (!MonotonicRange(sec[kSecOutEdgeRange], n + 1, e) ||
      !MonotonicRange(sec[kSecInEdgeRange], n + 1, e)) {
    return fail("snapshot: adjacency offsets not monotonic");
  }
  size_t out_nbrs = sec[kSecOutNbrs].RowCount<NodeId>();
  size_t in_nbrs = sec[kSecInNbrs].RowCount<NodeId>();
  if (out_nbrs != e || in_nbrs != e) {
    return fail("snapshot: label-partitioned adjacency size mismatch");
  }
  if (!sec[kSecOutSlices].RowAligned<Graph::LabelSlice>() ||
      !sec[kSecInSlices].RowAligned<Graph::LabelSlice>()) {
    return fail("snapshot: ragged label slice section");
  }
  size_t out_slices = sec[kSecOutSlices].RowCount<Graph::LabelSlice>();
  size_t in_slices = sec[kSecInSlices].RowCount<Graph::LabelSlice>();
  if (!MonotonicRange(sec[kSecOutSliceRange], n + 1, out_slices) ||
      !MonotonicRange(sec[kSecInSliceRange], n + 1, in_slices)) {
    return fail("snapshot: label slice offsets not monotonic");
  }
  auto slices_ok = [](const Region& r, size_t nbr_count) {
    const auto* rows = r.Rows<Graph::LabelSlice>();
    size_t count = r.RowCount<Graph::LabelSlice>();
    for (size_t i = 0; i < count; ++i) {
      if (rows[i].begin > rows[i].end || rows[i].end > nbr_count) {
        return false;
      }
    }
    return true;
  };
  if (!slices_ok(sec[kSecOutSlices], out_nbrs) ||
      !slices_ok(sec[kSecInSlices], in_nbrs)) {
    return fail("snapshot: label slice out of bounds");
  }
  if (!sec[kSecBucketNodes].RowAligned<NodeId>() ||
      sec[kSecBucketNodes].RowCount<NodeId>() != n) {
    return fail("snapshot: label bucket column size mismatch");
  }
  size_t bucket_offsets = sec[kSecBucketRange].RowCount<uint64_t>();
  if (bucket_offsets == 0 ||
      !MonotonicRange(sec[kSecBucketRange], bucket_offsets, n)) {
    return fail("snapshot: label bucket offsets not monotonic");
  }
  if (!sec[kSecAttrRanges].RowAligned<AttrRange>()) {
    return fail("snapshot: ragged attribute range section");
  }
  if (!sec[kSecAttrEntries].RowAligned<SnapAttrEntry>()) {
    return fail("snapshot: ragged attribute column");
  }
  size_t attr_rows = sec[kSecAttrEntries].RowCount<SnapAttrEntry>();
  if (!MonotonicRange(sec[kSecAttrEntryRange], n + 1, attr_rows)) {
    return fail("snapshot: attribute offsets not monotonic");
  }

  // Materialize attribute values (strings decode from the pool).
  const Region& spool = sec[kSecStringPool];
  const auto* attr_src = sec[kSecAttrEntries].Rows<SnapAttrEntry>();
  std::vector<AttrEntry> attr_pool;
  attr_pool.reserve(attr_rows);
  for (size_t i = 0; i < attr_rows; ++i) {
    const SnapAttrEntry& row = attr_src[i];
    AttrEntry entry;
    entry.attr = row.attr;
    switch (row.kind) {
      case kSnapValueInt:
        entry.value = Value(static_cast<int64_t>(row.payload));
        break;
      case kSnapValueDouble:
        entry.value = Value(std::bit_cast<double>(row.payload));
        break;
      case kSnapValueString: {
        uint64_t off = row.payload >> 32;
        uint64_t len = row.payload & UINT32_MAX;
        if (off + len > spool.bytes) {
          return fail("snapshot: attribute string out of pool");
        }
        entry.value = Value(std::string(
            reinterpret_cast<const char*>(spool.data) + off, len));
        break;
      }
      default:
        return fail("snapshot: unknown attribute value kind " +
                    std::to_string(row.kind));
    }
    attr_pool.push_back(std::move(entry));
  }

  if (!LoadDictionary(sec[kSecNodeLabelDict], spool, &g.node_labels_, error,
                      "node labels") ||
      !LoadDictionary(sec[kSecEdgeLabelDict], spool, &g.edge_labels_, error,
                      "edge labels") ||
      !LoadDictionary(sec[kSecAttrNameDict], spool, &g.attr_names_, error,
                      "attribute names")) {
    return nullptr;
  }

  g.node_label_.Borrow(sec[kSecNodeLabels].Rows<SymbolId>(), n);
  g.out_pool_.Borrow(sec[kSecOutEdges].Rows<HalfEdge>(), e);
  g.in_pool_.Borrow(sec[kSecInEdges].Rows<HalfEdge>(), e);
  g.out_range_.Borrow(sec[kSecOutEdgeRange].Rows<uint64_t>(), n + 1);
  g.in_range_.Borrow(sec[kSecInEdgeRange].Rows<uint64_t>(), n + 1);
  g.out_nbrs_.Borrow(sec[kSecOutNbrs].Rows<NodeId>(), out_nbrs);
  g.in_nbrs_.Borrow(sec[kSecInNbrs].Rows<NodeId>(), in_nbrs);
  g.out_slices_.Borrow(sec[kSecOutSlices].Rows<Graph::LabelSlice>(),
                       out_slices);
  g.in_slices_.Borrow(sec[kSecInSlices].Rows<Graph::LabelSlice>(), in_slices);
  g.out_slice_range_.Borrow(sec[kSecOutSliceRange].Rows<uint64_t>(), n + 1);
  g.in_slice_range_.Borrow(sec[kSecInSliceRange].Rows<uint64_t>(), n + 1);
  g.bucket_nodes_.Borrow(sec[kSecBucketNodes].Rows<NodeId>(), n);
  g.bucket_range_.Borrow(sec[kSecBucketRange].Rows<uint64_t>(),
                         bucket_offsets);
  g.attr_ranges_.Borrow(sec[kSecAttrRanges].Rows<AttrRange>(),
                        sec[kSecAttrRanges].RowCount<AttrRange>());
  g.attr_pool_ =
      std::make_shared<const std::vector<AttrEntry>>(std::move(attr_pool));
  g.attr_range_.Borrow(sec[kSecAttrEntryRange].Rows<uint64_t>(), n + 1);
  g.edge_count_ = e;
  // Snapshot-backed graphs are frozen: most columns alias the PROT_READ
  // mapping, so ApplyUpdate must refuse them (UpdateStatus::kFrozen) rather
  // than fault. Identity is the content fingerprint — two loads of the same
  // image are the same logical graph and may share cached prepared queries.
  g.identity_ = hdr->fingerprint;
  g.generation_ = 0;
  g.frozen_ = true;
  snap->fingerprint_ = hdr->fingerprint;
  return snap;
}

}  // namespace whyq
