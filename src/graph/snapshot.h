#ifndef WHYQ_GRAPH_SNAPSHOT_H_
#define WHYQ_GRAPH_SNAPSHOT_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "graph/graph.h"

// Frozen graph snapshot: Graph::Build() output serialized into one
// relocatable, mmap-able image. The full byte-level contract lives in
// docs/SNAPSHOT_FORMAT.md; this header is the single source of truth for
// every constant of the format (whyq-lint rule "snapshot-limits" forbids
// numeric limits anywhere else in the snapshot layer), and the struct
// declarations below are what the documentation's field tables are checked
// against (tools/check_docs.sh).

namespace whyq {

/// Format constants. Bump kSnapshotVersion on ANY layout change — the
/// loader rejects images whose version, header size, or section count do
/// not match exactly (no in-place migration; rebuild with `whyq_cli
/// snapshot build`).
inline constexpr char kSnapshotMagic[8] = {'W', 'H', 'Y', 'Q',
                                           'S', 'N', 'P', '1'};
inline constexpr uint32_t kSnapshotVersion = 1;
// Written as the native-endian value 0x01020304; a loader on an
// opposite-endian host reads 0x04030201 and rejects the image.
inline constexpr uint32_t kSnapshotEndianCheck = 0x01020304;
// Every section payload starts on a 64-byte boundary (cache line; also a
// multiple of every row alignment used by the format). Padding bytes are
// written as zero, so images are deterministic byte-for-byte.
inline constexpr uint32_t kSnapshotSectionAlign = 64;
// Number of sections in a version-1 image (one per SnapSectionId).
inline constexpr uint32_t kSnapshotSectionCount = 20;
// FNV-1a 64-bit parameters, used both for the payload checksum and the
// logical graph fingerprint.
inline constexpr uint64_t kFnvOffsetBasis = 14695981039346656037ull;
inline constexpr uint64_t kFnvPrime = 1099511628211ull;
// The payload checksum folds 64-bit little-endian words, striped
// round-robin across this many independent FNV-1a lanes (word i goes to
// lane i mod kSnapshotChecksumLanes). Striping breaks the multiply
// dependency chain so validating a cold image costs a fraction of a
// byte-serial pass — the cold-start budget depends on it. Each covered
// region (header prefix, section table, then every section payload in id
// order) is folded independently, zero-padding its final partial word;
// the final digest byte-hashes the lane accumulators in lane order.
inline constexpr uint32_t kSnapshotChecksumLanes = 4;

/// Fixed 64-byte file header (at offset 0).
struct SnapHeader {
  char magic[8];          // kSnapshotMagic
  uint32_t version;       // kSnapshotVersion
  uint32_t endian_check;  // kSnapshotEndianCheck, native byte order
  uint32_t header_bytes;  // sizeof(SnapHeader)
  uint32_t section_count; // kSnapshotSectionCount
  uint64_t file_bytes;    // total image size, including padding
  uint64_t node_count;    // |V|
  uint64_t edge_count;    // |E| (after duplicate collapse)
  uint64_t fingerprint;   // logical graph fingerprint (GraphFingerprint)
  uint64_t payload_hash;  // striped word-FNV over header prefix + table +
                          // payloads (see kSnapshotChecksumLanes)
};
static_assert(sizeof(SnapHeader) == kSnapshotSectionAlign,
              "header must stay one aligned block");

/// Section ids, in file order. The section table (directly after the
/// header) has exactly one entry per id, ascending.
enum SnapSectionId : uint32_t {
  kSecNodeLabels = 0,     // SymbolId x node_count
  kSecOutEdges = 1,       // HalfEdge x edge_count
  kSecInEdges = 2,        // HalfEdge x edge_count
  kSecOutEdgeRange = 3,   // uint64_t x (node_count + 1)
  kSecInEdgeRange = 4,    // uint64_t x (node_count + 1)
  kSecOutNbrs = 5,        // NodeId x edge_count (label-partitioned)
  kSecInNbrs = 6,         // NodeId x edge_count
  kSecOutSlices = 7,      // Graph::LabelSlice rows
  kSecInSlices = 8,       // Graph::LabelSlice rows
  kSecOutSliceRange = 9,  // uint64_t x (node_count + 1)
  kSecInSliceRange = 10,  // uint64_t x (node_count + 1)
  kSecBucketNodes = 11,   // NodeId x node_count (label buckets)
  kSecBucketRange = 12,   // uint64_t x (label_space + 1)
  kSecAttrRanges = 13,    // AttrRange x attr_space
  kSecAttrEntries = 14,   // SnapAttrEntry rows (interned attribute column)
  kSecAttrEntryRange = 15,  // uint64_t x (node_count + 1)
  kSecStringPool = 16,    // raw bytes (names + string attribute values)
  kSecNodeLabelDict = 17, // SnapStringRef x |node label dictionary|
  kSecEdgeLabelDict = 18, // SnapStringRef x |edge label dictionary|
  kSecAttrNameDict = 19,  // SnapStringRef x |attribute name dictionary|
};

/// One entry of the section table.
struct SnapSection {
  uint32_t id;        // SnapSectionId
  uint32_t reserved;  // written as zero
  uint64_t offset;    // from file start; kSnapshotSectionAlign-aligned
  uint64_t bytes;     // payload size (padding to the next section excluded)
};

/// One interned attribute entry (section kSecAttrEntries). The in-memory
/// AttrEntry holds a Value variant; on disk the value is a tagged 8-byte
/// payload, with strings interned into the string pool.
struct SnapAttrEntry {
  SymbolId attr;     // attribute name id
  uint32_t kind;     // SnapValueKind
  uint64_t payload;  // int64/double bits, or (offset << 32) | bytes
};

enum SnapValueKind : uint32_t {
  kSnapValueInt = 0,     // payload: int64_t bit pattern
  kSnapValueDouble = 1,  // payload: IEEE-754 double bit pattern
  kSnapValueString = 2,  // payload: string-pool (offset << 32) | bytes
};

/// One string-pool reference (dictionary sections): `offset`/`bytes` locate
/// the name inside kSecStringPool.
struct SnapStringRef {
  uint32_t offset;
  uint32_t bytes;
};

/// Logical content fingerprint of a built graph: FNV-1a over a canonical
/// serialization of nodes, labels, attribute tuples, edges, and symbol
/// tables, computed through the public Graph API only — so a heap-built
/// graph and a snapshot-backed one with equal content hash equal, and the
/// hash can validate prepared artifacts against the graph they were
/// compiled for.
uint64_t GraphFingerprint(const Graph& g);

/// A graph served directly out of an mmap'ed snapshot image. The POD
/// columns of the embedded Graph borrow the mapped bytes (read-only,
/// MAP_PRIVATE — one physical copy shared across processes); attribute
/// values and symbol tables are materialized at load. Keep the snapshot
/// alive as long as any reference to graph() is in use (the service wraps
/// it in an aliasing shared_ptr).
class GraphSnapshot {
 public:
  /// Summary of an image, readable without mapping the payload.
  struct Info {
    uint32_t version = 0;
    uint64_t file_bytes = 0;
    uint64_t node_count = 0;
    uint64_t edge_count = 0;
    uint64_t fingerprint = 0;
    uint64_t payload_hash = 0;
    std::vector<SnapSection> sections;
  };

  ~GraphSnapshot();

  GraphSnapshot(const GraphSnapshot&) = delete;
  GraphSnapshot& operator=(const GraphSnapshot&) = delete;

  /// Serializes `g` into `path` (atomic: written to a temp file, then
  /// renamed). Returns false with `*error` set on I/O failure.
  static bool Write(const Graph& g, const std::string& path,
                    std::string* error);

  /// Maps `path` read-only and validates header, section table, checksum,
  /// and structural invariants before exposing the graph. Returns null
  /// with `*error` set on any validation failure.
  static std::unique_ptr<GraphSnapshot> Load(const std::string& path,
                                             std::string* error);

  /// Reads header + section table only (no payload validation).
  static bool ReadInfo(const std::string& path, Info* out,
                       std::string* error);

  const Graph& graph() const { return graph_; }
  uint64_t fingerprint() const { return fingerprint_; }
  size_t mapped_bytes() const { return map_bytes_; }

 private:
  GraphSnapshot() = default;

  Graph graph_;
  uint64_t fingerprint_ = 0;
  void* map_ = nullptr;
  size_t map_bytes_ = 0;
};

}  // namespace whyq

#endif  // WHYQ_GRAPH_SNAPSHOT_H_
