#include "graph/update.h"

#include <algorithm>
#include <map>
#include <set>
#include <sstream>
#include <utility>

#include "common/check.h"

namespace whyq {

namespace {

using graph_internal::FoldAttrRange;
using graph_internal::HalfEdgeLess;
using graph_internal::PartitionAdjacency;

/// Inserts `he` into an (other, label)-sorted run; false if already present.
bool InsertEdgeSorted(std::vector<HalfEdge>& adj, HalfEdge he) {
  auto it = std::lower_bound(adj.begin(), adj.end(), he, HalfEdgeLess);
  if (it != adj.end() && *it == he) return false;
  adj.insert(it, he);
  return true;
}

/// Erases `he` from an (other, label)-sorted run; false if absent.
bool EraseEdgeSorted(std::vector<HalfEdge>& adj, HalfEdge he) {
  auto it = std::lower_bound(adj.begin(), adj.end(), he, HalfEdgeLess);
  if (it == adj.end() || !(*it == he)) return false;
  adj.erase(it);
  return true;
}

/// Any symbol common to two sorted unique id lists?
bool AnyCommonSymbol(const std::vector<SymbolId>& a,
                     const std::vector<SymbolId>& b) {
  size_t i = 0;
  size_t j = 0;
  while (i < a.size() && j < b.size()) {
    if (a[i] < b[j]) {
      ++i;
    } else if (b[j] < a[i]) {
      ++j;
    } else {
      return true;
    }
  }
  return false;
}

std::vector<SymbolId> SortedIds(const std::set<SymbolId>& ids) {
  return std::vector<SymbolId>(ids.begin(), ids.end());
}

}  // namespace

UpdateOp UpdateOp::AddNode(std::string_view label) {
  UpdateOp op;
  op.kind = kAddNode;
  op.name = std::string(label);
  return op;
}

UpdateOp UpdateOp::DeleteNode(NodeId v) {
  UpdateOp op;
  op.kind = kDeleteNode;
  op.node = v;
  return op;
}

UpdateOp UpdateOp::AddEdge(NodeId u, NodeId v, std::string_view label) {
  UpdateOp op;
  op.kind = kAddEdge;
  op.node = u;
  op.other = v;
  op.name = std::string(label);
  return op;
}

UpdateOp UpdateOp::DeleteEdge(NodeId u, NodeId v, std::string_view label) {
  UpdateOp op;
  op.kind = kDeleteEdge;
  op.node = u;
  op.other = v;
  op.name = std::string(label);
  return op;
}

UpdateOp UpdateOp::SetAttr(NodeId v, std::string_view attr, Value value) {
  UpdateOp op;
  op.kind = kSetAttr;
  op.node = v;
  op.name = std::string(attr);
  op.value = std::move(value);
  return op;
}

UpdateOp UpdateOp::DelAttr(NodeId v, std::string_view attr) {
  UpdateOp op;
  op.kind = kDelAttr;
  op.node = v;
  op.name = std::string(attr);
  return op;
}

const char* UpdateStatusName(UpdateStatus s) {
  switch (s) {
    case UpdateStatus::kOk:
      return "ok";
    case UpdateStatus::kFrozen:
      return "frozen";
    case UpdateStatus::kNoSuchNode:
      return "no-such-node";
    case UpdateStatus::kNoSuchEdge:
      return "no-such-edge";
    case UpdateStatus::kNoSuchAttr:
      return "no-such-attr";
    case UpdateStatus::kBadOp:
      return "bad-op";
  }
  return "unknown";
}

std::string UpdateDelta::ToString() const {
  std::ostringstream os;
  os << "+" << nodes_added << "/-" << nodes_deleted << " nodes, "
     << "+" << edges_added << "/-" << edges_deleted << " edges, "
     << "+" << attrs_set << "/-" << attrs_deleted << " attrs"
     << " (labels touched: " << node_labels.size() << " node, "
     << edge_labels.size() << " edge, " << attrs.size() << " attr)";
  return os.str();
}

bool SymbolFootprint::Intersects(const UpdateDelta& delta) const {
  return AnyCommonSymbol(node_labels, delta.node_labels) ||
         AnyCommonSymbol(edge_labels, delta.edge_labels) ||
         AnyCommonSymbol(attrs, delta.attrs);
}

/// Stages one batch against a base graph, then materializes the next epoch
/// either incrementally (touched columns rebuilt, untouched ones shared
/// copy-on-write) or through a full GraphBuilder rebuild. Both materializers
/// read the same staged logical state, so op semantics and validation cannot
/// diverge between them — the equivalence suite then pins that their OUTPUT
/// (snapshot bytes, fingerprints, answers) is identical too.
class GraphUpdater {
 public:
  explicit GraphUpdater(const Graph& g)
      : g_(g),
        n0_(g.node_count()),
        node_labels_(g.node_labels()),
        edge_labels_(g.edge_labels()),
        attr_names_(g.attr_names()) {
    if (auto tomb = node_labels_.Find(kTombstoneLabel)) tomb_ = *tomb;
  }

  bool Stage(const UpdateBatch& batch, UpdateResult* result);
  void MaterializeIncremental(Graph* out);
  void MaterializeByRebuild(Graph* out);

 private:
  // Per-attribute domain-range maintenance plan. A batch that only ADDS
  // numeric values to an attribute extends the existing range in O(adds);
  // anything else (overwrite, delete, string add, tombstone clear) forces a
  // rescan of the attribute's final values in node-id order, because the
  // Build() fold is order-dependent for mixed string/numeric domains.
  struct RangePlan {
    bool rescan = false;
    std::vector<Value> added;  // numeric values, fold-extended when !rescan
  };

  size_t NewCount() const { return new_labels_.size(); }
  size_t FinalCount() const { return n0_ + new_labels_.size(); }

  SymbolId FinalLabel(NodeId v) const {
    if (v >= n0_) return new_labels_[v - n0_];
    auto it = relabel_.find(v);
    return it != relabel_.end() ? it->second : g_.label(v);
  }
  bool Tombstoned(NodeId v) const {
    return tomb_ != kInvalidSymbol && FinalLabel(v) == tomb_;
  }
  bool ValidLiveNode(NodeId v) const { return v < FinalCount() && !Tombstoned(v); }

  // Lazy adjacency / attribute overlays: first touch copies the base run.
  std::vector<HalfEdge>& TouchOut(NodeId v) {
    auto it = out_over_.find(v);
    if (it == out_over_.end()) {
      EdgeSpan s = g_.out_edges(v);
      it = out_over_.emplace(v, std::vector<HalfEdge>(s.begin(), s.end())).first;
    }
    return it->second;
  }
  std::vector<HalfEdge>& TouchIn(NodeId v) {
    auto it = in_over_.find(v);
    if (it == in_over_.end()) {
      EdgeSpan s = g_.in_edges(v);
      it = in_over_.emplace(v, std::vector<HalfEdge>(s.begin(), s.end())).first;
    }
    return it->second;
  }
  std::vector<AttrEntry>& TouchAttrs(NodeId v) {
    auto it = attr_over_.find(v);
    if (it == attr_over_.end()) {
      AttrSpan s = g_.attrs(v);
      it = attr_over_.emplace(v, std::vector<AttrEntry>(s.begin(), s.end()))
               .first;
    }
    return it->second;
  }

  // Current (mid-batch) views, overlay-or-base.
  EdgeSpan CurOut(NodeId v) const {
    auto it = out_over_.find(v);
    if (it != out_over_.end()) return EdgeSpan(it->second.data(), it->second.size());
    return g_.out_edges(v);
  }
  EdgeSpan CurIn(NodeId v) const {
    auto it = in_over_.find(v);
    if (it != in_over_.end()) return EdgeSpan(it->second.data(), it->second.size());
    return g_.in_edges(v);
  }
  AttrSpan CurAttrs(NodeId v) const {
    auto it = attr_over_.find(v);
    if (it != attr_over_.end()) return AttrSpan(it->second.data(), it->second.size());
    return g_.attrs(v);
  }
  bool CurHasEdge(NodeId u, NodeId v, SymbolId label) const {
    EdgeSpan adj = CurOut(u);
    HalfEdge probe{v, label};
    return std::binary_search(adj.begin(), adj.end(), probe, HalfEdgeLess);
  }
  const Value* CurAttr(NodeId v, SymbolId attr) const {
    AttrSpan tuple = CurAttrs(v);
    auto it = std::lower_bound(
        tuple.begin(), tuple.end(), attr,
        [](const AttrEntry& e, SymbolId a) { return e.attr < a; });
    if (it == tuple.end() || it->attr != attr) return nullptr;
    return &it->value;
  }

  void NoteRemovedEdge(SymbolId label) {
    d_edge_labels_.insert(label);
    ++delta_.edges_deleted;
    edges_changed_ = true;
  }

  bool Fail(UpdateResult* result, UpdateStatus status, size_t op_index,
            const std::string& msg) {
    result->status = status;
    result->failed_op = op_index;
    result->error = "op " + std::to_string(op_index) + ": " + msg;
    return false;
  }

  const Graph& g_;
  const size_t n0_;

  // Dictionaries evolve as the batch interns new symbols, in op order — the
  // rebuild path is handed the same tables, so ids match across paths.
  Dictionary node_labels_;
  Dictionary edge_labels_;
  Dictionary attr_names_;
  SymbolId tomb_ = kInvalidSymbol;

  std::vector<SymbolId> new_labels_;        // labels of nodes >= n0_
  std::map<NodeId, SymbolId> relabel_;      // tombstoned pre-existing nodes
  std::map<NodeId, std::vector<HalfEdge>> out_over_;
  std::map<NodeId, std::vector<HalfEdge>> in_over_;
  std::map<NodeId, std::vector<AttrEntry>> attr_over_;
  std::map<SymbolId, RangePlan> range_plan_;

  bool edges_changed_ = false;
  bool attrs_changed_ = false;

  UpdateDelta delta_;
  std::set<SymbolId> d_node_labels_;
  std::set<SymbolId> d_edge_labels_;
  std::set<SymbolId> d_attrs_;
};

bool GraphUpdater::Stage(const UpdateBatch& batch, UpdateResult* result) {
  if (g_.frozen()) {
    result->status = UpdateStatus::kFrozen;
    result->failed_op = 0;
    result->error =
        "graph is frozen (snapshot-backed, columns alias the read-only "
        "mapped image); re-load it from text form to update";
    return false;
  }

  for (size_t i = 0; i < batch.ops.size(); ++i) {
    const UpdateOp& op = batch.ops[i];
    switch (op.kind) {
      case UpdateOp::kAddNode: {
        if (op.name.empty()) {
          return Fail(result, UpdateStatus::kBadOp, i, "empty node label");
        }
        if (op.name == kTombstoneLabel) {
          return Fail(result, UpdateStatus::kBadOp, i,
                      "label '" + std::string(kTombstoneLabel) +
                          "' is reserved for deleted nodes");
        }
        SymbolId l = node_labels_.Intern(op.name);
        NodeId id = static_cast<NodeId>(FinalCount());
        new_labels_.push_back(l);
        out_over_[id];
        in_over_[id];
        attr_over_[id];
        d_node_labels_.insert(l);
        ++delta_.nodes_added;
        break;
      }
      case UpdateOp::kDeleteNode: {
        NodeId v = op.node;
        if (v >= FinalCount() || Tombstoned(v)) {
          return Fail(result, UpdateStatus::kNoSuchNode, i,
                      "delete of invalid or already-deleted node " +
                          std::to_string(v));
        }
        if (tomb_ == kInvalidSymbol) tomb_ = node_labels_.Intern(kTombstoneLabel);

        // Cascade: remove every incident edge, then clear the tuple. Out
        // edges first (this also consumes self-loops from the in list), then
        // whatever remains inbound.
        std::vector<HalfEdge> outs(CurOut(v).begin(), CurOut(v).end());
        for (const HalfEdge& he : outs) {
          WHYQ_CHECK(EraseEdgeSorted(TouchIn(he.other), HalfEdge{v, he.label}));
          NoteRemovedEdge(he.label);
        }
        TouchOut(v).clear();
        std::vector<HalfEdge> ins(CurIn(v).begin(), CurIn(v).end());
        for (const HalfEdge& he : ins) {
          WHYQ_CHECK(EraseEdgeSorted(TouchOut(he.other), HalfEdge{v, he.label}));
          NoteRemovedEdge(he.label);
        }
        TouchIn(v).clear();

        for (const AttrEntry& e : CurAttrs(v)) {
          range_plan_[e.attr].rescan = true;
          d_attrs_.insert(e.attr);
          ++delta_.attrs_deleted;
          attrs_changed_ = true;
        }
        TouchAttrs(v).clear();

        SymbolId old_label = FinalLabel(v);
        if (v >= n0_) {
          new_labels_[v - n0_] = tomb_;
        } else {
          relabel_[v] = tomb_;
        }
        d_node_labels_.insert(old_label);
        d_node_labels_.insert(tomb_);
        ++delta_.nodes_deleted;
        break;
      }
      case UpdateOp::kAddEdge: {
        if (op.name.empty()) {
          return Fail(result, UpdateStatus::kBadOp, i, "empty edge label");
        }
        if (!ValidLiveNode(op.node) || !ValidLiveNode(op.other)) {
          return Fail(result, UpdateStatus::kNoSuchNode, i,
                      "edge endpoint invalid or deleted (" +
                          std::to_string(op.node) + " -> " +
                          std::to_string(op.other) + ")");
        }
        SymbolId l = edge_labels_.Intern(op.name);
        if (CurHasEdge(op.node, op.other, l)) break;  // duplicate: no-op
        WHYQ_CHECK(InsertEdgeSorted(TouchOut(op.node), HalfEdge{op.other, l}));
        WHYQ_CHECK(InsertEdgeSorted(TouchIn(op.other), HalfEdge{op.node, l}));
        d_edge_labels_.insert(l);
        ++delta_.edges_added;
        edges_changed_ = true;
        break;
      }
      case UpdateOp::kDeleteEdge: {
        if (!ValidLiveNode(op.node) || !ValidLiveNode(op.other)) {
          return Fail(result, UpdateStatus::kNoSuchNode, i,
                      "edge endpoint invalid or deleted (" +
                          std::to_string(op.node) + " -> " +
                          std::to_string(op.other) + ")");
        }
        std::optional<SymbolId> l = edge_labels_.Find(op.name);
        if (!l || !CurHasEdge(op.node, op.other, *l)) {
          return Fail(result, UpdateStatus::kNoSuchEdge, i,
                      "edge " + std::to_string(op.node) + " -[" + op.name +
                          "]-> " + std::to_string(op.other) +
                          " does not exist");
        }
        WHYQ_CHECK(EraseEdgeSorted(TouchOut(op.node), HalfEdge{op.other, *l}));
        WHYQ_CHECK(EraseEdgeSorted(TouchIn(op.other), HalfEdge{op.node, *l}));
        NoteRemovedEdge(*l);
        break;
      }
      case UpdateOp::kSetAttr: {
        if (op.name.empty()) {
          return Fail(result, UpdateStatus::kBadOp, i, "empty attribute name");
        }
        if (!ValidLiveNode(op.node)) {
          return Fail(result, UpdateStatus::kNoSuchNode, i,
                      "set-attr on invalid or deleted node " +
                          std::to_string(op.node));
        }
        SymbolId a = attr_names_.Intern(op.name);
        RangePlan& plan = range_plan_[a];
        std::vector<AttrEntry>& tuple = TouchAttrs(op.node);
        auto it = std::lower_bound(
            tuple.begin(), tuple.end(), a,
            [](const AttrEntry& e, SymbolId id) { return e.attr < id; });
        if (it != tuple.end() && it->attr == a) {
          it->value = op.value;  // overwrite: old value leaves the domain
          plan.rescan = true;
        } else {
          tuple.insert(it, AttrEntry{a, op.value});
          // A pure numeric add extends the range in O(1); a string add can
          // flip the domain non-numeric at this node's position, which is
          // order-dependent — rescan.
          if (op.value.is_numeric() && !plan.rescan) {
            plan.added.push_back(op.value);
          } else {
            plan.rescan = true;
          }
        }
        d_attrs_.insert(a);
        ++delta_.attrs_set;
        attrs_changed_ = true;
        break;
      }
      case UpdateOp::kDelAttr: {
        if (!ValidLiveNode(op.node)) {
          return Fail(result, UpdateStatus::kNoSuchNode, i,
                      "del-attr on invalid or deleted node " +
                          std::to_string(op.node));
        }
        std::optional<SymbolId> a = attr_names_.Find(op.name);
        if (!a || CurAttr(op.node, *a) == nullptr) {
          return Fail(result, UpdateStatus::kNoSuchAttr, i,
                      "node " + std::to_string(op.node) +
                          " does not carry attribute '" + op.name + "'");
        }
        std::vector<AttrEntry>& tuple = TouchAttrs(op.node);
        auto it = std::lower_bound(
            tuple.begin(), tuple.end(), *a,
            [](const AttrEntry& e, SymbolId id) { return e.attr < id; });
        tuple.erase(it);
        range_plan_[*a].rescan = true;
        d_attrs_.insert(*a);
        ++delta_.attrs_deleted;
        attrs_changed_ = true;
        break;
      }
    }
  }

  delta_.node_labels = SortedIds(d_node_labels_);
  delta_.edge_labels = SortedIds(d_edge_labels_);
  delta_.attrs = SortedIds(d_attrs_);
  result->status = UpdateStatus::kOk;
  result->error.clear();
  result->failed_op = 0;
  result->delta = delta_;
  return true;
}

void GraphUpdater::MaterializeIncremental(Graph* out) {
  const size_t n_new = FinalCount();
  Graph g;

  // --- Node labels -------------------------------------------------------
  if (relabel_.empty() && new_labels_.empty()) {
    g.node_label_.ShareFrom(g_.node_label_);
  } else {
    std::vector<SymbolId> labels(g_.node_label_.begin(), g_.node_label_.end());
    for (const auto& [v, l] : relabel_) labels[v] = l;
    labels.insert(labels.end(), new_labels_.begin(), new_labels_.end());
    g.node_label_.Own(std::move(labels));
  }

  // Extends an offsets column from n0_+1 to n_new+1 rows (new nodes carry
  // empty runs), or shares it outright when the node count is unchanged.
  auto extend_offsets = [&](Column<uint64_t>& dst, const Column<uint64_t>& src) {
    if (n_new == n0_) {
      dst.ShareFrom(src);
      return;
    }
    std::vector<uint64_t> offsets(src.begin(), src.end());
    offsets.resize(n_new + 1, offsets.back());
    dst.Own(std::move(offsets));
  };

  // --- Attribute tuples --------------------------------------------------
  if (!attrs_changed_) {
    g.attr_pool_ = g_.attr_pool_;
    extend_offsets(g.attr_range_, g_.attr_range_);
  } else {
    std::vector<AttrEntry> pool;
    std::vector<uint64_t> range(1, 0);
    for (NodeId v = 0; v < n_new; ++v) {
      AttrSpan tuple = CurAttrs(v);
      pool.insert(pool.end(), tuple.begin(), tuple.end());
      range.push_back(pool.size());
    }
    pool.shrink_to_fit();
    g.attr_pool_ =
        std::make_shared<const std::vector<AttrEntry>>(std::move(pool));
    g.attr_range_.Own(std::move(range));
  }

  // --- Adjacency (full + label-partitioned) ------------------------------
  if (!edges_changed_) {
    g.out_pool_.ShareFrom(g_.out_pool_);
    g.in_pool_.ShareFrom(g_.in_pool_);
    g.out_nbrs_.ShareFrom(g_.out_nbrs_);
    g.in_nbrs_.ShareFrom(g_.in_nbrs_);
    g.out_slices_.ShareFrom(g_.out_slices_);
    g.in_slices_.ShareFrom(g_.in_slices_);
    extend_offsets(g.out_range_, g_.out_range_);
    extend_offsets(g.in_range_, g_.in_range_);
    extend_offsets(g.out_slice_range_, g_.out_slice_range_);
    extend_offsets(g.in_slice_range_, g_.in_slice_range_);
  } else {
    // Splice: touched nodes re-partitioned from their overlay runs, every
    // untouched node's rows block-copied with slice offsets shifted. The
    // nbr window of node v coincides with its pool window (both append the
    // same per-node edge count in id order).
    std::vector<HalfEdge> scratch;
    auto splice = [&](const std::map<NodeId, std::vector<HalfEdge>>& over,
                      const Column<HalfEdge>& base_pool,
                      const Column<uint64_t>& base_range,
                      const Column<NodeId>& base_nbrs,
                      const Column<Graph::LabelSlice>& base_slices,
                      const Column<uint64_t>& base_slice_range,
                      Column<HalfEdge>& out_pool, Column<uint64_t>& out_range,
                      Column<NodeId>& out_nbrs,
                      Column<Graph::LabelSlice>& out_slices,
                      Column<uint64_t>& out_slice_range) {
      std::vector<HalfEdge> pool;
      std::vector<uint64_t> range(1, 0);
      std::vector<NodeId> nbrs;
      std::vector<Graph::LabelSlice> slices;
      std::vector<uint64_t> slice_range(1, 0);
      for (NodeId v = 0; v < n_new; ++v) {
        auto it = over.find(v);
        if (it == over.end()) {
          uint64_t b = base_range[v];
          uint64_t e = base_range[v + 1];
          pool.insert(pool.end(), base_pool.data() + b, base_pool.data() + e);
          // Untouched rows keep their relative layout; only the absolute
          // slice offsets shift by this node's new window start.
          int64_t shift = static_cast<int64_t>(nbrs.size()) -
                          static_cast<int64_t>(b);
          nbrs.insert(nbrs.end(), base_nbrs.data() + b, base_nbrs.data() + e);
          uint64_t sb = base_slice_range[v];
          uint64_t se = base_slice_range[v + 1];
          for (uint64_t s = sb; s < se; ++s) {
            Graph::LabelSlice row = base_slices[s];
            row.begin = static_cast<uint64_t>(
                static_cast<int64_t>(row.begin) + shift);
            row.end =
                static_cast<uint64_t>(static_cast<int64_t>(row.end) + shift);
            slices.push_back(row);
          }
        } else {
          const std::vector<HalfEdge>& adj = it->second;
          pool.insert(pool.end(), adj.begin(), adj.end());
          PartitionAdjacency(adj.data(), adj.size(), scratch, nbrs, slices);
        }
        range.push_back(pool.size());
        slice_range.push_back(slices.size());
      }
      out_pool.Own(std::move(pool));
      out_range.Own(std::move(range));
      out_nbrs.Own(std::move(nbrs));
      out_slices.Own(std::move(slices));
      out_slice_range.Own(std::move(slice_range));
    };
    splice(out_over_, g_.out_pool_, g_.out_range_, g_.out_nbrs_,
           g_.out_slices_, g_.out_slice_range_, g.out_pool_, g.out_range_,
           g.out_nbrs_, g.out_slices_, g.out_slice_range_);
    splice(in_over_, g_.in_pool_, g_.in_range_, g_.in_nbrs_, g_.in_slices_,
           g_.in_slice_range_, g.in_pool_, g.in_range_, g.in_nbrs_,
           g.in_slices_, g.in_slice_range_);
  }
  g.edge_count_ = g_.edge_count_ + delta_.edges_added - delta_.edges_deleted;

  // --- Label buckets -----------------------------------------------------
  if (relabel_.empty() && new_labels_.empty()) {
    g.bucket_nodes_.ShareFrom(g_.bucket_nodes_);
    g.bucket_range_.ShareFrom(g_.bucket_range_);
  } else {
    size_t label_space = node_labels_.size();
    for (NodeId v = 0; v < n_new; ++v) {
      label_space =
          std::max(label_space, static_cast<size_t>(FinalLabel(v)) + 1);
    }
    // Per-label membership deltas, both id-ascending: relabel_ and the new
    // node range are iterated in id order, and new ids exceed old ones.
    std::map<SymbolId, std::vector<NodeId>> removes;
    std::map<SymbolId, std::vector<NodeId>> adds;
    for (const auto& [v, l] : relabel_) {
      removes[g_.label(v)].push_back(v);
      adds[l].push_back(v);
    }
    for (size_t i = 0; i < new_labels_.size(); ++i) {
      adds[new_labels_[i]].push_back(static_cast<NodeId>(n0_ + i));
    }
    std::vector<NodeId> nodes;
    std::vector<uint64_t> range(1, 0);
    std::vector<NodeId> merged;
    size_t old_space = g_.bucket_range_.size() ? g_.bucket_range_.size() - 1 : 0;
    for (size_t l = 0; l < label_space; ++l) {
      NodeSpan base = l < old_space
                          ? NodeSpan(g_.bucket_nodes_.data() +
                                         g_.bucket_range_[l],
                                     g_.bucket_range_[l + 1] -
                                         g_.bucket_range_[l])
                          : NodeSpan();
      auto rit = removes.find(static_cast<SymbolId>(l));
      auto ait = adds.find(static_cast<SymbolId>(l));
      if (rit == removes.end() && ait == adds.end()) {
        nodes.insert(nodes.end(), base.begin(), base.end());
      } else {
        merged.clear();
        if (rit != removes.end()) {
          std::set_difference(base.begin(), base.end(), rit->second.begin(),
                              rit->second.end(), std::back_inserter(merged));
        } else {
          merged.assign(base.begin(), base.end());
        }
        size_t mid = nodes.size();
        nodes.insert(nodes.end(), merged.begin(), merged.end());
        if (ait != adds.end()) {
          size_t end = nodes.size();
          nodes.insert(nodes.end(), ait->second.begin(), ait->second.end());
          std::inplace_merge(nodes.begin() + mid, nodes.begin() + end,
                             nodes.end());
        }
      }
      range.push_back(nodes.size());
    }
    g.bucket_nodes_.Own(std::move(nodes));
    g.bucket_range_.Own(std::move(range));
  }

  // --- Attribute domain ranges -------------------------------------------
  if (range_plan_.empty()) {
    g.attr_ranges_.ShareFrom(g_.attr_ranges_);
  } else {
    std::vector<AttrRange> ranges(g_.attr_ranges_.begin(),
                                  g_.attr_ranges_.end());
    // The rebuild fold sizes the vector to the maximum attribute id present
    // in the final graph; match that (an update deleting the largest-id
    // attribute everywhere shrinks the column).
    size_t final_size = 0;
    for (NodeId v = 0; v < n_new; ++v) {
      for (const AttrEntry& e : CurAttrs(v)) {
        final_size = std::max(final_size, static_cast<size_t>(e.attr) + 1);
      }
    }
    ranges.resize(final_size);
    std::vector<bool> rescan(final_size, false);
    bool any_rescan = false;
    for (const auto& [a, plan] : range_plan_) {
      // The O(adds) extend is sound only onto an empty or still-numeric
      // base domain: folding a numeric value into a non-numeric domain is a
      // position-dependent no-op on min/max, so the rebuild fold (node-id
      // order) and an append-at-the-end extend would disagree.
      bool base_numeric_or_empty =
          static_cast<size_t>(a) >= g_.attr_ranges_.size() ||
          g_.attr_ranges_[a].count == 0 || g_.attr_ranges_[a].numeric != 0;
      if (plan.rescan || !base_numeric_or_empty) {
        if (static_cast<size_t>(a) < final_size) {
          ranges[a] = AttrRange{};
          rescan[a] = true;
          any_rescan = true;
        }
      } else {
        for (const Value& v : plan.added) FoldAttrRange(ranges, a, v);
      }
    }
    if (any_rescan) {
      // One pass over the final tuples in node-id order — the same order
      // (and therefore the same fold result) as a full rebuild.
      for (NodeId v = 0; v < n_new; ++v) {
        for (const AttrEntry& e : CurAttrs(v)) {
          if (rescan[e.attr]) FoldAttrRange(ranges, e.attr, e.value);
        }
      }
    }
    g.attr_ranges_.Own(std::move(ranges));
  }

  // --- Symbol tables & epoch stamp ---------------------------------------
  g.node_labels_ = std::move(node_labels_);
  g.edge_labels_ = std::move(edge_labels_);
  g.attr_names_ = std::move(attr_names_);
  g.identity_ = g_.identity_;
  g.generation_ = g_.generation_ + 1;
  g.frozen_ = false;
  *out = std::move(g);
}

void GraphUpdater::MaterializeByRebuild(Graph* out) {
  const size_t n_new = FinalCount();
  GraphBuilder b;
  b.node_labels() = node_labels_;
  b.edge_labels() = edge_labels_;
  b.attr_names() = attr_names_;
  for (NodeId v = 0; v < n_new; ++v) b.AddNodeById(FinalLabel(v));
  for (NodeId v = 0; v < n_new; ++v) {
    for (const AttrEntry& e : CurAttrs(v)) b.SetAttrById(v, e.attr, e.value);
    for (const HalfEdge& he : CurOut(v)) b.AddEdgeById(v, he.other, he.label);
  }
  Graph g = b.Build();
  g.identity_ = g_.identity_;
  g.generation_ = g_.generation_ + 1;
  g.frozen_ = false;
  *out = std::move(g);
}

bool Graph::ApplyUpdate(const UpdateBatch& batch, Graph* out,
                        UpdateResult* result) const {
  GraphUpdater updater(*this);
  if (!updater.Stage(batch, result)) return false;
  updater.MaterializeIncremental(out);
  return true;
}

bool ApplyUpdateByRebuild(const Graph& g, const UpdateBatch& batch, Graph* out,
                          UpdateResult* result) {
  GraphUpdater updater(g);
  if (!updater.Stage(batch, result)) return false;
  updater.MaterializeByRebuild(out);
  return true;
}

}  // namespace whyq
