#ifndef WHYQ_GRAPH_UPDATE_H_
#define WHYQ_GRAPH_UPDATE_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/value.h"
#include "graph/graph.h"

namespace whyq {

/// Reserved node label a deleted node is re-bucketed under. Node ids are
/// dense and stable across updates, so deletion is a tombstone: the node
/// keeps its id, loses its edges and attributes, and moves from its label's
/// bucket to the tombstone bucket — matchers never see it again because
/// candidate enumeration starts from label buckets and adjacency, both of
/// which no longer reach it.
inline constexpr std::string_view kTombstoneLabel = "__deleted__";

/// One mutation of a live graph. Ops in a batch apply sequentially: a node
/// added by op i may be referenced by ops > i (its id is node_count() at the
/// time of the add), and validation sees the graph as left by earlier ops.
struct UpdateOp {
  enum Kind : uint8_t {
    kAddNode = 0,   // name = node label; yields id node_count()+adds so far
    kDeleteNode,    // node; tombstones it (id stays allocated)
    kAddEdge,       // node -> other, name = edge label; duplicate is a no-op
    kDeleteEdge,    // node -> other, name = edge label; must exist
    kSetAttr,       // node, name = attribute, value; add or overwrite
    kDelAttr,       // node, name = attribute; must be present
  };

  Kind kind = kAddNode;
  NodeId node = kInvalidNode;   // subject node (unused for kAddNode)
  NodeId other = kInvalidNode;  // far edge endpoint (edge ops only)
  std::string name;             // label or attribute name (see Kind)
  Value value;                  // kSetAttr payload

  static UpdateOp AddNode(std::string_view label);
  static UpdateOp DeleteNode(NodeId v);
  static UpdateOp AddEdge(NodeId u, NodeId v, std::string_view label);
  static UpdateOp DeleteEdge(NodeId u, NodeId v, std::string_view label);
  static UpdateOp SetAttr(NodeId v, std::string_view attr, Value value);
  static UpdateOp DelAttr(NodeId v, std::string_view attr);
};

/// An ordered batch of mutations, applied atomically: either every op
/// validates and the whole batch becomes one new graph epoch, or nothing is
/// applied and the first bad op is reported.
struct UpdateBatch {
  std::vector<UpdateOp> ops;

  bool empty() const { return ops.empty(); }
  size_t size() const { return ops.size(); }
};

/// Typed ApplyUpdate outcome. Everything except kOk leaves the input graph
/// the only epoch; kFrozen is the snapshot-backed case (columns alias a
/// read-only mapping, so updating must go through a thawed copy instead).
enum class UpdateStatus : uint8_t {
  kOk = 0,
  kFrozen,      // graph borrows a PROT_READ snapshot image; not updatable
  kNoSuchNode,  // op references an out-of-range or tombstoned node
  kNoSuchEdge,  // delete of an edge that does not exist
  kNoSuchAttr,  // delete of an attribute the node does not carry
  kBadOp,       // malformed op (empty name, reserved tombstone label)
};

const char* UpdateStatusName(UpdateStatus s);

/// The (label, literal) footprint of one applied batch: every node label,
/// edge label, and attribute name whose derived structures (buckets,
/// adjacency slices, domain ranges) the batch touched. Sorted, unique.
/// Prepared-query cache invalidation intersects this with each entry's
/// SymbolFootprint — disjoint entries provably kept their answers.
struct UpdateDelta {
  std::vector<SymbolId> node_labels;
  std::vector<SymbolId> edge_labels;
  std::vector<SymbolId> attrs;

  size_t nodes_added = 0;
  size_t nodes_deleted = 0;
  size_t edges_added = 0;    // counts only edges that did not already exist
  size_t edges_deleted = 0;
  size_t attrs_set = 0;
  size_t attrs_deleted = 0;

  std::string ToString() const;
};

/// The symbol sets a prepared query's cached artifacts depend on: the query
/// pattern's node labels, edge labels, and literal attributes (all resolved
/// against the graph's dictionaries). Sound because every cached structure —
/// answer set, output candidates, PathIndex samples — is derived from label
/// buckets, labeled adjacency, and literal evaluation over exactly these
/// symbols; an update disjoint from them cannot change any of it.
struct SymbolFootprint {
  std::vector<SymbolId> node_labels;  // sorted, unique
  std::vector<SymbolId> edge_labels;
  std::vector<SymbolId> attrs;

  bool Intersects(const UpdateDelta& delta) const;
};

/// Outcome of one ApplyUpdate / ApplyUpdateByRebuild call.
struct UpdateResult {
  UpdateStatus status = UpdateStatus::kOk;
  std::string error;       // empty iff status == kOk
  size_t failed_op = 0;    // index of the rejected op (validation failures)
  UpdateDelta delta;       // populated iff status == kOk
};

/// Reference implementation of Graph::ApplyUpdate: identical op semantics
/// and validation (the two share one staging pass), but materializes the
/// next epoch through a full GraphBuilder rebuild instead of incremental
/// splices. The equivalence property the test suite pins: both paths yield
/// byte-identical snapshot images and fingerprints for every valid batch.
bool ApplyUpdateByRebuild(const Graph& g, const UpdateBatch& batch, Graph* out,
                          UpdateResult* result);

}  // namespace whyq

#endif  // WHYQ_GRAPH_UPDATE_H_
