#include "harness/experiment.h"

#include <algorithm>

#include "common/timer.h"

namespace whyq {

Workload MakeWorkload(const Graph& g, const WorkloadConfig& cfg) {
  Workload w;
  Rng rng(cfg.seed);
  size_t failures = 0;
  while (w.items.size() < cfg.items && failures < cfg.items * 8) {
    // Selective-label graphs may not support the requested literal density;
    // progressively loosen rather than return an empty workload.
    QueryGenConfig qcfg = cfg.query;
    if (failures >= cfg.items * 2) {
      qcfg.slack = std::max(qcfg.slack, 0.7);
    }
    if (failures >= cfg.items * 4) {
      qcfg.literals_per_node = std::min<size_t>(qcfg.literals_per_node, 1);
      qcfg.slack = std::max(qcfg.slack, 0.9);
    }
    if (failures >= cfg.items * 6) {
      qcfg.min_answers = std::min<size_t>(qcfg.min_answers, 4);
    }
    std::optional<GeneratedQuery> gq = GenerateQuery(g, qcfg, rng);
    if (!gq.has_value()) {
      ++failures;
      continue;
    }
    Workload::Item item;
    item.why = GenerateWhyQuestion(*gq, cfg.why_size, rng);
    std::optional<WhyNotQuestion> wn = GenerateWhyNotQuestion(
        g, *gq, cfg.whynot_size, cfg.constraint_literals, rng);
    if (item.why.unexpected.empty() || !wn.has_value() ||
        wn->missing.empty()) {
      ++failures;
      continue;
    }
    item.whynot = std::move(*wn);
    item.gq = std::move(*gq);
    w.items.push_back(std::move(item));
  }
  return w;
}

const char* WhyAlgoName(WhyAlgo a) {
  switch (a) {
    case WhyAlgo::kExact:
      return "ExactWhy";
    case WhyAlgo::kApprox:
      return "ApproxWhy";
    case WhyAlgo::kIso:
      return "IsoWhy";
  }
  return "?";
}

const char* WhyNotAlgoName(WhyNotAlgo a) {
  switch (a) {
    case WhyNotAlgo::kExact:
      return "ExactWhyNot";
    case WhyNotAlgo::kFast:
      return "FastWhyNot";
    case WhyNotAlgo::kIso:
      return "IsoWhyNot";
  }
  return "?";
}

std::vector<RunResult> RunWhyBatch(const Graph& g, const Workload& w,
                                   WhyAlgo algo, const AnswerConfig& cfg) {
  std::vector<RunResult> out;
  out.reserve(w.items.size());
  for (const Workload::Item& item : w.items) {
    Timer timer;
    RewriteAnswer ans;
    switch (algo) {
      case WhyAlgo::kExact:
        ans = ExactWhy(g, item.gq.query, item.gq.answers, item.why, cfg);
        break;
      case WhyAlgo::kApprox:
        ans = ApproxWhy(g, item.gq.query, item.gq.answers, item.why, cfg);
        break;
      case WhyAlgo::kIso:
        ans = IsoWhy(g, item.gq.query, item.gq.answers, item.why, cfg);
        break;
    }
    RunResult r;
    r.time_ms = timer.ElapsedMillis();
    r.closeness = ans.eval.closeness;
    r.cost = ans.cost;
    r.guard_ok = ans.eval.guard_ok;
    r.exhaustive = ans.exhaustive;
    r.picky_count = ans.picky_count;
    out.push_back(r);
  }
  return out;
}

std::vector<RunResult> RunWhyNotBatch(const Graph& g, const Workload& w,
                                      WhyNotAlgo algo,
                                      const AnswerConfig& cfg) {
  std::vector<RunResult> out;
  out.reserve(w.items.size());
  for (const Workload::Item& item : w.items) {
    Timer timer;
    RewriteAnswer ans;
    switch (algo) {
      case WhyNotAlgo::kExact:
        ans = ExactWhyNot(g, item.gq.query, item.gq.answers, item.whynot,
                          cfg);
        break;
      case WhyNotAlgo::kFast:
        ans = FastWhyNot(g, item.gq.query, item.gq.answers, item.whynot,
                         cfg);
        break;
      case WhyNotAlgo::kIso:
        ans = IsoWhyNot(g, item.gq.query, item.gq.answers, item.whynot,
                        cfg);
        break;
    }
    RunResult r;
    r.time_ms = timer.ElapsedMillis();
    r.closeness = ans.eval.closeness;
    r.cost = ans.cost;
    r.guard_ok = ans.eval.guard_ok;
    r.exhaustive = ans.exhaustive;
    r.picky_count = ans.picky_count;
    out.push_back(r);
  }
  return out;
}

Aggregate Summarize(const std::vector<RunResult>& results,
                    const std::vector<RunResult>* reference) {
  Aggregate a;
  a.n = results.size();
  if (results.empty()) return a;
  size_t exhaustive = 0;
  for (const RunResult& r : results) {
    a.avg_closeness += r.closeness;
    a.avg_time_ms += r.time_ms;
    a.avg_cost += r.cost;
    exhaustive += r.exhaustive ? 1 : 0;
  }
  a.exhaustive_fraction =
      static_cast<double>(exhaustive) / static_cast<double>(a.n);
  a.avg_closeness /= static_cast<double>(a.n);
  a.avg_time_ms /= static_cast<double>(a.n);
  a.avg_cost /= static_cast<double>(a.n);
  if (reference != nullptr && reference->size() == results.size()) {
    double num = 0.0;
    double den = 0.0;
    for (size_t i = 0; i < results.size(); ++i) {
      num += results[i].closeness;
      den += (*reference)[i].closeness;
    }
    a.ratio_to_ref = den > 0.0 ? num / den : 1.0;
  }
  return a;
}

}  // namespace whyq
