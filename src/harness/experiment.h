#ifndef WHYQ_HARNESS_EXPERIMENT_H_
#define WHYQ_HARNESS_EXPERIMENT_H_

#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "common/rng.h"
#include "gen/query_gen.h"
#include "gen/question_gen.h"
#include "graph/graph.h"
#include "why/question.h"
#include "why/why_algorithms.h"
#include "why/whynot_algorithms.h"

namespace whyq {

/// A reproducible batch of (query, Why question, Why-not question) items
/// over one graph — the unit all figure benches iterate on (the paper runs
/// batches of generated Why-questions and reports averages).
struct Workload {
  struct Item {
    GeneratedQuery gq;
    WhyQuestion why;
    WhyNotQuestion whynot;
  };
  std::vector<Item> items;
};

struct WorkloadConfig {
  size_t items = 10;
  QueryGenConfig query;
  size_t why_size = 3;             // |V_N|
  size_t whynot_size = 3;          // |V_C|
  size_t constraint_literals = 0;  // literals in C (paper: up to 2)
  uint64_t seed = 42;
};

/// Builds a workload; items that cannot be generated (no viable query or
/// question) are skipped, so the result may hold fewer than `items`.
Workload MakeWorkload(const Graph& g, const WorkloadConfig& cfg);

/// The algorithms under comparison, keyed for table output.
enum class WhyAlgo { kExact, kApprox, kIso };
enum class WhyNotAlgo { kExact, kFast, kIso };

const char* WhyAlgoName(WhyAlgo a);
const char* WhyNotAlgoName(WhyNotAlgo a);

/// Per-item measurement of one algorithm run.
struct RunResult {
  double closeness = 0.0;
  double time_ms = 0.0;
  double cost = 0.0;
  bool guard_ok = true;
  bool exhaustive = true;  // exact enumeration completed (exact algos only)
  size_t picky_count = 0;
};

std::vector<RunResult> RunWhyBatch(const Graph& g, const Workload& w,
                                   WhyAlgo algo, const AnswerConfig& cfg);
std::vector<RunResult> RunWhyNotBatch(const Graph& g, const Workload& w,
                                      WhyNotAlgo algo,
                                      const AnswerConfig& cfg);

/// Batch aggregate. `ratio_to_ref` compares item-wise closeness against a
/// reference batch (the exact algorithm), the paper's "fraction of optimal
/// closeness preserved".
struct Aggregate {
  size_t n = 0;
  double avg_closeness = 0.0;
  double avg_time_ms = 0.0;
  double avg_cost = 0.0;
  double ratio_to_ref = 1.0;
  double exhaustive_fraction = 1.0;
};

Aggregate Summarize(const std::vector<RunResult>& results,
                    const std::vector<RunResult>* reference = nullptr);

}  // namespace whyq

#endif  // WHYQ_HARNESS_EXPERIMENT_H_
