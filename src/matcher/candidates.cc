#include "matcher/candidates.h"

#include <algorithm>

#include "common/thread_pool.h"

namespace whyq {

namespace {

// Below this bucket size the per-chunk fork/join overhead outweighs the
// label+literal checks; measured crossover is a few thousand nodes.
constexpr size_t kParallelBucketCutoff = 4096;

}  // namespace

bool SatisfiesLiteral(const Graph& g, NodeId v, const Literal& l) {
  const Value* val = g.GetAttr(v, l.attr);
  if (val == nullptr) return false;
  return val->Satisfies(l.op, l.constant);
}

bool IsCandidate(const Graph& g, NodeId v, const QueryNode& qn) {
  if (g.label(v) != qn.label) return false;
  for (const Literal& l : qn.literals) {
    if (!SatisfiesLiteral(g, v, l)) return false;
  }
  return true;
}

std::vector<NodeId> Candidates(const Graph& g, const Query& q, QNodeId u) {
  std::vector<NodeId> out;
  const QueryNode& qn = q.node(u);
  for (NodeId v : g.NodesWithLabel(qn.label)) {
    if (IsCandidate(g, v, qn)) out.push_back(v);
  }
  return out;
}

std::vector<NodeId> Candidates(const Graph& g, const Query& q, QNodeId u,
                               size_t threads) {
  const QueryNode& qn = q.node(u);
  NodeSpan bucket = g.NodesWithLabel(qn.label);
  const size_t width = ResolveParallelWidth(threads);
  if (width <= 1 || bucket.size() < kParallelBucketCutoff) {
    return Candidates(g, q, u);
  }
  // Chunked filter + in-order concatenation preserves the serial output.
  const size_t chunks = width * 4;
  const size_t chunk_len = (bucket.size() + chunks - 1) / chunks;
  std::vector<std::vector<NodeId>> parts(chunks);
  ThreadPool::Shared().ParallelFor(chunks, width, [&](size_t c, size_t) {
    size_t begin = c * chunk_len;
    size_t end = std::min(bucket.size(), begin + chunk_len);
    for (size_t i = begin; i < end; ++i) {
      if (IsCandidate(g, bucket[i], qn)) parts[c].push_back(bucket[i]);
    }
  });
  std::vector<NodeId> out;
  for (const std::vector<NodeId>& p : parts) {
    out.insert(out.end(), p.begin(), p.end());
  }
  return out;
}

size_t CountCandidates(const Graph& g, const Query& q, QNodeId u) {
  size_t n = 0;
  const QueryNode& qn = q.node(u);
  for (NodeId v : g.NodesWithLabel(qn.label)) {
    if (IsCandidate(g, v, qn)) ++n;
  }
  return n;
}

}  // namespace whyq
