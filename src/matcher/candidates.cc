#include "matcher/candidates.h"

namespace whyq {

bool SatisfiesLiteral(const Graph& g, NodeId v, const Literal& l) {
  const Value* val = g.GetAttr(v, l.attr);
  if (val == nullptr) return false;
  return val->Satisfies(l.op, l.constant);
}

bool IsCandidate(const Graph& g, NodeId v, const QueryNode& qn) {
  if (g.label(v) != qn.label) return false;
  for (const Literal& l : qn.literals) {
    if (!SatisfiesLiteral(g, v, l)) return false;
  }
  return true;
}

std::vector<NodeId> Candidates(const Graph& g, const Query& q, QNodeId u) {
  std::vector<NodeId> out;
  const QueryNode& qn = q.node(u);
  for (NodeId v : g.NodesWithLabel(qn.label)) {
    if (IsCandidate(g, v, qn)) out.push_back(v);
  }
  return out;
}

size_t CountCandidates(const Graph& g, const Query& q, QNodeId u) {
  size_t n = 0;
  const QueryNode& qn = q.node(u);
  for (NodeId v : g.NodesWithLabel(qn.label)) {
    if (IsCandidate(g, v, qn)) ++n;
  }
  return n;
}

}  // namespace whyq
