#ifndef WHYQ_MATCHER_CANDIDATES_H_
#define WHYQ_MATCHER_CANDIDATES_H_

#include <vector>

#include "graph/graph.h"
#include "query/query.h"

namespace whyq {

/// True iff data node v is a *candidate* of query node `qn` (Section II):
/// same label, and for every literal u.A op c, v carries A and v.A op c.
bool IsCandidate(const Graph& g, NodeId v, const QueryNode& qn);

/// True iff v satisfies one specific literal (carries the attribute and the
/// comparison holds).
bool SatisfiesLiteral(const Graph& g, NodeId v, const Literal& l);

/// All candidates of query node u in g (via the label index).
std::vector<NodeId> Candidates(const Graph& g, const Query& q, QNodeId u);

/// Parallel variant for large label buckets: the bucket is filtered in
/// contiguous chunks on up to `threads` executors of ThreadPool::Shared()
/// and the chunks are concatenated in order, so the result is the same
/// ascending-NodeId list the serial overload returns. Falls back to the
/// serial scan when threads <= 1 or the bucket is small (the fork/join
/// overhead would dominate literal checks).
std::vector<NodeId> Candidates(const Graph& g, const Query& q, QNodeId u,
                               size_t threads);

/// Candidate count without materializing the list.
size_t CountCandidates(const Graph& g, const Query& q, QNodeId u);

}  // namespace whyq

#endif  // WHYQ_MATCHER_CANDIDATES_H_
