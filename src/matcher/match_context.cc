#include "matcher/match_context.h"

#include <algorithm>
#include <cstdio>
#include <new>
#include <utility>

#include "matcher/candidates.h"

namespace whyq {

namespace {

// Canonical, injective-enough encoding of one literal. Two literals with
// equal keys filter identically (same attr, op, and constant encoding);
// distinct Values that render to distinct keys at worst create a duplicate
// cache entry, never a wrong one. Doubles use %.17g (round-trip exact).
std::string LiteralKey(const Literal& l) {
  std::string k = std::to_string(l.attr);
  k.push_back('\x01');
  k.push_back(static_cast<char>('0' + static_cast<int>(l.op)));
  k.push_back('\x01');
  const Value& v = l.constant;
  if (v.is_int()) {
    k.push_back('i');
    k += std::to_string(v.as_int());
  } else if (v.is_double()) {
    char buf[40];
    std::snprintf(buf, sizeof(buf), "d%.17g", v.as_double());
    k += buf;
  } else {
    k.push_back('s');
    k += v.as_string();
  }
  return k;
}

// Canonical signature: label, then the length-prefixed sorted literal keys
// (length prefixes make the concatenation unambiguous even when string
// constants contain the separator bytes). Fills `keys`/`lits` sorted and
// aligned.
std::string BuildSignature(const QueryNode& qn,
                           std::vector<std::string>* keys,
                           std::vector<Literal>* lits) {
  std::vector<std::pair<std::string, size_t>> order;
  order.reserve(qn.literals.size());
  for (size_t i = 0; i < qn.literals.size(); ++i) {
    order.emplace_back(LiteralKey(qn.literals[i]), i);
  }
  std::sort(order.begin(), order.end());
  std::string sig = std::to_string(qn.label);
  sig.push_back('\n');
  keys->clear();
  lits->clear();
  keys->reserve(order.size());
  lits->reserve(order.size());
  for (auto& [key, i] : order) {
    sig += std::to_string(key.size());
    sig.push_back(':');
    sig += key;
    keys->push_back(std::move(key));
    lits->push_back(qn.literals[i]);
  }
  return sig;
}

}  // namespace

MatchContext::MatchContext(const Graph& g)
    : g_(g), words_((g.node_count() + 63) / 64) {}

const MatchContext::CandidateSet* MatchContext::Freeze(
    const std::vector<NodeId>& nodes) {
  NodeId* list = arena_.AllocateArray<NodeId>(nodes.size());
  std::copy(nodes.begin(), nodes.end(), list);
  uint64_t* bits = arena_.AllocateArray<uint64_t>(words_);
  std::fill_n(bits, words_, 0);
  for (NodeId v : nodes) {
    bits[v >> 6] |= uint64_t{1} << (v & 63);
  }
  void* slot = arena_.Allocate(sizeof(CandidateSet), alignof(CandidateSet));
  return new (slot) CandidateSet{list, nodes.size(), bits};
}

const MatchContext::CandidateSet& MatchContext::Lookup(const QueryNode& qn) {
  std::vector<std::string> keys;
  std::vector<Literal> lits;
  std::string sig = BuildSignature(qn, &keys, &lits);
  auto it = index_.find(sig);
  if (it != index_.end()) {
    ++stats_.hits;
    return *entries_[it->second].cand;
  }
  return Insert(sig, qn.label, std::move(keys), std::move(lits));
}

const MatchContext::CandidateSet& MatchContext::Insert(
    const std::string& sig, SymbolId label,
    std::vector<std::string> lit_keys, std::vector<Literal> lits) {
  scratch_.clear();

  // Delta reuse: the largest cached strict-subset constraint on the same
  // label (ties: earliest insertion). Its node list already survived the
  // shared literals, so only the extras need re-checking — this is the
  // Lemma 1 monotonicity of refinement applied to the cache.
  const Entry* parent = nullptr;
  for (const Entry& e : entries_) {
    if (e.label != label || e.lit_keys.size() >= lit_keys.size()) continue;
    if (parent != nullptr &&
        e.lit_keys.size() <= parent->lit_keys.size()) {
      continue;
    }
    if (std::includes(lit_keys.begin(), lit_keys.end(), e.lit_keys.begin(),
                      e.lit_keys.end())) {
      parent = &e;
    }
  }

  if (parent != nullptr) {
    ++stats_.delta_builds;
    // Multiset difference over the sorted key arrays: child keys without a
    // matching parent key are the extra literals to filter with.
    std::vector<const Literal*> extras;
    size_t pi = 0;
    for (size_t ci = 0; ci < lit_keys.size(); ++ci) {
      if (pi < parent->lit_keys.size() &&
          parent->lit_keys[pi] == lit_keys[ci]) {
        ++pi;
        continue;
      }
      extras.push_back(&lits[ci]);
    }
    for (NodeId v : *parent->cand) {
      bool ok = true;
      for (const Literal* l : extras) {
        if (!SatisfiesLiteral(g_, v, *l)) {
          ok = false;
          break;
        }
      }
      if (ok) scratch_.push_back(v);
    }
  } else {
    ++stats_.misses;
    QueryNode qn;
    qn.label = label;
    qn.literals = lits;
    for (NodeId v : g_.NodesWithLabel(label)) {
      if (IsCandidate(g_, v, qn)) scratch_.push_back(v);
    }
  }

  Entry e;
  e.label = label;
  e.lit_keys = std::move(lit_keys);
  e.lits = std::move(lits);
  e.cand = Freeze(scratch_);
  index_[sig] = entries_.size();
  entries_.push_back(std::move(e));
  return *entries_.back().cand;
}

void MatchContext::Prime(const Query& q) {
  for (QNodeId u = 0; u < q.node_count(); ++u) {
    Lookup(q.node(u));
  }
}

void MatchContext::Seed(const QueryNode& qn,
                        const std::vector<NodeId>& nodes) {
  std::vector<std::string> keys;
  std::vector<Literal> lits;
  std::string sig = BuildSignature(qn, &keys, &lits);
  if (index_.count(sig) > 0) return;
  ++stats_.misses;  // the full scan happened, just outside the context
  Entry e;
  e.label = qn.label;
  e.lit_keys = std::move(keys);
  e.lits = std::move(lits);
  e.cand = Freeze(nodes);
  index_[sig] = entries_.size();
  entries_.push_back(std::move(e));
}

}  // namespace whyq
