#ifndef WHYQ_MATCHER_MATCH_CONTEXT_H_
#define WHYQ_MATCHER_MATCH_CONTEXT_H_

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/arena.h"
#include "graph/graph.h"
#include "query/query.h"

namespace whyq {

/// Per-request memo of candidate sets, shared by every matching primitive
/// that runs while answering one Why/Why-not question.
///
/// One question verifies thousands of rewrites Q ⊕ O that differ from Q by
/// a handful of operators, so most query nodes keep their (label, literals)
/// constraint across the whole MBS sweep / greedy gain scan. The context
/// keys each candidate set by a canonical signature of that constraint —
/// label plus the *sorted* literal multiset, so literal order never splits
/// entries — and materializes it once as an ascending NodeId list plus a
/// bitmap over V. Matching then replaces per-attempt IsCandidate calls
/// (attr binary search + literal predicates) with one O(1) bitmap probe,
/// and root enumeration iterates the memoized list instead of the label
/// bucket.
///
/// Refinement deltas: RfL/AddL only shrink cand(u) (Lemma 1), so when a
/// fresh signature's literals are a strict superset of a cached entry with
/// the same label, the new set is built by filtering that parent's node
/// list with only the extra literals — never by rescanning the label
/// bucket. Entries are never evicted; a context lives for one request and
/// the distinct signatures per request are bounded by the picky-operator
/// universe.
///
/// Thread-safety: none. A MatchContext is mutable per-lookup state and must
/// be confined to one thread/request, exactly like the Matcher and
/// evaluators that borrow it (each parallel executor slot owns its own
/// context via its own evaluator). The Graph it borrows is shared and
/// immutable.
class MatchContext {
 public:
  /// One memoized candidate set: the candidates in ascending NodeId order
  /// (for enumeration) and a bitmap over all of V (for O(1) membership and
  /// word-parallel intersection). Both arrays — and the struct itself —
  /// live in the context's arena; addresses are stable for the lifetime of
  /// the context, so plan steps may cache pointers across recursive search
  /// calls.
  struct CandidateSet {
    const NodeId* nodes = nullptr;
    size_t count = 0;
    const uint64_t* bits = nullptr;  // ceil(|V| / 64) words

    size_t size() const { return count; }
    NodeSpan list() const { return NodeSpan{nodes, count}; }
    const NodeId* begin() const { return nodes; }
    const NodeId* end() const { return nodes + count; }

    bool Test(NodeId v) const {
      return (bits[v >> 6] >> (v & 63)) & uint64_t{1};
    }
    /// One 64-bit block of the membership bitmap (word w covers node ids
    /// [w*64, w*64+63]) — the unit of the matcher's word-parallel AND.
    uint64_t Word(size_t w) const { return bits[w]; }
  };

  /// Cache effectiveness counters, surfaced through MatcherStats and
  /// RequestTrace (see docs/ARCHITECTURE.md "Stats glossary").
  struct Stats {
    uint64_t hits = 0;          // signature already memoized
    uint64_t misses = 0;        // built by scanning the label bucket
    uint64_t delta_builds = 0;  // built by filtering a cached parent set
    uint64_t pruned = 0;        // match attempts skipped via bitmap/list

    void Add(const Stats& o) {
      hits += o.hits;
      misses += o.misses;
      delta_builds += o.delta_builds;
      pruned += o.pruned;
    }
  };

  explicit MatchContext(const Graph& g);

  MatchContext(const MatchContext&) = delete;
  MatchContext& operator=(const MatchContext&) = delete;

  /// The memoized candidate set of `qn`, built on first use (bucket scan or
  /// delta filter — see class comment). The reference stays valid for the
  /// context's lifetime.
  const CandidateSet& Lookup(const QueryNode& qn);

  /// Memoizes every node of `q` up front (e.g. right after parsing, while
  /// a request is still in its prepare stage).
  void Prime(const Query& q);

  /// Installs an externally computed candidate list for `qn` (must be the
  /// exact ascending IsCandidate filter of the label bucket — e.g. the
  /// parallel Candidates() result). Counted as a miss: the scan happened,
  /// just not here. No-op when the signature is already memoized.
  void Seed(const QueryNode& qn, const std::vector<NodeId>& nodes);

  /// Adds to the pruned-attempts counter (called by the matcher when the
  /// bitmap or the memoized root list skips work the context-free path
  /// would have attempted).
  void CountPruned(uint64_t n) { stats_.pruned += n; }

  const Stats& stats() const { return stats_; }
  void ResetStats() { stats_ = Stats(); }

  const Graph& graph() const { return g_; }
  size_t entry_count() const { return entries_.size(); }

  /// The request-scoped allocator backing every memoized set. Exposed so
  /// the matcher can account arena traffic (ctx_arena_bytes) and co-locate
  /// its own per-plan scratch with the candidate data.
  Arena& arena() { return arena_; }
  const Arena& arena() const { return arena_; }

 private:
  struct Entry {
    SymbolId label = kInvalidSymbol;
    std::vector<std::string> lit_keys;  // sorted literal encodings
    std::vector<Literal> lits;          // aligned with lit_keys
    const CandidateSet* cand = nullptr;  // arena-resident
  };

  // Builds (and memoizes) the set for a signature not seen before.
  const CandidateSet& Insert(const std::string& sig, SymbolId label,
                             std::vector<std::string> lit_keys,
                             std::vector<Literal> lits);

  // Freezes `nodes` (ascending) into an arena-resident CandidateSet with
  // its membership bitmap.
  const CandidateSet* Freeze(const std::vector<NodeId>& nodes);

  const Graph& g_;
  size_t words_ = 0;  // bitmap words per set: ceil(|V| / 64)
  Arena arena_;       // owns every CandidateSet payload
  std::vector<NodeId> scratch_;  // build-time node list, reused per Insert
  std::vector<Entry> entries_;  // insertion order (delta tie-break)
  std::unordered_map<std::string, size_t> index_;  // signature -> entry
  Stats stats_;
};

}  // namespace whyq

#endif  // WHYQ_MATCHER_MATCH_CONTEXT_H_
