#include "matcher/match_engine.h"

#include <algorithm>

#include "matcher/matcher.h"
#include "matcher/simulation.h"
#include "query/query_parser.h"

namespace whyq {

namespace {

class IsoMatchEngine : public MatchEngine {
 public:
  explicit IsoMatchEngine(const Graph& g, MatchContext* ctx = nullptr)
      : matcher_(g) {
    matcher_.set_context(ctx);
  }

  void SetCancelToken(const CancelToken* t) override {
    matcher_.set_cancel_token(t);
  }
  std::vector<NodeId> MatchOutput(const Query& q) const override {
    return matcher_.MatchOutput(q);
  }
  bool IsAnswer(const Query& q, NodeId v) const override {
    return matcher_.IsAnswer(q, v);
  }
  bool HasAnyMatch(const Query& q) const override {
    return matcher_.HasAnyMatch(q);
  }
  size_t CountAnswersNotIn(const Query& q, const NodeSet& exclude,
                           size_t limit) const override {
    return matcher_.CountAnswersNotIn(q, exclude, limit);
  }
  std::vector<uint8_t> TestAnswers(
      const Query& q, const std::vector<NodeId>& nodes) const override {
    return matcher_.TestAnswers(q, nodes);
  }

 private:
  Matcher matcher_;
};

// Dual-simulation semantics. The maximum simulation is a whole-query
// fixpoint, so single-node probes recompute it; a one-entry cache keyed by
// the query's serialized form absorbs the evaluators' per-rewrite probing
// patterns (many IsAnswer calls against the same rewrite).
class SimMatchEngine : public MatchEngine {
 public:
  explicit SimMatchEngine(const Graph& g) : g_(g) {}

  void SetCancelToken(const CancelToken* t) override { cancel_ = t; }
  std::vector<NodeId> MatchOutput(const Query& q) const override {
    return AnswersFor(q);
  }
  bool IsAnswer(const Query& q, NodeId v) const override {
    const std::vector<NodeId>& answers = AnswersFor(q);
    return std::binary_search(answers.begin(), answers.end(), v);
  }
  bool HasAnyMatch(const Query& q) const override {
    return !AnswersFor(q).empty();
  }
  size_t CountAnswersNotIn(const Query& q, const NodeSet& exclude,
                           size_t limit) const override {
    size_t count = 0;
    for (NodeId v : AnswersFor(q)) {
      if (exclude.Contains(v)) continue;
      if (++count > limit) return count;
    }
    return count;
  }

 private:
  const std::vector<NodeId>& AnswersFor(const Query& q) const {
    std::string key = WriteQuery(q, g_);
    if (key != cached_key_) {
      // Simulation is a polynomial whole-query fixpoint; cancellation is
      // honored at this coarse granularity (skip fresh computations once
      // expired, returning the empty conservative answer).
      if (CancelRequested(cancel_)) {
        static const std::vector<NodeId> kEmpty;
        return kEmpty;
      }
      cached_answers_ = SimulationAnswers(g_, q);  // sorted by construction
      cached_key_ = std::move(key);
    }
    return cached_answers_;
  }

  const Graph& g_;
  const CancelToken* cancel_ = nullptr;
  mutable std::string cached_key_;
  mutable std::vector<NodeId> cached_answers_;
};

}  // namespace

const char* MatchSemanticsName(MatchSemantics s) {
  switch (s) {
    case MatchSemantics::kIsomorphism:
      return "isomorphism";
    case MatchSemantics::kSimulation:
      return "simulation";
  }
  return "?";
}

std::unique_ptr<MatchEngine> MakeMatchEngine(const Graph& g,
                                             MatchSemantics semantics,
                                             MatchContext* ctx) {
  switch (semantics) {
    case MatchSemantics::kIsomorphism:
      return std::make_unique<IsoMatchEngine>(g, ctx);
    case MatchSemantics::kSimulation:
      return std::make_unique<SimMatchEngine>(g);
  }
  return nullptr;
}

}  // namespace whyq
