#ifndef WHYQ_MATCHER_MATCH_ENGINE_H_
#define WHYQ_MATCHER_MATCH_ENGINE_H_

#include <memory>
#include <vector>

#include "common/cancel.h"
#include "graph/graph.h"
#include "graph/neighborhood.h"
#include "matcher/match_context.h"
#include "query/query.h"

namespace whyq {

/// Query-answer semantics the Why-machinery can run on (Section V
/// "Extensions": the algorithms "readily extend to ... subgraph queries
/// defined by approximate pattern matching").
enum class MatchSemantics {
  kIsomorphism,  // Section II default: injective subgraph isomorphism
  kSimulation,   // dual graph simulation (polynomial-time, approximate)
};

const char* MatchSemanticsName(MatchSemantics s);

/// The evaluation primitives the rewriting algorithms need, abstracted
/// over the matching semantics. Lemma 1 (relaxation grows / refinement
/// shrinks answers) holds for both implementations, which is the property
/// the guard-aware enumeration and Aff()-based estimation rely on.
///
/// Thread-safety: engines carry per-instance mutable state (matcher stats,
/// the simulation engine's one-entry answer cache) and are one-per-request
/// objects; only the Graph behind them is shared.
class MatchEngine {
 public:
  virtual ~MatchEngine() = default;

  /// Arms cooperative cancellation for subsequent calls (token not owned;
  /// null disarms). An expired token makes the primitives return partial,
  /// conservative results instead of blocking.
  virtual void SetCancelToken(const CancelToken* t) = 0;

  /// The answer Q(u_o, G) under this engine's semantics.
  virtual std::vector<NodeId> MatchOutput(const Query& q) const = 0;

  /// Is v in the answer? (Incremental where the semantics allow.)
  virtual bool IsAnswer(const Query& q, NodeId v) const = 0;

  virtual bool HasAnyMatch(const Query& q) const = 0;

  /// Counts answers outside `exclude`, stopping past `limit` (returns
  /// limit + 1 then) — the early-terminating guard primitive.
  virtual size_t CountAnswersNotIn(const Query& q, const NodeSet& exclude,
                                   size_t limit) const = 0;

  /// Batch IsAnswer (one flag per node); engines override this with a
  /// plan-reusing implementation where it pays off.
  virtual std::vector<uint8_t> TestAnswers(
      const Query& q, const std::vector<NodeId>& nodes) const {
    std::vector<uint8_t> out(nodes.size(), 0);
    for (size_t i = 0; i < nodes.size(); ++i) {
      out[i] = IsAnswer(q, nodes[i]) ? 1 : 0;
    }
    return out;
  }
};

/// Factory. The returned engine borrows `g` (must outlive the engine).
/// `ctx` (optional, not owned, must outlive the engine) attaches a
/// per-request MatchContext: the isomorphism engine then memoizes
/// candidate sets across calls (byte-identical answers, see
/// matcher/match_context.h); the simulation engine ignores it (its
/// fixpoint has its own one-entry answer cache). Like the engine itself,
/// the context is single-thread state.
std::unique_ptr<MatchEngine> MakeMatchEngine(const Graph& g,
                                             MatchSemantics semantics,
                                             MatchContext* ctx = nullptr);

}  // namespace whyq

#endif  // WHYQ_MATCHER_MATCH_ENGINE_H_
