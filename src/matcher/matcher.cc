#include "matcher/matcher.h"

#include <algorithm>

#include "common/check.h"
#include "matcher/candidates.h"

namespace whyq {

namespace {

// Branch-free SWAR popcount. __builtin_popcountll lowers to a libgcc
// *call* (__popcountdi2) unless the build targets -mpopcnt, and the call
// overhead dominates the word loop below on the profiles; this inlines
// everywhere.
inline uint64_t PopCount64(uint64_t w) {
  w -= (w >> 1) & 0x5555555555555555ull;
  w = (w & 0x3333333333333333ull) + ((w >> 2) & 0x3333333333333333ull);
  w = (w + (w >> 4)) & 0x0F0F0F0F0F0F0F0Full;
  return (w * 0x0101010101010101ull) >> 56;
}

}  // namespace

std::vector<Matcher::PlanStep> Matcher::BuildPlan(const Query& q,
                                                  QNodeId root) const {
  // BFS over the undirected structure from the root. Each non-root step is
  // anchored at the tree edge used to discover it; all other edges between
  // the step's node and earlier nodes become backward checks.
  std::vector<PlanStep> plan;
  std::vector<size_t> pos_of(q.node_count(), SIZE_MAX);

  PlanStep root_step;
  root_step.u = root;
  plan.push_back(root_step);
  pos_of[root] = 0;

  for (size_t head = 0; head < plan.size(); ++head) {
    QNodeId u = plan[head].u;
    for (const QueryEdge& e : q.edges()) {
      QNodeId other = kInvalidQNode;
      bool forward = true;  // anchor(u) -> other
      if (e.src == u && pos_of[e.dst] == SIZE_MAX) {
        other = e.dst;
        forward = true;
      } else if (e.dst == u && pos_of[e.src] == SIZE_MAX) {
        other = e.src;
        forward = false;
      } else {
        continue;
      }
      PlanStep step;
      step.u = other;
      step.anchor_pos = head;
      step.anchor_label = e.label;
      step.anchor_forward = forward;
      pos_of[other] = plan.size();
      plan.push_back(std::move(step));
    }
  }

  // Self loops on the root are verified as root checks (the attach loop
  // below only visits steps 1..n-1).
  for (const QueryEdge& e : q.edges()) {
    if (e.src == root && e.dst == root) {
      plan[0].checks.push_back(PlanStep::Check{0, e.label, true});
    }
  }

  // Attach backward checks: every query edge other than the anchor edges,
  // both endpoints already placed. The anchor edge of step i is recorded by
  // (anchor_pos, label, direction); avoid re-checking exactly one instance
  // of it.
  for (size_t i = 1; i < plan.size(); ++i) {
    PlanStep& step = plan[i];
    bool anchor_consumed = false;
    for (const QueryEdge& e : q.edges()) {
      size_t ps = pos_of[e.src];
      size_t pd = pos_of[e.dst];
      if (ps == SIZE_MAX || pd == SIZE_MAX) continue;  // outside component
      if (ps != i && pd != i) continue;                // not incident to u_i
      if (ps == i && pd == i) {
        // Self loop on u_i: check u_i -> u_i.
        step.checks.push_back(PlanStep::Check{i, e.label, true});
        continue;
      }
      size_t other = (ps == i) ? pd : ps;
      if (other > i) continue;  // handled when the later node is placed
      bool forward = (ps == i);  // u_i -> other?
      // Skip one instance of the anchor edge.
      if (!anchor_consumed && other == step.anchor_pos &&
          e.label == step.anchor_label) {
        bool is_anchor_shape =
            step.anchor_forward ? (pd == i && ps == step.anchor_pos)
                                : (ps == i && pd == step.anchor_pos);
        if (is_anchor_shape) {
          anchor_consumed = true;
          continue;
        }
      }
      step.checks.push_back(PlanStep::Check{other, e.label, forward});
    }
  }
  // With a context, resolve each step's memoized candidate set once per
  // plan; the recursive search then probes bitmaps instead of running
  // IsCandidate per attempt. Lookup addresses are stable.
  if (ctx_ != nullptr) {
    for (PlanStep& step : plan) {
      step.cand = &ctx_->Lookup(q.node(step.u));
    }
  }
  return plan;
}

NodeSpan Matcher::RootCandidates(const Query& q,
                                 const std::vector<PlanStep>& plan) const {
  NodeSpan bucket = g_.NodesWithLabel(q.node(plan[0].u).label);
  if (ctx_ == nullptr) return bucket;
  // Enumerate the memoized candidate list directly — same nodes, same
  // ascending order the bucket scan would have kept, minus the ones
  // IsCandidate would have rejected (accounted as pruned).
  const MatchContext::CandidateSet& cand = *plan[0].cand;
  ctx_->CountPruned(bucket.size() - cand.size());
  return cand.list();
}

bool Matcher::Extend(const Query& q, const std::vector<PlanStep>& plan,
                     size_t pos, std::vector<NodeId>& assignment) const {
  if (pos == plan.size()) return true;
  const PlanStep& step = plan[pos];
  const QueryNode& qn = q.node(step.u);

  auto try_node = [&](NodeId v) -> bool {
    ++stats_.embeddings_tried;
    if (CancelledNow()) return false;  // unwind; caller reports truncation
    // With a context the caller already probed the candidate bitmap.
    if (ctx_ == nullptr && !IsCandidate(g_, v, qn)) return false;
    // Injectivity.
    for (size_t i = 0; i < pos; ++i) {
      if (assignment[i] == v) return false;
    }
    // Backward edges.
    for (const PlanStep::Check& c : step.checks) {
      NodeId w = (c.other_pos == pos) ? v : assignment[c.other_pos];
      bool ok = c.forward ? g_.HasEdge(v, w, c.label)
                          : g_.HasEdge(w, v, c.label);
      if (!ok) return false;
    }
    assignment[pos] = v;
    if (Extend(q, plan, pos + 1, assignment)) return true;
    assignment[pos] = kInvalidNode;
    return false;
  };

  WHYQ_CHECK(step.anchor_pos != SIZE_MAX);  // root is handled by SearchFrom
  NodeId anchor = assignment[step.anchor_pos];
  // Exactly the anchor-label slice of the adjacency — same neighbors, same
  // ascending order a full scan filtered on the label would visit.
  NodeSpan span = step.anchor_forward
                      ? g_.LabeledOutNeighbors(anchor, step.anchor_label)
                      : g_.LabeledInNeighbors(anchor, step.anchor_label);
  if (ctx_ != nullptr) {
    const MatchContext::CandidateSet& cand = *step.cand;
    // Word-parallel AND over the candidate bitmap: the slice is sorted, so
    // consecutive neighbors sharing a 64-bit block collapse into one
    // presence mask, one bitmap load, and one AND — instead of a load and
    // branch per neighbor. A lone neighbor in its block (the common shape
    // for sparse adjacency) takes a plain single-bit probe with no mask
    // bookkeeping. Survivors are enumerated ascending via
    // count-trailing-zeros, and the rejected bits (mask ANDNOT bitmap) are
    // accounted in bulk; totals match the per-neighbor path exactly: only
    // rejects preceding a successful extension are counted.
    uint64_t pruned = 0;
    const NodeId* it = span.begin();
    const NodeId* last = span.end();
    while (it != last) {
      NodeId v0 = *it;
      uint64_t w = uint64_t{v0} >> 6;
      uint64_t bit = uint64_t{1} << (v0 & 63);
      uint64_t word = cand.Word(w);
      ++it;
      if (it == last || (*it >> 6) != w) {
        if ((word & bit) == 0) {
          ++pruned;
        } else if (try_node(v0)) {
          ctx_->CountPruned(pruned);
          return true;
        }
        continue;
      }
      uint64_t mask = bit;
      do {
        mask |= uint64_t{1} << (*it & 63);
        ++it;
      } while (it != last && (*it >> 6) == w);
      uint64_t hits = mask & word;
      uint64_t rejects = mask ^ hits;
      while (hits != 0) {
        int b = __builtin_ctzll(hits);
        hits &= hits - 1;
        NodeId v = static_cast<NodeId>((w << 6) | static_cast<uint64_t>(b));
        if (try_node(v)) {
          uint64_t below = (uint64_t{1} << b) - 1;
          pruned += PopCount64(rejects & below);
          ctx_->CountPruned(pruned);
          return true;
        }
      }
      pruned += PopCount64(rejects);
    }
    ctx_->CountPruned(pruned);
  } else {
    for (NodeId v : span) {
      if (try_node(v)) return true;
    }
  }
  return false;
}

bool Matcher::SearchFrom(const Query& q, const std::vector<PlanStep>& plan,
                         NodeId v, bool root_prechecked) const {
  ++stats_.iso_tests;
  const PlanStep& root = plan[0];
  if (!root_prechecked) {
    bool root_ok = ctx_ != nullptr ? root.cand->Test(v)
                                   : IsCandidate(g_, v, q.node(root.u));
    if (!root_ok) return false;
  }
  for (const PlanStep::Check& c : root.checks) {
    // Only self-loop checks can appear on the root.
    NodeId w = v;
    bool ok = c.forward ? g_.HasEdge(v, w, c.label)
                        : g_.HasEdge(w, v, c.label);
    if (!ok) return false;
  }
  if (assignment_.size() != plan.size() || assignment_dirty_) {
    assignment_.assign(plan.size(), kInvalidNode);
    assignment_dirty_ = false;
  }
  assignment_[0] = v;
  if (Extend(q, plan, 1, assignment_)) {
    assignment_dirty_ = true;  // the found embedding stays in the slots
    return true;
  }
  assignment_[0] = kInvalidNode;  // Extend restored every later slot
  return false;
}

std::vector<NodeId> Matcher::MatchOutput(const Query& q) const {
  std::vector<NodeId> answers;
  std::vector<PlanStep> plan = BuildPlan(q, q.output());
  for (NodeId v : RootCandidates(q, plan)) {
    if (cancel_ != nullptr && (cancel_hit_ || cancel_->Expired())) {
      cancel_hit_ = true;
      break;  // best-so-far answer prefix
    }
    if (SearchFrom(q, plan, v, ctx_ != nullptr)) answers.push_back(v);
  }
  return answers;
}

bool Matcher::IsAnswer(const Query& q, NodeId v) const {
  std::vector<PlanStep> plan = BuildPlan(q, q.output());
  return SearchFrom(q, plan, v);
}

std::vector<uint8_t> Matcher::TestAnswers(
    const Query& q, const std::vector<NodeId>& nodes) const {
  std::vector<PlanStep> plan = BuildPlan(q, q.output());
  std::vector<uint8_t> out(nodes.size(), 0);
  for (size_t i = 0; i < nodes.size(); ++i) {
    if (cancel_ != nullptr && (cancel_hit_ || cancel_->Expired())) {
      cancel_hit_ = true;
      break;  // remaining nodes stay 0 (conservative: "not an answer")
    }
    out[i] = SearchFrom(q, plan, nodes[i]) ? 1 : 0;
  }
  return out;
}

bool Matcher::HasAnyMatch(const Query& q) const {
  std::vector<PlanStep> plan = BuildPlan(q, q.output());
  for (NodeId v : RootCandidates(q, plan)) {
    if (cancel_ != nullptr && (cancel_hit_ || cancel_->Expired())) {
      cancel_hit_ = true;
      return false;  // unknown; caller sees truncation via cancelled()
    }
    if (SearchFrom(q, plan, v, ctx_ != nullptr)) return true;
  }
  return false;
}

size_t Matcher::CountAnswersNotIn(const Query& q, const NodeSet& exclude,
                                  size_t limit) const {
  std::vector<PlanStep> plan = BuildPlan(q, q.output());
  size_t count = 0;
  for (NodeId v : RootCandidates(q, plan)) {
    if (cancel_ != nullptr && (cancel_hit_ || cancel_->Expired())) {
      cancel_hit_ = true;
      break;  // undercount; guard checks treat the partial count as-is
    }
    if (exclude.Contains(v)) continue;
    if (SearchFrom(q, plan, v, ctx_ != nullptr)) {
      ++count;
      if (count > limit) return count;
    }
  }
  return count;
}

std::vector<std::vector<NodeId>> Matcher::MatchAllOutputs(
    const Query& q) const {
  std::vector<std::vector<NodeId>> out;
  out.reserve(q.outputs().size());
  for (QNodeId u : q.outputs()) {
    std::vector<PlanStep> plan = BuildPlan(q, u);
    std::vector<NodeId> answers;
    for (NodeId v : RootCandidates(q, plan)) {
      if (cancel_ != nullptr && (cancel_hit_ || cancel_->Expired())) {
        cancel_hit_ = true;
        break;  // truncate this output; later outputs break immediately
      }
      if (SearchFrom(q, plan, v, ctx_ != nullptr)) answers.push_back(v);
    }
    out.push_back(std::move(answers));
  }
  return out;
}

MatcherStats Matcher::stats() const {
  MatcherStats s = stats_;
  if (ctx_ != nullptr) {
    const MatchContext::Stats& c = ctx_->stats();
    s.ctx_hits = c.hits;
    s.ctx_misses = c.misses;
    s.ctx_delta_builds = c.delta_builds;
    s.ctx_pruned = c.pruned;
    s.ctx_arena_bytes = ctx_->arena().bytes_allocated();
  }
  return s;
}

}  // namespace whyq
