#include "matcher/matcher.h"

#include <algorithm>

#include "common/check.h"
#include "matcher/candidates.h"

namespace whyq {

std::vector<Matcher::PlanStep> Matcher::BuildPlan(const Query& q,
                                                  QNodeId root) const {
  // BFS over the undirected structure from the root. Each non-root step is
  // anchored at the tree edge used to discover it; all other edges between
  // the step's node and earlier nodes become backward checks.
  std::vector<PlanStep> plan;
  std::vector<size_t> pos_of(q.node_count(), SIZE_MAX);

  PlanStep root_step;
  root_step.u = root;
  plan.push_back(root_step);
  pos_of[root] = 0;

  for (size_t head = 0; head < plan.size(); ++head) {
    QNodeId u = plan[head].u;
    for (const QueryEdge& e : q.edges()) {
      QNodeId other = kInvalidQNode;
      bool forward = true;  // anchor(u) -> other
      if (e.src == u && pos_of[e.dst] == SIZE_MAX) {
        other = e.dst;
        forward = true;
      } else if (e.dst == u && pos_of[e.src] == SIZE_MAX) {
        other = e.src;
        forward = false;
      } else {
        continue;
      }
      PlanStep step;
      step.u = other;
      step.anchor_pos = head;
      step.anchor_label = e.label;
      step.anchor_forward = forward;
      pos_of[other] = plan.size();
      plan.push_back(std::move(step));
    }
  }

  // Self loops on the root are verified as root checks (the attach loop
  // below only visits steps 1..n-1).
  for (const QueryEdge& e : q.edges()) {
    if (e.src == root && e.dst == root) {
      plan[0].checks.push_back(PlanStep::Check{0, e.label, true});
    }
  }

  // Attach backward checks: every query edge other than the anchor edges,
  // both endpoints already placed. The anchor edge of step i is recorded by
  // (anchor_pos, label, direction); avoid re-checking exactly one instance
  // of it.
  for (size_t i = 1; i < plan.size(); ++i) {
    PlanStep& step = plan[i];
    bool anchor_consumed = false;
    for (const QueryEdge& e : q.edges()) {
      size_t ps = pos_of[e.src];
      size_t pd = pos_of[e.dst];
      if (ps == SIZE_MAX || pd == SIZE_MAX) continue;  // outside component
      if (ps != i && pd != i) continue;                // not incident to u_i
      if (ps == i && pd == i) {
        // Self loop on u_i: check u_i -> u_i.
        step.checks.push_back(PlanStep::Check{i, e.label, true});
        continue;
      }
      size_t other = (ps == i) ? pd : ps;
      if (other > i) continue;  // handled when the later node is placed
      bool forward = (ps == i);  // u_i -> other?
      // Skip one instance of the anchor edge.
      if (!anchor_consumed && other == step.anchor_pos &&
          e.label == step.anchor_label) {
        bool is_anchor_shape =
            step.anchor_forward ? (pd == i && ps == step.anchor_pos)
                                : (ps == i && pd == step.anchor_pos);
        if (is_anchor_shape) {
          anchor_consumed = true;
          continue;
        }
      }
      step.checks.push_back(PlanStep::Check{other, e.label, forward});
    }
  }
  // With a context, resolve each step's memoized candidate set once per
  // plan; the recursive search then probes bitmaps instead of running
  // IsCandidate per attempt. Lookup addresses are stable.
  if (ctx_ != nullptr) {
    for (PlanStep& step : plan) {
      step.cand = &ctx_->Lookup(q.node(step.u));
    }
  }
  return plan;
}

const std::vector<NodeId>& Matcher::RootCandidates(
    const Query& q, const std::vector<PlanStep>& plan) const {
  const std::vector<NodeId>& bucket =
      g_.NodesWithLabel(q.node(plan[0].u).label);
  if (ctx_ == nullptr) return bucket;
  // Enumerate the memoized candidate list directly — same nodes, same
  // ascending order the bucket scan would have kept, minus the ones
  // IsCandidate would have rejected (accounted as pruned).
  const MatchContext::CandidateSet& cand = *plan[0].cand;
  ctx_->CountPruned(bucket.size() - cand.nodes.size());
  return cand.nodes;
}

bool Matcher::Extend(const Query& q, const std::vector<PlanStep>& plan,
                     size_t pos, std::vector<NodeId>& assignment) const {
  if (pos == plan.size()) return true;
  const PlanStep& step = plan[pos];
  const QueryNode& qn = q.node(step.u);

  auto try_node = [&](NodeId v) -> bool {
    ++stats_.embeddings_tried;
    if (CancelledNow()) return false;  // unwind; caller reports truncation
    // With a context the caller already probed the candidate bitmap.
    if (ctx_ == nullptr && !IsCandidate(g_, v, qn)) return false;
    // Injectivity.
    for (size_t i = 0; i < pos; ++i) {
      if (assignment[i] == v) return false;
    }
    // Backward edges.
    for (const PlanStep::Check& c : step.checks) {
      NodeId w = (c.other_pos == pos) ? v : assignment[c.other_pos];
      bool ok = c.forward ? g_.HasEdge(v, w, c.label)
                          : g_.HasEdge(w, v, c.label);
      if (!ok) return false;
    }
    assignment[pos] = v;
    if (Extend(q, plan, pos + 1, assignment)) return true;
    assignment[pos] = kInvalidNode;
    return false;
  };

  WHYQ_CHECK(step.anchor_pos != SIZE_MAX);  // root is handled by SearchFrom
  NodeId anchor = assignment[step.anchor_pos];
  // Exactly the anchor-label slice of the adjacency — same neighbors, same
  // ascending order a full scan filtered on the label would visit.
  NodeSpan span = step.anchor_forward
                      ? g_.LabeledOutNeighbors(anchor, step.anchor_label)
                      : g_.LabeledInNeighbors(anchor, step.anchor_label);
  if (ctx_ != nullptr) {
    const MatchContext::CandidateSet& cand = *step.cand;
    for (NodeId v : span) {
      if (!cand.Test(v)) {
        ctx_->CountPruned(1);  // the free path would have attempted v
        continue;
      }
      if (try_node(v)) return true;
    }
  } else {
    for (NodeId v : span) {
      if (try_node(v)) return true;
    }
  }
  return false;
}

bool Matcher::SearchFrom(const Query& q, const std::vector<PlanStep>& plan,
                         NodeId v) const {
  ++stats_.iso_tests;
  const PlanStep& root = plan[0];
  bool root_ok = ctx_ != nullptr ? root.cand->Test(v)
                                 : IsCandidate(g_, v, q.node(root.u));
  if (!root_ok) return false;
  for (const PlanStep::Check& c : root.checks) {
    // Only self-loop checks can appear on the root.
    NodeId w = v;
    bool ok = c.forward ? g_.HasEdge(v, w, c.label)
                        : g_.HasEdge(w, v, c.label);
    if (!ok) return false;
  }
  assignment_.assign(plan.size(), kInvalidNode);
  assignment_[0] = v;
  return Extend(q, plan, 1, assignment_);
}

std::vector<NodeId> Matcher::MatchOutput(const Query& q) const {
  std::vector<NodeId> answers;
  std::vector<PlanStep> plan = BuildPlan(q, q.output());
  for (NodeId v : RootCandidates(q, plan)) {
    if (cancel_ != nullptr && (cancel_hit_ || cancel_->Expired())) {
      cancel_hit_ = true;
      break;  // best-so-far answer prefix
    }
    if (SearchFrom(q, plan, v)) answers.push_back(v);
  }
  return answers;
}

bool Matcher::IsAnswer(const Query& q, NodeId v) const {
  std::vector<PlanStep> plan = BuildPlan(q, q.output());
  return SearchFrom(q, plan, v);
}

std::vector<uint8_t> Matcher::TestAnswers(
    const Query& q, const std::vector<NodeId>& nodes) const {
  std::vector<PlanStep> plan = BuildPlan(q, q.output());
  std::vector<uint8_t> out(nodes.size(), 0);
  for (size_t i = 0; i < nodes.size(); ++i) {
    if (cancel_ != nullptr && (cancel_hit_ || cancel_->Expired())) {
      cancel_hit_ = true;
      break;  // remaining nodes stay 0 (conservative: "not an answer")
    }
    out[i] = SearchFrom(q, plan, nodes[i]) ? 1 : 0;
  }
  return out;
}

bool Matcher::HasAnyMatch(const Query& q) const {
  std::vector<PlanStep> plan = BuildPlan(q, q.output());
  for (NodeId v : RootCandidates(q, plan)) {
    if (cancel_ != nullptr && (cancel_hit_ || cancel_->Expired())) {
      cancel_hit_ = true;
      return false;  // unknown; caller sees truncation via cancelled()
    }
    if (SearchFrom(q, plan, v)) return true;
  }
  return false;
}

size_t Matcher::CountAnswersNotIn(const Query& q, const NodeSet& exclude,
                                  size_t limit) const {
  std::vector<PlanStep> plan = BuildPlan(q, q.output());
  size_t count = 0;
  for (NodeId v : RootCandidates(q, plan)) {
    if (cancel_ != nullptr && (cancel_hit_ || cancel_->Expired())) {
      cancel_hit_ = true;
      break;  // undercount; guard checks treat the partial count as-is
    }
    if (exclude.Contains(v)) continue;
    if (SearchFrom(q, plan, v)) {
      ++count;
      if (count > limit) return count;
    }
  }
  return count;
}

std::vector<std::vector<NodeId>> Matcher::MatchAllOutputs(
    const Query& q) const {
  std::vector<std::vector<NodeId>> out;
  out.reserve(q.outputs().size());
  for (QNodeId u : q.outputs()) {
    std::vector<PlanStep> plan = BuildPlan(q, u);
    std::vector<NodeId> answers;
    for (NodeId v : RootCandidates(q, plan)) {
      if (cancel_ != nullptr && (cancel_hit_ || cancel_->Expired())) {
        cancel_hit_ = true;
        break;  // truncate this output; later outputs break immediately
      }
      if (SearchFrom(q, plan, v)) answers.push_back(v);
    }
    out.push_back(std::move(answers));
  }
  return out;
}

MatcherStats Matcher::stats() const {
  MatcherStats s = stats_;
  if (ctx_ != nullptr) {
    const MatchContext::Stats& c = ctx_->stats();
    s.ctx_hits = c.hits;
    s.ctx_misses = c.misses;
    s.ctx_delta_builds = c.delta_builds;
    s.ctx_pruned = c.pruned;
  }
  return s;
}

}  // namespace whyq
