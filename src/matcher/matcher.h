#ifndef WHYQ_MATCHER_MATCHER_H_
#define WHYQ_MATCHER_MATCHER_H_

#include <cstdint>
#include <vector>

#include "common/cancel.h"
#include "graph/graph.h"
#include "graph/neighborhood.h"
#include "matcher/match_context.h"
#include "query/query.h"

namespace whyq {

/// Cumulative matcher counters, exposed for the efficiency experiments.
/// The ctx_* fields mirror the attached MatchContext's cache counters
/// (zero when the matcher runs context-free).
struct MatcherStats {
  uint64_t embeddings_tried = 0;  // backtracking extensions attempted
  uint64_t iso_tests = 0;         // IsAnswer-style verifications performed
  uint64_t ctx_hits = 0;          // candidate-set lookups served from cache
  uint64_t ctx_misses = 0;        // candidate sets built by bucket scan
  uint64_t ctx_delta_builds = 0;  // candidate sets built by delta filter
  uint64_t ctx_pruned = 0;        // attempts skipped via candidate bitmaps
  uint64_t ctx_arena_bytes = 0;   // bytes bump-allocated by the context
};

/// Subgraph-isomorphism engine over one data graph.
///
/// Semantics (Section II): a match is an injective, label-preserving mapping
/// h of the query's nodes to data nodes such that every query node maps to a
/// candidate (label + literals) and every labeled query edge maps to a data
/// edge. The *answer* Q(u_o, G) is the set of images of the output node over
/// all matches.
///
/// Disconnected queries (possible after RmE rewrites) are evaluated on the
/// connected component of the output node only — the paper's Match does the
/// same and proves Q'_{u_o}(u_o,G) = Q'(u_o,G).
///
/// The engine is stateless with respect to queries; one Matcher may be
/// reused across many (rewritten) queries against the same graph.
///
/// Thread-safety: a Matcher instance carries per-instance mutable state
/// (stats, cancellation latch) and must be confined to one thread/request.
/// The shared, immutable Graph it borrows may back any number of Matchers
/// concurrently.
class Matcher {
 public:
  explicit Matcher(const Graph& g) : g_(g) {}

  /// Arms cooperative cancellation (token not owned; may be null to
  /// disarm). Polled every few hundred extension attempts and once per
  /// output candidate; when it expires, the current search unwinds and the
  /// enumeration APIs return whatever was found so far. Resets the sticky
  /// latch, so a Matcher may be re-armed across requests.
  void set_cancel_token(const CancelToken* t) {
    cancel_ = t;
    cancel_hit_ = false;
  }

  /// True when an armed token expired during (or before) the last search —
  /// the caller's signal that results are partial.
  bool cancelled() const { return cancel_hit_; }

  /// Attaches a per-request candidate memo (not owned; null detaches).
  /// With a context, candidate generation and per-attempt IsCandidate
  /// checks become memoized-list iterations and O(1) bitmap probes; the
  /// answers of every public API are byte-identical either way (same
  /// candidates, same ascending order — the context only skips nodes
  /// IsCandidate would have rejected). The context must outlive its use
  /// and, like the Matcher, is single-thread state.
  void set_context(MatchContext* ctx) { ctx_ = ctx; }
  MatchContext* context() const { return ctx_; }

  /// Computes the full answer Q(u_o, G).
  std::vector<NodeId> MatchOutput(const Query& q) const;

  /// Incremental verification: is data node v an answer (i.e., is there an
  /// embedding mapping the output node to v)? Early-terminates on the first
  /// embedding found.
  bool IsAnswer(const Query& q, NodeId v) const;

  /// Batch verification: one flag per node of `nodes`. Equivalent to
  /// calling IsAnswer per node but builds the matching plan once — the
  /// evaluators' answer sweeps are hot paths.
  std::vector<uint8_t> TestAnswers(const Query& q,
                                   const std::vector<NodeId>& nodes) const;

  /// Does the query have at least one match at all?
  bool HasAnyMatch(const Query& q) const;

  /// Counts answers of q that are NOT in `exclude`, stopping as soon as the
  /// count exceeds `limit` (returns limit+1 in that case). This implements
  /// the early-terminating guard check for Why-not rewrites.
  size_t CountAnswersNotIn(const Query& q, const NodeSet& exclude,
                           size_t limit) const;

  /// Multi-output extension: the answer set of each node in q.outputs().
  /// Polls the armed cancel token like every other enumeration loop; on
  /// expiry the current output's answer list is truncated and the
  /// remaining outputs come back empty (the result always has one list
  /// per output node), with cancelled() reporting the truncation.
  std::vector<std::vector<NodeId>> MatchAllOutputs(const Query& q) const;

  /// Snapshot of the work counters. ctx_* fields reflect the attached
  /// context's whole lifetime (a context may serve several matchers);
  /// ResetStats clears only the matcher-local counters.
  MatcherStats stats() const;
  void ResetStats() { stats_ = MatcherStats(); }

 private:
  // One step of the matching plan: query node `u` is matched at position
  // `pos`; `anchor_*` describe the tree edge used to generate candidates
  // (from the already-matched anchor node), and `checks` are the remaining
  // backward edges to verify.
  struct PlanStep {
    QNodeId u = kInvalidQNode;
    // Candidate generation: follow this edge from the matched anchor.
    // anchor_pos == SIZE_MAX for the root (candidates from label index).
    size_t anchor_pos = SIZE_MAX;
    SymbolId anchor_label = kInvalidSymbol;
    bool anchor_forward = true;  // true: anchor -> u edge; false: u -> anchor
    // Backward constraint edges (src/dst already matched at these steps).
    struct Check {
      size_t other_pos;
      SymbolId label;
      bool forward;  // true: u -> other; false: other -> u
    };
    std::vector<Check> checks;
    // Memoized candidate set of `u` (null when running context-free).
    // Stable address for the context's lifetime.
    const MatchContext::CandidateSet* cand = nullptr;
  };

  // Builds a matching order (BFS from `root`) over the root's component.
  std::vector<PlanStep> BuildPlan(const Query& q, QNodeId root) const;

  // Backtracking search with h(root) = v fixed. Returns true if an
  // embedding exists. `root_prechecked` skips the root candidacy test for
  // callers that enumerate v out of the memoized candidate list itself
  // (every such v passes by construction).
  bool SearchFrom(const Query& q, const std::vector<PlanStep>& plan,
                  NodeId v, bool root_prechecked = false) const;

  bool Extend(const Query& q, const std::vector<PlanStep>& plan, size_t pos,
              std::vector<NodeId>& assignment) const;

  // Periodic cancellation poll (every 256 extension attempts). Once true it
  // latches, so the backtracking stack unwinds without further clock reads.
  bool CancelledNow() const {
    if (cancel_hit_) return true;
    if (cancel_ != nullptr && (stats_.embeddings_tried & 255) == 0 &&
        cancel_->Expired()) {
      cancel_hit_ = true;
    }
    return cancel_hit_;
  }

  // Root candidates of a plan: the memoized list with a context (prune
  // accounting included), the label bucket without.
  NodeSpan RootCandidates(const Query& q,
                          const std::vector<PlanStep>& plan) const;

  const Graph& g_;
  mutable MatcherStats stats_;
  // Assignment scratch reused across SearchFrom calls (capacity persists,
  // so per-root allocations vanish on the hot verification sweeps). Part
  // of the per-instance mutable state covered by the thread-confinement
  // contract above.
  mutable std::vector<NodeId> assignment_;
  // True when assignment_ may hold stale entries (a successful embedding
  // returns without unwinding); SearchFrom then refills before reuse.
  // Failed searches restore every slot, so the refill is skipped on the
  // dominant reject path.
  mutable bool assignment_dirty_ = true;
  const CancelToken* cancel_ = nullptr;
  mutable bool cancel_hit_ = false;
  MatchContext* ctx_ = nullptr;  // borrowed per-request memo (may be null)
};

}  // namespace whyq

#endif  // WHYQ_MATCHER_MATCHER_H_
