#ifndef WHYQ_MATCHER_MATCHER_H_
#define WHYQ_MATCHER_MATCHER_H_

#include <cstdint>
#include <vector>

#include "common/cancel.h"
#include "graph/graph.h"
#include "graph/neighborhood.h"
#include "query/query.h"

namespace whyq {

/// Cumulative matcher counters, exposed for the efficiency experiments.
struct MatcherStats {
  uint64_t embeddings_tried = 0;  // backtracking extensions attempted
  uint64_t iso_tests = 0;         // IsAnswer-style verifications performed
};

/// Subgraph-isomorphism engine over one data graph.
///
/// Semantics (Section II): a match is an injective, label-preserving mapping
/// h of the query's nodes to data nodes such that every query node maps to a
/// candidate (label + literals) and every labeled query edge maps to a data
/// edge. The *answer* Q(u_o, G) is the set of images of the output node over
/// all matches.
///
/// Disconnected queries (possible after RmE rewrites) are evaluated on the
/// connected component of the output node only — the paper's Match does the
/// same and proves Q'_{u_o}(u_o,G) = Q'(u_o,G).
///
/// The engine is stateless with respect to queries; one Matcher may be
/// reused across many (rewritten) queries against the same graph.
///
/// Thread-safety: a Matcher instance carries per-instance mutable state
/// (stats, cancellation latch) and must be confined to one thread/request.
/// The shared, immutable Graph it borrows may back any number of Matchers
/// concurrently.
class Matcher {
 public:
  explicit Matcher(const Graph& g) : g_(g) {}

  /// Arms cooperative cancellation (token not owned; may be null to
  /// disarm). Polled every few hundred extension attempts and once per
  /// output candidate; when it expires, the current search unwinds and the
  /// enumeration APIs return whatever was found so far. Resets the sticky
  /// latch, so a Matcher may be re-armed across requests.
  void set_cancel_token(const CancelToken* t) {
    cancel_ = t;
    cancel_hit_ = false;
  }

  /// True when an armed token expired during (or before) the last search —
  /// the caller's signal that results are partial.
  bool cancelled() const { return cancel_hit_; }

  /// Computes the full answer Q(u_o, G).
  std::vector<NodeId> MatchOutput(const Query& q) const;

  /// Incremental verification: is data node v an answer (i.e., is there an
  /// embedding mapping the output node to v)? Early-terminates on the first
  /// embedding found.
  bool IsAnswer(const Query& q, NodeId v) const;

  /// Batch verification: one flag per node of `nodes`. Equivalent to
  /// calling IsAnswer per node but builds the matching plan once — the
  /// evaluators' answer sweeps are hot paths.
  std::vector<uint8_t> TestAnswers(const Query& q,
                                   const std::vector<NodeId>& nodes) const;

  /// Does the query have at least one match at all?
  bool HasAnyMatch(const Query& q) const;

  /// Counts answers of q that are NOT in `exclude`, stopping as soon as the
  /// count exceeds `limit` (returns limit+1 in that case). This implements
  /// the early-terminating guard check for Why-not rewrites.
  size_t CountAnswersNotIn(const Query& q, const NodeSet& exclude,
                           size_t limit) const;

  /// Multi-output extension: the answer set of each node in q.outputs().
  std::vector<std::vector<NodeId>> MatchAllOutputs(const Query& q) const;

  const MatcherStats& stats() const { return stats_; }
  void ResetStats() { stats_ = MatcherStats(); }

 private:
  // One step of the matching plan: query node `u` is matched at position
  // `pos`; `anchor_*` describe the tree edge used to generate candidates
  // (from the already-matched anchor node), and `checks` are the remaining
  // backward edges to verify.
  struct PlanStep {
    QNodeId u = kInvalidQNode;
    // Candidate generation: follow this edge from the matched anchor.
    // anchor_pos == SIZE_MAX for the root (candidates from label index).
    size_t anchor_pos = SIZE_MAX;
    SymbolId anchor_label = kInvalidSymbol;
    bool anchor_forward = true;  // true: anchor -> u edge; false: u -> anchor
    // Backward constraint edges (src/dst already matched at these steps).
    struct Check {
      size_t other_pos;
      SymbolId label;
      bool forward;  // true: u -> other; false: other -> u
    };
    std::vector<Check> checks;
  };

  // Builds a matching order (BFS from `root`) over the root's component.
  std::vector<PlanStep> BuildPlan(const Query& q, QNodeId root) const;

  // Backtracking search with h(root) = v fixed. Returns true if an
  // embedding exists.
  bool SearchFrom(const Query& q, const std::vector<PlanStep>& plan,
                  NodeId v) const;

  bool Extend(const Query& q, const std::vector<PlanStep>& plan, size_t pos,
              std::vector<NodeId>& assignment) const;

  // Periodic cancellation poll (every 256 extension attempts). Once true it
  // latches, so the backtracking stack unwinds without further clock reads.
  bool CancelledNow() const {
    if (cancel_hit_) return true;
    if (cancel_ != nullptr && (stats_.embeddings_tried & 255) == 0 &&
        cancel_->Expired()) {
      cancel_hit_ = true;
    }
    return cancel_hit_;
  }

  const Graph& g_;
  mutable MatcherStats stats_;
  const CancelToken* cancel_ = nullptr;
  mutable bool cancel_hit_ = false;
};

}  // namespace whyq

#endif  // WHYQ_MATCHER_MATCHER_H_
