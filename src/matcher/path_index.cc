#include "matcher/path_index.h"

#include <algorithm>
#include <sstream>

#include "matcher/candidates.h"

namespace whyq {

namespace {

// True iff `rewritten` still contains the directed, labeled edge the step
// was built from.
bool StepEdgePresent(const Query& q, const PathIndex::Step& s) {
  QueryEdge probe;
  probe.label = s.edge_label;
  if (s.forward) {
    probe.src = s.from;
    probe.dst = s.to;
  } else {
    probe.src = s.to;
    probe.dst = s.from;
  }
  const auto& edges = q.edges();
  return std::find(edges.begin(), edges.end(), probe) != edges.end();
}

}  // namespace

PathIndex PathIndex::FromPaths(std::vector<std::vector<Step>> paths) {
  PathIndex index;
  index.paths_ = std::move(paths);
  return index;
}

PathIndex::PathIndex(const Query& q, size_t max_paths) {
  if (q.output() == kInvalidQNode || q.node_count() == 0) return;
  // DFS from the output node over undirected edges, collecting maximal
  // simple paths (a path is emitted when it cannot be extended to an
  // unvisited node). Deterministic: edges are scanned in declaration order.
  std::vector<Step> current;
  std::vector<uint8_t> visited(q.node_count(), 0);

  // Iterative DFS with explicit recursion to honor the max_paths cap.
  struct Frame {
    QNodeId at;
    size_t next_edge;
    bool extended;
  };
  std::vector<Frame> stack;
  visited[q.output()] = 1;
  stack.push_back(Frame{q.output(), 0, false});

  while (!stack.empty() && paths_.size() < max_paths) {
    Frame& f = stack.back();
    bool pushed = false;
    while (f.next_edge < q.edges().size()) {
      const QueryEdge& e = q.edges()[f.next_edge];
      ++f.next_edge;
      QNodeId other = kInvalidQNode;
      bool forward = true;
      if (e.src == f.at && !visited[e.dst]) {
        other = e.dst;
        forward = true;
      } else if (e.dst == f.at && !visited[e.src]) {
        other = e.src;
        forward = false;
      } else {
        continue;
      }
      Step s;
      s.from = f.at;
      s.to = other;
      s.edge_label = e.label;
      s.forward = forward;
      current.push_back(s);
      visited[other] = 1;
      f.extended = true;
      stack.push_back(Frame{other, 0, false});
      pushed = true;
      break;
    }
    if (pushed) continue;
    // No extension from this frame: emit if it terminates a maximal path.
    if (!f.extended && !current.empty()) {
      paths_.push_back(current);
    }
    visited[f.at] = 0;
    stack.pop_back();
    if (!current.empty()) current.pop_back();
  }
  // Single-node queries or caps may leave no paths; Passes() then reduces
  // to the candidate test on the output node.
}

bool PathIndex::WalkMatches(const Graph& g, const Query& rewritten,
                            const std::vector<Step>& path, size_t pos,
                            NodeId at, MatchContext* ctx) const {
  if (pos == path.size()) return true;
  const Step& s = path[pos];
  if (s.to >= rewritten.node_count() || !StepEdgePresent(rewritten, s)) {
    // The rewrite no longer constrains this tail through this path.
    return true;
  }
  const QueryNode& target = rewritten.node(s.to);
  // One candidate-set resolution per step, then O(1) probes per neighbor.
  const MatchContext::CandidateSet* cand =
      ctx != nullptr ? &ctx->Lookup(target) : nullptr;
  // The label-partitioned slice visits exactly the step's edge label. The
  // walk's outcome is existential, so the (per-label ascending) visit order
  // cannot change the result.
  NodeSpan span = s.forward ? g.LabeledOutNeighbors(at, s.edge_label)
                            : g.LabeledInNeighbors(at, s.edge_label);
  for (NodeId other : span) {
    if (cand != nullptr ? !cand->Test(other)
                        : !IsCandidate(g, other, target)) {
      continue;
    }
    if (WalkMatches(g, rewritten, path, pos + 1, other, ctx)) return true;
  }
  return false;
}

bool PathIndex::Passes(const Graph& g, const Query& rewritten, NodeId v,
                       MatchContext* ctx) const {
  const QueryNode& output = rewritten.node(rewritten.output());
  bool out_ok = ctx != nullptr ? ctx->Lookup(output).Test(v)
                               : IsCandidate(g, v, output);
  if (!out_ok) return false;
  for (const std::vector<Step>& path : paths_) {
    if (!WalkMatches(g, rewritten, path, 0, v, ctx)) return false;
  }
  return true;
}

double PathIndex::PassFraction(const Graph& g, const Query& rewritten,
                               NodeId v, MatchContext* ctx) const {
  size_t total = 1 + paths_.size();
  size_t passed = 0;
  const QueryNode& output = rewritten.node(rewritten.output());
  bool out_ok = ctx != nullptr ? ctx->Lookup(output).Test(v)
                               : IsCandidate(g, v, output);
  if (out_ok) ++passed;
  for (const std::vector<Step>& path : paths_) {
    if (WalkMatches(g, rewritten, path, 0, v, ctx)) ++passed;
  }
  return static_cast<double>(passed) / static_cast<double>(total);
}

std::string PathIndex::ToString(const Graph& g) const {
  std::ostringstream os;
  for (const auto& path : paths_) {
    os << "u" << (path.empty() ? 0 : path[0].from);
    for (const Step& s : path) {
      os << (s.forward ? " -" : " <-") << g.EdgeLabelName(s.edge_label)
         << (s.forward ? "-> " : "- ") << 'u' << s.to;
    }
    os << '\n';
  }
  return os.str();
}

}  // namespace whyq
