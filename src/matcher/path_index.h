#ifndef WHYQ_MATCHER_PATH_INDEX_H_
#define WHYQ_MATCHER_PATH_INDEX_H_

#include <cstddef>
#include <string>
#include <vector>

#include "graph/graph.h"
#include "matcher/match_context.h"
#include "query/query.h"

namespace whyq {

/// A sampled path index over a query Q (the estimation backbone of the
/// paper's EstMatch): a bounded number of simple paths of Q starting at the
/// output node. A data node v "passes the path tests" for a rewrite Q' of Q
/// when v is a candidate of the output node under Q' and, for every indexed
/// path, some walk from v realizes the path's edge labels/directions with
/// every visited node a candidate of the corresponding Q' node.
///
/// Passing is necessary-but-not-sufficient for being an answer (paths drop
/// injectivity and branching constraints), which is exactly the estimation
/// error epsilon the approximation guarantee is stated against.
///
/// The index is built once from Q and then evaluated against rewrites Q⊕O,
/// relying on rewrites preserving query-node ids (rewrite application only
/// appends nodes). Steps whose query edge was removed by the rewrite (RmE)
/// terminate their path early — the tail is no longer connected through
/// this path, so it constrains nothing.
///
/// Thread-safety: immutable after construction, shared across workers.
/// Passes()/PassFraction() are const, allocate only locals, and keep no
/// per-call caches, so one index (e.g. from the service's prepared-question
/// cache) may be probed by many workers concurrently. The optional
/// MatchContext argument is the exception: a context is single-threaded
/// request state, so concurrent probes must each pass their own (their
/// executor slot's) context, or nullptr.
class PathIndex {
 public:
  struct Step {
    QNodeId from = kInvalidQNode;
    QNodeId to = kInvalidQNode;
    SymbolId edge_label = kInvalidSymbol;
    bool forward = true;  // true: (from -> to) in Q; false: (to -> from)
  };

  /// Builds the index with at most `max_paths` maximal simple paths,
  /// enumerated deterministically (DFS over undirected query edges).
  PathIndex(const Query& q, size_t max_paths);

  /// Rebuilds an index from previously sampled steps — the plan-store load
  /// path (service/plan.cc), which deserializes the exact paths a prior
  /// process enumerated so a loaded plan probes identically to the build it
  /// caches. The caller is responsible for having validated every step's
  /// query-node ids against the query the index will be probed with.
  static PathIndex FromPaths(std::vector<std::vector<Step>> paths);

  /// Path test of v against rewrite `rewritten` (see class comment). When
  /// `ctx` is given, per-step node-candidacy tests probe the context's
  /// memoized bitmaps (O(1) after the first build) instead of re-evaluating
  /// literals; the boolean outcome is identical either way.
  bool Passes(const Graph& g, const Query& rewritten, NodeId v,
              MatchContext* ctx = nullptr) const;

  /// Partial credit: the fraction of checks v passes under `rewritten` —
  /// the output-node candidate test plus each indexed path, all weighted
  /// equally. 1.0 iff Passes(). Greedy selection uses this to rank
  /// operators that make progress toward a match (or a non-match) even when
  /// no single operator flips the full test (zero-marginal-gain
  /// bootstrapping; see DESIGN.md).
  double PassFraction(const Graph& g, const Query& rewritten, NodeId v,
                      MatchContext* ctx = nullptr) const;

  size_t path_count() const { return paths_.size(); }
  const std::vector<std::vector<Step>>& paths() const { return paths_; }

  /// Debug rendering of the indexed paths.
  std::string ToString(const Graph& g) const;

 private:
  PathIndex() = default;  // FromPaths

  bool WalkMatches(const Graph& g, const Query& rewritten,
                   const std::vector<Step>& path, size_t pos, NodeId at,
                   MatchContext* ctx) const;

  std::vector<std::vector<Step>> paths_;
};

}  // namespace whyq

#endif  // WHYQ_MATCHER_PATH_INDEX_H_
