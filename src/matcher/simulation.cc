#include "matcher/simulation.h"

#include <algorithm>

#include "graph/neighborhood.h"
#include "matcher/candidates.h"

namespace whyq {

namespace {

// Membership bitmaps per query node, over g's node space.
struct SimSets {
  std::vector<std::vector<uint8_t>> in;  // [qnode][data node]
  std::vector<std::vector<NodeId>> members;
};

}  // namespace

std::vector<std::vector<NodeId>> DualSimulation(const Graph& g,
                                                const Query& q) {
  std::vector<std::vector<NodeId>> out(q.node_count());
  std::vector<QNodeId> component = q.OutputComponent();
  if (component.empty()) return out;
  std::vector<uint8_t> in_component(q.node_count(), 0);
  for (QNodeId u : component) in_component[u] = 1;

  // Initialize with the candidate sets (bitmap + compact member lists).
  std::vector<std::vector<uint8_t>> member(
      q.node_count(), std::vector<uint8_t>(g.node_count(), 0));
  std::vector<std::vector<NodeId>> lists(q.node_count());
  for (QNodeId u : component) {
    lists[u] = Candidates(g, q, u);
    for (NodeId v : lists[u]) member[u][v] = 1;
  }

  // Fixpoint pruning: drop v from S(u) when some incident query edge has
  // no witness neighbor. Each sweep walks the compact member lists only;
  // queries are tiny, so sweeping to stability is cheap in practice.
  bool changed = true;
  while (changed) {
    changed = false;
    for (const QueryEdge& e : q.edges()) {
      if (!in_component[e.src] || !in_component[e.dst]) continue;
      // Forward: every v in S(src) needs an out-neighbor in S(dst).
      auto prune = [&](QNodeId u, bool forward, QNodeId other_u) {
        std::vector<NodeId>& list = lists[u];
        size_t keep = 0;
        for (NodeId v : list) {
          if (!member[u][v]) continue;  // already pruned via another edge
          bool witness = false;
          EdgeSpan adj = forward ? g.out_edges(v) : g.in_edges(v);
          for (const HalfEdge& he : adj) {
            if (he.label == e.label && member[other_u][he.other]) {
              witness = true;
              break;
            }
          }
          if (witness) {
            list[keep++] = v;
          } else {
            member[u][v] = 0;
            changed = true;
          }
        }
        list.resize(keep);
      };
      prune(e.src, /*forward=*/true, e.dst);
      prune(e.dst, /*forward=*/false, e.src);
    }
  }

  for (QNodeId u : component) {
    out[u] = lists[u];
    std::sort(out[u].begin(), out[u].end());
  }
  return out;
}

std::vector<NodeId> SimulationAnswers(const Graph& g, const Query& q) {
  return DualSimulation(g, q)[q.output()];
}

}  // namespace whyq
