#ifndef WHYQ_MATCHER_SIMULATION_H_
#define WHYQ_MATCHER_SIMULATION_H_

#include <vector>

#include "graph/graph.h"
#include "query/query.h"

namespace whyq {

/// Dual graph simulation — the polynomial-time approximate pattern-matching
/// semantics ([4] Fan et al., PVLDB 2010) the paper names as an extension
/// target ("Subgraph queries defined by approximate pattern matching").
///
/// A dual-simulation relation S assigns each query node u a set S(u) of
/// data nodes such that every v in S(u) is a candidate of u (label +
/// literals) and, for every query edge (u, u'), v has an out-neighbor via
/// that edge label in S(u') — and symmetrically for incoming edges. The
/// *maximum* such relation is unique and computable by fixpoint pruning.
///
/// Relative to subgraph isomorphism: injectivity is dropped and cyclic
/// patterns may match their unrollings, so Sim(u_o) ⊇ Iso answers; all of
/// the library's Why-machinery (Lemma 1 monotonicity, the guard, the path
/// index as a necessary condition) carries over.
///
/// Only the output node's connected component constrains the result,
/// mirroring the isomorphism matcher's handling of disconnected rewrites.

/// The maximum dual-simulation relation: one (sorted) node set per query
/// node; nodes outside the output component get empty sets.
std::vector<std::vector<NodeId>> DualSimulation(const Graph& g,
                                                const Query& q);

/// Sim(u_o): the output node's set under the maximum dual simulation.
std::vector<NodeId> SimulationAnswers(const Graph& g, const Query& q);

}  // namespace whyq

#endif  // WHYQ_MATCHER_SIMULATION_H_
