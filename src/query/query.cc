#include "query/query.h"

#include <algorithm>
#include <sstream>

#include "common/check.h"

namespace whyq {

std::string Literal::ToString(const Graph& g) const {
  std::ostringstream os;
  os << g.AttrName(attr) << ' ' << CompareOpName(op) << ' '
     << constant.ToString();
  return os.str();
}

QNodeId Query::AddNode(SymbolId label) {
  nodes_.push_back(QueryNode{label, {}});
  return static_cast<QNodeId>(nodes_.size() - 1);
}

void Query::AddLiteral(QNodeId u, Literal l) {
  WHYQ_CHECK(u < nodes_.size());
  nodes_[u].literals.push_back(std::move(l));
}

void Query::AddEdge(QNodeId src, QNodeId dst, SymbolId label) {
  WHYQ_CHECK(src < nodes_.size() && dst < nodes_.size());
  edges_.push_back(QueryEdge{src, dst, label});
}

void Query::SetOutput(QNodeId u) {
  WHYQ_CHECK(u < nodes_.size());
  output_ = u;
  if (outputs_.empty()) {
    outputs_.push_back(u);
  } else {
    outputs_[0] = u;
  }
}

void Query::AddOutput(QNodeId u) {
  WHYQ_CHECK(u < nodes_.size());
  if (outputs_.empty()) {
    SetOutput(u);
    return;
  }
  if (std::find(outputs_.begin(), outputs_.end(), u) == outputs_.end()) {
    outputs_.push_back(u);
  }
}

bool Query::RemoveEdge(QNodeId src, QNodeId dst, SymbolId label) {
  QueryEdge probe{src, dst, label};
  auto it = std::find(edges_.begin(), edges_.end(), probe);
  if (it == edges_.end()) return false;
  edges_.erase(it);
  return true;
}

bool Query::RemoveLiteral(QNodeId u, const Literal& l) {
  WHYQ_CHECK(u < nodes_.size());
  auto& lits = nodes_[u].literals;
  auto it = std::find(lits.begin(), lits.end(), l);
  if (it == lits.end()) return false;
  lits.erase(it);
  return true;
}

bool Query::ReplaceLiteral(QNodeId u, const Literal& before,
                           const Literal& replacement) {
  WHYQ_CHECK(u < nodes_.size());
  auto& lits = nodes_[u].literals;
  auto it = std::find(lits.begin(), lits.end(), before);
  if (it == lits.end()) return false;
  *it = replacement;
  return true;
}

size_t Query::Size() const {
  size_t literals = 0;
  for (const QueryNode& n : nodes_) literals += n.literals.size();
  return literals + edges_.size();
}

std::vector<size_t> Query::BfsFrom(QNodeId start) const {
  std::vector<size_t> dist(nodes_.size(), kUnreachable);
  if (start >= nodes_.size()) return dist;
  // Build undirected adjacency once per call; queries are tiny.
  std::vector<std::vector<QNodeId>> adj(nodes_.size());
  for (const QueryEdge& e : edges_) {
    adj[e.src].push_back(e.dst);
    adj[e.dst].push_back(e.src);
  }
  std::vector<QNodeId> frontier{start};
  dist[start] = 0;
  for (size_t head = 0; head < frontier.size(); ++head) {
    QNodeId u = frontier[head];
    for (QNodeId w : adj[u]) {
      if (dist[w] == kUnreachable) {
        dist[w] = dist[u] + 1;
        frontier.push_back(w);
      }
    }
  }
  return dist;
}

bool Query::IsConnected() const {
  if (nodes_.empty()) return true;
  std::vector<size_t> dist = BfsFrom(output_ == kInvalidQNode ? 0 : output_);
  for (size_t d : dist) {
    if (d == kUnreachable) return false;
  }
  return true;
}

bool Query::Validate(std::string* error) const {
  if (nodes_.empty()) {
    if (error) *error = "query has no nodes";
    return false;
  }
  if (output_ == kInvalidQNode || output_ >= nodes_.size()) {
    if (error) *error = "query has no valid output node";
    return false;
  }
  for (const QueryEdge& e : edges_) {
    if (e.src >= nodes_.size() || e.dst >= nodes_.size()) {
      if (error) *error = "edge references unknown node";
      return false;
    }
  }
  for (QNodeId u : outputs_) {
    if (u >= nodes_.size()) {
      if (error) *error = "output list references unknown node";
      return false;
    }
  }
  return true;
}

size_t Query::DistanceToOutput(QNodeId u) const {
  WHYQ_CHECK(u < nodes_.size());
  return BfsFrom(output_)[u];
}

size_t Query::Diameter() const {
  // Eccentricity max over the output's component (disconnected rewrites keep
  // the diameter of the evaluated component).
  size_t best = 0;
  std::vector<size_t> from_output = BfsFrom(output_);
  for (QNodeId u = 0; u < nodes_.size(); ++u) {
    if (from_output[u] == kUnreachable) continue;
    std::vector<size_t> d = BfsFrom(u);
    for (QNodeId w = 0; w < nodes_.size(); ++w) {
      if (from_output[w] == kUnreachable) continue;
      if (d[w] != kUnreachable) best = std::max(best, d[w]);
    }
  }
  return best;
}

double Query::OutputCentrality(QNodeId u) const {
  size_t d = DistanceToOutput(u);
  if (d == kUnreachable) return 0.0;
  return static_cast<double>(Diameter()) / static_cast<double>(d + 1);
}

std::vector<QNodeId> Query::UndirectedNeighbors(QNodeId u) const {
  std::vector<QNodeId> out;
  for (const QueryEdge& e : edges_) {
    if (e.src == u) out.push_back(e.dst);
    if (e.dst == u) out.push_back(e.src);
  }
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

std::vector<QNodeId> Query::OutputComponent() const {
  std::vector<QNodeId> out;
  std::vector<size_t> dist = BfsFrom(output_);
  for (QNodeId u = 0; u < nodes_.size(); ++u) {
    if (dist[u] != kUnreachable) out.push_back(u);
  }
  return out;
}

std::string Query::ToString(const Graph& g) const {
  std::ostringstream os;
  for (QNodeId u = 0; u < nodes_.size(); ++u) {
    os << "  u" << u << (u == output_ ? "*" : " ") << ' '
       << g.NodeLabelName(nodes_[u].label);
    for (const Literal& l : nodes_[u].literals) {
      os << " [" << l.ToString(g) << ']';
    }
    os << '\n';
  }
  for (const QueryEdge& e : edges_) {
    os << "  u" << e.src << " -" << g.EdgeLabelName(e.label) << "-> u"
       << e.dst << '\n';
  }
  return os.str();
}

}  // namespace whyq
