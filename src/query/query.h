#ifndef WHYQ_QUERY_QUERY_H_
#define WHYQ_QUERY_QUERY_H_

#include <cstdint>
#include <limits>
#include <string>
#include <vector>

#include "common/dictionary.h"
#include "common/value.h"
#include "graph/graph.h"

namespace whyq {

/// Query-node identifier within one Query.
using QNodeId = uint32_t;

inline constexpr QNodeId kInvalidQNode = UINT32_MAX;

/// A predicate literal `u.A op c` attached to a query node (Section II).
struct Literal {
  SymbolId attr = kInvalidSymbol;
  CompareOp op = CompareOp::kEq;
  Value constant;

  bool operator==(const Literal& rhs) const {
    return attr == rhs.attr && op == rhs.op && constant == rhs.constant;
  }

  std::string ToString(const Graph& g) const;
};

/// A query node: label plus the conjunction F_Q(u) of literals.
struct QueryNode {
  SymbolId label = kInvalidSymbol;
  std::vector<Literal> literals;
};

/// A directed, labeled query edge.
struct QueryEdge {
  QNodeId src = kInvalidQNode;
  QNodeId dst = kInvalidQNode;
  SymbolId label = kInvalidSymbol;

  bool operator==(const QueryEdge& rhs) const {
    return src == rhs.src && dst == rhs.dst && label == rhs.label;
  }
};

/// A subgraph query Q = (V_Q, E_Q, L_Q, F_Q, u_o): a labeled pattern graph
/// whose designated output node u_o identifies the entities to return.
///
/// Symbols (labels, attribute names) are ids in the target Graph's
/// dictionaries; a query is built against a specific graph's symbol space
/// (labels absent from the graph simply match nothing).
///
/// Mutation is limited to construction-style appends plus the operations
/// needed by rewrite application (literal edits, edge/literal removal); the
/// rewriting layer in rewrite/ is the intended mutator.
///
/// Thread-safety: immutable after construction, shared across workers. All
/// const accessors (including Size/IsConnected/DistanceToOutput) compute on
/// demand with no mutable caches, so a built Query may be read concurrently.
/// Rewrite application never mutates a shared instance — ApplyOperators
/// copies, which is what makes sharing cached queries across workers safe.
class Query {
 public:
  Query() = default;

  QNodeId AddNode(SymbolId label);
  void AddLiteral(QNodeId u, Literal l);
  void AddEdge(QNodeId src, QNodeId dst, SymbolId label);
  void SetOutput(QNodeId u);

  size_t node_count() const { return nodes_.size(); }
  size_t edge_count() const { return edges_.size(); }

  const QueryNode& node(QNodeId u) const { return nodes_[u]; }
  QueryNode& mutable_node(QNodeId u) { return nodes_[u]; }
  const std::vector<QueryEdge>& edges() const { return edges_; }

  QNodeId output() const { return output_; }

  /// Additional output nodes for the multi-output extension (Section V);
  /// `output()` is always the first entry.
  const std::vector<QNodeId>& outputs() const { return outputs_; }
  void AddOutput(QNodeId u);

  /// Removes the edge (src, dst) with the given label; returns false when
  /// absent. Nodes are never removed (a disconnected rewrite keeps them; the
  /// matcher evaluates the component of the output node only).
  bool RemoveEdge(QNodeId src, QNodeId dst, SymbolId label);

  /// Removes an exact literal from u; returns false when absent.
  bool RemoveLiteral(QNodeId u, const Literal& l);

  /// Replaces an exact literal on u with `replacement`; false when absent.
  bool ReplaceLiteral(QNodeId u, const Literal& before,
                      const Literal& replacement);

  /// |Q| = number of literals + number of edges (paper's query size).
  size_t Size() const;

  /// True iff every node reaches the output node (undirected).
  bool IsConnected() const;

  /// Structural sanity: edges reference valid nodes, output designated.
  bool Validate(std::string* error) const;

  // --- Metrics for the cost model (Section III-C) ---

  /// Sentinel distance for nodes disconnected from the output.
  static constexpr size_t kUnreachable = std::numeric_limits<size_t>::max();

  /// Undirected distance d(u, u_o) in Q.
  size_t DistanceToOutput(QNodeId u) const;

  /// Undirected diameter d_Q over the component of the output node.
  size_t Diameter() const;

  /// Output centrality oc(u) = d_Q / (d(u,u_o) + 1). For the degenerate
  /// single-node query (d_Q = 0) the paper's formula yields 0; we follow it.
  /// Unreachable nodes get centrality 0.
  double OutputCentrality(QNodeId u) const;

  /// Undirected neighbors of u (query nodes sharing an edge with u).
  std::vector<QNodeId> UndirectedNeighbors(QNodeId u) const;

  /// The set of query nodes in the output node's undirected component.
  std::vector<QNodeId> OutputComponent() const;

  /// Human-readable multi-line rendering (names resolved against g).
  std::string ToString(const Graph& g) const;

 private:
  std::vector<size_t> BfsFrom(QNodeId start) const;

  std::vector<QueryNode> nodes_;
  std::vector<QueryEdge> edges_;
  QNodeId output_ = kInvalidQNode;
  std::vector<QNodeId> outputs_;
};

}  // namespace whyq

#endif  // WHYQ_QUERY_QUERY_H_
