#include "query/query_dot.h"

#include <algorithm>
#include <sstream>

namespace whyq {

namespace {

// DOT string literals need '"' and '\' escaped.
std::string Escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    if (c == '"' || c == '\\') out.push_back('\\');
    out.push_back(c);
  }
  return out;
}

std::string NodeLabel(const Query& q, const Graph& g, QNodeId u) {
  std::ostringstream os;
  os << g.NodeLabelName(q.node(u).label);
  for (const Literal& l : q.node(u).literals) {
    os << "\\n" << l.ToString(g);
  }
  return Escape(os.str());
}

bool HasLiteral(const Query& q, QNodeId u, const Literal& l) {
  if (u >= q.node_count()) return false;
  const auto& lits = q.node(u).literals;
  return std::find(lits.begin(), lits.end(), l) != lits.end();
}

bool HasEdge(const Query& q, const QueryEdge& e) {
  const auto& es = q.edges();
  return std::find(es.begin(), es.end(), e) != es.end();
}

}  // namespace

std::string QueryToDot(const Query& q, const Graph& g,
                       const std::string& graph_name) {
  std::ostringstream os;
  os << "digraph " << graph_name << " {\n"
     << "  node [shape=box, fontsize=10];\n";
  for (QNodeId u = 0; u < q.node_count(); ++u) {
    os << "  u" << u << " [label=\"" << NodeLabel(q, g, u) << "\"";
    if (u == q.output()) os << ", peripheries=2";
    os << "];\n";
  }
  for (const QueryEdge& e : q.edges()) {
    os << "  u" << e.src << " -> u" << e.dst << " [label=\""
       << Escape(g.EdgeLabelName(e.label)) << "\"];\n";
  }
  os << "}\n";
  return os.str();
}

std::string RewriteToDot(const Query& before, const Query& after,
                         const Graph& g, const std::string& graph_name) {
  std::ostringstream os;
  os << "digraph " << graph_name << " {\n"
     << "  node [shape=box, fontsize=10];\n";
  size_t max_nodes = std::max(before.node_count(), after.node_count());
  for (QNodeId u = 0; u < max_nodes; ++u) {
    bool in_before = u < before.node_count();
    bool in_after = u < after.node_count();
    // Node label: the after-side view (with per-literal diff colors done
    // via markers); nodes only in `after` are new (green), only in
    // `before` cannot happen (rewrites append).
    const Query& src = in_after ? after : before;
    std::ostringstream label;
    label << g.NodeLabelName(src.node(u).label);
    if (in_before && in_after) {
      for (const Literal& l : before.node(u).literals) {
        label << "\\n" << (HasLiteral(after, u, l) ? "" : "[-] ")
              << l.ToString(g);
      }
      for (const Literal& l : after.node(u).literals) {
        if (!HasLiteral(before, u, l)) {
          label << "\\n[+] " << l.ToString(g);
        }
      }
    } else {
      for (const Literal& l : src.node(u).literals) {
        label << "\\n" << l.ToString(g);
      }
    }
    os << "  u" << u << " [label=\"" << Escape(label.str()) << "\"";
    if (u == after.output()) os << ", peripheries=2";
    if (!in_before) os << ", color=green";
    os << "];\n";
  }
  for (const QueryEdge& e : before.edges()) {
    os << "  u" << e.src << " -> u" << e.dst << " [label=\""
       << Escape(g.EdgeLabelName(e.label)) << "\"";
    if (!HasEdge(after, e)) os << ", color=red, style=dashed";
    os << "];\n";
  }
  for (const QueryEdge& e : after.edges()) {
    if (HasEdge(before, e)) continue;
    os << "  u" << e.src << " -> u" << e.dst << " [label=\""
       << Escape(g.EdgeLabelName(e.label)) << "\", color=green];\n";
  }
  os << "}\n";
  return os.str();
}

}  // namespace whyq
