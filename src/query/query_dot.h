#ifndef WHYQ_QUERY_QUERY_DOT_H_
#define WHYQ_QUERY_QUERY_DOT_H_

#include <string>

#include "graph/graph.h"
#include "query/query.h"

namespace whyq {

/// Graphviz (DOT) rendering of queries and rewrites — the visual-querying
/// side of exploratory search the paper motivates (Fig. 2: "the difference
/// between the query rewrite Q' and its original counterpart Q blends
/// visual querying and approximate search").

/// Renders one query. The output node is drawn with a double border;
/// literals appear inside the node label.
std::string QueryToDot(const Query& q, const Graph& g,
                       const std::string& graph_name = "Q");

/// Renders a rewrite diff: elements shared by `before` and `after` are
/// black, elements only in `after` (added constraints) are green, elements
/// only in `before` (dropped constraints) are red and dashed. Node ids are
/// aligned by index (rewrites only append nodes).
std::string RewriteToDot(const Query& before, const Query& after,
                         const Graph& g,
                         const std::string& graph_name = "Rewrite");

}  // namespace whyq

#endif  // WHYQ_QUERY_QUERY_DOT_H_
