#include "query/query_parser.h"

#include <sstream>
#include <unordered_map>
#include <vector>

#include "graph/graph_io.h"

namespace whyq {

namespace {

std::vector<std::string> Tokenize(const std::string& line) {
  std::vector<std::string> out;
  std::istringstream is(line);
  std::string tok;
  while (is >> tok) out.push_back(tok);
  return out;
}

SymbolId ResolveOrInvalid(const Dictionary& dict, const std::string& name) {
  std::optional<SymbolId> id = dict.Find(name);
  return id.has_value() ? *id : kInvalidSymbol;
}

}  // namespace

std::optional<CompareOp> ParseCompareOp(const std::string& token) {
  if (token == "<") return CompareOp::kLt;
  if (token == "<=") return CompareOp::kLe;
  if (token == "=" || token == "==") return CompareOp::kEq;
  if (token == ">=") return CompareOp::kGe;
  if (token == ">") return CompareOp::kGt;
  return std::nullopt;
}

std::optional<Query> ParseQuery(const std::string& text, const Graph& g,
                                std::string* error) {
  Query q;
  std::unordered_map<std::string, QNodeId> names;
  std::istringstream is(text);
  std::string line;
  size_t line_no = 0;
  auto fail = [&](const std::string& what) {
    if (error) *error = "line " + std::to_string(line_no) + ": " + what;
  };
  bool saw_output = false;
  while (std::getline(is, line)) {
    ++line_no;
    if (line.empty() || line[0] == '#') continue;
    std::vector<std::string> toks = Tokenize(line);
    if (toks.empty()) continue;
    if (toks[0] == "node") {
      if (toks.size() < 3 || (toks.size() - 3) % 3 != 0) {
        fail("node needs: name label (attr op value)*");
        return std::nullopt;
      }
      if (names.count(toks[1])) {
        fail("duplicate node name " + toks[1]);
        return std::nullopt;
      }
      QNodeId u = q.AddNode(ResolveOrInvalid(g.node_labels(), toks[2]));
      names[toks[1]] = u;
      for (size_t i = 3; i + 2 < toks.size(); i += 3) {
        std::optional<CompareOp> op = ParseCompareOp(toks[i + 1]);
        std::optional<Value> val = ParseTypedValue(toks[i + 2]);
        if (!op.has_value() || !val.has_value()) {
          fail("bad literal at token " + toks[i]);
          return std::nullopt;
        }
        Literal l;
        l.attr = ResolveOrInvalid(g.attr_names(), toks[i]);
        l.op = *op;
        l.constant = std::move(*val);
        q.AddLiteral(u, std::move(l));
      }
    } else if (toks[0] == "edge") {
      if (toks.size() != 4) {
        fail("edge needs: src dst label");
        return std::nullopt;
      }
      auto s = names.find(toks[1]);
      auto d = names.find(toks[2]);
      if (s == names.end() || d == names.end()) {
        fail("edge references undeclared node");
        return std::nullopt;
      }
      q.AddEdge(s->second, d->second,
                ResolveOrInvalid(g.edge_labels(), toks[3]));
    } else if (toks[0] == "output") {
      if (toks.size() < 2) {
        fail("output needs at least one node name");
        return std::nullopt;
      }
      for (size_t i = 1; i < toks.size(); ++i) {
        auto it = names.find(toks[i]);
        if (it == names.end()) {
          fail("output references undeclared node " + toks[i]);
          return std::nullopt;
        }
        if (i == 1 && !saw_output) {
          q.SetOutput(it->second);
          saw_output = true;
        } else {
          q.AddOutput(it->second);
        }
      }
    } else {
      fail("unknown declaration " + toks[0]);
      return std::nullopt;
    }
  }
  std::string verr;
  if (!q.Validate(&verr)) {
    line_no = 0;
    fail(verr);
    return std::nullopt;
  }
  return q;
}

std::string WriteQuery(const Query& q, const Graph& g) {
  std::ostringstream os;
  for (QNodeId u = 0; u < q.node_count(); ++u) {
    os << "node n" << u << ' ' << g.NodeLabelName(q.node(u).label);
    for (const Literal& l : q.node(u).literals) {
      os << ' ' << g.AttrName(l.attr) << ' ' << CompareOpName(l.op) << ' '
         << FormatTypedValue(l.constant);
    }
    os << '\n';
  }
  for (const QueryEdge& e : q.edges()) {
    os << "edge n" << e.src << " n" << e.dst << ' '
       << g.EdgeLabelName(e.label) << '\n';
  }
  os << "output";
  for (QNodeId u : q.outputs()) os << " n" << u;
  os << '\n';
  return os.str();
}

}  // namespace whyq
