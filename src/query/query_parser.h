#ifndef WHYQ_QUERY_QUERY_PARSER_H_
#define WHYQ_QUERY_QUERY_PARSER_H_

#include <optional>
#include <string>

#include "graph/graph.h"
#include "query/query.h"

namespace whyq {

/// Textual query DSL (one declaration per line, tokens whitespace-split):
///
///   node <name> <Label> [<Attr> <op> <typed-value>]...
///   edge <name> <name> <EdgeLabel>
///   output <name> [<name> ...]
///   # comment
///
/// `op` is one of < <= = >= >; typed values use graph_io's `i:`/`d:`/`s:`
/// forms. Labels / attribute names are resolved in `g`'s symbol space; names
/// absent from the graph are accepted (they match nothing), which mirrors a
/// user probing an unfamiliar graph.
std::optional<Query> ParseQuery(const std::string& text, const Graph& g,
                                std::string* error);

/// Serializes a query back into the DSL (round-trips through ParseQuery).
std::string WriteQuery(const Query& q, const Graph& g);

/// Parses a comparison-operator token.
std::optional<CompareOp> ParseCompareOp(const std::string& token);

}  // namespace whyq

#endif  // WHYQ_QUERY_QUERY_PARSER_H_
