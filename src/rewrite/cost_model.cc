#include "rewrite/cost_model.h"

#include <algorithm>

#include "common/check.h"

namespace whyq {

CostModel::CostModel(const Query& q, const Graph& g, bool weighted)
    : g_(g), weighted_(weighted) {
  diameter_ = q.Diameter();
  centrality_.resize(q.node_count());
  dist_.resize(q.node_count());
  for (QNodeId u = 0; u < q.node_count(); ++u) {
    dist_[u] = q.DistanceToOutput(u);
    centrality_[u] = q.OutputCentrality(u);
  }
}

double CostModel::Centrality(QNodeId u) const {
  WHYQ_CHECK(u < centrality_.size());
  return centrality_[u];
}

double CostModel::MinOperatorCost() const {
  return static_cast<double>(diameter_) /
         static_cast<double>(diameter_ + 2);
}

double CostModel::WeightOf(const EditOp& op) const {
  if (!weighted_) return 1.0;
  if (op.kind != OpKind::kRxL && op.kind != OpKind::kRfL) return 1.0;
  const AttrRange* r = g_.RangeOf(op.before.attr);
  if (r == nullptr || !r->numeric) return 1.0;
  double range = r->max - r->min;
  if (range <= 0.0) return 1.0;
  std::optional<double> diff =
      AbsoluteDifference(op.before.constant, op.after.constant);
  if (!diff.has_value()) return 1.0;
  return 1.0 + *diff / range;
}

double CostModel::Cost(const EditOp& op) const {
  switch (op.kind) {
    case OpKind::kRxL:
    case OpKind::kRfL:
    case OpKind::kRmL:
    case OpKind::kAddL:
      return WeightOf(op) * Centrality(op.u);
    case OpKind::kRmE:
      return std::min(Centrality(op.u), Centrality(op.v));
    case OpKind::kAddE: {
      if (op.new_node.has_value()) {
        size_t d_new = dist_[op.u] == Query::kUnreachable
                           ? Query::kUnreachable
                           : dist_[op.u] + 1;
        double oc_new =
            d_new == Query::kUnreachable
                ? 0.0
                : static_cast<double>(diameter_) /
                      static_cast<double>(d_new + 1);
        // A composite AddE bundles the edge plus AddL operators on the new
        // node; the paper prices those AddL separately at the new node's
        // centrality (Example 4: c(O_1) = 2 + 1 + 1 = 4).
        return std::min(Centrality(op.u), oc_new) +
               oc_new * static_cast<double>(op.new_node->literals.size());
      }
      return std::min(Centrality(op.u), Centrality(op.v));
    }
  }
  return 0.0;
}

double CostModel::Cost(const OperatorSet& ops) const {
  double total = 0.0;
  for (const EditOp& op : ops) total += Cost(op);
  return total;
}

}  // namespace whyq
