#ifndef WHYQ_REWRITE_COST_MODEL_H_
#define WHYQ_REWRITE_COST_MODEL_H_

#include <vector>

#include "graph/graph.h"
#include "query/query.h"
#include "rewrite/operators.h"

namespace whyq {

/// The editing-cost model c(O) of Section III-C, evaluated against the
/// *original* query Q (operator costs do not change as a set grows).
///
///   oc(u) = d_Q / (d(u, u_o) + 1)             (output centrality)
///   node operator on u:        c(o) = w(o) * oc(u)
///   edge operator on (u, u'):  c(o) = min(oc(u), oc(u'))
///
/// A composite AddE that introduces a fresh node places it at distance
/// d(u, u_o) + 1; its cost is the edge cost min(oc(u), oc(new)) plus one
/// AddL cost oc(new) per literal it carries — the paper prices bundled
/// literals as separate AddL operators (Example 4: c(O_1) = 2+1+1 = 4).
///
/// With `weighted` enabled (the paper's "Remarks" extension), RxL/RfL get
/// w(o) = 1 + |c' - c| / range(D(A)) using the graph-wide numeric range of
/// the attribute; all other operators keep w(o) = 1. Non-numeric or
/// degenerate (zero-width) domains also use w(o) = 1.
class CostModel {
 public:
  CostModel(const Query& q, const Graph& g, bool weighted = true);

  double Cost(const EditOp& op) const;
  double Cost(const OperatorSet& ops) const;

  /// oc(u) for an original query node.
  double Centrality(QNodeId u) const;

  /// Smallest possible single-operator cost given this query's shape — any
  /// operator costs at least d_Q/(d_Q+2) (used to bound MBS sizes).
  double MinOperatorCost() const;

  size_t diameter() const { return diameter_; }
  bool weighted() const { return weighted_; }

 private:
  double WeightOf(const EditOp& op) const;

  const Graph& g_;
  std::vector<double> centrality_;  // per original query node
  std::vector<size_t> dist_;        // d(u, u_o)
  size_t diameter_ = 0;
  bool weighted_ = true;
};

}  // namespace whyq

#endif  // WHYQ_REWRITE_COST_MODEL_H_
