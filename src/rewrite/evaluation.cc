#include "rewrite/evaluation.h"

#include <algorithm>

namespace whyq {

namespace {

std::vector<NodeId> Dedup(std::vector<NodeId> v) {
  std::sort(v.begin(), v.end());
  v.erase(std::unique(v.begin(), v.end()), v.end());
  return v;
}

}  // namespace

WhyEvaluator::WhyEvaluator(const Graph& g, std::vector<NodeId> answers,
                           const WhyQuestion& w, size_t guard_m,
                           MatchSemantics semantics,
                           const CancelToken* cancel)
    : g_(g),
      ctx_(semantics == MatchSemantics::kIsomorphism
               ? std::make_unique<MatchContext>(g)
               : nullptr),
      engine_(MakeMatchEngine(g, semantics, ctx_.get())),
      answers_(std::move(answers)),
      unexpected_set_(std::vector<NodeId>{}, g.node_count()),
      guard_m_(guard_m) {
  engine_->SetCancelToken(cancel);
  NodeSet answer_set(answers_, g.node_count());
  for (NodeId v : Dedup(w.unexpected)) {
    if (answer_set.Contains(v)) {
      unexpected_.push_back(v);
      unexpected_set_.Insert(v);
    }
  }
  for (NodeId v : answers_) {
    if (!unexpected_set_.Contains(v)) desired_answers_.push_back(v);
  }
}

EvalResult WhyEvaluator::Evaluate(const Query& rewritten) const {
  EvalResult r;
  // Guard first: collateral exclusions from the desired answers (batched:
  // one matching plan for the whole sweep).
  std::vector<uint8_t> desired_ok =
      engine_->TestAnswers(rewritten, desired_answers_);
  for (uint8_t ok : desired_ok) {
    if (!ok && ++r.guard > guard_m_) {
      r.guard_ok = false;
      return r;
    }
  }
  if (unexpected_.empty()) return r;
  std::vector<uint8_t> unexpected_ok =
      engine_->TestAnswers(rewritten, unexpected_);
  size_t excluded = 0;
  for (uint8_t ok : unexpected_ok) excluded += ok ? 0 : 1;
  r.closeness = static_cast<double>(excluded) /
                static_cast<double>(unexpected_.size());
  return r;
}

bool WhyEvaluator::GuardOk(const Query& rewritten) const {
  size_t guard = 0;
  std::vector<uint8_t> ok = engine_->TestAnswers(rewritten, desired_answers_);
  for (uint8_t o : ok) {
    if (!o && ++guard > guard_m_) return false;
  }
  return true;
}

std::vector<NodeId> WhyEvaluator::AffectedAnswers(
    const Query& rewritten) const {
  std::vector<NodeId> out;
  std::vector<uint8_t> ok = engine_->TestAnswers(rewritten, answers_);
  for (size_t i = 0; i < answers_.size(); ++i) {
    if (!ok[i]) out.push_back(answers_[i]);
  }
  return out;
}

WhyNotEvaluator::WhyNotEvaluator(const Graph& g,
                                 std::vector<NodeId> answers,
                                 const WhyNotQuestion& w, size_t guard_m,
                                 MatchSemantics semantics,
                                 const CancelToken* cancel)
    : g_(g),
      ctx_(semantics == MatchSemantics::kIsomorphism
               ? std::make_unique<MatchContext>(g)
               : nullptr),
      engine_(MakeMatchEngine(g, semantics, ctx_.get())),
      answers_(std::move(answers)),
      protected_set_(answers_, g.node_count()),
      guard_m_(guard_m) {
  engine_->SetCancelToken(cancel);
  std::vector<NodeId> missing;
  for (NodeId v : Dedup(w.missing)) {
    if (!protected_set_.Contains(v)) missing.push_back(v);
  }
  missing_ = w.condition.Filter(g, missing, answers_);
  // Every user-named missing entity is exempt from the guard — C narrows
  // which inclusions count toward closeness, but an entity the user asked
  // about is never an "undesired" match.
  for (NodeId v : missing) protected_set_.Insert(v);
}

EvalResult WhyNotEvaluator::Evaluate(const Query& rewritten) const {
  EvalResult r;
  r.guard = engine_->CountAnswersNotIn(rewritten, protected_set_, guard_m_);
  if (r.guard > guard_m_) {
    r.guard_ok = false;
    return r;
  }
  if (missing_.empty()) return r;
  std::vector<uint8_t> ok = engine_->TestAnswers(rewritten, missing_);
  size_t included = 0;
  for (uint8_t o : ok) included += o ? 1 : 0;
  r.closeness =
      static_cast<double>(included) / static_cast<double>(missing_.size());
  return r;
}

bool WhyNotEvaluator::GuardOk(const Query& rewritten) const {
  return engine_->CountAnswersNotIn(rewritten, protected_set_, guard_m_) <=
         guard_m_;
}

std::vector<NodeId> WhyNotEvaluator::NewMatches(
    const Query& rewritten) const {
  std::vector<NodeId> out;
  std::vector<uint8_t> ok = engine_->TestAnswers(rewritten, missing_);
  for (size_t i = 0; i < missing_.size(); ++i) {
    if (ok[i]) out.push_back(missing_[i]);
  }
  return out;
}

}  // namespace whyq
