#ifndef WHYQ_REWRITE_EVALUATION_H_
#define WHYQ_REWRITE_EVALUATION_H_

#include <vector>

#include "graph/graph.h"
#include "graph/neighborhood.h"
#include "matcher/match_engine.h"
#include "query/query.h"
#include "why/question.h"

namespace whyq {

/// Exact evaluation outcome of one candidate rewrite.
struct EvalResult {
  double closeness = 0.0;  // cl(O) per Section III-C
  size_t guard = 0;        // collateral answer changes (exact up to m+1)
  bool guard_ok = true;    // guard <= m
};

/// Exact closeness/guard evaluator for Why questions against a fixed
/// (Q, G, Q(u_o,G), V_N). This is the paper's Match procedure: it checks
/// incrementally which original answers survive the rewrite instead of
/// recomputing Q'(u_o, G) from scratch, early-terminating per node on the
/// first embedding and early-terminating the guard count beyond m.
///
/// Evaluators are per-request objects (they own a stateful MatchEngine and,
/// under isomorphism semantics, a MatchContext that memoizes candidate
/// sets across every rewrite the evaluator verifies — see
/// matcher/match_context.h); `cancel` (not owned, may be null) is forwarded
/// into the engine so verification sweeps stop mid-search once a deadline
/// passes.
class WhyEvaluator {
 public:
  WhyEvaluator(const Graph& g, std::vector<NodeId> answers,
               const WhyQuestion& w, size_t guard_m,
               MatchSemantics semantics = MatchSemantics::kIsomorphism,
               const CancelToken* cancel = nullptr);

  /// cl(O) and guard of a refinement rewrite.
  EvalResult Evaluate(const Query& rewritten) const;

  /// Guard-only check (early-terminating): does the rewrite exclude at most
  /// m desired answers? Used as the admissibility predicate of the exact
  /// guard-aware MBS enumeration.
  bool GuardOk(const Query& rewritten) const;

  /// Aff(·): original answers that are no longer matches under `rewritten`
  /// (exact; used to seed EstMatch for each single picky operator).
  std::vector<NodeId> AffectedAnswers(const Query& rewritten) const;

  const std::vector<NodeId>& answers() const { return answers_; }
  const std::vector<NodeId>& unexpected() const { return unexpected_; }
  size_t guard_m() const { return guard_m_; }
  const MatchEngine& engine() const { return *engine_; }
  const Graph& graph() const { return g_; }

  /// The evaluator's candidate memo (null under simulation semantics).
  /// Single-thread state, like the evaluator itself.
  MatchContext* context() const { return ctx_.get(); }
  /// Cache counters (zeros when context() is null).
  MatchContext::Stats ContextStats() const {
    return ctx_ ? ctx_->stats() : MatchContext::Stats();
  }

  bool IsUnexpected(NodeId v) const { return unexpected_set_.Contains(v); }

 private:
  const Graph& g_;
  std::unique_ptr<MatchContext> ctx_;  // declared before engine_ (init order)
  std::unique_ptr<MatchEngine> engine_;
  std::vector<NodeId> answers_;
  std::vector<NodeId> unexpected_;       // V_N (deduplicated, ⊆ answers)
  std::vector<NodeId> desired_answers_;  // Q(u_o,G) \ V_N
  NodeSet unexpected_set_;
  size_t guard_m_;
};

/// Exact evaluator for Why-not questions against (Q, G, Q(u_o,G), V_C, C).
/// The missing set is filtered through C once at construction; the guard
/// |Q'(u_o,G) \ (Q(u_o,G) ∪ V_C)| is counted with early termination at
/// m + 1 via the matcher's capped answer enumeration.
class WhyNotEvaluator {
 public:
  WhyNotEvaluator(const Graph& g, std::vector<NodeId> answers,
                  const WhyNotQuestion& w, size_t guard_m,
                  MatchSemantics semantics = MatchSemantics::kIsomorphism,
                  const CancelToken* cancel = nullptr);

  EvalResult Evaluate(const Query& rewritten) const;

  /// Guard-only check: at most m matches outside Q(u_o,G) ∪ V_C.
  bool GuardOk(const Query& rewritten) const;

  /// Missing entities (post-C) that become matches under `rewritten`.
  std::vector<NodeId> NewMatches(const Query& rewritten) const;

  const std::vector<NodeId>& answers() const { return answers_; }

  /// V_C after applying the selection condition C.
  const std::vector<NodeId>& missing() const { return missing_; }

  /// Q(u_o,G) ∪ V_C (raw, pre-C): the nodes exempt from the guard.
  const NodeSet& protected_set() const { return protected_set_; }
  size_t guard_m() const { return guard_m_; }
  const MatchEngine& engine() const { return *engine_; }
  const Graph& graph() const { return g_; }

  /// The evaluator's candidate memo (null under simulation semantics).
  MatchContext* context() const { return ctx_.get(); }
  /// Cache counters (zeros when context() is null).
  MatchContext::Stats ContextStats() const {
    return ctx_ ? ctx_->stats() : MatchContext::Stats();
  }

 private:
  const Graph& g_;
  std::unique_ptr<MatchContext> ctx_;  // declared before engine_ (init order)
  std::unique_ptr<MatchEngine> engine_;
  std::vector<NodeId> answers_;
  std::vector<NodeId> missing_;  // filtered V_C
  NodeSet protected_set_;        // answers ∪ V_C (exempt from the guard)
  size_t guard_m_;
};

}  // namespace whyq

#endif  // WHYQ_REWRITE_EVALUATION_H_
