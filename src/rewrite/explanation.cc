#include "rewrite/explanation.h"

#include <algorithm>
#include <sstream>

namespace whyq {

namespace {

std::string NodeName(const Graph& g, const Query& q, QNodeId u) {
  std::ostringstream os;
  os << "the " << g.NodeLabelName(q.node(u).label) << " node (u" << u << ")";
  return os.str();
}

bool HasOppositeBound(const Query& q, QNodeId u, const Literal& l) {
  for (const Literal& other : q.node(u).literals) {
    if (other.attr != l.attr) continue;
    if (IsUpperBound(l.op) && IsLowerBound(other.op)) return true;
    if (IsLowerBound(l.op) && IsUpperBound(other.op)) return true;
  }
  return false;
}

bool HasAnyLiteralOn(const Query& q, QNodeId u, SymbolId attr) {
  for (const Literal& other : q.node(u).literals) {
    if (other.attr == attr) return true;
  }
  return false;
}

}  // namespace

const char* ExplainedChangeKindName(ExplainedChange::Kind k) {
  switch (k) {
    case ExplainedChange::Kind::kTightenedBound:
      return "tightened-bound";
    case ExplainedChange::Kind::kAddedCondition:
      return "added-condition";
    case ExplainedChange::Kind::kAddedStructure:
      return "added-structure";
    case ExplainedChange::Kind::kLoosenedBound:
      return "loosened-bound";
    case ExplainedChange::Kind::kDroppedCondition:
      return "dropped-condition";
    case ExplainedChange::Kind::kDroppedStructure:
      return "dropped-structure";
  }
  return "?";
}

std::string Explanation::ToString() const {
  std::ostringstream os;
  for (const ExplainedChange& c : changes) {
    os << "  * " << c.sentence << '\n';
  }
  return os.str();
}

Explanation ExplainRewrite(const Graph& g, const Query& q,
                           const OperatorSet& ops) {
  Explanation out;
  for (const EditOp& op : ops) {
    ExplainedChange c;
    c.node = op.u;
    std::ostringstream os;
    switch (op.kind) {
      case OpKind::kRfL:
        c.kind = ExplainedChange::Kind::kTightenedBound;
        os << "the " << g.AttrName(op.before.attr) << " condition on "
           << NodeName(g, q, op.u) << " was tightened from "
           << CompareOpName(op.before.op) << ' '
           << op.before.constant.ToString() << " to "
           << CompareOpName(op.after.op) << ' '
           << op.after.constant.ToString();
        break;
      case OpKind::kRxL:
        c.kind = ExplainedChange::Kind::kLoosenedBound;
        os << "the " << g.AttrName(op.before.attr) << " condition on "
           << NodeName(g, q, op.u) << " was relaxed from "
           << CompareOpName(op.before.op) << ' '
           << op.before.constant.ToString() << " to "
           << CompareOpName(op.after.op) << ' '
           << op.after.constant.ToString();
        break;
      case OpKind::kAddL: {
        bool pairing = HasOppositeBound(q, op.u, op.after);
        c.kind = pairing || HasAnyLiteralOn(q, op.u, op.after.attr)
                     ? ExplainedChange::Kind::kTightenedBound
                     : ExplainedChange::Kind::kAddedCondition;
        os << "a new condition " << g.AttrName(op.after.attr) << ' '
           << CompareOpName(op.after.op) << ' '
           << op.after.constant.ToString() << " was required on "
           << NodeName(g, q, op.u);
        if (pairing) {
          os << " (pairing the existing "
             << g.AttrName(op.after.attr) << " bound)";
        }
        break;
      }
      case OpKind::kRmL:
        c.kind = ExplainedChange::Kind::kDroppedCondition;
        os << "the condition " << g.AttrName(op.before.attr) << ' '
           << CompareOpName(op.before.op) << ' '
           << op.before.constant.ToString() << " on "
           << NodeName(g, q, op.u) << " was dropped";
        break;
      case OpKind::kAddE:
        c.kind = ExplainedChange::Kind::kAddedStructure;
        if (op.new_node.has_value()) {
          os << NodeName(g, q, op.u) << " must now "
             << (op.edge_forward ? "have" : "be referenced by") << " a "
             << g.EdgeLabelName(op.edge_label) << " connection "
             << (op.edge_forward ? "to" : "from") << " a "
             << g.NodeLabelName(op.new_node->label) << " entity";
          for (const Literal& l : op.new_node->literals) {
            os << " with " << g.AttrName(l.attr) << ' '
               << CompareOpName(l.op) << ' ' << l.constant.ToString();
          }
        } else {
          os << "a " << g.EdgeLabelName(op.edge_label)
             << " connection is now required from " << NodeName(g, q, op.u)
             << " to " << NodeName(g, q, op.v);
        }
        break;
      case OpKind::kRmE:
        c.kind = ExplainedChange::Kind::kDroppedStructure;
        os << "the " << g.EdgeLabelName(op.edge_label)
           << " connection from " << NodeName(g, q, op.u) << " to "
           << NodeName(g, q, op.v) << " is no longer required";
        break;
    }
    c.sentence = os.str();
    out.changes.push_back(std::move(c));
  }
  return out;
}

std::string DiffQueries(const Graph& g, const Query& before,
                        const Query& after) {
  std::ostringstream os;
  size_t common_nodes = std::min(before.node_count(), after.node_count());
  for (QNodeId u = 0; u < common_nodes; ++u) {
    for (const Literal& l : before.node(u).literals) {
      const auto& lits = after.node(u).literals;
      if (std::find(lits.begin(), lits.end(), l) == lits.end()) {
        os << "- u" << u << ": " << l.ToString(g) << '\n';
      }
    }
    for (const Literal& l : after.node(u).literals) {
      const auto& lits = before.node(u).literals;
      if (std::find(lits.begin(), lits.end(), l) == lits.end()) {
        os << "+ u" << u << ": " << l.ToString(g) << '\n';
      }
    }
  }
  for (QNodeId u = static_cast<QNodeId>(common_nodes);
       u < after.node_count(); ++u) {
    os << "+ node u" << u << ' ' << g.NodeLabelName(after.node(u).label);
    for (const Literal& l : after.node(u).literals) {
      os << " [" << l.ToString(g) << ']';
    }
    os << '\n';
  }
  auto edge_str = [&](const QueryEdge& e) {
    std::ostringstream s;
    s << 'u' << e.src << " -" << g.EdgeLabelName(e.label) << "-> u" << e.dst;
    return s.str();
  };
  for (const QueryEdge& e : before.edges()) {
    const auto& es = after.edges();
    if (std::find(es.begin(), es.end(), e) == es.end()) {
      os << "- " << edge_str(e) << '\n';
    }
  }
  for (const QueryEdge& e : after.edges()) {
    const auto& es = before.edges();
    if (std::find(es.begin(), es.end(), e) == es.end()) {
      os << "+ " << edge_str(e) << '\n';
    }
  }
  return os.str();
}

}  // namespace whyq
