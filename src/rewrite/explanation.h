#ifndef WHYQ_REWRITE_EXPLANATION_H_
#define WHYQ_REWRITE_EXPLANATION_H_

#include <string>
#include <vector>

#include "graph/graph.h"
#include "query/query.h"
#include "rewrite/operators.h"

namespace whyq {

/// Human-readable explanations of query rewrites — the user-facing half of
/// answering a Why-question (Section I: "Observing the difference between
/// Q1 and Q, a possible explanation ... reveals that ...").
///
/// An explanation decomposes the operator set into per-change sentences
/// ("the Price bound on the Cellphone node was tightened from <= 650 to
/// > 120, which rules the S5 out") and classifies each change.

/// One explained change.
struct ExplainedChange {
  enum class Kind {
    kTightenedBound,   // RfL, or AddL pairing an existing bound
    kAddedCondition,   // AddL on a previously unconstrained attribute
    kAddedStructure,   // AddE
    kLoosenedBound,    // RxL
    kDroppedCondition, // RmL
    kDroppedStructure, // RmE
  };
  Kind kind;
  QNodeId node = kInvalidQNode;  // primary query node of the change
  std::string sentence;          // full rendered sentence
};

const char* ExplainedChangeKindName(ExplainedChange::Kind k);

/// An explanation for a whole rewrite.
struct Explanation {
  std::vector<ExplainedChange> changes;

  /// Multi-line rendering, one sentence per change, bulleted.
  std::string ToString() const;

  bool empty() const { return changes.empty(); }
};

/// Builds the explanation for `ops` applied to `q` (names resolved in g).
/// `excluded` / `included` optionally name the question entities the
/// rewrite acted on, enriching the sentences ("... which excludes 2 of the
/// questioned entities").
Explanation ExplainRewrite(const Graph& g, const Query& q,
                           const OperatorSet& ops);

/// Structural diff between a query and its rewrite (literal-level), useful
/// when the operator set is not at hand. Reports literals and edges that
/// are only in one of the two.
std::string DiffQueries(const Graph& g, const Query& before,
                        const Query& after);

}  // namespace whyq

#endif  // WHYQ_REWRITE_EXPLANATION_H_
