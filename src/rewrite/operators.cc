#include "rewrite/operators.h"

#include <sstream>

#include "common/check.h"

namespace whyq {

const char* OpKindName(OpKind k) {
  switch (k) {
    case OpKind::kRxL:
      return "RxL";
    case OpKind::kRmL:
      return "RmL";
    case OpKind::kRmE:
      return "RmE";
    case OpKind::kRfL:
      return "RfL";
    case OpKind::kAddL:
      return "AddL";
    case OpKind::kAddE:
      return "AddE";
  }
  return "?";
}

bool IsRelaxation(OpKind k) {
  return k == OpKind::kRxL || k == OpKind::kRmL || k == OpKind::kRmE;
}

bool IsRefinement(OpKind k) { return !IsRelaxation(k); }

bool EditOp::operator==(const EditOp& rhs) const {
  return kind == rhs.kind && u == rhs.u && v == rhs.v &&
         edge_label == rhs.edge_label && edge_forward == rhs.edge_forward &&
         before == rhs.before && after == rhs.after &&
         new_node == rhs.new_node;
}

std::string EditOp::ToString(const Graph& g) const {
  std::ostringstream os;
  os << OpKindName(kind) << '(';
  switch (kind) {
    case OpKind::kRxL:
    case OpKind::kRfL:
      os << 'u' << u << '.' << before.ToString(g) << " -> "
         << after.ToString(g);
      break;
    case OpKind::kRmL:
      os << 'u' << u << '.' << before.ToString(g);
      break;
    case OpKind::kAddL:
      os << 'u' << u << '.' << after.ToString(g);
      break;
    case OpKind::kRmE:
      os << 'u' << u << " -" << g.EdgeLabelName(edge_label) << "-> u" << v;
      break;
    case OpKind::kAddE:
      if (new_node.has_value()) {
        std::ostringstream nn;
        nn << "new:" << g.NodeLabelName(new_node->label);
        for (const Literal& l : new_node->literals) {
          nn << '[' << l.ToString(g) << ']';
        }
        if (edge_forward) {
          os << 'u' << u << " -" << g.EdgeLabelName(edge_label) << "-> "
             << nn.str();
        } else {
          os << nn.str() << " -" << g.EdgeLabelName(edge_label) << "-> u"
             << u;
        }
      } else {
        os << 'u' << u << " -" << g.EdgeLabelName(edge_label) << "-> u" << v;
      }
      break;
  }
  os << ')';
  return os.str();
}

bool OpsConflict(const EditOp& a, const EditOp& b) {
  auto edits_literal = [](OpKind k) {
    return k == OpKind::kRxL || k == OpKind::kRfL || k == OpKind::kRmL;
  };
  if (edits_literal(a.kind) && edits_literal(b.kind)) {
    return a.u == b.u && a.before == b.before;
  }
  if (a.kind == OpKind::kRmE && b.kind == OpKind::kRmE) {
    return a.u == b.u && a.v == b.v && a.edge_label == b.edge_label;
  }
  return false;
}

std::vector<std::vector<size_t>> BuildConflicts(
    const std::vector<EditOp>& ops) {
  std::vector<std::vector<size_t>> out(ops.size());
  for (size_t i = 0; i < ops.size(); ++i) {
    for (size_t j = i + 1; j < ops.size(); ++j) {
      if (OpsConflict(ops[i], ops[j])) {
        out[i].push_back(j);
        out[j].push_back(i);
      }
    }
  }
  return out;
}

Query ApplyOperators(const Query& q, const OperatorSet& ops) {
  Query out = q;
  for (const EditOp& op : ops) {
    switch (op.kind) {
      case OpKind::kRxL:
      case OpKind::kRfL: {
        bool ok = out.ReplaceLiteral(op.u, op.before, op.after);
        WHYQ_CHECK_MSG(ok, "literal to rewrite is absent");
        break;
      }
      case OpKind::kRmL: {
        bool ok = out.RemoveLiteral(op.u, op.before);
        WHYQ_CHECK_MSG(ok, "literal to remove is absent");
        break;
      }
      case OpKind::kAddL:
        out.AddLiteral(op.u, op.after);
        break;
      case OpKind::kRmE: {
        bool ok = out.RemoveEdge(op.u, op.v, op.edge_label);
        WHYQ_CHECK_MSG(ok, "edge to remove is absent");
        break;
      }
      case OpKind::kAddE: {
        if (op.new_node.has_value()) {
          QNodeId fresh = out.AddNode(op.new_node->label);
          for (const Literal& l : op.new_node->literals) {
            out.AddLiteral(fresh, l);
          }
          if (op.edge_forward) {
            out.AddEdge(op.u, fresh, op.edge_label);
          } else {
            out.AddEdge(fresh, op.u, op.edge_label);
          }
        } else {
          out.AddEdge(op.u, op.v, op.edge_label);
        }
        break;
      }
    }
  }
  return out;
}

std::string DescribeOperators(const OperatorSet& ops, const Graph& g) {
  std::ostringstream os;
  for (size_t i = 0; i < ops.size(); ++i) {
    os << (i == 0 ? "" : ", ") << ops[i].ToString(g);
  }
  return os.str();
}

}  // namespace whyq
