#ifndef WHYQ_REWRITE_OPERATORS_H_
#define WHYQ_REWRITE_OPERATORS_H_

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "graph/graph.h"
#include "query/query.h"

namespace whyq {

// Everything in this header is a value type or a pure function of const
// inputs (ApplyOperators copies q; nothing mutates shared state), so all
// of it is safe to use concurrently — the parallel batch verification in
// why/exact_search.h applies operators from many pool slots at once.
// Complexity: OpsConflict is O(1); BuildConflicts O(|ops|^2);
// ApplyOperators O(|Q| + |O|).

/// The six primitive query-editing operator classes (Section III-B).
enum class OpKind : uint8_t {
  kRxL,   // relax a literal's constant/op
  kRmL,   // remove a literal
  kRmE,   // remove an edge
  kRfL,   // refine a literal's constant/op
  kAddL,  // add a literal
  kAddE,  // add an edge (optionally introducing a new literal-carrying node)
};

const char* OpKindName(OpKind k);

/// Relaxation operators grow answers; refinement operators shrink them
/// (Lemma 1). Why-not uses relaxations, Why uses refinements.
bool IsRelaxation(OpKind k);
bool IsRefinement(OpKind k);

/// Specification of the node a composite AddE introduces: label plus the
/// (already resolved) literals it carries.
struct NewNodeSpec {
  SymbolId label = kInvalidSymbol;
  std::vector<Literal> literals;

  bool operator==(const NewNodeSpec& rhs) const {
    return label == rhs.label && literals == rhs.literals;
  }
};

/// One edit operator o. Field usage by kind:
///  - kRxL / kRfL: u, before -> after
///  - kRmL:        u, before
///  - kAddL:       u, after
///  - kRmE:        u -> v with edge_label
///  - kAddE:       u -> v with edge_label (existing endpoints), or
///                 new_node engaged: edge between u and a fresh node,
///                 direction per edge_forward (true: u -> new node).
struct EditOp {
  OpKind kind = OpKind::kAddL;
  QNodeId u = kInvalidQNode;
  QNodeId v = kInvalidQNode;
  SymbolId edge_label = kInvalidSymbol;
  bool edge_forward = true;
  Literal before;
  Literal after;
  std::optional<NewNodeSpec> new_node;

  bool operator==(const EditOp& rhs) const;

  std::string ToString(const Graph& g) const;
};

/// An operator set O inducing the rewrite Q' = Q ⊕ O.
using OperatorSet = std::vector<EditOp>;

/// Two operators conflict when they edit the same artifact of Q and cannot
/// both apply: literal edits (RxL/RfL/RmL) of the same literal on the same
/// node, or duplicate removals of the same edge. Operator sets considered
/// by the algorithms are always conflict-free.
bool OpsConflict(const EditOp& a, const EditOp& b);

/// Per-operator conflict adjacency over a picky set (indices into `ops`).
std::vector<std::vector<size_t>> BuildConflicts(
    const std::vector<EditOp>& ops);

/// Applies O to q, producing the rewrite. Query-node ids of q are preserved
/// (new AddE nodes are appended), which downstream estimation (PathIndex)
/// relies on. Operators that no longer apply (e.g., removing an already
/// removed literal) abort via WHYQ_CHECK — generators only produce
/// applicable sets, so this is an internal-invariant failure.
Query ApplyOperators(const Query& q, const OperatorSet& ops);

/// Renders an operator set for explanations ("what changed and why").
std::string DescribeOperators(const OperatorSet& ops, const Graph& g);

}  // namespace whyq

#endif  // WHYQ_REWRITE_OPERATORS_H_
