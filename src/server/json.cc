#include "server/json.h"

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <utility>

namespace whyq::server {

const JsonValue* JsonValue::Find(const std::string& key) const {
  if (type_ != Type::kObject) return nullptr;
  auto it = object_.find(key);
  return it == object_.end() ? nullptr : &it->second;
}

JsonValue JsonValue::MakeBool(bool b) {
  JsonValue v;
  v.type_ = Type::kBool;
  v.bool_ = b;
  return v;
}

JsonValue JsonValue::MakeNumber(double n) {
  JsonValue v;
  v.type_ = Type::kNumber;
  v.number_ = n;
  return v;
}

JsonValue JsonValue::MakeString(std::string s) {
  JsonValue v;
  v.type_ = Type::kString;
  v.string_ = std::move(s);
  return v;
}

JsonValue JsonValue::MakeArray(std::vector<JsonValue> items) {
  JsonValue v;
  v.type_ = Type::kArray;
  v.array_ = std::move(items);
  return v;
}

JsonValue JsonValue::MakeObject(std::map<std::string, JsonValue> fields) {
  JsonValue v;
  v.type_ = Type::kObject;
  v.object_ = std::move(fields);
  return v;
}

std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      case '\r':
        out += "\\r";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string JsonNumber(double v) {
  if (!std::isfinite(v)) return "0";
  double rounded = std::nearbyint(v);
  char buf[32];
  if (rounded == v && std::fabs(v) < 1e15) {
    std::snprintf(buf, sizeof(buf), "%.0f", v);
  } else {
    std::snprintf(buf, sizeof(buf), "%.10g", v);
  }
  return buf;
}

std::string JsonValue::Dump() const {
  switch (type_) {
    case Type::kNull:
      return "null";
    case Type::kBool:
      return bool_ ? "true" : "false";
    case Type::kNumber:
      return JsonNumber(number_);
    case Type::kString:
      return "\"" + JsonEscape(string_) + "\"";
    case Type::kArray: {
      std::string out = "[";
      for (size_t i = 0; i < array_.size(); ++i) {
        if (i > 0) out += ",";
        out += array_[i].Dump();
      }
      return out + "]";
    }
    case Type::kObject: {
      std::string out = "{";
      bool first = true;
      for (const auto& [k, v] : object_) {
        if (!first) out += ",";
        first = false;
        out += "\"" + JsonEscape(k) + "\":" + v.Dump();
      }
      return out + "}";
    }
  }
  return "null";
}

namespace {

/// Recursive-descent parser over a bounded input line. Depth is capped by
/// the caller (kMaxJsonDepth on the wire) so adversarial nesting cannot
/// grow the C++ stack.
class Parser {
 public:
  Parser(const std::string& text, size_t max_depth)
      : text_(text), max_depth_(max_depth) {}

  bool Parse(JsonValue* out, std::string* error) {
    SkipWs();
    // The top-level value sits at depth 1, so a document whose containers
    // nest deeper than max_depth_ levels fails (the header's contract).
    if (!ParseValue(out, 1)) {
      *error = error_ + " at byte " + std::to_string(pos_);
      return false;
    }
    SkipWs();
    if (pos_ != text_.size()) {
      *error = "trailing characters at byte " + std::to_string(pos_);
      return false;
    }
    return true;
  }

 private:
  void SkipWs() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' ||
            text_[pos_] == '\n' || text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  bool Fail(const std::string& msg) {
    error_ = msg;
    return false;
  }

  bool Literal(const char* word, JsonValue v, JsonValue* out) {
    size_t n = std::string(word).size();
    if (text_.compare(pos_, n, word) != 0) return Fail("invalid literal");
    pos_ += n;
    *out = std::move(v);
    return true;
  }

  bool ParseValue(JsonValue* out, size_t depth) {
    if (depth > max_depth_) return Fail("nesting too deep");
    if (pos_ >= text_.size()) return Fail("unexpected end of input");
    char c = text_[pos_];
    switch (c) {
      case 'n':
        return Literal("null", JsonValue::MakeNull(), out);
      case 't':
        return Literal("true", JsonValue::MakeBool(true), out);
      case 'f':
        return Literal("false", JsonValue::MakeBool(false), out);
      case '"': {
        std::string s;
        if (!ParseString(&s)) return false;
        *out = JsonValue::MakeString(std::move(s));
        return true;
      }
      case '[':
        return ParseArray(out, depth);
      case '{':
        return ParseObject(out, depth);
      default:
        return ParseNumber(out);
    }
  }

  bool ParseNumber(JsonValue* out) {
    size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) != 0 ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-')) {
      ++pos_;
    }
    if (pos_ == start) return Fail("invalid value");
    std::string num = text_.substr(start, pos_ - start);
    char* end = nullptr;
    double v = std::strtod(num.c_str(), &end);
    if (end == num.c_str() || *end != '\0') return Fail("invalid number");
    *out = JsonValue::MakeNumber(v);
    return true;
  }

  static int HexDigit(char c) {
    if (c >= '0' && c <= '9') return c - '0';
    if (c >= 'a' && c <= 'f') return c - 'a' + 0xa;
    if (c >= 'A' && c <= 'F') return c - 'A' + 0xa;
    return -1;
  }

  void AppendUtf8(unsigned cp, std::string* s) {
    if (cp < 0x80) {
      *s += static_cast<char>(cp);
    } else if (cp < 0x800) {
      *s += static_cast<char>(0xC0 | (cp >> 6));
      *s += static_cast<char>(0x80 | (cp & 0x3F));
    } else if (cp < 0x10000) {
      *s += static_cast<char>(0xE0 | (cp >> 0xc));
      *s += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
      *s += static_cast<char>(0x80 | (cp & 0x3F));
    } else {
      *s += static_cast<char>(0xF0 | (cp >> 0x12));
      *s += static_cast<char>(0x80 | ((cp >> 0xc) & 0x3F));
      *s += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
      *s += static_cast<char>(0x80 | (cp & 0x3F));
    }
  }

  bool ParseHex4(unsigned* out) {
    unsigned v = 0;
    for (int i = 0; i < 4; ++i) {
      if (pos_ >= text_.size()) return Fail("truncated \\u escape");
      int d = HexDigit(text_[pos_++]);
      if (d < 0) return Fail("bad \\u escape");
      v = (v << 4) | static_cast<unsigned>(d);
    }
    *out = v;
    return true;
  }

  bool ParseString(std::string* out) {
    ++pos_;  // opening quote
    while (pos_ < text_.size()) {
      char c = text_[pos_];
      if (c == '"') {
        ++pos_;
        return true;
      }
      if (static_cast<unsigned char>(c) < 0x20) {
        return Fail("unescaped control character in string");
      }
      if (c != '\\') {
        *out += c;
        ++pos_;
        continue;
      }
      ++pos_;
      if (pos_ >= text_.size()) return Fail("truncated escape");
      char e = text_[pos_++];
      switch (e) {
        case '"':
        case '\\':
        case '/':
          *out += e;
          break;
        case 'b':
          *out += '\b';
          break;
        case 'f':
          *out += '\f';
          break;
        case 'n':
          *out += '\n';
          break;
        case 'r':
          *out += '\r';
          break;
        case 't':
          *out += '\t';
          break;
        case 'u': {
          unsigned cp = 0;
          if (!ParseHex4(&cp)) return false;
          if (cp >= 0xD800 && cp <= 0xDBFF) {
            // High surrogate: a low surrogate must follow.
            if (pos_ + 1 >= text_.size() || text_[pos_] != '\\' ||
                text_[pos_ + 1] != 'u') {
              return Fail("unpaired surrogate");
            }
            pos_ += 2;
            unsigned lo = 0;
            if (!ParseHex4(&lo)) return false;
            if (lo < 0xDC00 || lo > 0xDFFF) return Fail("unpaired surrogate");
            cp = 0x10000 + ((cp - 0xD800) << 0xa) + (lo - 0xDC00);
          } else if (cp >= 0xDC00 && cp <= 0xDFFF) {
            return Fail("unpaired surrogate");
          }
          AppendUtf8(cp, out);
          break;
        }
        default:
          return Fail("bad escape");
      }
    }
    return Fail("unterminated string");
  }

  bool ParseArray(JsonValue* out, size_t depth) {
    ++pos_;  // '['
    std::vector<JsonValue> items;
    SkipWs();
    if (pos_ < text_.size() && text_[pos_] == ']') {
      ++pos_;
      *out = JsonValue::MakeArray(std::move(items));
      return true;
    }
    for (;;) {
      JsonValue v;
      SkipWs();
      if (!ParseValue(&v, depth + 1)) return false;
      items.push_back(std::move(v));
      SkipWs();
      if (pos_ >= text_.size()) return Fail("unterminated array");
      char c = text_[pos_++];
      if (c == ']') break;
      if (c != ',') return Fail("expected ',' or ']' in array");
    }
    *out = JsonValue::MakeArray(std::move(items));
    return true;
  }

  bool ParseObject(JsonValue* out, size_t depth) {
    ++pos_;  // '{'
    std::map<std::string, JsonValue> fields;
    SkipWs();
    if (pos_ < text_.size() && text_[pos_] == '}') {
      ++pos_;
      *out = JsonValue::MakeObject(std::move(fields));
      return true;
    }
    for (;;) {
      SkipWs();
      if (pos_ >= text_.size() || text_[pos_] != '"') {
        return Fail("expected string key");
      }
      std::string key;
      if (!ParseString(&key)) return false;
      SkipWs();
      if (pos_ >= text_.size() || text_[pos_++] != ':') {
        return Fail("expected ':' after key");
      }
      SkipWs();
      JsonValue v;
      if (!ParseValue(&v, depth + 1)) return false;
      fields[key] = std::move(v);
      SkipWs();
      if (pos_ >= text_.size()) return Fail("unterminated object");
      char c = text_[pos_++];
      if (c == '}') break;
      if (c != ',') return Fail("expected ',' or '}' in object");
    }
    *out = JsonValue::MakeObject(std::move(fields));
    return true;
  }

  const std::string& text_;
  size_t max_depth_;
  size_t pos_ = 0;
  std::string error_;
};

}  // namespace

bool ParseJson(const std::string& text, size_t max_depth, JsonValue* out,
               std::string* error) {
  Parser p(text, max_depth);
  return p.Parse(out, error);
}

}  // namespace whyq::server
