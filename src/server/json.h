#ifndef WHYQ_SERVER_JSON_H_
#define WHYQ_SERVER_JSON_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

namespace whyq::server {

/// Minimal JSON value for the wire protocol — parse one request line,
/// look fields up, done. Numbers are kept as doubles (the protocol's
/// integers — node ids, counts — fit a double exactly below 2^53, far
/// beyond any graph this serves). Object keys are unique; a duplicate
/// key keeps the last value, like every mainstream parser.
class JsonValue {
 public:
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };

  JsonValue() = default;

  Type type() const { return type_; }
  bool is_null() const { return type_ == Type::kNull; }
  bool is_bool() const { return type_ == Type::kBool; }
  bool is_number() const { return type_ == Type::kNumber; }
  bool is_string() const { return type_ == Type::kString; }
  bool is_array() const { return type_ == Type::kArray; }
  bool is_object() const { return type_ == Type::kObject; }

  bool as_bool() const { return bool_; }
  double as_number() const { return number_; }
  const std::string& as_string() const { return string_; }
  const std::vector<JsonValue>& as_array() const { return array_; }

  /// Object field lookup; nullptr when absent or not an object.
  const JsonValue* Find(const std::string& key) const;

  /// Compact re-serialization (used to echo request ids verbatim).
  std::string Dump() const;

  static JsonValue MakeNull() { return JsonValue(); }
  static JsonValue MakeBool(bool b);
  static JsonValue MakeNumber(double n);
  static JsonValue MakeString(std::string s);
  static JsonValue MakeArray(std::vector<JsonValue> items);
  static JsonValue MakeObject(std::map<std::string, JsonValue> fields);

 private:
  Type type_ = Type::kNull;
  bool bool_ = false;
  double number_ = 0.0;
  std::string string_;
  std::vector<JsonValue> array_;
  std::map<std::string, JsonValue> object_;
};

/// Parses `text` as one JSON document (whole input consumed; trailing
/// non-whitespace is an error). Nesting deeper than `max_depth` fails —
/// the recursive-descent parser must not let a "[[[[..." line grow the
/// stack. Returns false and sets `error` (with a byte offset) on failure.
bool ParseJson(const std::string& text, size_t max_depth, JsonValue* out,
               std::string* error);

/// JSON string escaping for hand-rolled emitters (quotes not included).
std::string JsonEscape(const std::string& s);

/// Number formatting: integers without an exponent, finite doubles with
/// enough digits to round-trip, non-finite values as 0 (JSON has no NaN).
std::string JsonNumber(double v);

}  // namespace whyq::server

#endif  // WHYQ_SERVER_JSON_H_
