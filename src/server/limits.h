#ifndef WHYQ_SERVER_LIMITS_H_
#define WHYQ_SERVER_LIMITS_H_

#include <cstddef>
#include <cstdint>

// Every hard limit of the whyq_server daemon path, in one place — the
// pigeonhole pattern (dovecot keeps its RFC 5229 implementation limits in
// a single ext-variables-limits.h, each with the clause that mandates it).
// Nothing under src/server/ may introduce a numeric limit anywhere else:
// whyq-lint rule "server-limits" flags decimal integer literals >= 64 in
// this directory outside this header, so a reviewer can audit the
// daemon's entire resource envelope by reading this file.
//
// Each constant carries its provenance: why the limit exists and what
// breaks without it. Tunables that a deployment may legitimately vary
// (port, worker count, queue depth, timeouts) are *defaults* here and
// overridable via ServerConfig / CLI flags; the byte-size and structural
// caps are enforced unconditionally.

namespace whyq::server {

// --- connection lifecycle --------------------------------------------------

/// Simultaneous client connections. Beyond this the acceptor refuses the
/// socket (one-line error, then close) instead of letting the fd table and
/// per-connection buffers grow unboundedly: with kMaxConnBufferBytes each,
/// 256 connections bound worst-case buffer memory at ~1 GiB. Overridable
/// (ServerConfig::max_connections) for bigger boxes.
inline constexpr size_t kMaxConnections = 256;

/// listen(2) backlog. Matches the historic SOMAXCONN default; bursts
/// beyond it are absorbed by client retry, not by server memory.
inline constexpr int kListenBacklog = 128;

/// Idle connections (no request in flight, no bytes received) are closed
/// after this many milliseconds so abandoned clients cannot pin fds
/// against kMaxConnections. Default 60 s — one order above any sane
/// client's keepalive interval. Overridable (ServerConfig::idle_timeout_ms).
inline constexpr double kIdleTimeoutMs = 60000.0;

/// Graceful-drain budget on SIGTERM/SIGINT: stop accepting, finish
/// in-flight requests and flush their responses, then exit 0. Requests
/// still unfinished at the deadline are abandoned and the server exits
/// nonzero — a deploy must never hang on one pathological question.
/// Matches the common supervisor kill grace (systemd TimeoutStopSec
/// headroom). Overridable (ServerConfig::drain_deadline_ms).
inline constexpr double kDrainDeadlineMs = 5000.0;

/// Event-loop tick: the epoll_wait timeout, which bounds how stale the
/// idle scan, the drain-deadline check, and the periodic stats dump can
/// be. 100 ms keeps those within 10% of any timeout above while costing
/// ~10 wakeups/s when idle.
inline constexpr int kPollTickMs = 100;

/// Default period of the --stats-json dump (atomic tmp+rename per dump).
/// 2 s keeps dashboards fresh without measurable serialization cost.
inline constexpr double kStatsPeriodMs = 2000.0;

// --- wire protocol ---------------------------------------------------------

/// One request line (newline-delimited JSON), terminator included. The
/// dominant payload is the query DSL text plus an entity list; real
/// questions are < 4 KiB, so 1 MiB is two orders of headroom while still
/// bounding what a single malicious line can make the parser touch.
/// A longer line gets a "line exceeds ..." error and the connection is
/// closed (protocol violation — resynchronization is not attempted).
inline constexpr size_t kMaxLineBytes = 1048576;  // 1 MiB

/// Per-connection read-buffer cap: the pipelined backlog a client may
/// buffer server-side (multiple complete lines plus one partial line).
/// 4x the line cap lets a well-behaved client pipeline a few large
/// requests; past it the connection is closed rather than growing the
/// buffer — backpressure belongs in the admission queue, not in hidden
/// per-connection memory.
inline constexpr size_t kMaxConnBufferBytes = 4 * kMaxLineBytes;

/// read(2) chunk size for the non-blocking reader. 64 KiB amortizes
/// syscalls on bulk pipelines and is small enough to keep one connection
/// from monopolizing a loop iteration.
inline constexpr size_t kReadChunkBytes = 65536;

/// Nesting depth the wire JSON parser accepts. The protocol itself needs
/// depth 3 (object -> array -> number); 16 tolerates future structured
/// fields while keeping the recursive-descent parser's stack bounded
/// against "[[[[..." bombs.
inline constexpr size_t kMaxJsonDepth = 16;

// --- request admission -----------------------------------------------------

/// Bounded service queue in front of the worker pool (default for
/// ServiceConfig::queue_capacity under the daemon). When it is full the
/// server rejects *immediately* with retry_after_ms instead of blocking
/// the event loop — admission control, not queuing, absorbs overload.
inline constexpr size_t kQueueCapacity = 256;

/// Hint returned with an admission rejection: how long a client should
/// wait before retrying. Roughly one queue drain at the p50 service time
/// of the BSBM workload (EXPERIMENTS.md); deliberately small so closed-
/// loop clients re-offer quickly once the queue moves.
inline constexpr double kRetryAfterMs = 50.0;

/// Query nodes per request. MBS enumeration and the matcher are
/// exponential in pattern size in the worst case (the paper evaluates
/// |Q| <= 12); 32 is far beyond any explanation workload and cheap to
/// check at admission by counting `node` declarations before parsing.
inline constexpr size_t kMaxQueryNodes = 32;

/// Entities (V_N / V_C) per request. Each entity multiplies verification
/// work; the paper's questions use |V| <= 5. 1024 bounds the request
/// JSON array and the per-entity loops.
inline constexpr size_t kMaxEntities = 1024;

/// Ceiling on AnswerConfig::max_mbs for network requests: a client may
/// lower the cap but not raise it past the library default (200000,
/// src/why/question.h), which already bounds exact enumeration at a few
/// seconds on the evaluation graphs. Without the clamp a request could
/// ask for effectively unbounded enumeration and ride out any deadline's
/// poll granularity.
inline constexpr size_t kMaxMbsVisits = 200000;

/// Update operations per {"op":"update"} wire request. One op touches a
/// constant number of rows, but the batch is applied on the event-loop
/// thread (updates serialize against each other anyway, and the loop is
/// the natural serialization point) — so a batch bounds how long the loop
/// stalls. 65536 ops apply in well under the poll tick on the evaluation
/// graphs; clients stream larger changes as multiple batches, each an
/// atomic epoch.
inline constexpr size_t kMaxUpdateOps = 65536;

/// Default AnswerConfig::exact_time_limit_ms stamped onto wire requests —
/// the same 30 s ceiling the CLI applies (tools/whyq_cli.cc MakeConfig),
/// so an exact enumeration without an explicit deadline still terminates.
inline constexpr double kExactTimeLimitMs = 30000.0;

}  // namespace whyq::server

#endif  // WHYQ_SERVER_LIMITS_H_
