#include "server/server.h"

#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <fstream>
#include <utility>

#include "service/plan.h"

namespace whyq::server {

namespace {

// Poller tags: the two singleton fds, then connection ids.
constexpr uint64_t kListenTag = 0;
constexpr uint64_t kWakeTag = 1;
constexpr uint64_t kFirstConnTag = 2;

}  // namespace

std::string ServerSnapshot::ToJson() const {
  std::string o = "{";
  o += "\"accepted\":" + std::to_string(accepted);
  o += ",\"refused\":" + std::to_string(refused);
  o += ",\"closed\":" + std::to_string(closed);
  o += ",\"idle_closed\":" + std::to_string(idle_closed);
  o += ",\"requests\":" + std::to_string(requests);
  o += ",\"responded\":" + std::to_string(responded);
  o += ",\"admitted\":" + std::to_string(admitted);
  o += ",\"rejected\":" + std::to_string(rejected);
  o += ",\"bad_lines\":" + std::to_string(bad_lines);
  o += ",\"updates\":" + std::to_string(updates);
  o += ",\"drained\":" + std::to_string(drained);
  o += "}";
  return o;
}

/// Per-connection state, owned by the event loop (single-threaded: only
/// worker callbacks run elsewhere, and they touch nothing here — they go
/// through the completion queue).
struct WhyqServer::Conn {
  UniqueFd fd;
  LineBuffer in{kMaxLineBytes, kMaxConnBufferBytes};
  std::string out;       // encoded responses awaiting write
  size_t out_off = 0;    // bytes of `out` already written
  size_t pending = 0;    // requests of this connection inside a service
  bool closing = false;  // no more reads; close once out + pending drain
  bool dead = false;     // close at the next safe point (set, never unset)
  bool want_write = false;  // current EPOLLOUT registration
  Timer idle;               // reset on every received byte
};

WhyqServer::WhyqServer(
    std::vector<std::pair<std::string, std::shared_ptr<const Graph>>> graphs,
    ServerConfig cfg)
    : cfg_(std::move(cfg)), next_conn_(kFirstConnTag) {
  for (auto& [name, graph] : graphs) {
    names_.push_back(name);
    ServiceConfig sc = cfg_.service;
    if (!cfg_.plan_store_dir.empty()) {
      // Per-graph store: plans compiled against one graph never collide
      // with (or evict) another's, and each service's Stats() reports its
      // own store counters.
      sc.plan_store =
          std::make_shared<PlanStore>(cfg_.plan_store_dir + "/" + name);
    }
    services_.push_back(
        std::make_unique<WhyqService>(std::move(graph), std::move(sc)));
  }
}

WhyqServer::~WhyqServer() = default;

bool WhyqServer::Start(std::string* error) {
  if (services_.empty()) {
    if (error != nullptr) *error = "no graphs to serve";
    return false;
  }
  if (!poller_.ok() || !wake_.ok()) {
    if (error != nullptr) *error = "cannot create epoll/self-pipe";
    return false;
  }
  listen_fd_ = ListenTcp(cfg_.port, kListenBacklog, error);
  if (!listen_fd_.valid()) return false;
  port_ = LocalPort(listen_fd_.get());
  poller_.Add(listen_fd_.get(), /*want_read=*/true, /*want_write=*/false,
              kListenTag);
  poller_.Add(wake_.read_fd(), /*want_read=*/true, /*want_write=*/false,
              kWakeTag);
  return true;
}

void WhyqServer::RequestStop() {
  stop_requested_.store(true, std::memory_order_relaxed);
  wake_.Notify();
}

ServerSnapshot WhyqServer::Snapshot() const {
  ServerSnapshot s;
  s.accepted = accepted_.Value();
  s.refused = refused_.Value();
  s.closed = closed_.Value();
  s.idle_closed = idle_closed_.Value();
  s.requests = requests_.Value();
  s.responded = responded_.Value();
  s.admitted = admitted_.Value();
  s.rejected = rejected_.Value();
  s.bad_lines = bad_lines_.Value();
  s.updates = updates_.Value();
  s.drained = drained_.Value();
  return s;
}

std::string WhyqServer::StatsJson() const {
  std::string o = "{\"server\":" + Snapshot().ToJson() + ",\"service\":{";
  for (size_t i = 0; i < services_.size(); ++i) {
    if (i > 0) o += ",";
    o += "\"" + JsonEscape(names_[i]) + "\":" +
         services_[i]->Stats().ToJson();
  }
  o += "}}";
  return o;
}

void WhyqServer::AcceptNew() {
  for (;;) {
    int raw = ::accept(listen_fd_.get(), nullptr, nullptr);
    if (raw < 0) return;  // EAGAIN: the backlog is drained
    UniqueFd fd(raw);
    if (conns_.size() >= cfg_.max_connections) {
      // Refuse with a one-line diagnostic instead of silently resetting.
      // Best-effort blocking write on a fresh socket; then close.
      std::string line =
          EncodeErrorLine("null", "rejected", "connection limit reached");
      (void)::send(fd.get(), line.data(), line.size(), MSG_NOSIGNAL);
      refused_.Add();
      continue;
    }
    if (!SetNonBlocking(fd.get())) continue;
    uint64_t id = next_conn_++;
    auto conn = std::make_unique<Conn>();
    poller_.Add(fd.get(), /*want_read=*/true, /*want_write=*/false, id);
    conn->fd = std::move(fd);
    conns_.emplace(id, std::move(conn));
    accepted_.Add();
  }
}

void WhyqServer::CloseConn(uint64_t id, bool idle) {
  auto it = conns_.find(id);
  if (it == conns_.end()) return;
  poller_.Del(it->second->fd.get());
  // Discard unread input before closing: close(2) with bytes still in the
  // receive queue makes the kernel answer with RST, which can destroy
  // responses still in flight to the client. A drain must end in FIN —
  // clients that pipelined requests past shutdown get their admitted
  // responses plus a clean EOF, not a connection reset. (Bytes arriving
  // after this sweep still RST; that client is writing into a closed
  // server.)
  char discard[kReadChunkBytes];
  while (::recv(it->second->fd.get(), discard, sizeof discard,
                MSG_DONTWAIT) > 0) {
  }
  conns_.erase(it);
  closed_.Add();
  if (idle) idle_closed_.Add();
}

void WhyqServer::QueueResponse(uint64_t id, Conn* conn,
                               const std::string& line) {
  conn->out += line;
  responded_.Add();
  TryWrite(id, conn);
}

void WhyqServer::TryWrite(uint64_t id, Conn* conn) {
  while (conn->out_off < conn->out.size()) {
    ssize_t n = ::send(conn->fd.get(), conn->out.data() + conn->out_off,
                       conn->out.size() - conn->out_off, MSG_NOSIGNAL);
    if (n > 0) {
      conn->out_off += static_cast<size_t>(n);
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      if (!conn->want_write) {
        conn->want_write = true;
        poller_.Mod(conn->fd.get(), /*want_read=*/!draining_ &&
                        !conn->closing,
                    /*want_write=*/true, id);
      }
      return;
    }
    // EPIPE/ECONNRESET and friends: the peer is gone.
    conn->dead = true;
    return;
  }
  conn->out.clear();
  conn->out_off = 0;
  if (conn->want_write) {
    conn->want_write = false;
    poller_.Mod(conn->fd.get(), /*want_read=*/!draining_ && !conn->closing,
                /*want_write=*/false, id);
  }
  if (conn->closing && conn->pending == 0) conn->dead = true;
}

void WhyqServer::HandleLine(uint64_t id, Conn* conn,
                            const std::string& line) {
  if (line.find_first_not_of(" \t") == std::string::npos) return;
  requests_.Add();
  WireRequest wr;
  std::string error;
  if (!ParseWireRequest(line, &wr, &error)) {
    bad_lines_.Add();
    QueueResponse(id, conn, EncodeErrorLine(wr.id_json, "bad_request", error));
    return;
  }
  if (wr.is_stats) {
    QueueResponse(id, conn, EncodeStatsResponse(wr.id_json, StatsJson()));
    return;
  }
  size_t idx = 0;  // default graph: the first one configured
  if (!wr.graph.empty()) {
    idx = names_.size();
    for (size_t i = 0; i < names_.size(); ++i) {
      if (names_[i] == wr.graph) idx = i;
    }
    if (idx == names_.size()) {
      bad_lines_.Add();
      QueueResponse(id, conn,
                    EncodeErrorLine(wr.id_json, "bad_request",
                                    "unknown graph '" + wr.graph + "'"));
      return;
    }
  }
  WhyqService* svc = services_[idx].get();
  if (wr.is_update) {
    // Applied inline on the loop thread: updates serialize against each
    // other anyway (WhyqService::ApplyUpdate holds update_mu_), batches are
    // bounded by kMaxUpdateOps, and in-flight reads keep their pinned epoch
    // — the loop stalls for the apply, readers never do.
    UpdateResult result;
    bool applied = svc->ApplyUpdate(wr.update, &result);
    uint64_t generation = applied ? svc->graph()->generation() : 0;
    if (applied) {
      updates_.Add();
    } else {
      bad_lines_.Add();
    }
    QueueResponse(id, conn,
                  EncodeUpdateResponse(wr.id_json, applied, generation,
                                       result));
    return;
  }
  std::string id_json = wr.id_json;
  RequestKind kind = wr.request.kind;
  // The response is encoded on the worker thread (it holds the answer and
  // the graph epoch the request pinned), then handed to the loop via the
  // completion queue.
  SubmitResult admitted = svc->TrySubmit(
      std::move(wr.request),
      [this, id, id_json, kind](ServiceResponse resp) {
        // resp.graph is the epoch the request ran against — the service's
        // current graph may be generations newer by now. It is null only on
        // the contained-exception path, whose status never renders graph
        // content.
        std::string encoded =
            resp.graph != nullptr
                ? EncodeResponse(id_json, kind, resp, *resp.graph)
                : EncodeErrorLine(id_json, "bad_request", resp.error);
        {
          MutexLock lock(completions_mu_);
          completions_.emplace_back(id, std::move(encoded));
        }
        wake_.Notify();
      });
  switch (admitted) {
    case SubmitResult::kAccepted:
      admitted_.Add();
      ++conn->pending;
      break;
    case SubmitResult::kQueueFull:
      rejected_.Add();
      QueueResponse(id, conn, EncodeRejected(id_json, kRetryAfterMs));
      break;
    case SubmitResult::kShutdown:
      QueueResponse(id, conn,
                    EncodeErrorLine(id_json, "shutdown", "server draining"));
      break;
  }
}

void WhyqServer::ReadConn(uint64_t id, Conn* conn) {
  char buf[kReadChunkBytes];
  for (;;) {
    ssize_t n = ::read(conn->fd.get(), buf, sizeof(buf));
    if (n > 0) {
      conn->idle.Reset();
      if (!conn->in.Append(buf, static_cast<size_t>(n))) {
        bad_lines_.Add();
        QueueResponse(id, conn,
                      EncodeErrorLine("null", "bad_request",
                                      "connection buffer limit exceeded"));
        conn->closing = true;
        break;
      }
      continue;
    }
    if (n == 0) {  // peer EOF: answer what is buffered, then close
      conn->closing = true;
      break;
    }
    if (errno == EAGAIN || errno == EWOULDBLOCK) break;
    conn->dead = true;
    break;
  }
  std::string line;
  while (!conn->dead && !conn->closing) {
    LineBuffer::Pop pop = conn->in.PopLine(&line);
    if (pop == LineBuffer::Pop::kNone) break;
    if (pop == LineBuffer::Pop::kOversized) {
      bad_lines_.Add();
      QueueResponse(id, conn,
                    EncodeErrorLine("null", "bad_request",
                                    "line exceeds " +
                                        std::to_string(kMaxLineBytes) +
                                        " bytes"));
      conn->closing = true;
      break;
    }
    HandleLine(id, conn, line);
  }
  if (conn->closing && conn->pending == 0 && conn->out_off >= conn->out.size()) {
    conn->dead = true;
  }
  if (conn->closing && !conn->dead) {
    // Half-open: stop watching for reads, keep the write side alive for
    // in-flight responses.
    poller_.Mod(conn->fd.get(), /*want_read=*/false,
                /*want_write=*/conn->want_write, id);
  }
  if (conn->dead) CloseConn(id, /*idle=*/false);
}

void WhyqServer::FlushCompletions(bool draining) {
  std::vector<std::pair<uint64_t, std::string>> batch;
  {
    MutexLock lock(completions_mu_);
    batch.swap(completions_);
  }
  for (auto& [id, line] : batch) {
    auto it = conns_.find(id);
    if (it == conns_.end()) continue;  // connection died mid-request
    Conn* conn = it->second.get();
    if (conn->pending > 0) --conn->pending;
    if (draining) drained_.Add();
    QueueResponse(id, conn, line);
    if (conn->dead) CloseConn(id, /*idle=*/false);
  }
}

void WhyqServer::ScanIdle() {
  if (cfg_.idle_timeout_ms <= 0) return;
  std::vector<uint64_t> expired;
  for (auto& [id, conn] : conns_) {
    if (conn->pending == 0 && conn->out.empty() && !conn->closing &&
        conn->idle.ElapsedMillis() >= cfg_.idle_timeout_ms) {
      expired.push_back(id);
    }
  }
  for (uint64_t id : expired) CloseConn(id, /*idle=*/true);
}

void WhyqServer::DumpStatsIfDue(bool force) {
  if (cfg_.stats_json_path.empty()) return;
  if (!force && stats_timer_.ElapsedMillis() < cfg_.stats_period_ms) return;
  stats_timer_.Reset();
  // Atomic publication: readers either see the previous dump or this one,
  // never a torn file.
  std::string tmp = cfg_.stats_json_path + ".tmp";
  {
    std::ofstream js(tmp);
    if (!js) return;
    js << StatsJson() << "\n";
    if (!js) return;
  }
  std::rename(tmp.c_str(), cfg_.stats_json_path.c_str());
}

int WhyqServer::Run(const volatile std::sig_atomic_t* stop_flag) {
  if (!listen_fd_.valid()) return 1;  // Start() not called or failed
  auto should_stop = [&] {
    return stop_requested_.load(std::memory_order_relaxed) ||
           (stop_flag != nullptr && *stop_flag != 0);
  };
  std::vector<Poller::Event> events;
  while (!should_stop()) {
    events.clear();
    if (poller_.Wait(kPollTickMs, &events) < 0) return 1;
    for (const Poller::Event& ev : events) {
      if (ev.tag == kListenTag) {
        if (ev.readable) AcceptNew();
        continue;
      }
      if (ev.tag == kWakeTag) {
        wake_.Drain();
        FlushCompletions(/*draining=*/false);
        continue;
      }
      auto it = conns_.find(ev.tag);
      if (it == conns_.end()) continue;
      Conn* conn = it->second.get();
      if (ev.error) {
        CloseConn(ev.tag, /*idle=*/false);
        continue;
      }
      if (ev.writable) {
        TryWrite(ev.tag, conn);
        if (conn->dead) {
          CloseConn(ev.tag, /*idle=*/false);
          continue;
        }
      }
      if (ev.readable) ReadConn(ev.tag, conn);  // may close the conn
    }
    FlushCompletions(/*draining=*/false);
    ScanIdle();
    DumpStatsIfDue(/*force=*/false);
  }
  int rc = Drain();
  for (auto& svc : services_) svc->Stop();
  DumpStatsIfDue(/*force=*/true);
  return rc;
}

int WhyqServer::Drain() {
  draining_ = true;
  // Stop accepting; stop reading (buffered-but-unparsed lines were never
  // admitted — discarding them is the documented drain contract). Keep the
  // write side of every connection alive for in-flight responses.
  poller_.Del(listen_fd_.get());
  listen_fd_.Reset();
  for (auto& [id, conn] : conns_) {
    poller_.Mod(conn->fd.get(), /*want_read=*/false,
                /*want_write=*/conn->want_write, id);
  }
  Timer deadline;
  std::vector<Poller::Event> events;
  for (;;) {
    // Close every connection with nothing left to deliver.
    std::vector<uint64_t> done;
    for (auto& [id, conn] : conns_) {
      if (conn->pending == 0 && conn->out_off >= conn->out.size()) {
        done.push_back(id);
      }
    }
    for (uint64_t id : done) CloseConn(id, /*idle=*/false);
    if (conns_.empty()) return 0;  // clean: every response delivered
    if (deadline.ElapsedMillis() >= cfg_.drain_deadline_ms) return 1;
    events.clear();
    if (poller_.Wait(kPollTickMs, &events) < 0) return 1;
    for (const Poller::Event& ev : events) {
      if (ev.tag == kWakeTag) {
        wake_.Drain();
        continue;  // completions flushed below
      }
      auto it = conns_.find(ev.tag);
      if (it == conns_.end()) continue;
      if (ev.error) {
        CloseConn(ev.tag, /*idle=*/false);
        continue;
      }
      if (ev.writable) {
        TryWrite(ev.tag, it->second.get());
        if (it->second->dead) CloseConn(ev.tag, /*idle=*/false);
      }
    }
    FlushCompletions(/*draining=*/true);
  }
}

}  // namespace whyq::server
