#ifndef WHYQ_SERVER_SERVER_H_
#define WHYQ_SERVER_SERVER_H_

#include <atomic>
#include <csignal>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/metrics.h"
#include "common/mutex.h"
#include "common/net.h"
#include "common/timer.h"
#include "server/limits.h"
#include "server/wire.h"
#include "service/service.h"

namespace whyq::server {

/// Tuning for one WhyqServer. Defaults come from limits.h; a deployment
/// overrides them via CLI flags (tools/whyq_cli.cc `serve`).
struct ServerConfig {
  uint16_t port = 0;  // 0 = bind an ephemeral port (read back via port())
  size_t max_connections = kMaxConnections;
  double idle_timeout_ms = kIdleTimeoutMs;
  double drain_deadline_ms = kDrainDeadlineMs;

  /// Periodic stats dump: every stats_period_ms the full stats JSON is
  /// written to stats_json_path via tmp+rename (readers never observe a
  /// partial file). Empty path disables the dump.
  std::string stats_json_path;
  double stats_period_ms = kStatsPeriodMs;

  /// Applied to every per-graph WhyqService the server builds.
  ServiceConfig service;

  /// Non-empty: every per-graph service gets its own persistent PlanStore
  /// at `plan_store_dir/<graph name>` (created if missing). Boot warm-loads
  /// each service's prepared cache from its store, completed builds persist
  /// across restarts, and each graph's stats block reports its own
  /// plan_store_* counters. `service.plan_store` must stay null — stores
  /// are per-graph, never shared.
  std::string plan_store_dir;
};

/// Monotonic daemon counters, snapshotted for the stats JSON ("server"
/// block; see docs/ARCHITECTURE.md glossary). Connection counters satisfy
/// accepted = closed + live; request counters satisfy
/// requests = admitted + rejected + bad_lines + stats-requests + updates
/// (a failed update counts under bad_lines instead of updates) and
/// responded counts every response line queued toward a client.
struct ServerSnapshot {
  uint64_t accepted = 0;     // connections accepted
  uint64_t refused = 0;      // connections refused at the connection cap
  uint64_t closed = 0;       // connections fully closed (any reason)
  uint64_t idle_closed = 0;  // ... of which by idle timeout
  uint64_t requests = 0;     // complete request lines received
  uint64_t responded = 0;    // response lines queued (ok, error, rejection)
  uint64_t admitted = 0;     // requests admitted into a service queue
  uint64_t rejected = 0;     // admission-control rejections (queue full)
  uint64_t bad_lines = 0;    // malformed, oversized or invalid requests
  uint64_t updates = 0;      // {"op":"update"} batches applied successfully
  uint64_t drained = 0;      // in-flight responses delivered during drain

  std::string ToJson() const;
};

/// The whyq network daemon: a single-threaded epoll event loop accepting
/// newline-delimited JSON questions on 127.0.0.1 and dispatching them to
/// per-graph WhyqService worker pools (docs/ARCHITECTURE.md "Server").
///
/// Life of a request: bytes arrive on a non-blocking socket into the
/// connection's LineBuffer; each complete line is parsed/validated
/// (wire.h) and admitted via WhyqService::TrySubmit — a full queue answers
/// immediately with retry_after_ms (admission control, never blocking the
/// loop). The worker that executes the request encodes the response on its
/// own thread, pushes it onto the completion queue and wakes the loop
/// through the self-pipe; the loop writes it back, honoring EAGAIN via
/// EPOLLOUT re-arming.
///
/// Shutdown: when the stop flag (SIGTERM/SIGINT in the CLI) or
/// RequestStop() fires, the loop closes the listener, stops reading
/// (buffered-but-unparsed lines are discarded — they were never admitted),
/// finishes in-flight requests and flushes their responses up to
/// drain_deadline_ms, then exits — Run() returns 0 iff every admitted
/// request got its response out.
///
/// Thread-safety: Start/Run drive everything from the calling thread;
/// RequestStop(), Snapshot() and StatsJson() may be called from any thread.
class WhyqServer {
 public:
  /// One service per named graph; the first entry answers requests that
  /// carry no "graph" field. Graph pointers are shared — callers may keep
  /// reading them concurrently.
  WhyqServer(
      std::vector<std::pair<std::string, std::shared_ptr<const Graph>>>
          graphs,
      ServerConfig cfg);

  ~WhyqServer();

  WhyqServer(const WhyqServer&) = delete;
  WhyqServer& operator=(const WhyqServer&) = delete;

  /// Binds and listens (loopback only). False + `error` on failure.
  bool Start(std::string* error);

  /// The bound port (after Start); the CLI prints it so scripts can drive
  /// an ephemeral-port server.
  uint16_t port() const { return port_; }

  /// Runs the event loop until `*stop_flag` becomes nonzero (a
  /// sig_atomic_t so a signal handler can set it directly; may be null) or
  /// RequestStop() is called, then drains. Returns 0 on a clean drain,
  /// 1 when the drain deadline expired with work still in flight.
  int Run(const volatile std::sig_atomic_t* stop_flag);

  /// Asks a running Run() to begin the drain (test hook; thread-safe).
  void RequestStop();

  ServerSnapshot Snapshot() const;

  /// The full daemon stats document:
  ///   {"server":<ServerSnapshot>,"service":{"<graph>":<StatsSnapshot>}}
  std::string StatsJson() const;

  const std::vector<std::string>& graph_names() const { return names_; }

 private:
  struct Conn;

  void AcceptNew();
  void ReadConn(uint64_t id, Conn* conn);
  void HandleLine(uint64_t id, Conn* conn, const std::string& line);
  void QueueResponse(uint64_t id, Conn* conn, const std::string& line);
  void TryWrite(uint64_t id, Conn* conn);
  void FlushCompletions(bool draining) WHYQ_EXCLUDES(completions_mu_);
  void CloseConn(uint64_t id, bool idle);
  void ScanIdle();
  void DumpStatsIfDue(bool force);
  int Drain();

  ServerConfig cfg_;
  std::vector<std::string> names_;

  UniqueFd listen_fd_;
  uint16_t port_ = 0;
  Poller poller_;
  WakePipe wake_;

  std::map<uint64_t, std::unique_ptr<Conn>> conns_;
  uint64_t next_conn_ = 0;

  // Worker -> loop handoff: encoded responses keyed by connection id.
  Mutex completions_mu_;
  std::vector<std::pair<uint64_t, std::string>> completions_
      WHYQ_GUARDED_BY(completions_mu_);

  std::atomic<bool> stop_requested_{false};
  bool draining_ = false;
  Timer stats_timer_;

  // Counters are relaxed atomics (common/metrics.h) so Snapshot() from a
  // test/monitor thread never races the loop.
  Counter accepted_, refused_, closed_, idle_closed_;
  Counter requests_, responded_, admitted_, rejected_, bad_lines_, updates_,
      drained_;

  // Declared last: destroying a service joins its workers, whose `done`
  // callbacks touch the completion queue and wake pipe above — those must
  // still be alive until every worker is gone.
  std::vector<std::unique_ptr<WhyqService>> services_;
};

}  // namespace whyq::server

#endif  // WHYQ_SERVER_SERVER_H_
