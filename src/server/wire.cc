#include "server/wire.h"

#include <cmath>
#include <cstdint>
#include <sstream>
#include <utility>

#include "graph/graph_io.h"
#include "query/query_parser.h"
#include "server/limits.h"

namespace whyq::server {

bool LineBuffer::Append(const char* data, size_t n) {
  if (buf_.size() + n > max_buffer_) return false;
  buf_.append(data, n);
  return true;
}

LineBuffer::Pop LineBuffer::PopLine(std::string* line) {
  size_t nl = buf_.find('\n');
  if (nl == std::string::npos) {
    // No terminator yet: a partial line already past the cap can never
    // become a valid request, so report it before buffering more.
    return buf_.size() > max_line_ ? Pop::kOversized : Pop::kNone;
  }
  if (nl + 1 > max_line_) return Pop::kOversized;
  *line = buf_.substr(0, nl);
  buf_.erase(0, nl + 1);
  if (!line->empty() && line->back() == '\r') line->pop_back();
  return Pop::kLine;
}

size_t CountQueryNodes(const std::string& query_text) {
  size_t count = 0;
  std::stringstream ss(query_text);
  std::string ln;
  while (std::getline(ss, ln)) {
    size_t i = ln.find_first_not_of(" \t");
    if (i == std::string::npos) continue;
    if (ln.compare(i, 4, "node") == 0 &&
        (i + 4 == ln.size() || ln[i + 4] == ' ' || ln[i + 4] == '\t')) {
      ++count;
    }
  }
  return count;
}

namespace {

bool AsInteger(const JsonValue& v, uint64_t* out) {
  if (!v.is_number()) return false;
  double d = v.as_number();
  if (d < 0 || d != std::floor(d)) return false;
  *out = static_cast<uint64_t>(d);
  return true;
}

bool Fail(std::string* error, const std::string& msg) {
  *error = msg;
  return false;
}

}  // namespace

bool ParseWireRequest(const std::string& line, WireRequest* out,
                      std::string* error) {
  JsonValue doc;
  if (!ParseJson(line, kMaxJsonDepth, &doc, error)) return false;
  if (!doc.is_object()) return Fail(error, "request must be a JSON object");
  if (const JsonValue* id = doc.Find("id")) out->id_json = id->Dump();

  if (const JsonValue* g = doc.Find("graph")) {
    if (!g->is_string()) return Fail(error, "'graph' must be a string");
    out->graph = g->as_string();
  }

  if (const JsonValue* op = doc.Find("op")) {
    if (!op->is_string() || op->as_string() != "update") {
      return Fail(error, "unknown op (only \"update\")");
    }
    if (doc.Find("question") != nullptr) {
      return Fail(error, "'op' and 'question' are mutually exclusive");
    }
    const JsonValue* ops = doc.Find("ops");
    if (ops == nullptr || !ops->is_array() || ops->as_array().empty()) {
      return Fail(error, "'op':'update' needs a non-empty 'ops' array");
    }
    if (ops->as_array().size() > kMaxUpdateOps) {
      return Fail(error, "too many update ops (limit " +
                             std::to_string(kMaxUpdateOps) + ")");
    }
    // Each array element is one update-batch line in the graph_io text
    // format; the shared parser gives the wire and the CLI identical
    // mnemonics and identical error messages.
    std::string text;
    for (const JsonValue& o : ops->as_array()) {
      if (!o.is_string()) {
        return Fail(error, "'ops' must hold update-batch line strings");
      }
      text += o.as_string();
      text += '\n';
    }
    std::istringstream is(text);
    std::string parse_error;
    std::optional<UpdateBatch> batch = ReadUpdateBatch(is, &parse_error);
    if (!batch.has_value()) return Fail(error, "bad update op: " + parse_error);
    if (batch->size() > kMaxUpdateOps) {  // multi-line strings slip the count
      return Fail(error, "too many update ops (limit " +
                             std::to_string(kMaxUpdateOps) + ")");
    }
    out->update = std::move(*batch);
    out->is_update = true;
    return true;
  }

  const JsonValue* question = doc.Find("question");
  if (question == nullptr || !question->is_string()) {
    return Fail(error, "missing string field 'question'");
  }
  const std::string& kind = question->as_string();

  if (kind == "stats") {
    out->is_stats = true;
    return true;
  }

  ServiceRequest& req = out->request;
  if (kind == "why") {
    req.kind = RequestKind::kWhy;
  } else if (kind == "whynot") {
    req.kind = RequestKind::kWhyNot;
  } else if (kind == "whyempty") {
    req.kind = RequestKind::kWhyEmpty;
  } else if (kind == "whysomany") {
    req.kind = RequestKind::kWhySoMany;
  } else {
    return Fail(error, "unknown question '" + kind +
                           "' (why|whynot|whyempty|whysomany|stats)");
  }

  const JsonValue* query = doc.Find("query");
  if (query == nullptr || !query->is_string() ||
      query->as_string().empty()) {
    return Fail(error, "missing string field 'query'");
  }
  req.query_text = query->as_string();
  size_t nodes = CountQueryNodes(req.query_text);
  if (nodes == 0) return Fail(error, "query declares no nodes");
  if (nodes > kMaxQueryNodes) {
    return Fail(error, "query declares " + std::to_string(nodes) +
                           " nodes (limit " +
                           std::to_string(kMaxQueryNodes) + ")");
  }

  req.entities.clear();
  if (const JsonValue* ents = doc.Find("entities")) {
    if (!ents->is_array()) return Fail(error, "'entities' must be an array");
    if (ents->as_array().size() > kMaxEntities) {
      return Fail(error, "too many entities (limit " +
                             std::to_string(kMaxEntities) + ")");
    }
    for (const JsonValue& e : ents->as_array()) {
      uint64_t id = 0;
      if (!AsInteger(e, &id) || id > UINT32_MAX) {
        return Fail(error, "'entities' must hold node ids");
      }
      req.entities.push_back(static_cast<NodeId>(id));
    }
  }
  bool needs_entities =
      req.kind == RequestKind::kWhy || req.kind == RequestKind::kWhyNot;
  if (needs_entities && req.entities.empty()) {
    return Fail(error, "'" + kind + "' needs a non-empty 'entities' array");
  }

  if (const JsonValue* tk = doc.Find("target_k")) {
    uint64_t k = 0;
    if (!AsInteger(*tk, &k) || k == 0) {
      return Fail(error, "'target_k' must be a positive integer");
    }
    req.target_k = static_cast<size_t>(k);
  }

  if (const JsonValue* algo = doc.Find("algo")) {
    if (!algo->is_string()) return Fail(error, "'algo' must be a string");
    const std::string& a = algo->as_string();
    if (a == "exact") {
      req.algo = AlgoChoice::kExact;
    } else if (a == "iso") {
      req.algo = AlgoChoice::kIso;
    } else if (a == "auto" || a == "approx" || a == "fast") {
      req.algo = AlgoChoice::kAuto;
    } else {
      return Fail(error, "unknown algo '" + a + "' (auto|exact|iso)");
    }
  }

  if (const JsonValue* dl = doc.Find("deadline_ms")) {
    if (!dl->is_number() || dl->as_number() < 0) {
      return Fail(error, "'deadline_ms' must be a non-negative number");
    }
    req.deadline_ms = dl->as_number();
  }

  req.config.exact_time_limit_ms = kExactTimeLimitMs;
  if (const JsonValue* b = doc.Find("budget")) {
    if (!b->is_number() || b->as_number() <= 0) {
      return Fail(error, "'budget' must be a positive number");
    }
    req.config.budget = b->as_number();
  }
  if (const JsonValue* gm = doc.Find("guard")) {
    uint64_t m = 0;
    if (!AsInteger(*gm, &m)) {
      return Fail(error, "'guard' must be a non-negative integer");
    }
    req.config.guard_m = static_cast<size_t>(m);
  }
  if (const JsonValue* sem = doc.Find("semantics")) {
    if (!sem->is_string()) {
      return Fail(error, "'semantics' must be a string");
    }
    const std::string& s = sem->as_string();
    if (s == "iso") {
      req.config.semantics = MatchSemantics::kIsomorphism;
    } else if (s == "sim") {
      req.config.semantics = MatchSemantics::kSimulation;
    } else {
      return Fail(error, "unknown semantics '" + s + "' (iso|sim)");
    }
  }
  if (const JsonValue* mm = doc.Find("max_mbs")) {
    uint64_t m = 0;
    if (!AsInteger(*mm, &m) || m == 0) {
      return Fail(error, "'max_mbs' must be a positive integer");
    }
    // Clamp, don't reject: a client may lower the enumeration cap but not
    // raise it past the library default (see limits.h).
    req.config.max_mbs =
        m > kMaxMbsVisits ? kMaxMbsVisits : static_cast<size_t>(m);
  }
  return true;
}

namespace {

void AppendStats(const ServiceResponse& r, std::string* out) {
  *out += "\"stats\":{\"latency_ms\":" + JsonNumber(r.latency_ms);
  *out += ",\"cache_hit\":";
  *out += r.cache_hit ? "true" : "false";
  *out += ",\"queue_ms\":" + JsonNumber(r.trace.queue_ms);
  *out += ",\"parse_ms\":" + JsonNumber(r.trace.parse_ms);
  *out += ",\"prepare_ms\":" + JsonNumber(r.trace.prepare_ms);
  *out += ",\"search_ms\":" + JsonNumber(r.trace.search_ms);
  *out += "}";
}

void AppendAnswer(RequestKind kind, const ServiceResponse& r, const Graph& g,
                  std::string* out) {
  *out += "\"base_answers\":" + JsonNumber(double(r.base_answers.size()));
  *out += ",\"answer\":{";
  switch (kind) {
    case RequestKind::kWhySoMany: {
      bool found = r.why_so_many.found;
      *out += "\"found\":";
      *out += found ? "true" : "false";
      *out += ",\"before\":" + JsonNumber(double(r.why_so_many.before));
      *out += ",\"after\":" + JsonNumber(double(r.why_so_many.after));
      *out += ",\"cost\":" + JsonNumber(r.why_so_many.cost);
      if (found) {
        *out += ",\"rewritten\":\"" +
                JsonEscape(WriteQuery(r.why_so_many.rewritten, g)) + "\"";
      }
      break;
    }
    case RequestKind::kWhyEmpty: {
      bool found = r.why_empty.found;
      *out += "\"found\":";
      *out += found ? "true" : "false";
      if (found) {
        *out += ",\"cost\":" + JsonNumber(r.why_empty.cost);
        *out += ",\"sample_answers\":[";
        for (size_t i = 0; i < r.why_empty.sample_answers.size(); ++i) {
          if (i > 0) *out += ",";
          *out += JsonNumber(double(r.why_empty.sample_answers[i]));
        }
        *out += "],\"rewritten\":\"" +
                JsonEscape(WriteQuery(r.why_empty.rewritten, g)) + "\"";
      }
      break;
    }
    case RequestKind::kWhy:
    case RequestKind::kWhyNot: {
      bool found = r.answer.found;
      *out += "\"found\":";
      *out += found ? "true" : "false";
      if (found) {
        *out += ",\"explain\":\"" + JsonEscape(r.answer.Explain(g)) + "\"";
        *out += ",\"cost\":" + JsonNumber(r.answer.cost);
        *out += ",\"closeness\":" + JsonNumber(r.answer.eval.closeness);
        *out += ",\"rewritten\":\"" +
                JsonEscape(WriteQuery(r.answer.rewritten, g)) + "\"";
      }
      break;
    }
  }
  *out += "}";
}

}  // namespace

std::string EncodeResponse(const std::string& id_json, RequestKind kind,
                           const ServiceResponse& r, const Graph& g) {
  switch (r.status) {
    case ResponseStatus::kRejected:
      return EncodeRejected(id_json, kRetryAfterMs);
    case ResponseStatus::kBadRequest:
      return EncodeErrorLine(id_json, "bad_request", r.error);
    case ResponseStatus::kShutdown:
      return EncodeErrorLine(id_json, "shutdown",
                             r.error.empty() ? "server draining" : r.error);
    case ResponseStatus::kOk:
      break;
  }
  std::string out = "{\"id\":" + id_json + ",\"status\":\"ok\"";
  out += ",\"truncated\":";
  out += r.truncated ? "true" : "false";
  out += ",";
  AppendAnswer(kind, r, g, &out);
  out += ",";
  AppendStats(r, &out);
  out += "}\n";
  return out;
}

std::string EncodeErrorLine(const std::string& id_json,
                            const std::string& status,
                            const std::string& error) {
  return "{\"id\":" + id_json + ",\"status\":\"" + JsonEscape(status) +
         "\",\"error\":\"" + JsonEscape(error) + "\"}\n";
}

std::string EncodeRejected(const std::string& id_json,
                           double retry_after_ms) {
  return "{\"id\":" + id_json +
         ",\"status\":\"rejected\",\"error\":\"service queue full\","
         "\"retry_after_ms\":" +
         JsonNumber(retry_after_ms) + "}\n";
}

std::string EncodeStatsResponse(const std::string& id_json,
                                const std::string& stats_json) {
  return "{\"id\":" + id_json + ",\"status\":\"ok\",\"stats\":" +
         stats_json + "}\n";
}

std::string EncodeUpdateResponse(const std::string& id_json, bool applied,
                                 uint64_t generation,
                                 const UpdateResult& result) {
  if (!applied) {
    return "{\"id\":" + id_json + ",\"status\":\"bad_request\"" +
           ",\"update_status\":\"" +
           JsonEscape(UpdateStatusName(result.status)) + "\",\"error\":\"" +
           JsonEscape(result.error) + "\"}\n";
  }
  const UpdateDelta& d = result.delta;
  std::string out = "{\"id\":" + id_json + ",\"status\":\"ok\"";
  out += ",\"generation\":" + std::to_string(generation);
  out += ",\"applied\":{\"nodes_added\":" + std::to_string(d.nodes_added);
  out += ",\"nodes_deleted\":" + std::to_string(d.nodes_deleted);
  out += ",\"edges_added\":" + std::to_string(d.edges_added);
  out += ",\"edges_deleted\":" + std::to_string(d.edges_deleted);
  out += ",\"attrs_set\":" + std::to_string(d.attrs_set);
  out += ",\"attrs_deleted\":" + std::to_string(d.attrs_deleted);
  out += "}}\n";
  return out;
}

}  // namespace whyq::server
