#ifndef WHYQ_SERVER_WIRE_H_
#define WHYQ_SERVER_WIRE_H_

#include <string>

#include "graph/update.h"
#include "server/json.h"
#include "service/request.h"

namespace whyq::server {

/// Accumulates raw socket bytes and splits them into newline-delimited
/// protocol lines, enforcing the per-line and per-connection byte caps
/// from limits.h. The server owns one per connection.
class LineBuffer {
 public:
  LineBuffer(size_t max_line_bytes, size_t max_buffer_bytes)
      : max_line_(max_line_bytes), max_buffer_(max_buffer_bytes) {}

  /// Appends `n` bytes; false when the connection buffer cap would be
  /// exceeded (the caller closes the connection — backpressure belongs in
  /// the admission queue, not in hidden per-connection memory).
  bool Append(const char* data, size_t n);

  enum class Pop {
    kLine,      // `line` holds one complete request line (no terminator)
    kNone,      // no complete line buffered yet
    kOversized  // a line exceeded max_line_bytes — protocol violation
  };

  /// Extracts the next complete line. A trailing '\r' is stripped so
  /// netcat/telnet-style CRLF clients work. kOversized is sticky intent:
  /// the caller must close the connection (no resynchronization).
  Pop PopLine(std::string* line);

  size_t size() const { return buf_.size(); }

 private:
  std::string buf_;
  size_t max_line_;
  size_t max_buffer_;
};

/// One decoded request line. `id_json` is the client's "id" field
/// re-serialized verbatim (the string "null" when absent) so responses can
/// echo it without interpreting it.
struct WireRequest {
  std::string id_json = "null";
  std::string graph;       // target graph name; "" = the server's default
  bool is_stats = false;   // {"question":"stats"} — snapshot, not a query
  bool is_update = false;  // {"op":"update"} — graph mutation, not a query
  UpdateBatch update;      // meaningful when is_update
  ServiceRequest request;  // meaningful when !is_stats && !is_update
};

/// Parses and validates one request line against the limits.h envelope
/// (entity count, query-node count, max_mbs clamp). On failure returns
/// false and sets `error`; `out->id_json` still carries the request id
/// whenever the line was well-formed JSON, so the error response can echo
/// it. Request fields:
///   id          any JSON value, echoed verbatim (optional)
///   question    "why" | "whynot" | "whyempty" | "whysomany" | "stats"
///   op          "update" — graph mutation instead of a question; `ops` is
///               an array of update-batch lines in the graph_io text format
///               (graph/graph_io.h), at most kMaxUpdateOps of them
///   graph       graph name for multi-graph servers (optional)
///   query       query DSL text (required except for "stats")
///   entities    array of node ids (why/whynot)
///   target_k    answer-size target (whysomany; default 10)
///   algo        "auto" | "exact" | "iso" (optional; "approx"/"fast" = auto)
///   deadline_ms per-request deadline, 0 = none (optional)
///   budget, guard, semantics ("iso"|"sim"), max_mbs   tuning (optional)
bool ParseWireRequest(const std::string& line, WireRequest* out,
                      std::string* error);

/// Counts `node` declarations in query DSL text without parsing it — the
/// cheap admission check behind kMaxQueryNodes.
size_t CountQueryNodes(const std::string& query_text);

// Response encoders. Every response is a single JSON line (terminator
// included) echoing `id_json`:
//   {"id":..,"status":"ok",...}                       executed
//   {"id":..,"status":"rejected","retry_after_ms":..} admission control
//   {"id":..,"status":"bad_request","error":".."}     malformed request
//   {"id":..,"status":"shutdown","error":".."}        server draining

/// Encodes an executed response: status by ResponseStatus, `truncated`,
/// a kind-specific "answer" object (explanation, cost, rewritten query —
/// selected by `kind`), and per-request "stats" (latency, cache_hit,
/// stage breakdown). `g` is the graph the request ran against (used to
/// render the explanation).
std::string EncodeResponse(const std::string& id_json, RequestKind kind,
                           const ServiceResponse& r, const Graph& g);

/// Encodes a non-ok response without a ServiceResponse (parse errors,
/// unknown graph, drain refusals). `status` is the wire status string.
std::string EncodeErrorLine(const std::string& id_json,
                            const std::string& status,
                            const std::string& error);

/// Encodes an admission rejection carrying the retry hint.
std::string EncodeRejected(const std::string& id_json, double retry_after_ms);

/// Encodes a stats snapshot reply; `stats_json` is embedded verbatim.
std::string EncodeStatsResponse(const std::string& id_json,
                                const std::string& stats_json);

/// Encodes the outcome of an {"op":"update"} request. Success carries the
/// new epoch's generation and the delta counts; failure carries the typed
/// update status (e.g. "frozen" for snapshot-backed graphs) alongside the
/// human-readable error, so clients can branch without parsing prose:
///   {"id":..,"status":"ok","generation":..,"applied":{...}}
///   {"id":..,"status":"bad_request","update_status":"frozen","error":".."}
std::string EncodeUpdateResponse(const std::string& id_json, bool applied,
                                 uint64_t generation,
                                 const UpdateResult& result);

}  // namespace whyq::server

#endif  // WHYQ_SERVER_WIRE_H_
