#include "service/plan.h"

#include <dirent.h>
#include <sys/stat.h>
#include <sys/types.h>
#include <unistd.h>

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <utility>

#include "query/query_parser.h"

namespace whyq {

namespace {

// Streaming FNV-1a (parameters in graph/snapshot.h).
struct Fnv {
  uint64_t h = kFnvOffsetBasis;

  void Bytes(const void* data, size_t n) {
    const auto* p = static_cast<const unsigned char*>(data);
    for (size_t i = 0; i < n; ++i) {
      h ^= p[i];
      h *= kFnvPrime;
    }
  }
  void U64(uint64_t v) { Bytes(&v, sizeof(v)); }
  void Str(std::string_view s) {
    U64(s.size());
    Bytes(s.data(), s.size());
  }
};

// The payload checksum: the snapshot's striped word-FNV contract (see
// kPlanChecksumLanes in plan.h) — 64-bit little-endian words striped
// round-robin across independent FNV-1a accumulators, each Region() folded
// independently with its final partial word zero-padded.
struct StripedFnv {
  uint64_t lane[kPlanChecksumLanes] = {};
  size_t next = 0;

  StripedFnv() {
    for (auto& l : lane) l = kFnvOffsetBasis;
  }

  void Region(const void* data, size_t n) {
    const auto* p = static_cast<const unsigned char*>(data);
    size_t whole = n & ~(sizeof(uint64_t) - 1);
    for (size_t i = 0; i < whole; i += sizeof(uint64_t)) {
      uint64_t w;
      std::memcpy(&w, p + i, sizeof(w));
      lane[next] = (lane[next] ^ w) * kFnvPrime;
      next = (next + 1) % kPlanChecksumLanes;
    }
    if (whole != n) {
      uint64_t w = 0;
      std::memcpy(&w, p + whole, n - whole);
      lane[next] = (lane[next] ^ w) * kFnvPrime;
      next = (next + 1) % kPlanChecksumLanes;
    }
  }

  uint64_t Digest() const {
    uint64_t h = kFnvOffsetBasis;
    for (uint64_t l : lane) {
      const auto* p = reinterpret_cast<const unsigned char*>(&l);
      for (size_t i = 0; i < sizeof(l); ++i) h = (h ^ p[i]) * kFnvPrime;
    }
    return h;
  }
};

size_t AlignUp(size_t n) {
  return (n + kPlanSectionAlign - 1) & ~size_t{kPlanSectionAlign - 1};
}

// One section staged for writing: id plus a borrowed byte range.
struct Staged {
  uint32_t id = 0;
  const void* data = nullptr;
  size_t bytes = 0;
};

bool Fail(std::string* error, std::string msg) {
  if (error != nullptr) *error = std::move(msg);
  return false;
}

// The loader's view of one validated section.
struct Region {
  const unsigned char* data = nullptr;
  size_t bytes = 0;

  template <typename T>
  const T* Rows() const {
    return reinterpret_cast<const T*>(data);
  }
  template <typename T>
  size_t RowCount() const {
    return bytes / sizeof(T);
  }
  template <typename T>
  bool RowAligned() const {
    return bytes % sizeof(T) == 0;
  }
};

bool StrictlyIncreasing(const Region& r) {
  if (!r.RowAligned<SymbolId>()) return false;
  const SymbolId* rows = r.Rows<SymbolId>();
  size_t count = r.RowCount<SymbolId>();
  for (size_t i = 1; i < count; ++i) {
    if (rows[i] <= rows[i - 1]) return false;
  }
  return true;
}

std::vector<SymbolId> SymbolRows(const Region& r) {
  return std::vector<SymbolId>(r.Rows<SymbolId>(),
                               r.Rows<SymbolId>() + r.RowCount<SymbolId>());
}

}  // namespace

CompiledPlan PlanFromPrepared(const PreparedQuery& prepared,
                              std::string query_text, uint64_t max_paths) {
  CompiledPlan plan;
  plan.query_text = std::move(query_text);
  plan.semantics = prepared.semantics;
  plan.max_paths = max_paths;
  plan.answers = prepared.answers;
  plan.output_candidates = prepared.output_candidates;
  plan.paths = prepared.path_index.paths();
  plan.footprint = prepared.footprint;
  return plan;
}

bool WritePlanFile(const CompiledPlan& plan, const PlanStamp& stamp,
                   const std::string& path, std::string* error) {
  // Flatten the PathIndex into a CSR offset array + step rows.
  std::vector<uint64_t> path_range;
  std::vector<PlanStep> steps;
  path_range.reserve(plan.paths.size() + 1);
  path_range.push_back(0);
  for (const auto& p : plan.paths) {
    for (const PathIndex::Step& s : p) {
      steps.push_back(PlanStep{s.from, s.to, s.edge_label,
                               s.forward ? uint32_t{1} : uint32_t{0}});
    }
    path_range.push_back(steps.size());
  }

  PlanMeta meta{};
  meta.semantics = static_cast<uint32_t>(plan.semantics);
  meta.max_paths = plan.max_paths;
  meta.query_bytes = plan.query_text.size();
  meta.answer_count = plan.answers.size();
  meta.candidate_count = plan.output_candidates.size();
  meta.path_count = plan.paths.size();
  meta.step_count = steps.size();

  auto col = [](uint32_t id, const auto& c) {
    using Row = std::remove_reference_t<decltype(c[0])>;
    return Staged{id, c.data(), c.size() * sizeof(Row)};
  };
  const Staged sections[kPlanSectionCount] = {
      Staged{kPlanSecMeta, &meta, sizeof(meta)},
      Staged{kPlanSecQueryText, plan.query_text.data(),
             plan.query_text.size()},
      col(kPlanSecAnswers, plan.answers),
      col(kPlanSecCandidates, plan.output_candidates),
      col(kPlanSecPathRange, path_range),
      col(kPlanSecSteps, steps),
      col(kPlanSecFpNodeLabels, plan.footprint.node_labels),
      col(kPlanSecFpEdgeLabels, plan.footprint.edge_labels),
      col(kPlanSecFpAttrs, plan.footprint.attrs),
  };

  PlanHeader hdr{};
  std::memcpy(hdr.magic, kPlanMagic, sizeof(hdr.magic));
  hdr.version = kPlanVersion;
  hdr.endian_check = kPlanEndianCheck;
  hdr.header_bytes = sizeof(PlanHeader);
  hdr.section_count = kPlanSectionCount;
  hdr.graph_fingerprint = stamp.fingerprint;
  hdr.graph_identity = stamp.identity;
  hdr.graph_generation = stamp.generation;

  PlanSection table[kPlanSectionCount] = {};
  size_t off = AlignUp(sizeof(PlanHeader) + sizeof(table));
  for (size_t i = 0; i < kPlanSectionCount; ++i) {
    table[i].id = sections[i].id;
    table[i].offset = off;
    table[i].bytes = sections[i].bytes;
    off = AlignUp(off + sections[i].bytes);
  }
  hdr.file_bytes = off;
  // The checksum covers the header prefix (everything before payload_hash
  // itself — the stamp included), the section table, and every payload in
  // id order, so tampering with the stamp is rejected like payload
  // corruption; a restamp must recompute it (RestampPlanFile does).
  StripedFnv payload;
  payload.Region(&hdr, sizeof(PlanHeader) - sizeof(hdr.payload_hash));
  payload.Region(table, sizeof(table));
  for (size_t i = 0; i < kPlanSectionCount; ++i) {
    payload.Region(sections[i].data, sections[i].bytes);
  }
  hdr.payload_hash = payload.Digest();

  const std::string tmp = path + ".tmp";
  std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
  if (!out) return Fail(error, "plan: cannot open " + tmp);
  const char zeros[kPlanSectionAlign] = {};
  size_t written = 0;
  auto put = [&out, &written](const void* data, size_t n) {
    out.write(static_cast<const char*>(data), static_cast<long>(n));
    written += n;
  };
  auto pad_to = [&](size_t target) {
    while (written < target) {
      size_t n = std::min(target - written, sizeof(zeros));
      put(zeros, n);
    }
  };
  put(&hdr, sizeof(hdr));
  put(table, sizeof(table));
  for (size_t i = 0; i < kPlanSectionCount; ++i) {
    pad_to(table[i].offset);
    put(sections[i].data, sections[i].bytes);
  }
  pad_to(hdr.file_bytes);
  out.flush();
  if (!out) return Fail(error, "plan: short write to " + tmp);
  out.close();
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    return Fail(error, "plan: cannot rename into " + path);
  }
  return true;
}

bool LoadPlanFile(const std::string& path, CompiledPlan* out,
                  PlanStamp* stamp, std::string* error) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Fail(error, "plan: cannot open " + path);
  in.seekg(0, std::ios::end);
  const auto end = in.tellg();
  if (end < 0) return Fail(error, "plan: cannot stat " + path);
  const size_t size = static_cast<size_t>(end);
  if (size < sizeof(PlanHeader)) {
    return Fail(error, "plan: file too small: " + path);
  }
  if (size > kPlanMaxFileBytes) {
    return Fail(error, "plan: file exceeds kPlanMaxFileBytes: " + path);
  }
  // Read into a uint64_t buffer so every row type's alignment holds.
  std::vector<uint64_t> buf((size + sizeof(uint64_t) - 1) / sizeof(uint64_t),
                            0);
  in.seekg(0, std::ios::beg);
  in.read(reinterpret_cast<char*>(buf.data()), static_cast<long>(size));
  if (!in) return Fail(error, "plan: short read from " + path);
  const auto* base = reinterpret_cast<const unsigned char*>(buf.data());

  const auto* hdr = reinterpret_cast<const PlanHeader*>(base);
  if (std::memcmp(hdr->magic, kPlanMagic, sizeof(hdr->magic)) != 0) {
    return Fail(error, "plan: bad magic in " + path);
  }
  if (hdr->endian_check != kPlanEndianCheck) {
    return Fail(error, "plan: foreign byte order in " + path);
  }
  if (hdr->version != kPlanVersion ||
      hdr->header_bytes != sizeof(PlanHeader) ||
      hdr->section_count != kPlanSectionCount) {
    return Fail(error, "plan: unsupported version " +
                           std::to_string(hdr->version) + " in " + path);
  }
  if (hdr->file_bytes != size) {
    return Fail(error, "plan: truncated file (header says " +
                           std::to_string(hdr->file_bytes) +
                           " bytes, file has " + std::to_string(size) +
                           "): " + path);
  }

  // Section table: one entry per id, ascending, aligned, in bounds.
  const auto* table =
      reinterpret_cast<const PlanSection*>(base + sizeof(PlanHeader));
  if (sizeof(PlanHeader) + kPlanSectionCount * sizeof(PlanSection) > size) {
    return Fail(error, "plan: truncated section table: " + path);
  }
  Region sec[kPlanSectionCount];
  StripedFnv payload;
  payload.Region(hdr, sizeof(PlanHeader) - sizeof(hdr->payload_hash));
  payload.Region(table, kPlanSectionCount * sizeof(PlanSection));
  for (uint32_t i = 0; i < kPlanSectionCount; ++i) {
    const PlanSection& s = table[i];
    if (s.id != i) return Fail(error, "plan: section table out of order");
    if (s.offset % kPlanSectionAlign != 0) {
      return Fail(error, "plan: misaligned section " + std::to_string(i));
    }
    if (s.offset > size || s.bytes > size - s.offset) {
      return Fail(error, "plan: section " + std::to_string(i) +
                             " out of bounds");
    }
    sec[i] = Region{base + s.offset, s.bytes};
    payload.Region(sec[i].data, sec[i].bytes);
  }
  if (payload.Digest() != hdr->payload_hash) {
    return Fail(error, "plan: payload checksum mismatch (corrupt file): " +
                           path);
  }

  // Meta row, then cross-check every count against the section table.
  if (sec[kPlanSecMeta].bytes != sizeof(PlanMeta)) {
    return Fail(error, "plan: meta section size mismatch");
  }
  PlanMeta meta{};
  std::memcpy(&meta, sec[kPlanSecMeta].data, sizeof(meta));
  if (meta.semantics > static_cast<uint32_t>(MatchSemantics::kSimulation)) {
    return Fail(error, "plan: unknown semantics " +
                           std::to_string(meta.semantics));
  }
  if (meta.query_bytes != sec[kPlanSecQueryText].bytes) {
    return Fail(error, "plan: query text size mismatch");
  }
  if (!sec[kPlanSecAnswers].RowAligned<NodeId>() ||
      sec[kPlanSecAnswers].RowCount<NodeId>() != meta.answer_count) {
    return Fail(error, "plan: answer column size mismatch");
  }
  if (!sec[kPlanSecCandidates].RowAligned<NodeId>() ||
      sec[kPlanSecCandidates].RowCount<NodeId>() != meta.candidate_count) {
    return Fail(error, "plan: candidate column size mismatch");
  }
  if (!sec[kPlanSecPathRange].RowAligned<uint64_t>() ||
      sec[kPlanSecPathRange].RowCount<uint64_t>() != meta.path_count + 1) {
    return Fail(error, "plan: path offset column size mismatch");
  }
  if (!sec[kPlanSecSteps].RowAligned<PlanStep>() ||
      sec[kPlanSecSteps].RowCount<PlanStep>() != meta.step_count) {
    return Fail(error, "plan: step column size mismatch");
  }
  const uint64_t* range = sec[kPlanSecPathRange].Rows<uint64_t>();
  if (range[0] != 0 || range[meta.path_count] != meta.step_count) {
    return Fail(error, "plan: path offsets do not bracket the steps");
  }
  for (size_t i = 1; i <= meta.path_count; ++i) {
    if (range[i] < range[i - 1]) {
      return Fail(error, "plan: path offsets not monotonic");
    }
  }
  const PlanStep* steps = sec[kPlanSecSteps].Rows<PlanStep>();
  for (size_t i = 0; i < meta.step_count; ++i) {
    if (steps[i].forward > 1) {
      return Fail(error, "plan: step direction flag out of range");
    }
  }
  if (!StrictlyIncreasing(sec[kPlanSecFpNodeLabels]) ||
      !StrictlyIncreasing(sec[kPlanSecFpEdgeLabels]) ||
      !StrictlyIncreasing(sec[kPlanSecFpAttrs])) {
    return Fail(error, "plan: footprint sections not sorted unique");
  }

  out->query_text.assign(
      reinterpret_cast<const char*>(sec[kPlanSecQueryText].data),
      sec[kPlanSecQueryText].bytes);
  out->semantics = static_cast<MatchSemantics>(meta.semantics);
  out->max_paths = meta.max_paths;
  out->answers.assign(sec[kPlanSecAnswers].Rows<NodeId>(),
                      sec[kPlanSecAnswers].Rows<NodeId>() + meta.answer_count);
  out->output_candidates.assign(
      sec[kPlanSecCandidates].Rows<NodeId>(),
      sec[kPlanSecCandidates].Rows<NodeId>() + meta.candidate_count);
  out->paths.clear();
  out->paths.reserve(meta.path_count);
  for (size_t p = 0; p < meta.path_count; ++p) {
    std::vector<PathIndex::Step> one;
    one.reserve(range[p + 1] - range[p]);
    for (uint64_t i = range[p]; i < range[p + 1]; ++i) {
      PathIndex::Step s;
      s.from = steps[i].from;
      s.to = steps[i].to;
      s.edge_label = steps[i].edge_label;
      s.forward = steps[i].forward != 0;
      one.push_back(s);
    }
    out->paths.push_back(std::move(one));
  }
  out->footprint.node_labels = SymbolRows(sec[kPlanSecFpNodeLabels]);
  out->footprint.edge_labels = SymbolRows(sec[kPlanSecFpEdgeLabels]);
  out->footprint.attrs = SymbolRows(sec[kPlanSecFpAttrs]);
  if (stamp != nullptr) {
    stamp->fingerprint = hdr->graph_fingerprint;
    stamp->identity = hdr->graph_identity;
    stamp->generation = hdr->graph_generation;
  }
  return true;
}

bool RestampPlanFile(const std::string& src, const std::string& dst,
                     const PlanStamp& new_stamp, std::string* error) {
  // Full decode + re-encode: the source is validated end to end (a corrupt
  // plan is never carried to a new epoch), and the deterministic writer
  // reproduces the identical payload bytes under the new stamp.
  CompiledPlan plan;
  PlanStamp old_stamp;
  if (!LoadPlanFile(src, &plan, &old_stamp, error)) return false;
  return WritePlanFile(plan, new_stamp, dst, error);
}

std::shared_ptr<const PreparedQuery> PreparedFromPlan(const CompiledPlan& plan,
                                                      const Graph& g,
                                                      std::string* error) {
  auto fail = [error](std::string msg) {
    if (error != nullptr) *error = std::move(msg);
    return std::shared_ptr<const PreparedQuery>();
  };
  std::string parse_error;
  std::optional<Query> q = ParseQuery(plan.query_text, g, &parse_error);
  if (!q.has_value()) {
    return fail("plan: stored query does not parse: " + parse_error);
  }
  // Canonical round-trip: the stored text must be WriteQuery's own output,
  // or the plan was addressed under a key it cannot serve.
  if (WriteQuery(*q, g) != plan.query_text) {
    return fail("plan: stored query text is not canonical");
  }
  for (NodeId v : plan.answers) {
    if (v >= g.node_count()) return fail("plan: answer node out of range");
  }
  for (NodeId v : plan.output_candidates) {
    if (v >= g.node_count()) return fail("plan: candidate node out of range");
  }
  for (const auto& path : plan.paths) {
    for (const PathIndex::Step& s : path) {
      if (s.from >= q->node_count() || s.to >= q->node_count()) {
        return fail("plan: path step references a missing query node");
      }
    }
  }
  // The footprint drives update invalidation; a mismatch against the
  // freshly parsed query means the plan cannot be trusted to invalidate
  // correctly, so it is rejected rather than patched.
  SymbolFootprint fresh = FootprintOfQuery(*q);
  if (fresh.node_labels != plan.footprint.node_labels ||
      fresh.edge_labels != plan.footprint.edge_labels ||
      fresh.attrs != plan.footprint.attrs) {
    return fail("plan: stored footprint disagrees with the query");
  }
  return std::make_shared<const PreparedQuery>(
      std::move(*q), plan.semantics, plan.answers, plan.output_candidates,
      PathIndex::FromPaths(plan.paths), fresh);
}

uint64_t PlanKeyHash(uint64_t graph_fingerprint,
                     const std::string& key_body) {
  Fnv f;
  f.Str("whyq.plan.key.v1");
  f.U64(graph_fingerprint);
  f.Str(key_body);
  return f.h;
}

std::string PlanFileName(uint64_t key_hash) {
  char buf[24];
  std::snprintf(buf, sizeof(buf), "%016llx.plan",
                static_cast<unsigned long long>(key_hash));
  return std::string(buf);
}

PlanStore::PlanStore(std::string dir, uint64_t byte_budget)
    : dir_(std::move(dir)), byte_budget_(byte_budget) {
  ::mkdir(dir_.c_str(),
          S_IRWXU | S_IRGRP | S_IXGRP | S_IROTH | S_IXOTH);
  // Index the surviving files of a previous process; mtime order seeds the
  // LRU recency so eviction starts from the genuinely oldest plans.
  struct Found {
    std::string name;
    uint64_t bytes = 0;
    int64_t mtime = 0;
  };
  std::vector<Found> found;
  if (DIR* d = ::opendir(dir_.c_str())) {
    while (const struct dirent* e = ::readdir(d)) {
      std::string name = e->d_name;
      const std::string suffix = ".plan";
      if (name.size() != PlanFileName(0).size() ||
          name.compare(name.size() - suffix.size(), suffix.size(), suffix) !=
              0) {
        continue;
      }
      struct stat st{};
      if (::stat((dir_ + "/" + name).c_str(), &st) != 0 ||
          !S_ISREG(st.st_mode)) {
        continue;
      }
      found.push_back(Found{std::move(name),
                            static_cast<uint64_t>(st.st_size),
                            static_cast<int64_t>(st.st_mtime)});
    }
    ::closedir(d);
  }
  std::sort(found.begin(), found.end(), [](const Found& a, const Found& b) {
    return a.mtime != b.mtime ? a.mtime < b.mtime : a.name < b.name;
  });
  for (Found& f : found) {
    index_[f.name] = FileInfo{f.bytes, ++use_counter_};
    total_bytes_ += f.bytes;
  }
  writer_ = std::thread([this] { WriterMain(); });
}

PlanStore::~PlanStore() {
  {
    MutexLock lock(queue_mu_);
    stop_ = true;
  }
  queue_cv_.NotifyAll();
  writer_.join();
}

void PlanStore::WriterMain() {
  MutexLock lock(queue_mu_);
  for (;;) {
    while (!stop_ && queue_.empty()) queue_cv_.Wait(queue_mu_);
    if (queue_.empty()) {
      if (stop_) return;
      continue;
    }
    std::function<void()> task = std::move(queue_.front());
    queue_.pop_front();
    writer_busy_ = true;
    lock.Unlock();
    task();
    lock.Lock();
    writer_busy_ = false;
    if (queue_.empty()) idle_cv_.NotifyAll();
  }
}

void PlanStore::Enqueue(std::function<void()> task) {
  {
    MutexLock lock(queue_mu_);
    if (stop_) return;
    queue_.push_back(std::move(task));
  }
  queue_cv_.NotifyOne();
}

void PlanStore::Flush() {
  MutexLock lock(queue_mu_);
  while (!queue_.empty() || writer_busy_) idle_cv_.Wait(queue_mu_);
}

void PlanStore::IndexInsert(const std::string& name, uint64_t bytes) {
  MutexLock lock(mu_);
  auto it = index_.find(name);
  if (it != index_.end()) total_bytes_ -= it->second.bytes;
  index_[name] = FileInfo{bytes, ++use_counter_};
  total_bytes_ += bytes;
}

void PlanStore::IndexErase(const std::string& name) {
  MutexLock lock(mu_);
  auto it = index_.find(name);
  if (it == index_.end()) return;
  total_bytes_ -= it->second.bytes;
  index_.erase(it);
}

void PlanStore::DeleteFile(const std::string& name, bool count_invalid) {
  IndexErase(name);
  ::unlink((dir_ + "/" + name).c_str());
  if (count_invalid) invalid_.fetch_add(1, std::memory_order_relaxed);
}

std::string PlanStore::PickEvictionVictimLocked() const {
  if (total_bytes_ <= byte_budget_ || index_.empty()) return std::string();
  std::string victim;
  uint64_t oldest = 0;
  bool first = true;
  for (const auto& [name, info] : index_) {
    if (first || info.use_seq < oldest) {
      oldest = info.use_seq;
      victim = name;
      first = false;
    }
  }
  return victim;
}

void PlanStore::EvictOverBudget() {
  for (;;) {
    std::string victim;
    {
      MutexLock lock(mu_);
      victim = PickEvictionVictimLocked();
    }
    if (victim.empty()) return;
    DeleteFile(victim, /*count_invalid=*/false);
    evictions_.fetch_add(1, std::memory_order_relaxed);
  }
}

std::shared_ptr<const PreparedQuery> PlanStore::TryLoad(
    const Graph& g, uint64_t graph_fp, MatchSemantics semantics,
    size_t max_paths, const std::string& canonical_text) {
  const std::string body =
      PreparedQueryKeyBody(semantics, max_paths, canonical_text);
  const std::string name = PlanFileName(PlanKeyHash(graph_fp, body));
  {
    MutexLock lock(mu_);
    auto it = index_.find(name);
    if (it == index_.end()) {
      misses_.fetch_add(1, std::memory_order_relaxed);
      return nullptr;
    }
    it->second.use_seq = ++use_counter_;
  }
  CompiledPlan plan;
  PlanStamp stamp;
  std::string error;
  auto reject = [this, &name] {
    invalid_.fetch_add(1, std::memory_order_relaxed);
    misses_.fetch_add(1, std::memory_order_relaxed);
    Enqueue([this, name] { DeleteFile(name, /*count_invalid=*/false); });
    return nullptr;
  };
  if (!LoadPlanFile(dir_ + "/" + name, &plan, &stamp, &error)) {
    return reject();
  }
  // Stale-epoch defense: the fingerprint must echo the address the file was
  // found under, and a plan built against this very graph lineage must name
  // the current generation (a restamp bug or fingerprint collision is
  // caught here, never served).
  if (stamp.fingerprint != graph_fp ||
      (stamp.identity == g.identity() &&
       stamp.generation != g.generation())) {
    return reject();
  }
  // Hash-collision defense: the plan must echo the exact key fields.
  if (plan.semantics != semantics || plan.max_paths != max_paths ||
      plan.query_text != canonical_text) {
    return reject();
  }
  std::shared_ptr<const PreparedQuery> prepared =
      PreparedFromPlan(plan, g, &error);
  if (prepared == nullptr) return reject();
  hits_.fetch_add(1, std::memory_order_relaxed);
  return prepared;
}

void PlanStore::SaveAsync(std::shared_ptr<const PreparedQuery> prepared,
                          std::string query_text, uint64_t max_paths,
                          PlanStamp stamp) {
  if (prepared == nullptr) return;
  Enqueue([this, prepared = std::move(prepared),
           query_text = std::move(query_text), max_paths, stamp] {
    const std::string body =
        PreparedQueryKeyBody(prepared->semantics, max_paths, query_text);
    const std::string name =
        PlanFileName(PlanKeyHash(stamp.fingerprint, body));
    {
      MutexLock lock(mu_);
      if (index_.count(name) != 0) return;  // already persisted
    }
    CompiledPlan plan = PlanFromPrepared(*prepared, query_text, max_paths);
    std::string error;
    const std::string path = dir_ + "/" + name;
    if (!WritePlanFile(plan, stamp, path, &error)) return;
    struct stat st{};
    uint64_t bytes =
        ::stat(path.c_str(), &st) == 0 ? static_cast<uint64_t>(st.st_size)
                                       : 0;
    IndexInsert(name, bytes);
    writes_.fetch_add(1, std::memory_order_relaxed);
    EvictOverBudget();
  });
}

size_t PlanStore::WarmLoad(const Graph& g, uint64_t graph_fp,
                           size_t max_plans, PreparedQueryCache* cache) {
  if (cache == nullptr || max_plans == 0) return 0;
  // Snapshot the index most-recent-first so the warm pass replays the
  // store's recency order into the in-memory LRU.
  std::vector<std::pair<uint64_t, std::string>> names;
  {
    MutexLock lock(mu_);
    names.reserve(index_.size());
    for (const auto& [name, info] : index_) {
      names.emplace_back(info.use_seq, name);
    }
  }
  std::sort(names.begin(), names.end());
  const std::string prefix = GraphEpochPrefix(g);
  size_t loaded = 0;
  // Oldest first: the most recently used plan lands at the LRU front.
  for (const auto& [seq, name] : names) {
    if (loaded >= max_plans) break;
    CompiledPlan plan;
    PlanStamp stamp;
    std::string error;
    if (!LoadPlanFile(dir_ + "/" + name, &plan, &stamp, &error)) {
      invalid_.fetch_add(1, std::memory_order_relaxed);
      Enqueue([this, name = name] {
        DeleteFile(name, /*count_invalid=*/false);
      });
      continue;
    }
    // Plans for other graphs (a shared store directory) are not ours to
    // judge — skip without counting.
    if (stamp.fingerprint != graph_fp) continue;
    if (stamp.identity == g.identity() &&
        stamp.generation != g.generation()) {
      continue;
    }
    std::shared_ptr<const PreparedQuery> prepared =
        PreparedFromPlan(plan, g, &error);
    if (prepared == nullptr) {
      invalid_.fetch_add(1, std::memory_order_relaxed);
      Enqueue([this, name = name] {
        DeleteFile(name, /*count_invalid=*/false);
      });
      continue;
    }
    cache->Put(prefix + PreparedQueryKeyBody(plan.semantics, plan.max_paths,
                                             plan.query_text),
               std::move(prepared));
    ++loaded;
  }
  return loaded;
}

void PlanStore::OnUpdate(uint64_t old_fp, PlanStamp new_stamp,
                         std::vector<std::string> dropped_bodies,
                         std::vector<std::string> rekeyed_bodies) {
  Enqueue([this, old_fp, new_stamp,
           dropped_bodies = std::move(dropped_bodies),
           rekeyed_bodies = std::move(rekeyed_bodies)] {
    for (const std::string& body : dropped_bodies) {
      const std::string name = PlanFileName(PlanKeyHash(old_fp, body));
      bool indexed;
      {
        MutexLock lock(mu_);
        indexed = index_.count(name) != 0;
      }
      // The update proved this plan's artifacts stale: its epoch is gone.
      if (indexed) DeleteFile(name, /*count_invalid=*/true);
    }
    for (const std::string& body : rekeyed_bodies) {
      const std::string old_name = PlanFileName(PlanKeyHash(old_fp, body));
      const std::string new_name =
          PlanFileName(PlanKeyHash(new_stamp.fingerprint, body));
      bool indexed;
      {
        MutexLock lock(mu_);
        indexed = index_.count(old_name) != 0;
      }
      if (!indexed) continue;
      std::string error;
      if (RestampPlanFile(dir_ + "/" + old_name, dir_ + "/" + new_name,
                          new_stamp, &error)) {
        struct stat st{};
        uint64_t bytes = ::stat((dir_ + "/" + new_name).c_str(), &st) == 0
                             ? static_cast<uint64_t>(st.st_size)
                             : 0;
        IndexInsert(new_name, bytes);
        writes_.fetch_add(1, std::memory_order_relaxed);
        if (new_name != old_name) {
          DeleteFile(old_name, /*count_invalid=*/false);
        }
      } else {
        // Unreadable at restamp time: treat like any other invalid file.
        DeleteFile(old_name, /*count_invalid=*/true);
      }
    }
    EvictOverBudget();
  });
}

PlanStore::Counters PlanStore::counters() const {
  Counters c;
  c.hits = hits_.load(std::memory_order_relaxed);
  c.misses = misses_.load(std::memory_order_relaxed);
  c.writes = writes_.load(std::memory_order_relaxed);
  c.evictions = evictions_.load(std::memory_order_relaxed);
  c.invalid = invalid_.load(std::memory_order_relaxed);
  return c;
}

size_t PlanStore::file_count() const {
  MutexLock lock(mu_);
  return index_.size();
}

uint64_t PlanStore::stored_bytes() const {
  MutexLock lock(mu_);
  return total_bytes_;
}

}  // namespace whyq
