#ifndef WHYQ_SERVICE_PLAN_H_
#define WHYQ_SERVICE_PLAN_H_

#include <atomic>
#include <cstdint>
#include <deque>
#include <functional>
#include <list>
#include <memory>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "common/mutex.h"
#include "graph/snapshot.h"
#include "graph/update.h"
#include "matcher/path_index.h"
#include "service/prepared.h"

// Persistent compiled query plans: everything PrepareQuery produces for one
// (query, semantics, max_paths) triple — the canonical query text, the
// answer set Q(u_o, G), the output-candidate set, the sampled PathIndex and
// the SymbolFootprint — serialized into one relocatable on-disk artifact,
// stamped with the source graph's fingerprint and identity@generation. The
// full byte-level contract lives in docs/PLAN_FORMAT.md; this header is the
// single source of truth for every constant of the format (whyq-lint rule
// "plan-limits" forbids numeric limits anywhere else in the plan layer),
// and the struct declarations below are what the documentation's field
// tables are checked against (tools/check_docs.sh).

namespace whyq {

/// Format constants. Bump kPlanVersion on ANY layout change — the loader
/// rejects files whose version, header size, or section count do not match
/// exactly (no in-place migration; a plan is a cache of PrepareQuery
/// output, and the rebuild it caches is always available).
inline constexpr char kPlanMagic[8] = {'W', 'H', 'Y', 'Q', 'P', 'L', 'N', '1'};
inline constexpr uint32_t kPlanVersion = 1;
// Written as the native-endian value 0x01020304; a loader on an
// opposite-endian host reads 0x04030201 and rejects the file.
inline constexpr uint32_t kPlanEndianCheck = 0x01020304;
// Every section payload starts on a 64-byte boundary, padding written as
// zero — the same plan contents always produce a byte-identical file.
inline constexpr uint32_t kPlanSectionAlign = 64;
// Number of sections in a version-1 plan (one per PlanSectionId).
inline constexpr uint32_t kPlanSectionCount = 9;
// The payload checksum folds 64-bit little-endian words striped round-robin
// across this many independent FNV-1a lanes (the snapshot's striped-FNV
// contract, see kSnapshotChecksumLanes): each covered region — header
// prefix, section table, then every section payload in id order — is
// folded independently with its final partial word zero-padded, and the
// digest byte-hashes the lane accumulators in lane order.
inline constexpr uint32_t kPlanChecksumLanes = 4;
// A plan file larger than this is rejected unread — no legitimate prepared
// artifact comes close, and the cap bounds what a hostile header can make
// the loader allocate.
inline constexpr uint64_t kPlanMaxFileBytes = 1ull << 30;
// Default PlanStore byte budget (sum of plan file sizes before LRU file
// eviction kicks in).
inline constexpr uint64_t kPlanStoreDefaultBudget = 256ull << 20;
// Default cap on the number of plans a boot-time warm pass will load.
inline constexpr size_t kPlanWarmLoadDefault = 256;

/// Fixed 64-byte file header (at offset 0).
struct PlanHeader {
  char magic[8];           // kPlanMagic
  uint32_t version;        // kPlanVersion
  uint32_t endian_check;   // kPlanEndianCheck, native byte order
  uint32_t header_bytes;   // sizeof(PlanHeader)
  uint32_t section_count;  // kPlanSectionCount
  uint64_t file_bytes;     // total file size, including padding
  uint64_t graph_fingerprint;  // GraphFingerprint of the source graph
  uint64_t graph_identity;     // Graph::identity() at build time
  uint64_t graph_generation;   // Graph::generation() at build time
  uint64_t payload_hash;   // striped word-FNV over header prefix + table +
                           // payloads (see kPlanChecksumLanes)
};
static_assert(sizeof(PlanHeader) == kPlanSectionAlign,
              "header must stay one aligned block");

/// Section ids, in file order. The section table (directly after the
/// header) has exactly one entry per id, ascending.
enum PlanSectionId : uint32_t {
  kPlanSecMeta = 0,          // one PlanMeta row
  kPlanSecQueryText = 1,     // canonical WriteQuery text, raw bytes
  kPlanSecAnswers = 2,       // NodeId x answer_count
  kPlanSecCandidates = 3,    // NodeId x candidate_count
  kPlanSecPathRange = 4,     // uint64_t x (path_count + 1), CSR offsets
  kPlanSecSteps = 5,         // PlanStep x step_count
  kPlanSecFpNodeLabels = 6,  // SymbolId rows (footprint, sorted unique)
  kPlanSecFpEdgeLabels = 7,  // SymbolId rows
  kPlanSecFpAttrs = 8,       // SymbolId rows
};

/// One entry of the section table.
struct PlanSection {
  uint32_t id;        // PlanSectionId
  uint32_t reserved;  // written as zero
  uint64_t offset;    // from file start; kPlanSectionAlign-aligned
  uint64_t bytes;     // payload size (padding to the next section excluded)
};

/// Fixed-size metadata row (section kPlanSecMeta). The counts must agree
/// with the section table's byte sizes — the loader cross-checks both.
struct PlanMeta {
  uint32_t semantics;  // MatchSemantics as its enum value
  uint32_t reserved;   // written as zero
  uint64_t max_paths;  // the PathIndex sampling bound the plan was built with
  uint64_t query_bytes;      // == kPlanSecQueryText payload size
  uint64_t answer_count;     // rows in kPlanSecAnswers
  uint64_t candidate_count;  // rows in kPlanSecCandidates
  uint64_t path_count;       // rows in kPlanSecPathRange minus one
  uint64_t step_count;       // rows in kPlanSecSteps
};

/// One PathIndex step flattened to a fixed 16-byte row (PathIndex::Step
/// stores a bool; on disk `forward` must be exactly 0 or 1).
struct PlanStep {
  uint32_t from;        // QNodeId
  uint32_t to;          // QNodeId
  uint32_t edge_label;  // SymbolId
  uint32_t forward;     // 0 or 1
};

/// The graph epoch a plan was compiled against. `fingerprint` is the
/// logical content hash (relocation key: any graph with equal content may
/// serve the plan); identity@generation pins the live epoch so a restamp
/// bug or fingerprint collision can never resurrect a stale plan.
struct PlanStamp {
  uint64_t fingerprint = 0;
  uint64_t identity = 0;
  uint64_t generation = 0;
};

/// In-memory image of one plan file: exactly what PrepareQuery produced,
/// with the query in canonical text form (re-parsed against the target
/// graph on load — fingerprint equality guarantees the identical symbol
/// space, so ids round-trip).
struct CompiledPlan {
  std::string query_text;  // canonical WriteQuery serialization
  MatchSemantics semantics = MatchSemantics::kIsomorphism;
  uint64_t max_paths = 0;
  std::vector<NodeId> answers;
  std::vector<NodeId> output_candidates;
  std::vector<std::vector<PathIndex::Step>> paths;
  SymbolFootprint footprint;
};

/// Flattens a PreparedQuery (plus the canonical text its cache key was
/// derived from and the max_paths it was built with) into a writable plan.
CompiledPlan PlanFromPrepared(const PreparedQuery& prepared,
                              std::string query_text, uint64_t max_paths);

/// Serializes `plan` + `stamp` into `path` (atomic: temp file + rename).
/// Returns false with `*error` set on I/O failure.
bool WritePlanFile(const CompiledPlan& plan, const PlanStamp& stamp,
                   const std::string& path, std::string* error);

/// Reads and fully validates a plan file: magic/version/endian, header
/// geometry, section table, checksum, meta/section cross-checks and
/// structural invariants. Returns false with `*error` set on any failure —
/// a file that fails here must be discarded, never partially trusted.
bool LoadPlanFile(const std::string& path, CompiledPlan* out,
                  PlanStamp* stamp, std::string* error);

/// Reads `src`, validates it, rewrites its stamp to `new_stamp` (with the
/// payload checksum recomputed) and writes the result to `dst` (atomic).
/// Used when ApplyDelta proves a plan's artifacts survive an update
/// verbatim: the file is carried to the new epoch without re-preparation.
bool RestampPlanFile(const std::string& src, const std::string& dst,
                     const PlanStamp& new_stamp, std::string* error);

/// Rebuilds a ready-to-serve PreparedQuery from a loaded plan, validating
/// every id against `g` (query round-trip, answer/candidate node ids, step
/// node ids, footprint recomputation). Returns null with `*error` set if
/// the plan does not describe a coherent artifact for `g`.
std::shared_ptr<const PreparedQuery> PreparedFromPlan(const CompiledPlan& plan,
                                                      const Graph& g,
                                                      std::string* error);

/// Content address of a plan in the store: FNV-1a over a fixed seed, the
/// graph fingerprint and the epoch-free cache-key body
/// (PreparedQueryKeyBody). Distinct epochs of one graph hash to distinct
/// files; equal-content graphs share them.
uint64_t PlanKeyHash(uint64_t graph_fingerprint, const std::string& key_body);

/// The store filename for a key hash: 16 lowercase hex digits + ".plan".
std::string PlanFileName(uint64_t key_hash);

/// A bounded directory of plan files, content-addressed by PlanKeyHash.
///
/// All file mutations (saves, restamps, deletes, evictions) run on one
/// background writer thread, keeping them off the request critical path and
/// trivially race-free with each other; TryLoad reads concurrently —
/// open-then-read is safe against a racing unlink, and a file that
/// disappears mid-probe is simply a miss. Counters are atomics, exported
/// into StatsSnapshot by the owning service.
///
/// Thread-safety: every public method may be called from any thread.
class PlanStore {
 public:
  struct Counters {
    uint64_t hits = 0;       // TryLoad served a validated plan
    uint64_t misses = 0;     // TryLoad found nothing usable
    uint64_t writes = 0;     // plan files durably written (saves + restamps)
    uint64_t evictions = 0;  // files dropped by the LRU byte budget
    uint64_t invalid = 0;    // files rejected (corrupt/stale) and deleted
  };

  /// Opens (creating if needed) `dir` and indexes its existing *.plan
  /// files; recency is seeded from file mtimes.
  explicit PlanStore(std::string dir,
                     uint64_t byte_budget = kPlanStoreDefaultBudget);
  ~PlanStore();

  PlanStore(const PlanStore&) = delete;
  PlanStore& operator=(const PlanStore&) = delete;

  const std::string& dir() const { return dir_; }
  uint64_t byte_budget() const { return byte_budget_; }

  /// Looks up the plan for (`graph_fp`, the key body of `semantics` /
  /// `max_paths` / `canonical_text`), validates it against `g`, and
  /// returns a ready PreparedQuery — or null (a miss). A file that fails
  /// validation or echoes back different key fields (hash-collision
  /// defense) is deleted and counted invalid; the probe is still a miss.
  std::shared_ptr<const PreparedQuery> TryLoad(
      const Graph& g, uint64_t graph_fp, MatchSemantics semantics,
      size_t max_paths, const std::string& canonical_text)
      WHYQ_EXCLUDES(mu_, queue_mu_);

  /// Enqueues a completed build for persistence (no-op if the store
  /// already holds a file for its key). Returns immediately; the write
  /// happens on the writer thread.
  void SaveAsync(std::shared_ptr<const PreparedQuery> prepared,
                 std::string query_text, uint64_t max_paths, PlanStamp stamp)
      WHYQ_EXCLUDES(queue_mu_);

  /// Boot-time warm pass: loads up to `max_plans` stored plans matching
  /// `graph_fp` (most recent first) straight into `cache` under `g`'s
  /// current epoch keys. Corrupt files are deleted and counted invalid;
  /// plans for other graphs are skipped silently. Warm loads touch
  /// neither `hits` nor `misses`. Returns the number of plans loaded.
  size_t WarmLoad(const Graph& g, uint64_t graph_fp, size_t max_plans,
                  PreparedQueryCache* cache) WHYQ_EXCLUDES(mu_, queue_mu_);

  /// Applies a graph update's cache verdicts to the store, on the writer
  /// thread: plans whose footprint intersected the delta (`dropped_bodies`)
  /// are deleted (counted invalid — their epoch is gone); provably
  /// unaffected plans (`rekeyed_bodies`) are restamped from their
  /// `old_fp`-addressed file to the `new_stamp` address.
  void OnUpdate(uint64_t old_fp, PlanStamp new_stamp,
                std::vector<std::string> dropped_bodies,
                std::vector<std::string> rekeyed_bodies)
      WHYQ_EXCLUDES(queue_mu_);

  /// Blocks until every previously enqueued writer task has completed.
  void Flush() WHYQ_EXCLUDES(queue_mu_);

  Counters counters() const;

  /// Files currently indexed (tests/bench).
  size_t file_count() const WHYQ_EXCLUDES(mu_);
  /// Sum of indexed file sizes in bytes.
  uint64_t stored_bytes() const WHYQ_EXCLUDES(mu_);

 private:
  struct FileInfo {
    uint64_t bytes = 0;
    uint64_t use_seq = 0;  // higher = more recently used
  };

  void WriterMain() WHYQ_EXCLUDES(queue_mu_);
  void Enqueue(std::function<void()> task) WHYQ_EXCLUDES(queue_mu_);
  // Writer-thread helpers (index mutations under mu_).
  void IndexInsert(const std::string& name, uint64_t bytes)
      WHYQ_EXCLUDES(mu_);
  void IndexErase(const std::string& name) WHYQ_EXCLUDES(mu_);
  void EvictOverBudget() WHYQ_EXCLUDES(mu_);
  void DeleteFile(const std::string& name, bool count_invalid)
      WHYQ_EXCLUDES(mu_);
  /// The least-recently-used indexed file, or "" when the store is within
  /// budget (or empty) and eviction should stop. Caller holds mu_.
  std::string PickEvictionVictimLocked() const WHYQ_REQUIRES(mu_);

  const std::string dir_;
  const uint64_t byte_budget_;

  mutable Mutex mu_;  // guards the file index and its aggregates
  std::unordered_map<std::string, FileInfo> index_ WHYQ_GUARDED_BY(mu_);
  uint64_t total_bytes_ WHYQ_GUARDED_BY(mu_) = 0;
  uint64_t use_counter_ WHYQ_GUARDED_BY(mu_) = 0;

  std::atomic<uint64_t> hits_{0};
  std::atomic<uint64_t> misses_{0};
  std::atomic<uint64_t> writes_{0};
  std::atomic<uint64_t> evictions_{0};
  std::atomic<uint64_t> invalid_{0};

  Mutex queue_mu_;
  CondVar queue_cv_;
  CondVar idle_cv_;
  std::deque<std::function<void()>> queue_ WHYQ_GUARDED_BY(queue_mu_);
  bool writer_busy_ WHYQ_GUARDED_BY(queue_mu_) = false;
  bool stop_ WHYQ_GUARDED_BY(queue_mu_) = false;
  std::thread writer_;
};

}  // namespace whyq

#endif  // WHYQ_SERVICE_PLAN_H_
