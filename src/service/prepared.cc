#include "service/prepared.h"

#include <algorithm>
#include <set>
#include <utility>

#include "common/cancel.h"
#include "common/timer.h"
#include "matcher/candidates.h"
#include "matcher/match_context.h"
#include "query/query_parser.h"

namespace whyq {

SymbolFootprint FootprintOfQuery(const Query& q) {
  std::set<SymbolId> node_labels;
  std::set<SymbolId> attrs;
  std::set<SymbolId> edge_labels;
  for (QNodeId u = 0; u < q.node_count(); ++u) {
    const QueryNode& n = q.node(u);
    if (n.label != kInvalidSymbol) node_labels.insert(n.label);
    for (const Literal& l : n.literals) {
      if (l.attr != kInvalidSymbol) attrs.insert(l.attr);
    }
  }
  for (const QueryEdge& e : q.edges()) {
    if (e.label != kInvalidSymbol) edge_labels.insert(e.label);
  }
  SymbolFootprint fp;
  fp.node_labels.assign(node_labels.begin(), node_labels.end());
  fp.edge_labels.assign(edge_labels.begin(), edge_labels.end());
  fp.attrs.assign(attrs.begin(), attrs.end());
  return fp;
}

std::string GraphEpochPrefix(const Graph& g) {
  return "g=" + std::to_string(g.identity()) + "@" +
         std::to_string(g.generation()) + "|";
}

std::string PreparedQueryKeyBody(MatchSemantics semantics, size_t max_paths,
                                 const std::string& canonical_text) {
  return std::string(MatchSemanticsName(semantics)) +
         "|paths=" + std::to_string(max_paths) + "\n" + canonical_text;
}

std::string PreparedQueryKey(const Query& q, const Graph& g,
                             MatchSemantics semantics, size_t max_paths) {
  return GraphEpochPrefix(g) +
         PreparedQueryKeyBody(semantics, max_paths, WriteQuery(q, g));
}

std::shared_ptr<const PreparedQuery> PrepareQuery(const Graph& g, Query q,
                                                  MatchSemantics semantics,
                                                  size_t max_paths,
                                                  const CancelToken* cancel,
                                                  bool* complete,
                                                  size_t threads,
                                                  RequestTrace* trace) {
  Timer stage;
  // The PreparedQuery constructor samples the PathIndex.
  auto prepared =
      std::make_shared<PreparedQuery>(std::move(q), semantics, max_paths);
  if (trace != nullptr) {
    trace->path_index_ms = stage.ElapsedMillis();
    stage.Reset();
  }
  prepared->output_candidates =
      Candidates(g, prepared->query, prepared->query.output(), threads);
  if (trace != nullptr) {
    trace->candidates_ms = stage.ElapsedMillis();
    trace->matcher_candidates = prepared->output_candidates.size();
    stage.Reset();
  }
  // Request-scoped candidate memo for the answer match: the just-computed
  // output-candidate set is seeded so the matcher never rescans the output
  // label bucket, and every non-output query node's set is memoized across
  // the root loop. Lives only for this build (the prepared artifacts it
  // feeds are immutable and cacheable; the context is not).
  MatchContext ctx(g);
  MatchContext* ctx_ptr = nullptr;
  if (semantics == MatchSemantics::kIsomorphism) {
    ctx.Seed(prepared->query.node(prepared->query.output()),
             prepared->output_candidates);
    ctx_ptr = &ctx;
  }
  std::unique_ptr<MatchEngine> engine = MakeMatchEngine(g, semantics, ctx_ptr);
  engine->SetCancelToken(cancel);
  prepared->answers = engine->MatchOutput(prepared->query);
  if (trace != nullptr) {
    trace->answer_match_ms = stage.ElapsedMillis();
    if (ctx_ptr != nullptr) {
      const MatchContext::Stats& cs = ctx.stats();
      trace->ctx_hits += cs.hits;
      trace->ctx_misses += cs.misses;
      trace->ctx_delta_builds += cs.delta_builds;
      trace->ctx_pruned += cs.pruned;
    }
  }
  // A build whose answer match was clipped would poison every later hit;
  // the caller keeps it request-local instead of caching it.
  if (complete != nullptr) *complete = !CancelRequested(cancel);
  return prepared;
}

std::shared_ptr<const PreparedQuery> PreparedQueryCache::Get(
    const std::string& key) {
  MutexLock lock(mu_);
  auto it = index_.find(key);
  if (it == index_.end()) return nullptr;
  lru_.splice(lru_.begin(), lru_, it->second);  // refresh recency
  return it->second->value;
}

void PreparedQueryCache::EvictOverCapacityLocked() {
  while (lru_.size() > capacity_) {
    index_.erase(lru_.back().key);
    lru_.pop_back();
  }
}

void PreparedQueryCache::Put(const std::string& key,
                             std::shared_ptr<const PreparedQuery> value) {
  if (capacity_ == 0) return;
  MutexLock lock(mu_);
  auto it = index_.find(key);
  if (it != index_.end()) {
    it->second->value = std::move(value);
    lru_.splice(lru_.begin(), lru_, it->second);
    return;
  }
  lru_.push_front(Entry{key, std::move(value)});
  index_[key] = lru_.begin();
  EvictOverCapacityLocked();
}

size_t PreparedQueryCache::size() const {
  MutexLock lock(mu_);
  return lru_.size();
}

PreparedQueryCache::DeltaOutcome PreparedQueryCache::ApplyDelta(
    const std::string& old_prefix, const std::string& new_prefix,
    const UpdateDelta& delta) {
  DeltaOutcome outcome;
  MutexLock lock(mu_);
  for (auto it = lru_.begin(); it != lru_.end();) {
    if (it->key.compare(0, old_prefix.size(), old_prefix) != 0) {
      ++it;  // a different graph (or epoch) — not ours to touch
      continue;
    }
    std::string body = it->key.substr(old_prefix.size());
    if (it->value->footprint.Intersects(delta)) {
      index_.erase(it->key);
      it = lru_.erase(it);
      ++outcome.invalidated;
      outcome.dropped_bodies.push_back(std::move(body));
    } else {
      std::string new_key = new_prefix + body;
      index_.erase(it->key);
      if (index_.count(new_key) != 0) {
        // An entry already lives under the new epoch's key. Keep it (and
        // its recency): inserting a second list node for the same key would
        // orphan one of the two, and evicting the orphan later would erase
        // the survivor's index record.
        it = lru_.erase(it);
      } else {
        // In-place rekey: the list node is untouched, so the carried entry
        // keeps its exact LRU recency (see the DeltaOutcome contract).
        it->key = new_key;
        index_[std::move(new_key)] = it;
        ++it;
      }
      ++outcome.rekeyed;
      outcome.rekeyed_bodies.push_back(std::move(body));
    }
  }
  return outcome;
}

}  // namespace whyq
