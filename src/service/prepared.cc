#include "service/prepared.h"

#include <utility>

#include "common/cancel.h"
#include "common/timer.h"
#include "matcher/candidates.h"
#include "matcher/match_context.h"
#include "query/query_parser.h"

namespace whyq {

std::string PreparedQueryKey(const Query& q, const Graph& g,
                             MatchSemantics semantics, size_t max_paths) {
  return std::string(MatchSemanticsName(semantics)) + "|paths=" +
         std::to_string(max_paths) + "\n" + WriteQuery(q, g);
}

std::shared_ptr<const PreparedQuery> PrepareQuery(const Graph& g, Query q,
                                                  MatchSemantics semantics,
                                                  size_t max_paths,
                                                  const CancelToken* cancel,
                                                  bool* complete,
                                                  size_t threads,
                                                  RequestTrace* trace) {
  Timer stage;
  // The PreparedQuery constructor samples the PathIndex.
  auto prepared =
      std::make_shared<PreparedQuery>(std::move(q), semantics, max_paths);
  if (trace != nullptr) {
    trace->path_index_ms = stage.ElapsedMillis();
    stage.Reset();
  }
  prepared->output_candidates =
      Candidates(g, prepared->query, prepared->query.output(), threads);
  if (trace != nullptr) {
    trace->candidates_ms = stage.ElapsedMillis();
    trace->matcher_candidates = prepared->output_candidates.size();
    stage.Reset();
  }
  // Request-scoped candidate memo for the answer match: the just-computed
  // output-candidate set is seeded so the matcher never rescans the output
  // label bucket, and every non-output query node's set is memoized across
  // the root loop. Lives only for this build (the prepared artifacts it
  // feeds are immutable and cacheable; the context is not).
  MatchContext ctx(g);
  MatchContext* ctx_ptr = nullptr;
  if (semantics == MatchSemantics::kIsomorphism) {
    ctx.Seed(prepared->query.node(prepared->query.output()),
             prepared->output_candidates);
    ctx_ptr = &ctx;
  }
  std::unique_ptr<MatchEngine> engine = MakeMatchEngine(g, semantics, ctx_ptr);
  engine->SetCancelToken(cancel);
  prepared->answers = engine->MatchOutput(prepared->query);
  if (trace != nullptr) {
    trace->answer_match_ms = stage.ElapsedMillis();
    if (ctx_ptr != nullptr) {
      const MatchContext::Stats& cs = ctx.stats();
      trace->ctx_hits += cs.hits;
      trace->ctx_misses += cs.misses;
      trace->ctx_delta_builds += cs.delta_builds;
      trace->ctx_pruned += cs.pruned;
    }
  }
  // A build whose answer match was clipped would poison every later hit;
  // the caller keeps it request-local instead of caching it.
  if (complete != nullptr) *complete = !CancelRequested(cancel);
  return prepared;
}

std::shared_ptr<const PreparedQuery> PreparedQueryCache::Get(
    const std::string& key) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = index_.find(key);
  if (it == index_.end()) return nullptr;
  lru_.splice(lru_.begin(), lru_, it->second);  // refresh recency
  return it->second->value;
}

void PreparedQueryCache::Put(const std::string& key,
                             std::shared_ptr<const PreparedQuery> value) {
  if (capacity_ == 0) return;
  std::lock_guard<std::mutex> lock(mu_);
  auto it = index_.find(key);
  if (it != index_.end()) {
    it->second->value = std::move(value);
    lru_.splice(lru_.begin(), lru_, it->second);
    return;
  }
  lru_.push_front(Entry{key, std::move(value)});
  index_[key] = lru_.begin();
  while (lru_.size() > capacity_) {
    index_.erase(lru_.back().key);
    lru_.pop_back();
  }
}

size_t PreparedQueryCache::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return lru_.size();
}

}  // namespace whyq
