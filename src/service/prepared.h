#ifndef WHYQ_SERVICE_PREPARED_H_
#define WHYQ_SERVICE_PREPARED_H_

#include <list>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/metrics.h"
#include "common/mutex.h"
#include "graph/update.h"
#include "matcher/match_engine.h"
#include "matcher/path_index.h"
#include "query/query.h"

namespace whyq {

class CancelToken;

/// The symbol sets `q`'s cached artifacts depend on: its node labels, edge
/// labels, and literal attributes. Answers and output candidates are
/// derived from label buckets, labeled adjacency and literal evaluation
/// over exactly these symbols; PathIndex samples are built from the query
/// alone. An update whose delta is disjoint from this footprint therefore
/// cannot change any cached artifact — the soundness argument behind
/// PreparedQueryCache::ApplyDelta's precise invalidation.
SymbolFootprint FootprintOfQuery(const Query& q);

/// Per-(query, semantics) artifacts every question over that query needs:
/// the parsed query, its answer set Q(u_o, G), the output node's candidate
/// set, and the sampled PathIndex (the estimation backbone). Building these
/// is the dominant fixed cost of a request — the answer match scans every
/// output-label node — so repeated questions over the same query share one
/// immutable PreparedQuery through the service's LRU cache.
///
/// Thread-safety: immutable after construction; shared across workers via
/// shared_ptr<const PreparedQuery>.
struct PreparedQuery {
  Query query;
  MatchSemantics semantics = MatchSemantics::kIsomorphism;
  std::vector<NodeId> answers;            // Q(u_o, G) under `semantics`
  std::vector<NodeId> output_candidates;  // label+literal candidates of u_o
  PathIndex path_index;
  SymbolFootprint footprint;  // symbols the artifacts depend on (see below)

  PreparedQuery(Query q, MatchSemantics s, size_t max_paths)
      : query(std::move(q)),
        semantics(s),
        path_index(query, max_paths),
        footprint(FootprintOfQuery(query)) {}

  /// Artifact-loading constructor (service/plan.cc): every field was
  /// deserialized from a validated CompiledPlan instead of being built.
  PreparedQuery(Query q, MatchSemantics s, std::vector<NodeId> answers_in,
                std::vector<NodeId> candidates, PathIndex index,
                SymbolFootprint fp)
      : query(std::move(q)),
        semantics(s),
        answers(std::move(answers_in)),
        output_candidates(std::move(candidates)),
        path_index(std::move(index)),
        footprint(std::move(fp)) {}
};

/// The `g=<identity>@<generation>|` key prefix naming one graph epoch.
/// Folding it into every cache key makes stale hits structurally
/// impossible: an updated (or merely different) graph never produces the
/// key an older epoch's entry was stored under.
std::string GraphEpochPrefix(const Graph& g);

/// The epoch-free part of a cache key: the semantics, the path-index size,
/// and the query's canonical serialized form (`canonical_text` must be the
/// WriteQuery serialization). This is what survives a graph epoch change —
/// ApplyDelta rekeys by swapping the prefix around an unchanged body — and
/// what the plan store content-addresses files by (paired with the graph
/// fingerprint; see service/plan.h).
std::string PreparedQueryKeyBody(MatchSemantics semantics, size_t max_paths,
                                 const std::string& canonical_text);

/// Cache key: the graph epoch prefix, then the semantics, the path-index
/// size, and the query's canonical serialized form — two textual spellings
/// of the same query share an entry; requests tuned differently, or aimed
/// at a different graph (or epoch of one), do not.
std::string PreparedQueryKey(const Query& q, const Graph& g,
                             MatchSemantics semantics, size_t max_paths);

/// Builds the artifacts. `cancel` (nullable) clips the answer match; a
/// clipped build is still usable for its own request (best-so-far) but must
/// NOT be cached — `complete` reports whether the build ran to the end.
/// `threads` > 1 filters the output-node candidate bucket in parallel on
/// ThreadPool::Shared() (same result, see matcher/candidates.h); the answer
/// match itself stays on the calling worker. `trace` (nullable) receives
/// the build's sub-stage timings (path_index_ms / candidates_ms /
/// answer_match_ms) and the output-candidate count.
std::shared_ptr<const PreparedQuery> PrepareQuery(const Graph& g, Query q,
                                                  MatchSemantics semantics,
                                                  size_t max_paths,
                                                  const CancelToken* cancel,
                                                  bool* complete,
                                                  size_t threads = 1,
                                                  RequestTrace* trace = nullptr);

/// Thread-safe LRU map key -> shared_ptr<const PreparedQuery>. Eviction
/// only drops the cache's reference; in-flight requests keep theirs.
class PreparedQueryCache {
 public:
  explicit PreparedQueryCache(size_t capacity) : capacity_(capacity) {}

  /// Returns the entry (refreshing its recency) or nullptr.
  std::shared_ptr<const PreparedQuery> Get(const std::string& key)
      WHYQ_EXCLUDES(mu_);

  /// Inserts/refreshes `value`, evicting the least-recently-used entry
  /// beyond capacity. A capacity of 0 disables caching.
  void Put(const std::string& key, std::shared_ptr<const PreparedQuery> value)
      WHYQ_EXCLUDES(mu_);

  size_t size() const WHYQ_EXCLUDES(mu_);

  /// Outcome of one ApplyDelta pass over the old epoch's entries. The
  /// `*_bodies` vectors carry each verdict's epoch-free key body
  /// (PreparedQueryKeyBody) so the caller can mirror the same drop/restamp
  /// decisions onto persisted plan files (PlanStore::OnUpdate).
  struct DeltaOutcome {
    size_t invalidated = 0;  // dropped: footprint intersected the delta
    size_t rekeyed = 0;      // carried to the new epoch: provably unaffected
    std::vector<std::string> dropped_bodies;
    std::vector<std::string> rekeyed_bodies;
  };

  /// Precise invalidation after a graph update: every entry keyed under
  /// `old_prefix` either intersects `delta` with its footprint (dropped) or
  /// provably kept its answers (rekeyed under `new_prefix`, artifacts —
  /// including the query-only PathIndex samples — reused verbatim, no
  /// re-preparation and no re-sampling). Rekeying mutates each list node in
  /// place, so a carried entry keeps its exact LRU recency relative to
  /// every other entry — an update never perturbs eviction order. Entries
  /// of other graphs are untouched.
  DeltaOutcome ApplyDelta(const std::string& old_prefix,
                          const std::string& new_prefix,
                          const UpdateDelta& delta) WHYQ_EXCLUDES(mu_);

 private:
  struct Entry {
    std::string key;
    std::shared_ptr<const PreparedQuery> value;
  };

  /// Evicts least-recently-used entries until size() <= capacity_ — the
  /// tail of every insertion path. Caller holds mu_.
  void EvictOverCapacityLocked() WHYQ_REQUIRES(mu_);

  const size_t capacity_;
  mutable Mutex mu_;
  std::list<Entry> lru_ WHYQ_GUARDED_BY(mu_);  // front = most recent
  std::unordered_map<std::string, std::list<Entry>::iterator> index_
      WHYQ_GUARDED_BY(mu_);
};

}  // namespace whyq

#endif  // WHYQ_SERVICE_PREPARED_H_
