#ifndef WHYQ_SERVICE_PREPARED_H_
#define WHYQ_SERVICE_PREPARED_H_

#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/metrics.h"
#include "matcher/match_engine.h"
#include "matcher/path_index.h"
#include "query/query.h"

namespace whyq {

class CancelToken;

/// Per-(query, semantics) artifacts every question over that query needs:
/// the parsed query, its answer set Q(u_o, G), the output node's candidate
/// set, and the sampled PathIndex (the estimation backbone). Building these
/// is the dominant fixed cost of a request — the answer match scans every
/// output-label node — so repeated questions over the same query share one
/// immutable PreparedQuery through the service's LRU cache.
///
/// Thread-safety: immutable after construction; shared across workers via
/// shared_ptr<const PreparedQuery>.
struct PreparedQuery {
  Query query;
  MatchSemantics semantics = MatchSemantics::kIsomorphism;
  std::vector<NodeId> answers;            // Q(u_o, G) under `semantics`
  std::vector<NodeId> output_candidates;  // label+literal candidates of u_o
  PathIndex path_index;

  PreparedQuery(Query q, MatchSemantics s, size_t max_paths)
      : query(std::move(q)), semantics(s), path_index(query, max_paths) {}
};

/// Cache key: the query's canonical serialized form plus the semantics and
/// the path-index size — two textual spellings of the same query share an
/// entry; requests tuned differently do not.
std::string PreparedQueryKey(const Query& q, const Graph& g,
                             MatchSemantics semantics, size_t max_paths);

/// Builds the artifacts. `cancel` (nullable) clips the answer match; a
/// clipped build is still usable for its own request (best-so-far) but must
/// NOT be cached — `complete` reports whether the build ran to the end.
/// `threads` > 1 filters the output-node candidate bucket in parallel on
/// ThreadPool::Shared() (same result, see matcher/candidates.h); the answer
/// match itself stays on the calling worker. `trace` (nullable) receives
/// the build's sub-stage timings (path_index_ms / candidates_ms /
/// answer_match_ms) and the output-candidate count.
std::shared_ptr<const PreparedQuery> PrepareQuery(const Graph& g, Query q,
                                                  MatchSemantics semantics,
                                                  size_t max_paths,
                                                  const CancelToken* cancel,
                                                  bool* complete,
                                                  size_t threads = 1,
                                                  RequestTrace* trace = nullptr);

/// Thread-safe LRU map key -> shared_ptr<const PreparedQuery>. Eviction
/// only drops the cache's reference; in-flight requests keep theirs.
class PreparedQueryCache {
 public:
  explicit PreparedQueryCache(size_t capacity) : capacity_(capacity) {}

  /// Returns the entry (refreshing its recency) or nullptr.
  std::shared_ptr<const PreparedQuery> Get(const std::string& key);

  /// Inserts/refreshes `value`, evicting the least-recently-used entry
  /// beyond capacity. A capacity of 0 disables caching.
  void Put(const std::string& key,
           std::shared_ptr<const PreparedQuery> value);

  size_t size() const;

 private:
  struct Entry {
    std::string key;
    std::shared_ptr<const PreparedQuery> value;
  };

  const size_t capacity_;
  mutable std::mutex mu_;
  std::list<Entry> lru_;  // front = most recent
  std::unordered_map<std::string, std::list<Entry>::iterator> index_;
};

}  // namespace whyq

#endif  // WHYQ_SERVICE_PREPARED_H_
