#ifndef WHYQ_SERVICE_REQUEST_H_
#define WHYQ_SERVICE_REQUEST_H_

#include <memory>
#include <string>
#include <vector>

#include "common/metrics.h"
#include "graph/graph.h"
#include "why/extensions.h"
#include "why/question.h"
#include "why/why_algorithms.h"

namespace whyq {

/// The four question kinds the explanation service answers (the library's
/// end-to-end surface: Sections III-V plus the Section V extensions).
enum class RequestKind {
  kWhy,        // (u_o, V_N): why are these entities answers?
  kWhyNot,     // (u_o, V_C, C): why are these entities missing?
  kWhyEmpty,   // no V_C: why is the answer empty?
  kWhySoMany,  // no V_N: shrink the answer to <= target_k entities
};

const char* RequestKindName(RequestKind k);

/// Algorithm family per kind: kAuto picks the paper's fast variant
/// (ApproxWhy / FastWhyNot); kExact the MBS enumeration; kIso the
/// isomorphism-verified greedy baseline. Why-empty/Why-so-many have one
/// implementation each and ignore the choice.
enum class AlgoChoice { kAuto, kExact, kIso };

const char* AlgoChoiceName(AlgoChoice a);

/// One question submitted to the service. The query travels as DSL text
/// (query_parser.h) so requests are self-contained and cacheable by
/// canonical form; entities are graph node ids.
struct ServiceRequest {
  RequestKind kind = RequestKind::kWhy;
  std::string query_text;
  std::vector<NodeId> entities;  // Why: V_N; Why-not: V_C (others: unused)
  Constraint condition;          // Why-not selection condition C (optional)
  size_t target_k = 10;          // Why-so-many target
  AlgoChoice algo = AlgoChoice::kAuto;

  /// Per-request deadline in milliseconds, measured from *submission* (queue
  /// wait counts). 0 = no deadline. An expired request still produces a
  /// response — the best-so-far rewrite with `truncated` set.
  double deadline_ms = 0;

  /// Tuning knobs (budget, guard m, semantics, caps). The service overrides
  /// `cancel` and `path_index`; everything else is honored as-is. Note that
  /// `semantics` takes part in the prepared-artifact cache key.
  AnswerConfig config;
};

enum class ResponseStatus {
  kOk,         // executed (answer fields populated; possibly truncated)
  kRejected,   // bounded queue full — backpressure, retry later
  kBadRequest, // query text failed to parse / invalid parameters
  kShutdown,   // service stopped before the request ran
};

const char* ResponseStatusName(ResponseStatus s);

/// The service's reply. Exactly one of the answer fields is meaningful,
/// selected by the request kind.
struct ServiceResponse {
  ResponseStatus status = ResponseStatus::kOk;
  std::string error;       // for kBadRequest
  bool truncated = false;  // deadline/cancellation clipped the search
  bool cache_hit = false;  // prepared artifacts were reused
  double latency_ms = 0;   // submission -> completion (includes queue wait)

  /// Per-stage breakdown of latency_ms plus hot-loop work counters; filled
  /// for every executed request (bad requests keep the stages reached).
  RequestTrace trace;

  std::vector<NodeId> base_answers;  // Q(u_o, G) the question ran against

  /// The graph epoch the request ran against, pinned for the request's
  /// lifetime. Consumers rendering node ids / labels (the daemon's encode
  /// callback) must read THIS graph, not the service's current one — an
  /// update may have published a newer epoch since the request started.
  std::shared_ptr<const Graph> graph;

  RewriteAnswer answer;         // kWhy / kWhyNot
  WhyEmptyResult why_empty;     // kWhyEmpty
  WhySoManyResult why_so_many;  // kWhySoMany
};

}  // namespace whyq

#endif  // WHYQ_SERVICE_REQUEST_H_
