#include "service/service.h"

#include <chrono>
#include <utility>

#include "graph/snapshot.h"
#include "query/query_parser.h"
#include "service/plan.h"
#include "why/whynot_algorithms.h"

namespace whyq {

const char* RequestKindName(RequestKind k) {
  switch (k) {
    case RequestKind::kWhy:
      return "why";
    case RequestKind::kWhyNot:
      return "whynot";
    case RequestKind::kWhyEmpty:
      return "whyempty";
    case RequestKind::kWhySoMany:
      return "whysomany";
  }
  return "?";
}

const char* AlgoChoiceName(AlgoChoice a) {
  switch (a) {
    case AlgoChoice::kAuto:
      return "auto";
    case AlgoChoice::kExact:
      return "exact";
    case AlgoChoice::kIso:
      return "iso";
  }
  return "?";
}

const char* ResponseStatusName(ResponseStatus s) {
  switch (s) {
    case ResponseStatus::kOk:
      return "ok";
    case ResponseStatus::kRejected:
      return "rejected";
    case ResponseStatus::kBadRequest:
      return "bad-request";
    case ResponseStatus::kShutdown:
      return "shutdown";
  }
  return "?";
}

WhyqService::WhyqService(std::shared_ptr<const Graph> graph,
                         ServiceConfig cfg)
    : graph_(std::move(graph)),
      cfg_(cfg),
      cache_(cfg.cache_capacity) {
  // Clamp degenerate configs (see the constructor contract in service.h):
  // queue_capacity 0 would make every Submit() reject with no diagnostic,
  // workers 0 would leave accepted futures unresolved forever.
  if (cfg_.queue_capacity == 0) cfg_.queue_capacity = 1;
  if (cfg_.workers == 0) cfg_.workers = 1;
  stats_.ConfigureSlowLog(cfg_.slow_query_ms, cfg_.slow_log_capacity);
  if (cfg_.plan_store != nullptr) {
    // One content hash per epoch: frozen (snapshot-backed) graphs already
    // carry it as identity(); heap graphs pay one fingerprint pass here
    // (and one per update) so every request can stamp/validate plans
    // without rehashing the graph.
    plan_fp_ = graph_->frozen() ? graph_->identity()
                                : GraphFingerprint(*graph_);
    // Warm the prepared cache from the store before the workers exist:
    // the first repeated question after a restart hits memory, not disk.
    cfg_.plan_store->WarmLoad(*graph_, plan_fp_, cfg_.cache_capacity,
                              &cache_);
  }
  workers_.reserve(cfg_.workers);
  for (size_t i = 0; i < cfg_.workers; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

WhyqService::WhyqService(Graph&& graph, ServiceConfig cfg)
    : WhyqService(std::make_shared<const Graph>(std::move(graph)), cfg) {}

WhyqService::~WhyqService() { Stop(); }

void WhyqService::Stop() {
  // Claim the worker handles under the mutex so concurrent Stop() callers
  // never join the same std::thread; late callers take an empty vector.
  std::vector<std::thread> workers;
  {
    MutexLock lock(mu_);
    stopping_ = true;
    workers.swap(workers_);
  }
  cv_.NotifyAll();
  for (std::thread& t : workers) {
    if (t.joinable()) t.join();
  }
}

SubmitResult WhyqService::Enqueue(std::unique_ptr<Job> job) {
  double deadline = job->request.deadline_ms > 0 ? job->request.deadline_ms
                                                 : cfg_.default_deadline_ms;
  job->token.SetDeadlineAfterMillis(deadline);
  {
    MutexLock lock(mu_);
    if (stopping_) {
      stats_.RecordShutdown();
      // Future path: resolve so the caller's future does not dangle. The
      // callback path never fires `done` for an unadmitted request.
      if (!job->done) {
        ServiceResponse r;
        r.status = ResponseStatus::kShutdown;
        job->promise.set_value(std::move(r));
      }
      return SubmitResult::kShutdown;
    }
    if (queue_.size() >= cfg_.queue_capacity) {
      stats_.RecordRejected();
      return SubmitResult::kQueueFull;
    }
    // Count before the push, still locked: a worker may finish the job the
    // moment the lock drops, and received >= completed must hold in every
    // Snapshot().
    stats_.RecordReceived();
    ++in_flight_;
    queue_.push_back(std::move(job));
  }
  cv_.NotifyOne();
  return SubmitResult::kAccepted;
}

std::optional<std::future<ServiceResponse>> WhyqService::Submit(
    ServiceRequest req) {
  auto job = std::make_unique<Job>();
  job->request = std::move(req);
  std::future<ServiceResponse> future = job->promise.get_future();
  SubmitResult admitted = Enqueue(std::move(job));
  if (admitted == SubmitResult::kQueueFull) return std::nullopt;
  // kAccepted: a worker will resolve it; kShutdown: already resolved.
  return future;
}

SubmitResult WhyqService::TrySubmit(ServiceRequest req,
                                    std::function<void(ServiceResponse)> done) {
  auto job = std::make_unique<Job>();
  job->request = std::move(req);
  job->done = std::move(done);
  return Enqueue(std::move(job));
}

size_t WhyqService::InFlight() const {
  MutexLock lock(mu_);
  return in_flight_;
}

bool WhyqService::WaitDrained(double timeout_ms) {
  const auto deadline =
      std::chrono::steady_clock::now() +
      std::chrono::duration_cast<std::chrono::steady_clock::duration>(
          std::chrono::duration<double, std::milli>(timeout_ms));
  MutexLock lock(mu_);
  while (in_flight_ != 0) {
    if (!drain_cv_.WaitUntil(mu_, deadline)) return in_flight_ == 0;
  }
  return true;
}

ServiceResponse WhyqService::Execute(const ServiceRequest& req) {
  stats_.RecordReceived();
  CancelToken token;
  double deadline =
      req.deadline_ms > 0 ? req.deadline_ms : cfg_.default_deadline_ms;
  token.SetDeadlineAfterMillis(deadline);
  Timer timer;
  return RunContained(req, &token, timer, /*queue_ms=*/0.0);
}

ServiceResponse WhyqService::RunContained(const ServiceRequest& req,
                                          const CancelToken* token,
                                          const Timer& timer,
                                          double queue_ms) {
  // Contain per-request failures: an exception escaping a worker thread
  // would std::terminate the whole service, and one escaping Execute()
  // would report the same workload differently than the pooled path.
  try {
    return Run(req, token, timer, queue_ms);
  } catch (const std::exception& e) {
    ServiceResponse r;
    r.status = ResponseStatus::kBadRequest;
    r.error = std::string("internal error: ") + e.what();
    r.latency_ms = timer.ElapsedMillis();
    r.trace.queue_ms = queue_ms;
    stats_.RecordBadRequest();
    return r;
  } catch (...) {
    ServiceResponse r;
    r.status = ResponseStatus::kBadRequest;
    r.error = "internal error: unknown exception";
    r.latency_ms = timer.ElapsedMillis();
    r.trace.queue_ms = queue_ms;
    stats_.RecordBadRequest();
    return r;
  }
}

void WhyqService::WorkerLoop() {
  for (;;) {
    std::unique_ptr<Job> job;
    {
      MutexLock lock(mu_);
      while (!stopping_ && queue_.empty()) cv_.Wait(mu_);
      if (queue_.empty()) return;  // stopping_ && drained
      job = std::move(queue_.front());
      queue_.pop_front();
    }
    double queue_ms = job->timer.ElapsedMillis();
    ServiceResponse resp =
        RunContained(job->request, &job->token, job->timer, queue_ms);
    if (job->done) {
      job->done(std::move(resp));
    } else {
      job->promise.set_value(std::move(resp));
    }
    // Delivered (callback or future) before the decrement: WaitDrained()
    // returning true means every admitted request has its response.
    {
      MutexLock lock(mu_);
      if (--in_flight_ == 0) drain_cv_.NotifyAll();
    }
  }
}

std::shared_ptr<const Graph> WhyqService::graph() const {
  MutexLock lock(graph_mu_);
  return graph_;
}

std::pair<std::shared_ptr<const Graph>, uint64_t> WhyqService::PinEpoch()
    const {
  MutexLock lock(graph_mu_);
  return {graph_, plan_fp_};
}

StatsSnapshot WhyqService::Stats() const {
  StatsSnapshot s = stats_.Snapshot();
  if (cfg_.plan_store != nullptr) {
    PlanStore::Counters c = cfg_.plan_store->counters();
    s.plan_store_hits = c.hits;
    s.plan_store_misses = c.misses;
    s.plan_store_writes = c.writes;
    s.plan_store_evictions = c.evictions;
    s.plan_store_invalid = c.invalid;
  }
  return s;
}

bool WhyqService::ApplyUpdate(const UpdateBatch& batch, UpdateResult* result) {
  // Writers serialize across the whole sequence; readers keep pinning the
  // published epoch without ever taking update_mu_.
  MutexLock serialize(update_mu_);
  std::shared_ptr<const Graph> base = graph();
  auto next = std::make_shared<Graph>();
  if (!base->ApplyUpdate(batch, next.get(), result)) return false;
  // Invalidate before publishing: entries of the old epoch either carry
  // over (rekeyed under the new prefix, artifacts reused) or drop. A
  // concurrent old-epoch request finishing in this window can re-insert
  // under the old prefix; such an entry is unreachable once the swap lands
  // and ages out of the LRU.
  PreparedQueryCache::DeltaOutcome outcome = cache_.ApplyDelta(
      GraphEpochPrefix(*base), GraphEpochPrefix(*next), result->delta);
  uint64_t generation = next->generation();
  uint64_t old_fp = 0;
  uint64_t new_fp = 0;
  if (cfg_.plan_store != nullptr) {
    // The new epoch's content hash (an update never targets a frozen
    // graph, so this is always a real fingerprint pass).
    new_fp = GraphFingerprint(*next);
    MutexLock lock(graph_mu_);
    old_fp = plan_fp_;
  }
  PlanStamp new_stamp{new_fp, next->identity(), generation};
  {
    MutexLock lock(graph_mu_);
    graph_ = std::move(next);
    plan_fp_ = new_fp;
  }
  stats_.RecordUpdate(generation, outcome.invalidated, outcome.rekeyed);
  if (cfg_.plan_store != nullptr) {
    // Mirror the cache's verdicts onto the stored files: dropped plans are
    // deleted (their epoch is gone — a stale plan must never be servable),
    // carried plans are restamped to the new fingerprint/generation.
    cfg_.plan_store->OnUpdate(old_fp, new_stamp,
                              std::move(outcome.dropped_bodies),
                              std::move(outcome.rekeyed_bodies));
  }
  return true;
}

ServiceResponse WhyqService::Run(const ServiceRequest& req,
                                 const CancelToken* token,
                                 const Timer& timer, double queue_ms) {
  // Pin the current epoch for the whole request: ApplyUpdate publishes a
  // NEW graph value instead of mutating this one, so everything below —
  // including the prepared artifacts keyed by this epoch's prefix — reads
  // one consistent graph no matter how many updates land meanwhile.
  auto [pinned, plan_fp] = PinEpoch();
  const Graph& g = *pinned;
  ServiceResponse resp;
  resp.graph = pinned;
  resp.trace.queue_ms = queue_ms;
  // Stage clock, restarted at each boundary. The three stages below plus
  // queue_ms partition latency_ms (validation counts toward parse).
  Timer stage;
  std::string klass = std::string(RequestKindName(req.kind)) + "/" +
                      AlgoChoiceName(req.algo);

  auto fail = [&](const std::string& msg) {
    resp.status = ResponseStatus::kBadRequest;
    resp.error = msg;
    resp.trace.parse_ms = stage.ElapsedMillis();  // all failures pre-parse
    resp.latency_ms = timer.ElapsedMillis();
    stats_.RecordBadRequest();
    return resp;
  };

  if ((req.kind == RequestKind::kWhy || req.kind == RequestKind::kWhyNot) &&
      req.entities.empty()) {
    return fail("why/whynot requests need at least one entity");
  }
  for (NodeId v : req.entities) {
    if (v >= g.node_count()) {
      return fail("entity id " + std::to_string(v) + " out of range");
    }
  }

  std::string parse_error;
  std::optional<Query> parsed = ParseQuery(req.query_text, g, &parse_error);
  if (!parsed.has_value()) return fail("query parse error: " + parse_error);
  resp.trace.parse_ms = stage.ElapsedMillis();
  stage.Reset();

  // Prepared artifacts: canonical-form LRU lookup, build on miss. A build
  // clipped by the deadline stays request-local (never cached).
  AnswerConfig cfg = req.config;
  if (cfg.threads == 0) cfg.threads = cfg_.intra_threads;
  std::string canonical = WriteQuery(*parsed, g);
  std::string key =
      GraphEpochPrefix(g) +
      PreparedQueryKeyBody(cfg.semantics, cfg.path_index_paths, canonical);
  std::shared_ptr<const PreparedQuery> prepared = cache_.Get(key);
  resp.cache_hit = prepared != nullptr;
  if (prepared == nullptr && cfg_.plan_store != nullptr) {
    // Store consult on a memory miss: a validated load replaces the whole
    // build below for the cost of reading one file. It still counts as a
    // cache miss (the hits/misses partition of completed is untouched);
    // the store's own hit/miss counters tell the two miss flavors apart.
    prepared = cfg_.plan_store->TryLoad(g, plan_fp, cfg.semantics,
                                        cfg.path_index_paths, canonical);
    if (prepared != nullptr) cache_.Put(key, prepared);
  }
  if (prepared == nullptr) {
    bool complete = false;
    prepared = PrepareQuery(g, std::move(*parsed), cfg.semantics,
                            cfg.path_index_paths, token, &complete,
                            cfg.threads, &resp.trace);
    if (complete) {
      cache_.Put(key, prepared);
      if (cfg_.plan_store != nullptr) {
        cfg_.plan_store->SaveAsync(
            prepared, std::move(canonical), cfg.path_index_paths,
            PlanStamp{plan_fp, g.identity(), g.generation()});
      }
    }
  }
  resp.trace.prepare_ms = stage.ElapsedMillis();
  resp.trace.matcher_candidates = prepared->output_candidates.size();
  stage.Reset();

  cfg.cancel = token;
  cfg.path_index = &prepared->path_index;
  const Query& q = prepared->query;
  const std::vector<NodeId>& answers = prepared->answers;
  resp.base_answers = answers;

  switch (req.kind) {
    case RequestKind::kWhy: {
      WhyQuestion w{req.entities};
      if (req.algo == AlgoChoice::kExact) {
        resp.answer = ExactWhy(g, q, answers, w, cfg);
      } else if (req.algo == AlgoChoice::kIso) {
        resp.answer = IsoWhy(g, q, answers, w, cfg);
      } else {
        resp.answer = ApproxWhy(g, q, answers, w, cfg);
      }
      resp.truncated = !resp.answer.exhaustive;
      break;
    }
    case RequestKind::kWhyNot: {
      WhyNotQuestion w;
      w.missing = req.entities;
      w.condition = req.condition;
      if (req.algo == AlgoChoice::kExact) {
        resp.answer = ExactWhyNot(g, q, answers, w, cfg);
      } else if (req.algo == AlgoChoice::kIso) {
        resp.answer = IsoWhyNot(g, q, answers, w, cfg);
      } else {
        resp.answer = FastWhyNot(g, q, answers, w, cfg);
      }
      resp.truncated = !resp.answer.exhaustive;
      break;
    }
    case RequestKind::kWhyEmpty:
      resp.why_empty = AnswerWhyEmpty(g, q, cfg);
      break;
    case RequestKind::kWhySoMany:
      resp.why_so_many = AnswerWhySoMany(g, q, answers, req.target_k, cfg);
      break;
  }
  if (req.kind == RequestKind::kWhy || req.kind == RequestKind::kWhyNot) {
    if (req.algo == AlgoChoice::kExact) {
      resp.trace.mbs_enumerated = resp.answer.sets_enumerated;
      resp.trace.mbs_verified = resp.answer.sets_verified;
    } else {
      // Greedy variants verify one candidate set per round.
      resp.trace.greedy_rounds = resp.answer.sets_verified;
    }
    // Candidate-memo counters: the search's contexts add onto whatever the
    // prepare stage recorded (cache misses only).
    resp.trace.ctx_hits += resp.answer.ctx_hits;
    resp.trace.ctx_misses += resp.answer.ctx_misses;
    resp.trace.ctx_delta_builds += resp.answer.ctx_delta_builds;
    resp.trace.ctx_pruned += resp.answer.ctx_pruned;
  }
  resp.trace.search_ms = stage.ElapsedMillis();
  // Deadline expiry anywhere in the pipeline (including the prepare step)
  // marks the response truncated, whatever the algorithm reported.
  resp.truncated = resp.truncated || CancelRequested(token);
  resp.status = ResponseStatus::kOk;
  resp.latency_ms = timer.ElapsedMillis();
  stats_.RecordCompleted(klass, resp.latency_ms, resp.truncated,
                         resp.cache_hit, resp.trace);
  return resp;
}

}  // namespace whyq
