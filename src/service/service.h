#ifndef WHYQ_SERVICE_SERVICE_H_
#define WHYQ_SERVICE_SERVICE_H_

#include <deque>
#include <functional>
#include <future>
#include <memory>
#include <optional>
#include <thread>
#include <utility>
#include <vector>

#include "common/cancel.h"
#include "common/mutex.h"
#include "common/timer.h"
#include "graph/graph.h"
#include "service/prepared.h"
#include "service/request.h"
#include "service/stats.h"

namespace whyq {

class PlanStore;

/// Tuning for one WhyqService instance.
struct ServiceConfig {
  size_t workers = 4;          // fixed-size pool (inter-request parallelism)
  size_t queue_capacity = 256; // bounded; Submit rejects when full
  size_t cache_capacity = 64;  // prepared-question LRU entries (0 disables)
  double default_deadline_ms = 0;  // applied when a request carries none

  /// Intra-request parallel width substituted when a request leaves
  /// AnswerConfig::threads at 0 (a request's own non-zero knob wins). The
  /// effective core budget is ~workers x intra_threads: a latency-oriented
  /// deployment splits a fixed budget toward intra_threads, a
  /// throughput-oriented one toward workers (see EXPERIMENTS.md).
  size_t intra_threads = 1;

  /// Slow-query log: completed requests with latency >= slow_query_ms are
  /// retained (the newest slow_log_capacity of them, with their full
  /// per-stage RequestTrace) and surfaced by Stats(). 0 disables the log.
  double slow_query_ms = 0;
  size_t slow_log_capacity = 32;

  /// Optional persistent plan store (service/plan.h). When set, a
  /// prepared-cache miss consults the store before building (a validated
  /// load costs file I/O instead of an answer match), completed builds are
  /// persisted off the worker's critical path, boot warm-loads up to
  /// cache_capacity stored plans into the cache, and ApplyUpdate mirrors
  /// its drop/rekey verdicts onto the stored files. Give each service its
  /// own store (or directory): the store's counters are reported through
  /// this service's Stats().
  std::shared_ptr<PlanStore> plan_store = nullptr;
};

/// The outcome of a non-blocking TrySubmit: exactly what happened to the
/// request at admission, as an explicit status instead of Submit()'s
/// optional-future encoding. The daemon's admission-control path branches
/// on this to emit rejected-with-retry_after_ms responses.
enum class SubmitResult {
  kAccepted,   // enqueued; the callback will run exactly once
  kQueueFull,  // bounded queue at capacity — backpressure, retry later
  kShutdown,   // Stop() already ran; the request was never enqueued
};

/// A concurrent, deadline-aware explanation service over one immutable
/// shared Graph (DESIGN.md "Serving architecture").
///
/// Request lifecycle: Submit() stamps the deadline and enqueues (bounded
/// queue — a full queue rejects immediately with backpressure, it never
/// blocks the caller); a worker pops the job, resolves the prepared
/// artifacts for its query (LRU cache keyed by canonical query text +
/// semantics: answer set, output candidates, sampled PathIndex), runs the
/// requested algorithm with the request's CancelToken plumbed into the
/// matcher/enumeration hot loops, and fulfills the future. A request past
/// its deadline unwinds mid-search and reports its best-so-far rewrite with
/// `truncated` set — a slow question degrades, it never wedges a worker.
///
/// Sharing rule: every graph EPOCH (and every cached PreparedQuery) is
/// immutable and shared across workers; all per-request state (engines,
/// evaluators, matchers) is worker-local. ApplyUpdate() never mutates the
/// published graph — it builds the next epoch (untouched columns shared
/// copy-on-write) and swaps the shared_ptr; each request pins the epoch
/// current at the moment it starts running and keeps it until its response
/// is delivered, so readers never observe a half-applied batch
/// (docs/ARCHITECTURE.md "Mutable graphs & epochs").
///
/// Thread-safety: every public method may be called concurrently from any
/// thread — Submit/Execute/Stats/Stop/ApplyUpdate synchronize internally.
/// Destruction (or Stop) must not race with Submit from a thread that
/// expects the request to be accepted; late Submits resolve with kShutdown.
class WhyqService {
 public:
  /// The service shares ownership of the graph; callers may keep using it
  /// concurrently for reads. Degenerate config values are clamped rather
  /// than silently wedging the service: workers and queue_capacity of 0
  /// become 1 (a zero-capacity queue would reject every Submit with no
  /// diagnostic; a zero-worker pool would never resolve a future).
  explicit WhyqService(std::shared_ptr<const Graph> graph,
                       ServiceConfig cfg = ServiceConfig());

  /// Convenience: take over a graph by value.
  explicit WhyqService(Graph&& graph, ServiceConfig cfg = ServiceConfig());

  ~WhyqService();  // Stop()s: drains the queue, joins the workers

  WhyqService(const WhyqService&) = delete;
  WhyqService& operator=(const WhyqService&) = delete;

  /// Enqueues a request. Returns std::nullopt when the bounded queue is
  /// full (backpressure — the caller decides whether to retry) or a future
  /// that resolves to the response otherwise. After Stop(), the returned
  /// future resolves immediately with ResponseStatus::kShutdown.
  std::optional<std::future<ServiceResponse>> Submit(ServiceRequest req)
      WHYQ_EXCLUDES(mu_);

  /// Non-blocking, callback-based admission: on kAccepted the worker that
  /// executes the request invokes `done` exactly once (on the worker
  /// thread — `done` must be fast and must not throw; the daemon's done
  /// pushes the encoded response onto a completion queue and wakes the
  /// event loop). On kQueueFull / kShutdown the request was not admitted
  /// and `done` is never invoked — the caller answers the client itself
  /// (retry_after_ms / drain refusal). Never blocks the calling thread.
  SubmitResult TrySubmit(ServiceRequest req,
                         std::function<void(ServiceResponse)> done)
      WHYQ_EXCLUDES(mu_);

  /// Requests admitted (Submit or TrySubmit) whose response has not been
  /// delivered yet — queued plus executing. The drain gauge.
  size_t InFlight() const WHYQ_EXCLUDES(mu_);

  /// Blocks until InFlight() reaches 0 or `timeout_ms` elapses; true when
  /// drained. Pair with Stop() (or just stop submitting) for graceful
  /// shutdown: in-flight work finishes, nothing new is admitted.
  bool WaitDrained(double timeout_ms) WHYQ_EXCLUDES(mu_);

  /// Synchronous execution on the caller's thread, sharing the same
  /// prepared-question cache and stats. With no deadline the result is
  /// byte-identical to the pooled path — the determinism the stress test
  /// pins down.
  ServiceResponse Execute(const ServiceRequest& req);

  /// Stops accepting new requests, lets the workers drain what is queued,
  /// and joins them. Idempotent.
  void Stop() WHYQ_EXCLUDES(mu_);

  /// Applies `batch` to the current epoch and atomically publishes the next
  /// one. In-flight requests keep the epoch they pinned (they never observe
  /// a half-applied batch); requests starting after the swap see the new
  /// epoch. The prepared-query cache is invalidated precisely: entries
  /// whose footprint intersects the batch delta are dropped (counted
  /// cache_invalidated), provably-unaffected entries are rekeyed to the new
  /// epoch (counted cache_rekeyed) with their artifacts — including the
  /// query-only PathIndex samples — reused verbatim. Updates serialize
  /// against each other; reads never block. Returns false with
  /// result->status/error set on validation failure or a frozen
  /// (snapshot-backed) graph, leaving the published epoch unchanged.
  bool ApplyUpdate(const UpdateBatch& batch, UpdateResult* result)
      WHYQ_EXCLUDES(update_mu_, graph_mu_);

  /// Counter/latency snapshot; plan-store counters (when configured) are
  /// merged into the plan_store_* fields.
  StatsSnapshot Stats() const;
  size_t cache_size() const { return cache_.size(); }

  /// Pins the current graph epoch: the returned shared_ptr keeps that
  /// epoch's columns alive across any number of concurrent ApplyUpdate
  /// publishes. Callers needing a stable view across several calls must
  /// hold one pin rather than re-fetching.
  std::shared_ptr<const Graph> graph() const WHYQ_EXCLUDES(graph_mu_);

  const ServiceConfig& config() const { return cfg_; }

 private:
  struct Job {
    ServiceRequest request;
    std::promise<ServiceResponse> promise;  // future path (Submit)
    std::function<void(ServiceResponse)> done;  // callback path (TrySubmit)
    CancelToken token;  // armed at submission; address-stable (no moves)
    Timer timer;        // latency clock starts at submission
  };

  /// Shared tail of Submit/TrySubmit: stamps the deadline and enqueues
  /// under the lock. Returns the admission outcome; on kAccepted the job
  /// was consumed and a worker notified.
  SubmitResult Enqueue(std::unique_ptr<Job> job) WHYQ_EXCLUDES(mu_);

  ServiceResponse Run(const ServiceRequest& req, const CancelToken* token,
                      const Timer& timer, double queue_ms);
  /// Pins the published graph together with the plan fingerprint computed
  /// for that same epoch — one lock acquisition, so a request can never
  /// pair a new graph with an older epoch's fingerprint.
  std::pair<std::shared_ptr<const Graph>, uint64_t> PinEpoch() const
      WHYQ_EXCLUDES(graph_mu_);
  /// Run() with per-request failures contained as kBadRequest responses —
  /// the one execution path shared by WorkerLoop() and Execute(), so an
  /// exception escaping an algorithm is reported (and counted) the same
  /// way whether the request was pooled or inline.
  ServiceResponse RunContained(const ServiceRequest& req,
                               const CancelToken* token, const Timer& timer,
                               double queue_ms);
  void WorkerLoop();

  // The published epoch. graph_mu_ guards only the pointer swap/read (pin
  // and publish are O(1) under it); the Graph objects themselves are
  // immutable. update_mu_ serializes writers across the whole
  // apply-invalidate-publish sequence so deltas land in order.
  mutable Mutex graph_mu_;
  std::shared_ptr<const Graph> graph_ WHYQ_GUARDED_BY(graph_mu_);
  // The published epoch's GraphFingerprint (frozen graphs reuse identity(),
  // which already is the content hash). Only meaningful when a plan store
  // is configured; republished with the graph.
  uint64_t plan_fp_ WHYQ_GUARDED_BY(graph_mu_) = 0;
  Mutex update_mu_;
  ServiceConfig cfg_;
  PreparedQueryCache cache_;
  ServiceStats stats_;

  mutable Mutex mu_;
  CondVar cv_;
  CondVar drain_cv_;  // signaled when in_flight_ hits 0
  std::deque<std::unique_ptr<Job>> queue_ WHYQ_GUARDED_BY(mu_);
  size_t in_flight_ WHYQ_GUARDED_BY(mu_) = 0;  // admitted, not delivered
  bool stopping_ WHYQ_GUARDED_BY(mu_) = false;
  std::vector<std::thread> workers_ WHYQ_GUARDED_BY(mu_);
};

}  // namespace whyq

#endif  // WHYQ_SERVICE_SERVICE_H_
