#include "service/stats.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <sstream>

#include "common/table.h"

namespace whyq {

namespace {

// Minimal JSON emission helpers (the snapshot's strings are request-class
// labels and never exotic, but escape defensively anyway).
std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      case '\r':
        out += "\\r";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string JsonNum(double v) {
  if (!std::isfinite(v)) return "0";
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.6g", v);
  return buf;
}

void AppendStages(std::ostringstream& os, const StageTotals& s) {
  os << "{\"queue\":" << JsonNum(s.queue_ms)
     << ",\"parse\":" << JsonNum(s.parse_ms)
     << ",\"prepare\":" << JsonNum(s.prepare_ms)
     << ",\"candidates\":" << JsonNum(s.candidates_ms)
     << ",\"answer_match\":" << JsonNum(s.answer_match_ms)
     << ",\"path_index\":" << JsonNum(s.path_index_ms)
     << ",\"search\":" << JsonNum(s.search_ms)
     << ",\"latency\":" << JsonNum(s.latency_ms) << "}";
}

void AppendWork(std::ostringstream& os, const WorkTotals& w) {
  os << "{\"matcher_candidates\":" << w.matcher_candidates
     << ",\"mbs_enumerated\":" << w.mbs_enumerated
     << ",\"mbs_verified\":" << w.mbs_verified
     << ",\"greedy_rounds\":" << w.greedy_rounds
     << ",\"ctx_hits\":" << w.ctx_hits << ",\"ctx_misses\":" << w.ctx_misses
     << ",\"ctx_delta_builds\":" << w.ctx_delta_builds
     << ",\"ctx_pruned\":" << w.ctx_pruned << "}";
}

StageTotals TraceStages(const RequestTrace& t, double latency_ms) {
  StageTotals s;
  s.queue_ms = t.queue_ms;
  s.parse_ms = t.parse_ms;
  s.prepare_ms = t.prepare_ms;
  s.candidates_ms = t.candidates_ms;
  s.answer_match_ms = t.answer_match_ms;
  s.path_index_ms = t.path_index_ms;
  s.search_ms = t.search_ms;
  s.latency_ms = latency_ms;
  return s;
}

}  // namespace

void ServiceStats::TrimSlowLocked() {
  while (slow_.size() > slow_capacity_) slow_.pop_front();
}

void ServiceStats::ConfigureSlowLog(double threshold_ms, size_t capacity) {
  MutexLock lock(mu_);
  slow_threshold_ms_ = threshold_ms > 0 ? threshold_ms : 0.0;
  slow_capacity_ = slow_threshold_ms_ > 0 ? std::max<size_t>(capacity, 1) : 0;
  TrimSlowLocked();
}

void ServiceStats::RecordCompleted(const std::string& klass,
                                   double latency_ms, bool truncated,
                                   bool cache_hit,
                                   const RequestTrace& trace) {
  MutexLock lock(mu_);
  ++completed_;
  if (truncated) ++truncated_;
  if (cache_hit) {
    ++cache_hits_;
  } else {
    ++cache_misses_;
  }
  latency_[klass].Record(latency_ms);
  stages_.queue_ms += trace.queue_ms;
  stages_.parse_ms += trace.parse_ms;
  stages_.prepare_ms += trace.prepare_ms;
  stages_.candidates_ms += trace.candidates_ms;
  stages_.answer_match_ms += trace.answer_match_ms;
  stages_.path_index_ms += trace.path_index_ms;
  stages_.search_ms += trace.search_ms;
  stages_.latency_ms += latency_ms;
  work_.matcher_candidates += trace.matcher_candidates;
  work_.mbs_enumerated += trace.mbs_enumerated;
  work_.mbs_verified += trace.mbs_verified;
  work_.greedy_rounds += trace.greedy_rounds;
  work_.ctx_hits += trace.ctx_hits;
  work_.ctx_misses += trace.ctx_misses;
  work_.ctx_delta_builds += trace.ctx_delta_builds;
  work_.ctx_pruned += trace.ctx_pruned;
  if (slow_threshold_ms_ > 0 && latency_ms >= slow_threshold_ms_) {
    SlowQueryEntry e;
    e.seq = completed_;
    e.klass = klass;
    e.latency_ms = latency_ms;
    e.truncated = truncated;
    e.cache_hit = cache_hit;
    e.trace = trace;
    slow_.push_back(std::move(e));
    TrimSlowLocked();
  }
}

void ServiceStats::RecordUpdate(uint64_t generation, size_t invalidated,
                                size_t rekeyed) {
  MutexLock lock(mu_);
  ++updates_applied_;
  graph_generation_ = generation;
  cache_invalidated_ += invalidated;
  cache_rekeyed_ += rekeyed;
}

StatsSnapshot ServiceStats::Snapshot() const {
  StatsSnapshot out;
  {
    MutexLock lock(mu_);
    out.completed = completed_;
    out.truncated = truncated_;
    out.cache_hits = cache_hits_;
    out.cache_misses = cache_misses_;
    out.updates_applied = updates_applied_;
    out.graph_generation = graph_generation_;
    out.cache_invalidated = cache_invalidated_;
    out.cache_rekeyed = cache_rekeyed_;
    out.stages = stages_;
    out.work = work_;
    out.slow_threshold_ms = slow_threshold_ms_;
    out.slow.assign(slow_.begin(), slow_.end());
    for (const auto& [klass, hist] : latency_) {
      if (hist.count() == 0) continue;
      LatencySummary s;
      s.count = hist.count();
      s.min_ms = hist.min();
      s.mean_ms = hist.mean();
      s.p50_ms = hist.Quantile(0.50);
      s.p95_ms = hist.Quantile(0.95);
      s.p99_ms = hist.Quantile(0.99);
      s.max_ms = hist.max();
      for (size_t i = 0; i < StreamingHistogram::kBucketCount; ++i) {
        if (hist.BucketCount(i) > 0) {
          s.buckets.emplace_back(StreamingHistogram::BucketLowerBound(i),
                                 hist.BucketCount(i));
        }
      }
      out.latency[klass] = std::move(s);
    }
  }
  // Read the submission-side counters *after* the terminal counts so
  // received >= completed + bad_requests in every snapshot (each
  // completion's RecordReceived happened strictly before it).
  out.bad_requests = bad_requests_.Value();
  out.rejected = rejected_.Value();
  out.shutdown = shutdown_.Value();
  out.received = received_.Value();
  return out;
}

std::string StatsSnapshot::ToString() const {
  std::ostringstream os;
  os << "requests: received=" << received << " rejected=" << rejected
     << " completed=" << completed << " truncated=" << truncated
     << " bad=" << bad_requests << " shutdown=" << shutdown << "\n";
  os << "prepared cache: hits=" << cache_hits << " misses=" << cache_misses;
  uint64_t looked_up = cache_hits + cache_misses;
  if (looked_up > 0) {
    os << " (" << TextTable::Num(100.0 * static_cast<double>(cache_hits) /
                                     static_cast<double>(looked_up),
                                 1)
       << "% hit rate)";
  }
  os << "\n";
  if (plan_store_hits + plan_store_misses + plan_store_writes +
          plan_store_evictions + plan_store_invalid >
      0) {
    os << "plan store: hits=" << plan_store_hits
       << " misses=" << plan_store_misses << " writes=" << plan_store_writes
       << " evictions=" << plan_store_evictions
       << " invalid=" << plan_store_invalid << "\n";
  }
  if (updates_applied > 0) {
    os << "updates: applied=" << updates_applied
       << " generation=" << graph_generation
       << " cache-invalidated=" << cache_invalidated
       << " cache-rekeyed=" << cache_rekeyed << "\n";
  }
  for (const auto& [klass, s] : latency) {
    os << "  " << klass << ": n=" << s.count << " min="
       << TextTable::Num(s.min_ms, 2) << "ms mean="
       << TextTable::Num(s.mean_ms, 2) << "ms p50="
       << TextTable::Num(s.p50_ms, 2) << "ms p95="
       << TextTable::Num(s.p95_ms, 2) << "ms p99="
       << TextTable::Num(s.p99_ms, 2) << "ms max="
       << TextTable::Num(s.max_ms, 2) << "ms\n";
  }
  if (completed > 0) {
    os << "stage totals: queue=" << TextTable::Num(stages.queue_ms, 1)
       << "ms parse=" << TextTable::Num(stages.parse_ms, 1)
       << "ms prepare=" << TextTable::Num(stages.prepare_ms, 1)
       << "ms (candidates=" << TextTable::Num(stages.candidates_ms, 1)
       << "ms match=" << TextTable::Num(stages.answer_match_ms, 1)
       << "ms path-index=" << TextTable::Num(stages.path_index_ms, 1)
       << "ms) search=" << TextTable::Num(stages.search_ms, 1)
       << "ms | latency=" << TextTable::Num(stages.latency_ms, 1) << "ms\n";
    os << "work totals: candidates=" << work.matcher_candidates
       << " mbs-enumerated=" << work.mbs_enumerated
       << " mbs-verified=" << work.mbs_verified
       << " greedy-rounds=" << work.greedy_rounds << "\n";
    os << "ctx totals: hits=" << work.ctx_hits
       << " misses=" << work.ctx_misses
       << " delta-builds=" << work.ctx_delta_builds
       << " pruned=" << work.ctx_pruned;
    uint64_t lookups = work.ctx_hits + work.ctx_misses + work.ctx_delta_builds;
    if (lookups > 0) {
      os << " (" << TextTable::Num(100.0 * static_cast<double>(work.ctx_hits) /
                                       static_cast<double>(lookups),
                                   1)
         << "% hit rate)";
    }
    os << "\n";
  }
  if (slow_threshold_ms > 0) {
    os << "slow queries (>= " << TextTable::Num(slow_threshold_ms, 1)
       << "ms): " << slow.size() << " retained\n";
    for (const SlowQueryEntry& e : slow) {
      os << "  #" << e.seq << " " << e.klass << " "
         << TextTable::Num(e.latency_ms, 2) << "ms"
         << (e.truncated ? " truncated" : "")
         << (e.cache_hit ? " cached" : "") << "\n";
      std::istringstream lines(e.trace.ToString());
      std::string line;
      while (std::getline(lines, line)) os << "    " << line << "\n";
    }
  }
  return os.str();
}

std::string StatsSnapshot::ToJson() const {
  std::ostringstream os;
  os << "{\"counters\":{\"received\":" << received
     << ",\"rejected\":" << rejected << ",\"shutdown\":" << shutdown
     << ",\"completed\":" << completed << ",\"truncated\":" << truncated
     << ",\"bad_requests\":" << bad_requests
     << ",\"cache_hits\":" << cache_hits
     << ",\"cache_misses\":" << cache_misses
     << ",\"updates_applied\":" << updates_applied
     << ",\"graph_generation\":" << graph_generation
     << ",\"cache_invalidated\":" << cache_invalidated
     << ",\"cache_rekeyed\":" << cache_rekeyed
     << ",\"plan_store_hits\":" << plan_store_hits
     << ",\"plan_store_misses\":" << plan_store_misses
     << ",\"plan_store_writes\":" << plan_store_writes
     << ",\"plan_store_evictions\":" << plan_store_evictions
     << ",\"plan_store_invalid\":" << plan_store_invalid << "}";
  os << ",\"latency_ms\":{";
  bool first = true;
  for (const auto& [klass, s] : latency) {
    if (!first) os << ",";
    first = false;
    os << "\"" << JsonEscape(klass) << "\":{\"count\":" << s.count
       << ",\"min\":" << JsonNum(s.min_ms) << ",\"mean\":" << JsonNum(s.mean_ms)
       << ",\"p50\":" << JsonNum(s.p50_ms) << ",\"p95\":" << JsonNum(s.p95_ms)
       << ",\"p99\":" << JsonNum(s.p99_ms) << ",\"max\":" << JsonNum(s.max_ms)
       << ",\"buckets\":[";
    for (size_t i = 0; i < s.buckets.size(); ++i) {
      if (i > 0) os << ",";
      os << "[" << JsonNum(s.buckets[i].first) << "," << s.buckets[i].second
         << "]";
    }
    os << "]}";
  }
  os << "}";
  os << ",\"stage_totals_ms\":";
  AppendStages(os, stages);
  os << ",\"work\":";
  AppendWork(os, work);
  os << ",\"slow_queries\":{\"threshold_ms\":" << JsonNum(slow_threshold_ms)
     << ",\"entries\":[";
  for (size_t i = 0; i < slow.size(); ++i) {
    const SlowQueryEntry& e = slow[i];
    if (i > 0) os << ",";
    os << "{\"seq\":" << e.seq << ",\"class\":\"" << JsonEscape(e.klass)
       << "\",\"latency_ms\":" << JsonNum(e.latency_ms)
       << ",\"truncated\":" << (e.truncated ? "true" : "false")
       << ",\"cache_hit\":" << (e.cache_hit ? "true" : "false")
       << ",\"stages_ms\":";
    AppendStages(os, TraceStages(e.trace, e.latency_ms));
    os << ",\"work\":";
    WorkTotals w;
    w.matcher_candidates = e.trace.matcher_candidates;
    w.mbs_enumerated = e.trace.mbs_enumerated;
    w.mbs_verified = e.trace.mbs_verified;
    w.greedy_rounds = e.trace.greedy_rounds;
    w.ctx_hits = e.trace.ctx_hits;
    w.ctx_misses = e.trace.ctx_misses;
    w.ctx_delta_builds = e.trace.ctx_delta_builds;
    w.ctx_pruned = e.trace.ctx_pruned;
    AppendWork(os, w);
    os << "}";
  }
  os << "]}}";
  return os.str();
}

}  // namespace whyq
