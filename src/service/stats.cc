#include "service/stats.h"

#include <algorithm>
#include <sstream>

#include "common/table.h"

namespace whyq {

void ServiceStats::RecordReceived() {
  std::lock_guard<std::mutex> lock(mu_);
  ++counters_.received;
}

void ServiceStats::RecordRejected() {
  std::lock_guard<std::mutex> lock(mu_);
  ++counters_.rejected;
}

void ServiceStats::RecordBadRequest() {
  std::lock_guard<std::mutex> lock(mu_);
  ++counters_.bad_requests;
}

void ServiceStats::RecordCompleted(const std::string& klass,
                                   double latency_ms, bool truncated,
                                   bool cache_hit) {
  std::lock_guard<std::mutex> lock(mu_);
  ++counters_.completed;
  if (truncated) ++counters_.truncated;
  if (cache_hit) {
    ++counters_.cache_hits;
  } else {
    ++counters_.cache_misses;
  }
  std::vector<double>& samples = samples_[klass];
  if (samples.size() < kMaxSamples) samples.push_back(latency_ms);
}

StatsSnapshot ServiceStats::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  StatsSnapshot out = counters_;
  for (const auto& [klass, raw] : samples_) {
    if (raw.empty()) continue;
    std::vector<double> sorted = raw;
    std::sort(sorted.begin(), sorted.end());
    LatencySummary s;
    s.count = sorted.size();
    s.min_ms = sorted.front();
    s.max_ms = sorted.back();
    double sum = 0.0;
    for (double x : sorted) sum += x;
    s.mean_ms = sum / static_cast<double>(sorted.size());
    // Nearest-rank p95 (1-based rank ceil(0.95 n)).
    size_t rank = (sorted.size() * 95 + 99) / 100;
    if (rank == 0) rank = 1;
    s.p95_ms = sorted[std::min(rank, sorted.size()) - 1];
    out.latency[klass] = s;
  }
  return out;
}

std::string StatsSnapshot::ToString() const {
  std::ostringstream os;
  os << "requests: received=" << received << " rejected=" << rejected
     << " completed=" << completed << " truncated=" << truncated
     << " bad=" << bad_requests << "\n";
  os << "prepared cache: hits=" << cache_hits << " misses=" << cache_misses;
  uint64_t looked_up = cache_hits + cache_misses;
  if (looked_up > 0) {
    os << " (" << TextTable::Num(100.0 * static_cast<double>(cache_hits) /
                                     static_cast<double>(looked_up),
                                 1)
       << "% hit rate)";
  }
  os << "\n";
  for (const auto& [klass, s] : latency) {
    os << "  " << klass << ": n=" << s.count << " min="
       << TextTable::Num(s.min_ms, 2) << "ms mean="
       << TextTable::Num(s.mean_ms, 2) << "ms p95="
       << TextTable::Num(s.p95_ms, 2) << "ms max="
       << TextTable::Num(s.max_ms, 2) << "ms\n";
  }
  return os.str();
}

}  // namespace whyq
