#ifndef WHYQ_SERVICE_STATS_H_
#define WHYQ_SERVICE_STATS_H_

#include <cstdint>
#include <deque>
#include <map>
#include <string>
#include <vector>

#include "common/metrics.h"
#include "common/mutex.h"

namespace whyq {

/// Latency summary over one request class, derived from a
/// StreamingHistogram covering the whole process lifetime: count/min/mean/
/// max are exact, the percentiles are log-bucketed (<= 12.5% relative
/// resolution) and always reflect *all* traffic — they cannot freeze on a
/// warmup sample buffer.
struct LatencySummary {
  uint64_t count = 0;
  double min_ms = 0.0;
  double mean_ms = 0.0;
  double p50_ms = 0.0;
  double p95_ms = 0.0;
  double p99_ms = 0.0;
  double max_ms = 0.0;

  /// Non-empty histogram buckets as (lower bound ms, count) pairs, for
  /// machine-readable export; bucket upper bound = next bucket's lower.
  std::vector<std::pair<double, uint64_t>> buckets;
};

/// Wall-clock totals (ms) summed over every completed request, one slot
/// per RequestTrace stage plus the end-to-end latency they decompose.
/// queue + parse + prepare + search ~= latency (small bookkeeping residue).
struct StageTotals {
  double queue_ms = 0.0;
  double parse_ms = 0.0;
  double prepare_ms = 0.0;
  double candidates_ms = 0.0;    // prepare sub-stage (cache misses only)
  double answer_match_ms = 0.0;  // prepare sub-stage (cache misses only)
  double path_index_ms = 0.0;    // prepare sub-stage (cache misses only)
  double search_ms = 0.0;
  double latency_ms = 0.0;
};

/// Hot-loop work totals summed over every completed request.
struct WorkTotals {
  uint64_t matcher_candidates = 0;
  uint64_t mbs_enumerated = 0;
  uint64_t mbs_verified = 0;
  uint64_t greedy_rounds = 0;
  // Candidate-memo (MatchContext) totals — see RequestTrace.
  uint64_t ctx_hits = 0;
  uint64_t ctx_misses = 0;
  uint64_t ctx_delta_builds = 0;
  uint64_t ctx_pruned = 0;
};

/// One slow request retained by the bounded slow-query log.
struct SlowQueryEntry {
  uint64_t seq = 0;  // completion index (1-based) when it was recorded
  std::string klass;
  double latency_ms = 0.0;
  bool truncated = false;
  bool cache_hit = false;
  RequestTrace trace;
};

/// A consistent copy of the service counters, snapshotable at any time.
///
/// Reconciliation invariants (exact once the service is drained; received
/// may transiently exceed the terminal counts while requests are in
/// flight, never the reverse):
///   received  == completed + bad_requests
///   completed == cache_hits + cache_misses
/// and every Submit() call lands in exactly one of received / rejected /
/// shutdown.
struct StatsSnapshot {
  uint64_t received = 0;   // accepted into the queue (or executed inline)
  uint64_t rejected = 0;   // backpressure: bounded queue was full
  uint64_t shutdown = 0;   // submitted after Stop(), resolved kShutdown
  uint64_t completed = 0;  // ok responses produced
  uint64_t truncated = 0;  // ... of which deadline/cancellation clipped
  uint64_t bad_requests = 0;  // invalid input or contained internal error
  uint64_t cache_hits = 0;    // prepared-question artifacts reused
  uint64_t cache_misses = 0;  // built fresh (and inserted when complete)

  /// Graph-update counters (docs/ARCHITECTURE.md "Mutable graphs &
  /// epochs"). graph_generation is the published epoch's generation();
  /// for a text-loaded graph it equals updates_applied (every successful
  /// ApplyUpdate bumps both by one). cache_invalidated counts prepared
  /// entries dropped because their footprint intersected an update delta
  /// — each will cost a later cache miss if its query returns, so
  /// cache_invalidated <= cache_misses once those queries have re-run.
  /// cache_rekeyed counts entries carried across an epoch verbatim.
  uint64_t updates_applied = 0;    // successful ApplyUpdate publishes
  uint64_t graph_generation = 0;   // generation() of the published epoch
  uint64_t cache_invalidated = 0;  // prepared entries dropped by updates
  uint64_t cache_rekeyed = 0;      // prepared entries carried across epochs

  /// Plan-store counters (service/plan.h), merged in by WhyqService::Stats
  /// when a store is configured; all zero otherwise. Every cache miss makes
  /// exactly one store probe, so with a store enabled
  ///   plan_store_hits + plan_store_misses == cache_misses
  /// (tools/check_stats_json.sh reconciles this on a live run).
  uint64_t plan_store_hits = 0;    // store probes serving a validated plan
  uint64_t plan_store_misses = 0;  // store probes finding nothing usable
  uint64_t plan_store_writes = 0;  // plan files durably written
  uint64_t plan_store_evictions = 0;  // files dropped by the byte budget
  uint64_t plan_store_invalid = 0;    // files rejected or update-staled

  /// Keyed by "<kind>/<algo>" (e.g. "why/auto", "whynot/exact").
  std::map<std::string, LatencySummary> latency;

  StageTotals stages;  // where completed requests spent their time
  WorkTotals work;     // how much hot-loop work they did

  double slow_threshold_ms = 0.0;     // 0 = slow-query log disabled
  std::vector<SlowQueryEntry> slow;   // oldest first, newest last

  /// Multi-line human-readable rendering (one row per request class).
  std::string ToString() const;

  /// Machine-readable JSON object mirroring every field above (stable
  /// key names documented in docs/ARCHITECTURE.md "Stats glossary").
  std::string ToJson() const;
};

/// Thread-safe counter block shared by the workers. Latencies feed one
/// StreamingHistogram per request class — O(1) memory, whole-lifetime
/// percentiles — so snapshots track current traffic forever (the old
/// first-65536-samples buffer froze min/mean/p95/max after warmup).
class ServiceStats {
 public:
  /// Slow-query log: completed requests with latency >= threshold_ms are
  /// retained (newest `capacity`, ring-buffer style). threshold_ms <= 0
  /// disables the log; capacity 0 clamps to 1 when enabled.
  void ConfigureSlowLog(double threshold_ms, size_t capacity)
      WHYQ_EXCLUDES(mu_);

  void RecordReceived() { received_.Add(); }
  void RecordRejected() { rejected_.Add(); }
  void RecordShutdown() { shutdown_.Add(); }
  void RecordBadRequest() { bad_requests_.Add(); }
  void RecordCompleted(const std::string& klass, double latency_ms,
                       bool truncated, bool cache_hit,
                       const RequestTrace& trace) WHYQ_EXCLUDES(mu_);
  /// Convenience for callers without a trace (tests, ad-hoc use).
  void RecordCompleted(const std::string& klass, double latency_ms,
                       bool truncated, bool cache_hit) {
    RecordCompleted(klass, latency_ms, truncated, cache_hit, RequestTrace());
  }
  /// One successful ApplyUpdate publish: the new epoch's generation and
  /// the cache ApplyDelta outcome (entries dropped / carried over).
  void RecordUpdate(uint64_t generation, size_t invalidated, size_t rekeyed)
      WHYQ_EXCLUDES(mu_);

  StatsSnapshot Snapshot() const WHYQ_EXCLUDES(mu_);

 private:
  /// Drops the oldest slow-log entries beyond slow_capacity_ — the shared
  /// tail of ConfigureSlowLog (capacity shrank) and RecordCompleted (one
  /// entry appended). Caller holds mu_.
  void TrimSlowLocked() WHYQ_REQUIRES(mu_);

  // Monotonic submission-side counters: lock-free Counters, each exact on
  // its own. Snapshot() reads them *after* copying the mutex-guarded
  // terminal counts, so received >= completed + bad_requests holds in
  // every snapshot (each completion's RecordReceived happened before it).
  Counter received_;
  Counter rejected_;
  Counter shutdown_;
  Counter bad_requests_;

  mutable Mutex mu_;  // guards everything below
  uint64_t completed_ WHYQ_GUARDED_BY(mu_) = 0;
  uint64_t truncated_ WHYQ_GUARDED_BY(mu_) = 0;
  uint64_t cache_hits_ WHYQ_GUARDED_BY(mu_) = 0;
  uint64_t cache_misses_ WHYQ_GUARDED_BY(mu_) = 0;
  uint64_t updates_applied_ WHYQ_GUARDED_BY(mu_) = 0;
  uint64_t graph_generation_ WHYQ_GUARDED_BY(mu_) = 0;
  uint64_t cache_invalidated_ WHYQ_GUARDED_BY(mu_) = 0;
  uint64_t cache_rekeyed_ WHYQ_GUARDED_BY(mu_) = 0;
  StageTotals stages_ WHYQ_GUARDED_BY(mu_);
  WorkTotals work_ WHYQ_GUARDED_BY(mu_);
  std::map<std::string, StreamingHistogram> latency_ WHYQ_GUARDED_BY(mu_);
  double slow_threshold_ms_ WHYQ_GUARDED_BY(mu_) = 0.0;
  size_t slow_capacity_ WHYQ_GUARDED_BY(mu_) = 0;
  std::deque<SlowQueryEntry> slow_ WHYQ_GUARDED_BY(mu_);
};

}  // namespace whyq

#endif  // WHYQ_SERVICE_STATS_H_
