#ifndef WHYQ_SERVICE_STATS_H_
#define WHYQ_SERVICE_STATS_H_

#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <vector>

namespace whyq {

/// Latency summary over one request class.
struct LatencySummary {
  uint64_t count = 0;
  double min_ms = 0.0;
  double mean_ms = 0.0;
  double p95_ms = 0.0;
  double max_ms = 0.0;
};

/// A consistent copy of the service counters, snapshotable at any time.
struct StatsSnapshot {
  uint64_t received = 0;   // accepted into the queue (or executed inline)
  uint64_t rejected = 0;   // backpressure: bounded queue was full
  uint64_t completed = 0;  // responses produced
  uint64_t truncated = 0;  // ... of which deadline/cancellation clipped
  uint64_t bad_requests = 0;
  uint64_t cache_hits = 0;    // prepared-question artifacts reused
  uint64_t cache_misses = 0;  // built fresh (and inserted when complete)

  /// Keyed by "<kind>/<algo>" (e.g. "why/auto", "whynot/exact").
  std::map<std::string, LatencySummary> latency;

  /// Multi-line human-readable rendering (one row per request class).
  std::string ToString() const;
};

/// Thread-safe counter block shared by the workers. Latencies keep a
/// bounded per-class sample buffer (first kMaxSamples requests) from which
/// the snapshot derives min/mean/p95/max; counts are always exact.
class ServiceStats {
 public:
  static constexpr size_t kMaxSamples = 65536;

  void RecordReceived();
  void RecordRejected();
  void RecordBadRequest();
  void RecordCompleted(const std::string& klass, double latency_ms,
                       bool truncated, bool cache_hit);

  StatsSnapshot Snapshot() const;

 private:
  mutable std::mutex mu_;
  StatsSnapshot counters_;  // latency field unused; derived at Snapshot()
  std::map<std::string, std::vector<double>> samples_;
};

}  // namespace whyq

#endif  // WHYQ_SERVICE_STATS_H_
