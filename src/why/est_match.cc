#include "why/est_match.h"

namespace whyq {

CloseEstimate EstimateWhy(const Graph& g, const Query& rewritten,
                          const PathIndex& pidx,
                          const NodeSet& excluded_union,
                          const std::vector<NodeId>& unexpected,
                          const std::vector<NodeId>& desired,
                          size_t guard_m, MatchContext* ctx) {
  CloseEstimate e;
  size_t excluded = 0;
  for (NodeId v : unexpected) {
    if (excluded_union.Contains(v) || !pidx.Passes(g, rewritten, v, ctx)) {
      ++excluded;
    }
  }
  if (!unexpected.empty()) {
    e.closeness =
        static_cast<double>(excluded) / static_cast<double>(unexpected.size());
  }
  for (NodeId v : desired) {
    if (excluded_union.Contains(v)) {
      ++e.guard;
      if (e.guard > guard_m) {
        e.guard_ok = false;
        break;
      }
    }
  }
  return e;
}

CloseEstimate EstimateWhyNot(const Graph& g, const Query& rewritten,
                             const PathIndex& pidx,
                             const NodeSet& included_union,
                             const std::vector<NodeId>& missing,
                             const NodeSet& protected_set, size_t guard_m,
                             size_t guard_scan_cap, MatchContext* ctx) {
  CloseEstimate e;
  size_t included = 0;
  for (NodeId v : missing) {
    if (included_union.Contains(v) || pidx.Passes(g, rewritten, v, ctx)) {
      ++included;
    }
  }
  if (!missing.empty()) {
    e.closeness =
        static_cast<double>(included) / static_cast<double>(missing.size());
  }
  size_t scanned = 0;
  SymbolId out_label = rewritten.node(rewritten.output()).label;
  for (NodeId v : g.NodesWithLabel(out_label)) {
    if (protected_set.Contains(v)) continue;
    if (++scanned > guard_scan_cap) break;
    if (pidx.Passes(g, rewritten, v, ctx)) {
      ++e.guard;
      if (e.guard > guard_m) {
        e.guard_ok = false;
        break;
      }
    }
  }
  return e;
}

}  // namespace whyq
