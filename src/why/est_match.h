#ifndef WHYQ_WHY_EST_MATCH_H_
#define WHYQ_WHY_EST_MATCH_H_

#include <vector>

#include "graph/graph.h"
#include "graph/neighborhood.h"
#include "matcher/match_context.h"
#include "matcher/path_index.h"
#include "query/query.h"

namespace whyq {

/// EstMatch (Section IV-B / V-B): polynomial-time closeness estimation that
/// replaces subgraph-isomorphism verification inside the greedy selection.
///
/// For Why: per-operator affected sets Aff(o) (exact, computed once per
/// picky operator) are combined by union; unexpected nodes not yet covered
/// are additionally screened with the sampled path index — failing a path
/// test is a *sound* proof of exclusion, so the closeness estimate only errs
/// by missing exclusions that need full isomorphism reasoning (that is the
/// epsilon of Theorem 5).
///
/// For Why-not: per-operator new-match sets are unioned (relaxation is
/// monotone, so this is sound); missing nodes not yet covered are screened
/// with path tests, which over-approximate matching — the estimate can err
/// in both directions, hence a heuristic (Section V-B).
///
/// Both estimators are pure functions of const inputs — O(|V_N| resp.
/// |V_C| + guard scan) path-index probes, each probe O(paths * path
/// length) — and are safe to call concurrently from any number of threads
/// over one shared PathIndex; the parallel greedy rounds in
/// why/why_algorithms.cc rely on exactly that.
struct CloseEstimate {
  double closeness = 0.0;
  size_t guard = 0;
  bool guard_ok = true;
};

/// Why-side estimate. `excluded_union` is the union of Aff(o) over the
/// candidate set O; `rewritten` is Q ⊕ O for the path screening.
///
/// `ctx` (optional) is forwarded to the path-index probes, which then test
/// node candidacy against the request's memoized bitmaps instead of
/// re-evaluating literals per step. Pass the evaluator of the *calling
/// executor slot* — contexts are single-threaded.
CloseEstimate EstimateWhy(const Graph& g, const Query& rewritten,
                          const PathIndex& pidx,
                          const NodeSet& excluded_union,
                          const std::vector<NodeId>& unexpected,
                          const std::vector<NodeId>& desired,
                          size_t guard_m, MatchContext* ctx = nullptr);

/// Why-not-side estimate. `included_union` is the union of per-operator new
/// matches within V_C; the guard scans output-label candidates outside
/// `protected_set` with path tests, early-stopping past guard_m and
/// visiting at most `guard_scan_cap` candidates.
CloseEstimate EstimateWhyNot(const Graph& g, const Query& rewritten,
                             const PathIndex& pidx,
                             const NodeSet& included_union,
                             const std::vector<NodeId>& missing,
                             const NodeSet& protected_set, size_t guard_m,
                             size_t guard_scan_cap,
                             MatchContext* ctx = nullptr);

}  // namespace whyq

#endif  // WHYQ_WHY_EST_MATCH_H_
