#ifndef WHYQ_WHY_EXACT_SEARCH_H_
#define WHYQ_WHY_EXACT_SEARCH_H_

#include <functional>
#include <limits>
#include <memory>
#include <utility>
#include <vector>

#include "common/cancel.h"
#include "common/thread_pool.h"
#include "common/timer.h"
#include "matcher/match_context.h"
#include "query/query.h"
#include "rewrite/cost_model.h"
#include "rewrite/evaluation.h"
#include "rewrite/operators.h"
#include "why/mbs.h"
#include "why/question.h"

namespace whyq {
namespace internal {

/// Outcome of the exact MBS search shared by ExactWhy / ExactWhyNot: the
/// best (closeness, cost)-lexicographic verified set plus the bookkeeping
/// the callers surface in RewriteAnswer.
struct ExactSearchOutcome {
  double best_cl = -1.0;
  double best_cost = std::numeric_limits<double>::infinity();
  OperatorSet best_ops;
  EvalResult best_eval;
  size_t verified = 0;
  bool timed_out = false;
  MbsStats stats;
  // Candidate-memo counters summed over the slot evaluators (they are
  // destroyed inside the search; the caller adds its own evaluator's).
  MatchContext::Stats ctx;
};

/// The exact search core (Fig. 3 / Section V-A): enumerate maximal bounded
/// sets over the usable picky operators, verify each with the evaluator's
/// exact Evaluate, keep the lexicographic best, early-terminate at
/// closeness 1, and honor deadline/time-limit truncation.
///
/// Intra-question parallelism (cfg.threads > 1): emitted sets are verified
/// in batches on ThreadPool::Shared() — each executor slot gets its own
/// evaluator from `clone_evaluator` (MatchEngine state is not thread-safe)
/// — and each batch is then *reduced in emission order* with the exact
/// serial tie-break (higher closeness, then lower cost, then earlier
/// emission). The selected set, its evaluation, and `verified` are
/// therefore identical to the cfg.threads == 1 run; only wall-clock-
/// dependent truncation (deadline / exact_time_limit_ms) can differ.
///
/// `eval` is the caller's evaluator; it serves executor slot 0 and the
/// guard admissibility predicate (which runs on the enumeration thread,
/// never concurrently with a batch). Evaluator must provide
/// Evaluate(const Query&) -> EvalResult and GuardOk(const Query&) -> bool.
template <typename Evaluator>
ExactSearchOutcome ExactMbsSearch(
    const Query& q, const std::vector<EditOp>& usable,
    const std::vector<double>& costs, const CostModel& cost,
    const AnswerConfig& cfg, const Evaluator& eval,
    const std::function<std::unique_ptr<Evaluator>()>& clone_evaluator) {
  constexpr double kEps = 1e-9;
  ExactSearchOutcome out;
  Timer exact_timer;
  auto past_deadline = [&]() {
    return CancelRequested(cfg.cancel) ||
           (cfg.exact_time_limit_ms > 0 &&
            exact_timer.ElapsedMillis() > cfg.exact_time_limit_ms);
  };

  const size_t width = ResolveParallelWidth(cfg.threads);
  std::vector<std::unique_ptr<Evaluator>> slot_evals;  // slots 1..width-1
  for (size_t s = 1; s < width; ++s) slot_evals.push_back(clone_evaluator());
  auto eval_at = [&](size_t slot) -> const Evaluator& {
    return slot == 0 ? eval : *slot_evals[slot - 1];
  };
  // Serial runs flush after every emission (the historical behavior:
  // evaluate immediately, stop immediately at closeness 1); parallel runs
  // trade a slightly deeper lookahead for load balance across the slots.
  const size_t batch_size = width <= 1 ? 1 : width * 4;

  AdmitFn admit = [&](const std::vector<size_t>& cur, size_t next) {
    OperatorSet ops;
    ops.reserve(cur.size() + 1);
    for (size_t i : cur) ops.push_back(usable[i]);
    ops.push_back(usable[next]);
    return eval.GuardOk(ApplyOperators(q, ops));
  };

  struct Item {
    OperatorSet ops;
    EvalResult r;
  };
  out.stats = EnumerateMaximalBoundedSetsBatched(
      costs, BuildConflicts(usable), cfg.budget, cfg.max_mbs, batch_size,
      [&](const std::vector<std::vector<size_t>>& batch) {
        std::vector<Item> items(batch.size());
        ThreadPool::Shared().ParallelFor(
            batch.size(), width, [&](size_t i, size_t slot) {
              Item& it = items[i];
              it.ops.reserve(batch[i].size());
              for (size_t j : batch[i]) it.ops.push_back(usable[j]);
              it.r = eval_at(slot).Evaluate(ApplyOperators(q, it.ops));
            });
        // Deterministic reduction in emission order; items past an early
        // stop are discarded unseen, exactly as the serial enumeration
        // would never have evaluated them.
        for (Item& it : items) {
          ++out.verified;
          if (it.r.guard_ok) {
            double c = cost.Cost(it.ops);
            if (it.r.closeness > out.best_cl + kEps ||
                (it.r.closeness > out.best_cl - kEps && c < out.best_cost)) {
              out.best_cl = it.r.closeness;
              out.best_cost = c;
              out.best_ops = std::move(it.ops);
              out.best_eval = it.r;
            }
          }
          if (past_deadline()) {
            out.timed_out = true;
            return false;
          }
          if (out.best_cl >= 1.0 - kEps) return false;  // early termination
        }
        return true;
      },
      admit,
      [&]() {
        if (past_deadline()) {
          out.timed_out = true;
          return true;
        }
        return false;
      });
  for (const auto& se : slot_evals) out.ctx.Add(se->ContextStats());
  return out;
}

}  // namespace internal
}  // namespace whyq

#endif  // WHYQ_WHY_EXACT_SEARCH_H_
