#include "why/extensions.h"

#include <algorithm>
#include <limits>
#include <optional>
#include <set>

#include "matcher/matcher.h"
#include "matcher/path_index.h"
#include "rewrite/cost_model.h"
#include "why/mbs.h"
#include "why/picky.h"

namespace whyq {

namespace {

constexpr double kEps = 1e-9;

// Sample up to `cap` nodes carrying the output node's label — the stand-in
// for V_C when a Why-empty question names no concrete missing entities.
std::vector<NodeId> LabelSample(const Graph& g, const Query& q, size_t cap) {
  NodeSpan all = g.NodesWithLabel(q.node(q.output()).label);
  std::vector<NodeId> out;
  size_t stride = std::max<size_t>(1, all.size() / std::max<size_t>(cap, 1));
  for (size_t i = 0; i < all.size() && out.size() < cap; i += stride) {
    out.push_back(all[i]);
  }
  return out;
}

}  // namespace

WhyEmptyResult AnswerWhyEmpty(const Graph& g, const Query& q,
                              const AnswerConfig& cfg) {
  WhyEmptyResult out;
  out.rewritten = q;
  Matcher matcher(g);
  matcher.set_cancel_token(cfg.cancel);
  auto harvest = [&](const Query& rewritten) {
    std::vector<NodeId> all = matcher.MatchOutput(rewritten);
    if (all.size() > 10) all.resize(10);
    out.sample_answers = std::move(all);
  };
  if (matcher.HasAnyMatch(q)) {
    out.found = true;
    harvest(q);
    return out;
  }
  std::vector<NodeId> proxy = LabelSample(g, q, 64);
  if (proxy.empty()) return out;  // no node carries the label: hopeless

  CostModel cost(q, g, cfg.weighted_cost);
  std::vector<EditOp> picky = GenPickyWhyNot(g, q, proxy, cfg);
  std::vector<double> costs;
  std::vector<EditOp> usable;
  for (EditOp& op : picky) {
    double c = cost.Cost(op);
    if (c <= cfg.budget + kEps) {
      usable.push_back(std::move(op));
      costs.push_back(c);
    }
  }

  // Greedy relaxation steered by path-test pass fractions over the proxy
  // sample: each step picks the operator that moves some candidate closest
  // to a full match, per unit cost, until the answer becomes non-empty.
  std::optional<PathIndex> own_pidx;
  if (cfg.path_index == nullptr) own_pidx.emplace(q, cfg.path_index_paths);
  const PathIndex& pidx = cfg.path_index ? *cfg.path_index : *own_pidx;
  auto score = [&](const Query& rewritten) {
    double best = 0.0;
    double sum = 0.0;
    for (NodeId v : proxy) {
      double fr = pidx.PassFraction(g, rewritten, v);
      best = std::max(best, fr);
      sum += fr;
    }
    // The max dominates (one full match suffices); the mean breaks ties.
    return best + 0.01 * sum / static_cast<double>(proxy.size());
  };
  OperatorSet selected;
  double spent = 0.0;
  double current_score = score(q);
  std::vector<uint8_t> in_pool(usable.size(), 1);
  size_t pool = usable.size();
  while (pool > 0 && !CancelRequested(cfg.cancel)) {
    long best = -1;
    double best_ratio = 0.0;
    for (size_t i = 0; i < usable.size(); ++i) {
      if (!in_pool[i]) continue;
      if (spent + costs[i] > cfg.budget + kEps) continue;
      bool conflicting = false;
      for (const EditOp& sel : selected) {
        conflicting |= OpsConflict(sel, usable[i]);
      }
      if (conflicting) continue;
      OperatorSet trial = selected;
      trial.push_back(usable[i]);
      double gain = score(ApplyOperators(q, trial)) - current_score;
      double ratio = gain / costs[i];
      if (ratio > best_ratio + kEps) {
        best_ratio = ratio;
        best = static_cast<long>(i);
      }
    }
    if (best < 0) break;
    size_t i = static_cast<size_t>(best);
    in_pool[i] = 0;
    --pool;
    selected.push_back(usable[i]);
    spent += costs[i];
    Query rewritten = ApplyOperators(q, selected);
    current_score = score(rewritten);
    if (matcher.HasAnyMatch(rewritten)) {
      // Drop unnecessary operators, cheapest kept.
      bool changed = true;
      while (changed && selected.size() > 1) {
        changed = false;
        for (size_t j = 0; j < selected.size(); ++j) {
          OperatorSet trial = selected;
          trial.erase(trial.begin() + static_cast<long>(j));
          Query tq = ApplyOperators(q, trial);
          if (matcher.HasAnyMatch(tq)) {
            selected = std::move(trial);
            changed = true;
            break;
          }
        }
      }
      out.found = true;
      out.ops = selected;
      out.rewritten = ApplyOperators(q, selected);
      out.cost = cost.Cost(selected);
      harvest(out.rewritten);
      return out;
    }
  }
  return out;
}

WhySoManyResult AnswerWhySoMany(const Graph& g, const Query& q,
                                const std::vector<NodeId>& answers,
                                size_t target_k, const AnswerConfig& cfg) {
  WhySoManyResult out;
  out.rewritten = q;
  out.before = answers.size();
  out.after = answers.size();
  if (answers.size() <= target_k) {
    out.found = true;
    return out;
  }
  Matcher matcher(g);
  matcher.set_cancel_token(cfg.cancel);
  CostModel cost(q, g, cfg.weighted_cost);
  std::optional<PathIndex> own_pidx;
  if (cfg.path_index == nullptr) own_pidx.emplace(q, cfg.path_index_paths);
  const PathIndex& pidx = cfg.path_index ? *cfg.path_index : *own_pidx;

  // Every answer is "unexpected": generate the full refinement picky set.
  std::vector<EditOp> picky = GenPickyWhy(g, q, answers, answers, cfg);
  struct Cand {
    EditOp op;
    double cost;
  };
  std::vector<Cand> cands;
  for (EditOp& op : picky) {
    double c = cost.Cost(op);
    if (c <= cfg.budget + kEps) cands.push_back(Cand{std::move(op), c});
  }

  // Greedy: maximize estimated removals per unit cost (path screening).
  auto survivors = [&](const Query& rewritten) {
    size_t kept = 0;
    for (NodeId v : answers) {
      if (pidx.Passes(g, rewritten, v)) ++kept;
    }
    return kept;
  };
  OperatorSet selected;
  double spent = 0.0;
  size_t current = answers.size();
  std::vector<uint8_t> in_pool(cands.size(), 1);
  size_t pool = cands.size();
  while (pool > 0 && current > target_k && !CancelRequested(cfg.cancel)) {
    long best = -1;
    double best_ratio = 0.0;
    size_t best_kept = current;
    for (size_t i = 0; i < cands.size(); ++i) {
      if (!in_pool[i]) continue;
      if (spent + cands[i].cost > cfg.budget + kEps) continue;
      bool conflicting = false;
      for (const EditOp& sel : selected) {
        conflicting |= OpsConflict(sel, cands[i].op);
      }
      if (conflicting) continue;
      OperatorSet trial = selected;
      trial.push_back(cands[i].op);
      size_t kept = survivors(ApplyOperators(q, trial));
      // "Why so many" wants fewer answers, not none: an operator that
      // empties the (estimated) answer is never a useful explanation.
      if (kept == 0) continue;
      double gain = static_cast<double>(current - kept);
      double ratio = gain / cands[i].cost;
      if (kept < current && ratio > best_ratio + kEps) {
        best_ratio = ratio;
        best = static_cast<long>(i);
        best_kept = kept;
      }
    }
    if (best < 0) break;
    size_t b = static_cast<size_t>(best);
    in_pool[b] = 0;
    --pool;
    selected.push_back(cands[b].op);
    spent += cands[b].cost;
    current = best_kept;
  }
  if (selected.empty()) return out;
  out.ops = selected;
  out.rewritten = ApplyOperators(q, selected);
  out.cost = cost.Cost(selected);
  out.after = matcher.MatchOutput(out.rewritten).size();
  out.found = out.after <= target_k;
  return out;
}

RewriteAnswer ExactWhyMultiOutput(
    const Graph& g, const Query& q,
    const std::vector<std::vector<NodeId>>& answers_per_output,
    const std::vector<std::vector<NodeId>>& unexpected_per_output,
    const AnswerConfig& cfg) {
  RewriteAnswer out;
  out.rewritten = q;
  const std::vector<QNodeId>& outputs = q.outputs();
  size_t n_out = outputs.size();

  // Per-output projections of Q, evaluators, and cost models.
  std::vector<Query> projections;
  std::vector<WhyEvaluator> evals;
  std::vector<CostModel> cost_models;
  size_t total_unexpected = 0;
  for (size_t i = 0; i < n_out; ++i) {
    Query qi = q;
    qi.SetOutput(outputs[i]);
    projections.push_back(qi);
    WhyQuestion wi{unexpected_per_output[i]};
    evals.emplace_back(g, answers_per_output[i], wi, cfg.guard_m);
    cost_models.emplace_back(qi, g, cfg.weighted_cost);
    total_unexpected += evals.back().unexpected().size();
  }
  if (total_unexpected == 0) return out;

  // Picky union over per-output generations; cost of an operator is taken
  // w.r.t. its *nearest* output (the max of the per-output costs, since
  // centrality grows as distance shrinks).
  std::vector<EditOp> picky;
  for (size_t i = 0; i < n_out; ++i) {
    std::vector<EditOp> ops =
        GenPickyWhy(g, projections[i], answers_per_output[i],
                    evals[i].unexpected(), cfg);
    for (EditOp& op : ops) picky.push_back(std::move(op));
  }
  auto op_cost = [&](const EditOp& op) {
    double c = 0.0;
    for (const CostModel& m : cost_models) c = std::max(c, m.Cost(op));
    return c;
  };
  std::vector<EditOp> usable;
  std::vector<double> costs;
  for (EditOp& op : picky) {
    bool dup = false;
    for (const EditOp& seen : usable) {
      if (seen == op) {
        dup = true;
        break;
      }
    }
    if (dup) continue;
    double c = op_cost(op);
    if (c <= cfg.budget + kEps) {
      usable.push_back(std::move(op));
      costs.push_back(c);
    }
  }
  out.picky_count = usable.size();

  auto pooled_eval = [&](const OperatorSet& ops, EvalResult* result) {
    size_t excluded = 0;
    size_t guard = 0;
    // One exact evaluation per output; a cancelled request stops here with
    // partial counts (the enumeration callback below aborts right after).
    for (size_t i = 0; i < n_out && !CancelRequested(cfg.cancel); ++i) {
      Query rewritten = ApplyOperators(projections[i], ops);
      const std::vector<NodeId> affected =
          evals[i].AffectedAnswers(rewritten);
      for (NodeId v : affected) {
        if (evals[i].IsUnexpected(v)) {
          ++excluded;
        } else {
          ++guard;
        }
      }
    }
    result->closeness = static_cast<double>(excluded) /
                        static_cast<double>(total_unexpected);
    result->guard = guard;
    result->guard_ok = guard <= cfg.guard_m;
  };

  double best_cl = -1.0;
  double best_cost = std::numeric_limits<double>::infinity();
  OperatorSet best_ops;
  EvalResult best_eval;
  AdmitFn admit = [&](const std::vector<size_t>& cur, size_t next) {
    OperatorSet ops;
    for (size_t i : cur) ops.push_back(usable[i]);
    ops.push_back(usable[next]);
    EvalResult r;
    pooled_eval(ops, &r);
    return r.guard_ok;
  };
  MbsStats stats = EnumerateMaximalBoundedSets(
      costs, BuildConflicts(usable), cfg.budget, cfg.max_mbs,
      [&](const std::vector<size_t>& idx) {
        if (CancelRequested(cfg.cancel)) return false;  // abort enumeration
        ++out.sets_verified;
        OperatorSet ops;
        for (size_t i : idx) ops.push_back(usable[i]);
        EvalResult r;
        pooled_eval(ops, &r);
        if (!r.guard_ok) return true;
        double c = 0.0;
        for (const EditOp& op : ops) c += op_cost(op);
        if (r.closeness > best_cl + kEps ||
            (r.closeness > best_cl - kEps && c < best_cost)) {
          best_cl = r.closeness;
          best_cost = c;
          best_ops = std::move(ops);
          best_eval = r;
        }
        return best_cl < 1.0 - kEps;
      },
      admit);
  out.exhaustive = !stats.truncated && !CancelRequested(cfg.cancel);
  if (best_cl <= 0.0 || best_ops.empty()) {
    pooled_eval({}, &out.eval);
    return out;
  }
  out.found = true;
  out.ops = std::move(best_ops);
  out.rewritten = ApplyOperators(q, out.ops);
  out.eval = best_eval;
  out.cost = best_cost;
  out.estimated_closeness = best_eval.closeness;
  return out;
}

RewriteAnswer ApproxWhyMultiOutput(
    const Graph& g, const Query& q,
    const std::vector<std::vector<NodeId>>& answers_per_output,
    const std::vector<std::vector<NodeId>>& unexpected_per_output,
    const AnswerConfig& cfg) {
  RewriteAnswer out;
  out.exhaustive = true;
  out.rewritten = q;
  const std::vector<QNodeId>& outputs = q.outputs();
  size_t n_out = outputs.size();

  std::vector<Query> projections;
  std::vector<WhyEvaluator> evals;
  std::vector<CostModel> cost_models;
  size_t total_unexpected = 0;
  for (size_t i = 0; i < n_out; ++i) {
    Query qi = q;
    qi.SetOutput(outputs[i]);
    projections.push_back(qi);
    WhyQuestion wi{unexpected_per_output[i]};
    evals.emplace_back(g, answers_per_output[i], wi, cfg.guard_m);
    cost_models.emplace_back(qi, g, cfg.weighted_cost);
    total_unexpected += evals.back().unexpected().size();
  }
  if (total_unexpected == 0) return out;

  std::vector<EditOp> picky;
  for (size_t i = 0; i < n_out; ++i) {
    std::vector<EditOp> ops =
        GenPickyWhy(g, projections[i], answers_per_output[i],
                    evals[i].unexpected(), cfg);
    for (EditOp& op : ops) picky.push_back(std::move(op));
  }
  auto op_cost = [&](const EditOp& op) {
    double c = 0.0;
    for (const CostModel& m : cost_models) c = std::max(c, m.Cost(op));
    return c;
  };

  // Per-operator pooled effect sets, verified exactly once per output.
  struct Cand {
    EditOp op;
    double cost = 0.0;
    // (output index, node) pairs excluded by the single operator.
    std::vector<std::pair<size_t, NodeId>> excluded;
    size_t guard = 0;
  };
  std::vector<Cand> cands;
  for (EditOp& op : picky) {
    // Each candidate costs n_out exact verifications; stop generating
    // (and select from what exists) once the deadline expires.
    if (CancelRequested(cfg.cancel)) {
      out.exhaustive = false;
      break;
    }
    bool dup = false;
    for (const Cand& seen : cands) {
      if (seen.op == op) {
        dup = true;
        break;
      }
    }
    if (dup) continue;
    double c = op_cost(op);
    if (c > cfg.budget + kEps) continue;
    Cand cand;
    cand.op = std::move(op);
    cand.cost = c;
    for (size_t i = 0; i < n_out && !CancelRequested(cfg.cancel); ++i) {
      Query single = ApplyOperators(projections[i], {cand.op});
      const std::vector<NodeId> affected = evals[i].AffectedAnswers(single);
      for (NodeId v : affected) {
        if (evals[i].IsUnexpected(v)) {
          cand.excluded.emplace_back(i, v);
        } else {
          ++cand.guard;
        }
      }
    }
    cands.push_back(std::move(cand));
  }
  out.picky_count = cands.size();

  std::vector<EditOp> cand_ops;
  cand_ops.reserve(cands.size());
  for (const Cand& c : cands) cand_ops.push_back(c.op);
  std::vector<std::vector<size_t>> conflicts = BuildConflicts(cand_ops);

  // Budgeted max-coverage greedy over the pooled exclusion sets.
  std::set<std::pair<size_t, NodeId>> covered;
  std::vector<size_t> selected;
  std::vector<uint8_t> in_pool(cands.size(), 1);
  size_t pool = cands.size();
  double spent = 0.0;
  size_t guard_used = 0;
  while (pool > 0) {
    ++out.sets_verified;
    long best = -1;
    double best_ratio = 0.0;
    for (size_t i = 0; i < cands.size(); ++i) {
      if (!in_pool[i]) continue;
      if (spent + cands[i].cost > cfg.budget + kEps) continue;
      if (guard_used + cands[i].guard > cfg.guard_m) continue;
      size_t gain = 0;
      for (const auto& key : cands[i].excluded) {
        gain += covered.count(key) ? 0 : 1;
      }
      double ratio = static_cast<double>(gain) / cands[i].cost;
      if (gain > 0 && ratio > best_ratio + kEps) {
        best_ratio = ratio;
        best = static_cast<long>(i);
      }
    }
    if (best < 0) break;
    size_t b = static_cast<size_t>(best);
    in_pool[b] = 0;
    --pool;
    for (size_t j : conflicts[b]) {
      if (in_pool[j]) {
        in_pool[j] = 0;
        --pool;
      }
    }
    selected.push_back(b);
    spent += cands[b].cost;
    guard_used += cands[b].guard;
    for (const auto& key : cands[b].excluded) covered.insert(key);
  }

  if (selected.empty()) return out;
  OperatorSet ops;
  for (size_t j : selected) ops.push_back(cands[j].op);
  out.ops = std::move(ops);
  out.rewritten = ApplyOperators(q, out.ops);
  out.cost = spent;
  // Exact pooled evaluation for reporting; a cancelled request reports
  // from the outputs verified so far.
  size_t excluded = 0;
  size_t guard = 0;
  for (size_t i = 0; i < n_out && !CancelRequested(cfg.cancel); ++i) {
    Query rewritten = ApplyOperators(projections[i], out.ops);
    const std::vector<NodeId> affected = evals[i].AffectedAnswers(rewritten);
    for (NodeId v : affected) {
      if (evals[i].IsUnexpected(v)) {
        ++excluded;
      } else {
        ++guard;
      }
    }
  }
  out.eval.closeness =
      static_cast<double>(excluded) / static_cast<double>(total_unexpected);
  out.eval.guard = guard;
  out.eval.guard_ok = guard <= cfg.guard_m;
  if (CancelRequested(cfg.cancel)) out.exhaustive = false;
  out.estimated_closeness =
      static_cast<double>(covered.size()) /
      static_cast<double>(total_unexpected);
  out.found = out.eval.guard_ok && out.eval.closeness > 0.0;
  return out;
}


}  // namespace whyq
