#ifndef WHYQ_WHY_EXTENSIONS_H_
#define WHYQ_WHY_EXTENSIONS_H_

#include <vector>

#include "graph/graph.h"
#include "query/query.h"
#include "rewrite/operators.h"
#include "why/question.h"
#include "why/why_algorithms.h"

namespace whyq {

/// Why-empty (Section V "Extensions"): a Why-not question with no V_C — the
/// user only wants *some* answer. Returns a relaxation rewrite within
/// budget whose answer is non-empty, preferring cheap operator sets.
struct WhyEmptyResult {
  bool found = false;
  OperatorSet ops;
  Query rewritten;
  double cost = 0.0;
  std::vector<NodeId> sample_answers;  // up to 10 witnesses
};

WhyEmptyResult AnswerWhyEmpty(const Graph& g, const Query& q,
                              const AnswerConfig& cfg);

/// Why-so-many (Section V "Extensions"): a Why question with no V_N — the
/// user wants the answer shrunk to at most `target_k` entities. Greedy
/// refinement over the picky set with path-index screening; the final
/// rewrite is re-evaluated exactly.
struct WhySoManyResult {
  bool found = false;  // reached <= target_k within budget
  OperatorSet ops;
  Query rewritten;
  double cost = 0.0;
  size_t before = 0;  // |Q(u_o, G)|
  size_t after = 0;   // |Q'(u_o, G)|
};

WhySoManyResult AnswerWhySoMany(const Graph& g, const Query& q,
                                const std::vector<NodeId>& answers,
                                size_t target_k, const AnswerConfig& cfg);

/// Multi-output extension: a Why question over all of q.outputs(), with one
/// unexpected set per output node (aligned with q.outputs()). Closeness is
/// pooled: excluded unexpected entities over all outputs / total
/// unexpected; the guard pools collateral exclusions the same way.
/// Exact (MBS-based) algorithm; operator costs use the nearest output.
RewriteAnswer ExactWhyMultiOutput(
    const Graph& g, const Query& q,
    const std::vector<std::vector<NodeId>>& answers_per_output,
    const std::vector<std::vector<NodeId>>& unexpected_per_output,
    const AnswerConfig& cfg);

/// Greedy multi-output Why (the extension keeps ApproxWhy's budgeted
/// submodular structure: the pooled closeness is a coverage function over
/// per-operator affected sets). Per-operator effects are verified exactly
/// once per output; set-level gains use their union.
RewriteAnswer ApproxWhyMultiOutput(
    const Graph& g, const Query& q,
    const std::vector<std::vector<NodeId>>& answers_per_output,
    const std::vector<std::vector<NodeId>>& unexpected_per_output,
    const AnswerConfig& cfg);

}  // namespace whyq

#endif  // WHYQ_WHY_EXTENSIONS_H_
