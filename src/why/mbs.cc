#include "why/mbs.h"

#include <algorithm>
#include <cstdint>
#include <numeric>

#include "common/check.h"

namespace whyq {

namespace {

constexpr double kEps = 1e-9;

struct Enumerator {
  const std::vector<double>& cost;  // original indexing
  const std::vector<std::vector<size_t>>& conflicts;
  const std::vector<size_t>& order;  // ranks -> original indices (ascending)
  double budget;
  size_t max_sets;
  size_t max_visits;
  const std::function<bool(const std::vector<size_t>&)>& visit;
  const AdmitFn& admit;
  const std::function<bool()>& should_stop;

  size_t poll_counter = 0;
  std::vector<size_t> current;          // original indices
  std::vector<size_t> conflict_count;   // per original index
  std::vector<uint8_t> in_set;          // per original index
  double current_cost = 0.0;
  size_t visits = 0;
  MbsStats stats;
  bool stop = false;

  void Include(size_t idx) {
    current.push_back(idx);
    in_set[idx] = 1;
    current_cost += cost[idx];
    for (size_t j : conflicts[idx]) ++conflict_count[j];
  }

  void Exclude(size_t idx) {
    current.pop_back();
    in_set[idx] = 0;
    current_cost -= cost[idx];
    for (size_t j : conflicts[idx]) --conflict_count[j];
  }

  bool Maximal() const {
    for (size_t j = 0; j < cost.size(); ++j) {
      if (in_set[j] || conflict_count[j] > 0) continue;
      if (current_cost + cost[j] > budget + kEps) continue;
      if (admit && !admit(current, j)) continue;  // inadmissible extension
      return false;
    }
    return true;
  }

  void Recurse(size_t rank) {
    if (stop) return;
    if (should_stop && (++poll_counter & 63u) == 0 && should_stop()) {
      stats.truncated = true;
      stop = true;
      return;
    }
    if (rank == cost.size()) {
      if (++visits > max_visits) {
        stats.truncated = true;
        stop = true;
        return;
      }
      if (Maximal()) {
        ++stats.emitted;
        if (!visit(current)) {
          stop = true;
          return;
        }
        if (stats.emitted >= max_sets) {
          stats.truncated = true;
          stop = true;
        }
      }
      return;
    }
    size_t idx = order[rank];
    bool includable = conflict_count[idx] == 0 &&
                      current_cost + cost[idx] <= budget + kEps &&
                      (!admit || admit(current, idx));
    if (includable) {
      Include(idx);
      Recurse(rank + 1);
      Exclude(idx);
      if (stop) return;
    }
    Recurse(rank + 1);
  }
};

}  // namespace

MbsStats EnumerateMaximalBoundedSets(
    const std::vector<double>& costs,
    const std::vector<std::vector<size_t>>& conflicts, double budget,
    size_t max_sets,
    const std::function<bool(const std::vector<size_t>&)>& visit,
    const AdmitFn& admit, const std::function<bool()>& should_stop) {
  WHYQ_CHECK(conflicts.size() == costs.size());
  std::vector<size_t> order(costs.size());
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(),
            [&](size_t a, size_t b) { return costs[a] < costs[b]; });

  Enumerator e{costs,
               conflicts,
               order,
               budget,
               std::max<size_t>(max_sets, 1),
               std::max<size_t>(max_sets, 1) * 64,
               visit,
               admit,
               should_stop,
               0,
               {},
               std::vector<size_t>(costs.size(), 0),
               std::vector<uint8_t>(costs.size(), 0),
               0.0,
               0,
               MbsStats(),
               false};
  if (costs.empty()) {
    // The empty set is trivially the only MBS.
    e.stats.emitted = 1;
    visit({});
    return e.stats;
  }
  e.current.reserve(costs.size());
  e.Recurse(0);
  return e.stats;
}

MbsStats EnumerateMaximalBoundedSetsBatched(
    const std::vector<double>& costs,
    const std::vector<std::vector<size_t>>& conflicts, double budget,
    size_t max_sets, size_t batch_size,
    const std::function<bool(const std::vector<std::vector<size_t>>& batch)>&
        visit_batch,
    const AdmitFn& admit, const std::function<bool()>& should_stop) {
  batch_size = std::max<size_t>(batch_size, 1);
  std::vector<std::vector<size_t>> batch;
  batch.reserve(batch_size);
  bool stopped_by_batch = false;
  MbsStats stats = EnumerateMaximalBoundedSets(
      costs, conflicts, budget, max_sets,
      [&](const std::vector<size_t>& idx) {
        batch.push_back(idx);
        if (batch.size() < batch_size) return true;
        bool keep_going = visit_batch(batch);
        batch.clear();
        stopped_by_batch = !keep_going;
        return keep_going;
      },
      admit, should_stop);
  // Flush the tail window (enumeration exhausted or a cap fired mid-batch).
  if (!batch.empty() && !stopped_by_batch) visit_batch(batch);
  return stats;
}

}  // namespace whyq
