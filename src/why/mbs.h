#ifndef WHYQ_WHY_MBS_H_
#define WHYQ_WHY_MBS_H_

#include <cstddef>
#include <functional>
#include <vector>

namespace whyq {

/// Enumeration of *maximal bounded sets* (MBS) — phase two of GenMBS.
/// Given per-operator costs, pairwise conflicts, and a budget B, an index
/// set S is an MBS when it is conflict-free, cost(S) <= B, and no operator
/// outside S could be added while keeping both properties.
///
/// Lemma 3 / Lemma 7: the optimal rewrite is induced by some MBS over the
/// picky set, so verifying MBSs only is sufficient for exactness.
///
/// `visit` receives each MBS (as index sets into `costs`); returning false
/// stops enumeration early (the paper's early termination once closeness 1
/// is reached). Enumeration is additionally capped: after `max_sets`
/// emissions, or ~64x that many explored leaves, it stops and reports
/// `truncated` so callers can surface approximateness.
struct MbsStats {
  size_t emitted = 0;
  bool truncated = false;  // stopped by a cap, not by visit() or exhaustion
};

/// Optional admissibility predicate: admit(current, next) says whether
/// current ∪ {next} stays admissible. The guard condition is *monotone*
/// under pure refinement (and pure relaxation) sets, so the family
/// {conflict-free, cost <= B, guard <= m} is downward closed and the
/// optimum is attained at one of its maximal elements; passing the guard
/// as `admit` makes the enumeration exact under guard constraints (plain
/// budget-maximal sets can all violate a strict guard while smaller valid
/// sets exist).
using AdmitFn =
    std::function<bool(const std::vector<size_t>& current, size_t next)>;

/// `should_stop` (optional) is polled inside the DFS (every few dozen
/// nodes); returning true aborts enumeration with `truncated` set — the
/// hook wall-clock limits sit behind, since admissibility checks can be
/// expensive long before any set is emitted.
///
/// Complexity: worst-case exponential in |costs| (the DFS explores the
/// subset lattice), bounded in practice by the budget, the conflict graph,
/// `admit` pruning, and the max_sets/64x-leaf caps. Per emitted set the
/// work is O(|costs|) for the maximality check plus one `visit` call.
///
/// Thread-safety: the enumeration itself is single-threaded and re-entrant
/// (no shared state between calls); `visit`/`admit`/`should_stop` are
/// invoked on the caller's thread only. Parallel *verification* of emitted
/// sets is the caller's job — see the batched variant below.
MbsStats EnumerateMaximalBoundedSets(
    const std::vector<double>& costs,
    const std::vector<std::vector<size_t>>& conflicts, double budget,
    size_t max_sets,
    const std::function<bool(const std::vector<size_t>&)>& visit,
    const AdmitFn& admit = nullptr,
    const std::function<bool()>& should_stop = nullptr);

/// Batched enumeration for parallel verification (the intra-question
/// parallelism of ExactWhy/ExactWhyNot): identical DFS, emission order, and
/// caps as EnumerateMaximalBoundedSets, but sets are buffered and handed to
/// `visit_batch` in groups of at most `batch_size` (the final group may be
/// smaller; with batch_size == 1 this is exactly the unbatched call). A
/// batch is a contiguous window over the serial emission stream, so a
/// caller that evaluates a batch in parallel and then *reduces it in index
/// order* observes the same visit sequence as the serial enumeration —
/// which is how the parallel exact algorithms stay bit-identical to their
/// serial reference. Returning false from `visit_batch` stops enumeration.
MbsStats EnumerateMaximalBoundedSetsBatched(
    const std::vector<double>& costs,
    const std::vector<std::vector<size_t>>& conflicts, double budget,
    size_t max_sets, size_t batch_size,
    const std::function<bool(const std::vector<std::vector<size_t>>& batch)>&
        visit_batch,
    const AdmitFn& admit = nullptr,
    const std::function<bool()>& should_stop = nullptr);

}  // namespace whyq

#endif  // WHYQ_WHY_MBS_H_
