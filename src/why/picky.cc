#include "why/picky.h"

#include <algorithm>
#include <map>
#include <set>
#include <tuple>

#include "graph/graph_stats.h"
#include "graph/neighborhood.h"

namespace whyq {

namespace {

// A neighborhood with per-node BFS depths, queryable by (label, max depth).
struct Layered {
  NodeSet set;
  std::vector<size_t> depth;  // aligned with set.nodes()

  std::vector<NodeId> Filter(const Graph& g, SymbolId label,
                             size_t max_depth) const {
    std::vector<NodeId> out;
    const std::vector<NodeId>& nodes = set.nodes();
    for (size_t i = 0; i < nodes.size(); ++i) {
      if (depth[i] <= max_depth && g.label(nodes[i]) == label) {
        out.push_back(nodes[i]);
      }
    }
    return out;
  }
};

Layered BuildLayered(const Graph& g, const std::vector<NodeId>& seeds,
                     size_t max_depth) {
  Layered l;
  l.set = WithinDistanceWithDepth(g, seeds, max_depth, &l.depth);
  return l;
}

// Subsamples a sorted domain down to `cap` spread-out values.
std::vector<Value> CapDomain(std::vector<Value> dom, size_t cap) {
  if (dom.size() <= cap || cap == 0) return dom;
  if (cap == 1) return {dom.front()};
  std::vector<Value> out;
  out.reserve(cap);
  for (size_t i = 0; i < cap; ++i) {
    size_t idx = i * (dom.size() - 1) / (cap - 1);
    out.push_back(dom[idx]);
  }
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

// Distinct attribute names present on any node of `nodes`.
std::vector<SymbolId> AttrsOn(const Graph& g,
                              const std::vector<NodeId>& nodes) {
  std::set<SymbolId> s;
  for (NodeId v : nodes) {
    for (const AttrEntry& e : g.attrs(v)) s.insert(e.attr);
  }
  return std::vector<SymbolId>(s.begin(), s.end());
}

bool CarriesAttr(const Graph& g, const std::vector<NodeId>& nodes,
                 SymbolId attr) {
  for (NodeId v : nodes) {
    if (g.GetAttr(v, attr) != nullptr) return true;
  }
  return false;
}

// Does any node in `nodes` carry attr with a value != a (or lack attr)?
bool SomeDiffersFrom(const Graph& g, const std::vector<NodeId>& nodes,
                     SymbolId attr, const Value& a) {
  for (NodeId v : nodes) {
    const Value* val = g.GetAttr(v, attr);
    if (val == nullptr || *val != a) return true;
  }
  return false;
}

void PushOp(std::vector<EditOp>& ops, EditOp op, size_t cap) {
  if (ops.size() >= cap) return;
  ops.push_back(std::move(op));
}

Literal MakeLiteral(SymbolId attr, CompareOp op, Value c) {
  Literal l;
  l.attr = attr;
  l.op = op;
  l.constant = std::move(c);
  return l;
}

void DedupOps(std::vector<EditOp>& ops) {
  std::vector<EditOp> out;
  for (EditOp& op : ops) {
    bool dup = false;
    for (const EditOp& seen : out) {
      if (seen == op) {
        dup = true;
        break;
      }
    }
    if (!dup) out.push_back(std::move(op));
  }
  ops = std::move(out);
}

}  // namespace

std::vector<EditOp> GenPickyWhy(const Graph& g, const Query& q,
                                const std::vector<NodeId>& answers,
                                const std::vector<NodeId>& unexpected,
                                const AnswerConfig& cfg,
                                const PickyLimits& limits) {
  std::vector<EditOp> ops;
  const size_t cap = cfg.max_picky_ops;
  size_t d_q = q.Diameter();

  NodeSet unexpected_set(unexpected, g.node_count());
  std::vector<NodeId> desired;
  for (NodeId v : answers) {
    if (!unexpected_set.Contains(v)) desired.push_back(v);
  }
  if (unexpected.empty()) return ops;

  Layered picky_layer = BuildLayered(g, unexpected, d_q + 1);
  Layered desired_layer =
      desired.empty() ? Layered() : BuildLayered(g, desired, d_q + 1);
  Layered answer_layer = BuildLayered(g, answers, d_q + 1);

  // AddE operators are assembled separately and appended after the node
  // operators: when the picky cap bites, the cheap-and-usually-pickier
  // literal operators survive (the paper's generation order is AddE-first,
  // but order only matters under truncation; see DESIGN.md).
  std::vector<EditOp> edge_ops;

  // ---- AddE ----
  std::vector<QNodeId> component = q.OutputComponent();
  // (a) Between two existing query nodes: insert (u1 -> u2, l) when a data
  // edge with that label runs between their answer-side neighborhoods.
  std::set<std::tuple<QNodeId, QNodeId, SymbolId>> edge_seen;
  for (QNodeId u1 : component) {
    size_t d1 = q.DistanceToOutput(u1);
    std::vector<NodeId> ans1 = answer_layer.Filter(g, q.node(u1).label, d1);
    for (QNodeId u2 : component) {
      if (u1 == u2) continue;
      size_t d2 = q.DistanceToOutput(u2);
      std::vector<NodeId> ans2 =
          answer_layer.Filter(g, q.node(u2).label, d2);
      NodeSet ans2_set(ans2, g.node_count());
      for (NodeId v1 : ans1) {
        for (const HalfEdge& e : g.out_edges(v1)) {
          if (!ans2_set.Contains(e.other)) continue;
          if (!edge_seen.insert({u1, u2, e.label}).second) continue;
          // Skip edges already in Q (duplicates are never picky).
          QueryEdge probe{u1, u2, e.label};
          if (std::find(q.edges().begin(), q.edges().end(), probe) !=
              q.edges().end()) {
            continue;
          }
          EditOp op;
          op.kind = OpKind::kAddE;
          op.u = u1;
          op.v = u2;
          op.edge_label = e.label;
          PushOp(edge_ops, std::move(op), cap);
        }
      }
    }
  }

  // (b) To a fresh node: group data edges leaving the answer-side
  // neighborhood of u1 by (direction, edge label, neighbor label); each
  // group yields a bare structural operator plus one-literal composites
  // resolved against the picky/desired sides (the paper's template
  // resolution).
  for (QNodeId u1 : component) {
    size_t d1 = q.DistanceToOutput(u1);
    SymbolId l1 = q.node(u1).label;
    std::vector<NodeId> ans1 = answer_layer.Filter(g, l1, d1);
    std::vector<NodeId> picky1 = picky_layer.Filter(g, l1, d1);
    NodeSet picky1_set(picky1, g.node_count());

    struct Group {
      std::vector<NodeId> desired_nbrs;  // neighbors of non-picky side
      std::vector<NodeId> picky_nbrs;    // neighbors of picky side
    };
    std::map<std::tuple<bool, SymbolId, SymbolId>, Group> groups;
    constexpr size_t kMaxNbrSamples = 256;
    for (NodeId v1 : ans1) {
      bool from_picky = picky1_set.Contains(v1);
      auto scan = [&](EdgeSpan adj, bool forward) {
        for (const HalfEdge& e : adj) {
          Group& grp = groups[{forward, e.label, g.label(e.other)}];
          std::vector<NodeId>& bucket =
              from_picky ? grp.picky_nbrs : grp.desired_nbrs;
          if (bucket.size() < kMaxNbrSamples) bucket.push_back(e.other);
        }
      };
      scan(g.out_edges(v1), true);
      scan(g.in_edges(v1), false);
    }
    size_t labels_used = 0;
    for (auto& [key, grp] : groups) {
      if (labels_used >= limits.max_new_node_labels) break;
      auto [forward, elabel, nlabel] = key;
      // Skip when Q already constrains u1 by such an edge.
      bool already = false;
      for (const QueryEdge& e : q.edges()) {
        QNodeId other = kInvalidQNode;
        if (forward && e.src == u1) other = e.dst;
        if (!forward && e.dst == u1) other = e.src;
        if (other != kInvalidQNode && e.label == elabel &&
            q.node(other).label == nlabel) {
          already = true;
          break;
        }
      }
      if (already) continue;
      ++labels_used;

      EditOp base;
      base.kind = OpKind::kAddE;
      base.u = u1;
      base.edge_label = elabel;
      base.edge_forward = forward;
      base.new_node = NewNodeSpec{nlabel, {}};
      PushOp(edge_ops, base, cap);
      size_t variants = 0;
      constexpr size_t kMaxVariantsPerGroup = 8;

      // One-literal composites over attributes of the adjacent nodes.
      for (SymbolId attr : AttrsOn(g, grp.desired_nbrs)) {
        std::vector<Value> dom_desired = CapDomain(
            ActiveDomain(g, attr, grp.desired_nbrs),
            limits.max_domain_values);
        std::vector<Value> dom_picky = CapDomain(
            ActiveDomain(g, attr, grp.picky_nbrs), limits.max_domain_values);
        for (const Value& a : dom_desired) {
          if (variants >= kMaxVariantsPerGroup) break;
          if (!SomeDiffersFrom(g, grp.picky_nbrs, attr, a)) continue;
          EditOp op = base;
          op.new_node->literals.push_back(
              MakeLiteral(attr, CompareOp::kEq, a));
          PushOp(edge_ops, std::move(op), cap);
          ++variants;
        }
        for (const Value& a : dom_picky) {
          if (variants >= kMaxVariantsPerGroup) break;
          if (!a.is_numeric()) continue;
          EditOp lt = base;
          lt.new_node->literals.push_back(
              MakeLiteral(attr, CompareOp::kLt, a));
          PushOp(edge_ops, std::move(lt), cap);
          EditOp gt = base;
          gt.new_node->literals.push_back(
              MakeLiteral(attr, CompareOp::kGt, a));
          PushOp(edge_ops, std::move(gt), cap);
          variants += 2;
        }
      }
    }
  }

  // ---- AddL and RfL on existing query nodes ----
  for (QNodeId u : component) {
    size_t d = q.DistanceToOutput(u);
    SymbolId lbl = q.node(u).label;
    std::vector<NodeId> picky_n = picky_layer.Filter(g, lbl, d);
    std::vector<NodeId> desired_n = desired_layer.set.empty()
                                        ? std::vector<NodeId>{}
                                        : desired_layer.Filter(g, lbl, d);
    std::vector<NodeId> ans_n = answer_layer.Filter(g, lbl, d);
    if (picky_n.empty()) continue;

    // RfL on existing literals (dom over the picky side).
    for (const Literal& l : q.node(u).literals) {
      std::vector<Value> dom_picky = CapDomain(
          ActiveDomain(g, l.attr, picky_n), limits.max_domain_values);
      if (IsUpperBound(l.op)) {
        for (const Value& a : dom_picky) {
          std::optional<int> cmp = l.constant.Compare(a);
          if (!cmp.has_value() || *cmp < 0) continue;  // need c >= a
          Literal after = MakeLiteral(l.attr, CompareOp::kLt, a);
          if (after == l) continue;
          EditOp op;
          op.kind = OpKind::kRfL;
          op.u = u;
          op.before = l;
          op.after = after;
          PushOp(ops, std::move(op), cap);
        }
      } else if (IsLowerBound(l.op)) {
        for (const Value& a : dom_picky) {
          std::optional<int> cmp = l.constant.Compare(a);
          if (!cmp.has_value() || *cmp > 0) continue;  // need c <= a
          Literal after = MakeLiteral(l.attr, CompareOp::kGt, a);
          if (after == l) continue;
          EditOp op;
          op.kind = OpKind::kRfL;
          op.u = u;
          op.before = l;
          op.after = after;
          PushOp(ops, std::move(op), cap);
        }
      }
      // Deviation from the paper: its RfL rule for '=' literals re-targets
      // the equality to another answer-side value, but that is a lateral
      // move, not a refinement — it can ADD answers, contradicting Lemma 1
      // (whose monotonicity this implementation's guard-aware enumeration
      // and Aff()-based estimation rely on). Equality literals are already
      // maximally tight, so no RfL is generated for them (see DESIGN.md).
    }

    // AddL, case 1 — pairing constraints: a bounded literal on a common
    // attribute with no opposite bound gets its pair, resolved over the
    // picky-side domain (Example 5: Price <= 650 pairs with Price > 120).
    for (const Literal& l : q.node(u).literals) {
      bool common = CarriesAttr(g, picky_n, l.attr) &&
                    CarriesAttr(g, desired_n, l.attr);
      if (!common) continue;
      bool has_upper = false;
      bool has_lower = false;
      for (const Literal& other : q.node(u).literals) {
        if (other.attr != l.attr) continue;
        has_upper |= IsUpperBound(other.op);
        has_lower |= IsLowerBound(other.op);
      }
      std::vector<Value> dom_picky = CapDomain(
          ActiveDomain(g, l.attr, picky_n), limits.max_domain_values);
      if (IsLowerBound(l.op) && !has_upper) {
        for (const Value& a : dom_picky) {
          EditOp op;
          op.kind = OpKind::kAddL;
          op.u = u;
          op.after = MakeLiteral(l.attr, CompareOp::kLt, a);
          PushOp(ops, std::move(op), cap);
        }
      }
      if (IsUpperBound(l.op) && !has_lower) {
        for (const Value& a : dom_picky) {
          EditOp op;
          op.kind = OpKind::kAddL;
          op.u = u;
          op.after = MakeLiteral(l.attr, CompareOp::kGt, a);
          PushOp(ops, std::move(op), cap);
        }
      }
    }

    // AddL, case 2 — differential attributes: carried on the desired side
    // but absent from the picky side; requiring them (with a desired-side
    // tolerant bound) prunes picky candidates wholesale.
    for (SymbolId attr : AttrsOn(g, desired_n)) {
      if (CarriesAttr(g, picky_n, attr)) continue;  // not differential
      std::vector<Value> dom_desired = CapDomain(
          ActiveDomain(g, attr, desired_n), limits.max_domain_values);
      if (dom_desired.empty()) continue;
      if (dom_desired.front().is_numeric() &&
          dom_desired.back().is_numeric()) {
        EditOp ge;
        ge.kind = OpKind::kAddL;
        ge.u = u;
        ge.after = MakeLiteral(attr, CompareOp::kGe, dom_desired.front());
        PushOp(ops, std::move(ge), cap);
        EditOp le;
        le.kind = OpKind::kAddL;
        le.u = u;
        le.after = MakeLiteral(attr, CompareOp::kLe, dom_desired.back());
        PushOp(ops, std::move(le), cap);
      } else {
        for (const Value& a : dom_desired) {
          EditOp op;
          op.kind = OpKind::kAddL;
          op.u = u;
          op.after = MakeLiteral(attr, CompareOp::kEq, a);
          PushOp(ops, std::move(op), cap);
        }
      }
    }

    // AddL, case 3 — common attributes not yet constrained at u: equality
    // to a desired-side value some picky node misses, plus bounds cut at
    // picky-side values.
    for (SymbolId attr : AttrsOn(g, desired_n)) {
      if (!CarriesAttr(g, picky_n, attr)) continue;
      bool constrained = false;
      for (const Literal& other : q.node(u).literals) {
        constrained |= other.attr == attr;
      }
      if (constrained) continue;
      std::vector<Value> dom_desired = CapDomain(
          ActiveDomain(g, attr, desired_n), limits.max_domain_values);
      for (const Value& a : dom_desired) {
        if (!SomeDiffersFrom(g, picky_n, attr, a)) continue;
        EditOp op;
        op.kind = OpKind::kAddL;
        op.u = u;
        op.after = MakeLiteral(attr, CompareOp::kEq, a);
        PushOp(ops, std::move(op), cap);
      }
      std::vector<Value> dom_picky = CapDomain(
          ActiveDomain(g, attr, picky_n), limits.max_domain_values);
      for (const Value& a : dom_picky) {
        if (!a.is_numeric()) continue;
        EditOp lt;
        lt.kind = OpKind::kAddL;
        lt.u = u;
        lt.after = MakeLiteral(attr, CompareOp::kLt, a);
        PushOp(ops, std::move(lt), cap);
        EditOp gt;
        gt.kind = OpKind::kAddL;
        gt.u = u;
        gt.after = MakeLiteral(attr, CompareOp::kGt, a);
        PushOp(ops, std::move(gt), cap);
      }
    }
  }

  for (EditOp& op : edge_ops) PushOp(ops, std::move(op), cap);
  DedupOps(ops);
  return ops;
}

std::vector<EditOp> GenPickyWhyNot(const Graph& g, const Query& q,
                                   const std::vector<NodeId>& missing,
                                   const AnswerConfig& cfg,
                                   const PickyLimits& limits) {
  std::vector<EditOp> ops;
  const size_t cap = cfg.max_picky_ops;
  if (missing.empty()) return ops;
  size_t d_q = q.Diameter();
  Layered missing_layer = BuildLayered(g, missing, d_q);

  std::vector<QNodeId> component = q.OutputComponent();
  for (QNodeId u : component) {
    size_t d = q.DistanceToOutput(u);
    std::vector<NodeId> near = missing_layer.Filter(g, q.node(u).label, d);

    for (const Literal& l : q.node(u).literals) {
      // RmL is always available.
      EditOp rm;
      rm.kind = OpKind::kRmL;
      rm.u = u;
      rm.before = l;
      PushOp(ops, std::move(rm), cap);

      // RxL over the missing-side active domain (common attributes only —
      // relaxing toward values nobody near V_C carries cannot help).
      std::vector<Value> dom =
          CapDomain(ActiveDomain(g, l.attr, near), limits.max_domain_values);
      for (const Value& a : dom) {
        std::optional<int> cmp = l.constant.Compare(a);
        if (!cmp.has_value()) continue;
        if ((IsUpperBound(l.op) || l.op == CompareOp::kEq) && *cmp <= 0) {
          Literal after = MakeLiteral(l.attr, CompareOp::kLe, a);
          if (!(after == l)) {
            EditOp op;
            op.kind = OpKind::kRxL;
            op.u = u;
            op.before = l;
            op.after = after;
            PushOp(ops, std::move(op), cap);
          }
        }
        if ((IsLowerBound(l.op) || l.op == CompareOp::kEq) && *cmp >= 0) {
          Literal after = MakeLiteral(l.attr, CompareOp::kGe, a);
          if (!(after == l)) {
            EditOp op;
            op.kind = OpKind::kRxL;
            op.u = u;
            op.before = l;
            op.after = after;
            PushOp(ops, std::move(op), cap);
          }
        }
      }
    }
  }

  for (const QueryEdge& e : q.edges()) {
    EditOp op;
    op.kind = OpKind::kRmE;
    op.u = e.src;
    op.v = e.dst;
    op.edge_label = e.label;
    PushOp(ops, std::move(op), cap);
  }

  DedupOps(ops);
  return ops;
}

}  // namespace whyq
