#ifndef WHYQ_WHY_PICKY_H_
#define WHYQ_WHY_PICKY_H_

#include <vector>

#include "graph/graph.h"
#include "query/query.h"
#include "rewrite/operators.h"
#include "why/question.h"

namespace whyq {

/// Picky-operator generation — phase one of the paper's GenMBS (Sections IV
/// and V). A refinement operator is *picky* when applying it alone may
/// exclude some unexpected node of V_N from the answer; a relaxation
/// operator is picky when it may admit some missing node of V_C.
///
/// Both generators work on the d(u',u_o)-hop, label-filtered neighborhoods
/// N(V, u') of the question's entities, so their cost depends on Q, the
/// question and local graph density only — never on |G|.
///
/// Deviations from the paper, documented in DESIGN.md:
///  * Composite AddE operators carry their resolved literals inline (one
///    literal per generated variant, plus the bare structural variant)
///    instead of emitting dependent AddL operators on the not-yet-existing
///    node; the cost model prices them identically (Example 4).
///  * Active domains are subsampled to `max_domain_values` spread-out values
///    when large; caps keep picky sets within `cfg.max_picky_ops`.

/// Generation caps beyond AnswerConfig.
struct PickyLimits {
  size_t max_domain_values = 12;   // per-attribute resolved constants
  size_t max_new_node_labels = 8;  // distinct (edge label, node label) AddE
};

/// Refinement picky set for a Why question (AddE, AddL, RfL).
std::vector<EditOp> GenPickyWhy(const Graph& g, const Query& q,
                                const std::vector<NodeId>& answers,
                                const std::vector<NodeId>& unexpected,
                                const AnswerConfig& cfg,
                                const PickyLimits& limits = PickyLimits());

/// Relaxation picky set for a Why-not question (RxL, RmL, RmE).
std::vector<EditOp> GenPickyWhyNot(const Graph& g, const Query& q,
                                   const std::vector<NodeId>& missing,
                                   const AnswerConfig& cfg,
                                   const PickyLimits& limits = PickyLimits());

}  // namespace whyq

#endif  // WHYQ_WHY_PICKY_H_
