#include "why/question.h"

#include <sstream>
#include <unordered_set>

namespace whyq {

std::string ConstraintLiteral::ToString(const Graph& g) const {
  std::ostringstream os;
  os << "x." << g.AttrName(attr) << ' ' << CompareOpName(op) << ' ';
  if (binary) {
    os << "y." << g.AttrName(other_attr);
  } else {
    os << constant.ToString();
  }
  return os.str();
}

bool Constraint::Satisfies(const Graph& g, NodeId x,
                           const std::vector<NodeId>& others) const {
  for (const ConstraintLiteral& l : literals) {
    const Value* xv = g.GetAttr(x, l.attr);
    if (xv == nullptr) return false;
    if (!l.binary) {
      if (!xv->Satisfies(l.op, l.constant)) return false;
      continue;
    }
    bool found = false;
    for (NodeId y : others) {
      if (y == x) continue;
      const Value* yv = g.GetAttr(y, l.other_attr);
      if (yv != nullptr && xv->Satisfies(l.op, *yv)) {
        found = true;
        break;
      }
    }
    if (!found) return false;
  }
  return true;
}

std::vector<NodeId> Constraint::Filter(
    const Graph& g, const std::vector<NodeId>& candidates,
    const std::vector<NodeId>& answers) const {
  if (literals.empty()) return candidates;
  std::vector<NodeId> universe = candidates;
  std::unordered_set<NodeId> seen(candidates.begin(), candidates.end());
  for (NodeId v : answers) {
    if (seen.insert(v).second) universe.push_back(v);
  }
  std::vector<NodeId> out;
  for (NodeId x : candidates) {
    if (Satisfies(g, x, universe)) out.push_back(x);
  }
  return out;
}

std::string Constraint::ToString(const Graph& g) const {
  std::ostringstream os;
  for (size_t i = 0; i < literals.size(); ++i) {
    os << (i == 0 ? "" : " AND ") << literals[i].ToString(g);
  }
  return os.str();
}

}  // namespace whyq
