#ifndef WHYQ_WHY_QUESTION_H_
#define WHYQ_WHY_QUESTION_H_

#include <string>
#include <vector>

#include "common/cancel.h"
#include "graph/graph.h"
#include "matcher/match_engine.h"
#include "query/query.h"

namespace whyq {

class PathIndex;

/// One literal of a Why-not selection condition C (Section III-A). Either
/// unary (`x.A op c`, constraining a missing entity directly) or binary
/// (`x.A op y.A'`, relating a missing entity to some entity of
/// V_C ∪ Q(u_o,G) under existential semantics).
struct ConstraintLiteral {
  bool binary = false;
  SymbolId attr = kInvalidSymbol;        // x.A
  CompareOp op = CompareOp::kEq;
  Value constant;                        // unary: c
  SymbolId other_attr = kInvalidSymbol;  // binary: y.A'

  std::string ToString(const Graph& g) const;
};

/// Conjunction C = ∧ l of constraint literals; empty C accepts everything.
struct Constraint {
  std::vector<ConstraintLiteral> literals;

  bool empty() const { return literals.empty(); }

  /// Does node x satisfy C? Binary literals quantify existentially over
  /// `others` \ {x}.
  bool Satisfies(const Graph& g, NodeId x,
                 const std::vector<NodeId>& others) const;

  /// Filters `candidates` down to the nodes satisfying C against
  /// `candidates ∪ answers`.
  std::vector<NodeId> Filter(const Graph& g,
                             const std::vector<NodeId>& candidates,
                             const std::vector<NodeId>& answers) const;

  std::string ToString(const Graph& g) const;
};

/// A Why question (u_o, V_N): why are these unexpected entities answers?
struct WhyQuestion {
  std::vector<NodeId> unexpected;  // V_N ⊆ Q(u_o, G)
};

/// A Why-not question (u_o, V_C, C): why are these entities missing?
struct WhyNotQuestion {
  std::vector<NodeId> missing;  // V_C ⊆ V \ Q(u_o, G)
  Constraint condition;         // C (possibly empty)
};

/// Common tuning knobs shared by all answering algorithms.
struct AnswerConfig {
  double budget = 4.0;       // editing budget B
  MatchSemantics semantics =
      MatchSemantics::kIsomorphism;  // answer semantics (Section V ext.)
  size_t guard_m = 2;        // guard condition bound m
  bool weighted_cost = true; // value-difference-weighted RxL/RfL cost
  size_t max_picky_ops = 192;      // cap on the generated picky set
  size_t max_mbs = 200000;         // cap on enumerated maximal bounded sets
  double exact_time_limit_ms = 0;  // wall-clock cap for exact enumeration
                                   // (0 = unlimited); hitting it clears
                                   // RewriteAnswer::exhaustive
  size_t path_index_paths = 8;     // sampled paths for EstMatch
  size_t est_guard_scan = 2000;    // candidate scan cap for estimated guards
  bool minimize_cost = true;       // exact post-processing (minimal MBS)

  /// Intra-question parallelism width. 0 = unset (the host decides: the CLI
  /// and plain library calls stay serial, the service substitutes its
  /// ServiceConfig::intra_threads); 1 = explicitly serial; N > 1 = verify
  /// MBS candidates / score greedy gains on up to N executors of
  /// ThreadPool::Shared() (capped at its worker count + 1). Parallel runs
  /// produce byte-identical answers to threads == 1 — see
  /// why/exact_search.h for the determinism contract.
  size_t threads = 0;

  /// Cooperative cancellation/deadline (not owned; may be null). Polled in
  /// the matcher search, the MBS enumeration, and the greedy selection
  /// loops; an expired token makes the algorithms return their best-so-far
  /// rewrite with RewriteAnswer::exhaustive cleared (-> truncated).
  const CancelToken* cancel = nullptr;

  /// Prebuilt estimation backbone for the *original* query (not owned; may
  /// be null). When set, the greedy algorithms use it instead of sampling a
  /// fresh PathIndex(q, path_index_paths) — the service's prepared-question
  /// cache shares one immutable index across repeated questions. Must have
  /// been built from the same query `q` the algorithm is invoked with.
  const PathIndex* path_index = nullptr;
};

}  // namespace whyq

#endif  // WHYQ_WHY_QUESTION_H_
