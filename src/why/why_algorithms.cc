#include "why/why_algorithms.h"

#include <algorithm>
#include <atomic>
#include <limits>
#include <memory>
#include <optional>
#include <sstream>

#include "common/table.h"
#include "common/thread_pool.h"
#include "common/timer.h"
#include "matcher/path_index.h"
#include "rewrite/cost_model.h"
#include "why/est_match.h"
#include "why/exact_search.h"
#include "why/mbs.h"
#include "why/picky.h"

namespace whyq {

namespace {

constexpr double kEps = 1e-9;

// Folds accumulated candidate-memo counters into the answer's ctx_* fields.
void FillContextStats(RewriteAnswer& out, const MatchContext::Stats& s) {
  out.ctx_hits = s.hits;
  out.ctx_misses = s.misses;
  out.ctx_delta_builds = s.delta_builds;
  out.ctx_pruned = s.pruned;
}

// Shared exact post-processing: greedily drop operators while the exact
// closeness does not decrease and the guard stays valid ("minimal MBS").
// Every dropped-operator trial is a full exact evaluation, so the loop
// polls `cancel` per trial: an expiring deadline keeps the current
// (valid, just not yet minimal) rewrite.
template <typename Evaluator>
void MinimizeCost(const Graph&, const Query& q, const Evaluator& eval,
                  const CostModel& cost, const CancelToken* cancel,
                  OperatorSet& ops, EvalResult& result, Query& rewritten) {
  bool changed = true;
  while (changed && ops.size() > 1 && !CancelRequested(cancel)) {
    changed = false;
    // Try dropping the most expensive operator first.
    std::vector<size_t> order(ops.size());
    for (size_t i = 0; i < order.size(); ++i) order[i] = i;
    std::sort(order.begin(), order.end(), [&](size_t a, size_t b) {
      return cost.Cost(ops[a]) > cost.Cost(ops[b]);
    });
    for (size_t i : order) {
      if (CancelRequested(cancel)) return;
      OperatorSet trial = ops;
      trial.erase(trial.begin() + static_cast<long>(i));
      Query trial_q = ApplyOperators(q, trial);
      EvalResult trial_eval = eval.Evaluate(trial_q);
      if (trial_eval.guard_ok &&
          trial_eval.closeness >= result.closeness - kEps) {
        ops = std::move(trial);
        rewritten = std::move(trial_q);
        result = trial_eval;
        changed = true;
        break;
      }
    }
  }
}

}  // namespace

std::string RewriteAnswer::Explain(const Graph& g) const {
  std::ostringstream os;
  if (!found) {
    os << "no valid rewrite within budget";
    return os.str();
  }
  os << "closeness " << TextTable::Num(eval.closeness, 3) << " at cost "
     << TextTable::Num(cost, 2) << " via { " << DescribeOperators(ops, g)
     << " }";
  return os.str();
}

RewriteAnswer ExactWhy(const Graph& g, const Query& q,
                       const std::vector<NodeId>& answers,
                       const WhyQuestion& w, const AnswerConfig& cfg) {
  RewriteAnswer out;
  out.rewritten = q;
  WhyEvaluator eval(g, answers, w, cfg.guard_m, cfg.semantics, cfg.cancel);
  CostModel cost(q, g, cfg.weighted_cost);

  std::vector<EditOp> picky =
      GenPickyWhy(g, q, answers, eval.unexpected(), cfg);
  // Operators that alone exceed the budget can never be in a bounded set.
  std::vector<EditOp> usable;
  std::vector<double> costs;
  for (EditOp& op : picky) {
    double c = cost.Cost(op);
    if (c <= cfg.budget + kEps) {
      usable.push_back(std::move(op));
      costs.push_back(c);
    }
  }
  out.picky_count = usable.size();

  // Enumerate + verify (guard-admissible MBS search, possibly parallel —
  // see why/exact_search.h for why the parallel path stays bit-identical).
  // Admissibility: the guard is monotone under refinement, so enumerating
  // the maximal elements of {cost <= B, conflict-free, guard <= m} is exact.
  internal::ExactSearchOutcome search =
      internal::ExactMbsSearch<WhyEvaluator>(
          q, usable, costs, cost, cfg, eval, [&] {
            return std::make_unique<WhyEvaluator>(
                g, answers, w, cfg.guard_m, cfg.semantics, cfg.cancel);
          });
  double best_cl = search.best_cl;
  double best_cost = search.best_cost;
  OperatorSet best_ops = std::move(search.best_ops);
  EvalResult best_eval = search.best_eval;
  out.sets_enumerated = search.stats.emitted;
  out.sets_verified = search.verified;
  out.exhaustive = !search.stats.truncated && !search.timed_out;
  MatchContext::Stats ctx_stats = search.ctx;  // slot evaluators' share

  // Fallback when the capped enumeration missed a solution the greedy can
  // still reach: the greedy set is a valid bounded set, so adopting it
  // keeps ExactWhy's answer at least as close as ApproxWhy's. Skipped when
  // the request itself is cancelled/past deadline — return best-so-far now.
  if (!out.exhaustive && !CancelRequested(cfg.cancel)) {
    RewriteAnswer seed = ApproxWhy(g, q, answers, w, cfg);
    ctx_stats.hits += seed.ctx_hits;  // the seeding work happened regardless
    ctx_stats.misses += seed.ctx_misses;
    ctx_stats.delta_builds += seed.ctx_delta_builds;
    ctx_stats.pruned += seed.ctx_pruned;
    if (seed.found && seed.eval.guard_ok &&
        seed.cost <= cfg.budget + kEps &&
        (seed.eval.closeness > best_cl + kEps ||
         (seed.eval.closeness > best_cl - kEps && seed.cost < best_cost))) {
      best_cl = seed.eval.closeness;
      best_cost = seed.cost;
      best_ops = std::move(seed.ops);
      best_eval = seed.eval;
    }
  }

  if (best_cl < 0.0 || best_ops.empty()) {
    // No improving set: answer with the empty rewrite (Q itself).
    out.eval = eval.Evaluate(q);
    ctx_stats.Add(eval.ContextStats());
    FillContextStats(out, ctx_stats);
    return out;
  }
  out.found = best_eval.closeness > 0.0;
  out.ops = std::move(best_ops);
  out.rewritten = ApplyOperators(q, out.ops);
  out.eval = best_eval;
  if (cfg.minimize_cost && !CancelRequested(cfg.cancel)) {
    MinimizeCost(g, q, eval, cost, cfg.cancel, out.ops, out.eval,
                 out.rewritten);
  }
  out.cost = cost.Cost(out.ops);
  out.estimated_closeness = out.eval.closeness;
  ctx_stats.Add(eval.ContextStats());
  FillContextStats(out, ctx_stats);
  return out;
}

namespace {

// Shared greedy skeleton for ApproxWhy / IsoWhy. When `exact` is true the
// marginal gains use the exact evaluator (IsoWhy); otherwise EstMatch.
RewriteAnswer GreedyWhy(const Graph& g, const Query& q,
                        const std::vector<NodeId>& answers,
                        const WhyQuestion& w, const AnswerConfig& cfg,
                        bool exact) {
  RewriteAnswer out;
  out.exhaustive = true;  // greedy: nothing to truncate (unless cancelled)
  out.rewritten = q;
  WhyEvaluator eval(g, answers, w, cfg.guard_m, cfg.semantics, cfg.cancel);
  CostModel cost(q, g, cfg.weighted_cost);
  std::optional<PathIndex> own_pidx;
  if (cfg.path_index == nullptr) own_pidx.emplace(q, cfg.path_index_paths);
  const PathIndex& pidx = cfg.path_index ? *cfg.path_index : *own_pidx;

  std::vector<NodeId> desired;
  for (NodeId v : answers) {
    if (!eval.IsUnexpected(v)) desired.push_back(v);
  }

  // Intra-question parallelism: evaluators own a stateful MatchEngine, so
  // each concurrent executor slot gets its own clone (slot 0 reuses `eval`).
  const size_t width = ResolveParallelWidth(cfg.threads);
  std::vector<std::unique_ptr<WhyEvaluator>> slot_evals;  // slots 1..width-1
  for (size_t s = 1; s < width; ++s) {
    slot_evals.push_back(std::make_unique<WhyEvaluator>(
        g, answers, w, cfg.guard_m, cfg.semantics, cfg.cancel));
  }
  auto eval_at = [&](size_t slot) -> const WhyEvaluator& {
    return slot == 0 ? eval : *slot_evals[slot - 1];
  };
  // Sum of every evaluator's candidate-memo counters, folded into the
  // answer at each exit.
  auto finish_ctx = [&]() {
    MatchContext::Stats c = eval.ContextStats();
    for (const auto& se : slot_evals) c.Add(se->ContextStats());
    FillContextStats(out, c);
  };

  std::vector<EditOp> picky =
      GenPickyWhy(g, q, answers, eval.unexpected(), cfg);
  struct Cand {
    EditOp op;
    double cost = 0.0;
    std::vector<NodeId> affected;  // exact Aff(o), computed once
    double single_cl = 0.0;
    size_t single_guard = 0;
  };
  // Budget screen (cheap, serial) fixes the candidate indexing; the
  // per-candidate exact Aff(o) sweeps — the expensive part of prep — then
  // run on the pool, one evaluator per executor slot.
  std::vector<Cand> cands;
  for (EditOp& op : picky) {
    double c = cost.Cost(op);
    if (c > cfg.budget + kEps) continue;
    Cand cand;
    cand.op = std::move(op);
    cand.cost = c;
    cands.push_back(std::move(cand));
  }
  std::vector<uint8_t> prepped(cands.size(), 0);
  ThreadPool::Shared().ParallelFor(
      cands.size(), width, [&](size_t i, size_t slot) {
        if (CancelRequested(cfg.cancel)) return;  // prefix-kept below
        const WhyEvaluator& ev = eval_at(slot);
        Cand& cand = cands[i];
        Query single = ApplyOperators(q, {cand.op});
        cand.affected = ev.AffectedAnswers(single);
        size_t excl = 0;
        for (NodeId v : cand.affected) {
          if (ev.IsUnexpected(v)) {
            ++excl;
          } else {
            ++cand.single_guard;
          }
        }
        if (!ev.unexpected().empty()) {
          cand.single_cl = static_cast<double>(excl) /
                           static_cast<double>(ev.unexpected().size());
        }
        prepped[i] = 1;
      });
  // Cancellation mid-prep: keep the longest fully-scored prefix — exactly
  // the candidates a serial run would have kept before breaking out.
  size_t scored_prefix = 0;
  while (scored_prefix < cands.size() && prepped[scored_prefix]) {
    ++scored_prefix;
  }
  if (scored_prefix < cands.size()) {
    out.exhaustive = false;
    cands.resize(scored_prefix);
  }
  out.picky_count = cands.size();

  // Conflict adjacency: operators editing the same literal/edge cannot
  // be co-selected.
  std::vector<EditOp> cand_ops;
  cand_ops.reserve(cands.size());
  for (const auto& c : cands) cand_ops.push_back(c.op);
  std::vector<std::vector<size_t>> conflicts = BuildConflicts(cand_ops);

  // O_1: the best single operator (verified exactly).
  long best_single = -1;
  for (size_t i = 0; i < cands.size(); ++i) {
    if (cands[i].single_guard > cfg.guard_m) continue;
    if (best_single < 0 ||
        cands[i].single_cl >
            cands[static_cast<size_t>(best_single)].single_cl + kEps ||
        (cands[i].single_cl >=
             cands[static_cast<size_t>(best_single)].single_cl - kEps &&
         cands[i].cost < cands[static_cast<size_t>(best_single)].cost)) {
      best_single = static_cast<long>(i);
    }
  }
  double cl_o1 =
      best_single < 0 ? 0.0 : cands[static_cast<size_t>(best_single)].single_cl;

  // O_2: greedy selection by (estimated) marginal gain per unit cost.
  std::vector<size_t> selected;
  NodeSet aff_union(std::vector<NodeId>{}, g.node_count());
  double spent = 0.0;
  double current_cl = 0.0;
  std::vector<uint8_t> in_pool(cands.size(), 1);
  size_t pool = cands.size();

  auto estimate = [&](const std::vector<size_t>& idx, const NodeSet& aff,
                      const Query& rw, size_t slot) -> CloseEstimate {
    if (exact) {
      (void)idx;
      (void)aff;
      EvalResult r = eval_at(slot).Evaluate(rw);
      CloseEstimate e;
      e.closeness = r.closeness;
      e.guard = r.guard;
      e.guard_ok = r.guard_ok;
      return e;
    }
    return EstimateWhy(g, rw, pidx, aff, eval.unexpected(), desired,
                       cfg.guard_m, eval_at(slot).context());
  };

  // Soft (partial-credit) exclusion progress: a refinement can push an
  // unexpected entity toward failing the path tests without excluding it
  // outright; the soft score breaks zero-gain ties so such combinations
  // can bootstrap (see DESIGN.md).
  // Runs on the scoring slots too, so the caller passes its slot's context.
  auto soft_score = [&](const NodeSet& excluded_union, const Query& rw,
                        MatchContext* ctx) {
    double s = 0.0;
    for (NodeId v : eval.unexpected()) {
      s += excluded_union.Contains(v)
               ? 1.0
               : 1.0 - pidx.PassFraction(g, rw, v, ctx);
    }
    return eval.unexpected().empty()
               ? 0.0
               : s / static_cast<double>(eval.unexpected().size());
  };
  double current_soft = soft_score(aff_union, q, eval.context());

  while (pool > 0 && current_cl < 1.0 - kEps) {
    if (CancelRequested(cfg.cancel)) {
      out.exhaustive = false;
      break;  // keep the greedy prefix selected so far
    }
    ++out.sets_verified;
    // Score every pool candidate (parallel across executor slots), then
    // pick the winner serially in ascending candidate order — the same
    // argmax and tie-break (ratio must beat the incumbent by kEps) as the
    // serial scan, so parallel rounds select identical operators.
    std::vector<size_t> pool_idx;
    pool_idx.reserve(pool);
    for (size_t i = 0; i < cands.size(); ++i) {
      if (in_pool[i]) pool_idx.push_back(i);
    }
    struct Score {
      double ratio = -1.0;
      double gain = 0.0;
      double soft_gain = 0.0;
    };
    std::vector<Score> scores(pool_idx.size());
    ThreadPool::Shared().ParallelFor(
        pool_idx.size(), width, [&](size_t k, size_t slot) {
          size_t i = pool_idx[k];
          std::vector<size_t> trial = selected;
          trial.push_back(i);
          NodeSet aff = aff_union;
          for (NodeId v : cands[i].affected) aff.Insert(v);
          OperatorSet trial_ops;
          for (size_t j : trial) trial_ops.push_back(cands[j].op);
          Query rw = ApplyOperators(q, trial_ops);
          CloseEstimate est = estimate(trial, aff, rw, slot);
          Score& s = scores[k];
          s.gain = est.closeness - current_cl;
          s.soft_gain =
              soft_score(aff, rw, eval_at(slot).context()) - current_soft;
          s.ratio = (s.gain + 1e-3 * s.soft_gain) / cands[i].cost;
        });
    long best = -1;
    double best_ratio = -1.0;
    double best_gain = 0.0;
    double best_soft_gain = 0.0;
    for (size_t k = 0; k < pool_idx.size(); ++k) {
      if (scores[k].ratio > best_ratio + kEps) {
        best_ratio = scores[k].ratio;
        best = static_cast<long>(pool_idx[k]);
        best_gain = scores[k].gain;
        best_soft_gain = scores[k].soft_gain;
      }
    }
    if (best < 0) break;
    size_t b = static_cast<size_t>(best);
    in_pool[b] = 0;
    --pool;
    if (best_gain <= kEps && best_soft_gain <= kEps) {
      continue;  // not picky w.r.t. the current set
    }
    if (spent + cands[b].cost > cfg.budget + kEps) continue;
    // Guard screening of the extended set.
    std::vector<size_t> trial = selected;
    trial.push_back(b);
    NodeSet aff = aff_union;
    for (NodeId v : cands[b].affected) aff.Insert(v);
    OperatorSet trial_ops;
    for (size_t j : trial) trial_ops.push_back(cands[j].op);
    Query rw = ApplyOperators(q, trial_ops);
    CloseEstimate est = estimate(trial, aff, rw, 0);
    if (!est.guard_ok) continue;
    for (size_t j : conflicts[b]) {
      if (in_pool[j]) {
        in_pool[j] = 0;
        --pool;
      }
    }
    selected = std::move(trial);
    aff_union = std::move(aff);
    spent += cands[b].cost;
    current_cl = est.closeness;
    current_soft = soft_score(aff_union, rw, eval.context());
  }

  // Drop bootstrap operators that never paid off (estimated closeness
  // unchanged without them).
  bool shrunk = true;
  while (shrunk && selected.size() > 1 && !CancelRequested(cfg.cancel)) {
    shrunk = false;
    for (size_t i = 0; i < selected.size(); ++i) {
      if (CancelRequested(cfg.cancel)) break;
      std::vector<size_t> trial = selected;
      trial.erase(trial.begin() + static_cast<long>(i));
      NodeSet aff(std::vector<NodeId>{}, g.node_count());
      OperatorSet trial_ops;
      for (size_t j : trial) {
        trial_ops.push_back(cands[j].op);
        for (NodeId v : cands[j].affected) aff.Insert(v);
      }
      Query rw = ApplyOperators(q, trial_ops);
      CloseEstimate est = estimate(trial, aff, rw, 0);
      if (est.guard_ok && est.closeness >= current_cl - kEps) {
        selected = std::move(trial);
        current_cl = est.closeness;
        shrunk = true;
        break;
      }
    }
  }

  // Return the better of O_1 and O_2 (by the optimizer's own view).
  if (best_single >= 0 && cl_o1 > current_cl + kEps) {
    selected.assign(1, static_cast<size_t>(best_single));
    current_cl = cl_o1;
  }
  if (selected.empty()) {
    out.eval = eval.Evaluate(q);
    finish_ctx();
    return out;
  }
  OperatorSet ops;
  for (size_t j : selected) ops.push_back(cands[j].op);
  out.found = true;
  out.ops = std::move(ops);
  out.rewritten = ApplyOperators(q, out.ops);
  out.cost = cost.Cost(out.ops);
  out.eval = eval.Evaluate(out.rewritten);
  out.estimated_closeness = current_cl;
  out.found = out.eval.guard_ok && out.eval.closeness > 0.0;
  finish_ctx();
  return out;
}

}  // namespace

RewriteAnswer ApproxWhy(const Graph& g, const Query& q,
                        const std::vector<NodeId>& answers,
                        const WhyQuestion& w, const AnswerConfig& cfg) {
  return GreedyWhy(g, q, answers, w, cfg, /*exact=*/false);
}

RewriteAnswer IsoWhy(const Graph& g, const Query& q,
                     const std::vector<NodeId>& answers, const WhyQuestion& w,
                     const AnswerConfig& cfg) {
  return GreedyWhy(g, q, answers, w, cfg, /*exact=*/true);
}

}  // namespace whyq
