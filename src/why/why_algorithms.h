#ifndef WHYQ_WHY_WHY_ALGORITHMS_H_
#define WHYQ_WHY_WHY_ALGORITHMS_H_

#include <string>
#include <vector>

#include "graph/graph.h"
#include "query/query.h"
#include "rewrite/evaluation.h"
#include "rewrite/operators.h"
#include "why/question.h"

namespace whyq {

// Thread-safety contract (all six algorithm entry points, both headers):
// every call builds its own evaluators/match state, reading only const
// inputs, so concurrent calls over one shared Graph are safe. Within a
// call, cfg.threads > 1 fans the MBS verification (exact) or the
// marginal-gain scans (greedy) out over ThreadPool::Shared(); results are
// byte-identical to cfg.threads == 1 whenever truncation is deterministic
// (cfg.exact_time_limit_ms == 0) — see why/exact_search.h and
// docs/ARCHITECTURE.md "Intra-question parallelism".

/// The outcome of answering a Why/Why-not question: the chosen operator set
/// O, the induced rewrite Q' = Q ⊕ O, its editing cost, and its *exact*
/// evaluation (closeness + guard), regardless of whether the algorithm
/// optimized exactly or by estimate.
struct RewriteAnswer {
  bool found = false;  // a non-empty valid operator set was selected
  OperatorSet ops;
  Query rewritten;
  double cost = 0.0;
  EvalResult eval;                    // exact closeness/guard of `rewritten`
  double estimated_closeness = 0.0;   // the optimizer's own view (approx/fast)
  size_t picky_count = 0;             // |O_s|
  size_t sets_enumerated = 0;         // MBS emitted by the DFS (exact only)
  size_t sets_verified = 0;           // MBS verified / greedy steps taken
  bool exhaustive = false;            // exact enumeration was not truncated
  // Candidate-memo (MatchContext) counters summed over every evaluator the
  // question used — the main evaluator plus all parallel executor slots.
  // All zero under simulation semantics (no context there).
  uint64_t ctx_hits = 0;          // memoized candidate-set lookups served
  uint64_t ctx_misses = 0;        // sets built by scanning a label bucket
  uint64_t ctx_delta_builds = 0;  // sets built by filtering a cached parent
  uint64_t ctx_pruned = 0;        // match attempts skipped via bitmaps

  /// One-line explanation: the operators and the achieved closeness.
  std::string Explain(const Graph& g) const;
};

/// ExactWhy (Fig. 3): enumerates maximal bounded sets over the refinement
/// picky set, verifies each with the incremental Match, early-terminates at
/// closeness 1, and (optionally, cfg.minimize_cost) post-processes the
/// winner into a cost-minimal subset preserving its closeness.
/// Worst-case exponential in |O_s| (one Match per maximal bounded set);
/// bounded in practice by cfg.max_mbs / cfg.exact_time_limit_ms, reported
/// via RewriteAnswer::exhaustive. When enumeration was truncated, seeds
/// the result with ApproxWhy's answer if that is closer (or as close but
/// cheaper).
RewriteAnswer ExactWhy(const Graph& g, const Query& q,
                       const std::vector<NodeId>& answers,
                       const WhyQuestion& w, const AnswerConfig& cfg);

/// ApproxWhy (Fig. 4): budgeted-submodular greedy over estimated marginal
/// gains (EstMatch), with the paper's (1/2)(1-1/e) - 6B*eps guarantee.
/// Verifies each picky operator exactly once; all set-level closenesses are
/// estimated via per-operator affected sets + path tests. O(|O_s|) Match
/// calls up front, then O(|O_s|^2) cheap path-index probes across rounds.
RewriteAnswer ApproxWhy(const Graph& g, const Query& q,
                        const std::vector<NodeId>& answers,
                        const WhyQuestion& w, const AnswerConfig& cfg);

/// IsoWhy: ApproxWhy's greedy with exact Match in place of EstMatch
/// (epsilon = 0, at O(|O_s|^2) isomorphism tests — the paper's baseline).
RewriteAnswer IsoWhy(const Graph& g, const Query& q,
                     const std::vector<NodeId>& answers, const WhyQuestion& w,
                     const AnswerConfig& cfg);

}  // namespace whyq

#endif  // WHYQ_WHY_WHY_ALGORITHMS_H_
