#include "why/whynot_algorithms.h"

#include <algorithm>
#include <limits>
#include <memory>
#include <optional>

#include "common/thread_pool.h"
#include "common/timer.h"
#include "matcher/path_index.h"
#include "rewrite/cost_model.h"
#include "rewrite/evaluation.h"
#include "why/est_match.h"
#include "why/exact_search.h"
#include "why/mbs.h"
#include "why/picky.h"

namespace whyq {

namespace {

constexpr double kEps = 1e-9;

// Folds accumulated candidate-memo counters into the answer's ctx_* fields.
void FillContextStats(RewriteAnswer& out, const MatchContext::Stats& s) {
  out.ctx_hits = s.hits;
  out.ctx_misses = s.misses;
  out.ctx_delta_builds = s.delta_builds;
  out.ctx_pruned = s.pruned;
}

// Polls `cancel` per dropped-operator trial (each trial is a full exact
// evaluation); an expiring deadline keeps the current valid rewrite.
void MinimizeCostWhyNot(const Query& q, const WhyNotEvaluator& eval,
                        const CostModel& cost, const CancelToken* cancel,
                        OperatorSet& ops, EvalResult& result,
                        Query& rewritten) {
  bool changed = true;
  while (changed && ops.size() > 1 && !CancelRequested(cancel)) {
    changed = false;
    std::vector<size_t> order(ops.size());
    for (size_t i = 0; i < order.size(); ++i) order[i] = i;
    std::sort(order.begin(), order.end(), [&](size_t a, size_t b) {
      return cost.Cost(ops[a]) > cost.Cost(ops[b]);
    });
    for (size_t i : order) {
      if (CancelRequested(cancel)) return;
      OperatorSet trial = ops;
      trial.erase(trial.begin() + static_cast<long>(i));
      Query trial_q = ApplyOperators(q, trial);
      EvalResult trial_eval = eval.Evaluate(trial_q);
      if (trial_eval.guard_ok &&
          trial_eval.closeness >= result.closeness - kEps) {
        ops = std::move(trial);
        rewritten = std::move(trial_q);
        result = trial_eval;
        changed = true;
        break;
      }
    }
  }
}

}  // namespace

RewriteAnswer ExactWhyNot(const Graph& g, const Query& q,
                          const std::vector<NodeId>& answers,
                          const WhyNotQuestion& w, const AnswerConfig& cfg) {
  RewriteAnswer out;
  out.rewritten = q;
  WhyNotEvaluator eval(g, answers, w, cfg.guard_m, cfg.semantics,
                       cfg.cancel);
  CostModel cost(q, g, cfg.weighted_cost);

  std::vector<EditOp> picky = GenPickyWhyNot(g, q, eval.missing(), cfg);
  std::vector<EditOp> usable;
  std::vector<double> costs;
  for (EditOp& op : picky) {
    double c = cost.Cost(op);
    if (c <= cfg.budget + kEps) {
      usable.push_back(std::move(op));
      costs.push_back(c);
    }
  }
  out.picky_count = usable.size();

  // Guard-admissible MBS search shared with ExactWhy; possibly parallel,
  // bit-identical to serial either way (see why/exact_search.h).
  internal::ExactSearchOutcome search =
      internal::ExactMbsSearch<WhyNotEvaluator>(
          q, usable, costs, cost, cfg, eval, [&] {
            return std::make_unique<WhyNotEvaluator>(
                g, answers, w, cfg.guard_m, cfg.semantics, cfg.cancel);
          });
  double best_cl = search.best_cl;
  double best_cost = search.best_cost;
  OperatorSet best_ops = std::move(search.best_ops);
  EvalResult best_eval = search.best_eval;
  out.sets_enumerated = search.stats.emitted;
  out.sets_verified = search.verified;
  out.exhaustive = !search.stats.truncated && !search.timed_out;
  MatchContext::Stats ctx_stats = search.ctx;  // slot evaluators' share

  // Fallback under truncation (see ExactWhy): never worse than the fast
  // heuristic. Skipped once the request itself is cancelled/past deadline.
  if (!out.exhaustive && !CancelRequested(cfg.cancel)) {
    RewriteAnswer seed = FastWhyNot(g, q, answers, w, cfg);
    ctx_stats.hits += seed.ctx_hits;  // the seeding work happened regardless
    ctx_stats.misses += seed.ctx_misses;
    ctx_stats.delta_builds += seed.ctx_delta_builds;
    ctx_stats.pruned += seed.ctx_pruned;
    if (seed.found && seed.eval.guard_ok &&
        seed.cost <= cfg.budget + kEps &&
        (seed.eval.closeness > best_cl + kEps ||
         (seed.eval.closeness > best_cl - kEps && seed.cost < best_cost))) {
      best_cl = seed.eval.closeness;
      best_cost = seed.cost;
      best_ops = std::move(seed.ops);
      best_eval = seed.eval;
    }
  }

  if (best_cl < 0.0 || best_ops.empty()) {
    out.eval = eval.Evaluate(q);
    ctx_stats.Add(eval.ContextStats());
    FillContextStats(out, ctx_stats);
    return out;
  }
  out.found = best_eval.closeness > 0.0;
  out.ops = std::move(best_ops);
  out.rewritten = ApplyOperators(q, out.ops);
  out.eval = best_eval;
  if (cfg.minimize_cost && !CancelRequested(cfg.cancel)) {
    MinimizeCostWhyNot(q, eval, cost, cfg.cancel, out.ops, out.eval,
                       out.rewritten);
  }
  out.cost = cost.Cost(out.ops);
  out.estimated_closeness = out.eval.closeness;
  ctx_stats.Add(eval.ContextStats());
  FillContextStats(out, ctx_stats);
  return out;
}

namespace {

// Shared greedy skeleton for FastWhyNot / IsoWhyNot.
RewriteAnswer GreedyWhyNot(const Graph& g, const Query& q,
                           const std::vector<NodeId>& answers,
                           const WhyNotQuestion& w, const AnswerConfig& cfg,
                           bool exact) {
  RewriteAnswer out;
  out.exhaustive = true;  // greedy: nothing to truncate (unless cancelled)
  out.rewritten = q;
  WhyNotEvaluator eval(g, answers, w, cfg.guard_m, cfg.semantics,
                       cfg.cancel);
  CostModel cost(q, g, cfg.weighted_cost);
  std::optional<PathIndex> own_pidx;
  if (cfg.path_index == nullptr) own_pidx.emplace(q, cfg.path_index_paths);
  const PathIndex& pidx = cfg.path_index ? *cfg.path_index : *own_pidx;

  const NodeSet& protected_set = eval.protected_set();

  // Intra-question parallelism: evaluators own a stateful MatchEngine, so
  // each concurrent executor slot gets its own clone (slot 0 reuses `eval`).
  const size_t width = ResolveParallelWidth(cfg.threads);
  std::vector<std::unique_ptr<WhyNotEvaluator>> slot_evals;  // 1..width-1
  for (size_t s = 1; s < width; ++s) {
    slot_evals.push_back(std::make_unique<WhyNotEvaluator>(
        g, answers, w, cfg.guard_m, cfg.semantics, cfg.cancel));
  }
  auto eval_at = [&](size_t slot) -> const WhyNotEvaluator& {
    return slot == 0 ? eval : *slot_evals[slot - 1];
  };
  // Sum the candidate-memo counters across every evaluator this question
  // touched; called once per exit path.
  auto finish_ctx = [&] {
    MatchContext::Stats c = eval.ContextStats();
    for (const auto& se : slot_evals) c.Add(se->ContextStats());
    FillContextStats(out, c);
  };

  std::vector<EditOp> picky = GenPickyWhyNot(g, q, eval.missing(), cfg);
  struct Cand {
    EditOp op;
    double cost = 0.0;
    std::vector<NodeId> covered;  // estimated (or exact) new matches in V_C
  };
  // Budget screen (cheap, serial) fixes the candidate indexing; the
  // per-candidate coverage probes — exact NewMatches or PathIndex tests —
  // then run on the pool, one evaluator per executor slot.
  std::vector<Cand> cands;
  for (EditOp& op : picky) {
    double c = cost.Cost(op);
    if (c > cfg.budget + kEps) continue;
    Cand cand;
    cand.op = std::move(op);
    cand.cost = c;
    cands.push_back(std::move(cand));
  }
  std::vector<uint8_t> prepped(cands.size(), 0);
  ThreadPool::Shared().ParallelFor(
      cands.size(), width, [&](size_t i, size_t slot) {
        if (CancelRequested(cfg.cancel)) return;  // prefix-kept below
        const WhyNotEvaluator& ev = eval_at(slot);
        Cand& cand = cands[i];
        Query single = ApplyOperators(q, {cand.op});
        if (exact) {
          cand.covered = ev.NewMatches(single);
        } else {
          for (NodeId v : ev.missing()) {
            if (pidx.Passes(g, single, v, ev.context())) {
              cand.covered.push_back(v);
            }
          }
        }
        prepped[i] = 1;
      });
  // Cancellation mid-prep: keep the longest fully-scored prefix — exactly
  // the candidates a serial run would have kept before breaking out.
  size_t scored_prefix = 0;
  while (scored_prefix < cands.size() && prepped[scored_prefix]) {
    ++scored_prefix;
  }
  if (scored_prefix < cands.size()) {
    out.exhaustive = false;
    cands.resize(scored_prefix);
  }
  out.picky_count = cands.size();

  // Conflict adjacency: operators editing the same literal/edge cannot
  // be co-selected.
  std::vector<EditOp> cand_ops;
  cand_ops.reserve(cands.size());
  for (const auto& c : cands) cand_ops.push_back(c.op);
  std::vector<std::vector<size_t>> conflicts = BuildConflicts(cand_ops);

  auto estimate = [&](const NodeSet& covered_union, const Query& rw,
                      size_t slot) -> CloseEstimate {
    if (exact) {
      (void)covered_union;
      EvalResult r = eval_at(slot).Evaluate(rw);
      CloseEstimate e;
      e.closeness = r.closeness;
      e.guard = r.guard;
      e.guard_ok = r.guard_ok;
      return e;
    }
    return EstimateWhyNot(g, rw, pidx, covered_union, eval.missing(),
                          protected_set, cfg.guard_m, cfg.est_guard_scan,
                          eval_at(slot).context());
  };

  // Soft (partial-credit) score: how far along each missing entity is
  // toward matching. Single relaxations frequently have zero hard marginal
  // gain (an entity needs several constraints lifted at once); the soft
  // score lets the greedy bootstrap such combinations (see DESIGN.md).
  auto soft_score = [&](const NodeSet& covered_union, const Query& rw,
                        MatchContext* ctx) {
    double s = 0.0;
    for (NodeId v : eval.missing()) {
      s += covered_union.Contains(v) ? 1.0
                                     : pidx.PassFraction(g, rw, v, ctx);
    }
    return eval.missing().empty()
               ? 0.0
               : s / static_cast<double>(eval.missing().size());
  };

  std::vector<size_t> selected;
  NodeSet covered(std::vector<NodeId>{}, g.node_count());
  double spent = 0.0;
  double current_cl = 0.0;
  double current_soft = soft_score(covered, q, eval.context());
  std::vector<uint8_t> in_pool(cands.size(), 1);
  size_t pool = cands.size();

  while (pool > 0 && current_cl < 1.0 - kEps) {
    if (CancelRequested(cfg.cancel)) {
      out.exhaustive = false;
      break;  // keep the greedy prefix selected so far
    }
    ++out.sets_verified;
    // Score every pool candidate (parallel across executor slots), then
    // pick the winner serially in ascending candidate order — the same
    // argmax and tie-break (ratio must beat the incumbent by kEps) as the
    // serial scan, so parallel rounds select identical operators.
    std::vector<size_t> pool_idx;
    pool_idx.reserve(pool);
    for (size_t i = 0; i < cands.size(); ++i) {
      if (in_pool[i]) pool_idx.push_back(i);
    }
    struct Score {
      double ratio = -1.0;
      double gain = 0.0;
      double soft_gain = 0.0;
    };
    std::vector<Score> scores(pool_idx.size());
    ThreadPool::Shared().ParallelFor(
        pool_idx.size(), width, [&](size_t k, size_t slot) {
          size_t i = pool_idx[k];
          NodeSet cov = covered;
          for (NodeId v : cands[i].covered) cov.Insert(v);
          OperatorSet trial_ops;
          for (size_t j : selected) trial_ops.push_back(cands[j].op);
          trial_ops.push_back(cands[i].op);
          Query rw = ApplyOperators(q, trial_ops);
          CloseEstimate est = estimate(cov, rw, slot);
          Score& s = scores[k];
          s.gain = est.closeness - current_cl;
          // Hard gains dominate; soft gains break zero-gain ties.
          s.soft_gain =
              soft_score(cov, rw, eval_at(slot).context()) - current_soft;
          s.ratio = (s.gain + 1e-3 * s.soft_gain) / cands[i].cost;
        });
    long best = -1;
    double best_ratio = -1.0;
    double best_gain = 0.0;
    double best_soft_gain = 0.0;
    for (size_t k = 0; k < pool_idx.size(); ++k) {
      if (scores[k].ratio > best_ratio + kEps) {
        best_ratio = scores[k].ratio;
        best = static_cast<long>(pool_idx[k]);
        best_gain = scores[k].gain;
        best_soft_gain = scores[k].soft_gain;
      }
    }
    if (best < 0) break;
    size_t b = static_cast<size_t>(best);
    in_pool[b] = 0;
    --pool;
    if (best_gain <= kEps && best_soft_gain <= kEps) continue;
    if (spent + cands[b].cost > cfg.budget + kEps) continue;
    NodeSet cov = covered;
    for (NodeId v : cands[b].covered) cov.Insert(v);
    OperatorSet trial_ops;
    for (size_t j : selected) trial_ops.push_back(cands[j].op);
    trial_ops.push_back(cands[b].op);
    Query rw = ApplyOperators(q, trial_ops);
    CloseEstimate est = estimate(cov, rw, 0);
    if (!est.guard_ok) continue;
    for (size_t j : conflicts[b]) {
      if (in_pool[j]) {
        in_pool[j] = 0;
        --pool;
      }
    }
    selected.push_back(b);
    covered = std::move(cov);
    spent += cands[b].cost;
    current_cl = est.closeness;
    current_soft = soft_score(covered, rw, eval.context());
  }

  if (selected.empty()) {
    out.eval = eval.Evaluate(q);
    finish_ctx();
    return out;
  }
  // Drop operators that no longer contribute to the (estimated) closeness —
  // bootstrap steps that never paid off.
  bool changed = true;
  while (changed && selected.size() > 1 && !CancelRequested(cfg.cancel)) {
    changed = false;
    for (size_t i = 0; i < selected.size(); ++i) {
      if (CancelRequested(cfg.cancel)) break;
      std::vector<size_t> trial = selected;
      trial.erase(trial.begin() + static_cast<long>(i));
      NodeSet cov(std::vector<NodeId>{}, g.node_count());
      OperatorSet trial_ops;
      for (size_t j : trial) {
        trial_ops.push_back(cands[j].op);
        for (NodeId v : cands[j].covered) cov.Insert(v);
      }
      Query rw = ApplyOperators(q, trial_ops);
      CloseEstimate est = estimate(cov, rw, 0);
      if (est.guard_ok && est.closeness >= current_cl - kEps) {
        selected = std::move(trial);
        current_cl = est.closeness;
        changed = true;
        break;
      }
    }
  }
  OperatorSet ops;
  for (size_t j : selected) ops.push_back(cands[j].op);
  out.ops = std::move(ops);
  out.rewritten = ApplyOperators(q, out.ops);
  out.cost = cost.Cost(out.ops);
  out.eval = eval.Evaluate(out.rewritten);
  out.estimated_closeness = current_cl;
  out.found = out.eval.guard_ok && out.eval.closeness > 0.0;
  finish_ctx();
  return out;
}

}  // namespace

RewriteAnswer FastWhyNot(const Graph& g, const Query& q,
                         const std::vector<NodeId>& answers,
                         const WhyNotQuestion& w, const AnswerConfig& cfg) {
  return GreedyWhyNot(g, q, answers, w, cfg, /*exact=*/false);
}

RewriteAnswer IsoWhyNot(const Graph& g, const Query& q,
                        const std::vector<NodeId>& answers,
                        const WhyNotQuestion& w, const AnswerConfig& cfg) {
  return GreedyWhyNot(g, q, answers, w, cfg, /*exact=*/true);
}

}  // namespace whyq
