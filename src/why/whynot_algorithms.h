#ifndef WHYQ_WHY_WHYNOT_ALGORITHMS_H_
#define WHYQ_WHY_WHYNOT_ALGORITHMS_H_

#include <vector>

#include "graph/graph.h"
#include "query/query.h"
#include "why/question.h"
#include "why/why_algorithms.h"

namespace whyq {

// Thread-safety and cfg.threads semantics are shared with the Why side —
// see the contract note at the top of why/why_algorithms.h.

/// ExactWhyNot (Section V-A): the Why-side exact scheme with relaxation
/// picky operators (Lemma 7) — MBS enumeration, incremental verification of
/// V_C inclusion, early-terminating guard counting, early break at
/// closeness 1, optional cost-minimizing post-processing. Worst-case
/// exponential in |O_s| (one Match per maximal bounded set), bounded by
/// cfg.max_mbs / cfg.exact_time_limit_ms; seeds from FastWhyNot when
/// enumeration was truncated.
RewriteAnswer ExactWhyNot(const Graph& g, const Query& q,
                          const std::vector<NodeId>& answers,
                          const WhyNotQuestion& w, const AnswerConfig& cfg);

/// FastWhyNot (Section V-B): budgeted-max-cover greedy over *estimated*
/// new matches — per-operator coverage and set-level screening both use the
/// sampled path index, so the selection loop performs no subgraph
/// isomorphism test at all (the returned answer is still evaluated exactly
/// for reporting). O(|V_C| * |O_s|) path-index probes up front, then
/// O(|O_s|^2) probe-based rounds — no Match until the final evaluation.
RewriteAnswer FastWhyNot(const Graph& g, const Query& q,
                         const std::vector<NodeId>& answers,
                         const WhyNotQuestion& w, const AnswerConfig& cfg);

/// IsoWhyNot: FastWhyNot's greedy with exact Match-based marginal gains
/// (the paper's costlier baseline).
RewriteAnswer IsoWhyNot(const Graph& g, const Query& q,
                        const std::vector<NodeId>& answers,
                        const WhyNotQuestion& w, const AnswerConfig& cfg);

}  // namespace whyq

#endif  // WHYQ_WHY_WHYNOT_ALGORITHMS_H_
