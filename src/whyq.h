#ifndef WHYQ_WHYQ_H_
#define WHYQ_WHYQ_H_

/// Umbrella header for the whyq library: answering Why and Why-not
/// questions for subgraph queries in multi-attributed graphs (reproduction
/// of Song, Namaki, Wu — ICDE 2019; see DESIGN.md).
///
/// Typical usage:
///   whyq::Graph g = ...;                       // graph/ or gen/
///   whyq::Query q = ...;                       // query/ (or the DSL parser)
///   whyq::Matcher matcher(g);
///   std::vector<whyq::NodeId> ans = matcher.MatchOutput(q);
///   whyq::WhyQuestion why{{ans[0]}};           // "why is ans[0] returned?"
///   whyq::AnswerConfig cfg;
///   whyq::RewriteAnswer a = whyq::ApproxWhy(g, q, ans, why, cfg);
///   std::cout << a.Explain(g) << "\n";

#include "common/cancel.h"
#include "common/dictionary.h"
#include "common/metrics.h"
#include "common/rng.h"
#include "common/table.h"
#include "common/timer.h"
#include "common/value.h"
#include "gen/bsbm.h"
#include "gen/profiles.h"
#include "gen/query_gen.h"
#include "gen/question_gen.h"
#include "graph/graph.h"
#include "graph/edge_list.h"
#include "graph/graph_io.h"
#include "graph/graph_stats.h"
#include "graph/neighborhood.h"
#include "graph/snapshot.h"
#include "harness/experiment.h"
#include "matcher/candidates.h"
#include "matcher/match_context.h"
#include "matcher/match_engine.h"
#include "matcher/matcher.h"
#include "matcher/simulation.h"
#include "matcher/path_index.h"
#include "query/query.h"
#include "query/query_dot.h"
#include "query/query_parser.h"
#include "rewrite/cost_model.h"
#include "service/prepared.h"
#include "service/request.h"
#include "service/service.h"
#include "service/stats.h"
#include "rewrite/evaluation.h"
#include "rewrite/explanation.h"
#include "rewrite/operators.h"
#include "why/est_match.h"
#include "why/extensions.h"
#include "why/mbs.h"
#include "why/picky.h"
#include "why/question.h"
#include "why/why_algorithms.h"
#include "why/whynot_algorithms.h"

#endif  // WHYQ_WHYQ_H_
