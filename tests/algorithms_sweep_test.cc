// Parameterized cross-profile sweeps of the six algorithms: for every
// dataset profile and both match semantics, the returned rewrites must
// satisfy the structural contracts (operator families, budget, guard,
// exhaustiveness/time-limit reporting, closeness consistency).

#include <gtest/gtest.h>

#include <set>

#include "gen/profiles.h"
#include "harness/experiment.h"
#include "matcher/match_engine.h"
#include "why/why_algorithms.h"
#include "why/whynot_algorithms.h"

namespace whyq {
namespace {

struct SweepCase {
  DatasetProfile profile;
  MatchSemantics semantics;
};

std::string CaseName(const testing::TestParamInfo<SweepCase>& info) {
  return std::string(DatasetProfileName(info.param.profile)) + "_" +
         MatchSemanticsName(info.param.semantics);
}

class AlgoSweepTest : public testing::TestWithParam<SweepCase> {
 protected:
  // One shared workload per (profile, semantics); graphs are cached across
  // test instances to keep the sweep fast on one core.
  static const Graph& GraphFor(DatasetProfile p) {
    static std::map<int, Graph>* cache = new std::map<int, Graph>();
    auto it = cache->find(static_cast<int>(p));
    if (it == cache->end()) {
      it = cache
               ->emplace(static_cast<int>(p),
                         GenerateProfile(p, 2500, 31))
               .first;
    }
    return it->second;
  }
};

TEST_P(AlgoSweepTest, ContractsHold) {
  SweepCase param = GetParam();
  const Graph& g = GraphFor(param.profile);
  WorkloadConfig wc;
  wc.items = 2;
  wc.query.edges = 3;
  wc.query.min_answers = 4;
  wc.query.slack = 0.6;
  wc.seed = 77;
  Workload w = MakeWorkload(g, wc);
  if (w.items.empty()) GTEST_SKIP() << "no workload on this profile";

  AnswerConfig cfg;
  cfg.budget = 4.0;
  cfg.guard_m = 2;
  cfg.semantics = param.semantics;
  cfg.max_picky_ops = 96;
  cfg.exact_time_limit_ms = 1500;

  std::unique_ptr<MatchEngine> engine =
      MakeMatchEngine(g, param.semantics);

  for (const Workload::Item& item : w.items) {
    // Under simulation semantics the answer set differs; recompute.
    std::vector<NodeId> answers = engine->MatchOutput(item.gq.query);
    if (answers.empty()) continue;
    WhyQuestion why{{answers[0]}};

    for (auto algo : {&ExactWhy, &ApproxWhy, &IsoWhy}) {
      RewriteAnswer a = algo(g, item.gq.query, answers, why, cfg);
      EXPECT_LE(a.cost, cfg.budget + 1e-9);
      for (const EditOp& op : a.ops) EXPECT_TRUE(IsRefinement(op.kind));
      if (a.found) {
        EXPECT_TRUE(a.eval.guard_ok);
        EXPECT_GT(a.eval.closeness, 0.0);
        // Reported closeness must agree with an independent evaluation.
        size_t excluded = 0;
        for (NodeId v : why.unexpected) {
          excluded += engine->IsAnswer(a.rewritten, v) ? 0 : 1;
        }
        EXPECT_DOUBLE_EQ(a.eval.closeness,
                         static_cast<double>(excluded) /
                             static_cast<double>(why.unexpected.size()));
      }
    }

    for (auto algo : {&ExactWhyNot, &FastWhyNot, &IsoWhyNot}) {
      RewriteAnswer a =
          algo(g, item.gq.query, answers, item.whynot, cfg);
      EXPECT_LE(a.cost, cfg.budget + 1e-9);
      for (const EditOp& op : a.ops) EXPECT_TRUE(IsRelaxation(op.kind));
      if (a.found) {
        EXPECT_TRUE(a.eval.guard_ok);
        // Relaxation preserves the current answers (Lemma 1).
        for (NodeId v : answers) {
          EXPECT_TRUE(engine->IsAnswer(a.rewritten, v));
        }
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Profiles, AlgoSweepTest,
    testing::Values(
        SweepCase{DatasetProfile::kDBpedia, MatchSemantics::kIsomorphism},
        SweepCase{DatasetProfile::kYago, MatchSemantics::kIsomorphism},
        SweepCase{DatasetProfile::kFreebase, MatchSemantics::kIsomorphism},
        SweepCase{DatasetProfile::kPokec, MatchSemantics::kIsomorphism},
        SweepCase{DatasetProfile::kIMDb, MatchSemantics::kIsomorphism},
        SweepCase{DatasetProfile::kDBpedia, MatchSemantics::kSimulation},
        SweepCase{DatasetProfile::kIMDb, MatchSemantics::kSimulation}),
    CaseName);

TEST(TimeLimitTest, TinyLimitReportsNonExhaustive) {
  const Graph& g = GenerateProfile(DatasetProfile::kPokec, 2500, 31);
  WorkloadConfig wc;
  wc.items = 2;
  wc.query.edges = 4;
  wc.query.min_answers = 6;
  wc.seed = 5;
  Workload w = MakeWorkload(g, wc);
  if (w.items.empty()) GTEST_SKIP();
  AnswerConfig cfg;
  cfg.budget = 4.0;
  cfg.guard_m = 2;
  cfg.exact_time_limit_ms = 0.001;  // essentially immediate
  bool saw_truncation = false;
  for (const Workload::Item& item : w.items) {
    RewriteAnswer a =
        ExactWhy(g, item.gq.query, item.gq.answers, item.why, cfg);
    saw_truncation |= !a.exhaustive;
    // Even truncated runs return structurally valid answers.
    EXPECT_LE(a.cost, cfg.budget + 1e-9);
  }
  EXPECT_TRUE(saw_truncation);
}

}  // namespace
}  // namespace whyq
