#include <gtest/gtest.h>

#include <algorithm>

#include "gen/figure1.h"
#include "matcher/matcher.h"
#include "why/why_algorithms.h"
#include "why/whynot_algorithms.h"

namespace whyq {
namespace {

class AlgorithmsTest : public testing::Test {
 protected:
  AlgorithmsTest() : f_(MakeFigure1()) {
    answers_ = {f_.a5, f_.s5, f_.s6};
    cfg_.budget = 4.0;
    cfg_.guard_m = 0;
  }
  Figure1 f_;
  std::vector<NodeId> answers_;
  AnswerConfig cfg_;
};

TEST_F(AlgorithmsTest, ExactWhySolvesFigure1Optimally) {
  WhyQuestion w{{f_.a5, f_.s5}};
  RewriteAnswer a = ExactWhy(f_.graph, f_.query, answers_, w, cfg_);
  ASSERT_TRUE(a.found);
  EXPECT_DOUBLE_EQ(a.eval.closeness, 1.0);
  EXPECT_TRUE(a.eval.guard_ok);
  EXPECT_LE(a.cost, cfg_.budget + 1e-9);
  EXPECT_TRUE(a.exhaustive);
  // The rewrite must exclude A5/S5 but keep S6.
  Matcher m(f_.graph);
  EXPECT_FALSE(m.IsAnswer(a.rewritten, f_.a5));
  EXPECT_FALSE(m.IsAnswer(a.rewritten, f_.s5));
  EXPECT_TRUE(m.IsAnswer(a.rewritten, f_.s6));
}

TEST_F(AlgorithmsTest, ExactWhyUsesOnlyRefinements) {
  WhyQuestion w{{f_.a5, f_.s5}};
  RewriteAnswer a = ExactWhy(f_.graph, f_.query, answers_, w, cfg_);
  for (const EditOp& op : a.ops) EXPECT_TRUE(IsRefinement(op.kind));
}

TEST_F(AlgorithmsTest, ApproxWhyNearOptimalOnFigure1) {
  WhyQuestion w{{f_.a5, f_.s5}};
  RewriteAnswer exact = ExactWhy(f_.graph, f_.query, answers_, w, cfg_);
  RewriteAnswer approx = ApproxWhy(f_.graph, f_.query, answers_, w, cfg_);
  ASSERT_TRUE(approx.found);
  EXPECT_TRUE(approx.eval.guard_ok);
  EXPECT_LE(approx.cost, cfg_.budget + 1e-9);
  // Paper: ApproxWhy preserves at least ~half the optimal closeness; on
  // this tiny instance it should be far better.
  EXPECT_GE(approx.eval.closeness, 0.5 * exact.eval.closeness);
}

TEST_F(AlgorithmsTest, IsoWhyAtLeastAsCloseAsApprox) {
  WhyQuestion w{{f_.a5, f_.s5}};
  RewriteAnswer iso = IsoWhy(f_.graph, f_.query, answers_, w, cfg_);
  ASSERT_TRUE(iso.found);
  EXPECT_DOUBLE_EQ(iso.eval.closeness, 1.0);
  EXPECT_TRUE(iso.eval.guard_ok);
}

TEST_F(AlgorithmsTest, WhySingleUnexpected) {
  WhyQuestion w{{f_.s5}};
  RewriteAnswer a = ExactWhy(f_.graph, f_.query, answers_, w, cfg_);
  ASSERT_TRUE(a.found);
  EXPECT_DOUBLE_EQ(a.eval.closeness, 1.0);
  Matcher m(f_.graph);
  EXPECT_TRUE(m.IsAnswer(a.rewritten, f_.a5));
  EXPECT_TRUE(m.IsAnswer(a.rewritten, f_.s6));
}

TEST_F(AlgorithmsTest, WhyRespectsTinyBudget) {
  WhyQuestion w{{f_.a5, f_.s5}};
  AnswerConfig tiny = cfg_;
  tiny.budget = 1.0;  // only a single neighbor-node operator fits
  RewriteAnswer a = ExactWhy(f_.graph, f_.query, answers_, w, tiny);
  EXPECT_LE(a.cost, 1.0 + 1e-9);
  // Guard must hold even under pressure.
  EXPECT_TRUE(a.eval.guard_ok);
}

TEST_F(AlgorithmsTest, WhyEmptyQuestionFindsNothing) {
  WhyQuestion w{{}};
  RewriteAnswer a = ExactWhy(f_.graph, f_.query, answers_, w, cfg_);
  EXPECT_FALSE(a.found);
  a = ApproxWhy(f_.graph, f_.query, answers_, w, cfg_);
  EXPECT_FALSE(a.found);
}

TEST_F(AlgorithmsTest, WhyCostMinimizationShrinksOps) {
  WhyQuestion w{{f_.a5, f_.s5}};
  AnswerConfig no_min = cfg_;
  no_min.minimize_cost = false;
  RewriteAnswer with_min = ExactWhy(f_.graph, f_.query, answers_, w, cfg_);
  RewriteAnswer without = ExactWhy(f_.graph, f_.query, answers_, w, no_min);
  EXPECT_LE(with_min.cost, without.cost + 1e-9);
  EXPECT_DOUBLE_EQ(with_min.eval.closeness, without.eval.closeness);
}

TEST_F(AlgorithmsTest, ExactWhyNotCoversBothMissing) {
  WhyNotQuestion w;
  w.missing = {f_.s8, f_.s9};
  AnswerConfig cfg = cfg_;
  cfg.budget = 4.5;
  cfg.guard_m = 2;
  RewriteAnswer a = ExactWhyNot(f_.graph, f_.query, answers_, w, cfg);
  ASSERT_TRUE(a.found);
  EXPECT_DOUBLE_EQ(a.eval.closeness, 1.0);
  EXPECT_TRUE(a.eval.guard_ok);
  for (const EditOp& op : a.ops) EXPECT_TRUE(IsRelaxation(op.kind));
  Matcher m(f_.graph);
  EXPECT_TRUE(m.IsAnswer(a.rewritten, f_.s8));
  EXPECT_TRUE(m.IsAnswer(a.rewritten, f_.s9));
  // Relaxation preserves the original answers (Lemma 1).
  for (NodeId v : answers_) EXPECT_TRUE(m.IsAnswer(a.rewritten, v));
}

TEST_F(AlgorithmsTest, FastWhyNotNearOptimal) {
  WhyNotQuestion w;
  w.missing = {f_.s8, f_.s9};
  AnswerConfig cfg = cfg_;
  cfg.budget = 5.0;
  cfg.guard_m = 2;
  RewriteAnswer exact = ExactWhyNot(f_.graph, f_.query, answers_, w, cfg);
  RewriteAnswer fast = FastWhyNot(f_.graph, f_.query, answers_, w, cfg);
  ASSERT_TRUE(fast.found);
  EXPECT_GE(fast.eval.closeness, 0.5 * exact.eval.closeness);
  EXPECT_LE(fast.cost, cfg.budget + 1e-9);
}

TEST_F(AlgorithmsTest, IsoWhyNotFindsRewrite) {
  WhyNotQuestion w;
  w.missing = {f_.s8};
  AnswerConfig cfg = cfg_;
  cfg.budget = 5.0;
  cfg.guard_m = 2;
  RewriteAnswer a = IsoWhyNot(f_.graph, f_.query, answers_, w, cfg);
  ASSERT_TRUE(a.found);
  Matcher m(f_.graph);
  EXPECT_TRUE(m.IsAnswer(a.rewritten, f_.s8));
}

TEST_F(AlgorithmsTest, WhyNotWithConditionRestrictsTargets) {
  WhyNotQuestion w;
  w.missing = {f_.s8, f_.s9};
  ConstraintLiteral os_ge8;
  os_ge8.attr = *f_.graph.attr_names().Find("OS");
  os_ge8.op = CompareOp::kGe;
  os_ge8.constant = Value(8.0);  // keeps only the S9
  w.condition.literals.push_back(os_ge8);
  AnswerConfig cfg = cfg_;
  cfg.budget = 5.0;
  cfg.guard_m = 2;
  RewriteAnswer a = ExactWhyNot(f_.graph, f_.query, answers_, w, cfg);
  ASSERT_TRUE(a.found);
  EXPECT_DOUBLE_EQ(a.eval.closeness, 1.0);
  Matcher m(f_.graph);
  EXPECT_TRUE(m.IsAnswer(a.rewritten, f_.s9));
}

TEST_F(AlgorithmsTest, WhyNotGuardBlocksFloodingRewrites) {
  // m = 0 and V_C = {S9}: any rewrite loose enough for the S9 also admits
  // the S8, so no valid rewrite exists.
  WhyNotQuestion w;
  w.missing = {f_.s9};
  AnswerConfig cfg = cfg_;
  cfg.budget = 6.0;
  cfg.guard_m = 0;
  RewriteAnswer a = ExactWhyNot(f_.graph, f_.query, answers_, w, cfg);
  if (a.found) {
    Matcher m(f_.graph);
    EXPECT_TRUE(m.IsAnswer(a.rewritten, f_.s9));
    EXPECT_FALSE(m.IsAnswer(a.rewritten, f_.s8));
  }
  EXPECT_TRUE(a.eval.guard_ok);
}

TEST_F(AlgorithmsTest, ExplainMentionsOperators) {
  WhyQuestion w{{f_.a5, f_.s5}};
  RewriteAnswer a = ExactWhy(f_.graph, f_.query, answers_, w, cfg_);
  std::string s = a.Explain(f_.graph);
  EXPECT_NE(s.find("closeness"), std::string::npos);
  RewriteAnswer none;
  EXPECT_NE(none.Explain(f_.graph).find("no valid rewrite"),
            std::string::npos);
}

}  // namespace
}  // namespace whyq
