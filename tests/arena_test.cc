// Arena unit tests: alignment guarantees, geometric growth, Reset()
// block reuse (the warm-up property the request slots rely on), oversized
// one-off blocks, and the lifetime allocation counter. Run under ASan in
// CI, so any out-of-bounds write into a block or leaked oversized block
// fails loudly here.

#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <vector>

#include "common/arena.h"

namespace whyq {
namespace {

TEST(ArenaTest, RespectsEveryPowerOfTwoAlignment) {
  Arena arena;
  for (size_t align : {size_t{1}, size_t{2}, size_t{4}, size_t{8},
                       size_t{16}, size_t{64}}) {
    for (size_t bytes : {size_t{1}, size_t{3}, size_t{17}, size_t{256}}) {
      void* p = arena.Allocate(bytes, align);
      ASSERT_NE(p, nullptr);
      EXPECT_EQ(reinterpret_cast<uintptr_t>(p) % align, 0u)
          << bytes << " bytes at align " << align;
      std::memset(p, 0xAB, bytes);  // ASan-checked writability
    }
  }
}

TEST(ArenaTest, ZeroByteAllocationsAreNonNull) {
  Arena arena;
  void* a = arena.Allocate(0, 1);
  void* b = arena.Allocate(0, 1);
  EXPECT_NE(a, nullptr);
  EXPECT_NE(b, nullptr);
  EXPECT_NE(a, b);  // each gets a distinct byte
}

TEST(ArenaTest, AllocationsDoNotOverlap) {
  Arena arena;
  // Fill many arrays with distinct patterns across several block
  // boundaries, then verify every pattern survived — an overlap or an
  // undersized block shows up as a clobbered pattern.
  constexpr size_t kArrays = 200;
  constexpr size_t kLen = 97;  // deliberately not a power of two
  std::vector<uint32_t*> arrays;
  for (size_t i = 0; i < kArrays; ++i) {
    uint32_t* a = arena.AllocateArray<uint32_t>(kLen);
    ASSERT_NE(a, nullptr);
    for (size_t j = 0; j < kLen; ++j) {
      a[j] = static_cast<uint32_t>(i * kLen + j);
    }
    arrays.push_back(a);
  }
  for (size_t i = 0; i < kArrays; ++i) {
    for (size_t j = 0; j < kLen; ++j) {
      ASSERT_EQ(arrays[i][j], static_cast<uint32_t>(i * kLen + j))
          << "array " << i << " slot " << j;
    }
  }
}

TEST(ArenaTest, CountsLifetimeBytesAndReservation) {
  Arena arena;
  EXPECT_EQ(arena.bytes_allocated(), 0u);
  arena.Allocate(100, 1);
  arena.Allocate(28, 1);
  EXPECT_EQ(arena.bytes_allocated(), 128u);
  EXPECT_GE(arena.bytes_reserved(), 128u);
  // The lifetime counter survives Reset (it feeds ctx_arena_bytes).
  arena.Reset();
  EXPECT_EQ(arena.bytes_allocated(), 128u);
  arena.Allocate(100, 1);
  EXPECT_EQ(arena.bytes_allocated(), 228u);
}

TEST(ArenaTest, ResetReusesBlocksInsteadOfGrowing) {
  Arena arena;
  auto churn = [&arena] {
    for (int i = 0; i < 64; ++i) {
      std::memset(arena.Allocate(1000, 8), 0x5A, 1000);
    }
  };
  churn();
  size_t reserved = arena.bytes_reserved();
  EXPECT_GT(reserved, 0u);
  // Identical churn after Reset must fit entirely in the retained blocks.
  for (int round = 0; round < 5; ++round) {
    arena.Reset();
    churn();
    EXPECT_EQ(arena.bytes_reserved(), reserved) << "round " << round;
  }
}

TEST(ArenaTest, OversizedBlocksServeAndAreDroppedOnReset) {
  Arena arena;
  size_t big = Arena::kMaxBlockBytes + 1024;
  auto* p = static_cast<unsigned char*>(arena.Allocate(big, 64));
  ASSERT_NE(p, nullptr);
  p[0] = 1;
  p[big - 1] = 2;  // both ends writable (ASan-checked)
  EXPECT_EQ(arena.bytes_allocated(), big);
  // The oversized block is a one-off: Reset releases it, so the regular
  // reservation (if any) is all that remains.
  size_t reserved_with_big = arena.bytes_reserved();
  arena.Reset();
  EXPECT_LE(arena.bytes_reserved(), reserved_with_big);
  // Regular allocation still works after the drop.
  std::memset(arena.Allocate(512, 8), 0x11, 512);
}

TEST(ArenaTest, FirstBlockSizeIsConfigurable) {
  Arena arena(size_t{1} << 16);
  arena.Allocate(1, 1);
  EXPECT_GE(arena.bytes_reserved(), size_t{1} << 16);
}

}  // namespace
}  // namespace whyq
