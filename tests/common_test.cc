#include <gtest/gtest.h>

#include <set>

#include "common/dictionary.h"
#include "common/rng.h"
#include "common/table.h"
#include "common/value.h"

namespace whyq {
namespace {

TEST(ValueTest, KindPredicates) {
  EXPECT_TRUE(Value(int64_t{5}).is_int());
  EXPECT_TRUE(Value(3.5).is_double());
  EXPECT_TRUE(Value("abc").is_string());
  EXPECT_TRUE(Value(int64_t{5}).is_numeric());
  EXPECT_TRUE(Value(3.5).is_numeric());
  EXPECT_FALSE(Value("abc").is_numeric());
}

TEST(ValueTest, NumericCompareAcrossKinds) {
  EXPECT_EQ(Value(int64_t{5}).Compare(Value(5.0)), 0);
  EXPECT_EQ(Value(int64_t{5}).Compare(Value(5.5)), -1);
  EXPECT_EQ(Value(7.5).Compare(Value(int64_t{7})), 1);
}

TEST(ValueTest, StringCompare) {
  EXPECT_EQ(Value("abc").Compare(Value("abd")), -1);
  EXPECT_EQ(Value("abc").Compare(Value("abc")), 0);
  EXPECT_EQ(Value("b").Compare(Value("a")), 1);
}

TEST(ValueTest, CrossKindIncomparable) {
  EXPECT_FALSE(Value("5").Compare(Value(int64_t{5})).has_value());
  EXPECT_FALSE(Value(int64_t{5}).Compare(Value("5")).has_value());
}

TEST(ValueTest, SatisfiesAllOperators) {
  Value five{int64_t{5}};
  EXPECT_TRUE(five.Satisfies(CompareOp::kLt, Value(int64_t{6})));
  EXPECT_FALSE(five.Satisfies(CompareOp::kLt, Value(int64_t{5})));
  EXPECT_TRUE(five.Satisfies(CompareOp::kLe, Value(int64_t{5})));
  EXPECT_TRUE(five.Satisfies(CompareOp::kEq, Value(int64_t{5})));
  EXPECT_TRUE(five.Satisfies(CompareOp::kGe, Value(int64_t{5})));
  EXPECT_TRUE(five.Satisfies(CompareOp::kGt, Value(int64_t{4})));
  EXPECT_FALSE(five.Satisfies(CompareOp::kGt, Value(int64_t{5})));
}

TEST(ValueTest, SatisfiesIncomparableIsFalse) {
  EXPECT_FALSE(Value("x").Satisfies(CompareOp::kEq, Value(int64_t{1})));
  EXPECT_FALSE(Value(int64_t{1}).Satisfies(CompareOp::kLe, Value("x")));
}

TEST(ValueTest, ExactEqualityIsKindSensitive) {
  EXPECT_NE(Value(int64_t{5}), Value(5.0));
  EXPECT_EQ(Value(int64_t{5}), Value(int64_t{5}));
  EXPECT_EQ(Value("a"), Value("a"));
}

TEST(ValueTest, ContainerOrderIsTotal) {
  std::set<Value> s;
  s.insert(Value(int64_t{1}));
  s.insert(Value(1.0));
  s.insert(Value("1"));
  s.insert(Value(int64_t{1}));
  EXPECT_EQ(s.size(), 3u);
}

TEST(ValueTest, AbsoluteDifference) {
  EXPECT_DOUBLE_EQ(*AbsoluteDifference(Value(int64_t{3}), Value(7.5)), 4.5);
  EXPECT_FALSE(AbsoluteDifference(Value("a"), Value(int64_t{1})).has_value());
}

TEST(ValueTest, ToString) {
  EXPECT_EQ(Value(int64_t{42}).ToString(), "42");
  EXPECT_EQ(Value("hi").ToString(), "hi");
  EXPECT_EQ(Value(2.5).ToString(), "2.5");
}

TEST(CompareOpTest, NamesAndBounds) {
  EXPECT_STREQ(CompareOpName(CompareOp::kLe), "<=");
  EXPECT_TRUE(IsUpperBound(CompareOp::kLt));
  EXPECT_TRUE(IsUpperBound(CompareOp::kLe));
  EXPECT_FALSE(IsUpperBound(CompareOp::kEq));
  EXPECT_TRUE(IsLowerBound(CompareOp::kGt));
  EXPECT_TRUE(IsLowerBound(CompareOp::kGe));
  EXPECT_FALSE(IsLowerBound(CompareOp::kEq));
}

TEST(DictionaryTest, InternIsIdempotent) {
  Dictionary d;
  SymbolId a = d.Intern("alpha");
  SymbolId b = d.Intern("beta");
  EXPECT_NE(a, b);
  EXPECT_EQ(d.Intern("alpha"), a);
  EXPECT_EQ(d.size(), 2u);
}

TEST(DictionaryTest, FindAndNameOf) {
  Dictionary d;
  SymbolId a = d.Intern("alpha");
  EXPECT_EQ(d.Find("alpha"), a);
  EXPECT_FALSE(d.Find("gamma").has_value());
  EXPECT_EQ(d.NameOf(a), "alpha");
}

TEST(RngTest, UniformInRange) {
  Rng rng(1);
  for (int i = 0; i < 100; ++i) {
    int64_t v = rng.Uniform(-3, 7);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 7);
  }
}

TEST(RngTest, Deterministic) {
  Rng a(99);
  Rng b(99);
  for (int i = 0; i < 20; ++i) EXPECT_EQ(a.Uniform(0, 1000), b.Uniform(0, 1000));
}

TEST(RngTest, SampleDistinctProperties) {
  Rng rng(5);
  std::vector<size_t> s = rng.SampleDistinct(100, 10);
  EXPECT_EQ(s.size(), 10u);
  std::set<size_t> uniq(s.begin(), s.end());
  EXPECT_EQ(uniq.size(), 10u);
  for (size_t x : s) EXPECT_LT(x, 100u);
  // k >= n returns everything.
  EXPECT_EQ(rng.SampleDistinct(5, 10).size(), 5u);
  // Dense case goes through partial Fisher-Yates.
  std::vector<size_t> dense = rng.SampleDistinct(10, 9);
  EXPECT_EQ(std::set<size_t>(dense.begin(), dense.end()).size(), 9u);
}

TEST(RngTest, ZipfInRangeAndSkewed) {
  Rng rng(7);
  size_t first_bucket = 0;
  for (int i = 0; i < 2000; ++i) {
    size_t z = rng.Zipf(50, 1.2);
    ASSERT_LT(z, 50u);
    if (z == 0) ++first_bucket;
  }
  // Rank 0 should clearly dominate a uniform share (40 expected uniform).
  EXPECT_GT(first_bucket, 200u);
}

TEST(TextTableTest, AlignsAndCounts) {
  TextTable t({"name", "value"});
  t.AddRow({"a", "1"});
  t.AddRow({"longer", "2.5"});
  EXPECT_EQ(t.row_count(), 2u);
  std::string s = t.ToString("demo");
  EXPECT_NE(s.find("== demo =="), std::string::npos);
  EXPECT_NE(s.find("longer"), std::string::npos);
}

TEST(TextTableTest, NumFormatting) {
  EXPECT_EQ(TextTable::Num(1.23456, 2), "1.23");
  EXPECT_EQ(TextTable::Num(2.0, 0), "2");
}

}  // namespace
}  // namespace whyq
