#include <gtest/gtest.h>

#include "gen/figure1.h"
#include "rewrite/cost_model.h"

namespace whyq {
namespace {

class CostModelTest : public testing::Test {
 protected:
  CostModelTest() : f_(MakeFigure1()) {
    price_ = *f_.graph.attr_names().Find("Price");
    val_ = *f_.graph.attr_names().Find("val");
    carrier_ = *f_.graph.attr_names().Find("carrier");
    series_ = *f_.graph.edge_labels().Find("series");
    color_ = *f_.graph.edge_labels().Find("color");
  }
  Figure1 f_;
  SymbolId price_, val_, carrier_, series_, color_;
};

TEST_F(CostModelTest, CentralityOfFigure1) {
  CostModel cm(f_.query, f_.graph);
  EXPECT_DOUBLE_EQ(cm.Centrality(0), 2.0);  // output
  EXPECT_DOUBLE_EQ(cm.Centrality(1), 1.0);
  EXPECT_DOUBLE_EQ(cm.Centrality(2), 1.0);
  EXPECT_EQ(cm.diameter(), 2u);
}

TEST_F(CostModelTest, Example4WhyCostIsFour) {
  // O_1 = {AddL(Cellphone.Price > 120), AddE(Cellphone -series-> Series)
  // carrying AddL(Series.val = S)} has total cost 4 in the paper.
  CostModel cm(f_.query, f_.graph);
  EditOp addl;
  addl.kind = OpKind::kAddL;
  addl.u = 0;
  addl.after = Literal{price_, CompareOp::kGt, Value(int64_t{120})};
  EditOp adde;
  adde.kind = OpKind::kAddE;
  adde.u = 0;
  adde.edge_label = series_;
  adde.new_node =
      NewNodeSpec{*f_.graph.node_labels().Find("Series"),
                  {Literal{val_, CompareOp::kEq, Value("S")}}};
  EXPECT_DOUBLE_EQ(cm.Cost(addl), 2.0);
  EXPECT_DOUBLE_EQ(cm.Cost(adde), 2.0);  // edge 1 + bundled literal 1
  EXPECT_DOUBLE_EQ(cm.Cost(OperatorSet{addl, adde}), 4.0);
}

TEST_F(CostModelTest, EdgeOperatorsUseMinEndpointCentrality) {
  CostModel cm(f_.query, f_.graph);
  EditOp rme;
  rme.kind = OpKind::kRmE;
  rme.u = 0;
  rme.v = 1;
  rme.edge_label = color_;
  EXPECT_DOUBLE_EQ(cm.Cost(rme), 1.0);  // min(2, 1)
}

TEST_F(CostModelTest, WeightedRxLChargesValueDistance) {
  CostModel cm(f_.query, f_.graph, /*weighted=*/true);
  EditOp rxl;
  rxl.kind = OpKind::kRxL;
  rxl.u = 0;
  rxl.before = Literal{price_, CompareOp::kLe, Value(int64_t{650})};
  rxl.after = Literal{price_, CompareOp::kLe, Value(int64_t{799})};
  // Price range over the graph is [120, 799] -> w = 1 + 149/679.
  double expected = (1.0 + 149.0 / 679.0) * 2.0;
  EXPECT_NEAR(cm.Cost(rxl), expected, 1e-9);

  CostModel unweighted(f_.query, f_.graph, /*weighted=*/false);
  EXPECT_DOUBLE_EQ(unweighted.Cost(rxl), 2.0);
}

TEST_F(CostModelTest, WeightIgnoredForNonNumericAttrs) {
  CostModel cm(f_.query, f_.graph, /*weighted=*/true);
  EditOp rfl;
  rfl.kind = OpKind::kRfL;
  rfl.u = 2;
  rfl.before = Literal{carrier_, CompareOp::kEq, Value("AT&T")};
  rfl.after = Literal{carrier_, CompareOp::kEq, Value("T-Mobile")};
  EXPECT_DOUBLE_EQ(cm.Cost(rfl), 1.0);
}

TEST_F(CostModelTest, RmLAndAddLAreUnweighted) {
  CostModel cm(f_.query, f_.graph, /*weighted=*/true);
  EditOp rml;
  rml.kind = OpKind::kRmL;
  rml.u = 0;
  rml.before = Literal{price_, CompareOp::kLe, Value(int64_t{650})};
  EXPECT_DOUBLE_EQ(cm.Cost(rml), 2.0);
}

TEST_F(CostModelTest, MinOperatorCostBound) {
  CostModel cm(f_.query, f_.graph);
  // d_Q/(d_Q+2) = 2/4.
  EXPECT_DOUBLE_EQ(cm.MinOperatorCost(), 0.5);
  // Every operator on the query costs at least that.
  EditOp rml;
  rml.kind = OpKind::kRmL;
  rml.u = 1;
  rml.before = Literal{val_, CompareOp::kEq, Value("pink")};
  EXPECT_GE(cm.Cost(rml), cm.MinOperatorCost());
}

TEST_F(CostModelTest, BareCompositeAddECostsEdgeOnly) {
  CostModel cm(f_.query, f_.graph);
  EditOp adde;
  adde.kind = OpKind::kAddE;
  adde.u = 1;  // distance 1 -> new node at distance 2, oc = 2/3
  adde.edge_label = series_;
  adde.new_node = NewNodeSpec{*f_.graph.node_labels().Find("Series"), {}};
  EXPECT_NEAR(cm.Cost(adde), 2.0 / 3.0, 1e-9);
}

}  // namespace
}  // namespace whyq
