// Deadline/cancellation truncation contracts for the answering
// algorithms: an expired CancelToken must make every algorithm return its
// best-so-far rewrite promptly with `exhaustive` cleared, a live token
// must not change the answer at all, and the cost-minimizing
// post-processing (MinimizeCost / MinimizeCostWhyNot — which polls the
// token per dropped-operator trial) must keep producing minimal rewrites
// when it does run. The companion static guarantee — every hot loop in
// src/why/ and src/matcher/ polls the token — is enforced by whyq-lint
// (rule "cancel-poll", see tools/lint/lint.h).

#include <gtest/gtest.h>

#include "gen/figure1.h"
#include "matcher/matcher.h"
#include "why/extensions.h"
#include "why/why_algorithms.h"
#include "why/whynot_algorithms.h"

namespace whyq {
namespace {

class DeadlineTruncationTest : public testing::Test {
 protected:
  DeadlineTruncationTest() : f_(MakeFigure1()) {
    answers_ = {f_.a5, f_.s5, f_.s6};
    cfg_.budget = 4.0;
    cfg_.guard_m = 0;
  }

  // A token whose deadline is already in the past: every poll reports
  // expiry, so the algorithms truncate at their first opportunity.
  static void Expire(CancelToken& t) {
    t.SetDeadline(CancelToken::Clock::now());
  }

  Figure1 f_;
  std::vector<NodeId> answers_;
  AnswerConfig cfg_;
};

TEST_F(DeadlineTruncationTest, FastWhyNotTruncatesOnExpiredDeadline) {
  WhyNotQuestion w;
  w.missing = {f_.s8, f_.s9};
  AnswerConfig cfg = cfg_;
  cfg.guard_m = 2;
  CancelToken token;
  Expire(token);
  cfg.cancel = &token;
  RewriteAnswer a = FastWhyNot(f_.graph, f_.query, answers_, w, cfg);
  EXPECT_FALSE(a.exhaustive);
  EXPECT_LE(a.cost, cfg.budget + 1e-9);
  for (const EditOp& op : a.ops) EXPECT_TRUE(IsRelaxation(op.kind));
}

TEST_F(DeadlineTruncationTest, IsoWhyNotTruncatesOnExpiredDeadline) {
  WhyNotQuestion w;
  w.missing = {f_.s8, f_.s9};
  AnswerConfig cfg = cfg_;
  cfg.guard_m = 2;
  CancelToken token;
  Expire(token);
  cfg.cancel = &token;
  RewriteAnswer a = IsoWhyNot(f_.graph, f_.query, answers_, w, cfg);
  EXPECT_FALSE(a.exhaustive);
  EXPECT_LE(a.cost, cfg.budget + 1e-9);
  for (const EditOp& op : a.ops) EXPECT_TRUE(IsRelaxation(op.kind));
}

TEST_F(DeadlineTruncationTest, ExactAlgorithmsTruncateOnExpiredDeadline) {
  WhyQuestion why{{f_.a5, f_.s5}};
  AnswerConfig cfg = cfg_;
  cfg.minimize_cost = true;  // gated out once the token expired
  CancelToken token;
  Expire(token);
  cfg.cancel = &token;
  RewriteAnswer a = ExactWhy(f_.graph, f_.query, answers_, why, cfg);
  EXPECT_FALSE(a.exhaustive);

  WhyNotQuestion w;
  w.missing = {f_.s8, f_.s9};
  AnswerConfig ncfg = cfg_;
  ncfg.guard_m = 2;
  ncfg.cancel = &token;
  RewriteAnswer n = ExactWhyNot(f_.graph, f_.query, answers_, w, ncfg);
  EXPECT_FALSE(n.exhaustive);
}

TEST_F(DeadlineTruncationTest, LiveTokenDoesNotChangeTheAnswer) {
  // A deadline-free token polls false forever: byte-identical behavior to
  // running without one, for both greedy and exact schemes.
  WhyNotQuestion w;
  w.missing = {f_.s8, f_.s9};
  AnswerConfig cfg = cfg_;
  cfg.guard_m = 2;
  RewriteAnswer plain = FastWhyNot(f_.graph, f_.query, answers_, w, cfg);
  CancelToken live;
  cfg.cancel = &live;
  RewriteAnswer tokened = FastWhyNot(f_.graph, f_.query, answers_, w, cfg);
  EXPECT_EQ(plain.found, tokened.found);
  EXPECT_EQ(plain.ops.size(), tokened.ops.size());
  EXPECT_DOUBLE_EQ(plain.eval.closeness, tokened.eval.closeness);
  EXPECT_TRUE(tokened.exhaustive);

  WhyQuestion why{{f_.a5, f_.s5}};
  AnswerConfig ecfg = cfg_;
  ecfg.minimize_cost = true;
  RewriteAnswer eplain = ExactWhy(f_.graph, f_.query, answers_, why, ecfg);
  ecfg.cancel = &live;
  RewriteAnswer etok = ExactWhy(f_.graph, f_.query, answers_, why, ecfg);
  EXPECT_EQ(eplain.found, etok.found);
  EXPECT_EQ(eplain.ops.size(), etok.ops.size());
  EXPECT_DOUBLE_EQ(eplain.eval.closeness, etok.eval.closeness);
  EXPECT_DOUBLE_EQ(eplain.cost, etok.cost);
}

TEST_F(DeadlineTruncationTest, MultiOutputAlgorithmsHonorExpiredDeadline) {
  // Regression: the multi-output extension paths used to ignore
  // cfg.cancel entirely — the pooled per-output verification loops and
  // the MBS callback now poll it and clear `exhaustive` when truncated.
  Query q = f_.query;
  q.AddOutput(1);
  Matcher m(f_.graph);
  std::vector<std::vector<NodeId>> per = m.MatchAllOutputs(q);
  ASSERT_EQ(per.size(), 2u);
  std::vector<std::vector<NodeId>> unexpected{{f_.a5}, {}};
  AnswerConfig cfg = cfg_;
  CancelToken token;
  Expire(token);
  cfg.cancel = &token;
  RewriteAnswer exact =
      ExactWhyMultiOutput(f_.graph, q, per, unexpected, cfg);
  EXPECT_FALSE(exact.exhaustive);
  RewriteAnswer approx =
      ApproxWhyMultiOutput(f_.graph, q, per, unexpected, cfg);
  EXPECT_FALSE(approx.exhaustive);
  // A live token leaves the multi-output answer untouched.
  CancelToken live;
  cfg.cancel = &live;
  RewriteAnswer a = ExactWhyMultiOutput(f_.graph, q, per, unexpected, cfg);
  AnswerConfig plain = cfg_;
  RewriteAnswer b =
      ExactWhyMultiOutput(f_.graph, q, per, unexpected, plain);
  EXPECT_EQ(a.found, b.found);
  EXPECT_DOUBLE_EQ(a.eval.closeness, b.eval.closeness);
  EXPECT_EQ(a.ops.size(), b.ops.size());
}

TEST_F(DeadlineTruncationTest, MinimizeCostStillProducesMinimalRewrites) {
  // Functional regression for the MinimizeCost cancellation fix: with a
  // live token the post-processing must still run to completion and the
  // winning operator set must be minimal — dropping any single operator
  // either lowers the exact closeness or breaks the guard.
  WhyQuestion why{{f_.a5, f_.s5}};
  AnswerConfig cfg = cfg_;
  cfg.minimize_cost = true;
  CancelToken live;
  cfg.cancel = &live;
  RewriteAnswer a = ExactWhy(f_.graph, f_.query, answers_, why, cfg);
  ASSERT_TRUE(a.found);
  ASSERT_TRUE(a.eval.guard_ok);
  Matcher m(f_.graph);
  for (size_t drop = 0; drop < a.ops.size(); ++drop) {
    OperatorSet trial = a.ops;
    trial.erase(trial.begin() + static_cast<long>(drop));
    Query rewritten = ApplyOperators(f_.query, trial);
    size_t excluded = 0;
    size_t guard = 0;
    for (NodeId v : answers_) {
      if (m.IsAnswer(rewritten, v)) continue;
      bool unexpected = v == f_.a5 || v == f_.s5;
      if (unexpected) {
        ++excluded;
      } else {
        ++guard;
      }
    }
    double trial_cl =
        static_cast<double>(excluded) / static_cast<double>(2);
    EXPECT_TRUE(trial_cl < a.eval.closeness - 1e-9 || guard > cfg.guard_m)
        << "operator " << drop << " is redundant: the minimizer should "
        << "have dropped it";
  }
}

}  // namespace
}  // namespace whyq
