#include <gtest/gtest.h>

#include "gen/figure1.h"
#include "matcher/path_index.h"
#include "why/est_match.h"

namespace whyq {
namespace {

class EstMatchTest : public testing::Test {
 protected:
  EstMatchTest()
      : f_(MakeFigure1()),
        pidx_(f_.query, 8),
        price_(*f_.graph.attr_names().Find("Price")) {}

  NodeSet Empty() const {
    return NodeSet(std::vector<NodeId>{}, f_.graph.node_count());
  }

  Figure1 f_;
  PathIndex pidx_;
  SymbolId price_;
};

TEST_F(EstMatchTest, WhyUnionMembersCountAsExcluded) {
  NodeSet excluded = Empty();
  excluded.Insert(f_.a5);
  CloseEstimate e = EstimateWhy(f_.graph, f_.query, pidx_, excluded,
                                {f_.a5, f_.s5}, {f_.s6}, 2);
  // A5 via the union; S5 still passes the unmodified query's path tests.
  EXPECT_DOUBLE_EQ(e.closeness, 0.5);
  EXPECT_EQ(e.guard, 0u);
  EXPECT_TRUE(e.guard_ok);
}

TEST_F(EstMatchTest, WhyPathScreeningDetectsLiteralExclusion) {
  // Price > 300 on the output node: A5 (250) and S5 (120) fail the
  // candidate test; the estimate catches both without any Aff sets.
  Query refined = f_.query;
  refined.AddLiteral(refined.output(),
                     Literal{price_, CompareOp::kGt, Value(int64_t{300})});
  CloseEstimate e = EstimateWhy(f_.graph, refined, pidx_, Empty(),
                                {f_.a5, f_.s5}, {f_.s6}, 2);
  EXPECT_DOUBLE_EQ(e.closeness, 1.0);
}

TEST_F(EstMatchTest, WhyGuardCountsDesiredInUnion) {
  NodeSet excluded = Empty();
  excluded.Insert(f_.s6);  // collateral damage recorded by some Aff(o)
  CloseEstimate e = EstimateWhy(f_.graph, f_.query, pidx_, excluded,
                                {f_.a5}, {f_.s5, f_.s6}, 0);
  EXPECT_FALSE(e.guard_ok);
  EXPECT_EQ(e.guard, 1u);
}

TEST_F(EstMatchTest, WhyNotUnionAndScreening) {
  // Relax price to 700: S8 (654) passes all path tests; S9 (799) fails
  // the candidate test (and has no pink color anyway).
  Query relaxed = f_.query;
  ASSERT_TRUE(relaxed.ReplaceLiteral(
      0, Literal{price_, CompareOp::kLe, Value(int64_t{650})},
      Literal{price_, CompareOp::kLe, Value(int64_t{700})}));
  SymbolId deal = *f_.graph.edge_labels().Find("deal");
  ASSERT_TRUE(relaxed.RemoveEdge(0, 2, deal));
  NodeSet protect(std::vector<NodeId>{f_.a5, f_.s5, f_.s6, f_.s8, f_.s9},
                  f_.graph.node_count());
  CloseEstimate e =
      EstimateWhyNot(f_.graph, relaxed, pidx_, NodeSet({}, 0),
                     {f_.s8, f_.s9}, protect, 2, 100);
  EXPECT_DOUBLE_EQ(e.closeness, 0.5);  // S8 estimated in, S9 not
  EXPECT_TRUE(e.guard_ok);             // everything else is protected
}

TEST_F(EstMatchTest, WhyNotGuardDetectsFlood) {
  // Remove the deal edge and relax the price: the S8 floods in but is NOT
  // protected -> estimated guard flags it at m = 0.
  Query relaxed = f_.query;
  ASSERT_TRUE(relaxed.ReplaceLiteral(
      0, Literal{price_, CompareOp::kLe, Value(int64_t{650})},
      Literal{price_, CompareOp::kLe, Value(int64_t{700})}));
  SymbolId deal = *f_.graph.edge_labels().Find("deal");
  ASSERT_TRUE(relaxed.RemoveEdge(0, 2, deal));
  NodeSet protect(std::vector<NodeId>{f_.a5, f_.s5, f_.s6, f_.s9},
                  f_.graph.node_count());
  CloseEstimate e = EstimateWhyNot(f_.graph, relaxed, pidx_, NodeSet({}, 0),
                                   {f_.s9}, protect, 0, 100);
  EXPECT_FALSE(e.guard_ok);
}

TEST_F(EstMatchTest, EmptyQuestionsAreZero) {
  CloseEstimate e =
      EstimateWhy(f_.graph, f_.query, pidx_, Empty(), {}, {}, 2);
  EXPECT_DOUBLE_EQ(e.closeness, 0.0);
  EXPECT_TRUE(e.guard_ok);
}

}  // namespace
}  // namespace whyq
