#include <gtest/gtest.h>

#include "gen/figure1.h"
#include "rewrite/evaluation.h"
#include "rewrite/operators.h"

namespace whyq {
namespace {

class EvaluationTest : public testing::Test {
 protected:
  EvaluationTest() : f_(MakeFigure1()) {
    answers_ = {f_.a5, f_.s5, f_.s6};
    price_ = *f_.graph.attr_names().Find("Price");
  }
  Figure1 f_;
  std::vector<NodeId> answers_;
  SymbolId price_;
};

TEST_F(EvaluationTest, WhyIdentityRewriteScoresZero) {
  WhyQuestion w{{f_.a5, f_.s5}};
  WhyEvaluator eval(f_.graph, answers_, w, 1);
  EvalResult r = eval.Evaluate(f_.query);
  EXPECT_DOUBLE_EQ(r.closeness, 0.0);
  EXPECT_EQ(r.guard, 0u);
  EXPECT_TRUE(r.guard_ok);
}

TEST_F(EvaluationTest, WhyRefinementExcludingOne) {
  WhyQuestion w{{f_.a5, f_.s5}};
  WhyEvaluator eval(f_.graph, answers_, w, 1);
  // Price > 120 excludes S5 only.
  Query refined = f_.query;
  refined.AddLiteral(refined.output(),
                     Literal{price_, CompareOp::kGt, Value(int64_t{120})});
  EvalResult r = eval.Evaluate(refined);
  EXPECT_DOUBLE_EQ(r.closeness, 0.5);
  EXPECT_EQ(r.guard, 0u);
}

TEST_F(EvaluationTest, WhyGuardCountsCollateralExclusions) {
  WhyQuestion w{{f_.a5, f_.s5}};
  // Price > 610 excludes everything (A5 250, S5 120, S6 600).
  Query refined = f_.query;
  refined.AddLiteral(refined.output(),
                     Literal{price_, CompareOp::kGt, Value(int64_t{610})});
  WhyEvaluator strict(f_.graph, answers_, w, 0);
  EvalResult r = strict.Evaluate(refined);
  EXPECT_FALSE(r.guard_ok);  // S6 excluded, m = 0
  WhyEvaluator lenient(f_.graph, answers_, w, 1);
  r = lenient.Evaluate(refined);
  EXPECT_TRUE(r.guard_ok);
  EXPECT_EQ(r.guard, 1u);
  EXPECT_DOUBLE_EQ(r.closeness, 1.0);
}

TEST_F(EvaluationTest, WhyUnexpectedOutsideAnswersIsDropped) {
  WhyQuestion w{{f_.s8, f_.a5}};  // S8 is not an answer
  WhyEvaluator eval(f_.graph, answers_, w, 1);
  ASSERT_EQ(eval.unexpected().size(), 1u);
  EXPECT_EQ(eval.unexpected()[0], f_.a5);
  EXPECT_TRUE(eval.IsUnexpected(f_.a5));
  EXPECT_FALSE(eval.IsUnexpected(f_.s8));
}

TEST_F(EvaluationTest, WhyAffectedAnswers) {
  WhyQuestion w{{f_.a5}};
  WhyEvaluator eval(f_.graph, answers_, w, 2);
  Query refined = f_.query;
  refined.AddLiteral(refined.output(),
                     Literal{price_, CompareOp::kGt, Value(int64_t{300})});
  std::vector<NodeId> aff = eval.AffectedAnswers(refined);
  // A5 (250) and S5 (120) no longer match; S6 (600) survives.
  EXPECT_EQ(aff.size(), 2u);
}

TEST_F(EvaluationTest, WhyNotIdentityScoresZero) {
  WhyNotQuestion w;
  w.missing = {f_.s8, f_.s9};
  WhyNotEvaluator eval(f_.graph, answers_, w, 2);
  EvalResult r = eval.Evaluate(f_.query);
  EXPECT_DOUBLE_EQ(r.closeness, 0.0);
  EXPECT_TRUE(r.guard_ok);
}

TEST_F(EvaluationTest, WhyNotRelaxationIncludesMissing) {
  WhyNotQuestion w;
  w.missing = {f_.s8, f_.s9};
  WhyNotEvaluator eval(f_.graph, answers_, w, 2);
  // Remove price, pink and carrier constraints: S8 and S9 both match.
  OperatorSet ops;
  EditOp rm_price;
  rm_price.kind = OpKind::kRmL;
  rm_price.u = 0;
  rm_price.before = Literal{price_, CompareOp::kLe, Value(int64_t{650})};
  ops.push_back(rm_price);
  EditOp rm_pink;
  rm_pink.kind = OpKind::kRmL;
  rm_pink.u = 1;
  rm_pink.before = Literal{*f_.graph.attr_names().Find("val"),
                           CompareOp::kEq, Value("pink")};
  ops.push_back(rm_pink);
  EditOp rm_carrier;
  rm_carrier.kind = OpKind::kRmL;
  rm_carrier.u = 2;
  rm_carrier.before = Literal{*f_.graph.attr_names().Find("carrier"),
                              CompareOp::kEq, Value("AT&T")};
  ops.push_back(rm_carrier);
  Query relaxed = ApplyOperators(f_.query, ops);
  EvalResult r = eval.Evaluate(relaxed);
  EXPECT_DOUBLE_EQ(r.closeness, 1.0);
  EXPECT_TRUE(r.guard_ok);  // no other cellphone exists
  EXPECT_EQ(eval.NewMatches(relaxed).size(), 2u);
}

TEST_F(EvaluationTest, WhyNotMissingFilteredByAnswers) {
  WhyNotQuestion w;
  w.missing = {f_.s8, f_.s6};  // S6 is already an answer
  WhyNotEvaluator eval(f_.graph, answers_, w, 2);
  ASSERT_EQ(eval.missing().size(), 1u);
  EXPECT_EQ(eval.missing()[0], f_.s8);
}

TEST_F(EvaluationTest, ConstraintUnaryFiltersMissing) {
  WhyNotQuestion w;
  w.missing = {f_.s8, f_.s9};
  ConstraintLiteral os_ge8;
  os_ge8.attr = *f_.graph.attr_names().Find("OS");
  os_ge8.op = CompareOp::kGe;
  os_ge8.constant = Value(8.0);
  w.condition.literals.push_back(os_ge8);
  WhyNotEvaluator eval(f_.graph, answers_, w, 2);
  // Only S9 (OS 8.0) survives C.
  ASSERT_EQ(eval.missing().size(), 1u);
  EXPECT_EQ(eval.missing()[0], f_.s9);
}

TEST_F(EvaluationTest, ConstraintBinaryExistential) {
  // x.Price >= y.Price: S8 (654) beats every answer's price, trivially
  // satisfiable; x.Price <= y.Price requires someone pricier in the pool.
  Constraint ge;
  ConstraintLiteral l;
  l.binary = true;
  l.attr = price_;
  l.other_attr = price_;
  l.op = CompareOp::kGe;
  ge.literals.push_back(l);
  std::vector<NodeId> missing{f_.s8};
  std::vector<NodeId> filtered = ge.Filter(f_.graph, missing, answers_);
  EXPECT_EQ(filtered.size(), 1u);

  Constraint le = ge;
  le.literals[0].op = CompareOp::kLe;
  filtered = le.Filter(f_.graph, missing, answers_);
  EXPECT_TRUE(filtered.empty());  // nothing in the pool costs >= 654
}

TEST_F(EvaluationTest, ConstraintMissingAttributeFails) {
  Constraint c;
  ConstraintLiteral l;
  l.attr = *f_.graph.attr_names().Find("carrier");  // phones lack carrier
  l.op = CompareOp::kEq;
  l.constant = Value("AT&T");
  c.literals.push_back(l);
  EXPECT_FALSE(c.Satisfies(f_.graph, f_.s8, {}));
}

TEST_F(EvaluationTest, ConstraintToString) {
  Constraint c;
  ConstraintLiteral l;
  l.attr = price_;
  l.op = CompareOp::kGe;
  l.constant = Value(int64_t{5});
  c.literals.push_back(l);
  ConstraintLiteral b;
  b.binary = true;
  b.attr = price_;
  b.other_attr = price_;
  b.op = CompareOp::kLe;
  c.literals.push_back(b);
  std::string s = c.ToString(f_.graph);
  EXPECT_NE(s.find("AND"), std::string::npos);
  EXPECT_NE(s.find("y.Price"), std::string::npos);
}

TEST_F(EvaluationTest, WhyNotGuardViolationDetected) {
  // Drop everything: the S8/S9 flood in, but so would any other phone; in
  // this tiny graph only S8/S9 are new, so craft a guard of 0 with an extra
  // decoy phone by relaxing only price to 654 (admits S8 alone).
  WhyNotQuestion w;
  w.missing = {f_.s9};
  WhyNotEvaluator eval(f_.graph, answers_, w, 0);
  Query relaxed = f_.query;
  ASSERT_TRUE(relaxed.ReplaceLiteral(
      0, Literal{price_, CompareOp::kLe, Value(int64_t{650})},
      Literal{price_, CompareOp::kLe, Value(int64_t{654})}));
  SymbolId deal = *f_.graph.edge_labels().Find("deal");
  ASSERT_TRUE(relaxed.RemoveEdge(0, 2, deal));
  // S8 now matches but is NOT in V_C -> guard violation at m=0.
  EvalResult r = eval.Evaluate(relaxed);
  EXPECT_FALSE(r.guard_ok);
}

}  // namespace
}  // namespace whyq
