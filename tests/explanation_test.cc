#include <gtest/gtest.h>

#include "gen/figure1.h"
#include "matcher/matcher.h"
#include "rewrite/explanation.h"
#include "why/why_algorithms.h"
#include "why/whynot_algorithms.h"

namespace whyq {
namespace {

class ExplanationTest : public testing::Test {
 protected:
  ExplanationTest() : f_(MakeFigure1()) {
    price_ = *f_.graph.attr_names().Find("Price");
    val_ = *f_.graph.attr_names().Find("val");
    series_ = *f_.graph.edge_labels().Find("series");
    color_ = *f_.graph.edge_labels().Find("color");
  }
  Figure1 f_;
  SymbolId price_, val_, series_, color_;
};

TEST_F(ExplanationTest, PairingAddLClassifiedAsTightening) {
  EditOp op;
  op.kind = OpKind::kAddL;
  op.u = 0;
  op.after = Literal{price_, CompareOp::kGt, Value(int64_t{120})};
  Explanation e = ExplainRewrite(f_.graph, f_.query, {op});
  ASSERT_EQ(e.changes.size(), 1u);
  EXPECT_EQ(e.changes[0].kind, ExplainedChange::Kind::kTightenedBound);
  EXPECT_NE(e.changes[0].sentence.find("pairing"), std::string::npos);
  EXPECT_NE(e.changes[0].sentence.find("Price"), std::string::npos);
}

TEST_F(ExplanationTest, FreshAddLClassifiedAsNewCondition) {
  EditOp op;
  op.kind = OpKind::kAddL;
  op.u = 0;
  op.after = Literal{*f_.graph.attr_names().Find("OS"), CompareOp::kGe,
                     Value(5.0)};
  Explanation e = ExplainRewrite(f_.graph, f_.query, {op});
  ASSERT_EQ(e.changes.size(), 1u);
  EXPECT_EQ(e.changes[0].kind, ExplainedChange::Kind::kAddedCondition);
}

TEST_F(ExplanationTest, AllKindsRender) {
  OperatorSet ops;
  EditOp rfl;
  rfl.kind = OpKind::kRfL;
  rfl.u = 0;
  rfl.before = Literal{price_, CompareOp::kLe, Value(int64_t{650})};
  rfl.after = Literal{price_, CompareOp::kLt, Value(int64_t{250})};
  ops.push_back(rfl);
  EditOp rxl = rfl;
  rxl.kind = OpKind::kRxL;
  rxl.after = Literal{price_, CompareOp::kLe, Value(int64_t{799})};
  ops.push_back(rxl);
  EditOp rml;
  rml.kind = OpKind::kRmL;
  rml.u = 1;
  rml.before = Literal{val_, CompareOp::kEq, Value("pink")};
  ops.push_back(rml);
  EditOp rme;
  rme.kind = OpKind::kRmE;
  rme.u = 0;
  rme.v = 1;
  rme.edge_label = color_;
  ops.push_back(rme);
  EditOp adde;
  adde.kind = OpKind::kAddE;
  adde.u = 0;
  adde.edge_label = series_;
  adde.new_node = NewNodeSpec{
      *f_.graph.node_labels().Find("Series"),
      {Literal{val_, CompareOp::kEq, Value("S")}}};
  ops.push_back(adde);
  EditOp adde2;
  adde2.kind = OpKind::kAddE;
  adde2.u = 1;
  adde2.v = 2;
  adde2.edge_label = color_;
  ops.push_back(adde2);

  Explanation e = ExplainRewrite(f_.graph, f_.query, ops);
  ASSERT_EQ(e.changes.size(), 6u);
  EXPECT_EQ(e.changes[0].kind, ExplainedChange::Kind::kTightenedBound);
  EXPECT_EQ(e.changes[1].kind, ExplainedChange::Kind::kLoosenedBound);
  EXPECT_EQ(e.changes[2].kind, ExplainedChange::Kind::kDroppedCondition);
  EXPECT_EQ(e.changes[3].kind, ExplainedChange::Kind::kDroppedStructure);
  EXPECT_EQ(e.changes[4].kind, ExplainedChange::Kind::kAddedStructure);
  EXPECT_EQ(e.changes[5].kind, ExplainedChange::Kind::kAddedStructure);
  std::string all = e.ToString();
  for (const char* needle :
       {"tightened", "relaxed", "dropped", "no longer required",
        "Series entity with val = S", "connection is now required"}) {
    EXPECT_NE(all.find(needle), std::string::npos) << needle << "\n" << all;
  }
  for (ExplainedChange::Kind k :
       {ExplainedChange::Kind::kTightenedBound,
        ExplainedChange::Kind::kAddedStructure}) {
    EXPECT_NE(std::string(ExplainedChangeKindName(k)), "?");
  }
}

TEST_F(ExplanationTest, DiffQueriesShowsLiteralAndEdgeChanges) {
  Query before = f_.query;
  Query after = f_.query;
  after.AddLiteral(0, Literal{price_, CompareOp::kGt, Value(int64_t{120})});
  ASSERT_TRUE(after.RemoveEdge(0, 1, color_));
  QNodeId fresh = after.AddNode(*f_.graph.node_labels().Find("Series"));
  after.AddEdge(0, fresh, series_);
  std::string diff = DiffQueries(f_.graph, before, after);
  EXPECT_NE(diff.find("+ u0: Price > 120"), std::string::npos) << diff;
  EXPECT_NE(diff.find("- u0 -color-> u1"), std::string::npos) << diff;
  EXPECT_NE(diff.find("+ node u4 Series"), std::string::npos) << diff;
  EXPECT_NE(diff.find("+ u0 -series-> u4"), std::string::npos) << diff;
}

TEST_F(ExplanationTest, EndToEndExplanationOfRealRewrite) {
  Matcher m(f_.graph);
  std::vector<NodeId> answers = m.MatchOutput(f_.query);
  AnswerConfig cfg;
  cfg.budget = 4.0;
  cfg.guard_m = 0;
  WhyQuestion why{{f_.a5, f_.s5}};
  RewriteAnswer a = ExactWhy(f_.graph, f_.query, answers, why, cfg);
  ASSERT_TRUE(a.found);
  Explanation e = ExplainRewrite(f_.graph, f_.query, a.ops);
  EXPECT_EQ(e.changes.size(), a.ops.size());
  EXPECT_FALSE(e.ToString().empty());
  // Diff agrees in spirit: at least one + line per refinement operator.
  std::string diff = DiffQueries(f_.graph, f_.query, a.rewritten);
  EXPECT_NE(diff.find('+'), std::string::npos);
}

}  // namespace
}  // namespace whyq
