#include <gtest/gtest.h>

#include "gen/figure1.h"
#include "matcher/matcher.h"
#include "why/extensions.h"

namespace whyq {
namespace {

class ExtensionsTest : public testing::Test {
 protected:
  ExtensionsTest() : f_(MakeFigure1()) {
    answers_ = {f_.a5, f_.s5, f_.s6};
    price_ = *f_.graph.attr_names().Find("Price");
  }
  Figure1 f_;
  std::vector<NodeId> answers_;
  AnswerConfig cfg_;
  SymbolId price_;
};

TEST_F(ExtensionsTest, WhyEmptyTrivialWhenAnswerNonEmpty) {
  WhyEmptyResult r = AnswerWhyEmpty(f_.graph, f_.query, cfg_);
  EXPECT_TRUE(r.found);
  EXPECT_TRUE(r.ops.empty());
  EXPECT_EQ(r.sample_answers.size(), 3u);
}

TEST_F(ExtensionsTest, WhyEmptyRelaxesContradictoryQuery) {
  Query q = f_.query;
  // Price <= 650 AND Price > 5000 can never match.
  q.AddLiteral(q.output(),
               Literal{price_, CompareOp::kGt, Value(int64_t{5000})});
  Matcher m(f_.graph);
  ASSERT_FALSE(m.HasAnyMatch(q));
  AnswerConfig cfg = cfg_;
  cfg.budget = 6.0;
  WhyEmptyResult r = AnswerWhyEmpty(f_.graph, q, cfg);
  ASSERT_TRUE(r.found);
  EXPECT_FALSE(r.ops.empty());
  EXPECT_FALSE(r.sample_answers.empty());
  EXPECT_TRUE(m.HasAnyMatch(r.rewritten));
  EXPECT_LE(r.cost, cfg.budget + 1e-9);
}

TEST_F(ExtensionsTest, WhyEmptyHopelessLabel) {
  // A label carried by no node cannot be fixed by relaxation.
  Query q;
  QNodeId u = q.AddNode(kInvalidSymbol);
  q.SetOutput(u);
  WhyEmptyResult r = AnswerWhyEmpty(f_.graph, q, cfg_);
  EXPECT_FALSE(r.found);
}

TEST_F(ExtensionsTest, WhySoManyAlreadySmall) {
  WhySoManyResult r =
      AnswerWhySoMany(f_.graph, f_.query, answers_, 5, cfg_);
  EXPECT_TRUE(r.found);
  EXPECT_TRUE(r.ops.empty());
  EXPECT_EQ(r.before, 3u);
  EXPECT_EQ(r.after, 3u);
}

TEST_F(ExtensionsTest, WhySoManyReducesAnswer) {
  AnswerConfig cfg = cfg_;
  cfg.budget = 4.0;
  WhySoManyResult r =
      AnswerWhySoMany(f_.graph, f_.query, answers_, 1, cfg);
  EXPECT_EQ(r.before, 3u);
  EXPECT_LE(r.after, r.before);
  if (r.found) {
    EXPECT_LE(r.after, 1u);
    Matcher m(f_.graph);
    EXPECT_EQ(m.MatchOutput(r.rewritten).size(), r.after);
    for (const EditOp& op : r.ops) EXPECT_TRUE(IsRefinement(op.kind));
  }
}

TEST_F(ExtensionsTest, MultiOutputWhyPoolsCloseness) {
  // Outputs: Cellphone and Color. Unexpected: {A5} for the phone output,
  // nothing for the color output.
  Query q = f_.query;
  q.AddOutput(1);
  Matcher m(f_.graph);
  std::vector<std::vector<NodeId>> per = m.MatchAllOutputs(q);
  ASSERT_EQ(per.size(), 2u);
  std::vector<std::vector<NodeId>> unexpected{{f_.a5}, {}};
  AnswerConfig cfg = cfg_;
  cfg.budget = 4.0;
  cfg.guard_m = 0;
  RewriteAnswer a = ExactWhyMultiOutput(f_.graph, q, per, unexpected, cfg);
  ASSERT_TRUE(a.found);
  EXPECT_DOUBLE_EQ(a.eval.closeness, 1.0);
  // The A5 is excluded from the phone output's answers.
  Query check = a.rewritten;
  check.SetOutput(q.outputs()[0]);
  EXPECT_FALSE(m.IsAnswer(check, f_.a5));
  EXPECT_TRUE(m.IsAnswer(check, f_.s6));
}

TEST_F(ExtensionsTest, MultiOutputNoUnexpectedIsNoop) {
  Query q = f_.query;
  q.AddOutput(1);
  Matcher m(f_.graph);
  std::vector<std::vector<NodeId>> per = m.MatchAllOutputs(q);
  RewriteAnswer a =
      ExactWhyMultiOutput(f_.graph, q, per, {{}, {}}, cfg_);
  EXPECT_FALSE(a.found);
}


TEST_F(ExtensionsTest, ApproxMultiOutputMatchesExactOnFigure1) {
  Query q = f_.query;
  q.AddOutput(1);
  Matcher m(f_.graph);
  std::vector<std::vector<NodeId>> per = m.MatchAllOutputs(q);
  std::vector<std::vector<NodeId>> unexpected{{f_.a5}, {}};
  AnswerConfig cfg = cfg_;
  cfg.budget = 4.0;
  cfg.guard_m = 0;
  RewriteAnswer exact = ExactWhyMultiOutput(f_.graph, q, per, unexpected, cfg);
  RewriteAnswer approx =
      ApproxWhyMultiOutput(f_.graph, q, per, unexpected, cfg);
  ASSERT_TRUE(approx.found);
  EXPECT_TRUE(approx.eval.guard_ok);
  EXPECT_GE(approx.eval.closeness, 0.5 * exact.eval.closeness);
  EXPECT_LE(approx.cost, cfg.budget + 1e-9);
  for (const EditOp& op : approx.ops) EXPECT_TRUE(IsRefinement(op.kind));
}

TEST_F(ExtensionsTest, ApproxMultiOutputEmptyQuestionsNoop) {
  Query q = f_.query;
  q.AddOutput(1);
  Matcher m(f_.graph);
  std::vector<std::vector<NodeId>> per = m.MatchAllOutputs(q);
  RewriteAnswer a =
      ApproxWhyMultiOutput(f_.graph, q, per, {{}, {}}, cfg_);
  EXPECT_FALSE(a.found);
  EXPECT_TRUE(a.ops.empty());
}

}  // namespace
}  // namespace whyq
