#include <gtest/gtest.h>

#include <set>

#include "gen/bsbm.h"
#include "gen/profiles.h"
#include "gen/query_gen.h"
#include "gen/question_gen.h"
#include "graph/graph_stats.h"
#include "matcher/candidates.h"
#include "matcher/matcher.h"

namespace whyq {
namespace {

TEST(BsbmTest, SchemaAndScale) {
  BsbmConfig cfg;
  cfg.products = 500;
  Graph g = GenerateBsbm(cfg);
  GraphStats s = ComputeStats(g);
  // Products + producers + types + features + vendors + persons + offers
  // + reviews.
  EXPECT_GT(s.nodes, 2000u);
  EXPECT_GT(s.edges, s.nodes);
  EXPECT_EQ(s.node_labels, 8u);
  // Every product must have a producer and a type.
  SymbolId product = *g.node_labels().Find("Product");
  SymbolId producer_edge = *g.edge_labels().Find("producer");
  SymbolId type_edge = *g.edge_labels().Find("type");
  for (NodeId v : g.NodesWithLabel(product)) {
    bool has_producer = false;
    bool has_type = false;
    for (const HalfEdge& e : g.out_edges(v)) {
      has_producer |= e.label == producer_edge;
      has_type |= e.label == type_edge;
    }
    EXPECT_TRUE(has_producer);
    EXPECT_TRUE(has_type);
  }
}

TEST(BsbmTest, DeterministicForSeed) {
  BsbmConfig cfg;
  cfg.products = 200;
  Graph a = GenerateBsbm(cfg);
  Graph b = GenerateBsbm(cfg);
  EXPECT_EQ(a.node_count(), b.node_count());
  EXPECT_EQ(a.edge_count(), b.edge_count());
  // Spot-check attribute equality on a few nodes.
  for (NodeId v : {0u, 57u, 199u}) {
    ASSERT_EQ(a.attrs(v).size(), b.attrs(v).size());
    for (size_t i = 0; i < a.attrs(v).size(); ++i) {
      EXPECT_EQ(a.attrs(v)[i].value, b.attrs(v)[i].value);
    }
  }
}

TEST(BsbmTest, ScalesLinearly) {
  BsbmConfig small;
  small.products = 200;
  BsbmConfig big = small;
  big.products = 400;
  Graph gs = GenerateBsbm(small);
  Graph gb = GenerateBsbm(big);
  double ratio = static_cast<double>(gb.node_count()) /
                 static_cast<double>(gs.node_count());
  EXPECT_NEAR(ratio, 2.0, 0.2);
}

TEST(ProfilesTest, AllProfilesGenerate) {
  for (DatasetProfile p : kAllProfiles) {
    Graph g = GenerateProfile(p, 2000, 3);
    GraphStats s = ComputeStats(g);
    EXPECT_EQ(s.nodes, 2000u) << DatasetProfileName(p);
    EXPECT_GT(s.edges, 0u);
    EXPECT_FALSE(std::string(DatasetProfileName(p)).empty());
    EXPECT_GT(DefaultProfileNodes(p), 1000u);
  }
}

TEST(ProfilesTest, ShapesDiffer) {
  Graph yago = GenerateProfile(DatasetProfile::kYago, 3000, 3);
  Graph pokec = GenerateProfile(DatasetProfile::kPokec, 3000, 3);
  GraphStats sy = ComputeStats(yago);
  GraphStats sp = ComputeStats(pokec);
  // Pokec: one label, dense; Yago: many labels, sparse.
  EXPECT_EQ(sp.node_labels, 1u);
  EXPECT_GT(sy.node_labels, 100u);
  EXPECT_GT(sp.avg_out_degree, 4 * sy.avg_out_degree);
  EXPECT_GT(sp.avg_attrs_per_node, sy.avg_attrs_per_node);
}

class QueryGenTest : public testing::Test {
 protected:
  QueryGenTest() : g_(GenerateProfile(DatasetProfile::kIMDb, 4000, 17)) {}
  Graph g_;
};

TEST_F(QueryGenTest, GeneratesQueriesWithNonEmptyAnswers) {
  Rng rng(1);
  QueryGenConfig cfg;
  cfg.edges = 4;
  cfg.literals_per_node = 2;
  Matcher m(g_);
  size_t generated = 0;
  for (int i = 0; i < 5; ++i) {
    std::optional<GeneratedQuery> gq = GenerateQuery(g_, cfg, rng);
    if (!gq.has_value()) continue;
    ++generated;
    EXPECT_EQ(gq->query.edge_count(), 4u);
    EXPECT_GE(gq->answers.size(), cfg.min_answers);
    EXPECT_LE(gq->answers.size(), cfg.max_answers);
    // Precomputed answers agree with the matcher.
    EXPECT_EQ(m.MatchOutput(gq->query).size(), gq->answers.size());
    // The witness matches node-locally: right labels, literals satisfied.
    ASSERT_EQ(gq->witness.size(), gq->query.node_count());
    for (QNodeId u = 0; u < gq->query.node_count(); ++u) {
      EXPECT_TRUE(IsCandidate(g_, gq->witness[u], gq->query.node(u)));
    }
    std::string err;
    EXPECT_TRUE(gq->query.Validate(&err)) << err;
    EXPECT_TRUE(gq->query.IsConnected());
  }
  EXPECT_GT(generated, 0u);
}

TEST_F(QueryGenTest, TreeTopologyHasNoExtraEdges) {
  QueryGenConfig cfg;
  cfg.edges = 3;
  cfg.literals_per_node = 1;
  cfg.topology = QueryTopology::kTree;
  std::optional<GeneratedQuery> gq;
  for (uint64_t seed = 2; seed < 10 && !gq.has_value(); ++seed) {
    Rng rng(seed);
    gq = GenerateQuery(g_, cfg, rng);
  }
  ASSERT_TRUE(gq.has_value());
  EXPECT_EQ(gq->query.node_count(), 4u);  // edges + 1
  EXPECT_EQ(gq->query.edge_count(), 3u);
}

TEST_F(QueryGenTest, CyclicTopologyClosesDirectedCycle) {
  Rng rng(3);
  QueryGenConfig cfg;
  cfg.edges = 4;
  cfg.topology = QueryTopology::kCyclic;
  cfg.max_attempts = 500;
  std::optional<GeneratedQuery> gq = GenerateQuery(g_, cfg, rng);
  if (!gq.has_value()) GTEST_SKIP() << "no cycle found in profile graph";
  EXPECT_EQ(gq->query.edge_count(), 4u);
  EXPECT_EQ(gq->query.node_count(), 4u);  // tree edges + 1 extra
}

TEST_F(QueryGenTest, TopologyNames) {
  EXPECT_STREQ(QueryTopologyName(QueryTopology::kTree), "tree");
  EXPECT_STREQ(QueryTopologyName(QueryTopology::kAcyclic), "acyclic");
  EXPECT_STREQ(QueryTopologyName(QueryTopology::kCyclic), "cyclic");
}

TEST_F(QueryGenTest, EmptyGraphYieldsNothing) {
  Graph empty;
  Rng rng(1);
  QueryGenConfig cfg;
  EXPECT_FALSE(GenerateQuery(empty, cfg, rng).has_value());
}

class QuestionGenTest : public testing::Test {
 protected:
  QuestionGenTest() : g_(GenerateProfile(DatasetProfile::kIMDb, 4000, 17)) {
    QueryGenConfig cfg;
    cfg.edges = 3;
    cfg.literals_per_node = 1;
    cfg.min_answers = 4;
    for (uint64_t seed = 4; seed < 16; ++seed) {
      Rng rng(seed);
      std::optional<GeneratedQuery> gq = GenerateQuery(g_, cfg, rng);
      if (gq.has_value()) {
        gq_ = std::move(*gq);
        break;
      }
    }
  }
  Graph g_;
  GeneratedQuery gq_;
};

TEST_F(QuestionGenTest, WhyQuestionSamplesAnswers) {
  if (gq_.answers.empty()) GTEST_SKIP();
  Rng rng(5);
  WhyQuestion w = GenerateWhyQuestion(gq_, 3, rng);
  EXPECT_FALSE(w.unexpected.empty());
  EXPECT_LE(w.unexpected.size(), 3u);
  // All unexpected are answers; at least one answer is left desired.
  std::set<NodeId> ans(gq_.answers.begin(), gq_.answers.end());
  for (NodeId v : w.unexpected) EXPECT_TRUE(ans.count(v));
  EXPECT_LT(w.unexpected.size(), gq_.answers.size());
}

TEST_F(QuestionGenTest, GrowWhyQuestionAddsFreshAnswers) {
  if (gq_.answers.size() < 3) GTEST_SKIP();
  Rng rng(6);
  WhyQuestion w = GenerateWhyQuestion(gq_, 1, rng);
  size_t before = w.unexpected.size();
  ASSERT_TRUE(GrowWhyQuestion(gq_, &w, rng));
  EXPECT_EQ(w.unexpected.size(), before + 1);
  std::set<NodeId> uniq(w.unexpected.begin(), w.unexpected.end());
  EXPECT_EQ(uniq.size(), w.unexpected.size());
}

TEST_F(QuestionGenTest, WhyNotQuestionAvoidsAnswers) {
  if (gq_.answers.empty()) GTEST_SKIP();
  Rng rng(7);
  std::optional<WhyNotQuestion> w =
      GenerateWhyNotQuestion(g_, gq_, 3, 0, rng);
  if (!w.has_value()) GTEST_SKIP() << "no same-label non-answers";
  EXPECT_FALSE(w->missing.empty());
  std::set<NodeId> ans(gq_.answers.begin(), gq_.answers.end());
  SymbolId out_label = gq_.query.node(gq_.query.output()).label;
  for (NodeId v : w->missing) {
    EXPECT_FALSE(ans.count(v));
    EXPECT_EQ(g_.label(v), out_label);
  }
}

TEST_F(QuestionGenTest, ConstraintSatisfiedBySomeMissing) {
  if (gq_.answers.empty()) GTEST_SKIP();
  Rng rng(8);
  std::optional<WhyNotQuestion> w =
      GenerateWhyNotQuestion(g_, gq_, 3, 2, rng);
  if (!w.has_value() || w->condition.empty()) GTEST_SKIP();
  EXPECT_LE(w->condition.literals.size(), 2u);
  bool some = false;
  for (NodeId v : w->missing) {
    some |= w->condition.Satisfies(g_, v, w->missing);
  }
  EXPECT_TRUE(some);
}

}  // namespace
}  // namespace whyq
