#include <gtest/gtest.h>

#include <sstream>

#include "graph/graph_io.h"
#include "graph/graph_stats.h"

namespace whyq {
namespace {

TEST(TypedValueTest, ParseAllKinds) {
  EXPECT_EQ(ParseTypedValue("i:42")->as_int(), 42);
  EXPECT_EQ(ParseTypedValue("i:-3")->as_int(), -3);
  EXPECT_DOUBLE_EQ(ParseTypedValue("d:2.5")->as_double(), 2.5);
  EXPECT_EQ(ParseTypedValue("s:hello")->as_string(), "hello");
}

TEST(TypedValueTest, ParseRejectsMalformed) {
  EXPECT_FALSE(ParseTypedValue("").has_value());
  EXPECT_FALSE(ParseTypedValue("x:1").has_value());
  EXPECT_FALSE(ParseTypedValue("i:abc").has_value());
  EXPECT_FALSE(ParseTypedValue("i:12x").has_value());
  EXPECT_FALSE(ParseTypedValue("d:").has_value());
  EXPECT_FALSE(ParseTypedValue("42").has_value());
}

TEST(TypedValueTest, FormatRoundTrips) {
  for (const Value& v :
       {Value(int64_t{7}), Value(-1.25), Value("txt")}) {
    std::optional<Value> back = ParseTypedValue(FormatTypedValue(v));
    ASSERT_TRUE(back.has_value());
    EXPECT_EQ(*back, v);
  }
}

Graph SampleGraph() {
  GraphBuilder b;
  NodeId a = b.AddNode("Person");
  b.SetAttr(a, "age", Value(int64_t{30}));
  b.SetAttr(a, "name", Value("ann"));
  NodeId c = b.AddNode("City");
  b.SetAttr(c, "pop", Value(1.5));
  b.AddEdge(a, c, "lives_in");
  b.AddEdge(c, a, "hosts");
  return b.Build();
}

TEST(GraphIoTest, WriteReadRoundTrip) {
  Graph g = SampleGraph();
  std::ostringstream os;
  WriteGraph(g, os);
  std::istringstream is(os.str());
  std::string err;
  std::optional<Graph> back = ReadGraph(is, &err);
  ASSERT_TRUE(back.has_value()) << err;
  GraphStats s1 = ComputeStats(g);
  GraphStats s2 = ComputeStats(*back);
  EXPECT_EQ(s1.nodes, s2.nodes);
  EXPECT_EQ(s1.edges, s2.edges);
  EXPECT_EQ(s1.attributes, s2.attributes);
  // Content check: node 0's attributes survive.
  SymbolId age = *back->attr_names().Find("age");
  EXPECT_EQ(back->GetAttr(0, age)->as_int(), 30);
  SymbolId lives = *back->edge_labels().Find("lives_in");
  EXPECT_TRUE(back->HasEdge(0, 1, lives));
}

TEST(GraphIoTest, CommentsAndBlankLinesIgnored) {
  std::istringstream is("# header\n\nN A x=i:1\n# mid\nN B\nE 0 1 r\n");
  std::string err;
  std::optional<Graph> g = ReadGraph(is, &err);
  ASSERT_TRUE(g.has_value()) << err;
  EXPECT_EQ(g->node_count(), 2u);
  EXPECT_EQ(g->edge_count(), 1u);
}

TEST(GraphIoTest, EdgeBeforeNodesIsBuffered) {
  std::istringstream is("E 0 1 r\nN A\nN B\n");
  std::string err;
  std::optional<Graph> g = ReadGraph(is, &err);
  ASSERT_TRUE(g.has_value()) << err;
  EXPECT_EQ(g->edge_count(), 1u);
}

TEST(GraphIoTest, ErrorsCarryLineNumbers) {
  struct Case {
    const char* text;
    const char* needle;
  };
  const Case cases[] = {
      {"N\n", "label"},
      {"N A bad\n", "attr"},
      {"N A x=q:1\n", "value"},
      {"E 0 1\n", "edge line"},
      {"Z whatever\n", "unknown"},
      {"N A\nE 0 5 r\n", "out of range"},
  };
  for (const Case& c : cases) {
    std::istringstream is(c.text);
    std::string err;
    EXPECT_FALSE(ReadGraph(is, &err).has_value()) << c.text;
    EXPECT_NE(err.find("line"), std::string::npos) << err;
    EXPECT_NE(err.find(c.needle), std::string::npos) << err;
  }
}

TEST(GraphIoTest, FileRoundTrip) {
  Graph g = SampleGraph();
  std::string path = testing::TempDir() + "/whyq_io_test.graph";
  ASSERT_TRUE(WriteGraphToFile(g, path));
  std::string err;
  std::optional<Graph> back = ReadGraphFromFile(path, &err);
  ASSERT_TRUE(back.has_value()) << err;
  EXPECT_EQ(back->node_count(), g.node_count());
}

TEST(GraphIoTest, MissingFileReportsError) {
  std::string err;
  EXPECT_FALSE(ReadGraphFromFile("/nonexistent/x.graph", &err).has_value());
  EXPECT_NE(err.find("cannot open"), std::string::npos);
}

}  // namespace
}  // namespace whyq
