#include <gtest/gtest.h>

#include <algorithm>

#include "graph/graph.h"
#include "graph/graph_stats.h"
#include "graph/neighborhood.h"

namespace whyq {
namespace {

Graph ChainGraph(size_t n) {
  // 0 -> 1 -> 2 -> ... labeled "N", edges labeled "next".
  GraphBuilder b;
  for (size_t i = 0; i < n; ++i) {
    NodeId v = b.AddNode("N");
    b.SetAttr(v, "idx", Value(static_cast<int64_t>(i)));
  }
  for (size_t i = 0; i + 1 < n; ++i) {
    b.AddEdge(static_cast<NodeId>(i), static_cast<NodeId>(i + 1), "next");
  }
  return b.Build();
}

TEST(GraphBuilderTest, BasicCounts) {
  Graph g = ChainGraph(5);
  EXPECT_EQ(g.node_count(), 5u);
  EXPECT_EQ(g.edge_count(), 4u);
}

TEST(GraphBuilderTest, DuplicateEdgesCollapse) {
  GraphBuilder b;
  NodeId a = b.AddNode("A");
  NodeId c = b.AddNode("B");
  b.AddEdge(a, c, "r");
  b.AddEdge(a, c, "r");
  b.AddEdge(a, c, "s");  // different label survives
  Graph g = b.Build();
  EXPECT_EQ(g.edge_count(), 2u);
  EXPECT_EQ(g.out_edges(a).size(), 2u);
  EXPECT_EQ(g.in_edges(c).size(), 2u);
}

TEST(GraphBuilderTest, AttrOverwriteLastWins) {
  GraphBuilder b;
  NodeId a = b.AddNode("A");
  b.SetAttr(a, "x", Value(int64_t{1}));
  b.SetAttr(a, "x", Value(int64_t{2}));
  Graph g = b.Build();
  ASSERT_EQ(g.attrs(a).size(), 1u);
  EXPECT_EQ(g.GetAttr(a, *g.attr_names().Find("x"))->as_int(), 2);
}

TEST(GraphTest, GetAttrMissing) {
  Graph g = ChainGraph(2);
  SymbolId idx = *g.attr_names().Find("idx");
  EXPECT_NE(g.GetAttr(0, idx), nullptr);
  EXPECT_EQ(g.GetAttr(0, idx + 57), nullptr);
}

TEST(GraphTest, HasEdgeRespectsDirectionAndLabel) {
  GraphBuilder b;
  NodeId a = b.AddNode("A");
  NodeId c = b.AddNode("B");
  b.AddEdge(a, c, "r");
  Graph g = b.Build();
  SymbolId r = *g.edge_labels().Find("r");
  EXPECT_TRUE(g.HasEdge(a, c, r));
  EXPECT_FALSE(g.HasEdge(c, a, r));
  EXPECT_FALSE(g.HasEdge(a, c, r + 1));
}

TEST(GraphTest, LabelIndex) {
  GraphBuilder b;
  b.AddNode("A");
  b.AddNode("B");
  b.AddNode("A");
  Graph g = b.Build();
  SymbolId a = *g.node_labels().Find("A");
  EXPECT_EQ(g.NodesWithLabel(a).size(), 2u);
  EXPECT_TRUE(g.NodesWithLabel(a + 100).empty());
}

TEST(GraphTest, AttrRanges) {
  GraphBuilder b;
  NodeId x = b.AddNode("A");
  NodeId y = b.AddNode("A");
  NodeId z = b.AddNode("A");
  b.SetAttr(x, "p", Value(int64_t{10}));
  b.SetAttr(y, "p", Value(int64_t{90}));
  b.SetAttr(z, "s", Value("str"));
  Graph g = b.Build();
  const AttrRange* rp = g.RangeOf(*g.attr_names().Find("p"));
  ASSERT_NE(rp, nullptr);
  EXPECT_TRUE(rp->numeric);
  EXPECT_DOUBLE_EQ(rp->min, 10.0);
  EXPECT_DOUBLE_EQ(rp->max, 90.0);
  EXPECT_EQ(rp->count, 2u);
  const AttrRange* rs = g.RangeOf(*g.attr_names().Find("s"));
  ASSERT_NE(rs, nullptr);
  EXPECT_FALSE(rs->numeric);
}

TEST(GraphTest, MixedAttrKindIsNonNumeric) {
  GraphBuilder b;
  NodeId x = b.AddNode("A");
  NodeId y = b.AddNode("A");
  b.SetAttr(x, "m", Value(int64_t{5}));
  b.SetAttr(y, "m", Value("five"));
  Graph g = b.Build();
  EXPECT_FALSE(g.RangeOf(*g.attr_names().Find("m"))->numeric);
}

TEST(NodeSetTest, MembershipAndOrder) {
  NodeSet s(std::vector<NodeId>{3, 1, 3}, 5);
  EXPECT_TRUE(s.Contains(3));
  EXPECT_TRUE(s.Contains(1));
  EXPECT_FALSE(s.Contains(0));
  EXPECT_EQ(s.size(), 2u);
  s.Insert(10);  // auto-grows
  EXPECT_TRUE(s.Contains(10));
}

TEST(NeighborhoodTest, ChainDistances) {
  Graph g = ChainGraph(10);
  std::vector<size_t> dist;
  NodeSet n2 = WithinDistanceWithDepth(g, {5}, 2, &dist);
  // Undirected: {3,4,5,6,7}.
  EXPECT_EQ(n2.size(), 5u);
  for (NodeId v : {3, 4, 5, 6, 7}) EXPECT_TRUE(n2.Contains(v));
  EXPECT_FALSE(n2.Contains(2));
  // Depths align with nodes() order; seed at depth 0.
  EXPECT_EQ(n2.nodes()[0], 5u);
  EXPECT_EQ(dist[0], 0u);
  for (size_t i = 0; i < dist.size(); ++i) EXPECT_LE(dist[i], 2u);
}

TEST(NeighborhoodTest, MultipleSeeds) {
  Graph g = ChainGraph(10);
  NodeSet n1 = WithinDistance(g, {0, 9}, 1);
  EXPECT_EQ(n1.size(), 4u);  // {0,1,8,9}
  EXPECT_TRUE(n1.Contains(1));
  EXPECT_TRUE(n1.Contains(8));
}

TEST(NeighborhoodTest, ZeroDepthIsSeedsOnly) {
  Graph g = ChainGraph(4);
  NodeSet n0 = WithinDistance(g, {2}, 0);
  EXPECT_EQ(n0.size(), 1u);
  EXPECT_TRUE(n0.Contains(2));
}

TEST(GraphStatsTest, Summary) {
  Graph g = ChainGraph(5);
  GraphStats s = ComputeStats(g);
  EXPECT_EQ(s.nodes, 5u);
  EXPECT_EQ(s.edges, 4u);
  EXPECT_EQ(s.node_labels, 1u);
  EXPECT_EQ(s.edge_labels, 1u);
  EXPECT_EQ(s.attributes, 1u);
  EXPECT_DOUBLE_EQ(s.avg_attrs_per_node, 1.0);
  EXPECT_EQ(s.max_out_degree, 1u);
  EXPECT_FALSE(s.ToString().empty());
}

TEST(ActiveDomainTest, DistinctSortedValues) {
  GraphBuilder b;
  for (int i = 0; i < 4; ++i) {
    NodeId v = b.AddNode("A");
    b.SetAttr(v, "p", Value(int64_t{i % 2}));  // values {0,1}
  }
  b.AddNode("A");  // no attribute: contributes nothing
  Graph g = b.Build();
  std::vector<NodeId> all{0, 1, 2, 3, 4};
  std::vector<Value> dom = ActiveDomain(g, *g.attr_names().Find("p"), all);
  ASSERT_EQ(dom.size(), 2u);
  EXPECT_EQ(dom[0].as_int(), 0);
  EXPECT_EQ(dom[1].as_int(), 1);
}

}  // namespace
}  // namespace whyq
