#include <gtest/gtest.h>

#include "gen/profiles.h"
#include "harness/experiment.h"

namespace whyq {
namespace {

class HarnessTest : public testing::Test {
 protected:
  HarnessTest() : g_(GenerateProfile(DatasetProfile::kIMDb, 3000, 23)) {}
  Graph g_;
};

TEST_F(HarnessTest, MakeWorkloadProducesCompleteItems) {
  WorkloadConfig cfg;
  cfg.items = 4;
  cfg.query.edges = 3;
  Workload w = MakeWorkload(g_, cfg);
  EXPECT_GT(w.items.size(), 0u);
  EXPECT_LE(w.items.size(), 4u);
  for (const Workload::Item& item : w.items) {
    EXPECT_FALSE(item.gq.answers.empty());
    EXPECT_FALSE(item.why.unexpected.empty());
    EXPECT_FALSE(item.whynot.missing.empty());
  }
}

TEST_F(HarnessTest, WorkloadIsSeedDeterministic) {
  WorkloadConfig cfg;
  cfg.items = 3;
  cfg.query.edges = 3;
  Workload a = MakeWorkload(g_, cfg);
  Workload b = MakeWorkload(g_, cfg);
  ASSERT_EQ(a.items.size(), b.items.size());
  for (size_t i = 0; i < a.items.size(); ++i) {
    EXPECT_EQ(a.items[i].gq.answers, b.items[i].gq.answers);
    EXPECT_EQ(a.items[i].why.unexpected, b.items[i].why.unexpected);
  }
}

TEST_F(HarnessTest, RunBatchesAndSummarize) {
  WorkloadConfig cfg;
  cfg.items = 3;
  cfg.query.edges = 3;
  Workload w = MakeWorkload(g_, cfg);
  ASSERT_GT(w.items.size(), 0u);
  AnswerConfig acfg;
  acfg.budget = 4.0;
  acfg.guard_m = 2;
  acfg.max_mbs = 2000;

  std::vector<RunResult> exact = RunWhyBatch(g_, w, WhyAlgo::kExact, acfg);
  std::vector<RunResult> approx = RunWhyBatch(g_, w, WhyAlgo::kApprox, acfg);
  ASSERT_EQ(exact.size(), w.items.size());
  ASSERT_EQ(approx.size(), w.items.size());
  for (const RunResult& r : exact) {
    EXPECT_GE(r.closeness, 0.0);
    EXPECT_LE(r.closeness, 1.0);
    EXPECT_GE(r.time_ms, 0.0);
  }
  Aggregate agg = Summarize(approx, &exact);
  EXPECT_EQ(agg.n, w.items.size());
  EXPECT_GE(agg.avg_closeness, 0.0);
  EXPECT_LE(agg.avg_closeness, 1.0);

  std::vector<RunResult> fast = RunWhyNotBatch(g_, w, WhyNotAlgo::kFast, acfg);
  EXPECT_EQ(fast.size(), w.items.size());
}

TEST_F(HarnessTest, SummarizeEmpty) {
  Aggregate agg = Summarize({});
  EXPECT_EQ(agg.n, 0u);
  EXPECT_DOUBLE_EQ(agg.avg_closeness, 0.0);
}

TEST_F(HarnessTest, AlgoNames) {
  EXPECT_STREQ(WhyAlgoName(WhyAlgo::kExact), "ExactWhy");
  EXPECT_STREQ(WhyAlgoName(WhyAlgo::kApprox), "ApproxWhy");
  EXPECT_STREQ(WhyAlgoName(WhyAlgo::kIso), "IsoWhy");
  EXPECT_STREQ(WhyNotAlgoName(WhyNotAlgo::kExact), "ExactWhyNot");
  EXPECT_STREQ(WhyNotAlgoName(WhyNotAlgo::kFast), "FastWhyNot");
  EXPECT_STREQ(WhyNotAlgoName(WhyNotAlgo::kIso), "IsoWhyNot");
}

}  // namespace
}  // namespace whyq
