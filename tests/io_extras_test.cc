#include <gtest/gtest.h>

#include <sstream>

#include "gen/figure1.h"
#include "graph/edge_list.h"
#include "graph/graph_stats.h"
#include "matcher/matcher.h"
#include "query/query_dot.h"
#include "rewrite/operators.h"

namespace whyq {
namespace {

TEST(EdgeListTest, ParsesSnapStyleInput) {
  std::istringstream is(
      "# Directed graph: toy\n"
      "# FromNodeId ToNodeId\n"
      "0 1\n"
      "1 2\n"
      "2 0\n"
      "7 0\n"
      "3 3\n");  // self loop dropped by default
  std::string err;
  std::optional<Graph> g = ReadEdgeList(is, EdgeListOptions(), &err);
  ASSERT_TRUE(g.has_value()) << err;
  // Nodes 0,1,2,7,3 remapped densely; the self loop contributes its node.
  EXPECT_EQ(g->node_count(), 5u);
  EXPECT_EQ(g->edge_count(), 4u);
  GraphStats s = ComputeStats(*g);
  EXPECT_EQ(s.node_labels, 1u);
  EXPECT_EQ(s.edge_labels, 1u);
}

TEST(EdgeListTest, KeepSelfLoopsOption) {
  std::istringstream is("5 5\n");
  EdgeListOptions opt;
  opt.drop_self_loops = false;
  std::string err;
  std::optional<Graph> g = ReadEdgeList(is, opt, &err);
  ASSERT_TRUE(g.has_value());
  EXPECT_EQ(g->edge_count(), 1u);
}

TEST(EdgeListTest, MalformedLinesReported) {
  std::istringstream is("0 1\nnot numbers\n");
  std::string err;
  EXPECT_FALSE(ReadEdgeList(is, EdgeListOptions(), &err).has_value());
  EXPECT_NE(err.find("line 2"), std::string::npos);
}

TEST(EdgeListTest, MissingFile) {
  std::string err;
  EXPECT_FALSE(
      ReadEdgeListFromFile("/no/such/file", EdgeListOptions(), &err)
          .has_value());
}

TEST(DecorateTest, AttachesAttributesPreservingTopology) {
  std::istringstream is("0 1\n1 2\n");
  std::string err;
  std::optional<Graph> bare = ReadEdgeList(is, EdgeListOptions(), &err);
  ASSERT_TRUE(bare.has_value());
  DecorationConfig cfg;
  cfg.avg_attrs = 4.0;
  Graph rich = DecorateGraph(*bare, cfg);
  EXPECT_EQ(rich.node_count(), bare->node_count());
  EXPECT_EQ(rich.edge_count(), bare->edge_count());
  GraphStats s = ComputeStats(rich);
  EXPECT_GT(s.attributes, 0u);
  EXPECT_GT(s.avg_attrs_per_node, 1.0);
  // Edges preserved verbatim.
  SymbolId r = *rich.edge_labels().Find("edge");
  EXPECT_TRUE(rich.HasEdge(0, 1, r));
  EXPECT_TRUE(rich.HasEdge(1, 2, r));
  // Deterministic for a fixed seed.
  Graph rich2 = DecorateGraph(*bare, cfg);
  EXPECT_EQ(ComputeStats(rich2).avg_attrs_per_node, s.avg_attrs_per_node);
}

TEST(DecorateTest, PreservesExistingAttributes) {
  Figure1 f = MakeFigure1();
  DecorationConfig cfg;
  cfg.attr_pool = 3;
  cfg.avg_attrs = 1.0;
  Graph rich = DecorateGraph(f.graph, cfg);
  SymbolId price = *rich.attr_names().Find("Price");
  EXPECT_EQ(rich.GetAttr(f.s6, price)->as_int(), 600);
}

TEST(QueryDotTest, RendersQueryWithOutputAndLiterals) {
  Figure1 f = MakeFigure1();
  std::string dot = QueryToDot(f.query, f.graph);
  EXPECT_NE(dot.find("digraph Q {"), std::string::npos);
  EXPECT_NE(dot.find("peripheries=2"), std::string::npos);  // output node
  EXPECT_NE(dot.find("Price <= 650"), std::string::npos);
  EXPECT_NE(dot.find("u0 -> u1"), std::string::npos);
  EXPECT_NE(dot.find("color"), std::string::npos);
}

TEST(QueryDotTest, RewriteDiffColorsChanges) {
  Figure1 f = MakeFigure1();
  SymbolId price = *f.graph.attr_names().Find("Price");
  OperatorSet ops;
  EditOp addl;
  addl.kind = OpKind::kAddL;
  addl.u = 0;
  addl.after = Literal{price, CompareOp::kGt, Value(int64_t{120})};
  ops.push_back(addl);
  EditOp rme;
  rme.kind = OpKind::kRmE;
  rme.u = 0;
  rme.v = 1;
  rme.edge_label = *f.graph.edge_labels().Find("color");
  ops.push_back(rme);
  EditOp adde;
  adde.kind = OpKind::kAddE;
  adde.u = 0;
  adde.edge_label = *f.graph.edge_labels().Find("series");
  adde.new_node = NewNodeSpec{*f.graph.node_labels().Find("Series"), {}};
  ops.push_back(adde);
  Query after = ApplyOperators(f.query, ops);
  std::string dot = RewriteToDot(f.query, after, f.graph);
  EXPECT_NE(dot.find("[+] Price > 120"), std::string::npos) << dot;
  EXPECT_NE(dot.find("color=red, style=dashed"), std::string::npos) << dot;
  EXPECT_NE(dot.find("color=green"), std::string::npos) << dot;
}

TEST(QueryDotTest, EscapesQuotes) {
  GraphBuilder b;
  NodeId v = b.AddNode("L\"quoted\"");
  (void)v;
  Graph g = b.Build();
  Query q;
  q.AddNode(*g.node_labels().Find("L\"quoted\""));
  q.SetOutput(0);
  std::string dot = QueryToDot(q, g);
  EXPECT_NE(dot.find("L\\\"quoted\\\""), std::string::npos);
}

}  // namespace
}  // namespace whyq
