// Fixture (never compiled): suffixes and digit separators do not disguise
// a decimal limit — each of these is a capacity knob >= 64 and must be
// flagged under all three limits-rule paths.
#include <cstdint>

namespace whyq {

inline uint64_t Knobs(uint64_t x) {
  uint64_t a = x + 64u;      // BAD: suffixed decimal at the threshold
  uint64_t b = x + 1'024;    // BAD: separated decimal
  uint64_t c = x + 4096ull;  // BAD: long-suffixed decimal
  return a + b + c;
}

}  // namespace whyq
