// Fixture (never compiled): literal forms every limits rule must exempt —
// hex and binary literals are bit masks and encoding thresholds, not
// capacity knobs, and suffixes or separators on values below the
// threshold stay exempt. The tests lint this under all three limits-rule
// paths (src/server/, src/graph/snapshot.*, src/service/plan.*).
#include <cstdint>

namespace whyq {

inline uint32_t Masks(uint32_t x) {
  uint32_t a = x & 0x100;      // ok: hex exempt even though 256 >= 64
  uint32_t b = x & 0b1000000;  // ok: binary exempt even though 64 >= 64
  uint32_t c = x & 0xFFu;      // ok: suffixed hex
  uint32_t d = x % 63u;        // ok: suffixed decimal below threshold
  uint32_t e = x | 0X7F;       // ok: capital-X hex
  uint32_t f = x & 0B11;       // ok: capital-B binary
  uint32_t g = x & 0xFF'FF;    // ok: separated hex
  return a + b + c + d + e + f + g;
}

}  // namespace whyq
