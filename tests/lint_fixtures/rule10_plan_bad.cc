// Fixture (never compiled): on-disk format constants inlined into the
// plan serializer — rule "plan-limits" must flag each decimal literal
// >= 64, linted under the virtual path src/service/plan.cc. Line
// numbers are pinned by the test.
#include <cstddef>

namespace whyq {

size_t StagePlanSections(size_t offset, size_t rows) {
  size_t aligned = (offset + 63) & ~size_t{63};  // ok: 63 below threshold
  size_t header = 64;                   // BAD: header size inline (line 11)
  size_t budget = 268435456;            // BAD: store budget inline (line 12)
  for (size_t i = 0; i < 9; ++i) {      // ok: small section count
    aligned += i;
  }
  if (rows > 65536) {                   // BAD: row cap inline (line 16)
    return 0;
  }
  return aligned + header + budget;
}

}  // namespace whyq
