// Fixture (never compiled): serializer code drawing every format
// constant from plan.h — rule "plan-limits" must stay silent. Hex
// masks, bit-shift expressions, small decimal constants, and literals
// inside comments/strings ("section 128") are all legal.
#include "service/plan.h"

namespace whyq {

size_t StagePlanSections(size_t offset, size_t rows) {
  size_t align = kPlanSectionAlign;             // the constant, by name
  size_t aligned = (offset + align - 1) / align * align;
  uint64_t budget = kPlanStoreDefaultBudget;    // budget by name
  uint64_t cap = 1ull << 30;                    // shifts are not decimals
  for (size_t i = 0; i < rows; ++i) {
    if ((i & 0xFFu) == 0x40u) ++aligned;        // hex masks exempt
  }
  double fill = 0.75 * 32;                      // small decimals are fine
  const char* note = "pads to 4096 bytes";      // strings stripped first
  (void)fill;
  (void)note;
  return aligned + (budget & cap);
}

}  // namespace whyq
