// Fixture (never compiled): borrowed graph views escaping their function —
// rule "epoch-pin" must flag the member store (no shared_ptr<const Graph>
// pin anywhere in this TU) and the static local. The alias is deliberate:
// rule "nodespan-member" cannot see through it, the flow rule must.
#include "graph/graph.h"

namespace whyq {

using Neighbors = NodeSpan;  // alias hides the borrow from the member rule

class FrontierCache {
 public:
  void Refresh(const Graph& g) {
    view_ = g.NodesWithLabel(3);  // BAD: member store without a pin
  }

  size_t CountOnce(const Graph& g) {
    static Neighbors cached = g.NodesWithLabel(7);  // BAD: static local
    return cached.size();
  }

 private:
  Neighbors view_{};
  SymbolId label_ = 3;
};

}  // namespace whyq
