// Fixture (never compiled): rule "epoch-pin" negative cases. The member
// store is legal when the TU pins the graph epoch next to the borrowed
// view — the shared_ptr keeps the storage alive until the holder drops
// both. Locals and plain assignments through non-member targets never
// flag, with or without a pin.
#include <memory>

#include "graph/graph.h"

namespace whyq {

using Neighbors = NodeSpan;

class PinnedFrontier {
 public:
  void Refresh(std::shared_ptr<const Graph> g) {
    pin_ = g;
    view_ = pin_->NodesWithLabel(3);  // ok: pin stored alongside
  }

  size_t CountLocal(const Graph& g) const {
    NodeSpan local = g.NodesWithLabel(5);  // ok: local borrow dies here
    Neighbors other = g.LabeledOutNeighbors(0, 2);
    return local.size() + other.size();
  }

 private:
  std::shared_ptr<const Graph> pin_;
  Neighbors view_{};
};

}  // namespace whyq
