// Fixture (never compiled): status verdicts dropped on the floor — rule
// "unchecked-status" must flag each discarded status-returning call and
// the status local that is never read after its declaration.
#include "service/service.h"

namespace whyq {

void DropVerdicts(WhyqService& svc, Graph& g, const UpdateBatch& batch) {
  svc.TrySubmit(MakeRequest(), nullptr);  // BAD: verdict dropped
  UpdateResult result;
  g.ApplyUpdate(batch, &g, &result);  // BAD: success bool dropped
  LoadPlanFile("p.whyqplan", nullptr, nullptr, nullptr);  // BAD: dropped
  GraphSnapshot::Load("g.whyqsnap", nullptr);  // BAD: nullptr unobserved
  SubmitResult sr = svc.TrySubmit(MakeRequest(), nullptr);  // BAD: unread
}

}  // namespace whyq
