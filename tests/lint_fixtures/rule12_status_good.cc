// Fixture (never compiled): rule "unchecked-status" negative cases —
// every verdict is consumed: branched on, assigned and later read,
// returned, or deliberately dropped behind a (void) cast.
#include "service/service.h"

namespace whyq {

bool ConsumeVerdicts(WhyqService& svc, Graph& g, const UpdateBatch& batch) {
  if (svc.TrySubmit(MakeRequest(), nullptr) != SubmitResult::kAccepted) {
    return false;
  }
  UpdateResult result;
  bool ok = g.ApplyUpdate(batch, &g, &result);
  if (!ok) return false;
  switch (result.status) {
    case UpdateStatus::kOk:
      break;
    default:
      return false;
  }
  auto snap = GraphSnapshot::Load("g.whyqsnap", nullptr);
  if (snap == nullptr) return false;
  (void)svc.TrySubmit(MakeRequest(), nullptr);  // ok: documented drop
  return svc.TrySubmit(MakeRequest(), nullptr) == SubmitResult::kAccepted;
}

}  // namespace whyq
