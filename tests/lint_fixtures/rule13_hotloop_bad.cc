// Fixture (never compiled): allocations inside the loops of hot-path
// functions — rule "hot-loop-alloc" must flag each allocation or
// container-growth token inside a loop of Extend / SearchFrom / Recurse /
// Maximal.
#include <vector>

namespace whyq {

bool Extend(std::vector<int>& scratch, int n) {
  for (int v = 0; v < n; ++v) {
    scratch.push_back(v);  // BAD: growth per embedding step
  }
  return false;
}

bool SearchFrom(std::vector<int*>& slots, int n) {
  while (n > 0) {
    slots[0] = new int(n);  // BAD: allocation per candidate root
    --n;
  }
  return true;
}

}  // namespace whyq
