// Fixture (never compiled): rule "hot-loop-alloc" negative cases — the
// hot path pre-sizes its scratch before entering the loop, and growth in
// cold functions (or outside any loop) is fine.
#include <vector>

namespace whyq {

bool Extend(std::vector<int>& scratch, int n) {
  scratch.reserve(static_cast<size_t>(n));  // ok: outside the loop
  for (int v = 0; v < n; ++v) {
    scratch[static_cast<size_t>(v)] = v;  // ok: pre-sized slot write
  }
  return false;
}

std::vector<int> CollectMatches(int n) {
  std::vector<int> out;
  for (int v = 0; v < n; ++v) {
    out.push_back(v);  // ok: cold function, growth is the point
  }
  return out;
}

}  // namespace whyq
