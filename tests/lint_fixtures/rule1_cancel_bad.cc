// Fixture (never compiled): greedy-round loop that calls the evaluator
// but never polls the CancelToken — linted under a virtual src/why/ path,
// rule "cancel-poll" must flag both loops.
#include "why/question.h"

namespace whyq {

double GreedyRoundsWithoutPoll(const Evaluator& eval, const Query& q) {
  double best = 0.0;
  while (best < 1.0) {  // BAD: hot loop, no CancelRequested/Expired poll
    EvalResult r = eval.Evaluate(q);
    if (r.closeness <= best) break;
    best = r.closeness;
  }
  for (size_t i = 0; i < 100; ++i) {  // BAD: verification sweep, no poll
    eval.TestAnswers(q, {});
  }
  return best;
}

}  // namespace whyq
