// Fixture (never compiled): the same greedy-round shape as
// rule1_cancel_bad.cc but every hot loop polls the CancelToken — rule
// "cancel-poll" must stay silent.
#include "why/question.h"

namespace whyq {

double GreedyRoundsWithPoll(const Evaluator& eval, const Query& q,
                            const CancelToken* cancel) {
  double best = 0.0;
  while (best < 1.0) {
    if (CancelRequested(cancel)) break;  // OK: polled every round
    EvalResult r = eval.Evaluate(q);
    if (r.closeness <= best) break;
    best = r.closeness;
  }
  for (size_t i = 0; i < 100; ++i) {
    if (cancel != nullptr && cancel->Expired()) break;  // OK
    eval.TestAnswers(q, {});
  }
  // A loop with no evaluator work needs no poll.
  for (size_t i = 0; i < 100; ++i) {
    best += 0.0;
  }
  return best;
}

}  // namespace whyq
