// Fixture (never compiled): unseeded randomness and wall-clock seeding —
// rule "determinism" must flag every call site.
#include <cstdlib>
#include <ctime>
#include <random>

namespace whyq {

int UnseededNoise() {
  std::srand(time(nullptr));          // BAD: srand + time(nullptr)
  int a = std::rand();                // BAD: rand
  std::random_device rd;              // BAD: random_device
  return a + static_cast<int>(rd());
}

}  // namespace whyq
