// Fixture (never compiled): randomness through the seeded whyq::Rng and
// identifiers that merely contain banned substrings — rule "determinism"
// must stay silent.
#include "common/rng.h"

namespace whyq {

int SeededNoise(Rng& rng) {
  // "rand" only as a substring of a longer identifier: not a violation.
  int operand = rng.UniformInt(0, 10);
  double randomish_scale = rng.UniformReal();
  // time() with a real argument (out-parameter style) is allowed; only
  // time(nullptr)/time(NULL)/time(0) wall-clock seeding is banned.
  return operand + static_cast<int>(randomish_scale);
}

}  // namespace whyq
