// Fixture (never compiled): direct console output from library code —
// rule "output-channel" must flag each call, linted under a virtual
// src/service/ path.
#include <cstdio>
#include <iostream>

namespace whyq {

void NoisyLibraryCode(int n) {
  std::cout << "progress " << n << "\n";   // BAD: cout in src/
  std::cerr << "warning\n";                // BAD: cerr in src/
  printf("%d\n", n);                       // BAD: printf in src/
  fprintf(stderr, "%d\n", n);              // BAD: fprintf in src/
}

}  // namespace whyq
