// Fixture (never compiled): library code that reports through metrics
// and formats into buffers — rule "output-channel" must stay silent.
// (The same contents linted under a tools/ path are always exempt.)
#include <string>

#include "common/metrics.h"

namespace whyq {

std::string QuietLibraryCode(Counter& completed, int n) {
  completed.Increment();
  // snprintf formats into a caller buffer; it is not a console channel.
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%d", n);
  // Identifiers merely containing banned names are fine.
  int printf_like_budget = n;
  return std::string(buf) + std::to_string(printf_like_budget);
}

}  // namespace whyq
