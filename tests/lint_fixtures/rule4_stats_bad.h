// Fixture (never compiled): a stats struct with a counter that the
// paired JSON emitter and glossary (see lint_test.cc) do not mention —
// rule "stats-roundtrip" must flag `orphaned_` and `lost_histo_`.
#ifndef WHYQ_TESTS_LINT_FIXTURES_RULE4_STATS_BAD_H_
#define WHYQ_TESTS_LINT_FIXTURES_RULE4_STATS_BAD_H_

#include <cstdint>

namespace whyq {

struct FixtureStats {
  uint64_t received = 0;
  uint64_t orphaned = 0;  // BAD: absent from JSON and glossary
  Counter completed;
  StreamingHistogram latency_ms;
  StreamingHistogram lost_histo;  // BAD: absent from JSON and glossary
};

}  // namespace whyq

#endif  // WHYQ_TESTS_LINT_FIXTURES_RULE4_STATS_BAD_H_
