// Fixture (never compiled): every counter member appears in the paired
// JSON emitter and glossary (see lint_test.cc) — rule "stats-roundtrip"
// must stay silent. Non-counter members (strings, vectors, methods) are
// outside the rule and need no JSON key.
#ifndef WHYQ_TESTS_LINT_FIXTURES_RULE4_STATS_GOOD_H_
#define WHYQ_TESTS_LINT_FIXTURES_RULE4_STATS_GOOD_H_

#include <cstdint>
#include <string>

namespace whyq {

struct FixtureStats {
  uint64_t received = 0;
  Counter completed;
  StreamingHistogram latency_ms;
  double threshold_ms = 50.0;
  std::string label;                 // not a counter: exempt
  void Reset() { received = 0; }     // method: exempt
};

}  // namespace whyq

#endif  // WHYQ_TESTS_LINT_FIXTURES_RULE4_STATS_GOOD_H_
