// Fixture (never compiled): classes outside src/graph/ storing a
// borrowed NodeSpan as a data member — rule "nodespan-member" must flag
// both members (NodeSpan borrows Graph adjacency storage and must not
// outlive the call that produced it).
#include "graph/graph.h"

namespace whyq {

class SpanHoarder {
 public:
  explicit SpanHoarder(const Graph& g) : neighbors_(g.OutNeighbors(0)) {}
  // Locals and parameters of NodeSpan type are fine; members are not.
  int CountLocal(const Graph& g) const {
    NodeSpan local = g.OutNeighbors(1);
    return static_cast<int>(local.size());
  }

 private:
  NodeSpan neighbors_;  // BAD: borrowed span stored as member
};

struct CachedFrontier {
  NodeSpan frontier{};  // BAD: brace-initialised member is still a member
  int depth = 0;
};

}  // namespace whyq
