// Fixture (never compiled): NodeSpan used as locals, parameters, return
// values, and in aliases — rule "nodespan-member" must stay silent. Only
// storing a NodeSpan as a class data member outside src/graph/ is banned.
#include <vector>

#include "graph/graph.h"

namespace whyq {

using FrontierSpan = NodeSpan;  // alias: exempt

class SpanBorrower {
 public:
  // Parameter and return uses are fine (the borrow stays on the stack).
  static int Count(NodeSpan span) { return static_cast<int>(span.size()); }
  NodeSpan Peek(const Graph& g) const { return g.OutNeighbors(0); }

  int Sum(const Graph& g) const {
    int total = 0;
    NodeSpan local = g.OutNeighbors(1);  // local: exempt
    for (NodeId n : local) total += static_cast<int>(n);
    return total;
  }

 private:
  std::vector<NodeId> owned_;  // owning copy is the sanctioned pattern
};

}  // namespace whyq
