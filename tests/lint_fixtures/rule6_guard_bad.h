// Fixture (never compiled): wrong include-guard spelling — linted under
// the virtual path src/why/rule6_guard_bad.h, rule "header-guard" must
// demand WHYQ_WHY_RULE6_GUARD_BAD_H_.
#ifndef WRONG_GUARD_H
#define WRONG_GUARD_H

namespace whyq {
struct GuardFixtureBad {};
}  // namespace whyq

#endif  // WRONG_GUARD_H
