// Fixture (never compiled): canonical include guard for the virtual path
// src/why/rule6_guard_good.h — rule "header-guard" must stay silent.
#ifndef WHYQ_WHY_RULE6_GUARD_GOOD_H_
#define WHYQ_WHY_RULE6_GUARD_GOOD_H_

namespace whyq {
struct GuardFixtureGood {};
}  // namespace whyq

#endif  // WHYQ_WHY_RULE6_GUARD_GOOD_H_
