// Fixture (never compiled): numeric limits scattered through daemon code —
// rule "server-limits" must flag each decimal literal >= 64, linted under
// a virtual src/server/ path. Line numbers are pinned by the test.
#include <cstddef>

namespace whyq::server {

void HandleConnection(char* data, size_t n) {
  char buf[65536];                       // BAD: buffer cap inline (line 9)
  size_t max_line = 1048576;             // BAD: line cap inline (line 10)
  for (int i = 0; i < 16; ++i) {         // ok: small loop bound
    buf[i] = data[i % 8];                // ok: small modulus
  }
  if (n > 4096u) {                       // BAD: threshold inline (line 14)
    return;
  }
  (void)max_line;
}

}  // namespace whyq::server
