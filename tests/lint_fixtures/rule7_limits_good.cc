// Fixture (never compiled): daemon code drawing every limit from
// limits.h constants — rule "server-limits" must stay silent. Hex bit
// masks, small decimal constants, floating scale factors and literals
// inside comments/strings ("timeout 5000 ms") are all legal.
#include "server/limits.h"

namespace whyq::server {

void HandleConnection(const char* data, size_t n) {
  char buf[kReadChunkBytes];                 // the limit, by name
  size_t count = 0;
  for (size_t i = 0; i + 1 < n; i += 2) {    // small strides are fine
    unsigned c = static_cast<unsigned char>(data[i]);
    if ((c & 0xC0) == 0x80) ++count;         // hex masks exempt
    if (c >= 0x10000u / 0x800u) ++count;     // still hex
    if (count > 63) break;                   // below the 64 threshold: ok
  }
  double scale = 1.5e3 * 0.25;               // floating literals exempt
  const char* msg = "retry after 5000 ms";   // strings stripped first
  (void)buf;
  (void)scale;
  (void)msg;
}

}  // namespace whyq::server
