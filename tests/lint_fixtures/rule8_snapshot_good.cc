// Fixture (never compiled): serializer code drawing every format
// constant from snapshot.h — rule "snapshot-limits" must stay silent.
// Hex masks, small decimal constants, floating factors, and literals
// inside comments/strings ("section 128") are all legal.
#include "graph/snapshot.h"

namespace whyq {

size_t LayoutSections(size_t offset, size_t rows) {
  size_t align = kSnapshotSectionAlign;         // the constant, by name
  size_t aligned = (offset + align - 1) / align * align;
  uint64_t h = kFnvOffsetBasis;
  for (size_t i = 0; i < rows; ++i) {
    h = (h ^ i) * kFnvPrime;                    // parameters by name
    if ((h & 0xFFu) == 0x40u) ++aligned;        // hex masks exempt
  }
  double fill = 0.75 * 32;                      // small decimals are fine
  const char* note = "pads to 4096 bytes";      // strings stripped first
  (void)fill;
  (void)note;
  return aligned + (h & 0x3Fu);
}

}  // namespace whyq
