// Fixture (never compiled): code outside the graph core reaching into
// the Graph's derived-storage columns — rule "graph-mutation" must flag
// every member reference (lines 10, 13 and 19). Label buckets,
// adjacency runs and attribute indexes are maintained only by
// GraphBuilder, GraphUpdater and the snapshot codec.
#include "graph/graph.h"

namespace whyq {

size_t PeekBucket(const Graph& g) { return g.bucket_nodes_.size(); }

void SpliceEdge(Graph* g, NodeId u, NodeId v) {
  g->out_nbrs_.push_back(v);  // also bumps out_range_ by hand below
  (void)u;
}

struct IndexPatcher {
  std::vector<uint32_t>* attr_ranges_view;  // ok: different identifier
  void Patch(Graph* g) { g->attr_range_.clear(); }
};

}  // namespace whyq
