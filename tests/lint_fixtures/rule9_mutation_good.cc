// Fixture (never compiled): the sanctioned ways to read and mutate a
// graph outside the graph core — public accessors for reads, an
// UpdateBatch through Graph::ApplyUpdate for writes. Rule
// "graph-mutation" must accept all of it, including identifiers that
// merely contain a storage-member name as a substring.
#include "graph/graph.h"
#include "graph/update.h"

namespace whyq {

size_t PeekBucket(const Graph& g, SymbolId label) {
  return g.NodesWithLabel(label).size();
}

bool AddEdgeProperly(Graph& g, NodeId u, NodeId v, Graph* next,
                     UpdateResult* result) {
  UpdateBatch batch;
  batch.ops.push_back(UpdateOp::AddEdge(u, v, "knows"));
  return g.ApplyUpdate(batch, next, result);
}

struct RangeStats {
  size_t my_attr_range_width = 0;  // substring of attr_range_ is fine
  size_t in_pool_total = 0;        // in_pool_ needs word boundaries to match
};

}  // namespace whyq
