// whyq-lint rule tests: every rule is exercised against its positive and
// negative fixtures under tests/lint_fixtures/ (linted under virtual
// src/ paths so path-based applicability triggers), plus inline edge
// cases for the lexer. The final test runs the linter over the real
// tree, which is what keeps the repo invariant-clean.
//
// Note: banned tokens appear below only inside string literals — the
// linter strips literals before matching, so this file stays clean when
// the tree scan reaches it.

#include "tools/lint/lint.h"

#include <algorithm>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "gtest/gtest.h"

namespace whyq::lint {
namespace {

std::string ReadFixture(const std::string& name) {
  std::ifstream in(std::string(WHYQ_LINT_FIXTURE_DIR) + "/" + name,
                   std::ios::binary);
  EXPECT_TRUE(in.is_open()) << "missing fixture " << name;
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

std::vector<int> Lines(const std::vector<Violation>& vs) {
  std::vector<int> lines;
  for (const auto& v : vs) lines.push_back(v.line);
  return lines;
}

void ExpectAllRule(const std::vector<Violation>& vs, const std::string& rule) {
  for (const auto& v : vs) EXPECT_EQ(v.rule, rule) << v.message;
}

// ---------------------------------------------------------------------------
// Lexer
// ---------------------------------------------------------------------------

TEST(LintStripTest, BlanksCommentsAndLiteralsPreservingLines) {
  std::string src =
      "int a; // trailing comment\n"
      "/* block\n   spanning */ int b;\n"
      "const char* s = \"quoted \\\" cout\";\n"
      "char c = 'x';\n";
  std::string out = StripCommentsAndStrings(src);
  EXPECT_EQ(std::count(out.begin(), out.end(), '\n'),
            std::count(src.begin(), src.end(), '\n'));
  EXPECT_EQ(out.size(), src.size());
  EXPECT_EQ(out.find("comment"), std::string::npos);
  EXPECT_EQ(out.find("block"), std::string::npos);
  EXPECT_EQ(out.find("quoted"), std::string::npos);
  EXPECT_EQ(out.find("cout"), std::string::npos);
  EXPECT_NE(out.find("int a;"), std::string::npos);
  EXPECT_NE(out.find("int b;"), std::string::npos);
}

TEST(LintStripTest, RawStringsAreBlanked) {
  std::string src = "auto s = R\"(body with cout and \" quote)\"; int k;\n";
  std::string out = StripCommentsAndStrings(src);
  EXPECT_EQ(out.find("cout"), std::string::npos);
  EXPECT_NE(out.find("int k;"), std::string::npos);
}

TEST(LintStripTest, PrefixedRawStringsAreBlanked) {
  // u8R/uR/UR/LR openers were once unrecognized: the prefix letter made
  // the `R` look like the tail of an identifier, so the body leaked into
  // the token stream as code.
  std::string src =
      "auto a = u8R\"(cout inside utf8 raw)\"; int p;\n"
      "auto b = LR\"(cout inside wide raw)\"; int q;\n"
      "auto c = uR\"x(cout with \" quote)x\"; int r;\n"
      "auto d = UR\"(cout once more)\"; int s;\n";
  std::string out = StripCommentsAndStrings(src);
  EXPECT_EQ(out.size(), src.size());
  EXPECT_EQ(out.find("cout"), std::string::npos);
  EXPECT_NE(out.find("int p;"), std::string::npos);
  EXPECT_NE(out.find("int q;"), std::string::npos);
  EXPECT_NE(out.find("int r;"), std::string::npos);
  EXPECT_NE(out.find("int s;"), std::string::npos);
}

TEST(LintStripTest, RawStringClosingDelimiterIsBlanked) {
  // The `)123"` terminator must not leak its digits into the token
  // stream — a limits rule would read them as a decimal literal.
  std::string src = "auto s = R\"123(body text)123\"; int k = 7;\n";
  std::string out = StripCommentsAndStrings(src);
  EXPECT_EQ(out.find("123"), std::string::npos);
  EXPECT_EQ(out.find("body"), std::string::npos);
  EXPECT_NE(out.find("int k = 7;"), std::string::npos);
}

TEST(LintStripTest, EncodingPrefixedOrdinaryStringsStillBlank) {
  std::string src = "auto s = u8\"cout here\"; int k;\n";
  std::string out = StripCommentsAndStrings(src);
  EXPECT_EQ(out.find("cout"), std::string::npos);
  EXPECT_NE(out.find("int k;"), std::string::npos);
}

TEST(LintStripTest, DigitSeparatorsDoNotOpenCharLiterals) {
  // A ' after a (hex) digit is a C++14 separator; treating it as a char
  // literal would swallow the rest of the line.
  std::string src = "size_t n = 1'048'576; uint32_t m = 0xFF'FF; int t;\n";
  std::string out = StripCommentsAndStrings(src);
  EXPECT_NE(out.find("1'048'576"), std::string::npos);
  EXPECT_NE(out.find("0xFF'FF"), std::string::npos);
  EXPECT_NE(out.find("int t;"), std::string::npos);
}

// ---------------------------------------------------------------------------
// v2 per-TU model
// ---------------------------------------------------------------------------

TEST(LintModelTest, ExtractsFunctionExtentsAndLoops) {
  std::string src =
      "namespace n {\n"
      "class C {\n"
      " public:\n"
      "  int Twice(int x) { return x + x; }\n"
      "};\n"
      "int Sum(int n) {\n"
      "  int s = 0;\n"
      "  for (int i = 0; i < n; ++i) {\n"
      "    while (s < i) ++s;\n"
      "  }\n"
      "  do { --s; } while (s > 0);\n"
      "  return s;\n"
      "}\n"
      "}  // namespace n\n";
  TuModel m = BuildTuModel(src);
  ASSERT_EQ(m.functions.size(), 2u);
  EXPECT_EQ(m.functions[0].name, "Twice");
  EXPECT_TRUE(m.functions[0].loops.empty());
  EXPECT_EQ(m.functions[1].name, "Sum");
  ASSERT_EQ(m.functions[1].loops.size(), 3u);
  // Ordered by body offset: the for body, the braceless while nested in
  // it, then the do-while (whose trailing while-terminator is not a
  // fourth loop).
  EXPECT_EQ(m.functions[1].loops[0].depth, 1);
  EXPECT_EQ(m.functions[1].loops[1].depth, 2);
  EXPECT_EQ(m.functions[1].loops[2].depth, 1);
}

TEST(LintModelTest, RecordHeadsWithMacroParensAreNotFunctions) {
  // `class WHYQ_CAPABILITY("mutex") Mutex {` carries a paren-looking
  // macro; only the two real member functions may become extents.
  std::string src =
      "class WHYQ_CAPABILITY(\"mutex\") Mutex {\n"
      " public:\n"
      "  void Lock() WHYQ_ACQUIRE() { mu_.lock(); }\n"
      "  void Unlock() WHYQ_RELEASE() { mu_.unlock(); }\n"
      "};\n";
  TuModel m = BuildTuModel(src);
  ASSERT_EQ(m.functions.size(), 2u);
  EXPECT_EQ(m.functions[0].name, "Lock");
  EXPECT_EQ(m.functions[1].name, "Unlock");
}

TEST(LintModelTest, TemplateIntroDoesNotReadAsRecord) {
  std::string src =
      "template <class Clock, class Duration>\n"
      "bool WaitUntil(int deadline) {\n"
      "  while (deadline > 0) --deadline;\n"
      "  return true;\n"
      "}\n";
  TuModel m = BuildTuModel(src);
  ASSERT_EQ(m.functions.size(), 1u);
  EXPECT_EQ(m.functions[0].name, "WaitUntil");
  EXPECT_EQ(m.functions[0].loops.size(), 1u);
}

TEST(LintStripTest, BannedTokenInCommentIsInvisible) {
  // The fixture relies on this: its comments name the poll functions.
  std::vector<Violation> v = LintFile(
      "src/service/x.cc", "// mentions printf and cout only here\nint a;\n");
  EXPECT_TRUE(v.empty());
}

// ---------------------------------------------------------------------------
// Rule 1: cancel-poll
// ---------------------------------------------------------------------------

TEST(LintCancelPollTest, FlagsHotLoopsWithoutPoll) {
  std::vector<Violation> v =
      LintFile("src/why/fixture.cc", ReadFixture("rule1_cancel_bad.cc"));
  ExpectAllRule(v, "cancel-poll");
  EXPECT_EQ(Lines(v), (std::vector<int>{10, 15}));
}

TEST(LintCancelPollTest, AcceptsPolledLoops) {
  std::vector<Violation> v =
      LintFile("src/matcher/fixture.cc", ReadFixture("rule1_cancel_good.cc"));
  EXPECT_TRUE(v.empty()) << v.front().message;
}

TEST(LintCancelPollTest, RuleOnlyAppliesToWhyAndMatcher) {
  // The same unpolled loops are legal elsewhere (e.g. offline gen code).
  std::vector<Violation> v =
      LintFile("src/gen/fixture.cc", ReadFixture("rule1_cancel_bad.cc"));
  EXPECT_TRUE(v.empty());
}

// ---------------------------------------------------------------------------
// Rule 2: determinism
// ---------------------------------------------------------------------------

TEST(LintDeterminismTest, FlagsUnseededRandomnessAndWallClockSeeds) {
  std::vector<Violation> v =
      LintFile("src/gen/fixture.cc", ReadFixture("rule2_determinism_bad.cc"));
  ExpectAllRule(v, "determinism");
  // srand + wall-clock time() on line 10, the raw call on 11, the device
  // on 12.
  ASSERT_EQ(v.size(), 4u);
  std::vector<int> lines = Lines(v);
  std::sort(lines.begin(), lines.end());
  EXPECT_EQ(lines, (std::vector<int>{10, 10, 11, 12}));
}

TEST(LintDeterminismTest, AcceptsSeededRngAndSubstringIdentifiers) {
  std::vector<Violation> v =
      LintFile("src/gen/fixture.cc", ReadFixture("rule2_determinism_good.cc"));
  EXPECT_TRUE(v.empty()) << v.front().message;
}

TEST(LintDeterminismTest, RngImplementationIsExempt) {
  std::vector<Violation> v = LintFile("src/common/rng.cc",
                                      ReadFixture("rule2_determinism_bad.cc"));
  EXPECT_TRUE(v.empty());
}

// ---------------------------------------------------------------------------
// Rule 3: output-channel
// ---------------------------------------------------------------------------

TEST(LintOutputChannelTest, FlagsConsoleOutputInLibraryCode) {
  std::vector<Violation> v =
      LintFile("src/service/fixture.cc", ReadFixture("rule3_output_bad.cc"));
  ExpectAllRule(v, "output-channel");
  EXPECT_EQ(Lines(v), (std::vector<int>{10, 11, 12, 13}));
}

TEST(LintOutputChannelTest, AcceptsMetricsAndBufferFormatting) {
  std::vector<Violation> v =
      LintFile("src/service/fixture.cc", ReadFixture("rule3_output_good.cc"));
  EXPECT_TRUE(v.empty()) << v.front().message;
}

TEST(LintOutputChannelTest, ToolsAndBenchAreExempt) {
  EXPECT_TRUE(
      LintFile("tools/fixture.cc", ReadFixture("rule3_output_bad.cc"))
          .empty());
  EXPECT_TRUE(
      LintFile("bench/fixture.cc", ReadFixture("rule3_output_bad.cc"))
          .empty());
}

// ---------------------------------------------------------------------------
// Rule 4: stats-roundtrip
// ---------------------------------------------------------------------------

constexpr const char* kFixtureJson =
    "j[\"received\"]; j[\"completed\"]; j[\"latency_ms\"]; "
    "j[\"threshold_ms\"];";
constexpr const char* kFixtureGlossary =
    "| received | completed | latency | threshold |";

TEST(LintStatsRoundTripTest, FlagsMembersMissingFromJsonAndGlossary) {
  StatsDecl d{"tests/lint_fixtures/rule4_stats_bad.h",
              ReadFixture("rule4_stats_bad.h"), "FixtureStats", true};
  std::vector<Violation> v =
      LintStatsRoundTrip({d}, kFixtureJson, kFixtureGlossary);
  ExpectAllRule(v, "stats-roundtrip");
  // orphaned and lost_histo each miss both the JSON emitter and the
  // glossary.
  ASSERT_EQ(v.size(), 4u);
  int orphaned = 0;
  int lost = 0;
  for (const auto& viol : v) {
    if (viol.message.find("orphaned") != std::string::npos) ++orphaned;
    if (viol.message.find("lost_histo") != std::string::npos) ++lost;
  }
  EXPECT_EQ(orphaned, 2);
  EXPECT_EQ(lost, 2);
}

TEST(LintStatsRoundTripTest, AcceptsFullyDocumentedStruct) {
  StatsDecl d{"tests/lint_fixtures/rule4_stats_good.h",
              ReadFixture("rule4_stats_good.h"), "FixtureStats", true};
  std::vector<Violation> v =
      LintStatsRoundTrip({d}, kFixtureJson, kFixtureGlossary);
  EXPECT_TRUE(v.empty()) << v.front().message;
}

TEST(LintStatsRoundTripTest, GlossaryOnlyModeSkipsJson) {
  StatsDecl d{"tests/lint_fixtures/rule4_stats_good.h",
              ReadFixture("rule4_stats_good.h"), "FixtureStats", false};
  // Empty JSON source: fine, because require_json is off and the
  // glossary covers every key.
  std::vector<Violation> v = LintStatsRoundTrip({d}, "", kFixtureGlossary);
  EXPECT_TRUE(v.empty()) << v.front().message;
}

TEST(LintStatsRoundTripTest, ReportsMissingStruct) {
  StatsDecl d{"x.h", "struct Other {};", "FixtureStats", true};
  std::vector<Violation> v = LintStatsRoundTrip({d}, "", "");
  ASSERT_EQ(v.size(), 1u);
  EXPECT_NE(v[0].message.find("not found"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Rule 5: nodespan-member
// ---------------------------------------------------------------------------

TEST(LintNodeSpanTest, FlagsStoredSpans) {
  std::vector<Violation> v =
      LintFile("src/why/fixture.cc", ReadFixture("rule5_nodespan_bad.cc"));
  ExpectAllRule(v, "nodespan-member");
  EXPECT_EQ(Lines(v), (std::vector<int>{19, 23}));
}

TEST(LintNodeSpanTest, AcceptsLocalsParamsReturnsAndAliases) {
  std::vector<Violation> v =
      LintFile("src/why/fixture.cc", ReadFixture("rule5_nodespan_good.cc"));
  EXPECT_TRUE(v.empty()) << v.front().message;
}

TEST(LintNodeSpanTest, GraphLayerIsExempt) {
  std::vector<Violation> v =
      LintFile("src/graph/fixture.cc", ReadFixture("rule5_nodespan_bad.cc"));
  EXPECT_TRUE(v.empty());
}

// ---------------------------------------------------------------------------
// Rule 6: header-guard
// ---------------------------------------------------------------------------

TEST(LintHeaderGuardTest, FlagsNonCanonicalGuard) {
  std::vector<Violation> v =
      LintFile("src/why/rule6_guard_bad.h", ReadFixture("rule6_guard_bad.h"));
  ASSERT_EQ(v.size(), 1u);
  EXPECT_EQ(v[0].rule, "header-guard");
  EXPECT_NE(v[0].message.find("WHYQ_WHY_RULE6_GUARD_BAD_H_"),
            std::string::npos);
}

TEST(LintHeaderGuardTest, AcceptsCanonicalGuard) {
  std::vector<Violation> v = LintFile("src/why/rule6_guard_good.h",
                                      ReadFixture("rule6_guard_good.h"));
  EXPECT_TRUE(v.empty()) << v.front().message;
}

TEST(LintHeaderGuardTest, ReportsMissingGuardAndUnclosedGuard) {
  std::vector<Violation> none =
      LintFile("src/common/x.h", "#pragma once\nint a;\n");
  ASSERT_EQ(none.size(), 1u);
  EXPECT_EQ(none[0].rule, "header-guard");

  std::vector<Violation> open = LintFile(
      "src/common/x.h", "#ifndef WHYQ_COMMON_X_H_\n#define WHYQ_COMMON_X_H_\n");
  ASSERT_EQ(open.size(), 1u);
  EXPECT_NE(open[0].message.find("never closed"), std::string::npos);

  std::vector<Violation> mismatch = LintFile(
      "src/common/x.h", "#ifndef WHYQ_COMMON_X_H_\n#define OTHER\n#endif\n");
  ASSERT_EQ(mismatch.size(), 1u);
  EXPECT_NE(mismatch[0].message.find("does not match"), std::string::npos);
}

TEST(LintHeaderGuardTest, SrcPrefixIsDroppedAndToolsPrefixKept) {
  // src/common/cancel.h -> WHYQ_COMMON_CANCEL_H_ (convention predates the
  // linter); tools keep the full path.
  std::vector<Violation> v = LintFile(
      "src/common/cancel.h",
      "#ifndef WHYQ_COMMON_CANCEL_H_\n#define WHYQ_COMMON_CANCEL_H_\n"
      "#endif\n");
  EXPECT_TRUE(v.empty()) << v.front().message;
  std::vector<Violation> t = LintFile(
      "tools/lint/lint.h",
      "#ifndef WHYQ_TOOLS_LINT_LINT_H_\n#define WHYQ_TOOLS_LINT_LINT_H_\n"
      "#endif\n");
  EXPECT_TRUE(t.empty()) << t.front().message;
}

// ---------------------------------------------------------------------------
// Rule 7: server-limits
// ---------------------------------------------------------------------------

TEST(LintServerLimitsTest, FlagsInlineLimitsInServerCode) {
  std::vector<Violation> v =
      LintFile("src/server/fixture.cc", ReadFixture("rule7_limits_bad.cc"));
  ExpectAllRule(v, "server-limits");
  EXPECT_EQ(Lines(v), (std::vector<int>{9, 10, 14}));
}

TEST(LintServerLimitsTest, AcceptsNamedLimitsMasksAndSmallConstants) {
  std::vector<Violation> v =
      LintFile("src/server/fixture.cc", ReadFixture("rule7_limits_good.cc"));
  EXPECT_TRUE(v.empty()) << v.front().message;
}

TEST(LintServerLimitsTest, LimitsHeaderAndOtherLayersAreExempt) {
  // The pigeonhole itself may (must) hold the literals...
  EXPECT_TRUE(
      LintFile("src/server/limits.h",
               "#ifndef WHYQ_SERVER_LIMITS_H_\n#define WHYQ_SERVER_LIMITS_H_\n"
               "inline constexpr int kCap = 65536;\n#endif\n")
          .empty());
  // ...and the rule does not reach outside src/server/.
  EXPECT_TRUE(
      LintFile("src/service/fixture.cc", ReadFixture("rule7_limits_bad.cc"))
          .empty());
}

TEST(LintServerLimitsTest, SuffixedAndSeparatedLiteralsAreCaught) {
  std::vector<Violation> v = LintFile(
      "src/server/x.cc", "size_t a = 1'048'576ull;\nint b = 100;\n");
  ASSERT_EQ(v.size(), 2u);
  EXPECT_NE(v[0].message.find("1048576"), std::string::npos);
  EXPECT_NE(v[1].message.find("100"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Rule 8: snapshot-limits
// ---------------------------------------------------------------------------

TEST(LintSnapshotLimitsTest, FlagsInlineFormatConstantsInSerializer) {
  std::vector<Violation> v = LintFile("src/graph/snapshot.cc",
                                      ReadFixture("rule8_snapshot_bad.cc"));
  ExpectAllRule(v, "snapshot-limits");
  EXPECT_EQ(Lines(v), (std::vector<int>{11, 12, 16}));
}

TEST(LintSnapshotLimitsTest, AcceptsNamedConstantsMasksAndSmallValues) {
  std::vector<Violation> v = LintFile("src/graph/snapshot.cc",
                                      ReadFixture("rule8_snapshot_good.cc"));
  EXPECT_TRUE(v.empty()) << v.front().message;
}

TEST(LintSnapshotLimitsTest, HeaderAndOtherGraphFilesAreExempt) {
  // The pigeonhole itself may (must) hold the literals...
  EXPECT_TRUE(LintFile("src/graph/snapshot.h",
                       "#ifndef WHYQ_GRAPH_SNAPSHOT_H_\n"
                       "#define WHYQ_GRAPH_SNAPSHOT_H_\n"
                       "inline constexpr int kAlign = 4096;\n#endif\n")
                  .empty());
  // ...and the rule binds to the snapshot layer only, not all of
  // src/graph/ (graph.cc may size reserve() calls freely).
  EXPECT_TRUE(LintFile("src/graph/graph.cc",
                       ReadFixture("rule8_snapshot_bad.cc"))
                  .empty());
}

// ---------------------------------------------------------------------------
// Rule 9: graph-mutation
// ---------------------------------------------------------------------------

TEST(LintGraphMutationTest, FlagsStorageMemberReferencesOutsideGraphCore) {
  std::vector<Violation> v =
      LintFile("src/service/fixture.cc", ReadFixture("rule9_mutation_bad.cc"));
  ExpectAllRule(v, "graph-mutation");
  // bucket_nodes_ on 10, out_nbrs_ on 13, attr_range_ on 19; the
  // out_range_ mention on 13 is in a comment and the attr_ranges_view
  // identifier on 18 only contains a member name as a substring —
  // neither may fire. Violations come out in token order, so sort.
  std::vector<int> lines = Lines(v);
  std::sort(lines.begin(), lines.end());
  EXPECT_EQ(lines, (std::vector<int>{10, 13, 19}));
}

TEST(LintGraphMutationTest, AcceptsPublicApiAndSubstringIdentifiers) {
  std::vector<Violation> v =
      LintFile("src/service/fixture.cc", ReadFixture("rule9_mutation_good.cc"));
  EXPECT_TRUE(v.empty()) << v.front().message;
}

TEST(LintGraphMutationTest, GraphCoreFilesAreExempt) {
  // Builder, updater and snapshot codec are the sanctioned writers...
  EXPECT_TRUE(LintFile("src/graph/update.cc",
                       ReadFixture("rule9_mutation_bad.cc"))
                  .empty());
  EXPECT_TRUE(LintFile("src/graph/snapshot.cc",
                       ReadFixture("rule9_mutation_bad.cc"))
                  .empty());
  // ...but the exemption is per-file, not all of src/graph/.
  std::vector<Violation> v =
      LintFile("src/graph/graph_io.cc", ReadFixture("rule9_mutation_bad.cc"));
  ExpectAllRule(v, "graph-mutation");
  EXPECT_EQ(v.size(), 3u);
}

// ---------------------------------------------------------------------------
// Rule 10: plan-limits
// ---------------------------------------------------------------------------

TEST(LintPlanLimitsTest, FlagsInlineFormatConstantsInSerializer) {
  std::vector<Violation> v = LintFile("src/service/plan.cc",
                                      ReadFixture("rule10_plan_bad.cc"));
  ExpectAllRule(v, "plan-limits");
  EXPECT_EQ(Lines(v), (std::vector<int>{11, 12, 16}));
}

TEST(LintPlanLimitsTest, AcceptsNamedConstantsMasksAndSmallValues) {
  std::vector<Violation> v = LintFile("src/service/plan.cc",
                                      ReadFixture("rule10_plan_good.cc"));
  EXPECT_TRUE(v.empty()) << v.front().message;
}

TEST(LintPlanLimitsTest, HeaderAndOtherServiceFilesAreExempt) {
  // The pigeonhole itself may (must) hold the literals...
  EXPECT_TRUE(LintFile("src/service/plan.h",
                       "#ifndef WHYQ_SERVICE_PLAN_H_\n"
                       "#define WHYQ_SERVICE_PLAN_H_\n"
                       "inline constexpr int kAlign = 4096;\n#endif\n")
                  .empty());
  // ...and the rule binds to the plan layer only, not all of
  // src/service/ (service.cc may size reserve() calls freely).
  EXPECT_TRUE(LintFile("src/service/service.cc",
                       ReadFixture("rule10_plan_bad.cc"))
                  .empty());
}

// ---------------------------------------------------------------------------
// Limits-rule literal edge cases (shared across rules 7, 8 and 10): hex
// and binary stay exempt under every path, suffixes and separators never
// disguise a decimal knob.
// ---------------------------------------------------------------------------

TEST(LintLimitsEdgeTest, HexAndBinaryLiteralsAreExemptEverywhere) {
  std::string good = ReadFixture("limits_edge_good.cc");
  for (const char* path : {"src/server/fixture.cc", "src/graph/snapshot.cc",
                           "src/service/plan.cc"}) {
    std::vector<Violation> v = LintFile(path, good);
    EXPECT_TRUE(v.empty()) << path << ": " << v.front().message;
  }
}

TEST(LintLimitsEdgeTest, SuffixedAndSeparatedDecimalsAreCaughtEverywhere) {
  std::string bad = ReadFixture("limits_edge_bad.cc");
  struct Case {
    const char* path;
    const char* rule;
  };
  for (const Case& c : {Case{"src/server/fixture.cc", "server-limits"},
                        Case{"src/graph/snapshot.cc", "snapshot-limits"},
                        Case{"src/service/plan.cc", "plan-limits"}}) {
    std::vector<Violation> v = LintFile(c.path, bad);
    ExpectAllRule(v, c.rule);
    EXPECT_EQ(Lines(v), (std::vector<int>{9, 10, 11})) << c.path;
  }
}

// ---------------------------------------------------------------------------
// Rule 11: epoch-pin
// ---------------------------------------------------------------------------

TEST(LintEpochPinTest, FlagsMemberStoreAndStaticLocalWithoutPin) {
  std::vector<Violation> v =
      LintFile("src/service/fixture.cc", ReadFixture("rule11_epoch_bad.cc"));
  ExpectAllRule(v, "epoch-pin");
  EXPECT_EQ(Lines(v), (std::vector<int>{14, 18}));
}

TEST(LintEpochPinTest, AcceptsPinnedMembersAndLocals) {
  std::vector<Violation> v =
      LintFile("src/service/fixture.cc", ReadFixture("rule11_epoch_good.cc"));
  EXPECT_TRUE(v.empty()) << v.front().message;
}

TEST(LintEpochPinTest, GraphLayerIsExempt) {
  // The graph core owns the storage the spans borrow; its internals may
  // hand views around freely.
  EXPECT_TRUE(
      LintFile("src/graph/fixture.cc", ReadFixture("rule11_epoch_bad.cc"))
          .empty());
}

// ---------------------------------------------------------------------------
// Rule 12: unchecked-status
// ---------------------------------------------------------------------------

TEST(LintUncheckedStatusTest, FlagsDiscardedCallsAndUnreadLocals) {
  std::vector<Violation> v =
      LintFile("src/service/fixture.cc", ReadFixture("rule12_status_bad.cc"));
  ExpectAllRule(v, "unchecked-status");
  std::vector<int> lines = Lines(v);
  std::sort(lines.begin(), lines.end());
  EXPECT_EQ(lines, (std::vector<int>{9, 11, 12, 13, 14}));
}

TEST(LintUncheckedStatusTest, AcceptsConsumedVerdicts) {
  std::vector<Violation> v =
      LintFile("src/service/fixture.cc", ReadFixture("rule12_status_good.cc"));
  EXPECT_TRUE(v.empty()) << v.front().message;
}

TEST(LintUncheckedStatusTest, VoidCastDocumentsADeliberateDrop) {
  std::vector<Violation> v = LintFile(
      "src/service/x.cc",
      "void F(WhyqService& s) { (void)s.TrySubmit(Req(), nullptr); }\n");
  EXPECT_TRUE(v.empty()) << v.front().message;
}

// ---------------------------------------------------------------------------
// Rule 13: hot-loop-alloc
// ---------------------------------------------------------------------------

TEST(LintHotLoopAllocTest, FlagsAllocationAndGrowthInHotLoops) {
  std::vector<Violation> v = LintFile("src/matcher/fixture.cc",
                                      ReadFixture("rule13_hotloop_bad.cc"));
  ExpectAllRule(v, "hot-loop-alloc");
  EXPECT_EQ(Lines(v), (std::vector<int>{11, 18}));
}

TEST(LintHotLoopAllocTest, AcceptsPreSizedScratchAndColdFunctions) {
  std::vector<Violation> v = LintFile("src/matcher/fixture.cc",
                                      ReadFixture("rule13_hotloop_good.cc"));
  EXPECT_TRUE(v.empty()) << v.front().message;
}

TEST(LintHotLoopAllocTest, RuleOnlyAppliesToMatcherAndWhy) {
  // Offline generators may allocate in loops named like the hot path.
  EXPECT_TRUE(
      LintFile("src/gen/fixture.cc", ReadFixture("rule13_hotloop_bad.cc"))
          .empty());
}

// ---------------------------------------------------------------------------
// The real tree must be clean — same invariant as the lint_tree ctest
// entry, but failing inside the suite gives a better signal locally.
// ---------------------------------------------------------------------------

TEST(LintTreeTest, RepositoryIsInvariantClean) {
  std::string error;
  std::vector<Violation> v = LintTree(WHYQ_REPO_ROOT, &error);
  EXPECT_TRUE(error.empty()) << error;
  for (const auto& viol : v) {
    ADD_FAILURE() << viol.file << ":" << viol.line << ": [" << viol.rule
                  << "] " << viol.message;
  }
}

}  // namespace
}  // namespace whyq::lint
