// MatchContext coverage in three layers:
//   1. unit tests of the memo itself (lookup = the IsCandidate filter,
//      hit/miss/delta accounting, literal-order-insensitive signatures,
//      Seed/Prime);
//   2. an equivalence property: over random graphs and random operator-set
//      rewrites, every matcher API answers byte-identically with and
//      without a context, under both semantics;
//   3. a counter-based perf regression on a fixed BSBM fixture: the
//      context path never does more work than the context-free path, all
//      pruned work is accounted for exactly, and both paths stay under
//      recorded absolute budgets so candidate-pruning regressions fail
//      loudly instead of just slowing the benchmarks down.

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "common/rng.h"
#include "gen/bsbm.h"
#include "gen/figure1.h"
#include "gen/profiles.h"
#include "gen/query_gen.h"
#include "graph/neighborhood.h"
#include "matcher/candidates.h"
#include "matcher/match_context.h"
#include "matcher/match_engine.h"
#include "matcher/matcher.h"
#include "rewrite/operators.h"
#include "why/picky.h"
#include "why/question.h"

namespace whyq {
namespace {

// Materializes the arena-backed candidate list for vector comparisons.
std::vector<NodeId> ToVec(const MatchContext::CandidateSet& c) {
  return std::vector<NodeId>(c.begin(), c.end());
}

std::vector<NodeId> DirectFilter(const Graph& g, const QueryNode& qn) {
  std::vector<NodeId> out;
  for (NodeId v : g.NodesWithLabel(qn.label)) {
    if (IsCandidate(g, v, qn)) out.push_back(v);
  }
  return out;
}

TEST(MatchContextTest, LookupMatchesDirectFilter) {
  Figure1 f = MakeFigure1();
  MatchContext ctx(f.graph);
  for (QNodeId u = 0; u < f.query.node_count(); ++u) {
    const QueryNode& qn = f.query.node(u);
    const MatchContext::CandidateSet& c = ctx.Lookup(qn);
    std::vector<NodeId> expect = DirectFilter(f.graph, qn);
    EXPECT_EQ(ToVec(c), expect) << "query node " << u;
    // Bitmap agrees with the list on every data node.
    for (NodeId v = 0; v < f.graph.node_count(); ++v) {
      bool in_list = std::binary_search(expect.begin(), expect.end(), v);
      EXPECT_EQ(c.Test(v), in_list) << "node " << v;
    }
  }
  EXPECT_EQ(ctx.stats().hits, 0u);
  EXPECT_GT(ctx.stats().misses, 0u);
}

TEST(MatchContextTest, SecondLookupIsAHit) {
  Figure1 f = MakeFigure1();
  MatchContext ctx(f.graph);
  const QueryNode& qn = f.query.node(f.query.output());
  const MatchContext::CandidateSet& a = ctx.Lookup(qn);
  const MatchContext::CandidateSet& b = ctx.Lookup(qn);
  EXPECT_EQ(&a, &b);  // stable address
  EXPECT_EQ(ctx.stats().hits, 1u);
  EXPECT_EQ(ctx.stats().misses, 1u);
  EXPECT_EQ(ctx.entry_count(), 1u);
}

TEST(MatchContextTest, LiteralOrderDoesNotSplitEntries) {
  Figure1 f = MakeFigure1();
  QueryNode qn = f.query.node(f.query.output());
  SymbolId price = *f.graph.attr_names().Find("Price");
  Literal extra;
  extra.attr = price;
  extra.op = CompareOp::kGe;
  extra.constant = Value(int64_t{100});
  qn.literals.push_back(extra);
  QueryNode reversed = qn;
  std::reverse(reversed.literals.begin(), reversed.literals.end());
  ASSERT_GE(qn.literals.size(), 2u);

  MatchContext ctx(f.graph);
  const MatchContext::CandidateSet& a = ctx.Lookup(qn);
  const MatchContext::CandidateSet& b = ctx.Lookup(reversed);
  EXPECT_EQ(&a, &b);
  EXPECT_EQ(ctx.entry_count(), 1u);
  EXPECT_EQ(ctx.stats().hits, 1u);
}

TEST(MatchContextTest, SupersetLiteralsBuildByDelta) {
  Figure1 f = MakeFigure1();
  const QueryNode& base = f.query.node(f.query.output());
  ASSERT_FALSE(base.literals.empty());
  QueryNode refined = base;
  SymbolId price = *f.graph.attr_names().Find("Price");
  Literal tighter;
  tighter.attr = price;
  tighter.op = CompareOp::kGe;
  tighter.constant = Value(int64_t{550});
  refined.literals.push_back(tighter);

  MatchContext ctx(f.graph);
  ctx.Lookup(base);  // miss: bucket scan
  const MatchContext::CandidateSet& r = ctx.Lookup(refined);
  EXPECT_EQ(ctx.stats().misses, 1u);
  EXPECT_EQ(ctx.stats().delta_builds, 1u);
  // The delta filter must agree with the direct filter exactly.
  EXPECT_EQ(ToVec(r), DirectFilter(f.graph, refined));
}

TEST(MatchContextTest, SeedInstallsExternalResult) {
  Figure1 f = MakeFigure1();
  const QueryNode& qn = f.query.node(f.query.output());
  std::vector<NodeId> computed =
      Candidates(f.graph, f.query, f.query.output());

  MatchContext ctx(f.graph);
  ctx.Seed(qn, computed);
  EXPECT_EQ(ctx.stats().misses, 1u);  // the scan happened, just elsewhere
  const MatchContext::CandidateSet& c = ctx.Lookup(qn);
  EXPECT_EQ(ctx.stats().hits, 1u);  // served from the seeded entry
  EXPECT_EQ(ToVec(c), computed);
  // Re-seeding an existing signature is a no-op.
  ctx.Seed(qn, {});
  EXPECT_EQ(ToVec(ctx.Lookup(qn)), computed);
}

TEST(MatchContextTest, PrimeMemoizesEveryQueryNode) {
  Figure1 f = MakeFigure1();
  MatchContext ctx(f.graph);
  ctx.Prime(f.query);
  size_t entries = ctx.entry_count();
  EXPECT_GT(entries, 0u);
  uint64_t misses = ctx.stats().misses;
  // Every node resolves as a hit now.
  for (QNodeId u = 0; u < f.query.node_count(); ++u) {
    ctx.Lookup(f.query.node(u));
  }
  EXPECT_EQ(ctx.entry_count(), entries);
  EXPECT_EQ(ctx.stats().misses + ctx.stats().delta_builds,
            misses + ctx.stats().delta_builds);
  EXPECT_EQ(ctx.stats().hits, static_cast<uint64_t>(f.query.node_count()));
}

// --- Equivalence property: context vs context-free, random rewrites. ----

// Applies every matcher API with and without a context and demands
// byte-identical results.
void ExpectEquivalent(const Graph& g, const Query& q,
                      const std::vector<NodeId>& probes,
                      MatchSemantics semantics, MatchContext* ctx) {
  std::unique_ptr<MatchEngine> plain = MakeMatchEngine(g, semantics);
  std::unique_ptr<MatchEngine> memo = MakeMatchEngine(g, semantics, ctx);

  EXPECT_EQ(plain->MatchOutput(q), memo->MatchOutput(q));
  EXPECT_EQ(plain->TestAnswers(q, probes), memo->TestAnswers(q, probes));
  NodeSet exclude(probes, g.node_count());
  EXPECT_EQ(plain->CountAnswersNotIn(q, exclude, 3),
            memo->CountAnswersNotIn(q, exclude, 3));
}

TEST(MatchContextEquivalenceTest, RandomRewritesBothSemantics) {
  for (uint64_t seed : {11u, 23u}) {
    Graph g = GenerateProfile(DatasetProfile::kDBpedia, 1200, seed);
    Rng rng(seed * 101 + 7);
    QueryGenConfig qc;
    qc.edges = 4;
    qc.literals_per_node = 2;
    qc.min_answers = 1;
    std::optional<GeneratedQuery> gen = GenerateQuery(g, qc, rng);
    ASSERT_TRUE(gen.has_value()) << "seed " << seed;
    const Query& q = gen->query;

    // Rewrite universe: refinement + relaxation picky operators for the
    // generated answers (first answers as unexpected/missing stand-ins).
    AnswerConfig cfg;
    std::vector<NodeId> entities(gen->answers.begin(),
                                 gen->answers.begin() +
                                     std::min<size_t>(2, gen->answers.size()));
    std::vector<EditOp> ops =
        GenPickyWhy(g, q, gen->answers, entities, cfg);
    std::vector<EditOp> relax = GenPickyWhyNot(g, q, entities, cfg);
    ops.insert(ops.end(), relax.begin(), relax.end());

    // Probe nodes: answers plus random nodes (mix of members/non-members).
    std::vector<NodeId> probes = gen->answers;
    for (int i = 0; i < 8; ++i) {
      probes.push_back(static_cast<NodeId>(rng.Index(g.node_count())));
    }

    for (MatchSemantics sem :
         {MatchSemantics::kIsomorphism, MatchSemantics::kSimulation}) {
      // One context reused across the whole rewrite sweep — the memo must
      // stay correct as signatures accumulate, exactly like inside one
      // Why/Why-not question.
      MatchContext ctx(g);
      ExpectEquivalent(g, q, probes, sem, &ctx);
      for (int trial = 0; trial < 12 && !ops.empty(); ++trial) {
        OperatorSet set;
        for (size_t idx : rng.SampleDistinct(ops.size(),
                                             1 + rng.Index(3))) {
          set.push_back(ops[idx]);
        }
        Query rw = ApplyOperators(q, set);
        ExpectEquivalent(g, rw, probes, sem, &ctx);
      }
    }
  }
}

// --- Counter-based perf regression on a fixed BSBM fixture. -------------

struct RunCounters {
  std::vector<NodeId> answers;
  std::vector<uint8_t> tested;
  MatcherStats stats;
};

RunCounters RunMatch(const Graph& g, const Query& q,
                     const std::vector<NodeId>& probes, MatchContext* ctx) {
  Matcher m(g);
  m.set_context(ctx);
  RunCounters r;
  r.answers = m.MatchOutput(q);
  r.tested = m.TestAnswers(q, probes);
  r.stats = m.stats();
  return r;
}

TEST(MatchContextRegressionTest, BsbmCountersBoundedAndAccounted) {
  BsbmConfig bc;
  bc.products = 400;  // ~2.3k nodes; fixed seed -> fixed fixture
  bc.seed = 9;
  Graph g = GenerateBsbm(bc);
  Rng rng(41);
  QueryGenConfig qc;
  qc.edges = 4;
  qc.literals_per_node = 2;
  qc.min_answers = 2;
  std::optional<GeneratedQuery> gen = GenerateQuery(g, qc, rng);
  ASSERT_TRUE(gen.has_value());
  const Query& q = gen->query;
  std::vector<NodeId> probes = gen->answers;
  for (int i = 0; i < 32; ++i) {
    probes.push_back(static_cast<NodeId>(rng.Index(g.node_count())));
  }

  RunCounters free = RunMatch(g, q, probes, nullptr);
  MatchContext ctx(g);
  RunCounters memo = RunMatch(g, q, probes, &ctx);

  ASSERT_EQ(free.answers, memo.answers);
  ASSERT_EQ(free.tested, memo.tested);

  // The context path never attempts more than the context-free path ...
  EXPECT_LE(memo.stats.embeddings_tried, free.stats.embeddings_tried);
  EXPECT_LE(memo.stats.iso_tests, free.stats.iso_tests);
  // ... and on this literal-rich fixture it strictly prunes.
  EXPECT_LT(memo.stats.embeddings_tried, free.stats.embeddings_tried);
  EXPECT_GT(memo.stats.ctx_pruned, 0u);

  // Exact accounting: every attempt the context skipped is either a root
  // candidate the bucket scan would have iso-tested or an extension the
  // free path would have tried (MatchOutput + TestAnswers only — the
  // early-exit APIs may overstate root prunes).
  EXPECT_EQ(free.stats.embeddings_tried + free.stats.iso_tests,
            memo.stats.embeddings_tried + memo.stats.iso_tests +
                memo.stats.ctx_pruned);

  // Absolute budgets for the fixed fixture (recorded: 13031/1042 attempts/
  // iso-tests context-free, 3808/481 with the context; ~15-20% slack). A
  // pruning regression — candidate memo gone stale, label slices scanning
  // too wide — trips these before it would ever show up in a benchmark.
  EXPECT_LE(free.stats.embeddings_tried, 15000u);
  EXPECT_LE(free.stats.iso_tests, 1250u);
  EXPECT_LE(memo.stats.embeddings_tried, 4500u);
  EXPECT_LE(memo.stats.iso_tests, 580u);

  // Deterministic: a second identical run over a fresh context reproduces
  // the counters bit-for-bit.
  MatchContext ctx2(g);
  RunCounters memo2 = RunMatch(g, q, probes, &ctx2);
  EXPECT_EQ(memo2.stats.embeddings_tried, memo.stats.embeddings_tried);
  EXPECT_EQ(memo2.stats.iso_tests, memo.stats.iso_tests);
  EXPECT_EQ(memo2.stats.ctx_pruned, memo.stats.ctx_pruned);
  EXPECT_EQ(memo2.stats.ctx_misses, memo.stats.ctx_misses);
}

}  // namespace
}  // namespace whyq
