#include <gtest/gtest.h>

#include <algorithm>

#include "gen/figure1.h"
#include "graph/neighborhood.h"
#include "matcher/candidates.h"
#include "matcher/matcher.h"

namespace whyq {
namespace {

std::vector<NodeId> Sorted(std::vector<NodeId> v) {
  std::sort(v.begin(), v.end());
  return v;
}

TEST(CandidatesTest, LabelAndLiterals) {
  Figure1 f = MakeFigure1();
  const Graph& g = f.graph;
  const QueryNode& phone = f.query.node(f.query.output());
  EXPECT_TRUE(IsCandidate(g, f.s6, phone));   // price 600 <= 650
  EXPECT_FALSE(IsCandidate(g, f.s8, phone));  // price 654
  EXPECT_FALSE(IsCandidate(g, 0, phone));     // a Brand node
}

TEST(CandidatesTest, MissingAttributeFailsLiteral) {
  GraphBuilder b;
  NodeId with = b.AddNode("A");
  b.SetAttr(with, "p", Value(int64_t{1}));
  b.AddNode("A");  // lacks p entirely
  Graph g = b.Build();
  QueryNode qn;
  qn.label = *g.node_labels().Find("A");
  qn.literals.push_back(
      Literal{*g.attr_names().Find("p"), CompareOp::kGe, Value(int64_t{0})});
  EXPECT_TRUE(IsCandidate(g, 0, qn));
  EXPECT_FALSE(IsCandidate(g, 1, qn));
}

TEST(CandidatesTest, CandidateListAndCount) {
  Figure1 f = MakeFigure1();
  std::vector<NodeId> c = Candidates(f.graph, f.query, f.query.output());
  EXPECT_EQ(Sorted(c), Sorted({f.a5, f.s5, f.s6}));
  EXPECT_EQ(CountCandidates(f.graph, f.query, f.query.output()), 3u);
}

TEST(MatcherTest, Figure1Answer) {
  Figure1 f = MakeFigure1();
  Matcher m(f.graph);
  EXPECT_EQ(Sorted(m.MatchOutput(f.query)), Sorted({f.a5, f.s5, f.s6}));
}

TEST(MatcherTest, IsAnswerAgreesWithMatchOutput) {
  Figure1 f = MakeFigure1();
  Matcher m(f.graph);
  EXPECT_TRUE(m.IsAnswer(f.query, f.s6));
  EXPECT_FALSE(m.IsAnswer(f.query, f.s8));
  EXPECT_FALSE(m.IsAnswer(f.query, f.s9));
}

TEST(MatcherTest, EdgeDirectionMatters) {
  // Graph: a -> b. Query asking b -> a must not match.
  GraphBuilder gb;
  NodeId a = gb.AddNode("A");
  NodeId b = gb.AddNode("B");
  gb.AddEdge(a, b, "r");
  Graph g = gb.Build();
  SymbolId la = *g.node_labels().Find("A");
  SymbolId lb = *g.node_labels().Find("B");
  SymbolId r = *g.edge_labels().Find("r");

  Query forward;
  QNodeId ua = forward.AddNode(la);
  QNodeId ub = forward.AddNode(lb);
  forward.AddEdge(ua, ub, r);
  forward.SetOutput(ua);
  Query backward;
  ua = backward.AddNode(la);
  ub = backward.AddNode(lb);
  backward.AddEdge(ub, ua, r);
  backward.SetOutput(ua);

  Matcher m(g);
  EXPECT_EQ(m.MatchOutput(forward).size(), 1u);
  EXPECT_TRUE(m.MatchOutput(backward).empty());
}

TEST(MatcherTest, EdgeLabelMatters) {
  GraphBuilder gb;
  NodeId a = gb.AddNode("A");
  NodeId b = gb.AddNode("B");
  gb.AddEdge(a, b, "r");
  Graph g = gb.Build();
  Query q;
  QNodeId ua = q.AddNode(*g.node_labels().Find("A"));
  QNodeId ub = q.AddNode(*g.node_labels().Find("B"));
  q.AddEdge(ua, ub, *g.edge_labels().Find("r") + 17);
  q.SetOutput(ua);
  Matcher m(g);
  EXPECT_TRUE(m.MatchOutput(q).empty());
}

TEST(MatcherTest, InjectivityEnforced) {
  // One B node; query wants two distinct Bs around the output.
  GraphBuilder gb;
  NodeId a = gb.AddNode("A");
  NodeId b = gb.AddNode("B");
  gb.AddEdge(a, b, "r");
  Graph g = gb.Build();
  SymbolId la = *g.node_labels().Find("A");
  SymbolId lb = *g.node_labels().Find("B");
  SymbolId r = *g.edge_labels().Find("r");
  Query q;
  QNodeId ua = q.AddNode(la);
  QNodeId u1 = q.AddNode(lb);
  QNodeId u2 = q.AddNode(lb);
  q.AddEdge(ua, u1, r);
  q.AddEdge(ua, u2, r);
  q.SetOutput(ua);
  Matcher m(g);
  EXPECT_TRUE(m.MatchOutput(q).empty());
  // Adding a second B makes it matchable.
  GraphBuilder gb2;
  NodeId a2 = gb2.AddNode("A");
  NodeId b1 = gb2.AddNode("B");
  NodeId b2 = gb2.AddNode("B");
  gb2.AddEdge(a2, b1, "r");
  gb2.AddEdge(a2, b2, "r");
  Graph g2 = gb2.Build();
  Matcher m2(g2);
  Query q2;
  ua = q2.AddNode(*g2.node_labels().Find("A"));
  u1 = q2.AddNode(*g2.node_labels().Find("B"));
  u2 = q2.AddNode(*g2.node_labels().Find("B"));
  SymbolId r2 = *g2.edge_labels().Find("r");
  q2.AddEdge(ua, u1, r2);
  q2.AddEdge(ua, u2, r2);
  q2.SetOutput(ua);
  EXPECT_EQ(m2.MatchOutput(q2).size(), 1u);
}

TEST(MatcherTest, CyclicQuery) {
  // Directed triangle a->b->c->a; cyclic query matches each corner.
  GraphBuilder gb;
  NodeId a = gb.AddNode("X");
  NodeId b = gb.AddNode("X");
  NodeId c = gb.AddNode("X");
  gb.AddEdge(a, b, "r");
  gb.AddEdge(b, c, "r");
  gb.AddEdge(c, a, "r");
  // A dangling chain that must NOT match the cycle.
  NodeId d = gb.AddNode("X");
  gb.AddEdge(c, d, "r");
  Graph g = gb.Build();
  SymbolId x = *g.node_labels().Find("X");
  SymbolId r = *g.edge_labels().Find("r");
  Query q;
  QNodeId u0 = q.AddNode(x);
  QNodeId u1 = q.AddNode(x);
  QNodeId u2 = q.AddNode(x);
  q.AddEdge(u0, u1, r);
  q.AddEdge(u1, u2, r);
  q.AddEdge(u2, u0, r);
  q.SetOutput(u0);
  Matcher m(g);
  EXPECT_EQ(Sorted(m.MatchOutput(q)), Sorted({a, b, c}));
}

TEST(MatcherTest, SelfLoopOnOutput) {
  GraphBuilder gb;
  NodeId a = gb.AddNode("X");
  NodeId b = gb.AddNode("X");
  gb.AddEdge(a, a, "self");
  (void)b;
  Graph g = gb.Build();
  Query q;
  QNodeId u = q.AddNode(*g.node_labels().Find("X"));
  q.AddEdge(u, u, *g.edge_labels().Find("self"));
  q.SetOutput(u);
  Matcher m(g);
  std::vector<NodeId> ans = m.MatchOutput(q);
  ASSERT_EQ(ans.size(), 1u);
  EXPECT_EQ(ans[0], a);
}

TEST(MatcherTest, DisconnectedQueryEvaluatesOutputComponent) {
  Figure1 f = MakeFigure1();
  Query q = f.query;
  // Strand the Color constraint: all 4 phones with AT&T deals... still only
  // those passing the price literal and brand/deal edges.
  SymbolId color = *f.graph.edge_labels().Find("color");
  ASSERT_TRUE(q.RemoveEdge(0, 1, color));
  Matcher m(f.graph);
  // Without the pink requirement, A5/S5/S6 still match (S8 fails price).
  EXPECT_EQ(Sorted(m.MatchOutput(q)), Sorted({f.a5, f.s5, f.s6}));
}

TEST(MatcherTest, HasAnyMatch) {
  Figure1 f = MakeFigure1();
  Matcher m(f.graph);
  EXPECT_TRUE(m.HasAnyMatch(f.query));
  Query q = f.query;
  q.AddLiteral(q.output(), Literal{*f.graph.attr_names().Find("Price"),
                                   CompareOp::kLt, Value(int64_t{0})});
  EXPECT_FALSE(m.HasAnyMatch(q));
}

TEST(MatcherTest, CountAnswersNotInWithEarlyStop) {
  Figure1 f = MakeFigure1();
  Matcher m(f.graph);
  NodeSet none(std::vector<NodeId>{}, f.graph.node_count());
  EXPECT_EQ(m.CountAnswersNotIn(f.query, none, 10), 3u);
  NodeSet all(std::vector<NodeId>{f.a5, f.s5, f.s6}, f.graph.node_count());
  EXPECT_EQ(m.CountAnswersNotIn(f.query, all, 10), 0u);
  // limit 1 -> early stop reports limit+1.
  EXPECT_EQ(m.CountAnswersNotIn(f.query, none, 1), 2u);
}

TEST(MatcherTest, MatchAllOutputs) {
  Figure1 f = MakeFigure1();
  Query q = f.query;
  q.AddOutput(1);  // also return colors
  Matcher m(f.graph);
  std::vector<std::vector<NodeId>> per = m.MatchAllOutputs(q);
  ASSERT_EQ(per.size(), 2u);
  EXPECT_EQ(per[0].size(), 3u);
  EXPECT_EQ(per[1].size(), 1u);  // only the pink color node
}

TEST(MatcherTest, TestAnswersMatchesPointwiseIsAnswer) {
  Figure1 f = MakeFigure1();
  Matcher m(f.graph);
  std::vector<NodeId> probe{f.a5, f.s5, f.s6, f.s8, f.s9, 0, 1};
  std::vector<uint8_t> batch = m.TestAnswers(f.query, probe);
  ASSERT_EQ(batch.size(), probe.size());
  for (size_t i = 0; i < probe.size(); ++i) {
    EXPECT_EQ(batch[i] != 0, m.IsAnswer(f.query, probe[i])) << i;
  }
}

TEST(MatcherTest, MatchAllOutputsHonorsCancelToken) {
  Figure1 f = MakeFigure1();
  Query q = f.query;
  q.AddOutput(1);  // two outputs: phones and colors
  Matcher m(f.graph);
  // An already-expired token: every output's enumeration must break before
  // testing any candidate, the shape must be preserved (one list per
  // output), and cancelled() must report the truncation.
  CancelToken token;
  token.Cancel();
  m.set_cancel_token(&token);
  std::vector<std::vector<NodeId>> per = m.MatchAllOutputs(q);
  ASSERT_EQ(per.size(), 2u);
  EXPECT_TRUE(per[0].empty());
  EXPECT_TRUE(per[1].empty());
  EXPECT_TRUE(m.cancelled());
  // Re-arming with a live (deadline-free) token resets the latch and the
  // full answer comes back.
  CancelToken live;
  m.set_cancel_token(&live);
  per = m.MatchAllOutputs(q);
  ASSERT_EQ(per.size(), 2u);
  EXPECT_EQ(per[0].size(), 3u);
  EXPECT_EQ(per[1].size(), 1u);
  EXPECT_FALSE(m.cancelled());
}

TEST(MatcherTest, StatsAccumulate) {
  Figure1 f = MakeFigure1();
  Matcher m(f.graph);
  m.MatchOutput(f.query);
  EXPECT_GT(m.stats().iso_tests, 0u);
  EXPECT_GT(m.stats().embeddings_tried, 0u);
  m.ResetStats();
  EXPECT_EQ(m.stats().iso_tests, 0u);
}

}  // namespace
}  // namespace whyq
