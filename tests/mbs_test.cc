#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "why/mbs.h"

namespace whyq {
namespace {

using IndexSet = std::set<size_t>;

std::vector<IndexSet> Enumerate(const std::vector<double>& costs,
                                const std::vector<std::vector<size_t>>& conf,
                                double budget, size_t cap = 100000) {
  std::vector<IndexSet> out;
  EnumerateMaximalBoundedSets(costs, conf, budget, cap,
                              [&](const std::vector<size_t>& s) {
                                out.emplace_back(s.begin(), s.end());
                                return true;
                              });
  return out;
}

// Brute-force reference: all subsets, keep bounded conflict-free maximal.
std::vector<IndexSet> BruteForce(const std::vector<double>& costs,
                                 const std::vector<std::vector<size_t>>& conf,
                                 double budget) {
  size_t n = costs.size();
  auto ok = [&](const IndexSet& s) {
    double c = 0.0;
    for (size_t i : s) c += costs[i];
    if (c > budget + 1e-9) return false;
    for (size_t i : s) {
      for (size_t j : conf[i]) {
        if (s.count(j)) return false;
      }
    }
    return true;
  };
  std::vector<IndexSet> bounded;
  for (size_t mask = 0; mask < (1u << n); ++mask) {
    IndexSet s;
    for (size_t i = 0; i < n; ++i) {
      if (mask & (1u << i)) s.insert(i);
    }
    if (ok(s)) bounded.push_back(s);
  }
  std::vector<IndexSet> maximal;
  for (const IndexSet& s : bounded) {
    bool is_max = true;
    for (size_t j = 0; j < n && is_max; ++j) {
      if (s.count(j)) continue;
      IndexSet bigger = s;
      bigger.insert(j);
      if (ok(bigger)) is_max = false;
    }
    if (is_max) maximal.push_back(s);
  }
  return maximal;
}

void ExpectSameSets(std::vector<IndexSet> a, std::vector<IndexSet> b) {
  auto key = [](const IndexSet& s) {
    std::string k;
    for (size_t i : s) k += std::to_string(i) + ",";
    return k;
  };
  auto cmp = [&](const IndexSet& x, const IndexSet& y) {
    return key(x) < key(y);
  };
  std::sort(a.begin(), a.end(), cmp);
  std::sort(b.begin(), b.end(), cmp);
  EXPECT_EQ(a, b);
}

std::vector<std::vector<size_t>> NoConflicts(size_t n) {
  return std::vector<std::vector<size_t>>(n);
}

TEST(MbsTest, EmptyInputEmitsEmptySet) {
  std::vector<IndexSet> sets = Enumerate({}, {}, 4.0);
  ASSERT_EQ(sets.size(), 1u);
  EXPECT_TRUE(sets[0].empty());
}

TEST(MbsTest, SingleOpWithinBudget) {
  std::vector<IndexSet> sets = Enumerate({2.0}, NoConflicts(1), 4.0);
  ASSERT_EQ(sets.size(), 1u);
  EXPECT_EQ(sets[0], IndexSet{0});
}

TEST(MbsTest, SingleOpOverBudgetLeavesEmptyMaximal) {
  std::vector<IndexSet> sets = Enumerate({5.0}, NoConflicts(1), 4.0);
  ASSERT_EQ(sets.size(), 1u);
  EXPECT_TRUE(sets[0].empty());
}

TEST(MbsTest, MatchesBruteForceUniformCosts) {
  std::vector<double> costs(6, 1.0);
  ExpectSameSets(Enumerate(costs, NoConflicts(6), 3.0),
                 BruteForce(costs, NoConflicts(6), 3.0));
}

TEST(MbsTest, MatchesBruteForceMixedCosts) {
  std::vector<double> costs{0.5, 1.0, 1.5, 2.0, 2.5, 3.0};
  ExpectSameSets(Enumerate(costs, NoConflicts(6), 4.0),
                 BruteForce(costs, NoConflicts(6), 4.0));
}

TEST(MbsTest, MatchesBruteForceWithConflicts) {
  std::vector<double> costs{1.0, 1.0, 2.0, 0.5};
  std::vector<std::vector<size_t>> conf(4);
  conf[0] = {1};
  conf[1] = {0};
  conf[2] = {3};
  conf[3] = {2};
  ExpectSameSets(Enumerate(costs, conf, 3.0), BruteForce(costs, conf, 3.0));
}

// Parameterized property sweep: enumerator == brute force on pseudo-random
// instances of varying size/budget.
class MbsPropertyTest : public testing::TestWithParam<int> {};

TEST_P(MbsPropertyTest, MatchesBruteForce) {
  int seed = GetParam();
  // Simple deterministic LCG so the instance derives from the seed.
  uint64_t state = static_cast<uint64_t>(seed) * 2654435761u + 1;
  auto next = [&]() {
    state = state * 6364136223846793005ull + 1442695040888963407ull;
    return (state >> 33) % 1000;
  };
  size_t n = 3 + next() % 8;  // 3..10 ops
  std::vector<double> costs(n);
  for (double& c : costs) c = 0.25 + static_cast<double>(next() % 16) / 4.0;
  double budget = 1.0 + static_cast<double>(next() % 12) / 2.0;
  std::vector<std::vector<size_t>> conf(n);
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = i + 1; j < n; ++j) {
      if (next() % 10 == 0) {
        conf[i].push_back(j);
        conf[j].push_back(i);
      }
    }
  }
  ExpectSameSets(Enumerate(costs, conf, budget),
                 BruteForce(costs, conf, budget));
}

INSTANTIATE_TEST_SUITE_P(Seeds, MbsPropertyTest, testing::Range(0, 25));

TEST(MbsTest, AllEmittedSetsAreBoundedAndConflictFree) {
  std::vector<double> costs{0.5, 0.5, 1.0, 1.5, 2.5};
  std::vector<std::vector<size_t>> conf(5);
  conf[1] = {2};
  conf[2] = {1};
  double budget = 3.0;
  EnumerateMaximalBoundedSets(
      costs, conf, budget, 100000, [&](const std::vector<size_t>& s) {
        double c = 0.0;
        for (size_t i : s) c += costs[i];
        EXPECT_LE(c, budget + 1e-9);
        for (size_t i : s) {
          for (size_t j : conf[i]) {
            EXPECT_EQ(std::count(s.begin(), s.end(), j), 0);
          }
        }
        return true;
      });
}

TEST(MbsTest, VisitReturningFalseStopsEnumeration) {
  std::vector<double> costs(8, 1.0);
  size_t seen = 0;
  MbsStats stats = EnumerateMaximalBoundedSets(
      costs, NoConflicts(8), 2.0, 100000, [&](const std::vector<size_t>&) {
        ++seen;
        return seen < 3;
      });
  EXPECT_EQ(seen, 3u);
  EXPECT_EQ(stats.emitted, 3u);
  EXPECT_FALSE(stats.truncated);
}

TEST(MbsTest, MaxSetsTruncates) {
  std::vector<double> costs(10, 1.0);
  MbsStats stats = EnumerateMaximalBoundedSets(
      costs, NoConflicts(10), 3.0, 5,
      [](const std::vector<size_t>&) { return true; });
  EXPECT_EQ(stats.emitted, 5u);
  EXPECT_TRUE(stats.truncated);
}

}  // namespace
}  // namespace whyq
