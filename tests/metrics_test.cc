#include "common/metrics.h"

#include <gtest/gtest.h>

#include <cmath>
#include <thread>
#include <vector>

namespace whyq {
namespace {

TEST(MetricsTest, CounterBasics) {
  Counter c;
  EXPECT_EQ(c.Value(), 0u);
  c.Add();
  c.Add(41);
  EXPECT_EQ(c.Value(), 42u);
}

TEST(MetricsTest, CounterConcurrentAddsAreLossless) {
  Counter c;
  constexpr int kThreads = 4;
  constexpr int kPerThread = 10000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&c] {
      for (int i = 0; i < kPerThread; ++i) c.Add();
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(c.Value(), static_cast<uint64_t>(kThreads) * kPerThread);
}

TEST(MetricsTest, HistogramEmpty) {
  StreamingHistogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_DOUBLE_EQ(h.min(), 0.0);
  EXPECT_DOUBLE_EQ(h.max(), 0.0);
  EXPECT_DOUBLE_EQ(h.mean(), 0.0);
  EXPECT_DOUBLE_EQ(h.Quantile(0.95), 0.0);
}

TEST(MetricsTest, HistogramTracksExactMinMeanMax) {
  StreamingHistogram h;
  h.Record(1.5);
  h.Record(2.5);
  h.Record(100.0);
  EXPECT_EQ(h.count(), 3u);
  EXPECT_DOUBLE_EQ(h.min(), 1.5);
  EXPECT_DOUBLE_EQ(h.max(), 100.0);
  EXPECT_DOUBLE_EQ(h.mean(), 104.0 / 3.0);
  EXPECT_DOUBLE_EQ(h.sum(), 104.0);
}

TEST(MetricsTest, QuantilesWithinBucketResolution) {
  StreamingHistogram h;
  for (int i = 1; i <= 1000; ++i) h.Record(static_cast<double>(i));
  // Bucket width is <= 12.5% relative; allow 15% slack.
  EXPECT_NEAR(h.Quantile(0.50), 500.0, 75.0);
  EXPECT_NEAR(h.Quantile(0.95), 950.0, 143.0);
  EXPECT_NEAR(h.Quantile(0.99), 990.0, 149.0);
  // Edge quantiles resolve to the edge buckets (within bucket width) and
  // never leave the exact [min, max] envelope.
  EXPECT_NEAR(h.Quantile(0.0), 1.0, 0.15);
  EXPECT_NEAR(h.Quantile(1.0), 1000.0, 20.0);
  EXPECT_GE(h.Quantile(0.0), h.min());
  EXPECT_LE(h.Quantile(1.0), h.max());
}

// The property the old sample-buffer stats provably lacked: after any
// number of samples, a shift in the input distribution still moves the
// quantiles — nothing is frozen on early traffic.
TEST(MetricsTest, QuantilesTrackMidRunShift) {
  StreamingHistogram h;
  constexpr int kPhase = 70000;  // > the old 65536-sample buffer
  for (int i = 0; i < kPhase; ++i) h.Record(1.0);
  EXPECT_NEAR(h.Quantile(0.95), 1.0, 0.2);
  for (int i = 0; i < kPhase; ++i) h.Record(100.0);
  // 95th percentile of the combined stream lies in the slow phase.
  EXPECT_GT(h.Quantile(0.95), 80.0);
  EXPECT_DOUBLE_EQ(h.max(), 100.0);
  EXPECT_EQ(h.count(), 2u * kPhase);
}

TEST(MetricsTest, BucketGeometry) {
  // Bounds are monotone, and every recorded value lands in a bucket whose
  // [lower, upper) interval contains it.
  for (size_t i = 0; i + 1 < StreamingHistogram::kBucketCount; ++i) {
    EXPECT_LT(StreamingHistogram::BucketLowerBound(i),
              StreamingHistogram::BucketLowerBound(i + 1));
  }
  for (double v : {0.001, 0.5, 1.0, 1.5, 3.7, 64.0, 1000.0, 123456.0}) {
    size_t i = StreamingHistogram::BucketIndex(v);
    ASSERT_LT(i, StreamingHistogram::kBucketCount);
    EXPECT_LE(StreamingHistogram::BucketLowerBound(i), v) << "v=" << v;
    EXPECT_GT(StreamingHistogram::BucketUpperBound(i), v) << "v=" << v;
  }
}

TEST(MetricsTest, OutOfRangeValuesClampToEdgeBuckets) {
  StreamingHistogram h;
  h.Record(0.0);    // below the covered range
  h.Record(-5.0);   // nonsense input: clamps, never crashes
  h.Record(1e12);   // above the covered range
  EXPECT_EQ(h.count(), 3u);
  EXPECT_DOUBLE_EQ(h.min(), -5.0);   // exact envelope keeps the raw value
  EXPECT_DOUBLE_EQ(h.max(), 1e12);
  EXPECT_EQ(h.BucketCount(0), 2u);
  EXPECT_EQ(h.BucketCount(StreamingHistogram::kBucketCount - 1), 1u);
  // Quantiles stay within the exact envelope even for clamped samples.
  EXPECT_GE(h.Quantile(0.99), -5.0);
  EXPECT_LE(h.Quantile(0.99), 1e12);
}

TEST(MetricsTest, RequestTraceTotalsAndRendering) {
  RequestTrace t;
  t.queue_ms = 1.0;
  t.parse_ms = 2.0;
  t.prepare_ms = 3.0;
  t.candidates_ms = 1.0;
  t.answer_match_ms = 1.5;
  t.path_index_ms = 0.5;
  t.search_ms = 4.0;
  t.matcher_candidates = 7;
  t.mbs_enumerated = 5;
  t.mbs_verified = 3;
  t.greedy_rounds = 0;
  EXPECT_DOUBLE_EQ(t.StagesTotalMs(), 10.0);
  std::string s = t.ToString();
  EXPECT_NE(s.find("stages:"), std::string::npos);
  EXPECT_NE(s.find("work:"), std::string::npos);
  EXPECT_NE(s.find("mbs-enumerated=5"), std::string::npos);
  EXPECT_NE(s.find("mbs-verified=3"), std::string::npos);
  // Sub-stages render only when the prepare step actually built something.
  EXPECT_NE(s.find("path-index"), std::string::npos);
  RequestTrace hit;
  hit.prepare_ms = 0.1;
  EXPECT_EQ(hit.ToString().find("path-index"), std::string::npos);
}

}  // namespace
}  // namespace whyq
