#include <gtest/gtest.h>

#include "gen/figure1.h"
#include "rewrite/operators.h"

namespace whyq {
namespace {

class OperatorsTest : public testing::Test {
 protected:
  OperatorsTest() : f_(MakeFigure1()) {
    price_ = *f_.graph.attr_names().Find("Price");
    val_ = *f_.graph.attr_names().Find("val");
    color_ = *f_.graph.edge_labels().Find("color");
    series_ = *f_.graph.edge_labels().Find("series");
  }
  Figure1 f_;
  SymbolId price_, val_, color_, series_;
};

TEST_F(OperatorsTest, KindClassification) {
  EXPECT_TRUE(IsRelaxation(OpKind::kRxL));
  EXPECT_TRUE(IsRelaxation(OpKind::kRmL));
  EXPECT_TRUE(IsRelaxation(OpKind::kRmE));
  EXPECT_TRUE(IsRefinement(OpKind::kRfL));
  EXPECT_TRUE(IsRefinement(OpKind::kAddL));
  EXPECT_TRUE(IsRefinement(OpKind::kAddE));
  EXPECT_STREQ(OpKindName(OpKind::kRxL), "RxL");
  EXPECT_STREQ(OpKindName(OpKind::kAddE), "AddE");
}

TEST_F(OperatorsTest, ApplyRxL) {
  EditOp op;
  op.kind = OpKind::kRxL;
  op.u = 0;
  op.before = Literal{price_, CompareOp::kLe, Value(int64_t{650})};
  op.after = Literal{price_, CompareOp::kLe, Value(int64_t{799})};
  Query out = ApplyOperators(f_.query, {op});
  ASSERT_EQ(out.node(0).literals.size(), 1u);
  EXPECT_EQ(out.node(0).literals[0].constant.as_int(), 799);
  // Original untouched (value semantics).
  EXPECT_EQ(f_.query.node(0).literals[0].constant.as_int(), 650);
}

TEST_F(OperatorsTest, ApplyRmLAndRmE) {
  EditOp rml;
  rml.kind = OpKind::kRmL;
  rml.u = 1;
  rml.before = Literal{val_, CompareOp::kEq, Value("pink")};
  EditOp rme;
  rme.kind = OpKind::kRmE;
  rme.u = 0;
  rme.v = 1;
  rme.edge_label = color_;
  Query out = ApplyOperators(f_.query, {rml, rme});
  EXPECT_TRUE(out.node(1).literals.empty());
  EXPECT_EQ(out.edge_count(), f_.query.edge_count() - 1);
}

TEST_F(OperatorsTest, ApplyAddLAndAddEExisting) {
  EditOp addl;
  addl.kind = OpKind::kAddL;
  addl.u = 0;
  addl.after = Literal{price_, CompareOp::kGt, Value(int64_t{120})};
  EditOp adde;
  adde.kind = OpKind::kAddE;
  adde.u = 1;
  adde.v = 2;
  adde.edge_label = color_;
  Query out = ApplyOperators(f_.query, {addl, adde});
  EXPECT_EQ(out.node(0).literals.size(), 2u);
  EXPECT_EQ(out.edge_count(), f_.query.edge_count() + 1);
}

TEST_F(OperatorsTest, ApplyCompositeAddENewNode) {
  EditOp op;
  op.kind = OpKind::kAddE;
  op.u = 0;
  op.edge_label = series_;
  op.edge_forward = true;
  op.new_node = NewNodeSpec{
      *f_.graph.node_labels().Find("Series"),
      {Literal{val_, CompareOp::kEq, Value("S")}}};
  Query out = ApplyOperators(f_.query, {op});
  EXPECT_EQ(out.node_count(), f_.query.node_count() + 1);
  QNodeId fresh = static_cast<QNodeId>(out.node_count() - 1);
  EXPECT_EQ(out.node(fresh).literals.size(), 1u);
  // Edge direction honored.
  bool found = false;
  for (const QueryEdge& e : out.edges()) {
    found |= e.src == 0 && e.dst == fresh && e.label == series_;
  }
  EXPECT_TRUE(found);

  // Reverse direction.
  op.edge_forward = false;
  Query out2 = ApplyOperators(f_.query, {op});
  fresh = static_cast<QNodeId>(out2.node_count() - 1);
  found = false;
  for (const QueryEdge& e : out2.edges()) {
    found |= e.src == fresh && e.dst == 0 && e.label == series_;
  }
  EXPECT_TRUE(found);
}

TEST_F(OperatorsTest, ConflictsBetweenLiteralEdits) {
  Literal before{price_, CompareOp::kLe, Value(int64_t{650})};
  EditOp rxl1;
  rxl1.kind = OpKind::kRxL;
  rxl1.u = 0;
  rxl1.before = before;
  rxl1.after = Literal{price_, CompareOp::kLe, Value(int64_t{700})};
  EditOp rxl2 = rxl1;
  rxl2.after = Literal{price_, CompareOp::kLe, Value(int64_t{800})};
  EditOp rml;
  rml.kind = OpKind::kRmL;
  rml.u = 0;
  rml.before = before;
  EXPECT_TRUE(OpsConflict(rxl1, rxl2));
  EXPECT_TRUE(OpsConflict(rxl1, rml));
  // Different node or different literal: no conflict.
  EditOp other = rxl1;
  other.u = 1;
  EXPECT_FALSE(OpsConflict(rxl1, other));
}

TEST_F(OperatorsTest, NoConflictAcrossKinds) {
  EditOp addl;
  addl.kind = OpKind::kAddL;
  addl.u = 0;
  addl.after = Literal{price_, CompareOp::kGt, Value(int64_t{1})};
  EditOp rme;
  rme.kind = OpKind::kRmE;
  rme.u = 0;
  rme.v = 1;
  rme.edge_label = color_;
  EXPECT_FALSE(OpsConflict(addl, rme));
  EXPECT_TRUE(OpsConflict(rme, rme));  // duplicate edge removal
}

TEST_F(OperatorsTest, BuildConflictsAdjacency) {
  Literal before{price_, CompareOp::kLe, Value(int64_t{650})};
  EditOp a;
  a.kind = OpKind::kRxL;
  a.u = 0;
  a.before = before;
  a.after = Literal{price_, CompareOp::kLe, Value(int64_t{700})};
  EditOp b = a;
  b.after = Literal{price_, CompareOp::kLe, Value(int64_t{800})};
  EditOp c;
  c.kind = OpKind::kAddL;
  c.u = 0;
  c.after = Literal{price_, CompareOp::kGt, Value(int64_t{0})};
  std::vector<std::vector<size_t>> conf = BuildConflicts({a, b, c});
  ASSERT_EQ(conf.size(), 3u);
  EXPECT_EQ(conf[0], std::vector<size_t>{1});
  EXPECT_EQ(conf[1], std::vector<size_t>{0});
  EXPECT_TRUE(conf[2].empty());
}

TEST_F(OperatorsTest, ToStringCoversKinds) {
  EditOp op;
  op.kind = OpKind::kRmE;
  op.u = 0;
  op.v = 1;
  op.edge_label = color_;
  EXPECT_NE(op.ToString(f_.graph).find("RmE"), std::string::npos);
  op.kind = OpKind::kAddE;
  op.new_node = NewNodeSpec{*f_.graph.node_labels().Find("Series"), {}};
  EXPECT_NE(op.ToString(f_.graph).find("new:Series"), std::string::npos);
  EXPECT_FALSE(DescribeOperators({op, op}, f_.graph).empty());
}

}  // namespace
}  // namespace whyq
