// Oracle suites: the production matcher and the dual-simulation fixpoint
// are checked against brute-force reference implementations on randomly
// generated small instances — the strongest correctness evidence short of
// proofs, per seed-parameterized sweeps.

#include <gtest/gtest.h>

#include <algorithm>
#include <functional>
#include <set>

#include "common/rng.h"
#include "matcher/candidates.h"
#include "matcher/matcher.h"
#include "matcher/simulation.h"

namespace whyq {
namespace {

struct Instance {
  Graph g;
  Query q;
};

// Random small attributed graph + random small query over its label space.
Instance MakeInstance(uint64_t seed) {
  Rng rng(seed);
  Instance inst;
  GraphBuilder b;
  size_t n = 5 + rng.Index(8);           // 5..12 nodes
  size_t n_labels = 2 + rng.Index(3);    // 2..4 labels
  size_t n_elabels = 1 + rng.Index(2);   // 1..2 edge labels
  for (size_t i = 0; i < n; ++i) {
    NodeId v = b.AddNode("L" + std::to_string(rng.Index(n_labels)));
    b.SetAttr(v, "x", Value(rng.Uniform(0, 4)));
    if (rng.Chance(0.5)) b.SetAttr(v, "y", Value(rng.Uniform(0, 2)));
  }
  size_t m = n + rng.Index(2 * n);
  for (size_t i = 0; i < m; ++i) {
    b.AddEdge(static_cast<NodeId>(rng.Index(n)),
              static_cast<NodeId>(rng.Index(n)),
              "r" + std::to_string(rng.Index(n_elabels)));
  }
  inst.g = b.Build();

  Query& q = inst.q;
  size_t qn = 2 + rng.Index(2);  // 2..3 query nodes
  for (size_t i = 0; i < qn; ++i) {
    SymbolId label = static_cast<SymbolId>(rng.Index(n_labels));
    q.AddNode(label);
    if (rng.Chance(0.6)) {
      Literal l;
      l.attr = 0;  // "x"
      l.op = rng.Chance(0.5) ? CompareOp::kLe : CompareOp::kGe;
      l.constant = Value(rng.Uniform(0, 4));
      q.AddLiteral(static_cast<QNodeId>(i), l);
    }
  }
  // Connected-ish edge set: a path plus an optional extra edge.
  for (size_t i = 1; i < qn; ++i) {
    QNodeId a = static_cast<QNodeId>(i - 1);
    QNodeId bq = static_cast<QNodeId>(i);
    if (rng.Chance(0.5)) std::swap(a, bq);
    q.AddEdge(a, bq, static_cast<SymbolId>(rng.Index(n_elabels)));
  }
  if (qn == 3 && rng.Chance(0.5)) {
    q.AddEdge(0, 2, static_cast<SymbolId>(rng.Index(n_elabels)));
  }
  q.SetOutput(static_cast<QNodeId>(rng.Index(qn)));
  return inst;
}

// Brute-force reference: try every injective assignment of query nodes to
// data nodes and collect the output node's images.
std::set<NodeId> BruteForceAnswers(const Graph& g, const Query& q) {
  std::set<NodeId> out;
  size_t qn = q.node_count();
  std::vector<NodeId> assign(qn, kInvalidNode);
  std::vector<uint8_t> used(g.node_count(), 0);
  std::function<void(size_t)> rec = [&](size_t u) {
    if (u == qn) {
      out.insert(assign[q.output()]);
      return;
    }
    for (NodeId v = 0; v < g.node_count(); ++v) {
      if (used[v] || !IsCandidate(g, v, q.node(static_cast<QNodeId>(u)))) {
        continue;
      }
      assign[u] = v;
      used[v] = 1;
      bool ok = true;
      for (const QueryEdge& e : q.edges()) {
        if (e.src > u && e.dst > u) continue;
        if (e.src <= u && e.dst <= u) {
          if (!g.HasEdge(assign[e.src], assign[e.dst], e.label)) ok = false;
        }
        if (!ok) break;
      }
      if (ok) rec(u + 1);
      used[v] = 0;
      assign[u] = kInvalidNode;
    }
  };
  rec(0);
  return out;
}

class MatcherOracleTest : public testing::TestWithParam<int> {};

TEST_P(MatcherOracleTest, AgreesWithBruteForce) {
  Instance inst = MakeInstance(static_cast<uint64_t>(GetParam()) * 131 + 1);
  Matcher m(inst.g);
  std::vector<NodeId> got = m.MatchOutput(inst.q);
  std::set<NodeId> got_set(got.begin(), got.end());
  std::set<NodeId> want = BruteForceAnswers(inst.g, inst.q);
  EXPECT_EQ(got_set, want) << inst.q.ToString(inst.g);
  // IsAnswer agrees pointwise.
  for (NodeId v = 0; v < inst.g.node_count(); ++v) {
    EXPECT_EQ(m.IsAnswer(inst.q, v), want.count(v) > 0) << "node " << v;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, MatcherOracleTest, testing::Range(0, 40));

// Dual-simulation oracle: the returned relation must (1) contain only
// candidates, (2) be closed under the forward/backward witness conditions,
// and (3) be maximal — no pruned candidate can be added back while keeping
// closure (checked by one round of re-insertion attempts).
class SimulationOracleTest : public testing::TestWithParam<int> {};

TEST_P(SimulationOracleTest, MaximalClosedRelation) {
  Instance inst = MakeInstance(static_cast<uint64_t>(GetParam()) * 733 + 5);
  const Graph& g = inst.g;
  const Query& q = inst.q;
  std::vector<std::vector<NodeId>> sim = DualSimulation(g, q);
  auto member = [&](QNodeId u, NodeId v) {
    return std::binary_search(sim[u].begin(), sim[u].end(), v);
  };
  auto closed_at = [&](QNodeId u, NodeId v) {
    if (!IsCandidate(g, v, q.node(u))) return false;
    for (const QueryEdge& e : q.edges()) {
      if (e.src == u) {
        bool witness = false;
        for (const HalfEdge& he : g.out_edges(v)) {
          witness |= he.label == e.label && member(e.dst, he.other);
        }
        if (!witness) return false;
      }
      if (e.dst == u) {
        bool witness = false;
        for (const HalfEdge& he : g.in_edges(v)) {
          witness |= he.label == e.label && member(e.src, he.other);
        }
        if (!witness) return false;
      }
    }
    return true;
  };
  for (QNodeId u = 0; u < q.node_count(); ++u) {
    // (1) + (2): every member is a closed candidate.
    for (NodeId v : sim[u]) EXPECT_TRUE(closed_at(u, v));
    // (3): no non-member candidate is closed w.r.t. the final relation.
    for (NodeId v = 0; v < g.node_count(); ++v) {
      if (member(u, v)) continue;
      EXPECT_FALSE(closed_at(u, v))
          << "u" << u << " could re-admit node " << v;
    }
  }
  // Simulation answers contain the isomorphism answers.
  Matcher m(g);
  for (NodeId v : m.MatchOutput(q)) {
    EXPECT_TRUE(member(q.output(), v));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SimulationOracleTest, testing::Range(0, 40));

}  // namespace
}  // namespace whyq
