// Parallel-vs-serial determinism: with an untruncated search, every
// algorithm must return *identical* answers at threads = 4 and threads = 1
// (same operators, rewritten query text, closeness, guard, cost, and even
// sets_verified) — the contract documented in why/exact_search.h. Also
// covers cancellation: a parallel question past its deadline unwinds
// without leaking tasks into the shared pool. Test names carry "Parallel"
// so the CI thread-sanitizer job picks the whole file up.

#include <gtest/gtest.h>

#include <chrono>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include "common/cancel.h"
#include "common/thread_pool.h"
#include "gen/profiles.h"
#include "harness/experiment.h"
#include "matcher/candidates.h"
#include "matcher/match_engine.h"
#include "matcher/matcher.h"
#include "query/query_parser.h"
#include "rewrite/operators.h"
#include "service/service.h"
#include "why/why_algorithms.h"
#include "why/whynot_algorithms.h"

namespace whyq {
namespace {

std::shared_ptr<const Graph> SweepGraphPtr() {
  static std::shared_ptr<const Graph>* g = new std::shared_ptr<const Graph>(
      std::make_shared<const Graph>(
          GenerateProfile(DatasetProfile::kDBpedia, 2500, 31)));
  return *g;
}

const Graph& SweepGraph() { return *SweepGraphPtr(); }

Workload SweepWorkload(const Graph& g) {
  WorkloadConfig wc;
  wc.items = 2;
  wc.query.edges = 3;
  wc.query.min_answers = 4;
  wc.query.slack = 0.6;
  wc.seed = 77;
  return MakeWorkload(g, wc);
}

AnswerConfig BaseConfig(size_t threads) {
  AnswerConfig cfg;
  cfg.budget = 4.0;
  cfg.guard_m = 2;
  cfg.max_picky_ops = 96;
  // Determinism holds modulo wall-clock truncation; rule it out by using
  // the deterministic emission cap only.
  cfg.exact_time_limit_ms = 0;
  cfg.max_mbs = 20000;
  cfg.threads = threads;
  return cfg;
}

// Everything observable about an answer, flattened for exact comparison.
std::string Fingerprint(const Graph& g, const RewriteAnswer& a) {
  std::string s;
  s += a.found ? "found" : "not-found";
  s += "|ops=" + DescribeOperators(a.ops, g);
  s += "|rw=" + WriteQuery(a.rewritten, g);
  s += "|cl=" + std::to_string(a.eval.closeness);
  s += "|guard=" + std::to_string(a.eval.guard);
  s += "|cost=" + std::to_string(a.cost);
  s += "|est=" + std::to_string(a.estimated_closeness);
  s += "|verified=" + std::to_string(a.sets_verified);
  s += "|picky=" + std::to_string(a.picky_count);
  s += a.exhaustive ? "|exhaustive" : "|truncated";
  return s;
}

TEST(ParallelDeterminismTest, WhyAlgorithmsMatchSerial) {
  const Graph& g = SweepGraph();
  Workload w = SweepWorkload(g);
  ASSERT_FALSE(w.items.empty());
  size_t compared = 0;
  for (const Workload::Item& item : w.items) {
    Matcher m(g);
    std::vector<NodeId> answers = m.MatchOutput(item.gq.query);
    if (answers.empty()) continue;
    WhyQuestion why{{answers[0]}};
    for (auto algo : {&ExactWhy, &ApproxWhy, &IsoWhy}) {
      RewriteAnswer serial =
          algo(g, item.gq.query, answers, why, BaseConfig(1));
      RewriteAnswer parallel =
          algo(g, item.gq.query, answers, why, BaseConfig(4));
      EXPECT_EQ(Fingerprint(g, serial), Fingerprint(g, parallel));
      ++compared;
    }
  }
  EXPECT_GT(compared, 0u);
}

TEST(ParallelDeterminismTest, WhyNotAlgorithmsMatchSerial) {
  const Graph& g = SweepGraph();
  Workload w = SweepWorkload(g);
  ASSERT_FALSE(w.items.empty());
  size_t compared = 0;
  for (const Workload::Item& item : w.items) {
    Matcher m(g);
    std::vector<NodeId> answers = m.MatchOutput(item.gq.query);
    if (answers.empty()) continue;
    for (auto algo : {&ExactWhyNot, &FastWhyNot, &IsoWhyNot}) {
      RewriteAnswer serial =
          algo(g, item.gq.query, answers, item.whynot, BaseConfig(1));
      RewriteAnswer parallel =
          algo(g, item.gq.query, answers, item.whynot, BaseConfig(4));
      EXPECT_EQ(Fingerprint(g, serial), Fingerprint(g, parallel));
      ++compared;
    }
  }
  EXPECT_GT(compared, 0u);
}

TEST(ParallelDeterminismTest, CandidateFilterMatchesSerial) {
  const Graph& g = SweepGraph();
  Workload w = SweepWorkload(g);
  ASSERT_FALSE(w.items.empty());
  for (const Workload::Item& item : w.items) {
    const Query& q = item.gq.query;
    for (QNodeId u = 0; u < q.node_count(); ++u) {
      EXPECT_EQ(Candidates(g, q, u), Candidates(g, q, u, 4));
    }
  }
}

// An already-cancelled parallel question must return promptly with a
// truncated answer and leave nothing queued in the shared pool — the
// synchronous-ParallelFor guarantee a deadline-driven service relies on.
TEST(ParallelDeterminismTest, CancelledParallelSearchLeaksNoTasks) {
  const Graph& g = SweepGraph();
  Workload w = SweepWorkload(g);
  ASSERT_FALSE(w.items.empty());
  Matcher m(g);
  std::vector<NodeId> answers = m.MatchOutput(w.items[0].gq.query);
  ASSERT_FALSE(answers.empty());
  CancelToken token;
  token.Cancel();
  AnswerConfig cfg = BaseConfig(4);
  cfg.cancel = &token;
  WhyQuestion why{{answers[0]}};
  RewriteAnswer a = ExactWhy(g, w.items[0].gq.query, answers, why, cfg);
  EXPECT_FALSE(a.exhaustive);
  RewriteAnswer b =
      FastWhyNot(g, w.items[0].gq.query, answers, w.items[0].whynot, cfg);
  EXPECT_FALSE(b.exhaustive);
  for (int i = 0; i < 100 && ThreadPool::Shared().queued_tasks() > 0; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_EQ(ThreadPool::Shared().queued_tasks(), 0u);
}

// The service's intra_threads knob must not change responses either: the
// synchronous Execute path at intra_threads = 4 matches intra_threads = 1.
TEST(ParallelDeterminismTest, ServiceIntraThreadsKeepsResponsesIdentical) {
  const Graph& g = SweepGraph();
  Workload w = SweepWorkload(g);
  ASSERT_FALSE(w.items.empty());
  std::shared_ptr<const Graph> shared = SweepGraphPtr();

  auto run = [&](size_t intra) {
    ServiceConfig sc;
    sc.workers = 1;
    sc.intra_threads = intra;
    WhyqService service(shared, sc);
    std::vector<std::string> out;
    for (const Workload::Item& item : w.items) {
      Matcher m(g);
      std::vector<NodeId> answers = m.MatchOutput(item.gq.query);
      if (answers.empty()) continue;
      ServiceRequest req;
      req.kind = RequestKind::kWhy;
      req.query_text = WriteQuery(item.gq.query, g);
      req.entities = {answers[0]};
      req.config = BaseConfig(0);  // 0: let the service decide
      ServiceResponse r = service.Execute(req);
      EXPECT_EQ(r.status, ResponseStatus::kOk);
      out.push_back(Fingerprint(g, r.answer));
    }
    return out;
  };
  EXPECT_EQ(run(1), run(4));
}

// Concurrent per-worker MatchContexts over one shared Graph: each thread
// owns its own context (the documented confinement contract) while all of
// them read the same label-partitioned adjacency concurrently. Every
// thread's answers must equal the serial context-free baseline; run under
// the CI thread-sanitizer job, this also proves the Graph's slice arrays
// are genuinely immutable shared state.
TEST(ParallelDeterminismTest, PerWorkerContextsMatchContextFree) {
  const Graph& g = SweepGraph();
  Workload w = SweepWorkload(g);
  ASSERT_FALSE(w.items.empty());
  const Query& q = w.items[0].gq.query;

  Matcher baseline_m(g);
  std::vector<NodeId> baseline = baseline_m.MatchOutput(q);
  std::vector<NodeId> probes = baseline;
  for (NodeId v = 0; v < 16 && v < g.node_count(); ++v) probes.push_back(v);
  std::vector<uint8_t> baseline_tested = baseline_m.TestAnswers(q, probes);

  constexpr int kThreads = 4;
  std::vector<int> ok(kThreads, 0);
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&, t] {
      MatchContext ctx(g);  // thread-confined memo
      Matcher m(g);
      m.set_context(&ctx);
      bool good = true;
      for (int round = 0; round < 3; ++round) {
        good = good && m.MatchOutput(q) == baseline;
        good = good && m.TestAnswers(q, probes) == baseline_tested;
      }
      ok[t] = good ? 1 : 0;
    });
  }
  for (std::thread& th : workers) th.join();
  for (int t = 0; t < kThreads; ++t) EXPECT_EQ(ok[t], 1) << "thread " << t;
}

}  // namespace
}  // namespace whyq
