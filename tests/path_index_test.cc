#include <gtest/gtest.h>

#include "gen/figure1.h"
#include "gen/profiles.h"
#include "gen/query_gen.h"
#include "matcher/matcher.h"
#include "matcher/path_index.h"

namespace whyq {
namespace {

TEST(PathIndexTest, EnumeratesMaximalPaths) {
  Figure1 f = MakeFigure1();
  PathIndex idx(f.query, 16);
  // The Fig. 1 query is a star with 3 leaves -> 3 maximal paths.
  EXPECT_EQ(idx.path_count(), 3u);
  EXPECT_FALSE(idx.ToString(f.graph).empty());
}

TEST(PathIndexTest, CapLimitsPaths) {
  Figure1 f = MakeFigure1();
  PathIndex idx(f.query, 2);
  EXPECT_EQ(idx.path_count(), 2u);
}

TEST(PathIndexTest, SingleNodeQueryHasNoPaths) {
  Figure1 f = MakeFigure1();
  Query q;
  QNodeId u = q.AddNode(*f.graph.node_labels().Find("Cellphone"));
  q.SetOutput(u);
  PathIndex idx(q, 8);
  EXPECT_EQ(idx.path_count(), 0u);
  // Passes degenerates to the candidate test.
  EXPECT_TRUE(idx.Passes(f.graph, q, f.s6));
  EXPECT_FALSE(idx.Passes(f.graph, q, 0));  // a Brand node
}

TEST(PathIndexTest, AnswersAlwaysPass) {
  Figure1 f = MakeFigure1();
  PathIndex idx(f.query, 8);
  for (NodeId v : {f.a5, f.s5, f.s6}) {
    EXPECT_TRUE(idx.Passes(f.graph, f.query, v));
  }
}

TEST(PathIndexTest, NonAnswersWithBrokenPathsFail) {
  Figure1 f = MakeFigure1();
  PathIndex idx(f.query, 8);
  // S8 fails the output literal (price), S9 additionally lacks pink.
  EXPECT_FALSE(idx.Passes(f.graph, f.query, f.s8));
  EXPECT_FALSE(idx.Passes(f.graph, f.query, f.s9));
}

TEST(PathIndexTest, RemovedEdgeNoLongerConstrains) {
  Figure1 f = MakeFigure1();
  PathIndex idx(f.query, 8);
  Query relaxed = f.query;
  // Relax price and drop the deal edge: S8 still fails (not pink? it is
  // pink; deal was its blocker; price was the other).
  SymbolId price = *f.graph.attr_names().Find("Price");
  Literal before{price, CompareOp::kLe, Value(int64_t{650})};
  Literal after{price, CompareOp::kLe, Value(int64_t{800})};
  ASSERT_TRUE(relaxed.ReplaceLiteral(relaxed.output(), before, after));
  EXPECT_FALSE(idx.Passes(f.graph, relaxed, f.s8));  // deal literal blocks
  SymbolId deal = *f.graph.edge_labels().Find("deal");
  ASSERT_TRUE(relaxed.RemoveEdge(0, 2, deal));
  EXPECT_TRUE(idx.Passes(f.graph, relaxed, f.s8));
}

TEST(PathIndexTest, PassFractionPartialCredit) {
  Figure1 f = MakeFigure1();
  PathIndex idx(f.query, 8);
  double frac_s8 = idx.PassFraction(f.graph, f.query, f.s8);
  EXPECT_GT(frac_s8, 0.0);  // brand + color paths pass
  EXPECT_LT(frac_s8, 1.0);  // candidate test + deal path fail
  EXPECT_DOUBLE_EQ(idx.PassFraction(f.graph, f.query, f.s6), 1.0);
}

// Property: the path test is a *necessary* condition for answering —
// every exact answer must pass it, for arbitrary generated queries.
TEST(PathIndexTest, PassingIsNecessaryForMatching) {
  Graph g = GenerateProfile(DatasetProfile::kIMDb, 3000, 11);
  Rng rng(13);
  Matcher m(g);
  size_t checked = 0;
  for (int i = 0; i < 5; ++i) {
    QueryGenConfig qcfg;
    qcfg.edges = 3;
    qcfg.literals_per_node = 1;
    std::optional<GeneratedQuery> gq = GenerateQuery(g, qcfg, rng);
    if (!gq.has_value()) continue;
    PathIndex idx(gq->query, 8);
    for (NodeId v : gq->answers) {
      EXPECT_TRUE(idx.Passes(g, gq->query, v));
      ++checked;
    }
  }
  EXPECT_GT(checked, 0u);
}

}  // namespace
}  // namespace whyq
