#include <gtest/gtest.h>

#include <algorithm>

#include "gen/figure1.h"
#include "why/picky.h"

namespace whyq {
namespace {

class PickyTest : public testing::Test {
 protected:
  PickyTest() : f_(MakeFigure1()) {
    answers_ = {f_.a5, f_.s5, f_.s6};
    price_ = *f_.graph.attr_names().Find("Price");
    val_ = *f_.graph.attr_names().Find("val");
    series_ = *f_.graph.edge_labels().Find("series");
  }

  bool Contains(const std::vector<EditOp>& ops,
                const std::function<bool(const EditOp&)>& pred) {
    return std::any_of(ops.begin(), ops.end(), pred);
  }

  Figure1 f_;
  std::vector<NodeId> answers_;
  AnswerConfig cfg_;
  SymbolId price_, val_, series_;
};

TEST_F(PickyTest, WhyGeneratesPairingLowerBound) {
  // Example 5: Price <= 650 pairs with AddL(Price > 120) / (Price > 250).
  std::vector<EditOp> ops =
      GenPickyWhy(f_.graph, f_.query, answers_, {f_.a5, f_.s5}, cfg_);
  EXPECT_TRUE(Contains(ops, [&](const EditOp& o) {
    return o.kind == OpKind::kAddL && o.u == 0 && o.after.attr == price_ &&
           o.after.op == CompareOp::kGt && o.after.constant == Value(120);
  }));
  EXPECT_TRUE(Contains(ops, [&](const EditOp& o) {
    return o.kind == OpKind::kAddL && o.u == 0 && o.after.attr == price_ &&
           o.after.op == CompareOp::kGt && o.after.constant == Value(250);
  }));
}

TEST_F(PickyTest, WhyGeneratesCompositeAddESeries) {
  // Example 5: AddE(Cellphone -series-> Series[val = S]) excludes the A5.
  std::vector<EditOp> ops =
      GenPickyWhy(f_.graph, f_.query, answers_, {f_.a5, f_.s5}, cfg_);
  EXPECT_TRUE(Contains(ops, [&](const EditOp& o) {
    return o.kind == OpKind::kAddE && o.new_node.has_value() &&
           o.edge_label == series_ && o.new_node->literals.size() == 1 &&
           o.new_node->literals[0].attr == val_ &&
           o.new_node->literals[0].constant == Value("S");
  }));
  // And the bare structural variant.
  EXPECT_TRUE(Contains(ops, [&](const EditOp& o) {
    return o.kind == OpKind::kAddE && o.new_node.has_value() &&
           o.edge_label == series_ && o.new_node->literals.empty();
  }));
}

TEST_F(PickyTest, WhyGeneratesRfLTighteningPrice) {
  std::vector<EditOp> ops =
      GenPickyWhy(f_.graph, f_.query, answers_, {f_.a5, f_.s5}, cfg_);
  // RfL(Price <= 650 -> Price < 250) cuts below the A5.
  EXPECT_TRUE(Contains(ops, [&](const EditOp& o) {
    return o.kind == OpKind::kRfL && o.u == 0 &&
           o.after.op == CompareOp::kLt && o.after.constant == Value(250);
  }));
}

TEST_F(PickyTest, WhyAllOperatorsAreRefinements) {
  std::vector<EditOp> ops =
      GenPickyWhy(f_.graph, f_.query, answers_, {f_.a5, f_.s5}, cfg_);
  for (const EditOp& o : ops) EXPECT_TRUE(IsRefinement(o.kind));
}

TEST_F(PickyTest, WhyEmptyUnexpectedYieldsNothing) {
  EXPECT_TRUE(GenPickyWhy(f_.graph, f_.query, answers_, {}, cfg_).empty());
}

TEST_F(PickyTest, WhyRespectsCap) {
  AnswerConfig tight = cfg_;
  tight.max_picky_ops = 5;
  std::vector<EditOp> ops =
      GenPickyWhy(f_.graph, f_.query, answers_, {f_.a5, f_.s5}, tight);
  EXPECT_LE(ops.size(), 5u);
}

TEST_F(PickyTest, WhyOpsAreDeduplicated) {
  std::vector<EditOp> ops =
      GenPickyWhy(f_.graph, f_.query, answers_, {f_.a5, f_.s5}, cfg_);
  for (size_t i = 0; i < ops.size(); ++i) {
    for (size_t j = i + 1; j < ops.size(); ++j) {
      EXPECT_FALSE(ops[i] == ops[j]) << i << " vs " << j;
    }
  }
}

TEST_F(PickyTest, WhyNotGeneratesRxLTowardMissingPrices) {
  // Example 8: dom(Price, V_C) = {654, 799} yields RxL(l, Price <= 654)
  // and RxL(l, Price <= 799).
  std::vector<EditOp> ops =
      GenPickyWhyNot(f_.graph, f_.query, {f_.s8, f_.s9}, cfg_);
  for (int64_t c : {654, 799}) {
    EXPECT_TRUE(Contains(ops, [&](const EditOp& o) {
      return o.kind == OpKind::kRxL && o.u == 0 &&
             o.after.op == CompareOp::kLe && o.after.constant == Value(c);
    })) << c;
  }
}

TEST_F(PickyTest, WhyNotGeneratesAllRmLAndRmE) {
  std::vector<EditOp> ops =
      GenPickyWhyNot(f_.graph, f_.query, {f_.s8, f_.s9}, cfg_);
  size_t rml = 0;
  size_t rme = 0;
  for (const EditOp& o : ops) {
    EXPECT_TRUE(IsRelaxation(o.kind));
    if (o.kind == OpKind::kRmL) ++rml;
    if (o.kind == OpKind::kRmE) ++rme;
  }
  EXPECT_EQ(rml, 4u);  // one per literal of Q
  EXPECT_EQ(rme, 3u);  // one per edge of Q
}

TEST_F(PickyTest, WhyNotEmptyMissingYieldsNothing) {
  EXPECT_TRUE(GenPickyWhyNot(f_.graph, f_.query, {}, cfg_).empty());
}

TEST_F(PickyTest, WhyNotNoUselessRelaxations) {
  // Relaxing toward values below the current bound never appears: every
  // generated RxL must actually weaken the literal.
  std::vector<EditOp> ops =
      GenPickyWhyNot(f_.graph, f_.query, {f_.s8, f_.s9}, cfg_);
  for (const EditOp& o : ops) {
    if (o.kind != OpKind::kRxL) continue;
    if (o.before.op == CompareOp::kLe && o.after.op == CompareOp::kLe) {
      EXPECT_GE(*o.after.constant.Compare(o.before.constant), 0);
    }
  }
}

TEST_F(PickyTest, DomainSubsamplingKeepsBounds) {
  // With a tiny domain cap the generator still emits usable operators.
  PickyLimits limits;
  limits.max_domain_values = 1;
  std::vector<EditOp> ops = GenPickyWhyNot(f_.graph, f_.query,
                                           {f_.s8, f_.s9}, cfg_, limits);
  EXPECT_FALSE(ops.empty());
}

}  // namespace
}  // namespace whyq
