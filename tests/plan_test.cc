// The persistent compiled-plan layer (service/plan.h): the on-disk format
// round-trip, the full rejection matrix (truncation sweep, bit flips,
// wrong magic/version/endian, tampered stamps), the PlanStore lifecycle
// (save, hit, eviction by byte budget, boot warm pass, update mirroring),
// and the counter-pinned equivalence proof that a store-loaded plan
// answers byte-identically to a freshly built one under both semantics.
// The concurrency test runs TryLoad probes against writer-thread eviction
// churn — the suite name matches the CI TSan job's filter.

#include <gtest/gtest.h>

#include <dirent.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cstddef>
#include <cstring>
#include <fstream>
#include <memory>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "gen/figure1.h"
#include "graph/graph.h"
#include "graph/snapshot.h"
#include "graph/update.h"
#include "query/query_parser.h"
#include "service/plan.h"
#include "service/prepared.h"
#include "service/request.h"
#include "service/service.h"
#include "why/question.h"
#include "why/why_algorithms.h"
#include "why/whynot_algorithms.h"

namespace whyq {
namespace {

constexpr const char* kReviewQuery =
    "node r Review rating >= i:3\nnode p Product\nedge r p reviewOf\n"
    "output r\n";
constexpr const char* kVendorQuery = "node v Vendor\noutput v\n";

// Reviews 0..3 (ratings 2..5) of product 4; node 5 is an unrelated Vendor.
Graph ReviewGraph() {
  GraphBuilder b;
  for (int i = 0; i < 4; ++i) {
    NodeId v = b.AddNode("Review");
    b.SetAttr(v, "rating", Value(static_cast<int64_t>(i + 2)));
  }
  NodeId p = b.AddNode("Product");
  for (NodeId r = 0; r < 4; ++r) b.AddEdge(r, p, "reviewOf");
  b.AddNode("Vendor");
  return b.Build();
}

Query MustParse(const std::string& text, const Graph& g) {
  std::string err;
  std::optional<Query> q = ParseQuery(text, g, &err);
  EXPECT_TRUE(q.has_value()) << err;
  return *q;
}

// An update the review query provably does not depend on: a fresh Vendor
// node with a fresh attribute and a fresh edge label.
UpdateBatch DisjointBatch(const Graph& g) {
  UpdateBatch batch;
  NodeId fresh = static_cast<NodeId>(g.node_count());
  batch.ops.push_back(UpdateOp::AddNode("Vendor"));
  batch.ops.push_back(UpdateOp::SetAttr(fresh, "zip", Value(int64_t{94110})));
  batch.ops.push_back(UpdateOp::AddEdge(fresh, 5, "ships"));
  return batch;
}

// An update that touches the review query's literal attribute.
UpdateBatch IntersectingBatch() {
  UpdateBatch batch;
  batch.ops.push_back(UpdateOp::SetAttr(0, "rating", Value(int64_t{5})));
  return batch;
}

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + "whyq_plan_" + name;
}

// A fresh store directory: created if needed, cleared of any *.plan files
// a previous run left behind (the store indexes pre-existing files).
std::string FreshDir(const std::string& name) {
  std::string dir = TempPath(name);
  ::mkdir(dir.c_str(), 0755);
  DIR* d = ::opendir(dir.c_str());
  if (d != nullptr) {
    while (dirent* e = ::readdir(d)) {
      std::string n = e->d_name;
      if (n.size() > 5 && n.compare(n.size() - 5, 5, ".plan") == 0) {
        ::unlink((dir + "/" + n).c_str());
      }
    }
    ::closedir(d);
  }
  return dir;
}

std::string ReadAll(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << path;
  return std::string(std::istreambuf_iterator<char>(in),
                     std::istreambuf_iterator<char>());
}

void WriteAll(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  ASSERT_TRUE(out.good()) << path;
}

bool FileExists(const std::string& path) {
  struct stat st;
  return ::stat(path.c_str(), &st) == 0;
}

std::shared_ptr<const PreparedQuery> Prepare(const Graph& g, const Query& q,
                                             MatchSemantics semantics,
                                             size_t max_paths) {
  bool complete = false;
  auto p = PrepareQuery(g, Query(q), semantics, max_paths,
                        /*cancel=*/nullptr, &complete);
  EXPECT_TRUE(complete);
  return p;
}

PlanStamp StampOf(const Graph& g) {
  return PlanStamp{GraphFingerprint(g), g.identity(), g.generation()};
}

bool StepsEqual(const std::vector<std::vector<PathIndex::Step>>& a,
                const std::vector<std::vector<PathIndex::Step>>& b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (a[i].size() != b[i].size()) return false;
    for (size_t j = 0; j < a[i].size(); ++j) {
      const PathIndex::Step& x = a[i][j];
      const PathIndex::Step& y = b[i][j];
      if (x.from != y.from || x.to != y.to || x.edge_label != y.edge_label ||
          x.forward != y.forward) {
        return false;
      }
    }
  }
  return true;
}

// One written plan file over Figure 1, shared by the format tests.
struct WrittenPlan {
  Graph graph;
  Query query;
  std::shared_ptr<const PreparedQuery> prepared;
  CompiledPlan plan;
  PlanStamp stamp;
  std::string path;
  std::string bytes;
};

WrittenPlan WriteFigure1Plan(const std::string& file_tag) {
  Figure1 fig = MakeFigure1();
  WrittenPlan w;
  w.graph = std::move(fig.graph);
  w.query = std::move(fig.query);
  w.prepared = Prepare(w.graph, w.query, MatchSemantics::kIsomorphism, 8);
  w.plan = PlanFromPrepared(*w.prepared, WriteQuery(w.query, w.graph), 8);
  w.stamp = StampOf(w.graph);
  w.path = TempPath(file_tag + ".plan");
  std::string error;
  EXPECT_TRUE(WritePlanFile(w.plan, w.stamp, w.path, &error)) << error;
  w.bytes = ReadAll(w.path);
  return w;
}

// ---------------------------------------------------------------------------
// Format round-trip
// ---------------------------------------------------------------------------

TEST(PlanFormatTest, RoundTripReproducesEveryField) {
  WrittenPlan w = WriteFigure1Plan("roundtrip");
  CompiledPlan loaded;
  PlanStamp stamp;
  std::string error;
  ASSERT_TRUE(LoadPlanFile(w.path, &loaded, &stamp, &error)) << error;

  EXPECT_EQ(loaded.query_text, w.plan.query_text);
  EXPECT_EQ(loaded.semantics, w.plan.semantics);
  EXPECT_EQ(loaded.max_paths, w.plan.max_paths);
  EXPECT_EQ(loaded.answers, w.plan.answers);
  EXPECT_EQ(loaded.output_candidates, w.plan.output_candidates);
  EXPECT_TRUE(StepsEqual(loaded.paths, w.plan.paths));
  EXPECT_EQ(loaded.footprint.node_labels, w.plan.footprint.node_labels);
  EXPECT_EQ(loaded.footprint.edge_labels, w.plan.footprint.edge_labels);
  EXPECT_EQ(loaded.footprint.attrs, w.plan.footprint.attrs);
  EXPECT_EQ(stamp.fingerprint, w.stamp.fingerprint);
  EXPECT_EQ(stamp.identity, w.stamp.identity);
  EXPECT_EQ(stamp.generation, w.stamp.generation);
}

TEST(PlanFormatTest, SamePlanWritesByteIdenticalFiles) {
  WrittenPlan w = WriteFigure1Plan("determ_a");
  std::string other = TempPath("determ_b.plan");
  std::string error;
  ASSERT_TRUE(WritePlanFile(w.plan, w.stamp, other, &error)) << error;
  EXPECT_EQ(w.bytes, ReadAll(other));
}

TEST(PlanFormatTest, PreparedFromPlanRebuildsTheOriginalArtifacts) {
  WrittenPlan w = WriteFigure1Plan("rebuild");
  CompiledPlan loaded;
  PlanStamp stamp;
  std::string error;
  ASSERT_TRUE(LoadPlanFile(w.path, &loaded, &stamp, &error)) << error;
  auto rebuilt = PreparedFromPlan(loaded, w.graph, &error);
  ASSERT_NE(rebuilt, nullptr) << error;

  EXPECT_EQ(rebuilt->semantics, w.prepared->semantics);
  EXPECT_EQ(rebuilt->answers, w.prepared->answers);
  EXPECT_EQ(rebuilt->output_candidates, w.prepared->output_candidates);
  EXPECT_TRUE(
      StepsEqual(rebuilt->path_index.paths(), w.prepared->path_index.paths()));
  EXPECT_EQ(rebuilt->footprint.node_labels, w.prepared->footprint.node_labels);
  EXPECT_EQ(rebuilt->footprint.edge_labels, w.prepared->footprint.edge_labels);
  EXPECT_EQ(rebuilt->footprint.attrs, w.prepared->footprint.attrs);
  EXPECT_EQ(WriteQuery(rebuilt->query, w.graph),
            WriteQuery(w.prepared->query, w.graph));
}

TEST(PlanFormatTest, RestampRewritesTheStampAndNothingElse) {
  WrittenPlan w = WriteFigure1Plan("restamp_src");
  PlanStamp next{w.stamp.fingerprint + 7, w.stamp.identity,
                 w.stamp.generation + 1};
  std::string dst = TempPath("restamp_dst.plan");
  std::string error;
  ASSERT_TRUE(RestampPlanFile(w.path, dst, next, &error)) << error;

  CompiledPlan loaded;
  PlanStamp stamp;
  ASSERT_TRUE(LoadPlanFile(dst, &loaded, &stamp, &error)) << error;
  EXPECT_EQ(stamp.fingerprint, next.fingerprint);
  EXPECT_EQ(stamp.generation, next.generation);
  EXPECT_EQ(loaded.query_text, w.plan.query_text);
  EXPECT_EQ(loaded.answers, w.plan.answers);
  EXPECT_TRUE(StepsEqual(loaded.paths, w.plan.paths));
  // Outside the header (stamp fields + recomputed checksum) the two files
  // are byte-identical — restamping never touches the payloads.
  std::string restamped = ReadAll(dst);
  ASSERT_EQ(restamped.size(), w.bytes.size());
  EXPECT_EQ(restamped.substr(sizeof(PlanHeader)),
            w.bytes.substr(sizeof(PlanHeader)));
  // The source file still validates with its original stamp.
  ASSERT_TRUE(LoadPlanFile(w.path, &loaded, &stamp, &error)) << error;
  EXPECT_EQ(stamp.fingerprint, w.stamp.fingerprint);
}

TEST(PlanFormatTest, KeyHashSeparatesGraphsAndBodies) {
  std::string body_a = PreparedQueryKeyBody(MatchSemantics::kIsomorphism, 8,
                                            "node v Vendor\noutput v\n");
  std::string body_b = PreparedQueryKeyBody(MatchSemantics::kSimulation, 8,
                                            "node v Vendor\noutput v\n");
  std::string body_c = PreparedQueryKeyBody(MatchSemantics::kIsomorphism, 4,
                                            "node v Vendor\noutput v\n");
  EXPECT_NE(PlanKeyHash(1, body_a), PlanKeyHash(2, body_a));
  EXPECT_NE(PlanKeyHash(1, body_a), PlanKeyHash(1, body_b));
  EXPECT_NE(PlanKeyHash(1, body_a), PlanKeyHash(1, body_c));
  EXPECT_EQ(PlanFileName(PlanKeyHash(1, body_a)).size(),
            PlanFileName(0).size());
}

// ---------------------------------------------------------------------------
// Rejection matrix
// ---------------------------------------------------------------------------

TEST(PlanRejectTest, EveryTruncationFailsToLoad) {
  WrittenPlan w = WriteFigure1Plan("truncate");
  std::string victim = TempPath("truncate_victim.plan");
  CompiledPlan out;
  PlanStamp stamp;
  for (size_t len = 0; len < w.bytes.size(); ++len) {
    WriteAll(victim, w.bytes.substr(0, len));
    std::string error;
    EXPECT_FALSE(LoadPlanFile(victim, &out, &stamp, &error))
        << "prefix of " << len << " bytes loaded";
  }
}

TEST(PlanRejectTest, EveryBitFlipFailsOrLeavesContentIntact) {
  // Flipping any single byte either fails validation or — when the flip
  // lands in inter-section padding, which the checksum deliberately does
  // not cover — decodes a plan identical to the original. A flip that
  // silently changes decoded content would be a checksum coverage hole.
  WrittenPlan w = WriteFigure1Plan("bitflip");
  std::string victim = TempPath("bitflip_victim.plan");
  for (size_t i = 0; i < w.bytes.size(); ++i) {
    std::string mutated = w.bytes;
    mutated[i] = static_cast<char>(mutated[i] ^ 0x01);
    WriteAll(victim, mutated);
    CompiledPlan out;
    PlanStamp stamp;
    std::string error;
    if (!LoadPlanFile(victim, &out, &stamp, &error)) continue;
    EXPECT_EQ(out.query_text, w.plan.query_text) << "flip at byte " << i;
    EXPECT_EQ(out.answers, w.plan.answers) << "flip at byte " << i;
    EXPECT_EQ(out.output_candidates, w.plan.output_candidates)
        << "flip at byte " << i;
    EXPECT_TRUE(StepsEqual(out.paths, w.plan.paths)) << "flip at byte " << i;
    EXPECT_EQ(stamp.fingerprint, w.stamp.fingerprint) << "flip at byte " << i;
    EXPECT_EQ(stamp.generation, w.stamp.generation) << "flip at byte " << i;
  }
}

TEST(PlanRejectTest, HeaderFieldTamperingIsNamedPrecisely) {
  WrittenPlan w = WriteFigure1Plan("tamper");
  std::string victim = TempPath("tamper_victim.plan");
  CompiledPlan out;
  PlanStamp stamp;
  std::string error;

  {  // Wrong magic: the very first check.
    std::string bytes = w.bytes;
    bytes[0] = 'x';
    WriteAll(victim, bytes);
    ASSERT_FALSE(LoadPlanFile(victim, &out, &stamp, &error));
    EXPECT_NE(error.find("bad magic"), std::string::npos) << error;
  }
  {  // Unsupported version (checked before the checksum).
    std::string bytes = w.bytes;
    uint32_t v = kPlanVersion + 1;
    std::memcpy(&bytes[offsetof(PlanHeader, version)], &v, sizeof(v));
    WriteAll(victim, bytes);
    ASSERT_FALSE(LoadPlanFile(victim, &out, &stamp, &error));
    EXPECT_NE(error.find("unsupported version"), std::string::npos) << error;
  }
  {  // Foreign byte order: the endian check reads back byte-swapped.
    std::string bytes = w.bytes;
    uint32_t swapped = 0x04030201;
    std::memcpy(&bytes[offsetof(PlanHeader, endian_check)], &swapped,
                sizeof(swapped));
    WriteAll(victim, bytes);
    ASSERT_FALSE(LoadPlanFile(victim, &out, &stamp, &error));
    EXPECT_NE(error.find("foreign byte order"), std::string::npos) << error;
  }
  {  // A tampered epoch stamp is caught by the checksum: the stamp lives
    // in the checksummed header prefix, so no edit can move a plan to a
    // different graph epoch without failing validation.
    std::string bytes = w.bytes;
    bytes[offsetof(PlanHeader, graph_generation)] ^= 0x01;
    WriteAll(victim, bytes);
    ASSERT_FALSE(LoadPlanFile(victim, &out, &stamp, &error));
    EXPECT_NE(error.find("checksum mismatch"), std::string::npos) << error;
  }
  {  // Inflated file_bytes: rejected as truncated before any allocation.
    std::string bytes = w.bytes;
    uint64_t inflated = bytes.size() + kPlanSectionAlign;
    std::memcpy(&bytes[offsetof(PlanHeader, file_bytes)], &inflated,
                sizeof(inflated));
    WriteAll(victim, bytes);
    ASSERT_FALSE(LoadPlanFile(victim, &out, &stamp, &error));
    EXPECT_NE(error.find("truncated file"), std::string::npos) << error;
  }
  {  // A stub far below the fixed header size.
    WriteAll(victim, "WHYQPLN1");
    ASSERT_FALSE(LoadPlanFile(victim, &out, &stamp, &error));
    EXPECT_NE(error.find("file too small"), std::string::npos) << error;
  }
}

// ---------------------------------------------------------------------------
// PlanStore lifecycle
// ---------------------------------------------------------------------------

TEST(PlanStoreTest, SaveThenTryLoadHits) {
  Graph g = ReviewGraph();
  Query q = MustParse(kReviewQuery, g);
  std::string canonical = WriteQuery(q, g);
  auto prepared = Prepare(g, q, MatchSemantics::kIsomorphism, 8);
  uint64_t fp = GraphFingerprint(g);

  PlanStore store(FreshDir("save_hit"));
  EXPECT_EQ(store.TryLoad(g, fp, MatchSemantics::kIsomorphism, 8, canonical),
            nullptr);
  store.SaveAsync(prepared, canonical, 8, StampOf(g));
  store.Flush();
  EXPECT_EQ(store.counters().writes, 1u);
  EXPECT_EQ(store.file_count(), 1u);
  EXPECT_GT(store.stored_bytes(), 0u);

  auto loaded =
      store.TryLoad(g, fp, MatchSemantics::kIsomorphism, 8, canonical);
  ASSERT_NE(loaded, nullptr);
  EXPECT_EQ(loaded->answers, prepared->answers);
  EXPECT_EQ(loaded->output_candidates, prepared->output_candidates);
  EXPECT_TRUE(
      StepsEqual(loaded->path_index.paths(), prepared->path_index.paths()));
  PlanStore::Counters c = store.counters();
  EXPECT_EQ(c.hits, 1u);
  EXPECT_EQ(c.misses, 1u);
  EXPECT_EQ(c.invalid, 0u);
  // Duplicate saves are no-ops: the file already exists for this key.
  store.SaveAsync(prepared, canonical, 8, StampOf(g));
  store.Flush();
  EXPECT_EQ(store.counters().writes, 1u);
}

TEST(PlanStoreTest, StalePlanIsNeverServed) {
  // A file stamped with the probing graph's fingerprint but an older
  // generation of the same identity must be rejected (and deleted), even
  // though it sits at exactly the probed address — the defense against a
  // restamp bug or a fingerprint collision resurrecting a dead epoch.
  Graph g = ReviewGraph();
  Query q = MustParse(kReviewQuery, g);
  std::string canonical = WriteQuery(q, g);
  auto prepared = Prepare(g, q, MatchSemantics::kIsomorphism, 8);
  uint64_t fp = GraphFingerprint(g);
  std::string body =
      PreparedQueryKeyBody(MatchSemantics::kIsomorphism, 8, canonical);

  std::string dir = FreshDir("stale");
  CompiledPlan plan = PlanFromPrepared(*prepared, canonical, 8);
  PlanStamp stale{fp, g.identity(), g.generation() + 1};  // a foreign epoch
  std::string error;
  ASSERT_TRUE(WritePlanFile(plan, stale,
                            dir + "/" + PlanFileName(PlanKeyHash(fp, body)),
                            &error))
      << error;

  PlanStore store(dir);  // indexes the pre-existing file
  EXPECT_EQ(store.file_count(), 1u);
  EXPECT_EQ(store.TryLoad(g, fp, MatchSemantics::kIsomorphism, 8, canonical),
            nullptr);
  store.Flush();
  PlanStore::Counters c = store.counters();
  EXPECT_EQ(c.hits, 0u);
  EXPECT_EQ(c.invalid, 1u);
  EXPECT_EQ(c.misses, 1u);
  EXPECT_EQ(store.file_count(), 0u);  // the stale file was deleted
}

TEST(PlanStoreTest, WrongFingerprintAtTheProbedAddressIsInvalid) {
  Graph g = ReviewGraph();
  Query q = MustParse(kReviewQuery, g);
  std::string canonical = WriteQuery(q, g);
  auto prepared = Prepare(g, q, MatchSemantics::kIsomorphism, 8);
  uint64_t fp = GraphFingerprint(g);
  std::string body =
      PreparedQueryKeyBody(MatchSemantics::kIsomorphism, 8, canonical);

  std::string dir = FreshDir("wrong_fp");
  CompiledPlan plan = PlanFromPrepared(*prepared, canonical, 8);
  PlanStamp foreign{fp ^ 0xdeadbeefull, g.identity() + 1, 0};
  std::string error;
  ASSERT_TRUE(WritePlanFile(plan, foreign,
                            dir + "/" + PlanFileName(PlanKeyHash(fp, body)),
                            &error))
      << error;

  PlanStore store(dir);
  EXPECT_EQ(store.TryLoad(g, fp, MatchSemantics::kIsomorphism, 8, canonical),
            nullptr);
  store.Flush();
  EXPECT_EQ(store.counters().invalid, 1u);
  EXPECT_EQ(store.file_count(), 0u);
}

TEST(PlanStoreTest, CollidingFileWithDifferentKeyFieldsIsInvalid) {
  // Hash-collision defense: a validly stamped file whose echoed key fields
  // (here max_paths) disagree with the probe is rejected, not served.
  Graph g = ReviewGraph();
  Query q = MustParse(kReviewQuery, g);
  std::string canonical = WriteQuery(q, g);
  auto prepared = Prepare(g, q, MatchSemantics::kIsomorphism, 4);
  uint64_t fp = GraphFingerprint(g);
  std::string probed_body =
      PreparedQueryKeyBody(MatchSemantics::kIsomorphism, 8, canonical);

  std::string dir = FreshDir("collision");
  CompiledPlan plan = PlanFromPrepared(*prepared, canonical, 4);
  std::string error;
  ASSERT_TRUE(
      WritePlanFile(plan, StampOf(g),
                    dir + "/" + PlanFileName(PlanKeyHash(fp, probed_body)),
                    &error))
      << error;

  PlanStore store(dir);
  EXPECT_EQ(store.TryLoad(g, fp, MatchSemantics::kIsomorphism, 8, canonical),
            nullptr);
  store.Flush();
  EXPECT_EQ(store.counters().invalid, 1u);
  EXPECT_EQ(store.file_count(), 0u);
}

TEST(PlanStoreTest, CorruptFileIsRejectedAndDeleted) {
  Graph g = ReviewGraph();
  Query q = MustParse(kReviewQuery, g);
  std::string canonical = WriteQuery(q, g);
  auto prepared = Prepare(g, q, MatchSemantics::kIsomorphism, 8);
  uint64_t fp = GraphFingerprint(g);

  std::string dir = FreshDir("corrupt");
  std::string file;
  {
    PlanStore store(dir);
    store.SaveAsync(prepared, canonical, 8, StampOf(g));
    store.Flush();
    std::string body =
        PreparedQueryKeyBody(MatchSemantics::kIsomorphism, 8, canonical);
    file = dir + "/" + PlanFileName(PlanKeyHash(fp, body));
    ASSERT_TRUE(FileExists(file));
  }
  // Flip the first payload byte (the meta section starts right after the
  // table; padding is not checksummed, payloads are).
  std::string bytes = ReadAll(file);
  PlanSection first;
  std::memcpy(&first, bytes.data() + sizeof(PlanHeader), sizeof(first));
  bytes[first.offset] = static_cast<char>(bytes[first.offset] ^ 0x01);
  WriteAll(file, bytes);

  PlanStore store(dir);
  EXPECT_EQ(store.TryLoad(g, fp, MatchSemantics::kIsomorphism, 8, canonical),
            nullptr);
  store.Flush();
  PlanStore::Counters c = store.counters();
  EXPECT_EQ(c.invalid, 1u);
  EXPECT_EQ(c.misses, 1u);
  EXPECT_FALSE(FileExists(file));
}

TEST(PlanStoreTest, EvictionFollowsTheByteBudgetInRecencyOrder) {
  Graph g = ReviewGraph();
  Query review = MustParse(kReviewQuery, g);
  Query vendor = MustParse(kVendorQuery, g);
  Query product = MustParse("node p Product\noutput p\n", g);
  uint64_t fp = GraphFingerprint(g);
  auto prep = [&](const Query& q) {
    return Prepare(g, q, MatchSemantics::kIsomorphism, 8);
  };
  std::string review_text = WriteQuery(review, g);
  std::string vendor_text = WriteQuery(vendor, g);
  std::string product_text = WriteQuery(product, g);

  // Measure the three plans' combined size to derive a budget that holds
  // any two of them but not all three.
  uint64_t all;
  {
    PlanStore probe(FreshDir("evict_probe"));
    probe.SaveAsync(prep(review), review_text, 8, StampOf(g));
    probe.SaveAsync(prep(vendor), vendor_text, 8, StampOf(g));
    probe.SaveAsync(prep(product), product_text, 8, StampOf(g));
    probe.Flush();
    ASSERT_EQ(probe.file_count(), 3u);
    all = probe.stored_bytes();
    ASSERT_GT(all, 0u);
  }

  PlanStore store(FreshDir("evict"), /*byte_budget=*/all - 1);
  store.SaveAsync(prep(review), review_text, 8, StampOf(g));
  store.SaveAsync(prep(vendor), vendor_text, 8, StampOf(g));
  store.Flush();
  EXPECT_EQ(store.file_count(), 2u);
  // Touch the older plan so the untouched one becomes the LRU victim.
  ASSERT_NE(store.TryLoad(g, fp, MatchSemantics::kIsomorphism, 8, review_text),
            nullptr);
  store.SaveAsync(prep(product), product_text, 8, StampOf(g));
  store.Flush();

  PlanStore::Counters c = store.counters();
  EXPECT_EQ(c.evictions, 1u);
  EXPECT_EQ(store.file_count(), 2u);
  EXPECT_LE(store.stored_bytes(), store.byte_budget());
  EXPECT_NE(store.TryLoad(g, fp, MatchSemantics::kIsomorphism, 8, review_text),
            nullptr);
  EXPECT_EQ(store.TryLoad(g, fp, MatchSemantics::kIsomorphism, 8, vendor_text),
            nullptr);  // the evicted one
  EXPECT_NE(
      store.TryLoad(g, fp, MatchSemantics::kIsomorphism, 8, product_text),
      nullptr);
}

TEST(PlanStoreTest, WarmLoadFillsTheCacheMostRecentFirst) {
  Graph g = ReviewGraph();
  Query review = MustParse(kReviewQuery, g);
  Query vendor = MustParse(kVendorQuery, g);
  uint64_t fp = GraphFingerprint(g);
  std::string review_text = WriteQuery(review, g);
  std::string vendor_text = WriteQuery(vendor, g);
  std::string dir = FreshDir("warm");
  {
    PlanStore store(dir);
    store.SaveAsync(Prepare(g, review, MatchSemantics::kIsomorphism, 8),
                    review_text, 8, StampOf(g));
    store.Flush();  // order the recencies: review first (older) ...
    store.SaveAsync(Prepare(g, vendor, MatchSemantics::kIsomorphism, 8),
                    vendor_text, 8, StampOf(g));
    store.Flush();
  }

  PlanStore store(dir);
  PreparedQueryCache cache(8);
  EXPECT_EQ(store.WarmLoad(g, fp, /*max_plans=*/16, &cache), 2u);
  EXPECT_EQ(cache.size(), 2u);
  std::string prefix = GraphEpochPrefix(g);
  EXPECT_NE(cache.Get(prefix + PreparedQueryKeyBody(
                                   MatchSemantics::kIsomorphism, 8,
                                   review_text)),
            nullptr);
  EXPECT_NE(cache.Get(prefix + PreparedQueryKeyBody(
                                   MatchSemantics::kIsomorphism, 8,
                                   vendor_text)),
            nullptr);
  // Warm loads touch neither hit nor miss counters.
  PlanStore::Counters c = store.counters();
  EXPECT_EQ(c.hits, 0u);
  EXPECT_EQ(c.misses, 0u);

  // A capped pass loads only the most recently used plan.
  PlanStore capped(dir);
  PreparedQueryCache small(8);
  EXPECT_EQ(capped.WarmLoad(g, fp, /*max_plans=*/1, &small), 1u);
  EXPECT_NE(small.Get(prefix + PreparedQueryKeyBody(
                                   MatchSemantics::kIsomorphism, 8,
                                   vendor_text)),
            nullptr);
  EXPECT_EQ(small.Get(prefix + PreparedQueryKeyBody(
                                   MatchSemantics::kIsomorphism, 8,
                                   review_text)),
            nullptr);
}

TEST(PlanStoreTest, WarmLoadSkipsForeignPlansAndDeletesCorruptOnes) {
  Graph g = ReviewGraph();
  Figure1 other = MakeFigure1();
  Query review = MustParse(kReviewQuery, g);
  Query vendor = MustParse(kVendorQuery, g);
  uint64_t fp = GraphFingerprint(g);
  std::string review_text = WriteQuery(review, g);
  std::string vendor_text = WriteQuery(vendor, g);
  std::string dir = FreshDir("warm_mixed");
  std::string corrupt_file;
  {
    PlanStore store(dir);
    store.SaveAsync(Prepare(g, review, MatchSemantics::kIsomorphism, 8),
                    review_text, 8, StampOf(g));
    store.SaveAsync(Prepare(g, vendor, MatchSemantics::kIsomorphism, 8),
                    vendor_text, 8, StampOf(g));
    // A third plan for an unrelated graph shares the directory.
    store.SaveAsync(
        Prepare(other.graph, other.query, MatchSemantics::kIsomorphism, 8),
        WriteQuery(other.query, other.graph), 8, StampOf(other.graph));
    store.Flush();
    std::string body =
        PreparedQueryKeyBody(MatchSemantics::kIsomorphism, 8, vendor_text);
    corrupt_file = dir + "/" + PlanFileName(PlanKeyHash(fp, body));
  }
  // Corrupt the vendor plan's first payload byte.
  std::string bytes = ReadAll(corrupt_file);
  PlanSection first;
  std::memcpy(&first, bytes.data() + sizeof(PlanHeader), sizeof(first));
  bytes[first.offset] = static_cast<char>(bytes[first.offset] ^ 0x01);
  WriteAll(corrupt_file, bytes);

  PlanStore store(dir);
  ASSERT_EQ(store.file_count(), 3u);
  PreparedQueryCache cache(8);
  EXPECT_EQ(store.WarmLoad(g, fp, 16, &cache), 1u);  // only the review plan
  EXPECT_EQ(cache.size(), 1u);
  store.Flush();
  PlanStore::Counters c = store.counters();
  EXPECT_EQ(c.invalid, 1u);
  EXPECT_FALSE(FileExists(corrupt_file));
  EXPECT_EQ(store.file_count(), 2u);  // the foreign plan was left alone
}

TEST(PlanStoreTest, OnUpdateDeletesDroppedAndRestampsCarriedPlans) {
  Graph g = ReviewGraph();
  Graph next;
  UpdateResult r;
  ASSERT_TRUE(g.ApplyUpdate(DisjointBatch(g), &next, &r)) << r.error;
  Query review = MustParse(kReviewQuery, g);
  Query vendor = MustParse(kVendorQuery, g);
  uint64_t old_fp = GraphFingerprint(g);
  uint64_t new_fp = GraphFingerprint(next);
  ASSERT_NE(old_fp, new_fp);
  std::string review_text = WriteQuery(review, g);
  std::string vendor_text = WriteQuery(vendor, g);
  std::string review_body =
      PreparedQueryKeyBody(MatchSemantics::kIsomorphism, 8, review_text);
  std::string vendor_body =
      PreparedQueryKeyBody(MatchSemantics::kIsomorphism, 8, vendor_text);

  PlanStore store(FreshDir("on_update"));
  store.SaveAsync(Prepare(g, review, MatchSemantics::kIsomorphism, 8),
                  review_text, 8, StampOf(g));
  store.SaveAsync(Prepare(g, vendor, MatchSemantics::kIsomorphism, 8),
                  vendor_text, 8, StampOf(g));
  store.Flush();
  ASSERT_EQ(store.file_count(), 2u);

  // Pretend the update dropped the review plan and carried the vendor one
  // (what ApplyDelta decides for an intersecting/disjoint footprint).
  store.OnUpdate(old_fp, StampOf(next), {review_body}, {vendor_body});
  store.Flush();

  PlanStore::Counters c = store.counters();
  EXPECT_EQ(c.invalid, 1u);   // the dropped plan's epoch is gone
  EXPECT_EQ(c.writes, 3u);    // two saves + one restamp
  EXPECT_EQ(store.file_count(), 1u);
  // The carried plan now answers probes for the NEW epoch...
  auto carried = store.TryLoad(next, new_fp, MatchSemantics::kIsomorphism, 8,
                               WriteQuery(MustParse(kVendorQuery, next), next));
  EXPECT_NE(carried, nullptr);
  // ...and neither old-epoch plan resolves anymore.
  EXPECT_EQ(
      store.TryLoad(g, old_fp, MatchSemantics::kIsomorphism, 8, review_text),
      nullptr);
  EXPECT_EQ(
      store.TryLoad(g, old_fp, MatchSemantics::kIsomorphism, 8, vendor_text),
      nullptr);
}

// Runs TryLoad probes from several threads against writer-thread save and
// eviction churn. The suite name keeps it under the CI TSan filter.
TEST(PlanStoreConcurrencyTest, LoadsRaceEvictionsWithoutTearing) {
  Graph g = ReviewGraph();
  uint64_t fp = GraphFingerprint(g);
  std::vector<Query> queries;
  std::vector<std::string> texts;
  std::vector<std::shared_ptr<const PreparedQuery>> prepared;
  const char* dsl[] = {
      kReviewQuery, kVendorQuery, "node p Product\noutput p\n",
      "node r Review rating >= i:4\nnode p Product\nedge r p reviewOf\n"
      "output r\n"};
  for (const char* text : dsl) {
    queries.push_back(MustParse(text, g));
    texts.push_back(WriteQuery(queries.back(), g));
    prepared.push_back(
        Prepare(g, queries.back(), MatchSemantics::kIsomorphism, 8));
  }

  uint64_t one;
  {
    PlanStore probe(FreshDir("race_probe"));
    probe.SaveAsync(prepared[0], texts[0], 8, StampOf(g));
    probe.Flush();
    one = probe.stored_bytes();
  }
  // Budget for ~2 plans: every save round forces evictions under the
  // readers' feet.
  PlanStore store(FreshDir("race"), /*byte_budget=*/2 * one + one / 2);

  constexpr int kRounds = 40;
  std::vector<std::thread> readers;
  std::vector<uint64_t> probes(queries.size(), 0);
  for (size_t t = 0; t < queries.size(); ++t) {
    readers.emplace_back([&, t] {
      for (int i = 0; i < kRounds; ++i) {
        auto p = store.TryLoad(g, fp, MatchSemantics::kIsomorphism, 8,
                               texts[t]);
        if (p != nullptr) {
          EXPECT_EQ(p->answers, prepared[t]->answers);
        }
        ++probes[t];
      }
    });
  }
  for (int i = 0; i < kRounds; ++i) {
    for (size_t t = 0; t < queries.size(); ++t) {
      store.SaveAsync(prepared[t], texts[t], 8, StampOf(g));
    }
  }
  for (std::thread& th : readers) th.join();
  store.Flush();

  PlanStore::Counters c = store.counters();
  uint64_t total = 0;
  for (uint64_t p : probes) total += p;
  // Every probe resolved to exactly one of hit/miss; nothing was lost.
  EXPECT_EQ(c.hits + c.misses, total);
  EXPECT_EQ(c.invalid, 0u);  // eviction churn never serves a broken plan
  EXPECT_LE(store.stored_bytes(), store.byte_budget());
}

// ---------------------------------------------------------------------------
// ApplyDelta LRU preservation (the rekey-recency fix)
// ---------------------------------------------------------------------------

TEST(PreparedCacheLruTest, RekeyedEntriesKeepTheirEvictionOrder) {
  Graph g = ReviewGraph();
  Graph next;
  UpdateResult r;
  ASSERT_TRUE(g.ApplyUpdate(DisjointBatch(g), &next, &r)) << r.error;

  // Three review-footprint queries (all disjoint from the vendor delta),
  // cached in insertion order A, B, C; touching A makes B the LRU entry.
  const char* dsl[] = {
      kReviewQuery,
      "node r Review rating >= i:4\nnode p Product\nedge r p reviewOf\n"
      "output r\n",
      "node r Review rating >= i:5\nnode p Product\nedge r p reviewOf\n"
      "output r\n"};
  PreparedQueryCache cache(3);
  std::vector<std::string> old_keys;
  std::vector<std::string> bodies;
  for (const char* text : dsl) {
    Query q = MustParse(text, g);
    std::string canonical = WriteQuery(q, g);
    bodies.push_back(
        PreparedQueryKeyBody(MatchSemantics::kIsomorphism, 8, canonical));
    old_keys.push_back(GraphEpochPrefix(g) + bodies.back());
    cache.Put(old_keys.back(),
              Prepare(g, q, MatchSemantics::kIsomorphism, 8));
  }
  ASSERT_NE(cache.Get(old_keys[0]), nullptr);  // recency now: A, C, B

  PreparedQueryCache::DeltaOutcome outcome = cache.ApplyDelta(
      GraphEpochPrefix(g), GraphEpochPrefix(next), r.delta);
  EXPECT_EQ(outcome.invalidated, 0u);
  EXPECT_EQ(outcome.rekeyed, 3u);
  EXPECT_EQ(cache.size(), 3u);

  // A fourth insert must evict B — the entry that was least recent BEFORE
  // the update. A rekey that reinserted entries (instead of renaming the
  // list nodes in place) would have scrambled this order.
  Query vendor = MustParse(kVendorQuery, next);
  cache.Put(PreparedQueryKey(vendor, next, MatchSemantics::kIsomorphism, 8),
            Prepare(next, vendor, MatchSemantics::kIsomorphism, 8));
  std::string new_prefix = GraphEpochPrefix(next);
  EXPECT_NE(cache.Get(new_prefix + bodies[0]), nullptr);  // A survives
  EXPECT_EQ(cache.Get(new_prefix + bodies[1]), nullptr);  // B evicted
  EXPECT_NE(cache.Get(new_prefix + bodies[2]), nullptr);  // C survives
}

TEST(PreparedCacheLruTest, RekeyCollisionKeepsTheNewEpochEntry) {
  Graph g = ReviewGraph();
  Graph next;
  UpdateResult r;
  ASSERT_TRUE(g.ApplyUpdate(DisjointBatch(g), &next, &r)) << r.error;
  Query q_old = MustParse(kReviewQuery, g);
  Query q_new = MustParse(kReviewQuery, next);
  std::string body = PreparedQueryKeyBody(MatchSemantics::kIsomorphism, 8,
                                          WriteQuery(q_old, g));

  PreparedQueryCache cache(4);
  auto carried = Prepare(g, q_old, MatchSemantics::kIsomorphism, 8);
  auto resident = Prepare(next, q_new, MatchSemantics::kIsomorphism, 8);
  cache.Put(GraphEpochPrefix(g) + body, carried);
  cache.Put(GraphEpochPrefix(next) + body, resident);
  ASSERT_EQ(cache.size(), 2u);

  cache.ApplyDelta(GraphEpochPrefix(g), GraphEpochPrefix(next), r.delta);
  // The carried duplicate is dropped; the entry already living under the
  // new epoch's key survives with its own value.
  EXPECT_EQ(cache.size(), 1u);
  EXPECT_EQ(cache.Get(GraphEpochPrefix(next) + body), resident);
}

// ---------------------------------------------------------------------------
// Service integration: restart warm path, counters, update mirroring
// ---------------------------------------------------------------------------

ServiceRequest WhyRequest(const std::string& query_text, NodeId entity) {
  ServiceRequest req;
  req.kind = RequestKind::kWhy;
  req.query_text = query_text;
  req.entities = {entity};
  return req;
}

TEST(PlanServiceTest, RestartServesTheFirstRepeatedQuestionWarm) {
  std::string dir = FreshDir("svc_restart");
  {
    ServiceConfig sc;
    sc.workers = 1;
    sc.plan_store = std::make_shared<PlanStore>(dir);
    WhyqService svc(ReviewGraph(), sc);
    ServiceResponse resp = svc.Execute(WhyRequest(kReviewQuery, 1));
    ASSERT_EQ(resp.status, ResponseStatus::kOk) << resp.error;
    EXPECT_FALSE(resp.cache_hit);
    sc.plan_store->Flush();
    StatsSnapshot s = svc.Stats();
    EXPECT_EQ(s.plan_store_misses, 1u);
    EXPECT_EQ(s.plan_store_writes, 1u);
    EXPECT_EQ(s.plan_store_hits + s.plan_store_misses, s.cache_misses);
  }
  // A NEW process over an equal-content graph (fresh identity — the plan
  // relocates by fingerprint): the boot warm pass fills the cache, so the
  // very first repeated question is a memory-cache hit.
  {
    ServiceConfig sc;
    sc.workers = 1;
    sc.plan_store = std::make_shared<PlanStore>(dir);
    WhyqService svc(ReviewGraph(), sc);
    ServiceResponse resp = svc.Execute(WhyRequest(kReviewQuery, 1));
    ASSERT_EQ(resp.status, ResponseStatus::kOk) << resp.error;
    EXPECT_TRUE(resp.cache_hit);
    StatsSnapshot s = svc.Stats();
    EXPECT_EQ(s.plan_store_misses, 0u);  // warm pass counts no miss/hit
    EXPECT_EQ(s.plan_store_hits, 0u);
  }
  // With the memory cache disabled the same restart probes the store on
  // the request path: a store hit that still counts as a cache miss.
  {
    ServiceConfig sc;
    sc.workers = 1;
    sc.cache_capacity = 0;
    sc.plan_store = std::make_shared<PlanStore>(dir);
    WhyqService svc(ReviewGraph(), sc);
    ServiceResponse resp = svc.Execute(WhyRequest(kReviewQuery, 1));
    ASSERT_EQ(resp.status, ResponseStatus::kOk) << resp.error;
    EXPECT_FALSE(resp.cache_hit);
    StatsSnapshot s = svc.Stats();
    EXPECT_EQ(s.plan_store_hits, 1u);
    EXPECT_EQ(s.cache_misses, 1u);
    EXPECT_EQ(s.plan_store_hits + s.plan_store_misses, s.cache_misses);
  }
}

TEST(PlanServiceTest, ApplyUpdateMirrorsVerdictsOntoStoredPlans) {
  std::string dir = FreshDir("svc_update");
  ServiceConfig sc;
  sc.workers = 1;
  sc.plan_store = std::make_shared<PlanStore>(dir);
  WhyqService svc(ReviewGraph(), sc);

  ASSERT_EQ(svc.Execute(WhyRequest(kReviewQuery, 1)).status,
            ResponseStatus::kOk);
  ASSERT_EQ(svc.Execute(WhyRequest(kVendorQuery, 5)).status,
            ResponseStatus::kOk);
  sc.plan_store->Flush();
  ASSERT_EQ(sc.plan_store->file_count(), 2u);

  // The rating update intersects the review footprint only: the review
  // plan dies with its epoch, the vendor plan is restamped and carried.
  UpdateResult result;
  ASSERT_TRUE(svc.ApplyUpdate(IntersectingBatch(), &result)) << result.error;
  sc.plan_store->Flush();
  StatsSnapshot s = svc.Stats();
  EXPECT_EQ(s.cache_invalidated, 1u);
  EXPECT_EQ(s.cache_rekeyed, 1u);
  EXPECT_EQ(s.plan_store_invalid, 1u);
  EXPECT_EQ(s.plan_store_writes, 3u);  // two saves + one restamp
  EXPECT_EQ(sc.plan_store->file_count(), 1u);

  // The carried vendor plan still serves (memory cache hit after rekey);
  // the dropped review plan must be re-prepared from scratch.
  ServiceResponse vendor = svc.Execute(WhyRequest(kVendorQuery, 5));
  EXPECT_TRUE(vendor.cache_hit);
  ServiceResponse review = svc.Execute(WhyRequest(kReviewQuery, 1));
  ASSERT_EQ(review.status, ResponseStatus::kOk) << review.error;
  EXPECT_FALSE(review.cache_hit);
}

// ---------------------------------------------------------------------------
// Counter-pinned equivalence: a loaded plan answers like a fresh build
// ---------------------------------------------------------------------------

TEST(PlanEquivalenceTest, LoadedPlanAnswersByteIdenticallyUnderBothSemantics) {
  Figure1 fig = MakeFigure1();
  for (MatchSemantics sem :
       {MatchSemantics::kIsomorphism, MatchSemantics::kSimulation}) {
    SCOPED_TRACE(static_cast<int>(sem));
    auto fresh = Prepare(fig.graph, fig.query, sem, 8);

    CompiledPlan plan =
        PlanFromPrepared(*fresh, WriteQuery(fig.query, fig.graph), 8);
    std::string path = TempPath("equiv.plan");
    std::string error;
    ASSERT_TRUE(WritePlanFile(plan, StampOf(fig.graph), path, &error))
        << error;
    CompiledPlan loaded_plan;
    PlanStamp stamp;
    ASSERT_TRUE(LoadPlanFile(path, &loaded_plan, &stamp, &error)) << error;
    auto loaded = PreparedFromPlan(loaded_plan, fig.graph, &error);
    ASSERT_NE(loaded, nullptr) << error;
    ASSERT_EQ(loaded->answers, fresh->answers);

    // The same Why question answered from both artifact sets — every
    // result field and work counter must agree, or the loaded plan did
    // different work than the build it claims to cache.
    AnswerConfig cfg;
    cfg.semantics = sem;
    WhyQuestion why{{fig.a5, fig.s5}};
    cfg.path_index = &fresh->path_index;
    RewriteAnswer a = ApproxWhy(fig.graph, fresh->query, fresh->answers, why,
                                cfg);
    cfg.path_index = &loaded->path_index;
    RewriteAnswer b = ApproxWhy(fig.graph, loaded->query, loaded->answers,
                                why, cfg);
    EXPECT_EQ(a.found, b.found);
    EXPECT_EQ(a.Explain(fig.graph), b.Explain(fig.graph));
    EXPECT_EQ(a.cost, b.cost);
    EXPECT_EQ(a.estimated_closeness, b.estimated_closeness);
    EXPECT_EQ(a.picky_count, b.picky_count);
    EXPECT_EQ(a.sets_verified, b.sets_verified);
    EXPECT_EQ(a.ctx_hits, b.ctx_hits);
    EXPECT_EQ(a.ctx_misses, b.ctx_misses);
    EXPECT_EQ(a.ctx_pruned, b.ctx_pruned);

    // And the same for a Why-not question over the loaded candidates.
    WhyNotQuestion whynot;
    whynot.missing = {fig.s8, fig.s9};
    cfg.path_index = &fresh->path_index;
    RewriteAnswer c = FastWhyNot(fig.graph, fresh->query, fresh->answers,
                                 whynot, cfg);
    cfg.path_index = &loaded->path_index;
    RewriteAnswer d = FastWhyNot(fig.graph, loaded->query, loaded->answers,
                                 whynot, cfg);
    EXPECT_EQ(c.found, d.found);
    EXPECT_EQ(c.Explain(fig.graph), d.Explain(fig.graph));
    EXPECT_EQ(c.cost, d.cost);
    EXPECT_EQ(c.sets_verified, d.sets_verified);
  }
}

}  // namespace
}  // namespace whyq
