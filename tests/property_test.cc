// Property-style suites over generated graphs, queries and operator sets,
// checking the paper's structural lemmas rather than single examples:
//   * Lemma 1  — relaxation grows answers, refinement shrinks them;
//   * guard monotonicity — the basis of the guard-aware exact enumeration;
//   * estimation soundness — failing the path test proves non-matching;
//   * exact-dominance — ExactWhy(Not) is at least as close as the greedy
//     algorithms whenever its enumeration is exhaustive.

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "gen/profiles.h"
#include "gen/query_gen.h"
#include "gen/question_gen.h"
#include "matcher/matcher.h"
#include "matcher/path_index.h"
#include "rewrite/cost_model.h"
#include "rewrite/evaluation.h"
#include "why/picky.h"
#include "why/why_algorithms.h"
#include "why/whynot_algorithms.h"

namespace whyq {
namespace {

// A shared mid-sized graph keeps the sweep fast on one core.
const Graph& SharedGraph() {
  static const Graph* g =
      new Graph(GenerateProfile(DatasetProfile::kIMDb, 3000, 99));
  return *g;
}

struct Instance {
  GeneratedQuery gq;
  WhyQuestion why;
  WhyNotQuestion whynot;
  bool ok = false;
};

Instance MakeInstance(int seed) {
  const Graph& g = SharedGraph();
  for (uint64_t attempt = 0; attempt < 8; ++attempt) {
    Rng rng(static_cast<uint64_t>(seed) * 7919 + 3 + attempt * 104729);
    QueryGenConfig cfg;
    cfg.edges = 2 + seed % 3;
    cfg.literals_per_node = 1 + seed % 2;
    cfg.min_answers = 3;
    cfg.slack = 0.5;
    if (attempt >= 4) {
      // Loosen progressively rather than give up (keeps the sweep dense).
      cfg.literals_per_node = 1;
      cfg.min_answers = 2;
      cfg.edges = 2;
    }
    Instance inst;
    std::optional<GeneratedQuery> gq = GenerateQuery(g, cfg, rng);
    if (!gq.has_value()) continue;
    inst.gq = std::move(*gq);
    inst.why = GenerateWhyQuestion(inst.gq, 2, rng);
    std::optional<WhyNotQuestion> wn =
        GenerateWhyNotQuestion(g, inst.gq, 2, 0, rng);
    if (!wn.has_value() || inst.why.unexpected.empty()) continue;
    inst.whynot = std::move(*wn);
    inst.ok = true;
    return inst;
  }
  return Instance();
}

std::set<NodeId> AsSet(const std::vector<NodeId>& v) {
  return std::set<NodeId>(v.begin(), v.end());
}

class LemmaOneTest : public testing::TestWithParam<int> {};

TEST_P(LemmaOneTest, RelaxationGrowsAnswers) {
  Instance inst = MakeInstance(GetParam());
  if (!inst.ok) GTEST_SKIP();
  const Graph& g = SharedGraph();
  AnswerConfig cfg;
  std::vector<EditOp> picky =
      GenPickyWhyNot(g, inst.gq.query, inst.whynot.missing, cfg);
  if (picky.empty()) GTEST_SKIP();
  Matcher m(g);
  std::set<NodeId> before = AsSet(inst.gq.answers);
  // Apply a conflict-free prefix of relaxations.
  OperatorSet ops;
  for (const EditOp& op : picky) {
    bool clash = false;
    for (const EditOp& sel : ops) clash |= OpsConflict(sel, op);
    if (!clash) ops.push_back(op);
    if (ops.size() == 3) break;
  }
  std::set<NodeId> after =
      AsSet(m.MatchOutput(ApplyOperators(inst.gq.query, ops)));
  for (NodeId v : before) {
    EXPECT_TRUE(after.count(v)) << "relaxation lost answer " << v;
  }
}

TEST_P(LemmaOneTest, RefinementShrinksAnswers) {
  Instance inst = MakeInstance(GetParam());
  if (!inst.ok) GTEST_SKIP();
  const Graph& g = SharedGraph();
  AnswerConfig cfg;
  std::vector<EditOp> picky = GenPickyWhy(g, inst.gq.query, inst.gq.answers,
                                          inst.why.unexpected, cfg);
  if (picky.empty()) GTEST_SKIP();
  Matcher m(g);
  std::set<NodeId> before = AsSet(inst.gq.answers);
  size_t step = std::max<size_t>(1, picky.size() / 4);
  for (size_t i = 0; i < picky.size(); i += step) {
    std::set<NodeId> after =
        AsSet(m.MatchOutput(ApplyOperators(inst.gq.query, {picky[i]})));
    for (NodeId v : after) {
      EXPECT_TRUE(before.count(v)) << "refinement added answer " << v;
    }
  }
}

TEST_P(LemmaOneTest, GuardMonotoneUnderRefinement) {
  Instance inst = MakeInstance(GetParam());
  if (!inst.ok) GTEST_SKIP();
  const Graph& g = SharedGraph();
  AnswerConfig cfg;
  std::vector<EditOp> picky = GenPickyWhy(g, inst.gq.query, inst.gq.answers,
                                          inst.why.unexpected, cfg);
  if (picky.size() < 2) GTEST_SKIP();
  WhyEvaluator eval(g, inst.gq.answers, inst.why, /*guard_m=*/1000);
  OperatorSet chain;
  size_t prev_guard = 0;
  for (const EditOp& op : picky) {
    bool clash = false;
    for (const EditOp& sel : chain) clash |= OpsConflict(sel, op);
    if (clash) continue;
    chain.push_back(op);
    EvalResult r = eval.Evaluate(ApplyOperators(inst.gq.query, chain));
    EXPECT_GE(r.guard, prev_guard);
    prev_guard = r.guard;
    if (chain.size() == 4) break;
  }
}

TEST_P(LemmaOneTest, PathTestSoundForExclusion) {
  Instance inst = MakeInstance(GetParam());
  if (!inst.ok) GTEST_SKIP();
  const Graph& g = SharedGraph();
  AnswerConfig cfg;
  std::vector<EditOp> picky = GenPickyWhy(g, inst.gq.query, inst.gq.answers,
                                          inst.why.unexpected, cfg);
  if (picky.empty()) GTEST_SKIP();
  PathIndex pidx(inst.gq.query, 8);
  Matcher m(g);
  size_t step = std::max<size_t>(1, picky.size() / 5);
  for (size_t i = 0; i < picky.size(); i += step) {
    Query rw = ApplyOperators(inst.gq.query, {picky[i]});
    for (NodeId v : inst.gq.answers) {
      if (!pidx.Passes(g, rw, v)) {
        EXPECT_FALSE(m.IsAnswer(rw, v))
            << "path test rejected a real answer";
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, LemmaOneTest, testing::Range(0, 12));

class DominanceTest : public testing::TestWithParam<int> {};

TEST_P(DominanceTest, ExactWhyDominatesGreedy) {
  Instance inst = MakeInstance(GetParam());
  if (!inst.ok) GTEST_SKIP();
  const Graph& g = SharedGraph();
  AnswerConfig cfg;
  cfg.budget = 4.0;
  cfg.guard_m = 2;
  cfg.max_picky_ops = 64;  // keep the exact enumeration exhaustive
  cfg.max_mbs = 300000;
  RewriteAnswer exact = ExactWhy(g, inst.gq.query, inst.gq.answers,
                                 inst.why, cfg);
  if (!exact.exhaustive) GTEST_SKIP();
  for (RewriteAnswer other :
       {ApproxWhy(g, inst.gq.query, inst.gq.answers, inst.why, cfg),
        IsoWhy(g, inst.gq.query, inst.gq.answers, inst.why, cfg)}) {
    if (!other.eval.guard_ok) continue;
    EXPECT_GE(exact.eval.closeness, other.eval.closeness - 1e-9);
    EXPECT_LE(other.cost, cfg.budget + 1e-9);
  }
  EXPECT_LE(exact.cost, cfg.budget + 1e-9);
}

TEST_P(DominanceTest, ExactWhyNotDominatesGreedy) {
  Instance inst = MakeInstance(GetParam());
  if (!inst.ok) GTEST_SKIP();
  const Graph& g = SharedGraph();
  AnswerConfig cfg;
  cfg.budget = 4.0;
  cfg.guard_m = 2;
  cfg.max_picky_ops = 48;
  cfg.max_mbs = 300000;
  RewriteAnswer exact = ExactWhyNot(g, inst.gq.query, inst.gq.answers,
                                    inst.whynot, cfg);
  if (!exact.exhaustive) GTEST_SKIP();
  for (RewriteAnswer other :
       {FastWhyNot(g, inst.gq.query, inst.gq.answers, inst.whynot, cfg),
        IsoWhyNot(g, inst.gq.query, inst.gq.answers, inst.whynot, cfg)}) {
    if (!other.eval.guard_ok) continue;
    EXPECT_GE(exact.eval.closeness, other.eval.closeness - 1e-9);
  }
}

TEST_P(DominanceTest, CostsAreAdditiveAndBounded) {
  Instance inst = MakeInstance(GetParam());
  if (!inst.ok) GTEST_SKIP();
  const Graph& g = SharedGraph();
  AnswerConfig cfg;
  CostModel cm(inst.gq.query, g);
  std::vector<EditOp> picky = GenPickyWhy(g, inst.gq.query, inst.gq.answers,
                                          inst.why.unexpected, cfg);
  if (picky.size() < 2) GTEST_SKIP();
  OperatorSet two{picky[0], picky[1]};
  EXPECT_NEAR(cm.Cost(two), cm.Cost(picky[0]) + cm.Cost(picky[1]), 1e-9);
  for (const EditOp& op : picky) {
    EXPECT_GE(cm.Cost(op), cm.MinOperatorCost() - 1e-9);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DominanceTest, testing::Range(0, 8));

}  // namespace
}  // namespace whyq
